GO ?= go

.PHONY: all build test race vet bench-smoke check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector — the tier the provider conformance
# suite and the sharded engine are required to keep clean.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One fast pass over the paper benches and the concurrent-groups
# microbenchmark: enough iterations to catch regressions in the dataplane
# allocation counts without rerunning the full figure sweeps.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkConcurrentGroups|BenchmarkBinomialPlanGeneration|BenchmarkSimulatedMulticast' -benchtime 10x -count 1 .

check: build vet test race
