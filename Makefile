GO ?= go

.PHONY: all build test race vet bench-smoke bench-json bench-compare bench-trend check golden golden-record scenario scenarios

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector — the tier the provider conformance
# suite and the sharded engine are required to keep clean.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One fast pass over the paper benches and the concurrent-groups
# microbenchmark: enough iterations to catch regressions in the dataplane
# allocation counts without rerunning the full figure sweeps.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkConcurrentGroups|BenchmarkBinomialPlanGeneration|BenchmarkSimulatedMulticast' -benchtime 10x -count 1 .

# Machine-readable send-window numbers: standard testing-package benchmark
# output (benchstat-compatible Output lines) wrapped in test2json events.
bench-json:
	$(GO) test -run xxx -bench 'BenchmarkSendWindow|BenchmarkConcurrentGroups|BenchmarkNodePlan|BenchmarkTenantThrottle' -benchtime 5x -count 1 -json . > BENCH_sendwindow.json

# Rerun the send-window sweep and diff it against the committed baseline.
# Report-only: the table flags regressions, it does not fail the build
# (pass BENCHCMP_FLAGS='-fail-over 30' to make it gate).
bench-compare:
	$(GO) test -run xxx -bench 'BenchmarkSendWindow|BenchmarkTenantThrottle' -benchtime 5x -count 1 . | tee bench_new.txt
	$(GO) run ./cmd/benchcmp -old BENCH_sendwindow.json -new bench_new.txt -filter 'BenchmarkSendWindow|BenchmarkTenantThrottle' \
		-json bench_delta.json -trajectory BENCH_trajectory.json -label "$$(git rev-parse --short HEAD 2>/dev/null || echo local)" \
		$(BENCHCMP_FLAGS) | tee bench_compare.txt
	$(GO) run ./cmd/benchcmp -trend -trajectory BENCH_trajectory.json -out bench_trend.md

# Render the committed benchmark trajectory as a markdown trend table.
bench-trend:
	$(GO) run ./cmd/benchcmp -trend -trajectory BENCH_trajectory.json -out bench_trend.md

# Golden regression gate: regenerate the pinned quick-scale datasets in
# memory and fail on any divergence. `make golden-record` refreshes the
# pins after an intentional change.
golden:
	$(GO) run ./cmd/rdmcbench -golden check

golden-record:
	$(GO) run ./cmd/rdmcbench -golden record

# Replay one scenario config: make scenario SCEN=scenarios/cosmos.json
scenario:
	@test -n "$(SCEN)" || { echo "usage: make scenario SCEN=scenarios/<name>.json"; exit 1; }
	$(GO) run ./cmd/rdmcbench -scenario $(SCEN)

# Regenerate the shipped scenarios/ directory from the library configs.
scenarios:
	$(GO) test ./internal/scenario -run TestShippedConfigsMatchLibrary -update-scenarios

check: build vet test race
