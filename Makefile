GO ?= go

.PHONY: all build test race vet bench-smoke bench-json check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector — the tier the provider conformance
# suite and the sharded engine are required to keep clean.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One fast pass over the paper benches and the concurrent-groups
# microbenchmark: enough iterations to catch regressions in the dataplane
# allocation counts without rerunning the full figure sweeps.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkConcurrentGroups|BenchmarkBinomialPlanGeneration|BenchmarkSimulatedMulticast' -benchtime 10x -count 1 .

# Machine-readable send-window numbers: standard testing-package benchmark
# output (benchstat-compatible Output lines) wrapped in test2json events.
bench-json:
	$(GO) test -run xxx -bench 'BenchmarkSendWindow|BenchmarkConcurrentGroups|BenchmarkNodePlan' -benchtime 5x -count 1 -json . > BENCH_sendwindow.json

check: build vet test race
