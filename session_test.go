package rdmc_test

import (
	"sync"
	"testing"
	"time"

	"rdmc"
)

// sessionRecorder collects one member's session history under a lock (the
// TCP transport delivers from dispatcher goroutines).
type sessionRecorder struct {
	mu     sync.Mutex
	seqs   []uint64
	bodies []byte // first byte of each delivered message
	epochs []uint64
}

func (r *sessionRecorder) callbacks() rdmc.SessionCallbacks {
	return rdmc.SessionCallbacks{
		Deliver: func(seq uint64, data []byte, size int) {
			r.mu.Lock()
			r.seqs = append(r.seqs, seq)
			r.bodies = append(r.bodies, data[0])
			r.mu.Unlock()
		},
		OnEpoch: func(epoch uint64, members []int) {
			r.mu.Lock()
			r.epochs = append(r.epochs, epoch)
			r.mu.Unlock()
		},
	}
}

func (r *sessionRecorder) delivered() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.seqs)
}

func (r *sessionRecorder) checkGapFree(t *testing.T, who int, want []byte) {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.seqs) != len(want) {
		t.Fatalf("node %d delivered %d messages, want %d", who, len(r.seqs), len(want))
	}
	for i, s := range r.seqs {
		if s != uint64(i) {
			t.Fatalf("node %d: delivery %d has sequence %d (gap or duplicate)", who, i, s)
		}
		if r.bodies[i] != want[i] {
			t.Fatalf("node %d: sequence %d carries %#x, want %#x", who, i, r.bodies[i], want[i])
		}
	}
}

func sessionMsg(tag byte) []byte {
	b := make([]byte, 32<<10)
	b[0] = tag
	return b
}

// TestSimSessionSurvivesCrash drives the public Session API on the simulated
// cluster: a member crashes mid-stream and the survivors still deliver every
// message, in order, after installing a recovery epoch.
func TestSimSessionSurvivesCrash(t *testing.T) {
	cluster, err := rdmc.NewSimCluster(rdmc.SimConfig{Nodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*sessionRecorder, 4)
	sessions := make([]*rdmc.Session, 4)
	members := []int{0, 1, 2, 3}
	for i := range sessions {
		recs[i] = &sessionRecorder{}
		s, err := cluster.Node(i).NewSession(
			rdmc.SessionConfig{ID: 100, Members: members, BlockSize: 8 << 10},
			recs[i].callbacks(),
		)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	if !sessions[0].IsRoot() || sessions[2].IsRoot() {
		t.Fatal("initial root is not member 0")
	}

	const k = 6
	var want []byte
	for i := 0; i < k; i++ {
		if err := sessions[0].Send(sessionMsg(byte(i + 1))); err != nil {
			t.Fatal(err)
		}
		want = append(want, byte(i+1))
	}
	cluster.At(10*time.Microsecond, func() { cluster.FailNode(2) })
	cluster.Run()

	for _, i := range []int{0, 1, 3} {
		recs[i].checkGapFree(t, i, want)
		if e := sessions[i].Epoch(); e != 2 {
			t.Errorf("survivor %d at epoch %d, want 2", i, e)
		}
		ms := sessions[i].Members()
		if len(ms) != 3 {
			t.Errorf("survivor %d sees %d members, want 3", i, len(ms))
		}
		for _, m := range ms {
			if m == 2 {
				t.Errorf("survivor %d still lists the crashed member", i)
			}
		}
	}
	if st, err := sessions[0].State(); st != rdmc.SessionActive || err != nil {
		t.Errorf("root state = %v (%v), want active", st, err)
	}
}

// TestTCPSessionSurvivesNodeClose is the real-socket version: a local TCP
// cluster loses a non-root member mid-stream (its process "dies" via
// Node.Close), the bootstrap mesh reports it down, and the survivors install
// a new epoch and keep delivering — including messages sent while wedged.
func TestTCPSessionSurvivesNodeClose(t *testing.T) {
	nodes, err := rdmc.NewLocalCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	members := []int{0, 1, 2}
	recs := make([]*sessionRecorder, 3)
	sessions := make([]*rdmc.Session, 3)
	for i, n := range nodes {
		recs[i] = &sessionRecorder{}
		s, err := n.NewSession(
			rdmc.SessionConfig{ID: 100, Members: members, BlockSize: 8 << 10},
			recs[i].callbacks(),
		)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}

	waitDelivered := func(count int, who ...int) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			done := true
			for _, i := range who {
				if recs[i].delivered() < count {
					done = false
				}
			}
			if done {
				return
			}
			if time.Now().After(deadline) {
				for _, i := range who {
					t.Logf("node %d delivered %d", i, recs[i].delivered())
				}
				t.Fatalf("timed out waiting for %d deliveries", count)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	var want []byte
	send := func(tag byte) {
		t.Helper()
		if err := sessions[0].Send(sessionMsg(tag)); err != nil {
			t.Fatal(err)
		}
		want = append(want, tag)
	}
	for i := 0; i < 3; i++ {
		send(byte(i + 1))
	}
	waitDelivered(3, 0, 1, 2)

	// Node 2 dies. The mesh notices, the survivors wedge, agree, and
	// install epoch 2; sends issued meanwhile queue and flush after.
	_ = nodes[2].Close()
	for i := 3; i < 6; i++ {
		send(byte(i + 1))
	}
	waitDelivered(6, 0, 1)

	for _, i := range []int{0, 1} {
		recs[i].checkGapFree(t, i, want)
		deadline := time.Now().Add(15 * time.Second)
		for sessions[i].Epoch() < 2 {
			if time.Now().After(deadline) {
				t.Fatalf("survivor %d never installed epoch 2 (epoch %d)", i, sessions[i].Epoch())
			}
			time.Sleep(5 * time.Millisecond)
		}
		ms := sessions[i].Members()
		if len(ms) != 2 || ms[0] != 0 || ms[1] != 1 {
			t.Errorf("survivor %d members = %v, want [0 1]", i, ms)
		}
	}
	st := sessions[0].Stats()
	if st.Epochs < 2 {
		t.Errorf("root stats report %d epochs, want >= 2", st.Epochs)
	}
}

// TestSessionConfigValidation pins the public constructor's error surface.
func TestSessionConfigValidation(t *testing.T) {
	cluster, err := rdmc.NewSimCluster(rdmc.SimConfig{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := cluster.Node(0)
	if _, err := n.NewSession(rdmc.SessionConfig{ID: 1, Members: []int{0}}, rdmc.SessionCallbacks{}); err == nil {
		t.Error("single-member session accepted")
	}
	if _, err := n.NewSession(rdmc.SessionConfig{ID: -1, Members: []int{0, 1}}, rdmc.SessionCallbacks{}); err == nil {
		t.Error("negative id accepted")
	}
	if _, err := n.NewSession(rdmc.SessionConfig{
		ID: 1, Members: []int{0, 1}, Algorithm: rdmc.HybridBinomial,
	}, rdmc.SessionCallbacks{}); err == nil {
		t.Error("HybridBinomial session accepted")
	}
	s, err := n.NewSession(rdmc.SessionConfig{ID: 1, Members: []int{0, 1}}, rdmc.SessionCallbacks{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Send([]byte("x")); err == nil {
		t.Error("send after close accepted")
	}
}
