package rdmc_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"rdmc"
)

func TestSimClusterQuickstart(t *testing.T) {
	cluster, err := rdmc.NewSimCluster(rdmc.SimConfig{Nodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	members := []int{0, 1, 2, 3}
	msg := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(msg)

	var mu sync.Mutex
	received := make(map[int][]byte)
	var groups []*rdmc.Group
	for i := 0; i < 4; i++ {
		i := i
		g, err := cluster.Node(i).CreateGroup(7, members, rdmc.GroupConfig{BlockSize: 64 << 10}, rdmc.Callbacks{
			Incoming: func(size int) []byte { return make([]byte, size) },
			Completion: func(seq int, data []byte, size int) {
				mu.Lock()
				received[i] = append([]byte(nil), data...)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, g)
	}
	if groups[0].Rank() != 0 || groups[2].Rank() != 2 {
		t.Fatalf("ranks wrong: %d %d", groups[0].Rank(), groups[2].Rank())
	}
	if err := groups[0].Send(msg); err != nil {
		t.Fatal(err)
	}
	elapsed := cluster.Run()
	if elapsed <= 0 {
		t.Error("virtual time did not advance")
	}
	for i := 1; i < 4; i++ {
		if !bytes.Equal(received[i], msg) {
			t.Errorf("node %d received wrong bytes", i)
		}
	}
}

func TestSimClusterAlgorithmsDeliver(t *testing.T) {
	algos := []rdmc.Algorithm{
		rdmc.SequentialSend, rdmc.ChainSend, rdmc.BinomialTree,
		rdmc.BinomialPipeline, rdmc.MPIBcast,
	}
	for _, a := range algos {
		t.Run(a.String(), func(t *testing.T) {
			cluster, err := rdmc.NewSimCluster(rdmc.SimConfig{Nodes: 5, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			members := []int{0, 1, 2, 3, 4}
			done := 0
			var groups []*rdmc.Group
			for i := range members {
				g, err := cluster.Node(i).CreateGroup(1, members, rdmc.GroupConfig{
					BlockSize: 4 << 10,
					Algorithm: a,
				}, rdmc.Callbacks{
					Completion: func(int, []byte, int) { done++ },
				})
				if err != nil {
					t.Fatal(err)
				}
				groups = append(groups, g)
			}
			if err := groups[0].SendSized(1 << 20); err != nil {
				t.Fatal(err)
			}
			cluster.Run()
			if done != 5 {
				t.Errorf("completions = %d, want 5", done)
			}
		})
	}
}

func TestSimClusterHybridOnRacks(t *testing.T) {
	cluster, err := rdmc.NewSimCluster(rdmc.SimConfig{
		Nodes:     8,
		RackSize:  4,
		TrunkGbps: 25,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	members := []int{0, 1, 2, 3, 4, 5, 6, 7}
	rackOf := []int{0, 0, 0, 0, 1, 1, 1, 1}
	done := 0
	var root *rdmc.Group
	for i := range members {
		g, err := cluster.Node(i).CreateGroup(1, members, rdmc.GroupConfig{
			BlockSize: 256 << 10,
			Algorithm: rdmc.HybridBinomial,
			RackOf:    rackOf,
		}, rdmc.Callbacks{Completion: func(int, []byte, int) { done++ }})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			root = g
		}
	}
	if err := root.SendSized(16 << 20); err != nil {
		t.Fatal(err)
	}
	cluster.Run()
	if done != 8 {
		t.Errorf("completions = %d, want 8", done)
	}
}

func TestHybridRequiresRackOf(t *testing.T) {
	cluster, err := rdmc.NewSimCluster(rdmc.SimConfig{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cluster.Node(0).CreateGroup(1, []int{0, 1}, rdmc.GroupConfig{
		Algorithm: rdmc.HybridBinomial,
	}, rdmc.Callbacks{})
	if err == nil {
		t.Error("HybridBinomial without RackOf accepted")
	}
}

func TestSimClusterFailureInjection(t *testing.T) {
	cluster, err := rdmc.NewSimCluster(rdmc.SimConfig{Nodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	members := []int{0, 1, 2, 3}
	var failures int
	var groups []*rdmc.Group
	for i := range members {
		g, err := cluster.Node(i).CreateGroup(1, members, rdmc.GroupConfig{}, rdmc.Callbacks{
			Failure: func(error) { failures++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, g)
	}
	if err := groups[0].SendSized(256 << 20); err != nil {
		t.Fatal(err)
	}
	cluster.At(2*time.Millisecond, func() { cluster.FailNode(2) })
	cluster.Run()
	if failures < 3 {
		t.Errorf("failure callbacks = %d, want all 3 survivors", failures)
	}
	if groups[0].Err() == nil {
		t.Error("root group reports no error after member crash")
	}
}

func TestSimClusterDeterminism(t *testing.T) {
	run := func() time.Duration {
		cluster, err := rdmc.NewSimCluster(rdmc.SimConfig{Nodes: 8, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		members := []int{0, 1, 2, 3, 4, 5, 6, 7}
		var groups []*rdmc.Group
		for i := range members {
			g, err := cluster.Node(i).CreateGroup(1, members, rdmc.GroupConfig{}, rdmc.Callbacks{})
			if err != nil {
				t.Fatal(err)
			}
			groups = append(groups, g)
		}
		if err := groups[0].SendSized(100 << 20); err != nil {
			t.Fatal(err)
		}
		return cluster.Run()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed, different end times: %v vs %v", a, b)
	}
}

func TestAlgorithmStrings(t *testing.T) {
	tests := []struct {
		a    rdmc.Algorithm
		want string
	}{
		{rdmc.SequentialSend, "sequential send"},
		{rdmc.ChainSend, "chain send"},
		{rdmc.BinomialTree, "binomial tree"},
		{rdmc.BinomialPipeline, "binomial pipeline"},
		{rdmc.MPIBcast, "mpi bcast"},
		{rdmc.HybridBinomial, "hybrid binomial pipeline"},
	}
	for _, tt := range tests {
		if got := tt.a.String(); got != tt.want {
			t.Errorf("Algorithm(%d).String() = %q, want %q", tt.a, got, tt.want)
		}
	}
}

func TestTCPLocalClusterEndToEnd(t *testing.T) {
	nodes, err := rdmc.NewLocalCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	members := []int{0, 1, 2, 3}
	msg := make([]byte, 3<<20)
	rand.New(rand.NewSource(9)).Read(msg)

	var (
		mu       sync.Mutex
		received = make(map[int][]byte)
		wg       sync.WaitGroup
	)
	wg.Add(4) // every member (including the root) completes locally
	var groups []*rdmc.Group
	for i, n := range nodes {
		i := i
		g, err := n.CreateGroup(1, members, rdmc.GroupConfig{BlockSize: 256 << 10}, rdmc.Callbacks{
			Incoming: func(size int) []byte { return make([]byte, size) },
			Completion: func(seq int, data []byte, size int) {
				mu.Lock()
				received[i] = append([]byte(nil), data...)
				mu.Unlock()
				wg.Done()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, g)
	}
	if err := groups[0].Send(msg); err != nil {
		t.Fatal(err)
	}

	waitTimeout(t, &wg, 20*time.Second)
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < 4; i++ {
		if !bytes.Equal(received[i], msg) {
			t.Errorf("node %d received corrupt bytes over TCP", i)
		}
	}
}

// TestIntraHostLocalClusterEndToEnd runs the same multicast as the TCP
// end-to-end test with the data plane moved to in-process shared memory
// (WithIntraHost): block traffic between the co-located nodes crosses
// shmnic endpoints, the control mesh stays on loopback TCP.
func TestIntraHostLocalClusterEndToEnd(t *testing.T) {
	nodes, err := rdmc.NewLocalCluster(4, rdmc.WithIntraHost())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	members := []int{0, 1, 2, 3}
	msg := make([]byte, 3<<20)
	rand.New(rand.NewSource(11)).Read(msg)

	const msgs = 3
	var (
		mu       sync.Mutex
		received = make(map[int][][]byte)
		wg       sync.WaitGroup
	)
	wg.Add(4 * msgs)
	var groups []*rdmc.Group
	for i, n := range nodes {
		i := i
		g, err := n.CreateGroup(1, members, rdmc.GroupConfig{BlockSize: 256 << 10}, rdmc.Callbacks{
			Incoming: func(size int) []byte { return make([]byte, size) },
			Completion: func(seq int, data []byte, size int) {
				mu.Lock()
				received[i] = append(received[i], append([]byte(nil), data...))
				mu.Unlock()
				wg.Done()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, g)
	}
	for s := 0; s < msgs; s++ {
		if err := groups[0].Send(msg); err != nil {
			t.Fatal(err)
		}
	}

	waitTimeout(t, &wg, 20*time.Second)
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 4; i++ {
		if len(received[i]) != msgs {
			t.Errorf("node %d delivered %d of %d messages", i, len(received[i]), msgs)
			continue
		}
		for s, got := range received[i] {
			if !bytes.Equal(got, msg) {
				t.Errorf("node %d message %d corrupt over shared memory", i, s)
			}
		}
	}
}

func TestTCPMultipleMessagesAndCloseBarrier(t *testing.T) {
	nodes, err := rdmc.NewLocalCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	members := []int{0, 1, 2}
	const msgs = 5
	var (
		mu    sync.Mutex
		order = make(map[int][]int)
		wg    sync.WaitGroup
	)
	wg.Add(3 * msgs)
	var groups []*rdmc.Group
	for i, n := range nodes {
		i := i
		g, err := n.CreateGroup(1, members, rdmc.GroupConfig{BlockSize: 64 << 10}, rdmc.Callbacks{
			Incoming: func(size int) []byte { return make([]byte, size) },
			Completion: func(seq int, data []byte, size int) {
				mu.Lock()
				order[i] = append(order[i], seq)
				mu.Unlock()
				wg.Done()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, g)
	}
	for s := 0; s < msgs; s++ {
		if err := groups[0].Send(bytes.Repeat([]byte{byte(s)}, 100<<10)); err != nil {
			t.Fatal(err)
		}
	}
	waitTimeout(t, &wg, 20*time.Second)

	mu.Lock()
	for i, seqs := range order {
		for want, got := range seqs {
			if got != want {
				t.Errorf("node %d delivery order %v", i, seqs)
				break
			}
		}
	}
	mu.Unlock()

	// The paper's close guarantee over a real network.
	if err := groups[0].DestroyWait(10 * time.Second); err != nil {
		t.Errorf("close barrier over TCP: %v", err)
	}
}

func TestTCPFailureDetection(t *testing.T) {
	nodes, err := rdmc.NewLocalCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	members := []int{0, 1, 2}
	failed := make(chan error, 3)
	var groups []*rdmc.Group
	for _, n := range nodes {
		g, err := n.CreateGroup(1, members, rdmc.GroupConfig{}, rdmc.Callbacks{
			Incoming: func(size int) []byte { return make([]byte, size) },
			Failure:  func(err error) { failed <- err },
		})
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, g)
	}
	// Exchange one message so connections are live, then kill node 2.
	var wg sync.WaitGroup
	wg.Add(3)
	doneCb := func(int, []byte, int) { wg.Done() }
	_ = doneCb // completions not wired here; use Delivered polling instead
	if err := groups[0].Send([]byte("warmup message")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for groups[0].Delivered() < 1 || groups[1].Delivered() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("warmup message never delivered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	_ = nodes[2].Close()
	for i := 0; i < 2; i++ {
		select {
		case <-failed:
		case <-time.After(10 * time.Second):
			t.Fatal("survivors did not learn of the failure")
		}
	}
	if err := groups[0].DestroyWait(10 * time.Second); err == nil {
		t.Error("close after failure reported success")
	}
}

func waitTimeout(t *testing.T, wg *sync.WaitGroup, d time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("timed out waiting for deliveries")
	}
}

func ExampleNewSimCluster() {
	cluster, err := rdmc.NewSimCluster(rdmc.SimConfig{Nodes: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	members := []int{0, 1, 2, 3}
	var root *rdmc.Group
	for i := range members {
		g, err := cluster.Node(i).CreateGroup(1, members, rdmc.GroupConfig{}, rdmc.Callbacks{})
		if err != nil {
			panic(err)
		}
		if i == 0 {
			root = g
		}
	}
	if err := root.SendSized(256 << 20); err != nil {
		panic(err)
	}
	elapsed := cluster.Run()
	gbps := float64(256<<20) * 8 / elapsed.Seconds() / 1e9
	fmt.Printf("replicated 256 MB to 3 nodes at %.0f Gb/s aggregate\n", gbps)
	// Output:
	// replicated 256 MB to 3 nodes at 96 Gb/s aggregate
}

// TestTCPRegroupAfterFailure reproduces the paper's §3 recovery story over
// real sockets: a member crashes mid-transfer, the close barrier fails, and
// the application re-forms the group among survivors and retries.
func TestTCPRegroupAfterFailure(t *testing.T) {
	nodes, err := rdmc.NewLocalCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			if n != nil {
				_ = n.Close()
			}
		}
	}()

	members := []int{0, 1, 2, 3}
	var groups []*rdmc.Group
	for _, n := range nodes {
		g, err := n.CreateGroup(1, members, rdmc.GroupConfig{BlockSize: 1 << 20}, rdmc.Callbacks{
			Incoming: func(size int) []byte { return make([]byte, size) },
		})
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, g)
	}
	if err := groups[0].Send(make([]byte, 24<<20)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	crashed := nodes[3]
	nodes[3] = nil
	_ = crashed.Close()
	if err := groups[0].DestroyWait(15 * time.Second); err == nil {
		t.Fatal("close barrier succeeded despite crash")
	}

	// Re-form among survivors and run a full transfer.
	survivors := []int{0, 1, 2}
	var (
		mu    sync.Mutex
		count int
	)
	var groups2 []*rdmc.Group
	for _, id := range survivors {
		g, err := nodes[id].CreateGroup(2, survivors, rdmc.GroupConfig{BlockSize: 1 << 20}, rdmc.Callbacks{
			Incoming: func(size int) []byte { return make([]byte, size) },
			Completion: func(int, []byte, int) {
				mu.Lock()
				count++
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		groups2 = append(groups2, g)
	}
	if err := groups2[0].Send(make([]byte, 8<<20)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		mu.Lock()
		done := count == len(survivors)
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retry transfer among survivors never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := groups2[0].DestroyWait(15 * time.Second); err != nil {
		t.Fatalf("survivor close barrier: %v", err)
	}
}

func TestSimClusterSurface(t *testing.T) {
	cluster, err := rdmc.NewSimCluster(rdmc.SimConfig{Nodes: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if cluster.Nodes() != 2 || cluster.Node(1).ID() != 1 {
		t.Fatal("cluster shape wrong")
	}
	members := []int{0, 1}
	var groups []*rdmc.Group
	for i := range members {
		g, err := cluster.Node(i).CreateGroup(1, members, rdmc.GroupConfig{
			RecordStats: true,
		}, rdmc.Callbacks{})
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, g)
	}
	// Slow the only data link and confirm virtual time reflects it.
	cluster.SetLinkBandwidthGbps(0, 1, 10)
	if err := groups[0].SendSized(16 << 20); err != nil {
		t.Fatal(err)
	}
	if done := cluster.RunUntil(1 * time.Millisecond); done {
		t.Error("16MB at 10Gb/s drained within 1ms of virtual time")
	}
	cluster.Run()
	elapsed := cluster.Now()
	if elapsed < 12*time.Millisecond {
		t.Errorf("elapsed %v, want ≥ ~13ms at 10 Gb/s", elapsed)
	}
	if groups[1].Delivered() != 1 || groups[0].Err() != nil {
		t.Errorf("delivered=%d err=%v", groups[1].Delivered(), groups[0].Err())
	}
	st := groups[1].Stats()
	if st == nil || st.Blocks != 16 {
		t.Errorf("stats = %+v", st)
	}
	if cluster.Grid() == nil {
		t.Error("Grid accessor nil")
	}
	var destroyErr error
	called := false
	groups[0].Destroy(func(err error) { destroyErr = err; called = true })
	cluster.Run()
	if !called || destroyErr != nil {
		t.Errorf("destroy called=%v err=%v", called, destroyErr)
	}
}

func TestCreateGroupValidation(t *testing.T) {
	cluster, err := rdmc.NewSimCluster(rdmc.SimConfig{Nodes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Node(0).CreateGroup(-1, []int{0}, rdmc.GroupConfig{}, rdmc.Callbacks{}); err == nil {
		t.Error("negative group id accepted")
	}
	if _, err := cluster.Node(0).CreateGroup(1, []int{0}, rdmc.GroupConfig{Algorithm: rdmc.Algorithm(99)}, rdmc.Callbacks{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestNewLocalClusterValidation(t *testing.T) {
	if _, err := rdmc.NewLocalCluster(0); err == nil {
		t.Error("zero-node cluster accepted")
	}
}

func TestQuickRandomSimMulticasts(t *testing.T) {
	// Property: any (algorithm, size, group) combination delivers the
	// exact bytes to every member in virtual time.
	algos := []rdmc.Algorithm{
		rdmc.SequentialSend, rdmc.ChainSend, rdmc.BinomialTree,
		rdmc.BinomialPipeline, rdmc.MPIBcast,
	}
	f := func(aRaw, nRaw uint8, sizeRaw uint16) bool {
		algo := algos[int(aRaw)%len(algos)]
		n := int(nRaw)%7 + 2
		size := int(sizeRaw)%50000 + 1
		cluster, err := rdmc.NewSimCluster(rdmc.SimConfig{Nodes: n, Seed: int64(sizeRaw)})
		if err != nil {
			return false
		}
		members := make([]int, n)
		for i := range members {
			members[i] = i
		}
		msg := make([]byte, size)
		rand.New(rand.NewSource(int64(size))).Read(msg)
		okCount := 0
		var root *rdmc.Group
		for i := range members {
			g, err := cluster.Node(i).CreateGroup(1, members, rdmc.GroupConfig{
				BlockSize: 4 << 10,
				Algorithm: algo,
			}, rdmc.Callbacks{
				Incoming: func(size int) []byte { return make([]byte, size) },
				Completion: func(_ int, data []byte, _ int) {
					if data == nil || bytes.Equal(data, msg) {
						okCount++
					}
				},
			})
			if err != nil {
				return false
			}
			if i == 0 {
				root = g
			}
		}
		if err := root.Send(msg); err != nil {
			return false
		}
		cluster.Run()
		return okCount == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
