module rdmc

go 1.22
