package rdmc

import (
	"fmt"
	"net"
	"time"

	"rdmc/internal/core"
	"rdmc/internal/mesh"
	"rdmc/internal/rdma"
	"rdmc/internal/rdma/shmnic"
	"rdmc/internal/rdma/tcpnic"
)

// TCPConfig describes one node of a real-transport deployment: every node
// runs two listeners, one for bulk data (queue pairs) and one for the
// bootstrap/control mesh, and knows every peer's addresses.
type TCPConfig struct {
	// NodeID is the local identity (an index agreed across the
	// deployment).
	NodeID int
	// DataAddrs and CtrlAddrs map every node id — including this one — to
	// its data and mesh listen addresses.
	DataAddrs map[int]string
	CtrlAddrs map[int]string
	// Observer, when non-nil, instruments the node's engine, NIC, and mesh
	// (see Observer). Pair it with Observer.Publish to serve live metrics
	// over expvar.
	Observer *Observer

	// intra, when non-nil, is the shared-memory domain of co-located nodes:
	// the data plane between nodes in the same domain moves through
	// in-process memory copies instead of loopback sockets. Set by
	// NewLocalCluster's WithIntraHost option — co-location is a
	// single-process property, so it is not part of the multi-process
	// configuration surface.
	intra *shmnic.Exchange
}

// NewTCPNode starts an RDMC node over real TCP: it listens on its own
// addresses, builds the full bootstrap mesh (blocking until every peer is
// connected, as in the paper's initialization), and returns a Node ready for
// CreateGroup.
func NewTCPNode(cfg TCPConfig) (*Node, error) {
	dataAddr, ok := cfg.DataAddrs[cfg.NodeID]
	if !ok {
		return nil, fmt.Errorf("rdmc: no data address for local node %d", cfg.NodeID)
	}
	ctrlAddr, ok := cfg.CtrlAddrs[cfg.NodeID]
	if !ok {
		return nil, fmt.Errorf("rdmc: no control address for local node %d", cfg.NodeID)
	}
	dataLn, err := net.Listen("tcp", dataAddr)
	if err != nil {
		return nil, fmt.Errorf("rdmc: listen data %s: %w", dataAddr, err)
	}
	ctrlLn, err := net.Listen("tcp", ctrlAddr)
	if err != nil {
		_ = dataLn.Close()
		return nil, fmt.Errorf("rdmc: listen ctrl %s: %w", ctrlAddr, err)
	}
	return newTCPNode(cfg, dataLn, ctrlLn)
}

func newTCPNode(cfg TCPConfig, dataLn, ctrlLn net.Listener) (*Node, error) {
	id := rdma.NodeID(cfg.NodeID)
	provider, err := tcpnic.New(tcpnic.Config{
		NodeID:   id,
		Listener: dataLn,
		Addrs:    toNodeAddrs(cfg.DataAddrs),
		Intra:    cfg.intra,
	})
	if err != nil {
		_ = dataLn.Close()
		_ = ctrlLn.Close()
		return nil, err
	}
	provider.SetObserver(cfg.Observer.sink())

	node := &Node{id: cfg.NodeID}
	m, err := mesh.New(mesh.Config{
		NodeID:   id,
		Listener: ctrlLn,
		Addrs:    toNodeAddrs(cfg.CtrlAddrs),
		OnPeerDown: func(peer rdma.NodeID) {
			if node.engine != nil {
				node.engine.NotifyFailure(peer)
			}
		},
		Observer: cfg.Observer.sink(),
	})
	if err != nil {
		_ = provider.Close()
		_ = ctrlLn.Close()
		return nil, err
	}

	node.engine = core.NewEngine(provider, m, realHost{start: time.Now()})
	node.engine.SetObserver(cfg.Observer.sink())
	node.provider = provider
	node.observer = cfg.Observer.sink()
	node.closers = append(node.closers, m.Close)
	return node, nil
}

// ClusterOption customizes NewLocalCluster.
type ClusterOption func(*clusterOptions)

type clusterOptions struct {
	observer *Observer
	intra    bool
}

// WithObserver instruments every node of the local cluster with one shared
// Observer (see Observer — counters aggregate across the nodes and events
// carry node ids).
func WithObserver(ob *Observer) ClusterOption {
	return func(o *clusterOptions) { o.observer = ob }
}

// WithIntraHost moves the cluster's data plane from loopback TCP to
// in-process shared memory: all nodes of a local cluster are co-located by
// construction, so their queue pairs become direct memory exchanges
// (package shmnic) — one copy from the sender's buffer into the receiver's,
// no kernel round trip. The control mesh stays on TCP. Listeners still open
// (the address book is built the same way), they just never carry block
// traffic.
func WithIntraHost() ClusterOption {
	return func(o *clusterOptions) { o.intra = true }
}

// NewLocalCluster starts n nodes over loopback TCP in one process, with
// ephemeral ports wired automatically — the quickest way to run real-socket
// RDMC (examples and integration tests use it).
func NewLocalCluster(n int, opts ...ClusterOption) ([]*Node, error) {
	if n < 1 {
		return nil, fmt.Errorf("rdmc: cluster needs at least one node, got %d", n)
	}
	var copts clusterOptions
	for _, opt := range opts {
		opt(&copts)
	}
	// One fresh domain per cluster keeps parallel clusters in one test
	// process fully isolated. Providers register at construction, before
	// NewLocalCluster returns — and therefore before any CreateGroup can
	// connect — so every pair of nodes routes consistently.
	var ex *shmnic.Exchange
	if copts.intra {
		ex = shmnic.NewExchange()
	}
	dataLns := make([]net.Listener, n)
	ctrlLns := make([]net.Listener, n)
	dataAddrs := make(map[int]string, n)
	ctrlAddrs := make(map[int]string, n)
	closeAll := func() {
		for i := 0; i < n; i++ {
			if dataLns[i] != nil {
				_ = dataLns[i].Close()
			}
			if ctrlLns[i] != nil {
				_ = ctrlLns[i].Close()
			}
		}
	}
	for i := 0; i < n; i++ {
		var err error
		if dataLns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			closeAll()
			return nil, err
		}
		if ctrlLns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			closeAll()
			return nil, err
		}
		dataAddrs[i] = dataLns[i].Addr().String()
		ctrlAddrs[i] = ctrlLns[i].Addr().String()
	}

	nodes := make([]*Node, n)
	errs := make(chan error, n)
	results := make(chan struct {
		i    int
		node *Node
	}, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			node, err := newTCPNode(TCPConfig{
				NodeID:    i,
				DataAddrs: dataAddrs,
				CtrlAddrs: ctrlAddrs,
				Observer:  copts.observer,
				intra:     ex,
			}, dataLns[i], ctrlLns[i])
			if err != nil {
				errs <- fmt.Errorf("rdmc: node %d: %w", i, err)
				return
			}
			results <- struct {
				i    int
				node *Node
			}{i, node}
		}()
	}
	for done := 0; done < n; done++ {
		select {
		case err := <-errs:
			for _, nd := range nodes {
				if nd != nil {
					_ = nd.Close()
				}
			}
			return nil, err
		case r := <-results:
			nodes[r.i] = r.node
		}
	}
	return nodes, nil
}

func toNodeAddrs(in map[int]string) map[rdma.NodeID]string {
	out := make(map[rdma.NodeID]string, len(in))
	for id, addr := range in {
		out[rdma.NodeID(id)] = addr
	}
	return out
}

// realHost provides wall-clock services for real-transport nodes.
type realHost struct {
	start time.Time
}

var _ core.Host = realHost{}

// Now implements core.Host.
func (h realHost) Now() time.Duration { return time.Since(h.start) }

// ChargeCopy implements core.Host: the copy already happened in real time.
func (realHost) ChargeCopy(n int, fn func()) { fn() }
