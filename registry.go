package rdmc

import (
	"errors"
	"fmt"
	"sync"

	"rdmc/internal/rdma"
	"rdmc/internal/service"
)

// Registry is the RDMC-as-a-service control plane: a shared directory of
// tenants and named groups over a live roster of nodes, plus one
// weighted-fair send throttle per attached node's NIC. Build one Registry,
// JoinRegistry every node into it, register tenants with their bandwidth
// weights and admission budgets, and let tenants draw k-of-n groups against
// the roster — the Cosmos-style many-group workload (paper §5) as an API.
//
// The Registry is logically centralized, like Derecho's membership service.
// In-process deployments (NewSimCluster, NewLocalCluster) share the one
// instance; the dataplane stays exactly the per-group RDMC protocol.
type Registry struct {
	cfg RegistryConfig
	dir *service.Directory

	mu        sync.Mutex
	throttles map[int]*service.WFQThrottle // node id → NIC send throttle
	tenants   map[string]*Tenant
}

// RegistryConfig seeds the service layer.
type RegistryConfig struct {
	// Seed drives the k-of-n member draws (fixed seed → reproducible
	// overlays).
	Seed int64
	// ThrottleBytes is each node's send budget: how many bytes of block
	// payload all its groups together may hold in flight. Zero disables
	// QoS throttling — groups contend unmanaged, as without a registry.
	ThrottleBytes int
	// FirstGroupID is the first group id the registry allocates
	// (default 1); keep the allocated range free of plain CreateGroup and
	// session ids.
	FirstGroupID int
}

// NewRegistry builds an empty registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	first := uint32(1)
	if cfg.FirstGroupID > 0 {
		first = uint32(cfg.FirstGroupID)
	}
	return &Registry{
		cfg:       cfg,
		dir:       service.NewDirectory(service.DirectoryConfig{Seed: cfg.Seed, FirstGroupID: first}),
		throttles: make(map[int]*service.WFQThrottle),
		tenants:   make(map[string]*Tenant),
	}
}

// JoinRegistry attaches this node to the registry's live roster and, when
// QoS is enabled, installs the node's weighted-fair send throttle. Groups
// and sessions created afterwards with a Tenant set are paced by it.
func (n *Node) JoinRegistry(r *Registry) error {
	if n.registry != nil && n.registry != r {
		return errors.New("rdmc: node already joined a different registry")
	}
	n.registry = r
	r.dir.Attach(rdma.NodeID(n.id))
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cfg.ThrottleBytes > 0 && r.throttles[n.id] == nil {
		th := service.NewWFQThrottle(r.cfg.ThrottleBytes)
		for name, t := range r.tenants {
			_ = th.AddClass(name, t.cfg.Weight)
		}
		if n.observer != nil {
			th.SetMetrics(n.observer.Registry())
		}
		r.throttles[n.id] = th
	}
	return nil
}

// Registry returns the registry this node joined, or nil.
func (n *Node) Registry() *Registry { return n.registry }

// nodeThrottle returns the node's NIC throttle (nil when QoS is off).
func (r *Registry) nodeThrottle(node int) *service.WFQThrottle {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.throttles[node]
}

// Roster returns the attached node ids in order.
func (r *Registry) Roster() []int {
	ids := r.dir.Roster()
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

// TenantConfig is one tenant's bandwidth share and admission budget.
type TenantConfig struct {
	// Weight is the tenant's share of every NIC's send budget under
	// contention (default 1): a weight-3 tenant drains three bytes for
	// every byte a weight-1 tenant drains.
	Weight int
	// MaxInFlight caps the tenant's concurrently admitted transfers
	// (0 = unlimited).
	MaxInFlight int
	// MaxQueuedBytes sizes the tenant's overflow queue; zero rejects
	// over-cap submissions outright (the reject-vs-queue policy).
	MaxQueuedBytes int64
}

// AddTenant registers a tenant and propagates its weight to every node's
// throttle.
func (r *Registry) AddTenant(name string, cfg TenantConfig) (*Tenant, error) {
	if cfg.Weight <= 0 {
		cfg.Weight = 1
	}
	inner, err := r.dir.AddTenant(name, service.TenantConfig{
		Weight:         cfg.Weight,
		MaxInFlight:    cfg.MaxInFlight,
		MaxQueuedBytes: cfg.MaxQueuedBytes,
	})
	if err != nil {
		return nil, err
	}
	t := &Tenant{r: r, name: name, cfg: cfg, inner: inner}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tenants[name] = t
	for _, th := range r.throttles {
		_ = th.AddClass(name, cfg.Weight)
	}
	return t, nil
}

// Tenant returns a registered tenant handle, or nil.
func (r *Registry) Tenant(name string) *Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tenants[name]
}

// bindGroup routes one allocated group-id range to a tenant's class on a
// node's throttle and returns the throttle for the group config.
func (r *Registry) bindGroup(node int, spec service.GroupSpec) *service.WFQThrottle {
	th := r.nodeThrottle(node)
	if th == nil {
		return nil
	}
	_ = th.BindSpan(spec.ID, spec.Span, spec.Tenant)
	return th
}

// Tenant is one tenant's handle: named-group registration, k-of-n draws,
// and admission control.
type Tenant struct {
	r     *Registry
	name  string
	cfg   TenantConfig
	inner *service.Tenant
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// GroupSpec is a resolved registration: the allocated group id and the
// concrete membership (Members[0] is the root).
type GroupSpec struct {
	ID      int
	Tenant  string
	Name    string
	Members []int
}

func specFromService(gs service.GroupSpec) GroupSpec {
	out := GroupSpec{ID: int(gs.ID), Tenant: gs.Tenant, Name: gs.Name,
		Members: make([]int, len(gs.Members))}
	for i, m := range gs.Members {
		out.Members[i] = int(m)
	}
	return out
}

// DrawGroup registers a named group whose k members are drawn from the live
// roster (seeded, deterministic) and allocates its group id.
func (t *Tenant) DrawGroup(name string, k int) (GroupSpec, error) {
	gs, err := t.r.dir.DrawGroup(t.name, name, k)
	if err != nil {
		return GroupSpec{}, err
	}
	return specFromService(gs), nil
}

// RegisterGroup registers a named group with explicit members.
func (t *Tenant) RegisterGroup(name string, members []int) (GroupSpec, error) {
	ids := make([]rdma.NodeID, len(members))
	for i, m := range members {
		ids[i] = rdma.NodeID(m)
	}
	gs, err := t.r.dir.RegisterGroup(t.name, name, ids)
	if err != nil {
		return GroupSpec{}, err
	}
	return specFromService(gs), nil
}

// Lookup resolves one of this tenant's registered groups by name.
func (t *Tenant) Lookup(name string) (GroupSpec, bool) {
	gs, ok := t.r.dir.Lookup(t.name, name)
	if !ok {
		return GroupSpec{}, false
	}
	return specFromService(gs), true
}

// CreateGroup instantiates this node's endpoint of a registered group: the
// spec supplies id and members, and the node's throttle (when QoS is on)
// paces the group under the tenant's weight. Every member node calls it with
// the same spec, like plain Node.CreateGroup.
func (t *Tenant) CreateGroup(n *Node, spec GroupSpec, cfg GroupConfig, cbs Callbacks) (*Group, error) {
	if n.registry != t.r {
		return nil, errors.New("rdmc: node has not joined this tenant's registry")
	}
	gs, ok := t.r.dir.Lookup(t.name, spec.Name)
	if !ok || int(gs.ID) != spec.ID {
		return nil, fmt.Errorf("rdmc: group %q/%q is not registered", t.name, spec.Name)
	}
	cc, err := cfg.coreConfig(cbs)
	if err != nil {
		return nil, err
	}
	cc.Throttle = t.r.bindGroup(n.id, gs)
	members := make([]rdma.NodeID, len(gs.Members))
	copy(members, gs.Members)
	g, err := n.engine.CreateGroup(gs.ID, members, cc)
	if err != nil {
		return nil, err
	}
	return &Group{inner: g}, nil
}

// Submit runs the tenant's admission control around one application-level
// transfer of the given size: within MaxInFlight, start runs synchronously;
// past it the transfer queues (within MaxQueuedBytes) and starts from a
// later Done; past both it is rejected. Exactly one Done is owed per nil
// return.
func (t *Tenant) Submit(bytes int64, start func()) error {
	return t.inner.Submit(bytes, start)
}

// Done releases one admitted transfer and starts the queue head, if any.
func (t *Tenant) Done() { t.inner.Done() }

// TenantStats mirrors the service layer's admission counters.
type TenantStats = service.TenantStats

// Stats snapshots the tenant's admission counters.
func (t *Tenant) Stats() TenantStats { return t.inner.Stats() }
