package rdmc_test

import (
	"errors"
	"testing"

	"rdmc"
)

// TestRegistryEndToEnd drives the public service API over a simulated
// cluster: two tenants with 3:1 bandwidth weights draw k-of-n groups against
// the roster, create them through their tenant handles, and multicast
// concurrently through the per-node WFQ throttles. Everything must deliver
// (throttling stalls, never deadlocks) and both tenants' admission counters
// must add up.
func TestRegistryEndToEnd(t *testing.T) {
	c, err := rdmc.NewSimCluster(rdmc.SimConfig{Nodes: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	reg := rdmc.NewRegistry(rdmc.RegistryConfig{Seed: 7, ThrottleBytes: 256 << 10})
	for i := 0; i < c.Nodes(); i++ {
		if err := c.Node(i).JoinRegistry(reg); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(reg.Roster()); got != 12 {
		t.Fatalf("roster size = %d, want 12", got)
	}

	heavy, err := reg.AddTenant("heavy", rdmc.TenantConfig{Weight: 3, MaxInFlight: 2, MaxQueuedBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	light, err := reg.AddTenant("light", rdmc.TenantConfig{Weight: 1, MaxInFlight: 2, MaxQueuedBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}

	type liveGroup struct {
		spec      rdmc.GroupSpec
		endpoints []*rdmc.Group
		delivered *int
	}
	var groups []liveGroup
	for _, ten := range []*rdmc.Tenant{heavy, light} {
		for gi := 0; gi < 4; gi++ {
			spec, err := ten.DrawGroup(string(rune('a'+gi)), 3)
			if err != nil {
				t.Fatal(err)
			}
			delivered := new(int)
			lg := liveGroup{spec: spec, delivered: delivered}
			for _, m := range spec.Members {
				g, err := ten.CreateGroup(c.Node(m), spec, rdmc.GroupConfig{BlockSize: 8 << 10},
					rdmc.Callbacks{Completion: func(int, []byte, int) { *delivered++ }})
				if err != nil {
					t.Fatal(err)
				}
				lg.endpoints = append(lg.endpoints, g)
			}
			groups = append(groups, lg)
		}
	}

	// Every root submits one transfer through its tenant's admission gate.
	for i, lg := range groups {
		ten := heavy
		if lg.spec.Tenant == "light" {
			ten = light
		}
		root, size := lg.endpoints[0], 128<<10
		if err := ten.Submit(int64(size), func() {
			if err := root.SendSized(size); err != nil {
				t.Errorf("group %d send: %v", i, err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	// MaxInFlight is 2, so each tenant starts two transfers now and holds
	// two in its queue until Done frees a slot: drain in rounds, running
	// the virtual clock between them.
	done := make([]bool, len(groups))
	for round := 0; round < len(groups); round++ {
		c.Run()
		progressed := false
		for i, lg := range groups {
			if done[i] || *lg.delivered < len(lg.spec.Members) {
				continue
			}
			done[i] = true
			progressed = true
			if lg.spec.Tenant == "light" {
				light.Done()
			} else {
				heavy.Done()
			}
		}
		if !progressed {
			break
		}
	}
	for i, lg := range groups {
		if got, want := *lg.delivered, len(lg.spec.Members); got != want {
			t.Errorf("group %d (%s/%s): %d member deliveries, want %d",
				i, lg.spec.Tenant, lg.spec.Name, got, want)
		}
	}
	for _, ten := range []*rdmc.Tenant{heavy, light} {
		s := ten.Stats()
		if s.Admitted != 4 || s.Completed != 4 || s.InFlight != 0 {
			t.Errorf("tenant %s stats = %+v, want 4 admitted, 4 completed, 0 in flight", ten.Name(), s)
		}
	}

	// Guard rails: unregistered specs and foreign registries are rejected.
	if _, err := heavy.CreateGroup(c.Node(0), rdmc.GroupSpec{ID: 999, Name: "nope"},
		rdmc.GroupConfig{}, rdmc.Callbacks{}); err == nil {
		t.Error("creating an unregistered group succeeded")
	}
	other := rdmc.NewRegistry(rdmc.RegistryConfig{})
	if err := c.Node(0).JoinRegistry(other); err == nil {
		t.Error("joining a second registry succeeded")
	}
	if _, err := heavy.DrawGroup("too-big", 13); err == nil {
		t.Error("drawing more members than the roster succeeded")
	}
}

// TestRegistrySessionTenant pins the session plumbing: a session with a
// Tenant set must resolve the tenant (and reject unknown ones) and still
// deliver across the throttle.
func TestRegistrySessionTenant(t *testing.T) {
	c, err := rdmc.NewSimCluster(rdmc.SimConfig{Nodes: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	reg := rdmc.NewRegistry(rdmc.RegistryConfig{Seed: 3, ThrottleBytes: 64 << 10})
	for i := 0; i < 4; i++ {
		if err := c.Node(i).JoinRegistry(reg); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.AddTenant("svc", rdmc.TenantConfig{Weight: 2}); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Node(0).NewSession(rdmc.SessionConfig{
		ID: 5000, Members: []int{0, 1, 2, 3}, Tenant: "ghost", MetadataOnly: true,
	}, rdmc.SessionCallbacks{}); err == nil {
		t.Fatal("session with unknown tenant succeeded")
	}

	delivered := make([]int, 4)
	sessions := make([]*rdmc.Session, 4)
	for i := 0; i < 4; i++ {
		who := i
		s, err := c.Node(i).NewSession(rdmc.SessionConfig{
			ID: 5000, Members: []int{0, 1, 2, 3}, BlockSize: 4 << 10,
			MetadataOnly: true, Tenant: "svc",
		}, rdmc.SessionCallbacks{
			Deliver: func(uint64, []byte, int) { delivered[who]++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	for i := 0; i < 3; i++ {
		if err := sessions[0].SendSized(32 << 10); err != nil {
			t.Fatal(err)
		}
	}
	c.Run()
	for i, d := range delivered {
		if d != 3 {
			t.Errorf("node %d delivered %d, want 3", i, d)
		}
	}
	for _, s := range sessions {
		if err := s.Close(); err != nil && !errors.Is(err, rdmc.ErrSessionEvicted) {
			t.Fatal(err)
		}
	}
}
