package rdmc_test

import (
	"bytes"
	"encoding/json"
	"expvar"
	"sync"
	"testing"
	"time"

	"rdmc"
)

// metricsSnapshot mirrors the JSON shape of Observer.MetricsJSON.
type metricsSnapshot struct {
	Counters   map[string]uint64          `json:"counters"`
	Histograms map[string]json.RawMessage `json:"histograms"`
}

// chromeTrace mirrors the Chrome trace envelope.
type chromeTrace struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		PID  int     `json:"pid"`
	} `json:"traceEvents"`
}

func TestObserverSimCluster(t *testing.T) {
	ob := rdmc.NewObserver(0)
	cluster, err := rdmc.NewSimCluster(rdmc.SimConfig{Nodes: 3, Seed: 1, Observer: ob})
	if err != nil {
		t.Fatal(err)
	}
	members := []int{0, 1, 2}
	var groups []*rdmc.Group
	for i := 0; i < 3; i++ {
		g, err := cluster.Node(i).CreateGroup(5, members, rdmc.GroupConfig{BlockSize: 128 << 10}, rdmc.Callbacks{})
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, g)
	}
	const msgs = 2
	for i := 0; i < msgs; i++ {
		if err := groups[0].SendSized(1 << 20); err != nil {
			t.Fatal(err)
		}
	}
	cluster.Run()

	data, err := ob.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap metricsSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
	// Every layer must have reported: engine deliveries (one per member per
	// message), NIC posts, and at least one batch-size observation.
	if got, want := snap.Counters["core.delivered"], uint64(msgs*len(members)); got != want {
		t.Errorf("core.delivered = %d, want %d", got, want)
	}
	for _, name := range []string{"core.blocks_sent", "core.blocks_recv", "core.ctrl_tx", "core.ctrl_rx", "nic.posts", "nic.completions"} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %q never incremented; counters = %v", name, snap.Counters)
		}
	}
	for _, name := range []string{"core.batch_run", "core.msg_bytes"} {
		if _, ok := snap.Histograms[name]; !ok {
			t.Errorf("histogram %q missing from snapshot", name)
		}
	}

	if ob.EventCount() == 0 {
		t.Fatal("event ring recorded nothing")
	}
	var buf bytes.Buffer
	if err := ob.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var slices, instants int
	for _, ev := range trace.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
		case "i":
			instants++
		}
	}
	if slices == 0 || instants == 0 {
		t.Errorf("trace has %d slices and %d instants; want both nonzero (total %d events)",
			slices, instants, len(trace.TraceEvents))
	}
}

func TestObserverTCPClusterAndExpvar(t *testing.T) {
	ob := rdmc.NewObserver(1 << 12)
	nodes, err := rdmc.NewLocalCluster(2, rdmc.WithObserver(ob))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	members := []int{0, 1}
	var wg sync.WaitGroup
	wg.Add(2)
	var groups []*rdmc.Group
	for _, n := range nodes {
		g, err := n.CreateGroup(1, members, rdmc.GroupConfig{BlockSize: 64 << 10}, rdmc.Callbacks{
			Incoming:   func(size int) []byte { return make([]byte, size) },
			Completion: func(int, []byte, int) { wg.Done() },
		})
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, g)
	}
	msg := bytes.Repeat([]byte{0xab}, 300<<10)
	if err := groups[0].Send(msg); err != nil {
		t.Fatal(err)
	}
	waitTimeout(t, &wg, 20*time.Second)

	data, err := ob.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap metricsSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
	if got, want := snap.Counters["core.delivered"], uint64(2); got != want {
		t.Errorf("core.delivered = %d, want %d", got, want)
	}
	// The mesh must have counted the prepare announcement by kind, and the
	// TCP transport must have classified every data frame as direct or
	// staged.
	if snap.Counters["mesh.tx.prepare"] == 0 || snap.Counters["mesh.rx.prepare"] == 0 {
		t.Errorf("mesh per-kind counters missing: %v", snap.Counters)
	}
	if snap.Counters["tcpnic.direct_frames"]+snap.Counters["tcpnic.staged_frames"] == 0 {
		t.Errorf("tcpnic frame counters never incremented: %v", snap.Counters)
	}

	// expvar surface: publishing makes the live registry visible through
	// the standard /debug/vars machinery.
	ob.Publish("rdmc_test_metrics")
	v := expvar.Get("rdmc_test_metrics")
	if v == nil {
		t.Fatal("expvar variable not published")
	}
	var snap2 metricsSnapshot
	if err := json.Unmarshal([]byte(v.String()), &snap2); err != nil {
		t.Fatalf("expvar snapshot is not valid JSON: %v", err)
	}
	if snap2.Counters["core.delivered"] == 0 {
		t.Error("expvar snapshot missing live counters")
	}
}
