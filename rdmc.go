// Package rdmc is a Go implementation of RDMC — the reliable RDMA multicast
// for large objects from Behrens, Jha, Birman and Tremel (DSN 2018). It maps
// each multicast onto an efficient deterministic pattern of reliable unicast
// block transfers (sequential, chain, binomial tree, binomial pipeline, or a
// topology-aware hybrid), executed asynchronously with the paper's
// receiver-paced gating rules, and offers the reliability semantics of N
// side-by-side TCP links: messages arrive uncorrupted, in sender order,
// without duplication, or the group reports failure to every survivor.
//
// The library runs over two interchangeable transports:
//
//   - a deterministic virtual-time simulation of an RDMA fabric
//     (NewSimCluster), substituting for the Mellanox hardware of the paper's
//     testbeds and used by the benchmark harness to reproduce the paper's
//     tables and figures; and
//   - real TCP sockets (NewTCPNode / NewLocalCluster), realizing the
//     paper's §5.3 "RDMC on TCP" direction for genuinely runnable
//     deployments.
//
// The API mirrors the paper's Figure 1: create a group whose first member is
// the only sender, send messages, destroy the group. A successful Destroy on
// the root guarantees every message reached every member (§4.6).
package rdmc

import (
	"errors"
	"fmt"
	"time"

	"rdmc/internal/core"
	"rdmc/internal/obs"
	"rdmc/internal/rdma"
	"rdmc/internal/schedule"
)

// Algorithm selects the multicast-to-unicast mapping (§4.3 of the paper).
type Algorithm int

// Multicast algorithms, in the paper's order of increasing effectiveness.
const (
	// SequentialSend unicasts the full message to each receiver in turn —
	// the datacenter status quo the paper argues against.
	SequentialSend Algorithm = iota + 1
	// ChainSend relays blocks down a bucket brigade (chain replication).
	ChainSend
	// BinomialTree relays the whole message along a binomial tree.
	BinomialTree
	// BinomialPipeline is the paper's main algorithm: blocks are relayed
	// concurrently over a virtual hypercube, so every NIC sends and
	// receives simultaneously. This is the default.
	BinomialPipeline
	// MPIBcast is the MVAPICH-style comparator: binomial scatter followed
	// by a ring allgather.
	MPIBcast
	// HybridBinomial runs one binomial pipeline across rack leaders and
	// another within each rack (§4.3); it requires GroupConfig.RackOf.
	HybridBinomial
	// Adaptive picks the schedule per transfer from a live congestion
	// signal: uncontended groups run the static plan (hybrid when RackOf is
	// set, binomial pipeline otherwise) bit-for-bit, while saturated trunks
	// reroute leader traffic around the hot rack and host contention falls
	// back to a chain. Tune with GroupConfig.Adaptive.
	Adaptive
)

func (a Algorithm) String() string {
	switch a {
	case HybridBinomial:
		return "hybrid binomial pipeline"
	case Adaptive:
		return "adaptive"
	}
	return a.base().String()
}

func (a Algorithm) base() schedule.Algorithm {
	switch a {
	case SequentialSend:
		return schedule.Sequential
	case ChainSend:
		return schedule.Chain
	case BinomialTree:
		return schedule.BinomialTree
	case BinomialPipeline, 0:
		return schedule.BinomialPipeline
	case MPIBcast:
		return schedule.MPIScatterAllgather
	default:
		return schedule.Algorithm(0)
	}
}

// AdaptivePolicy tunes the Adaptive algorithm. Every field's zero value
// selects a sensible default, so AdaptivePolicy{} works out of the box.
type AdaptivePolicy struct {
	// SaturateAt is the trunk demand/capacity pressure at which a rack
	// counts as saturated and its leader traffic is rerouted; ClearAt is
	// the pressure below which it recovers (hysteresis band). Defaults
	// 1.25 and 0.75.
	SaturateAt float64
	ClearAt    float64
	// HostBusyAt is the per-NIC-port concurrent flow count at which a flat
	// fabric counts as contended and the plan falls back to a chain
	// (default 3). StallBusyAt is the credit-stall fraction with the same
	// effect (default 0.5).
	HostBusyAt  float64
	StallBusyAt float64
	// BlockScale multiplies the block size while contention is detected
	// (default 2); 1 disables block-size adaptation.
	BlockScale int
	// Replan enables switching the remaining blocks of an in-flight
	// transfer to a new plan when the signal shifts mid-transfer.
	Replan bool
	// MinReplanBlocks is the minimum remaining block count for which a
	// mid-transfer re-plan engages (default 8).
	MinReplanBlocks int
}

func (p AdaptivePolicy) schedulePolicy() schedule.AdaptivePolicy {
	return schedule.AdaptivePolicy{
		SaturateAt:      p.SaturateAt,
		ClearAt:         p.ClearAt,
		HostBusyAt:      p.HostBusyAt,
		StallBusyAt:     p.StallBusyAt,
		BlockScale:      p.BlockScale,
		Replan:          p.Replan,
		MinReplanBlocks: p.MinReplanBlocks,
	}
}

// Callbacks notify the application of group events (the paper's Figure 1
// callback pair plus failure notification).
type Callbacks struct {
	// Incoming runs on receivers when a transfer is announced; it returns
	// the buffer the message lands in (at least size bytes), or nil to
	// run the transfer metadata-only (simulation studies).
	Incoming func(size int) []byte
	// Completion runs when a message is locally complete and its memory
	// may be reused; this can precede other receivers finishing (§4.1).
	Completion func(seq int, data []byte, size int)
	// Failure runs at most once if the group fails.
	Failure func(err error)
}

// GroupConfig carries per-group parameters.
type GroupConfig struct {
	// BlockSize is the relaying granularity for large messages; zero
	// selects 1 MiB, the paper's usual operating point.
	BlockSize int
	// Algorithm selects the schedule; zero selects BinomialPipeline.
	Algorithm Algorithm
	// RackOf maps each member rank to a rack index, required by
	// HybridBinomial and optional for Adaptive (without it the adaptive
	// planner treats the fabric as flat).
	RackOf []int
	// Adaptive tunes the Adaptive algorithm's thresholds and re-planning;
	// the zero value selects the defaults documented on AdaptivePolicy.
	// Ignored by the static algorithms.
	Adaptive AdaptivePolicy
	// SendWindow is how many block sends each member keeps in flight
	// concurrently; sends still post in schedule order. Zero selects the
	// default of 4 (see the design notes in DESIGN.md).
	SendWindow int
	// RecvWindow is how many receives each member keeps posted ahead of
	// its arrivals; zero matches SendWindow so the pipeline widens at
	// both ends together (see the design notes in DESIGN.md — 1 keeps
	// the pipeline in lockstep).
	RecvWindow int
	// RecordStats captures per-message timings (Table 1 / Figure 5).
	RecordStats bool
}

func (c GroupConfig) coreConfig(cbs Callbacks) (core.GroupConfig, error) {
	if c.BlockSize == 0 {
		c.BlockSize = 1 << 20
	}
	var gen schedule.Generator
	switch {
	case c.Algorithm == HybridBinomial:
		if c.RackOf == nil {
			return core.GroupConfig{}, errors.New("rdmc: HybridBinomial requires RackOf")
		}
		gen = schedule.HybridGen{RackOf: c.RackOf}
	case c.Algorithm == Adaptive:
		gen = schedule.AdaptiveGen{RackOf: c.RackOf, Policy: c.Adaptive.schedulePolicy()}
	case c.Algorithm.base() == schedule.Algorithm(0):
		return core.GroupConfig{}, fmt.Errorf("rdmc: unknown algorithm %d", c.Algorithm)
	default:
		gen = schedule.New(c.Algorithm.base())
	}
	return core.GroupConfig{
		BlockSize:   c.BlockSize,
		Generator:   gen,
		SendWindow:  c.SendWindow,
		RecvWindow:  c.RecvWindow,
		RecordStats: c.RecordStats,
		Callbacks: core.Callbacks{
			Incoming:   cbs.Incoming,
			Completion: cbs.Completion,
			Failure:    cbs.Failure,
		},
	}, nil
}

// Node is one process's RDMC endpoint over some transport.
type Node struct {
	engine *core.Engine
	id     int
	// provider is the node's NIC, kept for layers that need their own
	// queue pairs beside the engine's (sessions' status tables).
	provider rdma.Provider
	observer *obs.Obs
	closers  []func() error
	registry *Registry
}

// ID returns the node's identity.
func (n *Node) ID() int { return n.id }

// CreateGroup creates the local endpoint of group id with the given member
// list (members[0] is the root). Every member must call CreateGroup with the
// same id and member list, as in the paper.
func (n *Node) CreateGroup(id int, members []int, cfg GroupConfig, cbs Callbacks) (*Group, error) {
	if id < 0 || int64(id) > int64(^uint32(0)) {
		return nil, fmt.Errorf("rdmc: group id %d outside 32-bit range", id)
	}
	cc, err := cfg.coreConfig(cbs)
	if err != nil {
		return nil, err
	}
	ids := make([]rdma.NodeID, len(members))
	for i, m := range members {
		ids[i] = rdma.NodeID(m)
	}
	g, err := n.engine.CreateGroup(core.GroupID(id), ids, cc)
	if err != nil {
		return nil, err
	}
	return &Group{inner: g}, nil
}

// Close releases the node's transports. Active groups fail.
func (n *Node) Close() error {
	err := n.engine.Close()
	for _, fn := range n.closers {
		if cerr := fn(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Group is one RDMC multicast session.
type Group struct {
	inner *core.Group
}

// Rank returns the local rank; rank 0 is the root (the only sender).
func (g *Group) Rank() int { return g.inner.Rank() }

// Err returns the group's failure, if any.
func (g *Group) Err() error { return g.inner.Err() }

// Delivered returns the number of locally completed messages.
func (g *Group) Delivered() int { return g.inner.Delivered() }

// Send multicasts data to the group; only the root may call it. The buffer
// must remain untouched until the Completion callback fires for it.
func (g *Group) Send(data []byte) error { return g.inner.Send(data) }

// SendSized multicasts a metadata-only message of the given size (the full
// protocol runs, no user bytes move) — the tool for simulation studies.
func (g *Group) SendSized(size int) error { return g.inner.SendSized(size) }

// Destroy tears the group down asynchronously. On the root, done receives
// nil only if every message reached every member (§4.6's close guarantee).
// Simulation deployments observe done after driving the cluster's clock.
func (g *Group) Destroy(done func(err error)) { g.inner.Destroy(done) }

// DestroyWait runs Destroy and blocks for the outcome, up to the timeout.
// It suits real-transport deployments; on a simulated cluster use Destroy
// and drive the clock instead.
func (g *Group) DestroyWait(timeout time.Duration) error {
	ch := make(chan error, 1)
	g.inner.Destroy(func(err error) { ch <- err })
	select {
	case err := <-ch:
		return err
	case <-time.After(timeout):
		return fmt.Errorf("rdmc: destroy timed out after %v", timeout)
	}
}

// Stats returns the timing record of the most recent completed message when
// GroupConfig.RecordStats is set, else nil.
func (g *Group) Stats() *core.TransferStats { return g.inner.LastStats() }
