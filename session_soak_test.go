package rdmc_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rdmc"
)

// TestManySessionsChurnRace is the multi-tenancy soak: many concurrent
// sessions churning create → send → evict → close over the same three
// engines and real TCP sockets, the workload `go test -race` needs to expose
// unsynchronized cross-session state (the failure-observer list, provider
// region tables, engine group table). 64 sessions total (8 workers × 8
// generations, halved with -short), every generation asserting gap-free
// delivery and — on eviction generations — a clean epoch-2 install after one
// member's endpoint disappears mid-stream.
func TestManySessionsChurnRace(t *testing.T) {
	nodes, err := rdmc.NewLocalCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	workers, generations := 8, 8
	if testing.Short() {
		workers, generations = 4, 4
	}

	var churned atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for gen := 0; gen < generations; gen++ {
				id := 20000 + (w*generations+gen)*100
				if !churnOneSession(t, nodes, id, gen%2 == 1) {
					return
				}
				churned.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if got, want := churned.Load(), int64(workers*generations); got != want {
		t.Fatalf("churned %d sessions, want %d", got, want)
	}
}

// churnOneSession runs one session generation across all three nodes and
// reports whether it completed (failures are reported through t and abort
// the worker).
func churnOneSession(t *testing.T, nodes []*rdmc.Node, id int, evict bool) bool {
	members := []int{0, 1, 2}
	recs := make([]*sessionRecorder, 3)
	sessions := make([]*rdmc.Session, 3)
	for i, n := range nodes {
		recs[i] = &sessionRecorder{}
		s, err := n.NewSession(
			rdmc.SessionConfig{ID: id, Members: members, BlockSize: 8 << 10},
			recs[i].callbacks(),
		)
		if err != nil {
			t.Errorf("session %d node %d: %v", id, i, err)
			return false
		}
		sessions[i] = s
	}
	defer func() {
		for _, s := range sessions {
			_ = s.Close()
		}
	}()

	waitFor := func(what string, cond func() bool) bool {
		deadline := time.Now().Add(20 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Errorf("session %d: timed out waiting for %s", id, what)
				return false
			}
			time.Sleep(time.Millisecond)
		}
		return true
	}

	payload := func(tag byte) []byte {
		b := make([]byte, 4<<10)
		b[0] = tag
		return b
	}
	for i := 0; i < 2; i++ {
		if err := sessions[0].Send(payload(byte(i + 1))); err != nil {
			t.Errorf("session %d send %d: %v", id, i, err)
			return false
		}
	}
	if !waitFor("initial deliveries", func() bool {
		return recs[0].delivered() >= 2 && recs[1].delivered() >= 2 && recs[2].delivered() >= 2
	}) {
		return false
	}

	if evict {
		// Member 2's endpoint vanishes; the next send breaks its queue
		// pairs and the survivors must agree on epoch 2 and keep going.
		_ = sessions[2].Close()
		if err := sessions[0].Send(payload(3)); err != nil {
			t.Errorf("session %d post-close send: %v", id, err)
			return false
		}
		if !waitFor("epoch 2 deliveries", func() bool {
			return recs[0].delivered() >= 3 && recs[1].delivered() >= 3 &&
				sessions[0].Epoch() >= 2 && sessions[1].Epoch() >= 2
		}) {
			return false
		}
		recs[0].checkGapFree(t, 0, []byte{1, 2, 3})
		recs[1].checkGapFree(t, 1, []byte{1, 2, 3})
	} else {
		recs[2].checkGapFree(t, 2, []byte{1, 2})
	}
	return true
}
