package core_test

import (
	"bytes"
	"math/rand"
	"testing"

	"rdmc/internal/core"
	"rdmc/internal/obs"
	"rdmc/internal/rdma"
	"rdmc/internal/schedule"
	"rdmc/internal/simhost"
	"rdmc/internal/simnet"
)

// replanGrid builds a 12-node, 3-rack deployment for the mid-transfer
// re-plan tests: racks 0 and 1 hold an 8-member adaptive group, rack 2's
// nodes stay outside it as foreign-traffic sources. The trunk matches one
// NIC (12.5 GB/s), so a handful of foreign flows into rack 1 pushes its
// trunk pressure far past the adaptive policy's SaturateAt.
func replanGrid(t *testing.T, sink *obs.Obs) *simhost.Grid {
	t.Helper()
	grid, err := simhost.New(simhost.Config{
		Cluster: simnet.ClusterConfig{
			Nodes:          12,
			RackSize:       4,
			LinkBandwidth:  12.5e9,
			TrunkBandwidth: 12.5e9,
			Latency:        1.5e-6,
			CPU:            simnet.DefaultCPUConfig(),
		},
		Seed:     1,
		Observer: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	return grid
}

// replanGroup creates the adaptive group on ranks 0..7 (racks 0 and 1).
func replanGroup(t *testing.T, grid *simhost.Grid, policy schedule.AdaptivePolicy, sendWindow, recvWindow int) ([]*core.Group, []*receiverState) {
	t.Helper()
	const groupSize = 8
	rackOf := adaptiveRackOf(groupSize, 4)
	members := make([]rdma.NodeID, groupSize)
	for i := range members {
		members[i] = rdma.NodeID(i)
	}
	groups := make([]*core.Group, groupSize)
	states := make([]*receiverState, groupSize)
	for i := 0; i < groupSize; i++ {
		st := &receiverState{}
		states[i] = st
		g, err := grid.Engine(i).CreateGroup(1, members, core.GroupConfig{
			BlockSize:  512 << 10,
			Generator:  schedule.AdaptiveGen{RackOf: rackOf, Policy: policy},
			SendWindow: sendWindow,
			RecvWindow: recvWindow,
			Callbacks: core.Callbacks{
				Incoming: func(size int) []byte { return make([]byte, size) },
				Completion: func(seq int, data []byte, size int) {
					if data != nil {
						data = append([]byte(nil), data...)
					}
					st.delivered = append(st.delivered, data)
					st.sizes = append(st.sizes, size)
				},
				Failure: func(err error) { st.failures = append(st.failures, err) },
			},
		})
		if err != nil {
			t.Fatalf("CreateGroup on node %d: %v", i, err)
		}
		groups[i] = g
	}
	return groups, states
}

func adaptiveRackOf(n, rackSize int) []int {
	rackOf := make([]int, n)
	for i := range rackOf {
		rackOf[i] = i / rackSize
	}
	return rackOf
}

// saturateRack1 launches four foreign bulk flows from rack 2 into rack 1's
// members at virtual time `at`, saturating rack 1's TOR downlink while the
// multicast is in flight.
func saturateRack1(grid *simhost.Grid, at float64) {
	grid.Sim().At(at, func() {
		for i := 0; i < 4; i++ {
			grid.Cluster().Transfer(simnet.NodeID(8+i), simnet.NodeID(4+i), 64<<20, func(bool) {})
		}
	})
}

// eventsOf filters the grid-wide event ring by kind.
func eventsOf(sink *obs.Obs, kind obs.EventKind) []obs.Event {
	var out []obs.Event
	for _, e := range sink.Ring().Snapshot() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// checkIntactDelivery asserts the safety property every re-plan outcome must
// preserve: no failures, exactly one delivery per member, and bytes
// identical to the root's message.
func checkIntactDelivery(t *testing.T, states []*receiverState, msg []byte) {
	t.Helper()
	for i, st := range states {
		if len(st.failures) != 0 {
			t.Fatalf("member %d failed: %v", i, st.failures)
		}
		if len(st.delivered) != 1 {
			t.Fatalf("member %d delivered %d messages, want exactly 1", i, len(st.delivered))
		}
		if st.sizes[0] != len(msg) {
			t.Errorf("member %d size = %d, want %d", i, st.sizes[0], len(msg))
		}
		if i != 0 && !bytes.Equal(st.delivered[0], msg) {
			t.Errorf("member %d delivered corrupt bytes", i)
		}
	}
}

// TestMidTransferReplanDeliversIntact is the re-plan acceptance test:
// contention arriving mid-transfer must trigger exactly one freeze/commit
// cutover at an interior block boundary, and the continuation must hand the
// application the same single, intact message a static run would — no gaps,
// no duplicate deliveries, no observable split.
func TestMidTransferReplanDeliversIntact(t *testing.T) {
	sink := obs.New(1 << 14)
	grid := replanGrid(t, sink)
	groups, states := replanGroup(t, grid, schedule.AdaptivePolicy{Replan: true}, 0, 0)

	msg := make([]byte, 32<<20) // 64 blocks of 512 KiB
	rand.New(rand.NewSource(5)).Read(msg)
	saturateRack1(grid, 0.5e-3) // well after the clean-signal plan decision
	if err := groups[0].Send(msg); err != nil {
		t.Fatal(err)
	}
	grid.Run()

	checkIntactDelivery(t, states, msg)

	commits := eventsOf(sink, obs.EvReplanCommit)
	if len(eventsOf(sink, obs.EvReplanFreeze)) != 1 || len(commits) != 1 {
		t.Fatalf("freeze/commit events = %d/%d, want 1/1",
			len(eventsOf(sink, obs.EvReplanFreeze)), len(commits))
	}
	k := len(msg) / (512 << 10)
	if b := int(commits[0].Block); b <= 0 || b >= k {
		t.Errorf("cutover boundary %d not an interior block of 0..%d", b, k)
	}
	if commits[0].Arg == 0 {
		t.Error("committed mask is zero — cutover committed without contention")
	}
	if got := eventsOf(sink, obs.EvReplanAbort); len(got) != 0 {
		t.Errorf("saw %d re-plan aborts alongside the commit", len(got))
	}
}

// TestReplanDisabledIgnoresContention pins the default policy: the same
// mid-transfer contention must not open the barrier when Replan is off, and
// delivery is of course still intact.
func TestReplanDisabledIgnoresContention(t *testing.T) {
	sink := obs.New(1 << 14)
	grid := replanGrid(t, sink)
	groups, states := replanGroup(t, grid, schedule.AdaptivePolicy{}, 0, 0)

	msg := make([]byte, 32<<20)
	rand.New(rand.NewSource(5)).Read(msg)
	saturateRack1(grid, 0.5e-3)
	if err := groups[0].Send(msg); err != nil {
		t.Fatal(err)
	}
	grid.Run()

	checkIntactDelivery(t, states, msg)
	if got := eventsOf(sink, obs.EvReplanFreeze); len(got) != 0 {
		t.Errorf("Replan=false opened %d freeze barriers", len(got))
	}
}

// TestReplanAbortsWhenTooFewBlocksRemain drives the barrier's abort arm:
// with MinReplanBlocks tuned so the freeze opens but the acked high-water
// mark lands past the profitability line, the root must flood Resume, ride
// the old plan out, and still deliver intact.
func TestReplanAbortsWhenTooFewBlocksRemain(t *testing.T) {
	sink := obs.New(1 << 14)
	grid := replanGrid(t, sink)
	// Lockstep sends pin the root's high-water mark low while a wide receive
	// window keeps posted receives running far ahead of it — the gap between
	// the freeze pre-check and the acked boundary that the abort arm lives in.
	groups, states := replanGroup(t, grid, schedule.AdaptivePolicy{Replan: true, MinReplanBlocks: 58}, 1, 8)

	msg := make([]byte, 32<<20)
	rand.New(rand.NewSource(5)).Read(msg)
	saturateRack1(grid, 0.1e-3)
	if err := groups[0].Send(msg); err != nil {
		t.Fatal(err)
	}
	grid.Run()

	checkIntactDelivery(t, states, msg)
	if got := eventsOf(sink, obs.EvReplanFreeze); len(got) != 1 {
		t.Fatalf("freeze barriers = %d, want 1", len(got))
	}
	if got := eventsOf(sink, obs.EvReplanCommit); len(got) != 0 {
		t.Fatalf("re-plan committed despite %d-block floor", 58)
	}
	if got := eventsOf(sink, obs.EvReplanAbort); len(got) != 1 {
		t.Fatalf("abort events = %d, want 1", len(got))
	}
}
