package core_test

import (
	"bytes"
	"errors"
	"fmt"
	"maps"
	"math/rand"
	"testing"

	"rdmc/internal/core"
	"rdmc/internal/rdma"
	"rdmc/internal/schedule"
	"rdmc/internal/simhost"
	"rdmc/internal/simnet"
)

// testGrid builds an n-node simulated deployment with fast links so protocol
// logic, not bandwidth, dominates test time.
func testGrid(t *testing.T, n int) *simhost.Grid {
	t.Helper()
	grid, err := simhost.New(simhost.Config{
		Cluster: simnet.ClusterConfig{
			Nodes:         n,
			LinkBandwidth: 12.5e9, // 100 Gb/s
			Latency:       1.5e-6,
			CPU:           simnet.DefaultCPUConfig(),
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return grid
}

// receiverState collects what one member observed.
type receiverState struct {
	delivered [][]byte
	sizes     []int
	failures  []error
}

// makeGroup creates the same group on every engine and returns the root's
// handle plus per-member observation state.
func makeGroup(t *testing.T, grid *simhost.Grid, id core.GroupID, cfg core.GroupConfig, withData bool) ([]*core.Group, []*receiverState) {
	t.Helper()
	n := grid.Nodes()
	members := make([]rdma.NodeID, n)
	for i := range members {
		members[i] = rdma.NodeID(i)
	}
	groups := make([]*core.Group, n)
	states := make([]*receiverState, n)
	for i := 0; i < n; i++ {
		st := &receiverState{}
		states[i] = st
		c := cfg
		c.Callbacks = core.Callbacks{
			Completion: func(seq int, data []byte, size int) {
				if data != nil {
					data = append([]byte(nil), data...)
				}
				st.delivered = append(st.delivered, data)
				st.sizes = append(st.sizes, size)
			},
			Failure: func(err error) { st.failures = append(st.failures, err) },
		}
		if withData {
			c.Callbacks.Incoming = func(size int) []byte { return make([]byte, size) }
		}
		g, err := grid.Engine(i).CreateGroup(id, members, c)
		if err != nil {
			t.Fatalf("CreateGroup on node %d: %v", i, err)
		}
		groups[i] = g
	}
	return groups, states
}

func TestMulticastDeliversIdenticalBytes(t *testing.T) {
	grid := testGrid(t, 4)
	groups, states := makeGroup(t, grid, 1, core.GroupConfig{BlockSize: 1024}, true)

	msg := make([]byte, 10_000)
	rand.New(rand.NewSource(7)).Read(msg)
	if err := groups[0].Send(msg); err != nil {
		t.Fatal(err)
	}
	grid.Run()

	for i, st := range states {
		if len(st.failures) != 0 {
			t.Fatalf("node %d failures: %v", i, st.failures)
		}
		if len(st.delivered) != 1 {
			t.Fatalf("node %d delivered %d messages, want 1", i, len(st.delivered))
		}
		if st.sizes[0] != len(msg) {
			t.Errorf("node %d size = %d, want %d", i, st.sizes[0], len(msg))
		}
		if i != 0 && !bytes.Equal(st.delivered[0], msg) {
			t.Errorf("node %d delivered corrupt bytes", i)
		}
	}
}

func TestMulticastAllAlgorithmsAndSizes(t *testing.T) {
	sizes := []int{1, 100, 1024, 1025, 9973} // including non-block-aligned
	for _, algo := range schedule.Algorithms() {
		for _, n := range []int{2, 3, 5, 8} {
			t.Run(fmt.Sprintf("%s/n=%d", algo, n), func(t *testing.T) {
				grid := testGrid(t, n)
				groups, states := makeGroup(t, grid, 1, core.GroupConfig{
					BlockSize: 1024,
					Generator: schedule.New(algo),
				}, true)
				var want [][]byte
				rng := rand.New(rand.NewSource(int64(n)))
				for seq, size := range sizes {
					msg := make([]byte, size)
					rng.Read(msg)
					want = append(want, msg)
					if err := groups[0].Send(msg); err != nil {
						t.Fatalf("send %d: %v", seq, err)
					}
				}
				grid.Run()
				for i, st := range states {
					if len(st.failures) != 0 {
						t.Fatalf("node %d failed: %v", i, st.failures)
					}
					if len(st.delivered) != len(sizes) {
						t.Fatalf("node %d delivered %d, want %d", i, len(st.delivered), len(sizes))
					}
					if i == 0 {
						continue
					}
					for seq := range want {
						if !bytes.Equal(st.delivered[seq], want[seq]) {
							t.Errorf("node %d message %d corrupted", i, seq)
						}
					}
				}
			})
		}
	}
}

func TestMessagesDeliverInSenderOrder(t *testing.T) {
	grid := testGrid(t, 4)
	groups, states := makeGroup(t, grid, 1, core.GroupConfig{BlockSize: 512}, true)
	for seq := 0; seq < 5; seq++ {
		msg := []byte{byte(seq)}
		if err := groups[0].Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	grid.Run()
	for i, st := range states {
		if len(st.delivered) != 5 {
			t.Fatalf("node %d delivered %d, want 5", i, len(st.delivered))
		}
		if i == 0 {
			continue
		}
		for seq, data := range st.delivered {
			if len(data) != 1 || data[0] != byte(seq) {
				t.Errorf("node %d message %d out of order: %v", i, seq, data)
			}
		}
	}
}

func TestSendSizedMetadataOnly(t *testing.T) {
	grid := testGrid(t, 4)
	groups, states := makeGroup(t, grid, 1, core.GroupConfig{BlockSize: 1 << 20}, false)
	if err := groups[0].SendSized(64 << 20); err != nil {
		t.Fatal(err)
	}
	grid.Run()
	for i, st := range states {
		if len(st.delivered) != 1 || st.sizes[0] != 64<<20 {
			t.Fatalf("node %d: delivered %d sizes %v", i, len(st.delivered), st.sizes)
		}
		if st.delivered[0] != nil {
			t.Errorf("node %d: metadata-only delivery carried data", i)
		}
	}
}

func TestSendErrors(t *testing.T) {
	grid := testGrid(t, 3)
	groups, _ := makeGroup(t, grid, 1, core.GroupConfig{BlockSize: 1024}, false)

	if err := groups[1].SendSized(100); !errors.Is(err, core.ErrNotRoot) {
		t.Errorf("non-root send: err = %v, want ErrNotRoot", err)
	}
	if err := groups[0].SendSized(0); err == nil {
		t.Error("zero-size send succeeded")
	}
	if err := groups[0].SendSized(1 << 40); !errors.Is(err, core.ErrMessageTooLarge) {
		t.Errorf("oversize send: err = %v, want ErrMessageTooLarge", err)
	}
}

func TestCreateGroupErrors(t *testing.T) {
	grid := testGrid(t, 3)
	members := []rdma.NodeID{0, 1, 2}
	if _, err := grid.Engine(0).CreateGroup(1, members, core.GroupConfig{}); err == nil {
		t.Error("zero block size accepted")
	}
	cfg := core.GroupConfig{BlockSize: 1024}
	if _, err := grid.Engine(0).CreateGroup(1, nil, cfg); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := grid.Engine(0).CreateGroup(1, []rdma.NodeID{1, 2}, cfg); !errors.Is(err, core.ErrNotMember) {
		t.Errorf("non-member create: err = %v, want ErrNotMember", err)
	}
	if _, err := grid.Engine(0).CreateGroup(1, members, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := grid.Engine(0).CreateGroup(1, members, cfg); !errors.Is(err, core.ErrGroupExists) {
		t.Errorf("duplicate create: err = %v, want ErrGroupExists", err)
	}
}

func TestSingleMemberGroupDeliversLocally(t *testing.T) {
	grid := testGrid(t, 1)
	var delivered int
	g, err := grid.Engine(0).CreateGroup(1, []rdma.NodeID{0}, core.GroupConfig{
		BlockSize: 64,
		Callbacks: core.Callbacks{Completion: func(int, []byte, int) { delivered++ }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SendSized(1000); err != nil {
		t.Fatal(err)
	}
	grid.Run()
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1", delivered)
	}
}

func TestDestroyBarrierSucceedsWhenAllDelivered(t *testing.T) {
	grid := testGrid(t, 4)
	groups, _ := makeGroup(t, grid, 1, core.GroupConfig{BlockSize: 1024}, false)
	for i := 0; i < 3; i++ {
		if err := groups[0].SendSized(5000); err != nil {
			t.Fatal(err)
		}
	}
	var closeErr = errors.New("sentinel: callback not invoked")
	groups[0].Destroy(func(err error) { closeErr = err })
	grid.Run()
	if closeErr != nil {
		t.Fatalf("close barrier: %v", closeErr)
	}
	// The paper's guarantee: a successful close means every message
	// reached every destination.
	for i := 1; i < 4; i++ {
		if got := groups[i].Delivered(); got != 3 {
			t.Errorf("node %d delivered %d, want 3", i, got)
		}
	}
	if err := groups[0].SendSized(10); !errors.Is(err, core.ErrGroupClosed) {
		t.Errorf("send after destroy: err = %v, want ErrGroupClosed", err)
	}
}

func TestDestroyBarrierWithNoMessages(t *testing.T) {
	grid := testGrid(t, 3)
	groups, _ := makeGroup(t, grid, 1, core.GroupConfig{BlockSize: 1024}, false)
	var closeErr = errors.New("sentinel")
	groups[0].Destroy(func(err error) { closeErr = err })
	grid.Run()
	if closeErr != nil {
		t.Fatalf("empty-group close: %v", closeErr)
	}
}

func TestFailureMidTransferReachesAllSurvivors(t *testing.T) {
	grid := testGrid(t, 8)
	groups, states := makeGroup(t, grid, 1, core.GroupConfig{BlockSize: 1 << 20}, false)
	if err := groups[0].SendSized(512 << 20); err != nil { // long transfer
		t.Fatal(err)
	}
	grid.Sim().After(0.005, func() { grid.FailNode(3) })
	grid.Run()

	for i, st := range states {
		if i == 3 {
			continue
		}
		if len(st.failures) == 0 {
			t.Errorf("survivor %d saw no failure", i)
			continue
		}
		var fe *core.FailureError
		if !errors.As(st.failures[0], &fe) {
			t.Errorf("survivor %d failure type %T", i, st.failures[0])
		}
	}
	// The root's close must report the failure.
	var closeErr error
	groups[0].Destroy(func(err error) { closeErr = err })
	grid.Run()
	if closeErr == nil {
		t.Error("close after failure reported success")
	}
	// And new sends must be refused.
	if err := groups[0].SendSized(10); err == nil {
		t.Error("send on failed group succeeded")
	}
}

func TestFailureCallbackFiresExactlyOnce(t *testing.T) {
	grid := testGrid(t, 4)
	groups, states := makeGroup(t, grid, 1, core.GroupConfig{BlockSize: 1 << 20}, false)
	if err := groups[0].SendSized(256 << 20); err != nil {
		t.Fatal(err)
	}
	grid.Sim().After(0.002, func() { grid.FailNode(2) })
	grid.Sim().After(0.004, func() { grid.FailNode(3) })
	grid.Run()
	for i, st := range states {
		if i >= 2 {
			continue
		}
		if len(st.failures) != 1 {
			t.Errorf("node %d failure callbacks = %d, want 1", i, len(st.failures))
		}
	}
}

func TestOverlappingGroupsWithDifferentSenders(t *testing.T) {
	// The paper's Figure 10 pattern: identical membership, k groups, one
	// sender each. All transfers must complete and share bandwidth.
	grid := testGrid(t, 4)
	n := grid.Nodes()
	members := make([]rdma.NodeID, n)
	for i := range members {
		members[i] = rdma.NodeID(i)
	}
	delivered := make([]int, n)
	var roots []*core.Group
	for gid := 0; gid < n; gid++ {
		rotated := make([]rdma.NodeID, n)
		for i := range members {
			rotated[i] = members[(i+gid)%n]
		}
		for i := 0; i < n; i++ {
			idx := i
			g, err := grid.Engine(i).CreateGroup(core.GroupID(gid+1), rotated, core.GroupConfig{
				BlockSize: 1 << 20,
				Callbacks: core.Callbacks{
					Completion: func(int, []byte, int) { delivered[idx]++ },
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if g.Rank() == 0 {
				roots = append(roots, g)
			}
		}
	}
	for _, g := range roots {
		if err := g.SendSized(32 << 20); err != nil {
			t.Fatal(err)
		}
	}
	grid.Run()
	for i, d := range delivered {
		if d != n {
			t.Errorf("node %d completed %d transfers, want %d", i, d, n)
		}
	}
}

func TestStatsRecorded(t *testing.T) {
	grid := testGrid(t, 4)
	groups, _ := makeGroup(t, grid, 1, core.GroupConfig{
		BlockSize:   1 << 20,
		RecordStats: true,
	}, false)
	if err := groups[0].SendSized(16 << 20); err != nil {
		t.Fatal(err)
	}
	grid.Run()

	root := groups[0].LastStats()
	if root == nil {
		t.Fatal("root stats missing")
	}
	if root.Blocks != 16 {
		t.Errorf("root blocks = %d, want 16", root.Blocks)
	}
	if root.SetupDoneAt < root.StartAt || root.DeliveredAt < root.SetupDoneAt {
		t.Errorf("root timeline inverted: %+v", root)
	}
	if len(root.Sends) == 0 {
		t.Error("root recorded no sends")
	}
	if root.SendBusy() <= 0 {
		t.Error("root send busy time not positive")
	}

	recv := groups[3].LastStats()
	if recv == nil {
		t.Fatal("receiver stats missing")
	}
	if len(recv.Recvs) != 16 {
		t.Errorf("receiver recv stamps = %d, want 16", len(recv.Recvs))
	}
	if recv.CopyTime <= 0 {
		t.Error("receiver copy time not charged")
	}
	if recv.TotalTime() <= 0 || recv.RecvSpan() <= 0 {
		t.Errorf("receiver spans not positive: total=%v span=%v", recv.TotalTime(), recv.RecvSpan())
	}
	if gaps := recv.RecvGaps(); len(gaps) != 15 {
		t.Errorf("receiver gaps = %d, want 15", len(gaps))
	}
}

func TestBinomialBeatsSequentialAtScale(t *testing.T) {
	// The core performance claim, as physics: replicating 64 MB to 7
	// receivers must take ≈7× the one-copy time sequentially but ≈1× with
	// the binomial pipeline.
	run := func(gen schedule.Generator) float64 {
		grid := testGrid(t, 8)
		groups, _ := makeGroup(t, grid, 1, core.GroupConfig{
			BlockSize: 1 << 20,
			Generator: gen,
		}, false)
		if err := groups[0].SendSized(64 << 20); err != nil {
			t.Fatal(err)
		}
		return grid.Run()
	}
	seq := run(schedule.New(schedule.Sequential))
	bin := run(schedule.New(schedule.BinomialPipeline))
	oneCopy := float64(64<<20) / 12.5e9

	if ratio := seq / oneCopy; ratio < 6.5 || ratio > 8 {
		t.Errorf("sequential/one-copy = %.2f, want ≈7", ratio)
	}
	if ratio := bin / oneCopy; ratio < 1.0 || ratio > 1.5 {
		t.Errorf("binomial/one-copy = %.2f, want ≈1", ratio)
	}
	if seq/bin < 4 {
		t.Errorf("sequential/binomial = %.2f, want ≫1", seq/bin)
	}
}

func TestEngineCloseReleasesGroupsQuietly(t *testing.T) {
	grid := testGrid(t, 3)
	groups, states := makeGroup(t, grid, 1, core.GroupConfig{BlockSize: 1024}, false)
	if err := grid.Engine(1).Close(); err != nil {
		t.Fatal(err)
	}
	// Closing one's own node is shutdown, not a failure.
	if len(states[1].failures) != 0 {
		t.Errorf("closed engine's group failure callbacks = %d, want 0", len(states[1].failures))
	}
	if err := groups[1].SendSized(1); !errors.Is(err, core.ErrNotRoot) {
		t.Errorf("send on closed member group: err = %v, want ErrNotRoot first", err)
	}
	if _, err := grid.Engine(1).CreateGroup(9, []rdma.NodeID{1}, core.GroupConfig{BlockSize: 1}); !errors.Is(err, core.ErrEngineClosed) {
		t.Errorf("create after close: err = %v, want ErrEngineClosed", err)
	}
}

func TestDeterministicVirtualTime(t *testing.T) {
	run := func() float64 {
		grid := testGrid(t, 8)
		groups, _ := makeGroup(t, grid, 1, core.GroupConfig{BlockSize: 1 << 20}, false)
		if err := groups[0].SendSized(32 << 20); err != nil {
			t.Fatal(err)
		}
		return grid.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identical runs ended at %v and %v", a, b)
	}
}

// TestSendWindowEquivalence pins the send window down as a pure throughput
// knob: widening it changes when blocks move, never which blocks move or
// what the application sees. The same message multicast under SendWindow 1
// (the lockstep discipline) and SendWindow 4 (the default pipeline) must
// deliver identical bytes on every member and drive the identical set of
// scheduled block sends and receives through every member's stats.
func TestSendWindowEquivalence(t *testing.T) {
	type memberRecord struct {
		delivered [][]byte
		sends     map[int]int // block → times sent
		recvs     map[int]int // block → times received
	}
	msg := make([]byte, 50_000)
	rand.New(rand.NewSource(11)).Read(msg)

	runWith := func(t *testing.T, n, window int) []memberRecord {
		grid := testGrid(t, n)
		groups, states := makeGroup(t, grid, 1, core.GroupConfig{
			BlockSize:   2048,
			SendWindow:  window,
			RecordStats: true,
		}, true)
		if err := groups[0].Send(msg); err != nil {
			t.Fatal(err)
		}
		grid.Run()
		records := make([]memberRecord, n)
		for i := range records {
			if len(states[i].failures) != 0 {
				t.Fatalf("window %d: member %d failed: %v", window, i, states[i].failures)
			}
			rec := memberRecord{
				delivered: states[i].delivered,
				sends:     map[int]int{},
				recvs:     map[int]int{},
			}
			stats := groups[i].LastStats()
			if stats == nil {
				t.Fatalf("window %d: member %d has no stats", window, i)
			}
			for _, s := range stats.Sends {
				if s.DoneAt == 0 {
					t.Errorf("window %d: member %d send of block %d never completed", window, i, s.Block)
				}
				rec.sends[s.Block]++
			}
			for _, r := range stats.Recvs {
				rec.recvs[r.Block]++
			}
			records[i] = rec
		}
		return records
	}

	for _, n := range []int{3, 8, 16} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			lockstep := runWith(t, n, 1)
			windowed := runWith(t, n, 4)
			for i := range lockstep {
				a, b := lockstep[i], windowed[i]
				if len(a.delivered) != 1 || len(b.delivered) != 1 {
					t.Fatalf("member %d deliveries = %d/%d, want 1/1", i, len(a.delivered), len(b.delivered))
				}
				if i > 0 && !bytes.Equal(b.delivered[0], msg) {
					t.Errorf("member %d windowed delivery differs from message", i)
				}
				if !bytes.Equal(a.delivered[0], b.delivered[0]) {
					t.Errorf("member %d bytes differ between windows", i)
				}
				if !maps.Equal(a.sends, b.sends) {
					t.Errorf("member %d send blocks differ: lockstep %v, windowed %v", i, a.sends, b.sends)
				}
				if !maps.Equal(a.recvs, b.recvs) {
					t.Errorf("member %d recv blocks differ: lockstep %v, windowed %v", i, a.recvs, b.recvs)
				}
			}
		})
	}
}
