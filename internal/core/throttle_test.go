package core_test

import (
	"sync"
	"testing"

	"rdmc/internal/core"
	"rdmc/internal/rdma"
)

// meteredThrottle is a test SendThrottle with a fixed byte capacity and a
// single FIFO of stalled groups. It counts every hook invocation so the tests
// can assert the engine calls Acquire/Release symmetrically and never leaks
// held bytes past teardown.
type meteredThrottle struct {
	mu        sync.Mutex
	capacity  int
	inFlight  int
	waiters   []meteredWaiter
	acquires  int
	refusals  int
	releases  int
	forgets   int
	maxHeld   int
	heldBy    map[core.GroupID]int
	forgotten map[core.GroupID]bool
}

type meteredWaiter struct {
	g      core.GroupID
	bytes  int
	resume func()
}

func newMeteredThrottle(capacity int) *meteredThrottle {
	return &meteredThrottle{
		capacity:  capacity,
		heldBy:    make(map[core.GroupID]int),
		forgotten: make(map[core.GroupID]bool),
	}
}

func (m *meteredThrottle) Acquire(g core.GroupID, bytes int, resume func()) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.acquires++
	if m.inFlight > 0 && m.inFlight+bytes > m.capacity {
		m.refusals++
		for i := range m.waiters {
			if m.waiters[i].g == g {
				m.waiters[i] = meteredWaiter{g: g, bytes: bytes, resume: resume}
				return false
			}
		}
		m.waiters = append(m.waiters, meteredWaiter{g: g, bytes: bytes, resume: resume})
		return false
	}
	m.inFlight += bytes
	m.heldBy[g] += bytes
	if m.inFlight > m.maxHeld {
		m.maxHeld = m.inFlight
	}
	return true
}

func (m *meteredThrottle) Release(g core.GroupID, bytes int) []func() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releases++
	m.inFlight -= bytes
	m.heldBy[g] -= bytes
	return m.drainLocked()
}

func (m *meteredThrottle) Forget(g core.GroupID) []func() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.forgets++
	m.forgotten[g] = true
	kept := m.waiters[:0]
	for _, w := range m.waiters {
		if w.g != g {
			kept = append(kept, w)
		}
	}
	m.waiters = kept
	return m.drainLocked()
}

func (m *meteredThrottle) drainLocked() []func() {
	var cbs []func()
	for len(m.waiters) > 0 {
		w := m.waiters[0]
		if m.inFlight > 0 && m.inFlight+w.bytes > m.capacity {
			break
		}
		m.waiters = m.waiters[1:]
		m.inFlight += w.bytes
		m.heldBy[w.g] += w.bytes
		if m.inFlight > m.maxHeld {
			m.maxHeld = m.inFlight
		}
		// The engine re-Acquires on resume, so the drain's reservation here
		// would double-count; hand the budget back and let the re-Acquire
		// take it on the fast path.
		m.inFlight -= w.bytes
		m.heldBy[w.g] -= w.bytes
		cbs = append(cbs, w.resume)
	}
	return cbs
}

func (m *meteredThrottle) snapshot() (acquires, refusals, releases, inFlight int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.acquires, m.refusals, m.releases, m.inFlight
}

// TestThrottleGatesAndReleasesSymmetrically runs two groups through a
// byte-capacity throttle that can hold only one block at a time: both
// messages must still deliver everywhere (stalls resume, not deadlock), the
// throttle must end with zero bytes in flight, and refusals must actually
// have happened (the gate was exercised, not bypassed).
func TestThrottleGatesAndReleasesSymmetrically(t *testing.T) {
	grid := testGrid(t, 4)
	th := newMeteredThrottle(4096) // exactly one block

	cfg := core.GroupConfig{BlockSize: 4096, SendWindow: 4, Throttle: th}
	groupsA, statesA := makeGroup(t, grid, 1, cfg, true)
	groupsB, statesB := makeGroup(t, grid, 2, cfg, true)

	msg := make([]byte, 64<<10) // 16 blocks each
	for i := range msg {
		msg[i] = byte(i)
	}
	if err := groupsA[0].Send(msg); err != nil {
		t.Fatal(err)
	}
	if err := groupsB[0].Send(msg); err != nil {
		t.Fatal(err)
	}
	grid.Run()

	for i := 1; i < 4; i++ {
		if len(statesA[i].delivered) != 1 || len(statesB[i].delivered) != 1 {
			t.Fatalf("node %d: delivered A=%d B=%d, want 1 and 1",
				i, len(statesA[i].delivered), len(statesB[i].delivered))
		}
	}
	acquires, refusals, releases, inFlight := th.snapshot()
	if inFlight != 0 {
		t.Errorf("throttle still holds %d bytes after both transfers delivered", inFlight)
	}
	if refusals == 0 {
		t.Error("throttle never refused a send: capacity gate was not exercised")
	}
	if got := acquires - refusals; got != releases {
		t.Errorf("granted %d acquires but saw %d releases", got, releases)
	}
	if th.maxHeld > 4096 {
		t.Errorf("in-flight bytes peaked at %d, above the %d capacity", th.maxHeld, 4096)
	}
	for _, g := range append(groupsA, groupsB...) {
		g.Destroy(nil)
	}
	grid.Run()
	if _, _, _, inFlight = th.snapshot(); inFlight != 0 {
		t.Errorf("throttle holds %d bytes after Destroy", inFlight)
	}
}

// TestThrottleReleasedOnFailure wedges a throttled transfer mid-flight by
// failing a member, then checks the failed group handed back every held byte
// and was forgotten — a dead group must not pin the shared budget.
func TestThrottleReleasedOnFailure(t *testing.T) {
	grid := testGrid(t, 4)
	th := newMeteredThrottle(8192)
	cfg := core.GroupConfig{BlockSize: 4096, SendWindow: 4, Throttle: th}
	groups, states := makeGroup(t, grid, 7, cfg, true)

	if err := groups[0].Send(make([]byte, 256<<10)); err != nil {
		t.Fatal(err)
	}
	// Fail a receiver early so the transfer dies with sends outstanding.
	grid.Sim().At(10e-6, func() { grid.Engine(0).NotifyFailure(rdma.NodeID(3)) })
	grid.Run()

	if len(states[0].failures) == 0 {
		t.Fatal("root never observed the failure")
	}
	th.mu.Lock()
	defer th.mu.Unlock()
	if held := th.heldBy[core.GroupID(7)]; held != 0 {
		t.Errorf("failed group still holds %d bytes of send budget", held)
	}
	if !th.forgotten[core.GroupID(7)] {
		t.Error("failed group was never forgotten by the throttle")
	}
}
