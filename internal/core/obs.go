package core

import (
	"time"

	"rdmc/internal/obs"
)

// ctrlKindNames indexes CtrlKind (iota+1) wire names; index 0 is unused.
var ctrlKindNames = [...]string{
	"invalid",
	"prepare",
	"receiver_ready",
	"ready_block",
	"failure",
	"close",
	"close_ack",
	"destroyed",
	"replan_freeze",
	"replan_ack",
	"replan_commit",
	"replan_resume",
}

// String returns the control kind's short name, as used in metric names and
// trace annotations.
func (k CtrlKind) String() string {
	if k > 0 && int(k) < len(ctrlKindNames) {
		return ctrlKindNames[k]
	}
	return "unknown"
}

// NumCtrlKinds is the number of defined control kinds; kinds are contiguous
// from 1 to NumCtrlKinds, so a [NumCtrlKinds+1]-sized array indexed by kind
// covers them all.
const NumCtrlKinds = int(CtrlReplanResume)

// engineObs is the engine's pre-resolved instrumentation: every counter and
// histogram the hot paths touch is looked up once at SetObserver time, so a
// dispatch pass never takes the registry lock. A nil *engineObs (the default)
// disables everything; call sites guard with a single nil check and only then
// pay for a clock read.
type engineObs struct {
	ring *obs.Ring
	node int32

	ctrlTx     *obs.Counter // control messages handed to the mesh
	ctrlRx     *obs.Counter // control messages dispatched to a group
	credits    *obs.Counter // ready-for-block credit received (sum of counts)
	failRelay  *obs.Counter // failure notices relayed to peers
	blocksSent *obs.Counter // block sends posted
	blocksRecv *obs.Counter // block receives completed
	delivered  *obs.Counter // messages locally delivered
	planHit    *obs.Counter // group-local plan cache hits
	planMiss   *obs.Counter // group-local plan cache misses
	replanTry  *obs.Counter // mid-transfer re-plan barriers opened
	replanOK   *obs.Counter // re-plans committed (cutover applied)
	replanAbrt *obs.Counter // re-plans abandoned at the barrier

	batchRun *obs.Histogram // same-group run length inside a completion batch
	msgBytes *obs.Histogram // delivered message sizes
}

// SetObserver installs (or, with nil, removes) the engine's observability
// sink. It must be called before any group activity — the pointer is read
// without synchronization on the dispatch paths — which in practice means
// right after NewEngine, exactly where the hosts wire it.
func (e *Engine) SetObserver(o *obs.Obs) {
	if o == nil {
		e.eobs = nil
		return
	}
	r := o.Registry()
	e.eobs = &engineObs{
		ring:       o.Ring(),
		node:       int32(e.NodeID()),
		ctrlTx:     r.Counter("core.ctrl_tx"),
		ctrlRx:     r.Counter("core.ctrl_rx"),
		credits:    r.Counter("core.ready_credits"),
		failRelay:  r.Counter("core.failure_relays"),
		blocksSent: r.Counter("core.blocks_sent"),
		blocksRecv: r.Counter("core.blocks_recv"),
		delivered:  r.Counter("core.delivered"),
		planHit:    r.Counter("core.plan_cache_hits"),
		planMiss:   r.Counter("core.plan_cache_misses"),
		replanTry:  r.Counter("core.replan_freezes"),
		replanOK:   r.Counter("core.replan_commits"),
		replanAbrt: r.Counter("core.replan_aborts"),
		batchRun:   r.Histogram("core.batch_run", obs.Pow2Buckets(9)),
		msgBytes:   r.Histogram("core.msg_bytes", obs.ExpBuckets(1024, 4, 12)),
	}
}

// record appends one structured event. The caller has already paid for the
// clock read under its own eobs nil check.
func (eo *engineObs) record(at time.Duration, kind obs.EventKind, g GroupID, seq, block, peer int, arg int64) {
	eo.ring.Record(obs.Event{
		At:    at,
		Kind:  kind,
		Node:  eo.node,
		Group: uint32(g),
		Seq:   int32(seq),
		Block: int32(block),
		Peer:  int32(peer),
		Arg:   arg,
	})
}

// obsEvent records one event against this group when an observer is
// installed; disabled engines pay one pointer test and no clock read.
func (g *Group) obsEvent(kind obs.EventKind, seq, block, peer int, arg int64) {
	if eo := g.engine.eobs; eo != nil {
		eo.record(g.engine.host.Now(), kind, g.id, seq, block, peer, arg)
	}
}
