package core_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"rdmc/internal/core"
	"rdmc/internal/rdma"
)

// TestSendWaitClampsLeadIn is the regression test for the unclamped lead-in:
// a root can post its first send before SetupDoneAt is stamped (the
// receiver-ready barrier resolves in the same dispatch pass), and the
// negative lead-in used to subtract from the genuine inter-send gaps,
// silently deflating Table 1's send-wait row.
func TestSendWaitClampsLeadIn(t *testing.T) {
	s := &core.TransferStats{
		SetupDoneAt: 100 * time.Microsecond,
		Sends: []core.BlockStamp{
			{Block: 0, PostedAt: 60 * time.Microsecond, DoneAt: 90 * time.Microsecond},
			{Block: 1, PostedAt: 95 * time.Microsecond, DoneAt: 120 * time.Microsecond},
		},
	}
	// Lead-in 60-100 = -40µs must clamp to 0; the only wait is the 5µs gap
	// between the first completion (90) and the second post (95).
	if got, want := s.SendWait(), 5*time.Microsecond; got != want {
		t.Fatalf("SendWait = %v, want %v (negative lead-in not clamped)", got, want)
	}

	// The positive lead-in still counts.
	s.SetupDoneAt = 50 * time.Microsecond
	if got, want := s.SendWait(), 15*time.Microsecond; got != want {
		t.Fatalf("SendWait = %v, want %v (positive lead-in lost)", got, want)
	}

	if (&core.TransferStats{}).SendWait() != 0 {
		t.Fatal("SendWait on empty stats not zero")
	}
}

// TestLastStatsIsStableSnapshot is the regression test for LastStats handing
// out the group's internal pointer. With a single-block transfer the
// simulated host charges the first-block copy through a callback that fires
// *after* delivery publishes the record, so a caller that grabbed LastStats
// at delivery time would see CopyTime change under it. The deep copy must be
// immune to that later mutation.
func TestLastStatsIsStableSnapshot(t *testing.T) {
	grid := testGrid(t, 2)
	members := []rdma.NodeID{0, 1}
	cfg := core.GroupConfig{
		BlockSize:   1 << 20, // single block: the copy charge resolves after delivery
		RecordStats: true,
	}
	root, err := grid.Engine(0).CreateGroup(1, members, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var (
		recv     *core.Group
		snap     *core.TransferStats
		snapCopy time.Duration
	)
	recvCfg := cfg
	recvCfg.Callbacks = core.Callbacks{
		Completion: func(int, []byte, int) {
			if snap == nil {
				snap = recv.LastStats()
				snapCopy = snap.CopyTime
			}
		},
	}
	recv, err = grid.Engine(1).CreateGroup(1, members, recvCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.SendSized(1 << 20); err != nil {
		t.Fatal(err)
	}
	grid.Run() // drains delivery AND the deferred copy charge

	if snap == nil {
		t.Fatal("completion callback never captured stats")
	}
	final := recv.LastStats()
	if final.CopyTime <= snapCopy {
		// Guard that the hazard is actually exercised: the internal record
		// must have been amended after the snapshot was taken.
		t.Fatalf("internal record not amended after delivery (snap %v, final %v); test lost its teeth", snapCopy, final.CopyTime)
	}
	if snap.CopyTime != snapCopy {
		t.Fatalf("snapshot mutated after capture: CopyTime %v, was %v at delivery", snap.CopyTime, snapCopy)
	}
}

// statsReaderSink keeps TestLastStatsConcurrentReaders' field reads live.
var statsReaderSink time.Duration

// TestLastStatsConcurrentReaders reads a LastStats record from another
// goroutine while the simulation is still running the next transfers (and
// still amending the just-delivered record with its deferred copy charge).
// Under -race the old pointer-returning implementation reports a data race
// between the reader's field walk and the group's stats mutation; the deep
// copy is private to the reader and stays clean.
func TestLastStatsConcurrentReaders(t *testing.T) {
	grid := testGrid(t, 2)
	members := []rdma.NodeID{0, 1}
	cfg := core.GroupConfig{
		BlockSize:   1 << 20, // single block: the copy charge lands after delivery
		RecordStats: true,
	}
	root, err := grid.Engine(0).CreateGroup(1, members, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var recv *core.Group
	captured := make(chan *core.TransferStats, 1)
	recvCfg := cfg
	recvCfg.Callbacks = core.Callbacks{
		Completion: func(int, []byte, int) {
			select {
			case captured <- recv.LastStats():
			default:
			}
			// Yield so the reader goroutine interleaves with the event loop
			// even on GOMAXPROCS=1 — without it the whole simulation can run
			// to completion before the reader is ever scheduled.
			runtime.Gosched()
		},
	}
	recv, err = grid.Engine(1).CreateGroup(1, members, recvCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := root.SendSized(1 << 20); err != nil {
			t.Fatal(err)
		}
	}

	// The reader receives the first delivery's record exactly once and then
	// walks it with no further synchronization, exactly as an application
	// monitoring thread would. The record's deferred copy charge (and, with
	// the old aliasing bug, the whole record's reuse) lands while the sim is
	// still delivering the remaining 299 messages.
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var s *core.TransferStats
		select {
		case s = <-captured:
		case <-done:
			return
		}
		var sink time.Duration
		// The sink escapes to a package variable so the CopyTime reads
		// cannot be optimized away (they are the whole point of the test).
		defer func() { statsReaderSink = sink }()
		for {
			select {
			case <-done:
				return
			default:
				sink += s.CopyTime
			}
		}
	}()
	grid.Run()
	close(done)
	wg.Wait()
}
