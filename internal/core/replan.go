package core

import (
	"rdmc/internal/obs"
	"rdmc/internal/rdma"
	"rdmc/internal/schedule"
)

// Mid-transfer re-planning. When the contention signal shifts past the
// adaptive policy's hysteresis while a large transfer is in flight, the root
// can switch the remaining blocks to a plan built for the new conditions
// instead of riding the stale one to completion. The cutover reuses the
// wedge/epoch discipline from the membership layer, scoped to one transfer:
//
//  1. Freeze. The root floods CtrlReplanFreeze. Each member freezes its
//     receive-window advance and acks the highest block number it has posted
//     a receive for (or OK=false if the transfer already completed locally).
//  2. Barrier. The root computes the cutover boundary B = 1 + the maximum
//     acked high-water mark (including its own send high-water). Because a
//     send is only ever licensed by a posted receive, every send in flight is
//     for a block below B — nothing already on the wire crosses the boundary.
//  3. Commit or resume. If fewer than MinReplanBlocks remain past B the root
//     floods CtrlReplanResume and everyone carries on under the old plan
//     (one attempt per transfer, so a borderline signal cannot thrash).
//     Otherwise the root floods CtrlReplanCommit{Block: B, Mask} and every
//     member truncates its current plan at B: schedule entries for blocks
//     ≥ B complete without posting memory or consuming credit, symmetrically
//     on both ends of each link, so cumulative credit per (sender, receiver)
//     pair stays in agreement.
//  4. Continuation. When a member's truncated phase quiesces (all kept
//     receives arrived, all kept sends completed), it locally starts a
//     continuation transfer for blocks B..k-1 under the committed mask,
//     addressed by the original sequence tagged with contSeqTag. No prepare
//     round is needed — the commit message carried everything — but the
//     root still gates its first continuation send on every member's
//     ReceiverReady, preserving the §2 start barrier. The continuation
//     delivers under the original sequence, size, and buffer, so the
//     application never observes the split.
type replanState struct {
	mask    uint64       // proposed contention bucket
	acks    map[int]bool // member ranks that answered the freeze
	highest int          // max acked posted-receive block (and root send high-water)
}

// origMsg names the original message a continuation transfer completes.
type origMsg struct {
	seq  int
	size int64
	buf  rdma.Buffer
}

// contSeqTag marks a continuation sequence number. Application sequences are
// far below it (the engine would refuse a 2^30-message backlog long before),
// so tagged and untagged sequences never collide in the 32-bit wire field.
const contSeqTag = 1 << 30

// decideAdaptiveLocked is the root's per-transfer plan decision: sample the
// contention signal, quantize it through the generator's hysteresis, and pin
// the resulting mask and block size into the pending message so every member
// plans from the same decision. Static generators leave the message untouched.
func (g *Group) decideAdaptiveLocked(pm *pendingMsg) {
	ap, ok := g.cfg.Generator.(schedule.AdaptivePlanner)
	if !ok {
		return
	}
	c, ok := g.sampleContentionLocked()
	if !ok {
		return
	}
	mask := ap.DecideMask(c, g.lastMask)
	g.lastMask = mask
	pm.mask = mask
	pm.blockSize = ap.AdaptiveBlockSize(g.cfg.BlockSize, mask)
	g.obsEvent(obs.EvContentionSample, pm.seq, -1, -1, int64(mask))
}

// sampleContentionLocked reads the engine's contention sampler and folds in
// the group-local credit-stall ratio (the fraction of send-pump passes since
// the previous sample that blocked on missing receiver credit).
func (g *Group) sampleContentionLocked() (schedule.Contention, bool) {
	s := g.engine.sampler
	if s == nil {
		return schedule.Contention{}, false
	}
	c := s.SampleContention()
	ds := g.stallCredit - g.lastStallCredit
	dp := g.postedSends - g.lastPostedSends
	g.lastStallCredit, g.lastPostedSends = g.stallCredit, g.postedSends
	if ds+dp > 0 {
		c.CreditStall = float64(ds) / float64(ds+dp)
	}
	return c, true
}

// maybeReplanLocked is the root's re-plan trigger, probed after send
// completions. It opens the freeze barrier at most once per transfer, and
// only when enough blocks remain for the cutover to pay for its two control
// round trips.
func (g *Group) maybeReplanLocked() {
	t := g.current
	if g.rank != 0 || t == nil || !t.started || t.frozen || t.cutoff > 0 ||
		t.replan != nil || t.replanTried || t.orig != nil || len(g.members) < 2 {
		return
	}
	ap, ok := g.cfg.Generator.(schedule.AdaptivePlanner)
	if !ok {
		return
	}
	replan, minBlocks := ap.ReplanPolicy()
	if !replan {
		return
	}
	// Blocks the root has already pushed out can never move; if too few
	// remain even before the barrier, skip the sample entirely.
	if t.k-(t.maxSentBlock+1) < minBlocks {
		return
	}
	c, ok := g.sampleContentionLocked()
	if !ok {
		return
	}
	mask := ap.DecideMask(c, t.mask)
	if mask == t.mask {
		return
	}
	t.replanTried = true
	t.replan = &replanState{
		mask:    mask,
		acks:    make(map[int]bool, len(g.members)-1),
		highest: t.maxSentBlock,
	}
	g.lastMask = mask
	if eo := g.engine.eobs; eo != nil {
		eo.replanTry.Inc()
	}
	g.obsEvent(obs.EvReplanFreeze, t.seq, -1, -1, int64(mask))
	for rank := 1; rank < len(g.members); rank++ {
		g.ctrlTo(rank, CtrlMsg{Kind: CtrlReplanFreeze, Group: g.id, Seq: t.seq, Mask: mask})
	}
}

// onReplanFreezeLocked is the member's half of the barrier: stop advancing
// the receive window and report the highest block a receive has been posted
// for. A transfer that already completed locally (or never matched) answers
// OK=false; the root then sees a high-water of k-1 and is forced to abort,
// which is the only safe answer once any member may have delivered.
func (g *Group) onReplanFreezeLocked(m CtrlMsg) []func() {
	if g.rank == 0 {
		return nil
	}
	t := g.current
	if g.state != stateActive || t == nil || t.seq != m.Seq {
		g.ctrlTo(0, CtrlMsg{Kind: CtrlReplanAck, Group: g.id, Seq: m.Seq, Block: -1})
		return nil
	}
	t.frozen = true
	hi := -1
	for i := 0; i < t.recvPosted; i++ {
		if b := t.np.Recvs[i].Block; b > hi {
			hi = b
		}
	}
	g.ctrlTo(0, CtrlMsg{Kind: CtrlReplanAck, Group: g.id, Seq: m.Seq, Block: hi, OK: true})
	return nil
}

// onReplanAckLocked collects freeze acks on the root and, when the barrier
// completes, either commits the cutover or resumes the old plan.
func (g *Group) onReplanAckLocked(from rdma.NodeID, m CtrlMsg) []func() {
	t := g.current
	if g.rank != 0 || t == nil || t.replan == nil || t.seq != m.Seq {
		return nil
	}
	r := g.rankOf(from)
	if r <= 0 || t.replan.acks[r] {
		return nil
	}
	t.replan.acks[r] = true
	hi := m.Block
	if !m.OK {
		hi = t.k - 1
	}
	if hi > t.replan.highest {
		t.replan.highest = hi
	}
	if len(t.replan.acks) < len(g.members)-1 {
		return nil
	}

	boundary := t.replan.highest + 1
	mask := t.replan.mask
	t.replan = nil
	ap, _ := g.cfg.Generator.(schedule.AdaptivePlanner)
	_, minBlocks := ap.ReplanPolicy()
	if t.k-boundary < minBlocks {
		if eo := g.engine.eobs; eo != nil {
			eo.replanAbrt.Inc()
		}
		g.obsEvent(obs.EvReplanAbort, t.seq, boundary, -1, int64(mask))
		for rank := 1; rank < len(g.members); rank++ {
			g.ctrlTo(rank, CtrlMsg{Kind: CtrlReplanResume, Group: g.id, Seq: t.seq})
		}
		return nil
	}
	if eo := g.engine.eobs; eo != nil {
		eo.replanOK.Inc()
	}
	g.obsEvent(obs.EvReplanCommit, t.seq, boundary, -1, int64(mask))
	for rank := 1; rank < len(g.members); rank++ {
		g.ctrlTo(rank, CtrlMsg{Kind: CtrlReplanCommit, Group: g.id, Seq: t.seq, Block: boundary, Mask: mask})
	}
	return t.applyCutoverLocked(boundary, mask)
}

// onReplanCommitLocked applies the committed cutover on a member.
func (g *Group) onReplanCommitLocked(m CtrlMsg) []func() {
	t := g.current
	if g.rank == 0 || t == nil || t.seq != m.Seq {
		return nil
	}
	return t.applyCutoverLocked(m.Block, m.Mask)
}

// onReplanResumeLocked unwinds an aborted barrier on a member: unfreeze and
// carry on under the old plan.
func (g *Group) onReplanResumeLocked(m CtrlMsg) []func() {
	t := g.current
	if g.rank == 0 || t == nil || t.seq != m.Seq || !t.frozen {
		return nil
	}
	t.frozen = false
	if cbs := t.postRecvWindowLocked(); cbs != nil {
		return cbs
	}
	if cbs := t.pumpSendsLocked(); cbs != nil {
		return cbs
	}
	return t.maybeDeliverLocked()
}

// applyCutoverLocked truncates this transfer at the committed boundary. The
// window and pump skip logic then drain the schedule's tail entries without
// touching the wire; the transfer quiesces when the kept region completes,
// at which point deliverLocked hands off to the continuation.
func (t *transfer) applyCutoverLocked(boundary int, mask uint64) []func() {
	t.cutoff = boundary
	t.contMask = mask
	t.frozen = false
	if cbs := t.postRecvWindowLocked(); cbs != nil {
		return cbs
	}
	if cbs := t.pumpSendsLocked(); cbs != nil {
		return cbs
	}
	return t.maybeDeliverLocked()
}

// startContinuationLocked begins the continuation transfer for blocks
// cutoff..k-1 once the truncated phase has quiesced locally. Every member
// constructs it from the commit message alone — same boundary, same mask,
// same deterministic planner — so no prepare round is needed.
func (t *transfer) startContinuationLocked() []func() {
	g := t.g
	off := int64(t.cutoff) * int64(t.bs)
	var buf rdma.Buffer
	if t.buf.Data != nil {
		buf = rdma.MakeBuffer(t.buf.Data[off:t.size])
	} else {
		buf = rdma.SizeBuffer(int(t.size - off))
	}
	ct := &transfer{
		g:            g,
		seq:          t.seq | contSeqTag,
		size:         t.size - off,
		k:            t.k - t.cutoff,
		bs:           t.bs,
		mask:         t.contMask,
		buf:          buf,
		orig:         &origMsg{seq: t.seq, size: t.size, buf: t.buf},
		maxSentBlock: -1,
		replanTried:  true, // one re-plan per message: continuations never re-enter
	}
	ct.np = g.nodePlan(ct.k, ct.mask)
	ct.have = make([]bool, ct.k)
	ct.sendDone = make([]bool, len(ct.np.Sends))
	ct.sentTo = make([]int, len(g.members))
	if t.stats != nil {
		// Fresh stamp arrays keep the schedule-index pairing intact; the
		// record still describes the original message end to end.
		ct.stats = &TransferStats{
			Seq:         t.stats.Seq,
			Size:        t.stats.Size,
			Blocks:      t.stats.Blocks,
			StartAt:     t.stats.StartAt,
			SetupDoneAt: t.stats.SetupDoneAt,
			CopyTime:    t.stats.CopyTime,
		}
	}
	// The old phase's credit state is dead: both ends finished every kept
	// schedule entry, and the tail entries consumed no credit.
	for key := range g.readyCounts {
		if key.seq == t.seq {
			delete(g.readyCounts, key)
		}
	}
	g.current = ct

	if g.rank == 0 {
		ct.readyReceivers = make(map[int]bool, len(g.members)-1)
		for b := range ct.have {
			ct.have[b] = true
		}
		// Replay readiness that arrived while this node was still draining
		// the old phase.
		var cbs []func()
		if set := g.earlyReady[ct.seq]; set != nil {
			delete(g.earlyReady, ct.seq)
			for r := range set {
				cbs = append(cbs, ct.receiverReadyLocked(r)...)
			}
		}
		return cbs
	}

	// Member: the buffer is a slice of the already-allocated original, so
	// there is no Incoming round — post the window and report readiness.
	if cbs := ct.postRecvWindowLocked(); cbs != nil {
		return cbs
	}
	g.ctrlTo(0, CtrlMsg{Kind: CtrlReceiverReady, Group: g.id, Seq: ct.seq})
	g.obsEvent(obs.EvSetupDone, ct.seq, -1, -1, ct.size)
	return ct.pumpSendsLocked()
}
