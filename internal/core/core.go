// Package core implements the RDMC protocol engine (DSN 2018, §3–4): it
// executes the deterministic block-transfer plans of package schedule over
// the verbs abstraction of package rdma, asynchronously, with the paper's
// gating rules:
//
//   - a transfer begins only after every receiver has signalled readiness to
//     the root (§2: "it does a one-sided write to tell the sender, which
//     starts sending only after all are prepared");
//   - each individual block send waits for a ready-for-block notice from its
//     target, so no block is ever sent prematurely and connections never
//     break from slow receivers (§4.2);
//   - sends and receives are decoupled: a node's next send is pending only
//     on the availability of its block, the target's readiness, and FIFO
//     order of the node's own sends (§4.3).
//
// The engine is a completion-driven state machine, exactly as the real RDMC
// is written against verbs: the simulated provider invokes it in virtual
// time on one thread, the TCP provider from a dispatcher goroutine, and the
// protocol code is identical in both.
//
// # Concurrency
//
// Group state is sharded: every Group serializes its own state machine
// behind its own lock (Group.mu), and the engine routes each completion or
// control message to its group through a read-mostly table (a sync.Map keyed
// by the group id in the completion token's high 32 bits) without taking any
// engine-wide lock. Engine.mu is only a creation/close gate guarding the
// closed flag.
//
// Lock ordering: Engine.mu may be held while acquiring a Group.mu (engine
// close tears groups down under the gate), but a Group.mu must NEVER be held
// while acquiring Engine.mu. Code running under a group lock — every
// *Locked method — must not call Engine.Close, CreateGroup, or any other
// path that takes the gate; application callbacks are returned out of the
// *Locked methods and run after the group lock is released precisely so they
// may re-enter the engine freely. Schedule planning (Group.nodePlan) may
// consult the schedule package's process-wide plan cache while holding a
// Group.mu: that cache synchronizes only on its own sync.Map and per-entry
// sync.Once — it never touches engine or group locks — so the first member
// to need a plan computes it while any concurrent member blocks on the
// entry's Once, and no lock-order edge to Engine.mu or another Group.mu is
// created.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rdmc/internal/obs"
	"rdmc/internal/rdma"
	"rdmc/internal/rdma/nicbase"
	"rdmc/internal/schedule"
)

// GroupID identifies an RDMC group; all members use the same number, as in
// the paper's create_group(group_number, ...) API. It must fit in 32 bits.
type GroupID uint32

// CtrlKind enumerates the out-of-band control messages RDMC exchanges over
// its bootstrap mesh.
type CtrlKind int

// Control message kinds.
const (
	// CtrlPrepare announces a new transfer (sequence and total size) from
	// the root to every member. It plays the role of the paper's
	// size-announcing immediate on the first block, generalized so that
	// receivers can compute the block plan before any data moves.
	CtrlPrepare CtrlKind = iota + 1
	// CtrlReceiverReady tells the root a member has posted all buffers
	// for a sequence — the paper's pre-transfer one-sided write.
	CtrlReceiverReady
	// CtrlReadyBlock tells a specific sender that the target has posted
	// the receive for one scheduled block transfer.
	CtrlReadyBlock
	// CtrlFailure relays a detected failure to all survivors.
	CtrlFailure
	// CtrlClose starts the close barrier: the root announces how many
	// messages the group carried.
	CtrlClose
	// CtrlCloseAck acknowledges the barrier once a member has delivered
	// every message (OK) or knows it cannot (not OK).
	CtrlCloseAck
	// CtrlDestroyed finalizes a successful close: members tear down.
	CtrlDestroyed
	// CtrlReplanFreeze opens the adaptive mid-transfer re-plan barrier: the
	// root asks every member to stop advancing its receive window for the
	// sequence and report the highest block it has posted a receive for.
	CtrlReplanFreeze
	// CtrlReplanAck answers the freeze: Block is the highest posted-recv
	// block (-1 if none) and OK is true while the transfer is still active
	// locally; OK false means the member already completed it.
	CtrlReplanAck
	// CtrlReplanCommit commits the cutover: blocks at and above Block move
	// to the plan selected by Mask; blocks below finish under the old plan.
	CtrlReplanCommit
	// CtrlReplanResume abandons an opened freeze barrier (too few blocks
	// remained past it): members resume their receive windows unchanged.
	CtrlReplanResume
)

// CtrlMsg is one control-plane message. Fields beyond Kind and Group are
// kind-specific.
type CtrlMsg struct {
	Kind  CtrlKind
	Group GroupID
	Seq   int
	Size  int64
	Round int
	Block int
	Node  rdma.NodeID
	Total int
	OK    bool
	// Count batches readiness credit on CtrlReadyBlock: the receiver has
	// posted Count more receives for the sender's scheduled transfers, of
	// which (Round, Block) is the first. Zero means one (a legacy
	// single-block notice).
	Count int
	// Mask carries the adaptive contention bucket: on CtrlPrepare the mask
	// the root planned the transfer under, on CtrlReplanCommit the mask the
	// remaining blocks cut over to. Zero (the static case) selects the
	// group's configured plan unchanged.
	Mask uint64
	// BS is the per-transfer block size on CtrlPrepare; zero means the
	// group's configured block size (the static case).
	BS int
}

// Control is the out-of-band channel the engine uses for smalls: the
// bootstrap TCP mesh in the real system, a latency-only message in the
// simulator. Delivery must preserve per-sender order; lost messages are
// acceptable only for destinations that have failed.
type Control interface {
	// Send transmits m to the peer asynchronously.
	Send(to rdma.NodeID, m CtrlMsg) error
	// SetHandler installs the receive callback; it must be installed
	// before any engine activity and is invoked serially per sender.
	SetHandler(fn func(from rdma.NodeID, m CtrlMsg))
}

// Host provides the platform services that differ between virtual and real
// time: clocks for statistics and the cost model for critical-path memory
// copies (the paper's Table 1 "Copy Time" row).
type Host interface {
	// Now returns the current time (virtual or wall).
	Now() time.Duration
	// ChargeCopy accounts for copying n bytes on the critical path and
	// then runs fn. The simulated host schedules fn after n divided by
	// the modelled memory bandwidth; the real host runs fn immediately
	// (the caller has already spent the real time).
	ChargeCopy(n int, fn func())
}

// Engine is one node's RDMC instance: it owns the node's provider, control
// channel, and groups, mirroring the paper's per-process library state
// (single completion queue and thread shared by all sessions).
type Engine struct {
	provider rdma.Provider
	ctrl     Control
	host     Host

	// staging recycles first-block landing buffers across transfers and
	// groups (see transfer.postRecvWindowLocked).
	staging nicbase.BufPool

	// groups maps GroupID → *Group. Read-mostly: written on group
	// creation and teardown, read on every completion and control
	// message.
	groups sync.Map

	mu     sync.Mutex // creation/close gate; see the package comment
	closed bool

	// failObs holds the externally reported failure observers — the hooks
	// membership layers use to wedge their sessions. Copy-on-write under
	// failMu so NotifyFailure reads the list with one atomic load while
	// sessions subscribe and unsubscribe concurrently (a multi-tenant node
	// churns many sessions over one engine).
	failMu  sync.Mutex
	failObs atomic.Pointer[[]*failureObserver]

	// eobs is the engine's observability sink; nil (the default) disables
	// all instrumentation. Installed via SetObserver before any activity.
	eobs *engineObs

	// sampler, when non-nil, snapshots fabric contention for adaptive
	// groups (see ContentionSampler). Installed before any activity via
	// SetContentionSampler; nil leaves adaptive groups permanently on
	// their uncontended (mask 0) plan.
	sampler ContentionSampler
}

// ContentionSampler provides a point-in-time snapshot of fabric contention
// — per-rack trunk pressure and per-NIC concurrent-flow counts — for the
// adaptive planner. The simulated host implements it over simnet's fluid
// model; transports with no fabric introspection leave it uninstalled.
type ContentionSampler interface {
	SampleContention() schedule.Contention
}

// SetContentionSampler installs (or, with nil, removes) the engine's fabric
// contention source. Like SetObserver it must be called before any group
// activity: the pointer is read without synchronization on planning paths.
func (e *Engine) SetContentionSampler(s ContentionSampler) { e.sampler = s }

// NewEngine wires an engine to its node-local services and installs the
// completion and control handlers.
func NewEngine(provider rdma.Provider, ctrl Control, host Host) *Engine {
	e := &Engine{
		provider: provider,
		ctrl:     ctrl,
		host:     host,
	}
	if bp, ok := provider.(rdma.BatchProvider); ok {
		bp.SetBatchHandler(e.onCompletionBatch)
	} else {
		provider.SetHandler(e.onCompletion)
	}
	ctrl.SetHandler(e.onCtrl)
	return e
}

// NodeID returns the engine's node identity.
func (e *Engine) NodeID() rdma.NodeID { return e.provider.NodeID() }

// Now returns the host clock (virtual time in the simulator, time since
// start on real transports) — for layers above the engine that must stamp
// events on the same timeline as the protocol.
func (e *Engine) Now() time.Duration { return e.host.Now() }

// failureObserver is one subscription's identity: removal matches on the
// box, not the function value, so identical callbacks stay distinguishable.
type failureObserver struct {
	fn func(rdma.NodeID)
}

// AddFailureObserver subscribes a callback to every node failure reported
// through NotifyFailure, after the engine's own groups have handled it. It
// returns the unsubscribe function. Safe to call at any time, concurrently
// with notifications: the observer list is copy-on-write and notification
// reads it with a single atomic load. Observers must not block; they run on
// the notification path.
func (e *Engine) AddFailureObserver(fn func(rdma.NodeID)) (remove func()) {
	ob := &failureObserver{fn: fn}
	e.failMu.Lock()
	e.failObs.Store(appendObservers(e.failObs.Load(), ob))
	e.failMu.Unlock()
	return func() {
		e.failMu.Lock()
		e.failObs.Store(removeObserver(e.failObs.Load(), ob))
		e.failMu.Unlock()
	}
}

// SetFailureObserver replaces every subscription with the single callback fn
// (nil clears the list) — the pre-multi-tenancy interface, kept for callers
// that own the whole engine.
func (e *Engine) SetFailureObserver(fn func(rdma.NodeID)) {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	if fn == nil {
		e.failObs.Store(nil)
		return
	}
	list := []*failureObserver{{fn: fn}}
	e.failObs.Store(&list)
}

func appendObservers(cur *[]*failureObserver, ob *failureObserver) *[]*failureObserver {
	var next []*failureObserver
	if cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, ob)
	return &next
}

func removeObserver(cur *[]*failureObserver, ob *failureObserver) *[]*failureObserver {
	if cur == nil {
		return nil
	}
	next := make([]*failureObserver, 0, len(*cur))
	for _, o := range *cur {
		if o != ob {
			next = append(next, o)
		}
	}
	if len(next) == 0 {
		return nil
	}
	return &next
}

// Errors returned by the engine.
var (
	// ErrGroupExists is returned by CreateGroup for a duplicate group id.
	ErrGroupExists = errors.New("core: group already exists")
	// ErrNotMember is returned when the local node is not in the member
	// list.
	ErrNotMember = errors.New("core: local node is not a group member")
	// ErrNotRoot is returned by Send on a non-root member, matching the
	// paper's "will fail if not the root".
	ErrNotRoot = errors.New("core: only the root may send")
	// ErrGroupClosed is returned by operations on a destroyed group.
	ErrGroupClosed = errors.New("core: group destroyed")
	// ErrMessageTooLarge is returned for messages whose size does not fit
	// the 32-bit immediate that announces it.
	ErrMessageTooLarge = errors.New("core: message exceeds 4 GiB immediate limit")
	// ErrEngineClosed is returned by operations on a closed engine.
	ErrEngineClosed = errors.New("core: engine closed")
)

// FailureError reports a group failure and the first node it was attributed
// to.
type FailureError struct {
	Group GroupID
	Node  rdma.NodeID
}

func (e *FailureError) Error() string {
	return fmt.Sprintf("core: group %d failed (node %d unreachable)", e.Group, e.Node)
}

// Close tears the engine down. Local groups are released quietly — closing
// one's own node is shutdown, not a failure; peers detect the departure
// through their own transports.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	// Engine.mu → Group.mu is the documented ordering; holding the gate
	// here keeps teardown atomic with the closed flag so no new group can
	// slip in behind the sweep.
	var cbs []func()
	e.groups.Range(func(_, v any) bool {
		g := v.(*Group)
		g.mu.Lock()
		cbs = append(cbs, g.teardownLocked()...)
		g.mu.Unlock()
		return true
	})
	e.mu.Unlock()
	// Throttle resumes collected during the sweep target groups already
	// torn down; running them is harmless (the state machine sees
	// stateClosed) but keeps the throttle contract uniform.
	runAll(cbs)
	return e.provider.Close()
}

// NotifyFailure injects an externally detected node failure (for example
// from the bootstrap mesh noticing a broken TCP connection); every group
// containing the node fails and relays the notice.
func (e *Engine) NotifyFailure(node rdma.NodeID) {
	e.groups.Range(func(_, v any) bool {
		g := v.(*Group)
		g.mu.Lock()
		var cbs []func()
		if g.rankOf(node) >= 0 {
			cbs = g.failLocked(node, true)
		}
		g.mu.Unlock()
		runAll(cbs)
		return true
	})
	if obs := e.failObs.Load(); obs != nil {
		for _, ob := range *obs {
			ob.fn(node)
		}
	}
}

// NumGroups reports the number of routable groups. Wedged and torn-down
// groups leave the table immediately, so a churning workload that tears all
// its groups down must see this return to zero — the leak check a
// multi-tenant service runs after group churn.
func (e *Engine) NumGroups() int {
	n := 0
	e.groups.Range(func(_, _ any) bool {
		n++
		return true
	})
	return n
}

// group resolves a group id through the read-mostly table.
func (e *Engine) group(id GroupID) *Group {
	if v, ok := e.groups.Load(id); ok {
		return v.(*Group)
	}
	return nil
}

// onCompletion is the engine's single completion handler (the paper's shared
// completion thread). It routes by the group bits of the completion token
// and serializes only against that group.
func (e *Engine) onCompletion(c rdma.Completion) {
	g := e.group(GroupID(c.Token >> 32))
	if g == nil {
		return
	}
	g.mu.Lock()
	cbs := g.onCompletionLocked(c)
	g.mu.Unlock()
	runAll(cbs)
}

// onCompletionBatch consumes a drained slice of completions (providers that
// implement rdma.BatchProvider). Completions stay in order; consecutive
// completions for the same group — the common case when a send window keeps
// several blocks in flight on one group — are processed under one
// acquisition of that group's lock instead of one per completion. Callbacks
// surfaced by a run still fire before the next run's lock is taken, so the
// observable callback order matches per-completion dispatch.
func (e *Engine) onCompletionBatch(batch []rdma.Completion) {
	for i := 0; i < len(batch); {
		id := GroupID(batch[i].Token >> 32)
		j := i + 1
		for j < len(batch) && GroupID(batch[j].Token>>32) == id {
			j++
		}
		if g := e.group(id); g != nil {
			if eo := e.eobs; eo != nil {
				eo.batchRun.Observe(int64(j - i))
				eo.record(e.host.Now(), obs.EvBatchDispatch, id, -1, -1, -1, int64(j-i))
			}
			var cbs []func()
			g.mu.Lock()
			g.noticeDefer = true
			for _, c := range batch[i:j] {
				cbs = append(cbs, g.onCompletionLocked(c)...)
			}
			g.noticeDefer = false
			g.flushNoticesLocked()
			g.mu.Unlock()
			runAll(cbs)
		}
		i = j
	}
}

// onCtrl dispatches control-plane messages.
func (e *Engine) onCtrl(from rdma.NodeID, m CtrlMsg) {
	g := e.group(m.Group)
	if g == nil {
		return
	}
	if eo := e.eobs; eo != nil {
		eo.ctrlRx.Inc()
		eo.record(e.host.Now(), obs.EvCtrlRecv, m.Group, m.Seq, m.Block, int(from), int64(m.Kind))
	}
	g.mu.Lock()
	cbs := g.onCtrlLocked(from, m)
	g.mu.Unlock()
	runAll(cbs)
}

func runAll(cbs []func()) {
	for _, cb := range cbs {
		cb()
	}
}
