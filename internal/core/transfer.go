package core

import (
	"rdmc/internal/obs"
	"rdmc/internal/rdma"
	"rdmc/internal/schedule"
)

// readyKey identifies a receiver whose readiness credit is being counted
// for one sequence. Readiness can arrive before the sender has started the
// sequence (a fast receiver racing a slow relayer), so the group keeps the
// counters rather than tying them to the active transfer. The schedule both
// sides share orders each (sender, receiver) pair's transfers identically
// (by round), so a plain count of posted receives identifies exactly which
// scheduled sends are licensed.
type readyKey struct {
	seq int
	to  int // rank of the receiver that is ready
}

// transfer is the per-message state machine of one group member.
type transfer struct {
	g    *Group
	seq  int
	size int64
	k    int
	bs   int    // per-transfer block size (adaptive roots may scale the configured one)
	mask uint64 // contention bucket the plan was built under (0 = static)
	np   schedule.NodePlan

	buf     rdma.Buffer // message memory (Data nil for metadata-only)
	staging []byte      // first-block landing buffer when carrying data

	// Adaptive mid-transfer re-plan state (see replan.go). frozen pauses
	// receive-window advancement during the freeze barrier; cutoff > 0
	// truncates the plan at that block boundary (blocks ≥ cutoff move to a
	// continuation transfer planned under contMask); replan holds the
	// root's barrier bookkeeping; orig is set on a continuation and names
	// the original message it completes.
	frozen       bool
	cutoff       int
	contMask     uint64
	replanTried  bool
	replan       *replanState
	maxSentBlock int
	orig         *origMsg

	// Root-side start gate: the transfer begins only when every receiver
	// has posted its buffers (§2's "starts sending only after all are
	// prepared").
	readyReceivers map[int]bool
	started        bool

	// Send side: sends post in schedule order, up to SendWindow of them
	// concurrently; completions land per work request, out of order.
	sendIdx       int    // next schedule index to post
	sendsInFlight int    // posted, completion not yet seen
	sendsDone     int    // completions seen
	sendDone      []bool // per-schedule-index completion flags
	sentTo        []int  // per-rank count of sends posted (consumed credit)

	// Receive side: receives are posted through a sliding window of
	// RecvWindow entries ahead of completions, pacing upstream senders.
	have       []bool
	recvPosted int
	recvDone   int

	stats *TransferStats
}

func newTransfer(g *Group, pm pendingMsg) *transfer {
	bs := pm.blockSize
	if bs <= 0 {
		bs = g.cfg.BlockSize
	}
	k := int((pm.size + int64(bs) - 1) / int64(bs))
	t := &transfer{
		g:            g,
		seq:          pm.seq,
		size:         pm.size,
		k:            k,
		bs:           bs,
		mask:         pm.mask,
		np:           g.nodePlan(k, pm.mask),
		buf:          pm.buf,
		have:         make([]bool, k),
		maxSentBlock: -1,
	}
	t.sendDone = make([]bool, len(t.np.Sends))
	t.sentTo = make([]int, len(g.members))
	if g.rank == 0 {
		t.started = len(g.members) == 1
		t.readyReceivers = make(map[int]bool, len(g.members)-1)
		for b := range t.have {
			t.have[b] = true
		}
	}
	if g.cfg.RecordStats {
		t.stats = &TransferStats{
			Seq:     pm.seq,
			Size:    pm.size,
			Blocks:  k,
			StartAt: g.engine.host.Now(),
		}
	}
	return t
}

// planCacheKey identifies one cached rank plan: the block count plus the
// adaptive contention bucket the plan was conditioned on (always zero for
// static generators, so their cache behavior is unchanged).
type planCacheKey struct {
	k    int
	mask uint64
}

// nodePlan computes (and caches per block count and contention bucket) this
// member's slice of the group's schedule. It uses the generator's rank-local
// fast path — the closed-form generators answer in O(l+k) without ever
// materializing the global transfer list; the rest resolve through the
// schedule package's process-wide plan cache, so co-located members of the
// same geometry share one immutable table instead of each recomputing the
// plan. Adaptive generators plan through their mask-conditioned entry point;
// the mask a transfer runs under is decided once by the root and shipped in
// the prepare message, so every member resolves the same (k, mask) key.
func (g *Group) nodePlan(k int, mask uint64) schedule.NodePlan {
	if g.planCache == nil {
		g.planCache = make(map[planCacheKey]schedule.NodePlan)
	}
	key := planCacheKey{k: k, mask: mask}
	if np, ok := g.planCache[key]; ok {
		if eo := g.engine.eobs; eo != nil {
			eo.planHit.Inc()
			eo.record(g.engine.host.Now(), obs.EvPlanCacheHit, g.id, -1, -1, -1, int64(k))
		}
		return np
	}
	var np schedule.NodePlan
	if ap, ok := g.cfg.Generator.(schedule.AdaptivePlanner); ok {
		np = ap.MaskedNodePlan(len(g.members), k, g.rank, mask)
	} else {
		np = g.cfg.Generator.NodePlan(len(g.members), k, g.rank)
	}
	g.planCache[key] = np
	if eo := g.engine.eobs; eo != nil {
		eo.planMiss.Inc()
		eo.record(g.engine.host.Now(), obs.EvPlanCacheMiss, g.id, -1, -1, -1, int64(k))
	}
	return np
}

// blockLen returns the byte length of block b (the last block may be short).
func (t *transfer) blockLen(b int) int {
	bs := int64(t.bs)
	if off := int64(b) * bs; off+bs > t.size {
		return int(t.size - off)
	}
	return int(bs)
}

// blockBuf returns the buffer descriptor for block b of the message memory.
func (t *transfer) blockBuf(b int) rdma.Buffer {
	n := t.blockLen(b)
	if t.buf.Data == nil {
		return rdma.SizeBuffer(n)
	}
	off := b * t.bs
	return rdma.MakeBuffer(t.buf.Data[off : off+n])
}

func wrID(seq, idx int) uint64 { return uint64(uint32(seq))<<32 | uint64(uint32(idx)) }

// startLocked begins the transfer: the root announces it to every member;
// members allocate memory (through the Incoming callback, outside the lock),
// post every scheduled receive, signal per-block readiness to their sources,
// and report themselves ready to the root.
func (t *transfer) startLocked() []func() {
	if t.g.rank == 0 {
		if t.stats != nil && t.started {
			t.stats.SetupDoneAt = t.g.engine.host.Now()
		}
		for rank := 1; rank < len(t.g.members); rank++ {
			t.g.ctrlTo(rank, CtrlMsg{Kind: CtrlPrepare, Group: t.g.id, Seq: t.seq, Size: t.size, Mask: t.mask, BS: t.bs})
		}
		if t.started { // single-member group: nothing to move
			return t.deliverLocked()
		}
		return nil
	}

	// Member path: the Incoming callback is application code, so run it
	// outside the group lock and re-enter to finish setup.
	g, size := t.g, int(t.size)
	incoming := g.cfg.Callbacks.Incoming
	return []func(){func() {
		var data []byte
		if incoming != nil {
			data = incoming(size)
		}
		g.mu.Lock()
		cbs := t.finishMemberSetupLocked(data)
		g.mu.Unlock()
		runAll(cbs)
	}}
}

func (t *transfer) finishMemberSetupLocked(data []byte) []func() {
	g := t.g
	if g.state != stateActive || g.current != t {
		return nil
	}
	if data != nil {
		if len(data) < int(t.size) {
			return g.failLocked(g.engine.NodeID(), true)
		}
		t.buf = rdma.MakeBuffer(data[:t.size])
	} else {
		t.buf = rdma.SizeBuffer(int(t.size))
	}

	// Post the initial receive window and report readiness to the root.
	// The first block lands in a staging buffer and is copied into place
	// on arrival — the paper's receivers allocate on the critical path
	// when the first block announces the size, and Table 1's "Copy Time"
	// row accounts for exactly this copy.
	if cbs := t.postRecvWindowLocked(); cbs != nil {
		return cbs
	}
	g.ctrlTo(0, CtrlMsg{Kind: CtrlReceiverReady, Group: g.id, Seq: t.seq})
	if t.stats != nil {
		t.stats.SetupDoneAt = g.engine.host.Now()
	}
	g.obsEvent(obs.EvSetupDone, t.seq, -1, -1, t.size)
	return t.pumpSendsLocked()
}

// postRecvWindowLocked advances the receive window: each posted receive is
// announced to its source with a ready-for-block notice, so senders never
// transmit into unposted memory and, transitively, the whole pipeline stays
// paced to receiver progress — the paper's "posts only a few receives per
// group" discipline. Notices for receives posted in one pass are batched
// into a single credit-carrying message per source, so widening the window
// does not multiply control traffic. It returns non-nil only on failure.
func (t *transfer) postRecvWindowLocked() []func() {
	g := t.g
	if t.frozen {
		// Re-plan barrier: the window holds still so the acked high-water
		// mark stays the truth until the root commits or resumes.
		return nil
	}
	// A window's worth of receives rarely spans more than a couple of
	// sources; a small linear-scanned batch list stays on the stack.
	var batchBuf [4]readyNotice
	batch := batchBuf[:0]
	for t.recvPosted < len(t.np.Recvs) && t.recvPosted-t.recvDone < g.cfg.RecvWindow {
		idx := t.recvPosted
		tr := t.np.Recvs[idx]
		if t.cutoff > 0 && tr.Block >= t.cutoff {
			// Truncated tail: this block moved to the continuation. Mark
			// the slot done without posting memory or sending credit — the
			// sender skips the matching send the same way, so cumulative
			// credit for this (source, receiver) pair stays in agreement.
			t.recvPosted++
			t.recvDone++
			continue
		}
		qp, err := g.qpTo(tr.From)
		if err != nil {
			return g.failLocked(g.members[tr.From], true)
		}
		buf := t.blockBuf(tr.Block)
		if idx == 0 && t.buf.Data != nil {
			// The landing buffer is recycled through the engine's pool:
			// steady-state transfers allocate no per-message staging.
			t.staging = g.engine.staging.Get(buf.Len)
			buf = rdma.MakeBuffer(t.staging)
		}
		if err := qp.PostRecv(buf, wrID(t.seq, idx)); err != nil {
			return g.failLocked(g.members[tr.From], true)
		}
		g.obsEvent(obs.EvRecvPosted, t.seq, tr.Block, tr.From, int64(buf.Len))
		t.recvPosted++
		found := false
		for i := range batch {
			if batch[i].rank == tr.From {
				batch[i].count++
				found = true
				break
			}
		}
		if !found {
			batch = append(batch, readyNotice{rank: tr.From, round: tr.Round, block: tr.Block, count: 1})
		}
	}
	for _, nb := range batch {
		g.ctrlTo(nb.rank, CtrlMsg{
			Kind:  CtrlReadyBlock,
			Group: g.id,
			Seq:   t.seq,
			Round: nb.round, // first batched transfer, for observability
			Block: nb.block,
			Count: nb.count,
		})
	}
	return nil
}

// readyNotice accumulates ready-for-block credit for one upstream source
// during a single receive-window advance.
type readyNotice struct {
	rank  int
	round int
	block int
	count int
}

// receiverReadyLocked gates the root's first send on every receiver having
// posted its buffers.
func (t *transfer) receiverReadyLocked(rank int) []func() {
	if rank <= 0 || t.started {
		return nil
	}
	t.readyReceivers[rank] = true
	if len(t.readyReceivers) < len(t.g.members)-1 {
		return nil
	}
	t.started = true
	if t.stats != nil {
		t.stats.SetupDoneAt = t.g.engine.host.Now()
	}
	t.g.obsEvent(obs.EvSetupDone, t.seq, -1, -1, t.size)
	return t.pumpSendsLocked()
}

// pumpSendsLocked posts sends in schedule order, up to SendWindow in flight
// at a time, each gated on (a) the block being locally present, (b) the
// target holding unconsumed readiness credit, and (c) the root-level start
// barrier. Posting order never deviates from the schedule — a later send
// whose gates are clear still waits behind an earlier send whose gates are
// not — which preserves the per-queue-pair FIFO the receive side's window
// accounting depends on.
func (t *transfer) pumpSendsLocked() []func() {
	g := t.g
	if g.state != stateActive {
		return nil
	}
	for t.sendsInFlight < g.cfg.SendWindow && t.sendIdx < len(t.np.Sends) {
		if g.rank == 0 && !t.started {
			return nil
		}
		tr := t.np.Sends[t.sendIdx]
		if t.cutoff > 0 && tr.Block >= t.cutoff {
			// Truncated tail: the receiver never posted this block's recv
			// (it skipped the slot symmetrically), so complete the schedule
			// entry without posting or consuming credit.
			t.sendDone[t.sendIdx] = true
			t.sendsDone++
			t.sendIdx++
			continue
		}
		if !t.have[tr.Block] {
			return nil
		}
		if t.sentTo[tr.To] >= g.readyCounts[readyKey{seq: t.seq, to: tr.To}] {
			g.stallCredit++
			return nil
		}
		// Last gate: cross-group send budget. The block has cleared the
		// schedule, presence, and receiver-credit gates; the throttle now
		// decides whether this group may put its bytes on the shared port.
		// A refusal stalls the pump exactly like a missing credit — the
		// throttle's resume callback re-enters it when budget frees up.
		if !g.acquireThrottleLocked(t.blockLen(tr.Block)) {
			return nil
		}
		qp, err := g.qpTo(tr.To)
		if err != nil {
			return g.failLocked(g.members[tr.To], true)
		}
		if t.stats != nil {
			t.stats.Sends = append(t.stats.Sends, BlockStamp{
				Block:    tr.Block,
				PostedAt: g.engine.host.Now(),
			})
		}
		if err := qp.PostSend(t.blockBuf(tr.Block), uint32(t.size), wrID(t.seq, t.sendIdx)); err != nil {
			return g.failLocked(g.members[tr.To], true)
		}
		if eo := g.engine.eobs; eo != nil {
			eo.blocksSent.Inc()
			eo.record(g.engine.host.Now(), obs.EvSendPosted, g.id, t.seq, tr.Block, tr.To, int64(t.blockLen(tr.Block)))
		}
		t.sentTo[tr.To]++
		t.sendsInFlight++
		t.sendIdx++
		g.postedSends++
		if tr.Block > t.maxSentBlock {
			t.maxSentBlock = tr.Block
		}
	}
	return nil
}

// completionLocked consumes a data-plane completion for this transfer.
func (t *transfer) completionLocked(c rdma.Completion) []func() {
	if int(c.WRID>>32) != int(uint32(t.seq)) {
		return nil // stale completion from an earlier sequence
	}
	idx := int(uint32(c.WRID))
	switch c.Op {
	case rdma.OpSend:
		return t.sendDoneLocked(idx)
	case rdma.OpRecv:
		return t.recvDoneLocked(idx, c)
	default:
		return nil
	}
}

func (t *transfer) sendDoneLocked(idx int) []func() {
	// Completions land per work request and may arrive out of post order
	// across queue pairs (each pair is FIFO, but a window spans pairs).
	if idx < 0 || idx >= t.sendIdx || t.sendDone[idx] {
		return nil
	}
	t.sendDone[idx] = true
	t.sendsInFlight--
	t.sendsDone++
	if t.stats != nil && idx < len(t.stats.Sends) {
		// Sends post in schedule order, so stats.Sends[idx] is the stamp
		// this work request opened.
		t.stats.Sends[idx].DoneAt = t.g.engine.host.Now()
	}
	tr := t.np.Sends[idx]
	t.g.obsEvent(obs.EvSendDone, t.seq, tr.Block, tr.To, 0)
	// The send's bytes leave the wire: return them to the cross-group
	// budget. Resumes for other groups run after this group's lock drops.
	resumes := t.g.releaseThrottleLocked(t.blockLen(tr.Block))
	if cbs := t.pumpSendsLocked(); cbs != nil {
		return append(resumes, cbs...)
	}
	if t.g.rank == 0 {
		t.g.maybeReplanLocked()
	}
	if cbs := t.maybeDeliverLocked(); cbs != nil {
		return append(resumes, cbs...)
	}
	return resumes
}

func (t *transfer) recvDoneLocked(idx int, c rdma.Completion) []func() {
	if idx < 0 || idx >= len(t.np.Recvs) {
		return nil
	}
	tr := t.np.Recvs[idx]
	if c.Imm != uint32(t.size) {
		// The immediate announces the message size on every block (§4.2);
		// a mismatch means the peers disagree about the transfer.
		return t.g.failLocked(t.g.members[tr.From], true)
	}
	if t.stats != nil {
		now := t.g.engine.host.Now()
		t.stats.Recvs = append(t.stats.Recvs, BlockStamp{Block: tr.Block, DoneAt: now})
	}
	if eo := t.g.engine.eobs; eo != nil {
		eo.blocksRecv.Inc()
		eo.record(t.g.engine.host.Now(), obs.EvRecvDone, t.g.id, t.seq, tr.Block, tr.From, int64(c.Bytes))
	}
	if idx == 0 {
		// First block: copy from staging into the message region. The
		// paper overlaps this copy with the rest of the transfer ("in
		// parallel, copy the first block to the start of the receive
		// area", §4.2), so the block is usable immediately and the copy
		// cost is accounted without gating the pipeline.
		n := t.blockLen(tr.Block)
		if t.staging != nil {
			if t.buf.Data != nil {
				copy(t.buf.Data[tr.Block*t.bs:], t.staging[:n])
			}
			// The transport handed the completion back; the landing
			// buffer is free to recycle.
			t.g.engine.staging.Put(t.staging)
			t.staging = nil
		}
		e, g := t.g.engine, t.g
		before := e.host.Now()
		stats := t.stats
		// A real-time host runs the charge callback inline — while this
		// method still holds g.mu — whereas the simulated host schedules
		// it on the event loop after the modelled memcpy. The flag tells
		// the callback which world it is in so it never re-locks a mutex
		// the caller already holds.
		inline := true
		e.host.ChargeCopy(n, func() {
			if stats == nil {
				return
			}
			if inline {
				stats.CopyTime += e.host.Now() - before
				return
			}
			g.mu.Lock()
			stats.CopyTime += e.host.Now() - before
			g.mu.Unlock()
		})
		inline = false
	}
	return t.blockArrivedLocked(tr.Block)
}

func (t *transfer) blockArrivedLocked(block int) []func() {
	if t.have[block] {
		return nil
	}
	t.have[block] = true
	t.recvDone++
	if cbs := t.postRecvWindowLocked(); cbs != nil {
		return cbs
	}
	if cbs := t.pumpSendsLocked(); cbs != nil {
		return cbs
	}
	return t.maybeDeliverLocked()
}

// maybeDeliverLocked completes the message locally once every scheduled
// receive has arrived and every scheduled send has completed — the point at
// which "the associated memory region can be reused", which "might happen
// before other receivers have finished getting the message" (§4.1).
func (t *transfer) maybeDeliverLocked() []func() {
	if t.recvDone < len(t.np.Recvs) || t.sendsDone < len(t.np.Sends) {
		return nil
	}
	return t.deliverLocked()
}

func (t *transfer) deliverLocked() []func() {
	g := t.g
	if t.cutoff > 0 {
		// The truncated phase quiesced; the remaining blocks move as a
		// continuation transfer under the committed plan. Delivery happens
		// when the continuation finishes.
		return t.startContinuationLocked()
	}
	g.delivered++
	g.current = nil
	seq, size, data := t.seq, t.size, t.buf.Data
	if t.orig != nil {
		// Continuation finishing: deliver under the original message's
		// identity — the application never observes the split.
		seq, size, data = t.orig.seq, t.orig.size, t.orig.buf.Data
	}
	for key := range g.readyCounts {
		if key.seq == t.seq || key.seq == seq {
			delete(g.readyCounts, key)
		}
	}
	if t.stats != nil {
		t.stats.DeliveredAt = g.engine.host.Now()
		g.lastStats = t.stats
	}
	if eo := g.engine.eobs; eo != nil {
		eo.delivered.Inc()
		eo.msgBytes.Observe(size)
		eo.record(g.engine.host.Now(), obs.EvDelivered, g.id, seq, -1, -1, size)
	}

	var cbs []func()
	if fn := g.cfg.Callbacks.Completion; fn != nil {
		cseq, cdata, csize := seq, data, int(size)
		cbs = append(cbs, func() { fn(cseq, cdata, csize) })
	}
	cbs = append(cbs, g.maybeAckCloseLocked()...)
	cbs = append(cbs, g.maybeStartNextLocked()...)
	return cbs
}
