package core

// SendThrottle rations outbound data-plane bytes across the groups sharing
// one NIC. The engine's cumulative-credit path already paces each group
// against its receivers; a throttle adds the cross-group dimension — how much
// of the port's send budget each group (or the tenant behind it) may hold in
// flight at once. The hook sits exactly where credit gating does: a send that
// has cleared the schedule, presence, and receiver-credit gates must also
// Acquire its block's bytes before posting, and returns them when the send
// completes.
//
// Locking contract: every method is called with the acquiring/releasing
// group's mutex held, so implementations take their own lock inside the
// group's (Group.mu → throttle.mu, never the reverse). Acquire must never
// invoke resume synchronously — it is a wakeup for later, called at most once
// per stall, outside any throttle or group lock. Release and Forget return
// the wakeups they unblock instead of running them, and the caller runs them
// after dropping its own lock; a resume re-enters the group state machine,
// which re-Acquires, so running one under a lock would deadlock or invert
// the order.
//
// A nil Throttle in GroupConfig disables the feature entirely; the hot path
// pays one nil check.
type SendThrottle interface {
	// Acquire requests bytes of send budget on behalf of group g. True
	// grants the budget immediately. False refuses it: the group stalls,
	// and the throttle must call resume (once, later, outside locks) when
	// budget may have become available; the group then re-Acquires. A
	// repeated Acquire for a group already waiting replaces its
	// registration rather than queueing a second one.
	Acquire(g GroupID, bytes int, resume func()) bool
	// Release returns bytes of budget and reports the resume callbacks now
	// unblocked. The caller must run them after releasing its locks.
	Release(g GroupID, bytes int) []func()
	// Forget drops all throttle state for a departed group — its waiting
	// registration and any reserved-but-unclaimed budget — and reports
	// resumes unblocked by the departure. Held bytes must be Released by
	// the caller first; Forget only clears bookkeeping.
	Forget(g GroupID) []func()
}

// acquireThrottleLocked gates one block send of n bytes through the group's
// throttle. True means post; false means stall until resume.
func (g *Group) acquireThrottleLocked(n int) bool {
	th := g.cfg.Throttle
	if th == nil {
		return true
	}
	if !th.Acquire(g.id, n, g.resume) {
		g.stallThrottle++
		return false
	}
	g.throttleHeld += n
	return true
}

// releaseThrottleLocked returns n held bytes to the throttle, clamping to
// what the group actually holds (teardown passes the full remainder).
func (g *Group) releaseThrottleLocked(n int) []func() {
	th := g.cfg.Throttle
	if th == nil || n <= 0 {
		return nil
	}
	if n > g.throttleHeld {
		n = g.throttleHeld
	}
	if n == 0 {
		return nil
	}
	g.throttleHeld -= n
	return th.Release(g.id, n)
}

// dropThrottleLocked is the terminal-path cleanup: give back every held byte
// and erase the group from the throttle. Safe to call repeatedly — after the
// first call the group holds nothing and Forget of an unknown group is a
// no-op.
func (g *Group) dropThrottleLocked() []func() {
	th := g.cfg.Throttle
	if th == nil {
		return nil
	}
	cbs := g.releaseThrottleLocked(g.throttleHeld)
	return append(cbs, th.Forget(g.id)...)
}

// resume is the stall wakeup the throttle calls when budget frees up: re-enter
// the state machine and pump. It runs outside all locks (see the SendThrottle
// contract), so taking the group lock here is safe.
func (g *Group) resume() {
	g.mu.Lock()
	var cbs []func()
	if g.state == stateActive && g.current != nil {
		cbs = g.current.pumpSendsLocked()
	}
	g.mu.Unlock()
	runAll(cbs)
}
