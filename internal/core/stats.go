package core

import "time"

// BlockStamp records one block-level event for the microbenchmarks.
type BlockStamp struct {
	// Block is the block number moved.
	Block int
	// PostedAt is when the work request was posted (sends only; receives
	// are posted in a batch during setup).
	PostedAt time.Duration
	// DoneAt is when the completion fired.
	DoneAt time.Duration
}

// TransferStats is the per-node timing record of one message, captured when
// GroupConfig.RecordStats is set. The benchmark harness derives the paper's
// Table 1 rows and Figure 5 timelines from it.
type TransferStats struct {
	// Seq is the message sequence number.
	Seq int
	// Size is the message size in bytes and Blocks its block count.
	Size   int64
	Blocks int
	// StartAt is when the node learned of the transfer (the root's send
	// call, or receipt of the prepare announcement).
	StartAt time.Duration
	// SetupDoneAt is when local setup finished: for receivers, buffers
	// posted and readiness signalled; for the root, all receivers ready.
	SetupDoneAt time.Duration
	// Sends and Recvs record per-block completions in execution order.
	Sends []BlockStamp
	Recvs []BlockStamp
	// CopyTime is the critical-path memory-copy time charged (Table 1's
	// "Copy Time" row: the first block lands in a staging buffer and is
	// copied into place).
	CopyTime time.Duration
	// DeliveredAt is when the message became locally complete.
	DeliveredAt time.Duration
}

// TotalTime is the node-local span of the transfer.
func (s *TransferStats) TotalTime() time.Duration { return s.DeliveredAt - s.StartAt }

// SetupTime is the node-local setup span.
func (s *TransferStats) SetupTime() time.Duration { return s.SetupDoneAt - s.StartAt }

// SendBusy sums the post-to-completion spans of the node's sends.
func (s *TransferStats) SendBusy() time.Duration {
	var total time.Duration
	for _, b := range s.Sends {
		total += b.DoneAt - b.PostedAt
	}
	return total
}

// SendWait sums the gaps between consecutive sends (previous completion to
// next post) plus the lead-in from setup to the first post: the time the
// node's transmit side sat idle waiting for blocks, readiness, or the CPU.
// Every component is clamped to ≥ 0: a root may post its first send before
// setup formally completes (the receiver-ready barrier resolves late), and a
// negative lead-in would silently deflate the wait total.
func (s *TransferStats) SendWait() time.Duration {
	if len(s.Sends) == 0 {
		return 0
	}
	var total time.Duration
	if lead := s.Sends[0].PostedAt - s.SetupDoneAt; lead > 0 {
		total = lead
	}
	for i := 1; i < len(s.Sends); i++ {
		if gap := s.Sends[i].PostedAt - s.Sends[i-1].DoneAt; gap > 0 {
			total += gap
		}
	}
	return total
}

// RecvSpan is the span from setup completion to the last block arrival: the
// window during which the node's receive side was active.
func (s *TransferStats) RecvSpan() time.Duration {
	if len(s.Recvs) == 0 {
		return 0
	}
	return s.Recvs[len(s.Recvs)-1].DoneAt - s.SetupDoneAt
}

// RecvGaps returns the inter-arrival gaps between consecutive block
// receptions, a direct view of per-step wait time (Figure 5).
func (s *TransferStats) RecvGaps() []time.Duration {
	if len(s.Recvs) < 2 {
		return nil
	}
	gaps := make([]time.Duration, 0, len(s.Recvs)-1)
	for i := 1; i < len(s.Recvs); i++ {
		gaps = append(gaps, s.Recvs[i].DoneAt-s.Recvs[i-1].DoneAt)
	}
	return gaps
}
