package core

import (
	"fmt"
	"sync"

	"rdmc/internal/obs"
	"rdmc/internal/rdma"
	"rdmc/internal/schedule"
)

// Callbacks notify the application of group events, mirroring the paper's
// Figure 1 interface. All callbacks run on the engine's dispatch context and
// may call back into the group (for example Send from Completion).
type Callbacks struct {
	// Incoming is invoked on receivers when a new transfer is announced
	// and must return a buffer of at least size bytes for the message, or
	// nil to run the transfer metadata-only (simulation workloads). It
	// corresponds to the paper's incoming_message_callback.
	Incoming func(size int) []byte
	// Completion is invoked when a message send/receive is locally
	// complete and the associated memory may be reused. data is nil for
	// metadata-only transfers.
	Completion func(seq int, data []byte, size int)
	// Failure is invoked at most once, when the group fails.
	Failure func(err error)
}

// GroupConfig carries the per-group parameters that the paper treats as
// configuration (block size, algorithm) plus the event callbacks.
type GroupConfig struct {
	// BlockSize is the block granularity in bytes for large messages.
	BlockSize int
	// Generator chooses the multicast algorithm; nil selects the binomial
	// pipeline, the paper's default.
	Generator schedule.Generator
	// SendWindow is how many block sends a member keeps posted
	// concurrently. Sends still post in schedule order — the per-queue-
	// pair FIFO guarantee depends on it — but with a window above 1 the
	// next send posts as soon as its gates clear, without waiting for the
	// previous block's completion, so the per-block completion round trip
	// is hidden behind the wire (§4.3's decoupling carried to its
	// conclusion). Completions are then tracked per work request, out of
	// order. Zero selects the default of 4.
	SendWindow int
	// RecvWindow is how many receives a member keeps posted ahead of its
	// arrivals. The paper's receivers "post only a few receives per
	// group" and post more as needed (§4.2): the window is what paces
	// senders (through ready-for-block notices). A window of 1 keeps the
	// pipeline in lockstep — concurrently arriving blocks never contend
	// for one receiver's NIC — at the cost of a small per-block
	// control-message bubble; larger windows hide that bubble but let
	// rounds overlap and steal receive bandwidth from each other (the
	// recv-window ablation benchmark quantifies the trade). Zero matches
	// SendWindow, so the two ends of the pipeline widen together.
	RecvWindow int
	// Callbacks notify the application.
	Callbacks Callbacks
	// RecordStats enables per-message timing capture (Table 1, Figure 5).
	RecordStats bool
	// Throttle, when non-nil, rations this group's outbound bytes against
	// the other groups sharing the NIC (see SendThrottle). Nil means
	// unthrottled — the receiver-credit path alone paces the group.
	Throttle SendThrottle
}

// Group is one RDMC multicast session: a static member list whose first
// entry is the only permitted sender.
type Group struct {
	engine  *Engine
	id      GroupID
	members []rdma.NodeID
	rank    int
	cfg     GroupConfig

	// mu serializes the group's state machine; every *Locked method runs
	// under it. See the package comment for the lock-ordering rule.
	mu sync.Mutex

	qps map[int]rdma.QueuePair // rank → queue pair

	// readyCounts accumulates per-receiver readiness credit, keyed by
	// (sequence, receiver rank) so a fast receiver can announce readiness
	// for a sequence this node has not started yet. Each credit licenses
	// one more scheduled send to that receiver; because both sides order
	// their (sender, target) transfers by the same deterministic plan,
	// a cumulative count is enough to agree on which blocks are licensed,
	// and counts let receivers batch several notices into one message.
	readyCounts map[readyKey]int
	planCache   map[planCacheKey]schedule.NodePlan

	// Adaptive scheduling state (see replan.go). lastMask is the root's
	// previous plan decision, fed back into the hysteresis; earlyReady
	// buffers continuation ReceiverReady notices from members whose old
	// phase quiesced before the root's own; the stall/post counters feed
	// the credit-stall component of the contention signal (sampled as a
	// delta, hence the last* shadows).
	lastMask        uint64
	earlyReady      map[int]map[int]bool
	stallCredit     uint64
	postedSends     uint64
	lastStallCredit uint64
	lastPostedSends uint64

	// Cross-group throttle accounting: bytes of send budget currently held
	// (acquired for posted-but-incomplete sends) and how often the throttle
	// refused a send the credit path had already licensed.
	throttleHeld  int
	stallThrottle uint64

	// Notice deferral: while a completion batch is being processed (see
	// Engine.onCompletionBatch), outbound ready-for-block notices merge
	// into noticeQ instead of hitting the control channel one by one; the
	// batch handler flushes them — one credit-carrying message per
	// (receiver sequence, source) — before releasing the lock. Credit is
	// cumulative, so merging never changes what senders may do, only how
	// many control messages say so.
	noticeDefer bool
	noticeQ     []queuedNotice

	state     groupState
	failure   error
	failedVia map[rdma.NodeID]bool // failures already relayed

	seq       int // next sequence to assign (root) / highest seen + 1
	delivered int // messages locally complete
	current   *transfer
	pending   []pendingMsg // root: queued sends; member: queued prepares

	lastStats *TransferStats

	// close barrier state (root)
	closeTotal int
	closeAcks  map[int]bool
	closeCb    func(error)
	// close barrier state (member)
	memberCloseRecv  bool
	memberCloseTotal int
	memberCloseSent  bool
}

type groupState int

const (
	stateActive groupState = iota + 1
	stateFailed
	stateClosed
)

type pendingMsg struct {
	seq       int
	size      int64
	buf       rdma.Buffer // root side only
	mask      uint64      // adaptive contention bucket (0 = static plan)
	blockSize int         // per-transfer block size (0 = configured)
}

// CreateGroup creates the local endpoint of a group. Every member must call
// it with an identical member list (members[0] is the root), as the paper's
// create_group is "called concurrently (with identical membership
// information) by all group members".
func (e *Engine) CreateGroup(id GroupID, members []rdma.NodeID, cfg GroupConfig) (*Group, error) {
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("core: block size must be positive, got %d", cfg.BlockSize)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("core: group needs at least one member")
	}
	if cfg.Generator == nil {
		cfg.Generator = schedule.New(schedule.BinomialPipeline)
	}
	if cfg.SendWindow <= 0 {
		cfg.SendWindow = 4
	}
	if cfg.RecvWindow <= 0 {
		cfg.RecvWindow = cfg.SendWindow
	}
	g := &Group{
		engine:      e,
		id:          id,
		members:     append([]rdma.NodeID(nil), members...),
		rank:        -1,
		cfg:         cfg,
		qps:         make(map[int]rdma.QueuePair),
		readyCounts: make(map[readyKey]int),
		state:       stateActive,
		failedVia:   make(map[rdma.NodeID]bool),
		closeAcks:   make(map[int]bool),
	}
	for i, m := range members {
		if m == e.NodeID() {
			g.rank = i
			break
		}
	}
	if g.rank < 0 {
		return nil, ErrNotMember
	}

	// The gate makes creation atomic with engine close: a group can never
	// be added behind Close's teardown sweep.
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrEngineClosed
	}
	if _, loaded := e.groups.LoadOrStore(id, g); loaded {
		return nil, ErrGroupExists
	}
	return g, nil
}

// Rank returns the local member's rank; rank 0 is the root.
func (g *Group) Rank() int { return g.rank }

// Members returns a copy of the member list.
func (g *Group) Members() []rdma.NodeID {
	return append([]rdma.NodeID(nil), g.members...)
}

// Err returns the group's failure, if any.
func (g *Group) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.failure
}

// Delivered returns the number of locally completed messages.
func (g *Group) Delivered() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.delivered
}

// LastStats returns the timing record of the most recently completed
// message, when RecordStats is enabled. The result is a deep copy: the
// group's internal record can still be amended after delivery (the simulated
// host charges copy time through a deferred callback) and is replaced by the
// next transfer, so handing out the internal pointer would let the caller
// observe those mutations mid-read.
func (g *Group) LastStats() *TransferStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.lastStats == nil {
		return nil
	}
	cp := *g.lastStats
	cp.Sends = append([]BlockStamp(nil), g.lastStats.Sends...)
	cp.Recvs = append([]BlockStamp(nil), g.lastStats.Recvs...)
	return &cp
}

// Send multicasts a message to the group. Only the root may call it. The
// data buffer must stay untouched until the Completion callback fires for
// the message's sequence number. A metadata-only message may be sent with
// SendSized instead.
func (g *Group) Send(data []byte) error {
	return g.send(rdma.MakeBuffer(data))
}

// SendSized multicasts a metadata-only message of the given size: block
// transfers move through the full protocol and transport but carry no user
// bytes. Simulation workloads use it to replicate hundreds of megabytes
// without allocating them.
func (g *Group) SendSized(size int) error {
	return g.send(rdma.SizeBuffer(size))
}

func (g *Group) send(buf rdma.Buffer) error {
	if buf.Len <= 0 {
		return fmt.Errorf("core: message must have at least one byte, got %d", buf.Len)
	}
	if int64(buf.Len) > int64(^uint32(0)) {
		return ErrMessageTooLarge
	}
	g.mu.Lock()
	if g.rank != 0 {
		g.mu.Unlock()
		return ErrNotRoot
	}
	var cbs []func()
	var err error
	switch g.state {
	case stateFailed:
		err = g.failure
	case stateClosed:
		err = ErrGroupClosed
	default:
		seq := g.seq
		g.seq++
		g.pending = append(g.pending, pendingMsg{seq: seq, size: int64(buf.Len), buf: buf})
		cbs = g.maybeStartNextLocked()
	}
	g.mu.Unlock()
	runAll(cbs)
	return err
}

// Destroy tears the group down. On the root it runs the paper's close
// barrier: done receives nil only if every message reached every member, so
// "if the group close operation is successful, the sender (and all
// receivers) can be confident that every RDMC message reached every
// destination" (§4.6). On non-root members it releases local resources
// immediately.
func (g *Group) Destroy(done func(err error)) {
	if done == nil {
		done = func(error) {}
	}
	g.mu.Lock()
	var cbs []func()
	switch {
	case g.state == stateClosed:
		cbs = append(cbs, func() { done(ErrGroupClosed) })
	case g.state == stateFailed:
		err := g.failure
		cbs = append(cbs, g.teardownLocked()...)
		cbs = append(cbs, func() { done(err) })
	case g.rank != 0:
		cbs = append(cbs, g.teardownLocked()...)
		cbs = append(cbs, func() { done(nil) })
	default:
		g.closeTotal = g.seq
		g.closeCb = done
		if len(g.members) == 1 {
			cbs = append(cbs, g.teardownLocked()...)
			cbs = append(cbs, func() { done(nil) })
			break
		}
		for rank := 1; rank < len(g.members); rank++ {
			g.ctrlTo(rank, CtrlMsg{Kind: CtrlClose, Group: g.id, Total: g.closeTotal})
		}
	}
	g.mu.Unlock()
	runAll(cbs)
}

// teardownLocked releases the group's transport resources and removes it
// from the engine. The returned callbacks (throttle resumes for other groups
// unblocked by the departure) must run after the lock is dropped.
func (g *Group) teardownLocked() []func() {
	g.state = stateClosed
	for _, qp := range g.qps {
		_ = qp.Close()
	}
	g.engine.groups.Delete(g.id)
	return g.dropThrottleLocked()
}

// PendingSend is one queued message captured by Wedge: assigned its sequence
// but not yet (fully) transferred. Data is nil for metadata-only messages.
type PendingSend struct {
	Seq  int
	Size int64
	Data []byte
}

// DrainState is the frozen progress of a wedged group, for a membership layer
// deciding what must be re-sent after a view change.
type DrainState struct {
	// Delivered counts messages locally complete.
	Delivered int
	// NextSeq is the next sequence this member would assign (root) or
	// expects to see (member).
	NextSeq int
	// InFlightSeq is the sequence of the transfer that was active when the
	// group wedged, or -1 if the group was idle.
	InFlightSeq int
	// Pending are the queued-but-unstarted messages (sends on the root,
	// announced prepares on members).
	Pending []PendingSend
}

// Wedge freezes the group without failing it: the state machine stops, the
// group leaves the engine's routing table (stray completions and control
// messages for it are dropped silently), no further callbacks fire, and the
// frozen progress is returned. Unlike Destroy, Wedge keeps the queue pairs
// open — closing them would surface broken completions at live peers that
// have not wedged yet, turning a clean view change into a storm of spurious
// suspicions. Call CloseConnections once every survivor has wedged.
func (g *Group) Wedge() DrainState {
	g.mu.Lock()
	ds := DrainState{
		Delivered:   g.delivered,
		NextSeq:     g.seq,
		InFlightSeq: -1,
	}
	if g.current != nil {
		ds.InFlightSeq = g.current.seq
		if g.current.orig != nil {
			// A continuation is in flight: the membership layer knows the
			// message by its original sequence.
			ds.InFlightSeq = g.current.orig.seq
		}
	}
	for _, p := range g.pending {
		ps := PendingSend{Seq: p.seq, Size: p.size}
		if p.buf.Data != nil {
			ps.Data = p.buf.Data
		}
		ds.Pending = append(ds.Pending, ps)
	}
	if g.state != stateClosed {
		g.state = stateClosed
		g.engine.groups.Delete(g.id)
	}
	g.current = nil
	g.pending = nil
	g.closeCb = nil
	// Sends frozen mid-flight never complete (their completions are dropped
	// once the id leaves the routing table), so hand their budget back now.
	cbs := g.dropThrottleLocked()
	g.mu.Unlock()
	runAll(cbs)
	return ds
}

// CloseConnections releases a wedged group's queue pairs. Safe to call once
// all peers have wedged the group too (its id is gone from every engine's
// routing table, so the broken completions a close provokes are dropped).
func (g *Group) CloseConnections() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, qp := range g.qps {
		_ = qp.Close()
	}
	g.qps = make(map[int]rdma.QueuePair)
}

// OpenConnections reports the group's live queue pairs — zero once
// CloseConnections has run. Teardown-leak checks assert on it: a group that
// left the engine's routing table but still holds queue pairs is dataplane
// state leaked per Storm's scaling lesson.
func (g *Group) OpenConnections() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.qps)
}

// rankOf returns the rank of a node, or -1.
func (g *Group) rankOf(node rdma.NodeID) int {
	for i, m := range g.members {
		if m == node {
			return i
		}
	}
	return -1
}

// qpTo returns (creating on demand) the queue pair to a rank. Queue pairs
// are cached for the group's lifetime, so repeated transfers reuse the
// overlay as the paper recommends.
func (g *Group) qpTo(rank int) (rdma.QueuePair, error) {
	if qp, ok := g.qps[rank]; ok {
		return qp, nil
	}
	lo, hi := g.rank, rank
	if lo > hi {
		lo, hi = hi, lo
	}
	token := uint64(g.id)<<32 | uint64(lo)<<16 | uint64(hi)
	qp, err := g.engine.provider.Connect(g.members[rank], token)
	if err != nil {
		return nil, fmt.Errorf("core: connect group %d rank %d: %w", g.id, rank, err)
	}
	g.qps[rank] = qp
	return qp, nil
}

// queuedNotice is one deferred CtrlReadyBlock, addressed by rank.
type queuedNotice struct {
	rank int
	m    CtrlMsg
}

// ctrlTo sends a control message to a rank, ignoring transport errors (a
// destination that died will be reported through failure detection). Ready
// notices are merged into the deferral queue while a completion batch runs.
func (g *Group) ctrlTo(rank int, m CtrlMsg) {
	if g.noticeDefer && m.Kind == CtrlReadyBlock {
		if m.Count <= 0 {
			m.Count = 1
		}
		for i := range g.noticeQ {
			if q := &g.noticeQ[i]; q.rank == rank && q.m.Seq == m.Seq {
				q.m.Count += m.Count
				return
			}
		}
		g.noticeQ = append(g.noticeQ, queuedNotice{rank: rank, m: m})
		return
	}
	g.ctrlSentObs(rank, m)
	_ = g.engine.ctrl.Send(g.members[rank], m)
}

// ctrlSentObs instruments one control message at the point it actually hits
// the wire (deferred notices count when flushed, not when queued).
func (g *Group) ctrlSentObs(rank int, m CtrlMsg) {
	if eo := g.engine.eobs; eo != nil {
		eo.ctrlTx.Inc()
		eo.record(g.engine.host.Now(), obs.EvCtrlSent, g.id, m.Seq, m.Block, int(g.members[rank]), int64(m.Kind))
	}
}

// flushNoticesLocked drains the deferral queue to the control channel.
func (g *Group) flushNoticesLocked() {
	for i := range g.noticeQ {
		g.ctrlSentObs(g.noticeQ[i].rank, g.noticeQ[i].m)
		_ = g.engine.ctrl.Send(g.members[g.noticeQ[i].rank], g.noticeQ[i].m)
		g.noticeQ[i] = queuedNotice{}
	}
	g.noticeQ = g.noticeQ[:0]
}

// failLocked transitions the group to the failed state, attributing the
// failure to node, and (once per suspected node) relays the notice to every
// member so that "all survivors eventually learn of the event" (§3).
func (g *Group) failLocked(node rdma.NodeID, relay bool) []func() {
	if g.state == stateClosed {
		return nil
	}
	var cbs []func()
	if relay && !g.failedVia[node] {
		g.failedVia[node] = true
		if eo := g.engine.eobs; eo != nil {
			eo.failRelay.Inc()
			eo.record(g.engine.host.Now(), obs.EvFailureRelay, g.id, -1, -1, int(node), 0)
		}
		for rank := range g.members {
			if rank != g.rank {
				g.ctrlTo(rank, CtrlMsg{Kind: CtrlFailure, Group: g.id, Node: node})
			}
		}
	}
	if g.state == stateFailed {
		return nil
	}
	g.state = stateFailed
	g.failure = &FailureError{Group: g.id, Node: node}
	g.current = nil
	g.pending = nil
	// A failed group's in-flight sends will never report completion to the
	// state machine; release their throttle budget so surviving groups are
	// not starved by a dead one's reservation.
	cbs = append(cbs, g.dropThrottleLocked()...)
	if fn := g.cfg.Callbacks.Failure; fn != nil {
		err := g.failure
		cbs = append(cbs, func() { fn(err) })
	}
	// A failed group can never satisfy the close barrier.
	if g.closeCb != nil {
		cb, err := g.closeCb, g.failure
		g.closeCb = nil
		cbs = append(cbs, func() { cb(err) })
	}
	if g.memberCloseRecv && !g.memberCloseSent {
		g.memberCloseSent = true
		g.ctrlTo(0, CtrlMsg{Kind: CtrlCloseAck, Group: g.id, Node: g.engine.NodeID()})
	}
	return cbs
}

// onCtrlLocked handles one control message for this group.
func (g *Group) onCtrlLocked(from rdma.NodeID, m CtrlMsg) []func() {
	switch m.Kind {
	case CtrlPrepare:
		if g.state != stateActive || g.rank == 0 {
			return nil
		}
		g.pending = append(g.pending, pendingMsg{seq: m.Seq, size: m.Size, mask: m.Mask, blockSize: m.BS})
		return g.maybeStartNextLocked()

	case CtrlReceiverReady:
		if g.rank != 0 {
			return nil
		}
		if g.current == nil || g.current.seq != m.Seq {
			if m.Seq&contSeqTag != 0 && g.state == stateActive {
				// A member's old phase can quiesce — and its continuation
				// report ready — before the root's own quiesce starts the
				// continuation locally. Buffer the readiness; the root
				// replays it when its continuation begins.
				if r := g.rankOf(from); r > 0 {
					if g.earlyReady == nil {
						g.earlyReady = make(map[int]map[int]bool)
					}
					set := g.earlyReady[m.Seq]
					if set == nil {
						set = make(map[int]bool)
						g.earlyReady[m.Seq] = set
					}
					set[r] = true
				}
			}
			return nil
		}
		return g.current.receiverReadyLocked(g.rankOf(from))

	case CtrlReadyBlock:
		if g.state != stateActive {
			return nil
		}
		fromRank := g.rankOf(from)
		if fromRank < 0 {
			return nil
		}
		// Credit the notice: it may concern a sequence this node has not
		// started yet (a receiver that finished the previous message and
		// prepared the next while this relayer is still draining). Count
		// carries batched credit; legacy single notices carry zero.
		inc := m.Count
		if inc <= 0 {
			inc = 1
		}
		g.readyCounts[readyKey{seq: m.Seq, to: fromRank}] += inc
		if eo := g.engine.eobs; eo != nil {
			eo.credits.Add(uint64(inc))
			eo.record(g.engine.host.Now(), obs.EvCreditUpdate, g.id, m.Seq, m.Block, fromRank, int64(inc))
		}
		if g.current != nil && g.current.seq == m.Seq {
			return g.current.pumpSendsLocked()
		}
		return nil

	case CtrlFailure:
		return g.failLocked(m.Node, true)

	case CtrlClose:
		if g.rank == 0 {
			return nil
		}
		g.memberCloseRecv = true
		g.memberCloseTotal = m.Total
		return g.maybeAckCloseLocked()

	case CtrlCloseAck:
		if g.rank != 0 || g.closeCb == nil {
			return nil
		}
		if !m.OK {
			return g.failLocked(m.Node, true)
		}
		g.closeAcks[g.rankOf(from)] = true
		if len(g.closeAcks) == len(g.members)-1 {
			cb := g.closeCb
			g.closeCb = nil
			for rank := 1; rank < len(g.members); rank++ {
				g.ctrlTo(rank, CtrlMsg{Kind: CtrlDestroyed, Group: g.id})
			}
			cbs := g.teardownLocked()
			return append(cbs, func() { cb(nil) })
		}
		return nil

	case CtrlDestroyed:
		if g.state != stateClosed {
			return g.teardownLocked()
		}
		return nil

	case CtrlReplanFreeze:
		return g.onReplanFreezeLocked(m)

	case CtrlReplanAck:
		return g.onReplanAckLocked(from, m)

	case CtrlReplanCommit:
		return g.onReplanCommitLocked(m)

	case CtrlReplanResume:
		return g.onReplanResumeLocked(m)

	default:
		return nil
	}
}

// maybeAckCloseLocked answers the close barrier once every announced message
// has been delivered locally.
func (g *Group) maybeAckCloseLocked() []func() {
	if !g.memberCloseRecv || g.memberCloseSent {
		return nil
	}
	if g.state == stateFailed {
		g.memberCloseSent = true
		g.ctrlTo(0, CtrlMsg{Kind: CtrlCloseAck, Group: g.id, Node: g.engine.NodeID()})
		return nil
	}
	if g.delivered >= g.memberCloseTotal {
		g.memberCloseSent = true
		g.ctrlTo(0, CtrlMsg{Kind: CtrlCloseAck, Group: g.id, OK: true, Node: g.engine.NodeID()})
	}
	return nil
}

// maybeStartNextLocked begins the next queued transfer when the group is
// idle: on the root that means flooding CtrlPrepare; on members, posting
// buffers and signalling readiness. RDMC does not pipeline messages (§5.1),
// so at most one transfer is active per group at a time.
func (g *Group) maybeStartNextLocked() []func() {
	if g.state != stateActive || g.current != nil || len(g.pending) == 0 {
		return nil
	}
	next := g.pending[0]
	g.pending = g.pending[1:]
	if g.rank != 0 && next.seq >= g.seq {
		g.seq = next.seq + 1
	}
	if g.rank == 0 {
		g.decideAdaptiveLocked(&next)
	}
	tr := newTransfer(g, next)
	g.current = tr
	return tr.startLocked()
}

// onCompletionLocked routes a data-plane completion.
func (g *Group) onCompletionLocked(c rdma.Completion) []func() {
	if c.Status == rdma.StatusBroken {
		if g.state != stateActive {
			return nil
		}
		// The completion may come from a sibling component (status table,
		// small-message ring) sharing the group id in its token; trust the
		// peer field over the token's rank bits when they look wrong.
		peerRank := int(c.Token) >> 16 & 0xffff
		if peerRank == g.rank {
			peerRank = int(c.Token) & 0xffff
		}
		if peerRank < 0 || peerRank >= len(g.members) || g.members[peerRank] != c.Peer {
			peerRank = g.rankOf(c.Peer)
			if peerRank < 0 {
				return nil
			}
		}
		return g.failLocked(g.members[peerRank], true)
	}
	if g.current == nil {
		return nil
	}
	return g.current.completionLocked(c)
}
