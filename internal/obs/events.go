package obs

import (
	"sync"
	"time"
)

// EventKind enumerates the structured events the stack records. The taxonomy
// follows the protocol's own vocabulary (§4.2's ready-for-block notices,
// block sends and arrivals, the close/failure control plane) plus the
// planner- and dispatch-level events the performance work cares about.
type EventKind uint8

// Event kinds.
const (
	// EvSendPosted / EvSendDone bracket one block send work request: Block
	// is the block number, Peer the target rank, Arg the schedule index of
	// the send (which pairs the two events under a send window's
	// out-of-order completions).
	EvSendPosted EventKind = iota + 1
	EvSendDone
	// EvRecvPosted / EvRecvDone bracket one posted receive: Block is the
	// block, Peer the source rank, Arg the schedule index (posted) or the
	// bytes received (done).
	EvRecvPosted
	EvRecvDone
	// EvCtrlSent / EvCtrlRecv record control-plane frames: Peer is the
	// remote rank, Arg the control message kind.
	EvCtrlSent
	EvCtrlRecv
	// EvCreditUpdate records readiness credit arriving at a sender: Peer is
	// the receiver's rank, Arg the batched credit count.
	EvCreditUpdate
	// EvFailureRelay records this node relaying a failure notice: Arg is
	// the suspected node id.
	EvFailureRelay
	// EvPlanCacheHit / EvPlanCacheMiss record the group-level plan lookup
	// for a block count (Arg is the block count k).
	EvPlanCacheHit
	EvPlanCacheMiss
	// EvSetupDone marks local transfer setup complete (buffers posted and
	// readiness signalled; on the root, all receivers ready).
	EvSetupDone
	// EvDelivered marks a message locally complete: Arg is the size in
	// bytes.
	EvDelivered
	// EvBatchDispatch records one same-group completion run processed under
	// a single lock acquisition: Arg is the run length.
	EvBatchDispatch
	// EvSessionWedge / EvSessionInstall / EvSessionResend record the
	// membership layer above the engine: a session wedging on a suspected
	// failure (Arg is the epoch being abandoned), installing a new epoch
	// (Arg is the epoch number), and re-sending a message that was not
	// globally stable when its epoch died (Arg is the session sequence).
	EvSessionWedge
	EvSessionInstall
	EvSessionResend
	// EvReplanFreeze / EvReplanCommit / EvReplanAbort record the adaptive
	// mid-transfer re-plan protocol on the root: the freeze barrier opening
	// (Arg is the proposed mask), the cutover committing (Block is the
	// cutover boundary B, Arg the committed mask), and an abort because too
	// few blocks remained past the barrier (Block is the boundary that was
	// rejected).
	EvReplanFreeze
	EvReplanCommit
	EvReplanAbort
	// EvContentionSample records one contention-signal sample feeding an
	// adaptive plan decision: Arg is the mask the sample quantized to.
	EvContentionSample
)

// String returns the event kind's name (used by the trace exporter).
func (k EventKind) String() string {
	switch k {
	case EvSendPosted:
		return "send_posted"
	case EvSendDone:
		return "send_done"
	case EvRecvPosted:
		return "recv_posted"
	case EvRecvDone:
		return "recv_done"
	case EvCtrlSent:
		return "ctrl_sent"
	case EvCtrlRecv:
		return "ctrl_recv"
	case EvCreditUpdate:
		return "credit_update"
	case EvFailureRelay:
		return "failure_relay"
	case EvPlanCacheHit:
		return "plan_cache_hit"
	case EvPlanCacheMiss:
		return "plan_cache_miss"
	case EvSetupDone:
		return "setup_done"
	case EvDelivered:
		return "delivered"
	case EvBatchDispatch:
		return "batch_dispatch"
	case EvSessionWedge:
		return "session_wedge"
	case EvSessionInstall:
		return "session_install"
	case EvSessionResend:
		return "session_resend"
	case EvReplanFreeze:
		return "replan_freeze"
	case EvReplanCommit:
		return "replan_commit"
	case EvReplanAbort:
		return "replan_abort"
	case EvContentionSample:
		return "contention_sample"
	default:
		return "unknown"
	}
}

// Event is one fixed-size structured record. Field meaning beyond At/Kind/
// Node is kind-specific (see the kind constants); unused fields are zero.
// Events carry no pointers, so recording one allocates nothing.
type Event struct {
	// At is the node-local timestamp: virtual time in the simulator, time
	// since process start on real transports.
	At time.Duration `json:"at"`
	// Kind is the event type.
	Kind EventKind `json:"kind"`
	// Node is the recording node.
	Node int32 `json:"node"`
	// Group is the multicast group, when the event concerns one.
	Group uint32 `json:"group"`
	// Seq is the message sequence number within the group.
	Seq int32 `json:"seq"`
	// Block is the block number for block-level events.
	Block int32 `json:"block"`
	// Peer is the remote rank (or node) involved.
	Peer int32 `json:"peer"`
	// Arg is the kind-specific argument (schedule index, credit count,
	// byte count, control kind, batch length).
	Arg int64 `json:"arg"`
}

// Ring is a bounded ring buffer of events: once full, new events overwrite
// the oldest, so a long-running node keeps the most recent window — the part
// a timeline of "what just went wrong" needs. Recording takes one short
// mutex-protected store into preallocated memory (no allocation); a nil *Ring
// discards events, which is the disabled fast path.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever recorded; buf index is total % len(buf)
}

// NewRing builds a ring holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest when full. No-op on a nil
// receiver.
func (r *Ring) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.total%uint64(len(r.buf))] = e
	r.total++
	r.mu.Unlock()
}

// Len returns the number of events currently held (zero on nil).
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total < uint64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// Total returns the number of events ever recorded, including overwritten
// ones (zero on nil).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot copies the held events out in recording order, oldest first.
// Returns nil on a nil receiver.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	if r.total <= n {
		return append([]Event(nil), r.buf[:r.total]...)
	}
	out := make([]Event, 0, n)
	start := r.total % n
	out = append(out, r.buf[start:]...)
	out = append(out, r.buf[:start]...)
	return out
}

// Obs bundles one deployment's observability surfaces. A nil *Obs is the
// disabled state: both accessors return nil, and every instrument resolved
// through them is the nil no-op form, so instrumentation wiring is written
// once, unconditionally.
type Obs struct {
	// Metrics is the deployment's registry (shared across nodes in a
	// simulated grid; counters aggregate).
	Metrics *Registry
	// Events is the structured event ring (events carry the node id).
	Events *Ring
}

// New builds an enabled observer: a fresh registry plus an event ring of the
// given capacity (capacity ≤ 0 selects 1<<18 events, about 12 MB).
func New(ringCapacity int) *Obs {
	if ringCapacity <= 0 {
		ringCapacity = 1 << 18
	}
	return &Obs{Metrics: NewRegistry(), Events: NewRing(ringCapacity)}
}

// Registry returns the metrics registry (nil when disabled).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Ring returns the event ring (nil when disabled).
func (o *Obs) Ring() *Ring {
	if o == nil {
		return nil
	}
	return o.Events
}
