package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// traceEvent is one record in the Chrome trace event format, the JSON schema
// understood by chrome://tracing and Perfetto (ui.perfetto.dev). Timestamps
// and durations are microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// pairKey identifies a posted/done pair within one node's timeline.
type pairKey struct {
	node  int32
	group uint32
	seq   int32
	block int32
	peer  int32
}

// WriteChromeTrace renders events as a Chrome-trace-format JSON document.
// Each node becomes a trace process and each group a thread within it, so
// Perfetto lays the multicast out as per-node swim lanes. Send and receive
// posted/done pairs become duration ("X") slices — the visible shape of the
// send and receive windows — and every other event becomes a thread-scoped
// instant. Events must come from Ring.Snapshot (or any slice with coherent
// per-node timestamps).
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := make([]traceEvent, 0, len(events)+16)

	nodes := map[int32]bool{}
	sendOpen := map[pairKey]Event{}
	recvOpen := map[pairKey]Event{}

	usec := func(e Event) float64 { return float64(e.At.Nanoseconds()) / 1e3 }

	for _, e := range events {
		nodes[e.Node] = true
		pid := int64(e.Node)
		tid := int64(e.Group)
		switch e.Kind {
		case EvSendPosted:
			sendOpen[pairKey{e.Node, e.Group, e.Seq, e.Block, e.Peer}] = e
		case EvRecvPosted:
			recvOpen[pairKey{e.Node, e.Group, e.Seq, e.Block, e.Peer}] = e
		case EvSendDone, EvRecvDone:
			open := sendOpen
			name := "send"
			if e.Kind == EvRecvDone {
				open = recvOpen
				name = "recv"
			}
			k := pairKey{e.Node, e.Group, e.Seq, e.Block, e.Peer}
			start, ok := open[k]
			if !ok {
				// The matching post was overwritten in the ring (or the
				// snapshot starts mid-transfer); fall back to an instant.
				out = append(out, traceEvent{
					Name: e.Kind.String(), Cat: "data", Ph: "i", S: "t",
					TS: usec(e), PID: pid, TID: tid,
					Args: map[string]any{"seq": e.Seq, "block": e.Block, "peer": e.Peer, "arg": e.Arg},
				})
				continue
			}
			delete(open, k)
			out = append(out, traceEvent{
				Name: fmt.Sprintf("%s b%d", name, e.Block), Cat: "data", Ph: "X",
				TS: usec(start), Dur: usec(e) - usec(start), PID: pid, TID: tid,
				Args: map[string]any{"seq": e.Seq, "block": e.Block, "peer": e.Peer, "bytes": e.Arg},
			})
		default:
			out = append(out, traceEvent{
				Name: e.Kind.String(), Cat: cat(e.Kind), Ph: "i", S: "t",
				TS: usec(e), PID: pid, TID: tid,
				Args: map[string]any{"seq": e.Seq, "block": e.Block, "peer": e.Peer, "arg": e.Arg},
			})
		}
	}

	// Posts still open at snapshot time render as instants so they stay
	// visible rather than silently vanishing.
	for _, open := range []map[pairKey]Event{sendOpen, recvOpen} {
		for _, e := range open {
			out = append(out, traceEvent{
				Name: e.Kind.String(), Cat: "data", Ph: "i", S: "t",
				TS: usec(e), PID: int64(e.Node), TID: int64(e.Group),
				Args: map[string]any{"seq": e.Seq, "block": e.Block, "peer": e.Peer, "arg": e.Arg},
			})
		}
	}

	// Name the processes after the nodes so the Perfetto sidebar reads
	// "node 0", "node 1", ... instead of bare pids.
	ids := make([]int32, 0, len(nodes))
	for n := range nodes {
		ids = append(ids, n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, n := range ids {
		out = append(out, traceEvent{
			Name: "process_name", Ph: "M", PID: int64(n),
			Args: map[string]any{"name": fmt.Sprintf("node %d", n)},
		})
	}

	// Deterministic output: stable sort by timestamp keeps the document
	// diffable across runs of the virtual-time simulator.
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}

// cat buckets event kinds into trace categories, which Perfetto can filter.
func cat(k EventKind) string {
	switch k {
	case EvCtrlSent, EvCtrlRecv, EvCreditUpdate, EvFailureRelay:
		return "control"
	case EvPlanCacheHit, EvPlanCacheMiss:
		return "plan"
	case EvBatchDispatch:
		return "dispatch"
	default:
		return "transfer"
	}
}
