package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frames")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("frames") != c {
		t.Fatal("second lookup returned a different counter")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("batch", Pow2Buckets(4)) // bounds 1,2,4,8 + overflow
	for _, v := range []int64{1, 2, 2, 3, 9, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 117 {
		t.Fatalf("sum = %d, want 117", h.Sum())
	}
	snap := r.Snapshot().Histograms["batch"]
	want := []uint64{1, 2, 1, 0, 2} // ≤1, ≤2, ≤4, ≤8, overflow
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1000, 2, 4)
	want := []int64{1000, 2000, 4000, 8000}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(7)
	r.Histogram("h", []int64{10}).Observe(3)
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["a"] != 7 {
		t.Fatalf("counter a = %d, want 7", s.Counters["a"])
	}
	if s.Histograms["h"].Count != 1 {
		t.Fatalf("histogram count = %d, want 1", s.Histograms["h"].Count)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	h := r.Histogram("y", Pow2Buckets(3))
	h.Observe(5)
	if c.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments recorded something")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	r.Publish("never")
}

func TestRingWrap(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Record(Event{Seq: int32(i)})
	}
	if r.Total() != 6 {
		t.Fatalf("total = %d, want 6", r.Total())
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	snap := r.Snapshot()
	for i, e := range snap {
		if want := int32(i + 2); e.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(8)
	r.Record(Event{Seq: 1})
	r.Record(Event{Seq: 2})
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Seq != 1 || snap[1].Seq != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestNilRingAndObsSafe(t *testing.T) {
	var r *Ring
	r.Record(Event{})
	if r.Len() != 0 || r.Total() != 0 || r.Snapshot() != nil {
		t.Fatal("nil ring not inert")
	}
	var o *Obs
	if o.Registry() != nil || o.Ring() != nil {
		t.Fatal("nil Obs accessors not nil")
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(Event{Node: int32(g), Seq: int32(i)})
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 8000 {
		t.Fatalf("total = %d, want 8000", r.Total())
	}
}

func TestChromeTracePairsSends(t *testing.T) {
	events := []Event{
		{At: 10 * time.Microsecond, Kind: EvSendPosted, Node: 0, Group: 1, Seq: 0, Block: 3, Peer: 2, Arg: 0},
		{At: 15 * time.Microsecond, Kind: EvCtrlSent, Node: 0, Group: 1, Peer: 2, Arg: 4},
		{At: 40 * time.Microsecond, Kind: EvSendDone, Node: 0, Group: 1, Seq: 0, Block: 3, Peer: 2, Arg: 0},
		{At: 50 * time.Microsecond, Kind: EvRecvPosted, Node: 2, Group: 1, Seq: 0, Block: 3, Peer: 0},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var durs, instants, meta int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			durs++
			if e["dur"].(float64) != 30 {
				t.Fatalf("duration = %v µs, want 30", e["dur"])
			}
			if !strings.HasPrefix(e["name"].(string), "send b3") {
				t.Fatalf("duration name = %v", e["name"])
			}
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if durs != 1 {
		t.Fatalf("duration events = %d, want 1", durs)
	}
	// ctrl_sent + the unmatched recv post rendered as instants.
	if instants != 2 {
		t.Fatalf("instant events = %d, want 2", instants)
	}
	// Two nodes → two process_name metadata records.
	if meta != 2 {
		t.Fatalf("metadata events = %d, want 2", meta)
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EvSendPosted; k <= EvBatchDispatch; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if EventKind(0).String() != "unknown" || EventKind(200).String() != "unknown" {
		t.Fatal("out-of-range kinds should be unknown")
	}
}

// BenchmarkDisabledPath proves the acceptance criterion that disabled
// instrumentation is zero-cost: every hot-path operation on nil instruments
// must run with 0 allocs/op. The bench drives the exact shapes the engine
// uses — counter add, histogram observe, ring record through a nil *Obs.
func BenchmarkDisabledPath(b *testing.B) {
	var o *Obs
	c := o.Registry().Counter("disabled")
	h := o.Registry().Histogram("disabled", Pow2Buckets(8))
	r := o.Ring()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		c.Add(3)
		h.Observe(int64(i))
		r.Record(Event{At: time.Duration(i), Kind: EvSendPosted, Node: 1, Group: 2, Seq: 3, Block: 4, Peer: 5, Arg: 6})
	}
	if c.Load() != 0 || h.Count() != 0 || r.Total() != 0 {
		b.Fatal("disabled instruments recorded data")
	}
}

// BenchmarkEnabledPath keeps the enabled cost visible (and allocation-free
// too: recording into preallocated structures must not allocate).
func BenchmarkEnabledPath(b *testing.B) {
	o := New(1 << 10)
	c := o.Registry().Counter("enabled")
	h := o.Registry().Histogram("enabled", Pow2Buckets(8))
	r := o.Ring()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(int64(i & 255))
		r.Record(Event{At: time.Duration(i), Kind: EvSendPosted, Node: 1, Group: 2, Seq: 3, Block: 4, Peer: 5, Arg: 6})
	}
}
