// Package obs is the repository's observability layer: a lock-cheap metrics
// registry (atomic counters and fixed-bucket histograms, snapshot-able as
// JSON and publishable through expvar) plus a bounded structured event ring
// with a Chrome-trace-format exporter, so a whole multicast can be opened as
// a timeline in chrome://tracing or Perfetto.
//
// The paper's evaluation (§4.4–4.5, Table 1, Fig. 5) is entirely a story of
// where time goes — setup vs. send-busy vs. send-wait vs. copy — and the
// production systems RDMC grew into (Derecho, and the NCCL-style collective
// stacks) are debugged through exactly this combination of counters and an
// event timeline. This package provides both without ever touching the data
// plane's behaviour: instrumentation points throughout the engine, mesh, NIC
// providers, and planner hold pre-resolved *Counter / *Histogram / *Ring
// references, and every recording method is nil-safe, so a disabled deployment
// (nil observer) pays a single predictable branch and zero allocations —
// proven by BenchmarkDisabledPath — and the simulator's virtual-time results
// stay byte-identical whether or not observability is on.
package obs

import (
	"encoding/json"
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter discards every operation, which is the
// disabled-instrumentation fast path.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (zero on a nil receiver).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level — a value that goes up and down, like the
// number of resident plan-cache entries or queued bytes. The zero value is
// ready to use; a nil *Gauge discards every operation, matching Counter's
// disabled-instrumentation fast path.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the level by d (which may be negative). No-op on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Load returns the current level (zero on a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram of int64 observations (latencies in
// nanoseconds, sizes in bytes or elements). Bounds are inclusive upper bucket
// edges; one implicit overflow bucket catches everything beyond the last
// bound. A nil *Histogram discards observations.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1, last is overflow
	sum    atomic.Int64
	n      atomic.Uint64
}

// Observe records one value. No-op on a nil receiver. Lock-free: one binary
// search over the (immutable) bounds plus two atomic adds.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations (zero on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observations (zero on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Pow2Buckets returns bucket bounds 1, 2, 4, ... covering n doublings —
// the natural shape for batch sizes and element counts.
func Pow2Buckets(n int) []int64 {
	bounds := make([]int64, n)
	for i := range bounds {
		bounds[i] = 1 << i
	}
	return bounds
}

// ExpBuckets returns n bounds starting at start, each factor times the
// previous — the natural shape for latencies and byte sizes.
func ExpBuckets(start int64, factor float64, n int) []int64 {
	bounds := make([]int64, n)
	v := float64(start)
	for i := range bounds {
		bounds[i] = int64(v)
		v *= factor
	}
	return bounds
}

// Registry is a process- or deployment-wide table of named counters and
// histograms. Instruments are registered (or re-fetched) by name with
// Counter/Histogram; instrumentation sites resolve their instruments once at
// wiring time and hold the pointers, so steady-state recording never touches
// the registry lock. A nil *Registry returns nil instruments from every
// lookup, which makes wiring code unconditional: resolve through a possibly-
// nil registry, record through possibly-nil instruments.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds on
// first use (later calls ignore bounds and return the existing instrument).
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := append([]int64(nil), bounds...)
		h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the JSON form of one histogram: Counts[i] holds the
// observations ≤ Bounds[i]; the final entry is the overflow bucket.
type HistogramSnapshot struct {
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    int64    `json:"sum"`
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current values. Safe to call concurrently
// with recording (individual loads are atomic; the snapshot is not a
// consistent cut, which is fine for monitoring). Returns an empty snapshot on
// a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counts {
		s.Counters[name] = c.Load()
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Load()
		}
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: h.bounds,
			Counts: make([]uint64, len(h.counts)),
			Count:  h.n.Load(),
			Sum:    h.sum.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// MarshalJSON renders the registry snapshot, so a *Registry can be passed
// anywhere a json.Marshaler is expected.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// Publish exposes the registry under name through the expvar interface, so a
// tcpnic deployment that serves http (expvar's /debug/vars) exports its
// metrics with no further wiring. Publishing the same name twice panics
// (expvar semantics); call once per process. No-op on a nil registry.
func (r *Registry) Publish(name string) {
	if r == nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
