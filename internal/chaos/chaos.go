// Package chaos is a deterministic fault-injection harness for the session
// layer: it replays seeded failure schedules — node crashes mid-transfer,
// root crashes, transient cross-rack partitions — against a simulated
// deployment and checks the reliability contract the paper's §4.6 sketch
// promises the layer above RDMC: every surviving member of the majority
// delivers the same gap-free message sequence, recovery completes in finite
// time, and a disconnected minority never installs a view of its own.
//
// Each scenario runs twice on identically seeded grids: a fault-free
// rehearsal measures the baseline runtime, then the real run fires each
// fault at a fixed fraction of that baseline — "crash at 50% of the
// transfer" means the same virtual instant on every machine and every run.
// After recovery, the surviving root publishes epilogue messages from its
// view-change callback, so a passing run proves the session is not merely
// consistent but still live. RunBaseline replays the same schedule against
// bare engine groups to demonstrate the failure the session layer exists to
// mask: without it, survivors are left with a shortfall (or a wedged run
// that never drains).
package chaos

import (
	"fmt"
	"time"

	"rdmc/internal/core"
	"rdmc/internal/rdma"
	"rdmc/internal/scenario"
	"rdmc/internal/session"
	"rdmc/internal/simhost"
	"rdmc/internal/simnet"
)

// FaultKind selects what a Fault does.
type FaultKind int

// Fault kinds.
const (
	// FaultCrash fails one node: its links break and the surviving hosts'
	// failure detectors fire, as the bootstrap mesh would.
	FaultCrash FaultKind = iota + 1
	// FaultPartition cuts the last rack (nodes [Nodes-Size, Nodes)) off
	// from the rest of the cluster, both directions. In-flight transfers
	// across the cut break on their own (retry timeout); a quiescent
	// link does not, so — as the bootstrap mesh's heartbeats would —
	// each side's failure detector reports the other side unreachable
	// partitionDetectFrac of the baseline runtime after the cut.
	FaultPartition
)

// Fault is one scheduled fault.
type Fault struct {
	Kind FaultKind
	// At is the firing time as a fraction of the fault-free runtime.
	At float64
	// Node is the crashed node (FaultCrash).
	Node int
	// Size is the partitioned rack size (FaultPartition).
	Size int
	// HealAfter, when positive, restores the partitioned links this
	// fraction of the baseline runtime after the cut (transient
	// partition). Healed links admit new transfers, but queue pairs that
	// broke during the cut stay broken — exactly the real-cluster
	// behavior the session layer documents.
	HealAfter float64
}

// Scenario is one reproducible chaos schedule.
type Scenario struct {
	Name string
	// Nodes is the cluster size; nodes are arranged in racks of Nodes/4
	// (minimum 1) with a non-constraining trunk.
	Nodes int
	// Messages root-originated messages of MsgBytes each, in BlockBytes
	// blocks.
	Messages   int
	MsgBytes   int
	BlockBytes int
	// Epilogue messages the surviving root sends after the first view
	// change, proving post-recovery liveness.
	Epilogue int
	// Seed fixes the virtual run.
	Seed   int64
	Faults []Fault
}

// Result reports one passing chaos run.
type Result struct {
	Scenario string
	Nodes    int
	// BaselineSeconds is the fault-free runtime the schedule was scaled
	// to.
	BaselineSeconds float64
	// RecoverySeconds is the longest wedge-to-install latency among the
	// majority survivors.
	RecoverySeconds float64
	// Resent / ResentBytes count the messages the surviving root re-sent
	// to close the gap.
	Resent      uint64
	ResentBytes uint64
	// Epochs is the majority's final epoch.
	Epochs uint64
	// Delivered is the common sequence length every majority survivor
	// holds.
	Delivered int
	// Drained reports the run finished before the watchdog deadline.
	Drained bool
}

const (
	defaultBlock = 4096
	epilogueTag  = 0xE0

	// partitionDetectFrac is the heartbeat-timeout lag, as a fraction of
	// the baseline runtime, between a partition cut and the moment each
	// side's detector declares the other side dead.
	partitionDetectFrac = 0.1
)

// CrashRelay crashes a mid-tree relay at 50% of the transfer. The canned
// schedules are declarative scenario configs compiled through FromConfig —
// the scenario engine owns the fault vocabulary; this package executes it.
func CrashRelay(n int, seed int64) Scenario {
	return mustFromConfig(scenario.FailoverCrashRelay(n, seed))
}

// CrashRoot crashes the sender at 50% of the transfer.
func CrashRoot(n int, seed int64) Scenario {
	return mustFromConfig(scenario.FailoverCrashRoot(n, seed))
}

// Partition cuts the last rack (a quarter of the cluster) off at 50% of
// the transfer and heals the links one baseline-runtime later. The healed
// links admit fresh connections, but the wedged minority stays parked on
// its epoch-1 prefix — the documented no-rejoin limitation.
func Partition(n int, seed int64) Scenario {
	return mustFromConfig(scenario.FailoverPartition(n, seed))
}

// Scenarios returns the standard suite for one cluster size.
func Scenarios(n int, seed int64) []Scenario {
	suite := scenario.FailoverSuite(n, seed)
	out := make([]Scenario, len(suite))
	for i, cfg := range suite {
		out[i] = mustFromConfig(cfg)
	}
	return out
}

func rackSize(n int) int {
	if n < 4 {
		return 1
	}
	return n / 4
}

func (sc Scenario) clusterConfig() simnet.ClusterConfig {
	rs := rackSize(sc.Nodes)
	return simnet.ClusterConfig{
		Nodes:          sc.Nodes,
		LinkBandwidth:  1e9,
		Latency:        1e-6,
		RetryTimeout:   1e-4,
		RackSize:       rs,
		TrunkBandwidth: float64(rs) * 1e9,
		CPU:            simnet.CPUConfig{Mode: simnet.ModePolling},
	}
}

func (sc Scenario) newGrid() (*simhost.Grid, error) {
	return simhost.New(simhost.Config{Cluster: sc.clusterConfig(), Seed: sc.Seed})
}

// schedule arms the scenario's faults on a grid, scaled to the baseline
// runtime.
func (sc Scenario) schedule(g *simhost.Grid, baseline float64) {
	for _, f := range sc.Faults {
		f := f
		at := f.At * baseline
		switch f.Kind {
		case FaultCrash:
			g.Sim().At(at, func() { g.FailNode(f.Node) })
		case FaultPartition:
			g.Sim().At(at, func() { partition(g.Cluster(), f.Size, sc.Nodes, true) })
			g.Sim().At(at+partitionDetectFrac*baseline, func() {
				for a := 0; a < sc.Nodes-f.Size; a++ {
					for b := sc.Nodes - f.Size; b < sc.Nodes; b++ {
						g.Engine(a).NotifyFailure(rdma.NodeID(b))
						g.Engine(b).NotifyFailure(rdma.NodeID(a))
					}
				}
			})
			if f.HealAfter > 0 {
				g.Sim().At(at+f.HealAfter*baseline, func() { partition(g.Cluster(), f.Size, sc.Nodes, false) })
			}
		}
	}
}

func partition(c *simnet.Cluster, size, n int, cut bool) {
	for a := n - size; a < n; a++ {
		for b := 0; b < n-size; b++ {
			if cut {
				c.BreakLink(simnet.NodeID(a), simnet.NodeID(b))
				c.BreakLink(simnet.NodeID(b), simnet.NodeID(a))
			} else {
				c.RestoreLink(simnet.NodeID(a), simnet.NodeID(b))
				c.RestoreLink(simnet.NodeID(b), simnet.NodeID(a))
			}
		}
	}
}

// lost returns the nodes the majority is expected to exclude.
func (sc Scenario) lost() map[int]bool {
	out := make(map[int]bool)
	for _, f := range sc.Faults {
		switch f.Kind {
		case FaultCrash:
			out[f.Node] = true
		case FaultPartition:
			for i := sc.Nodes - f.Size; i < sc.Nodes; i++ {
				out[i] = true
			}
		}
	}
	return out
}

// chaosNode records one member's observed history.
type chaosNode struct {
	mgr     *session.Manager
	seqs    []uint64
	payload map[uint64]byte
}

func msg(size int, tag byte) []byte {
	b := make([]byte, size)
	b[0] = tag
	return b
}

// workload arms the root's sends: message i fires at virtual time
// i*spacing (zero spacing submits everything up front). Pacing matters for
// partitions: the cut rack only reveals itself when fresh traffic crosses
// the cut, so the root must still be originating when the fault fires.
// Errors are collected when errs is non-nil; fault runs pass nil, because a
// send scheduled after the root's own crash legitimately fails.
func (sc Scenario) workload(g *simhost.Grid, root *session.Manager, spacing float64, errs *[]error) {
	for i := 0; i < sc.Messages; i++ {
		i := i
		g.Sim().At(float64(i)*spacing, func() {
			if err := root.Send(msg(sc.MsgBytes, byte(i))); err != nil && errs != nil {
				*errs = append(*errs, fmt.Errorf("send %d: %w", i, err))
			}
		})
	}
}

// measure runs the workload fault-free at the given pacing and returns the
// finish time, verifying every member delivered everything.
func (sc Scenario) measure(spacing float64) (float64, error) {
	g, err := sc.newGrid()
	if err != nil {
		return 0, err
	}
	nodes, err := sc.sessions(g, nil)
	if err != nil {
		return 0, err
	}
	var errs []error
	sc.workload(g, nodes[0].mgr, spacing, &errs)
	end := g.Run()
	if len(errs) > 0 {
		return 0, fmt.Errorf("rehearsal: %v", errs[0])
	}
	for i, nd := range nodes {
		if len(nd.seqs) != sc.Messages {
			return 0, fmt.Errorf("rehearsal: node %d delivered %d of %d", i, len(nd.seqs), sc.Messages)
		}
	}
	return end, nil
}

// calibrate measures the scenario's fault-free timing twice: an up-front
// burst fixes the per-message spacing, then a paced rehearsal measures the
// baseline runtime every fault fraction is scaled against.
func (sc Scenario) calibrate() (spacing, baseline float64, err error) {
	burst, err := sc.measure(0)
	if err != nil {
		return 0, 0, err
	}
	spacing = burst / float64(sc.Messages)
	baseline, err = sc.measure(spacing)
	if err != nil {
		return 0, 0, err
	}
	return spacing, baseline, nil
}

// sessions builds one session per node. epilogue, when non-nil, is armed on
// every node's view-change callback (only the surviving root fires it).
func (sc Scenario) sessions(g *simhost.Grid, epilogueSent *bool) ([]*chaosNode, error) {
	members := make([]rdma.NodeID, sc.Nodes)
	for i := range members {
		members[i] = rdma.NodeID(i)
	}
	nodes := make([]*chaosNode, sc.Nodes)
	for i := range nodes {
		nd := &chaosNode{payload: make(map[uint64]byte)}
		cbs := session.Callbacks{
			Deliver: func(seq uint64, data []byte, size int) {
				nd.seqs = append(nd.seqs, seq)
				nd.payload[seq] = data[0]
			},
		}
		if epilogueSent != nil {
			cbs.OnEpoch = func(epoch uint64, mem []rdma.NodeID) {
				if epoch > 1 && nd.mgr.IsRoot() && !*epilogueSent {
					*epilogueSent = true
					for j := 0; j < sc.Epilogue; j++ {
						_ = nd.mgr.Send(msg(sc.MsgBytes, epilogueTag+byte(j)))
					}
				}
			}
		}
		mgr, err := session.New(g.Engine(i), g.Network().Provider(rdma.NodeID(i)), session.Config{
			ID:        1000,
			Members:   members,
			BlockSize: sc.BlockBytes,
		}, cbs)
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
		nd.mgr = mgr
		nodes[i] = nd
	}
	return nodes, nil
}

// Run executes the scenario and verifies the reliability contract. A nil
// error means every invariant held.
func Run(sc Scenario) (Result, error) {
	spacing, baseline, err := sc.calibrate()
	if err != nil {
		return Result{}, fmt.Errorf("chaos %s/n=%d: %w", sc.Name, sc.Nodes, err)
	}
	g, err := sc.newGrid()
	if err != nil {
		return Result{}, err
	}
	var epilogueSent bool
	nodes, err := sc.sessions(g, &epilogueSent)
	if err != nil {
		return Result{}, err
	}
	sc.workload(g, nodes[0].mgr, spacing, nil)
	sc.schedule(g, baseline)
	drained := g.RunUntil(20*baseline + 0.05)

	res := Result{
		Scenario:        sc.Name,
		Nodes:           sc.Nodes,
		BaselineSeconds: baseline,
		Drained:         drained,
	}
	lost := sc.lost()
	rootLost := lost[0]
	var majority []int
	for i := 0; i < sc.Nodes; i++ {
		if !lost[i] {
			majority = append(majority, i)
		}
	}

	verify := func() error {
		if !drained {
			return fmt.Errorf("run did not drain before the watchdog deadline")
		}
		ref := nodes[majority[0]]
		for _, i := range majority {
			nd := nodes[i]
			for j, s := range nd.seqs {
				if s != uint64(j) {
					return fmt.Errorf("survivor %d: delivery %d has sequence %d (gap or duplicate)", i, j, s)
				}
			}
			if len(nd.seqs) != len(ref.seqs) {
				return fmt.Errorf("survivors %d and %d delivered %d vs %d messages",
					i, majority[0], len(nd.seqs), len(ref.seqs))
			}
			for seq, p := range nd.payload {
				if rp := ref.payload[seq]; rp != p {
					return fmt.Errorf("survivors %d and %d disagree on sequence %d: %#x vs %#x",
						i, majority[0], seq, p, rp)
				}
			}
			if e := nd.mgr.Epoch(); e < 2 {
				return fmt.Errorf("survivor %d never installed a recovery epoch (epoch %d)", i, e)
			}
		}
		// Split the common delivery stream into the original body and the
		// epilogue. The epilogue is sent at view install, while paced
		// original sends may still be arriving, so it can land anywhere
		// after recovery — what matters is that all of it arrives, in
		// order, proving the session is still live.
		var bodySeq, epiSeq []byte
		for _, s := range ref.seqs {
			if p := ref.payload[s]; p >= epilogueTag && p < epilogueTag+byte(sc.Epilogue) {
				epiSeq = append(epiSeq, p)
			} else {
				bodySeq = append(bodySeq, p)
			}
		}
		if len(epiSeq) != sc.Epilogue {
			return fmt.Errorf("survivors delivered %d of %d epilogue messages — session not live after recovery",
				len(epiSeq), sc.Epilogue)
		}
		for j, p := range epiSeq {
			if p != epilogueTag+byte(j) {
				return fmt.Errorf("epilogue delivered out of order: position %d carries %#x", j, p)
			}
		}
		body := len(bodySeq)
		if !rootLost && body != sc.Messages {
			return fmt.Errorf("survivors delivered %d of %d original messages with the root alive", body, sc.Messages)
		}
		if body > sc.Messages {
			return fmt.Errorf("survivors delivered %d original messages, more than were sent", body)
		}
		for s, p := range bodySeq {
			if p != byte(s) {
				return fmt.Errorf("original delivery %d carries payload %#x, want %#x", s, p, byte(s))
			}
		}
		// The excluded side never leaves epoch 1, so everything it
		// delivered must be a gap-free prefix of the ORIGINAL send order
		// — not of the majority's post-recovery sequence, which may have
		// truncated the body and appended the epilogue at the same
		// sequence numbers a dead old root already used.
		for i := range nodes {
			if !lost[i] {
				continue
			}
			nd := nodes[i]
			if len(nd.seqs) > sc.Messages {
				return fmt.Errorf("excluded node %d delivered %d messages, more than were sent in its epoch", i, len(nd.seqs))
			}
			for j, s := range nd.seqs {
				if s != uint64(j) {
					return fmt.Errorf("excluded node %d: delivery %d has sequence %d", i, j, s)
				}
				if nd.payload[s] != byte(s) {
					return fmt.Errorf("excluded node %d: sequence %d carries payload %#x, want %#x", i, s, nd.payload[s], byte(s))
				}
			}
			if st, _ := nd.mgr.State(); st == session.StateActive && nd.mgr.Epoch() > 1 {
				return fmt.Errorf("excluded node %d installed epoch %d", i, nd.mgr.Epoch())
			}
		}
		return nil
	}
	if err := verify(); err != nil {
		return res, fmt.Errorf("chaos %s/n=%d: %w", sc.Name, sc.Nodes, err)
	}

	var maxRecovery time.Duration
	for _, i := range majority {
		st := nodes[i].mgr.Stats()
		res.Resent += st.Resent
		res.ResentBytes += st.ResentBytes
		if st.LastRecovery > maxRecovery {
			maxRecovery = st.LastRecovery
		}
		if e := nodes[i].mgr.Epoch(); e > res.Epochs {
			res.Epochs = e
		}
	}
	res.RecoverySeconds = maxRecovery.Seconds()
	res.Delivered = len(nodes[majority[0]].seqs)
	return res, nil
}

// BaselineResult reports a session-less replay of the same schedule.
type BaselineResult struct {
	// Sent is the number of messages the root submitted.
	Sent int
	// MinDelivered is the smallest delivery count among the would-be
	// majority survivors.
	MinDelivered int
	// Drained reports whether the run finished before the deadline.
	Drained bool
}

// Failed reports whether the bare engine left survivors short — the outcome
// the session layer exists to prevent.
func (b BaselineResult) Failed() bool {
	return !b.Drained || b.MinDelivered < b.Sent
}

// RunBaseline replays the scenario against bare engine groups — no session
// layer — to demonstrate the failure mode: the fault wedges the group and
// survivors never see the remaining messages.
func RunBaseline(sc Scenario) (BaselineResult, error) {
	// run builds a fresh grid of bare groups and replays the paced
	// workload; with faults armed, sends after the fault may legitimately
	// fail and their errors are dropped.
	run := func(spacing, baseline float64, faults bool) (delivered []int, end float64, drained bool, err error) {
		g, err := sc.newGrid()
		if err != nil {
			return nil, 0, false, err
		}
		members := make([]rdma.NodeID, sc.Nodes)
		for i := range members {
			members[i] = rdma.NodeID(i)
		}
		delivered = make([]int, sc.Nodes)
		groups := make([]*core.Group, sc.Nodes)
		for i := 0; i < sc.Nodes; i++ {
			i := i
			grp, err := g.Engine(i).CreateGroup(1, members, core.GroupConfig{
				BlockSize: sc.BlockBytes,
				Callbacks: core.Callbacks{
					Incoming:   func(size int) []byte { return make([]byte, size) },
					Completion: func(int, []byte, int) { delivered[i]++ },
				},
			})
			if err != nil {
				return nil, 0, false, err
			}
			groups[i] = grp
		}
		var errs []error
		for m := 0; m < sc.Messages; m++ {
			m := m
			g.Sim().At(float64(m)*spacing, func() {
				if err := groups[0].Send(msg(sc.MsgBytes, byte(m))); err != nil && !faults {
					errs = append(errs, fmt.Errorf("send %d: %w", m, err))
				}
			})
		}
		if faults {
			sc.schedule(g, baseline)
			drained = g.RunUntil(20*baseline + 0.05)
			return delivered, 0, drained, nil
		}
		end = g.Run()
		if len(errs) > 0 {
			return nil, 0, false, errs[0]
		}
		return delivered, end, true, nil
	}

	checkFull := func(counts []int) error {
		for i, d := range counts {
			if d != sc.Messages {
				return fmt.Errorf("baseline rehearsal: node %d delivered %d of %d", i, d, sc.Messages)
			}
		}
		return nil
	}
	counts, burst, _, err := run(0, 0, false)
	if err != nil {
		return BaselineResult{}, err
	}
	if err := checkFull(counts); err != nil {
		return BaselineResult{}, err
	}
	spacing := burst / float64(sc.Messages)
	counts, baseline, _, err := run(spacing, 0, false)
	if err != nil {
		return BaselineResult{}, err
	}
	if err := checkFull(counts); err != nil {
		return BaselineResult{}, err
	}
	counts, _, drained, err := run(spacing, baseline, true)
	if err != nil {
		return BaselineResult{}, err
	}
	res := BaselineResult{Sent: sc.Messages, MinDelivered: sc.Messages, Drained: drained}
	lost := sc.lost()
	for i, d := range counts {
		if lost[i] {
			continue
		}
		if d < res.MinDelivered {
			res.MinDelivered = d
		}
	}
	return res, nil
}
