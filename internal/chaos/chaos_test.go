package chaos

import (
	"fmt"
	"testing"
)

// TestChaosScenarios runs the full suite — crash-of-relay, crash-of-root,
// and transient cross-rack partition — at n ∈ {4, 8, 16}, and for each
// schedule also replays it against bare, session-less engine groups to
// prove the fault actually bites there: the baseline must hang or leave
// survivors short, while the session layer must deliver identical gap-free
// sequences with finite recovery latency.
func TestChaosScenarios(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		for _, sc := range Scenarios(n, 1) {
			sc := sc
			t.Run(fmt.Sprintf("%s/n=%d", sc.Name, n), func(t *testing.T) {
				res, err := Run(sc)
				if err != nil {
					t.Fatalf("session run violated the contract: %v", err)
				}
				if !res.Drained {
					t.Fatal("session run did not drain")
				}
				if res.RecoverySeconds <= 0 {
					t.Errorf("recovery latency %v, want > 0", res.RecoverySeconds)
				}
				if res.Epochs < 2 {
					t.Errorf("majority epoch %d, want >= 2", res.Epochs)
				}
				if res.Delivered < sc.Epilogue {
					t.Errorf("majority delivered %d messages, want >= %d", res.Delivered, sc.Epilogue)
				}

				base, err := RunBaseline(sc)
				if err != nil {
					t.Fatalf("baseline replay: %v", err)
				}
				if !base.Failed() {
					t.Errorf("session-less baseline survived the fault (delivered %d/%d, drained %v) — scenario does not bite",
						base.MinDelivered, base.Sent, base.Drained)
				}
			})
		}
	}
}

// TestChaosResendAccounting pins that a mid-transfer relay crash forces the
// surviving root to actually re-send: the bytes re-sent must match the
// resend count and the recovery histogram input must be finite.
func TestChaosResendAccounting(t *testing.T) {
	sc := CrashRelay(8, 7)
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResentBytes != res.Resent*uint64(sc.MsgBytes) {
		t.Errorf("resent bytes %d inconsistent with %d resends of %d bytes",
			res.ResentBytes, res.Resent, sc.MsgBytes)
	}
	if res.BaselineSeconds <= 0 || res.RecoverySeconds > res.BaselineSeconds*20 {
		t.Errorf("recovery %.6fs implausible against baseline %.6fs", res.RecoverySeconds, res.BaselineSeconds)
	}
}

// TestChaosSeedsAreDeterministic runs the same scenario twice and expects
// bit-identical results — the whole point of the virtual-time harness.
func TestChaosSeedsAreDeterministic(t *testing.T) {
	sc := CrashRoot(4, 3)
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged:\n  %+v\n  %+v", a, b)
	}
}
