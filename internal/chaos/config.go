package chaos

import (
	"fmt"

	"rdmc/internal/scenario"
)

// FromConfig compiles a declarative scenario config into a runnable chaos
// Scenario. The chaos harness drives a single all-node session with a
// calibrated paced workload, so the config must describe exactly that
// shape: fixed-size writes, a full-roster group, paced arrivals, and at
// least one fault. The scenario's pacing interval is ignored — the harness
// calibrates spacing from a fault-free rehearsal so fault fractions land
// at the same virtual instant on every run.
func FromConfig(cfg scenario.Config) (Scenario, error) {
	if err := cfg.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("chaos: %w", err)
	}
	if len(cfg.Faults) == 0 {
		return Scenario{}, fmt.Errorf("chaos: scenario %s has no fault schedule", cfg.Name)
	}
	if cfg.Sizes.Kind != scenario.SizeFixed {
		return Scenario{}, fmt.Errorf("chaos: scenario %s: session workload needs fixed sizes, got %s", cfg.Name, cfg.Sizes.Kind)
	}
	if cfg.Arrival.Kind != scenario.ArrivalPaced {
		return Scenario{}, fmt.Errorf("chaos: scenario %s: session workload needs paced arrivals, got %s", cfg.Name, cfg.Arrival.Kind)
	}
	if cfg.Groups.Kind != scenario.GroupRoster || len(cfg.Groups.Members) != cfg.Nodes {
		return Scenario{}, fmt.Errorf("chaos: scenario %s: session spans the full roster of %d nodes", cfg.Name, cfg.Nodes)
	}
	for i, m := range cfg.Groups.Members {
		if m != i {
			return Scenario{}, fmt.Errorf("chaos: scenario %s: session roster must be [0..%d), got %v", cfg.Name, cfg.Nodes, cfg.Groups.Members)
		}
	}
	block := cfg.Replay.BlockBytes
	if block == 0 {
		block = defaultBlock
	}
	faults := make([]Fault, len(cfg.Faults))
	for i, f := range cfg.Faults {
		switch f.Kind {
		case scenario.FaultCrash:
			faults[i] = Fault{Kind: FaultCrash, At: f.AtFraction, Node: f.Node}
		case scenario.FaultPartition:
			faults[i] = Fault{
				Kind: FaultPartition, At: f.AtFraction,
				Size: f.RackSize, HealAfter: f.HealAfterFraction,
			}
		default:
			return Scenario{}, fmt.Errorf("chaos: scenario %s: unknown fault kind %q", cfg.Name, f.Kind)
		}
	}
	return Scenario{
		Name:       cfg.Name,
		Nodes:      cfg.Nodes,
		Messages:   cfg.Writes,
		MsgBytes:   cfg.Sizes.Bytes,
		BlockBytes: block,
		Epilogue:   cfg.Epilogue,
		Seed:       cfg.Seed,
		Faults:     faults,
	}, nil
}

// mustFromConfig compiles a library-built config; the canned constructors
// are valid by construction.
func mustFromConfig(cfg scenario.Config) Scenario {
	sc, err := FromConfig(cfg)
	if err != nil {
		panic(err)
	}
	return sc
}
