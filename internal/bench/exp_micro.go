package bench

import (
	"fmt"

	"rdmc/internal/core"
	"rdmc/internal/schedule"
	"rdmc/internal/simnet"
)

// multicastStats runs one multicast with timing capture and returns the
// per-rank transfer statistics plus the deployment for CPU inspection.
func multicastStats(cluster simnet.ClusterConfig, gen schedule.Generator, size, blockSize int) ([]*core.TransferStats, *deployment) {
	d := deploy(cluster, false)
	g := d.group(members(cluster.Nodes), core.GroupConfig{
		BlockSize:   blockSize,
		Generator:   gen,
		RecordStats: true,
	})
	g.send(size)
	run(d, g)
	stats := make([]*core.TransferStats, len(g.all))
	for i, h := range g.all {
		stats[i] = h.LastStats()
	}
	return stats, d
}

// breakdown splits a receiver's timeline into the paper's Table 1 rows.
type breakdown struct {
	localSetup float64 // prepare receipt → buffers posted
	fill       float64 // setup → first block arrival (upstream pipeline fill)
	transfers  float64 // receive span spent moving blocks
	waiting    float64 // receive span lost to gaps beyond the wire time
	copySecs   float64
	total      float64
}

func breakdownOf(st *core.TransferStats, idealBlock float64) breakdown {
	b := breakdown{
		localSetup: st.SetupTime().Seconds(),
		copySecs:   st.CopyTime.Seconds(),
		total:      st.TotalTime().Seconds(),
	}
	if len(st.Recvs) == 0 {
		return b
	}
	b.fill = (st.Recvs[0].DoneAt - st.SetupDoneAt).Seconds()
	span := (st.Recvs[len(st.Recvs)-1].DoneAt - st.Recvs[0].DoneAt).Seconds()
	for _, gap := range st.RecvGaps() {
		if excess := gap.Seconds() - idealBlock; excess > 0 {
			b.waiting += excess
		}
	}
	b.transfers = span - b.waiting
	return b
}

// Table1Breakdown reproduces Table 1: the time in each step of a single
// 256 MB transfer with 1 MB blocks in a group of 4 on the Stampede model,
// measured at the node farthest from the root. Roughly 99% of the time must
// sit in block transfers, with protocol overhead around 1%.
func Table1Breakdown(Scale) Report {
	const (
		size  = 256 * mib
		block = mib
	)
	cluster := Stampede(4)
	stats, _ := multicastStats(cluster, schedule.New(schedule.BinomialPipeline), size, block)
	root, far := stats[0], stats[3]
	ideal := float64(block) / cluster.LinkBandwidth
	b := breakdownOf(far, ideal)

	rows := [][]string{
		{"Remote Setup", "11", us(root.SetupTime().Seconds())},
		{"Remote Block Transfers", "461", us(b.fill)},
		{"Local Setup", "4", us(b.localSetup)},
		{"Block Transfers", "60944", us(b.transfers)},
		{"Waiting", "449", us(b.waiting)},
		{"Copy Time", "215", us(b.copySecs)},
		{"Total", "62084", us(b.total)},
	}
	hwFrac := (b.transfers + b.fill) / b.total
	return Report{
		ID:    "table1",
		Title: "Time (µs) for key steps of a 256 MB transfer (group of 4, Stampede model)",
		Paper: "~99% of time in (remote) block transfers; RDMC overhead ≈1%",
		Columns: []string{
			"step", "paper µs", "measured µs",
		},
		Rows: rows,
		Notes: []string{
			fmt.Sprintf("fraction of total in block transfers: %.1f%% (paper ≈99%%)", hwFrac*100),
		},
	}
}

// Fig5StepBreakdown reproduces Figure 5: how the root and a relaying
// receiver split the transfer between hardware time, software time, and
// waiting, and how an injected OS scheduling delay surfaces as an anomalous
// wait without proportionally stretching the transfer.
func Fig5StepBreakdown(Scale) Report {
	const (
		size  = 256 * mib
		block = mib
	)
	measure := func(delay func() float64) (rootRow, relayRow []string, total float64) {
		cluster := Stampede(4)
		cluster.CPU.DelayInjector = delay
		stats, d := multicastStats(cluster, schedule.New(schedule.BinomialPipeline), size, block)
		root, relay := stats[0], stats[1]
		ideal := float64(block) / cluster.LinkBandwidth
		rb := breakdownOf(relay, ideal)
		total = 0
		for _, st := range stats {
			if t := st.TotalTime().Seconds(); t > total {
				total = t
			}
		}
		rootRow = []string{
			"root (sender)",
			ms(root.TotalTime().Seconds()),
			ms(root.SendBusy().Seconds()),
			ms(root.SendWait().Seconds()),
			us(d.grid.Cluster().CPU(0).BusySeconds()),
		}
		relayRow = []string{
			"relay (rank 1)",
			ms(relay.TotalTime().Seconds()),
			ms(rb.transfers + rb.fill),
			ms(rb.waiting),
			us(d.grid.Cluster().CPU(1).BusySeconds()),
		}
		return rootRow, relayRow, total
	}

	rootRow, relayRow, base := measure(nil)

	// Inject one 100 µs preemption-like delay per ~400 CPU tasks, the
	// paper's "OS picking an inopportune time to preempt our process".
	count := 0
	rootRow2, relayRow2, delayed := measure(func() float64 {
		count++
		if count%400 == 0 {
			return 100e-6
		}
		return 0
	})
	rootRow2[0] += " +delays"
	relayRow2[0] += " +delays"

	return Report{
		ID:    "fig5",
		Title: "Transfer vs wait time, sender and relay (256 MB, group 4)",
		Paper: "majority of time in hardware; sender bears more CPU than " +
			"receiver; a ~100 µs scheduling delay shows up as an anomalous wait",
		Columns: []string{"node", "total ms", "nic-active ms", "waiting ms", "cpu busy µs"},
		Rows:    [][]string{rootRow, relayRow, rootRow2, relayRow2},
		Notes: []string{
			fmt.Sprintf("injected scheduling delays stretch the transfer %.2f → %.2f ms (slack absorbs most of each delay)",
				base*1e3, delayed*1e3),
		},
	}
}

// Fig6BlockSize reproduces Figure 6: multicast bandwidth across block sizes
// for message sizes from 16 KB to 128 MB, groups of 4 on Fractus. Bandwidth
// first rises with block size (per-block latency amortizes) and then falls
// (too few blocks to pipeline).
func Fig6BlockSize(scale Scale) Report {
	msgs := []int{16 * kib, 1 * mib, 16 * mib, 128 * mib}
	blocks := []int{4 * kib, 16 * kib, 64 * kib, 256 * kib, mib, 4 * mib, 16 * mib}
	if scale == Full {
		msgs = []int{16 * kib, 256 * kib, 1 * mib, 8 * mib, 16 * mib, 64 * mib, 128 * mib}
	}

	r := Report{
		ID:      "fig6",
		Title:   "Bandwidth (Gb/s) vs block size, group of 4 on Fractus",
		Paper:   "bandwidth peaks at an intermediate block size; small blocks pay per-block latency, huge blocks lose pipelining",
		Columns: []string{"message"},
	}
	for _, b := range blocks {
		r.Columns = append(r.Columns, sizeLabel(b))
	}
	gen := schedule.New(schedule.BinomialPipeline)
	for _, m := range msgs {
		row := []string{sizeLabel(m)}
		var peakBW float64
		var peakBlock int
		for _, b := range blocks {
			if b > m {
				row = append(row, "-")
				continue
			}
			elapsed := multicastOnce(Fractus(4), gen, m, b)
			bw := gbps(float64(m), elapsed)
			if bw > peakBW {
				peakBW, peakBlock = bw, b
			}
			row = append(row, f1(bw))
		}
		r.Rows = append(r.Rows, row)
		r.Notes = append(r.Notes, fmt.Sprintf("%s peaks at block size %s (%.1f Gb/s)",
			sizeLabel(m), sizeLabel(peakBlock), peakBW))
	}
	return r
}

// Fig7TinyMessages reproduces Figure 7: throughput of 1-byte messages per
// second versus group size — not RDMC's target regime, but a direct view of
// per-message protocol overhead.
func Fig7TinyMessages(scale Scale) Report {
	count := 200
	if scale == Full {
		count = 1000
	}
	r := Report{
		ID:      "fig7",
		Title:   "1-byte messages per second (binomial pipeline, Fractus)",
		Paper:   "tens of thousands of messages/s, declining with group size",
		Columns: []string{"group size", "messages/s"},
	}
	for _, n := range []int{2, 4, 8, 12, 16} {
		d := deploy(Fractus(n), false)
		g := d.group(members(n), core.GroupConfig{
			BlockSize: 16 * kib,
			Generator: schedule.New(schedule.BinomialPipeline),
		})
		for i := 0; i < count; i++ {
			g.send(1)
		}
		elapsed := run(d, g)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", float64(count)/elapsed),
		})
	}
	return r
}

func sizeLabel(b int) string {
	switch {
	case b >= mib:
		return fmt.Sprintf("%dMB", b/mib)
	case b >= kib:
		return fmt.Sprintf("%dKB", b/kib)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
