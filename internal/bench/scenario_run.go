package bench

import (
	"fmt"
	"sort"

	"rdmc/internal/chaos"
	"rdmc/internal/core"
	"rdmc/internal/rdma"
	"rdmc/internal/rdma/reliab"
	"rdmc/internal/scenario"
	"rdmc/internal/schedule"
	"rdmc/internal/service"
	"rdmc/internal/simnet"
)

// preCreateLimit bounds how many groups a replay pre-creates from the
// model's full enumeration (the paper pre-creates all 455 Cosmos groups
// "off the critical path"). Beyond it, only the groups the stream actually
// uses are created.
const preCreateLimit = 4096

// resolveCluster maps a scenario's cluster-model name to the paper testbed
// models. An empty name selects Fractus.
func resolveCluster(name string, nodes int) (simnet.ClusterConfig, error) {
	switch name {
	case "", "fractus":
		return Fractus(nodes), nil
	case "sierra":
		return Sierra(nodes), nil
	case "stampede":
		return Stampede(nodes), nil
	case "apt":
		return Apt(nodes), nil
	default:
		return simnet.ClusterConfig{}, fmt.Errorf("bench: unknown cluster model %q", name)
	}
}

// algorithmByName resolves a schedule algorithm from its String() name.
func algorithmByName(name string) (schedule.Algorithm, error) {
	for _, a := range schedule.Algorithms() {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("bench: unknown algorithm %q", name)
}

// replaySpec is one resolved entry of the scenario's algorithm list. The
// rack-aware generators (hybrid, adaptive) need a per-group rack layout, so
// resolution yields a factory rather than a generator: make receives the
// group's member node ids and the cluster model and derives RackOf from the
// cluster's rack granularity (nil on flat fabrics, which the adaptive
// planner accepts and the hybrid rejects at group creation).
type replaySpec struct {
	name string
	make func(set []int, cluster simnet.ClusterConfig) schedule.Generator
}

func staticSpec(a schedule.Algorithm) replaySpec {
	return replaySpec{
		name: a.String(),
		make: func([]int, simnet.ClusterConfig) schedule.Generator { return schedule.New(a) },
	}
}

func rackedSpec(name string) replaySpec {
	return replaySpec{
		name: name,
		make: func(set []int, cluster simnet.ClusterConfig) schedule.Generator {
			var rackOf []int
			if cluster.RackSize > 0 {
				rackOf = make([]int, len(set))
				for i, m := range set {
					rackOf[i] = m / cluster.RackSize
				}
			}
			if name == "adaptive" {
				return schedule.AdaptiveGen{RackOf: rackOf}
			}
			return schedule.HybridGen{RackOf: rackOf}
		},
	}
}

// replayAlgorithms resolves the scenario's algorithm list (default:
// binomial pipeline only). Beside the static schedule names, "hybrid" and
// "adaptive" select the rack-aware generators.
func replayAlgorithms(cfg scenario.Config) ([]replaySpec, error) {
	if len(cfg.Replay.Algorithms) == 0 {
		return []replaySpec{staticSpec(schedule.BinomialPipeline)}, nil
	}
	out := make([]replaySpec, 0, len(cfg.Replay.Algorithms))
	for _, name := range cfg.Replay.Algorithms {
		switch name {
		case "hybrid", "adaptive":
			out = append(out, rackedSpec(name))
		default:
			a, err := algorithmByName(name)
			if err != nil {
				return nil, err
			}
			out = append(out, staticSpec(a))
		}
	}
	return out, nil
}

// applyFabric overlays the scenario's WAN fabric stanza (if any) on the
// resolved cluster model and translates its reliability knobs into a reliab
// config for the deployment. The RTT matrix converts from the DSL's
// milliseconds to the model's seconds, and the cluster's NIC retry timeout
// stretches to cover the slowest path so break-mode frames on a loss-free
// WAN profile are late, not broken.
func applyFabric(cluster simnet.ClusterConfig, cfg scenario.Config) (simnet.ClusterConfig, *reliab.Config) {
	f := cfg.Replay.Fabric
	if f == nil {
		return cluster, nil
	}
	seed := f.Seed
	if seed == 0 {
		seed = cfg.Seed
	}
	profile := &simnet.FabricProfile{
		Seed:        seed,
		Regions:     append([]int(nil), f.Regions...),
		LossRate:    f.LossRate,
		ReorderRate: f.ReorderRate,
	}
	maxRTT := 0.0
	if len(f.RTTMs) > 0 {
		profile.RTT = make([][]float64, len(f.RTTMs))
		for a, row := range f.RTTMs {
			profile.RTT[a] = make([]float64, len(row))
			for b, ms := range row {
				sec := ms / 1e3
				profile.RTT[a][b] = sec
				if sec > maxRTT {
					maxRTT = sec
				}
			}
		}
	}
	cluster.Fabric = profile
	if timeout := 2 * maxRTT; cluster.RetryTimeout < timeout {
		cluster.RetryTimeout = timeout
	}
	if !f.Reliab {
		return cluster, nil
	}
	rcfg := &reliab.Config{Seed: seed, FECGroup: f.FECGroup}
	if f.RTOMs > 0 {
		rcfg.RTO = f.RTOMs / 1e3
		rcfg.MaxRTO = 4 * rcfg.RTO
	}
	return cluster, rcfg
}

// streamResult is one algorithm's replay outcome over a compiled stream.
type streamResult struct {
	// latencies holds per-write seconds in completion order; byTenant
	// partitions them when the scenario mixes tenants.
	latencies []float64
	byTenant  map[string][]float64
	bytes     float64
	tenantB   map[string]float64
	// elapsed is the virtual time when the simulation drained; lastDone is
	// the virtual time of the final delivery.
	elapsed  float64
	lastDone float64
}

// scenarioGroup is one group a replay pre-creates: the member set and the
// tenant whose model produced it — the tenant's class paces the group when
// the replay throttles. A set both tenants can draw binds to the first
// tenant that enumerates it (deterministic: tenant declaration order).
type scenarioGroup struct {
	set    []int
	tenant string
}

// scenarioGroups lists the groups a replay pre-creates, in a stable order:
// the model enumeration when it fits under preCreateLimit (every possible
// group, as the paper's Cosmos replay does), otherwise the distinct groups
// the stream actually uses, in first-use order.
func scenarioGroups(cfg scenario.Config, stream *scenario.Stream) []scenarioGroup {
	type model struct {
		gc     scenario.GroupConfig
		tenant string
	}
	var models []model
	if len(cfg.Tenants) == 0 {
		models = append(models, model{gc: cfg.Groups})
	}
	for _, t := range cfg.Tenants {
		gc := cfg.Groups
		if t.Groups != nil {
			gc = *t.Groups
		}
		models = append(models, model{gc: gc, tenant: t.Name})
	}
	var out []scenarioGroup
	seen := make(map[string]bool)
	for _, m := range models {
		sub := scenario.EnumerateGroups(m.gc, preCreateLimit)
		if sub == nil {
			out = nil
			break
		}
		for _, g := range sub {
			key := fmt.Sprint(g)
			if !seen[key] {
				seen[key] = true
				out = append(out, scenarioGroup{set: g, tenant: m.tenant})
			}
		}
	}
	if out != nil {
		return out
	}
	// Fallback: only the groups the stream uses, each bound to the tenant
	// of its first write.
	seen = make(map[string]bool)
	for _, ev := range stream.Events {
		key := fmt.Sprint(ev.Group)
		if !seen[key] {
			seen[key] = true
			out = append(out, scenarioGroup{
				set:    append([]int(nil), ev.Group...),
				tenant: ev.Tenant,
			})
		}
	}
	return out
}

// replayStream replays a compiled scenario stream with one schedule
// algorithm on a fresh deployment: groups are pre-created (the model
// enumeration when feasible), then events are issued by the scenario's
// arrival process — closed-loop slots, paced timers, or Poisson timers —
// with per-write delivery accounting in virtual time.
func replayStream(cfg scenario.Config, stream *scenario.Stream, spec replaySpec) streamResult {
	cluster, err := resolveCluster(cfg.Replay.Cluster, cfg.Nodes)
	if err != nil {
		panic(fmt.Sprintf("bench: scenario %s: %v", cfg.Name, err))
	}
	cluster, rcfg := applyFabric(cluster, cfg)
	d := deployReliab(cluster, false, rcfg)
	for _, ct := range cfg.CrossTraffic {
		streams := ct.Streams
		if streams == 0 {
			streams = 1
		}
		chunk := float64(ct.ChunkBytes)
		if chunk == 0 {
			chunk = 8 * mib
		}
		for s := 0; s < streams; s++ {
			crossStream(d, ct.From, ct.To, chunk, ct.StartSec, ct.StopSec)
		}
	}
	blockBytes := cfg.Replay.BlockBytes
	if blockBytes == 0 {
		blockBytes = mib
	}

	type writeRec struct {
		tenant    string
		size      int
		issuedAt  float64
		remaining int
	}
	res := streamResult{byTenant: make(map[string][]float64), tenantB: make(map[string]float64)}
	var (
		roots     = make(map[string]*core.Group)
		sizesOf   = make(map[string]int) // members per group
		pendingOf = make(map[string]map[int]*writeRec)
		seqOf     = make(map[string]int)
		failures  int
		complete  int
		issue     func()
	)
	key := func(g []int) string { return fmt.Sprint(g) }

	// QoS replay: one weighted-fair send throttle per node, shared by every
	// group endpoint on that node and drained by tenant class — the service
	// layer's NIC contention model, driven from a declarative scenario.
	var throttles map[int]*service.WFQThrottle
	if cfg.Replay.ThrottleBytes > 0 && len(cfg.Tenants) > 0 {
		throttles = make(map[int]*service.WFQThrottle)
	}
	throttleFor := func(node int) *service.WFQThrottle {
		if throttles == nil {
			return nil
		}
		th := throttles[node]
		if th == nil {
			th = service.NewWFQThrottle(cfg.Replay.ThrottleBytes)
			for _, t := range cfg.Tenants {
				w := t.QoSWeight
				if w == 0 {
					w = 1
				}
				if err := th.AddClass(t.Name, w); err != nil {
					panic(fmt.Sprintf("bench: scenario %s: tenant class %s: %v", cfg.Name, t.Name, err))
				}
			}
			throttles[node] = th
		}
		return th
	}

	for _, sg := range scenarioGroups(cfg, stream) {
		set := sg.set
		tenant := sg.tenant
		gk := key(set)
		pendingOf[gk] = make(map[int]*writeRec)
		sizesOf[gk] = len(set)
		members := make([]rdma.NodeID, len(set))
		for i, m := range set {
			members[i] = rdma.NodeID(m)
		}
		id := d.nextID
		d.nextID++
		for _, m := range members {
			gc := core.GroupConfig{
				BlockSize:  blockBytes,
				Generator:  spec.make(set, cluster),
				SendWindow: cfg.Replay.SendWindow,
				RecvWindow: cfg.Replay.RecvWindow,
				Callbacks: core.Callbacks{
					Completion: func(seq int, _ []byte, _ int) {
						rec := pendingOf[gk][seq]
						if rec == nil {
							return
						}
						rec.remaining--
						if rec.remaining == 0 {
							delete(pendingOf[gk], seq)
							now := d.grid.Sim().Now()
							latency := now - rec.issuedAt
							res.latencies = append(res.latencies, latency)
							res.byTenant[rec.tenant] = append(res.byTenant[rec.tenant], latency)
							res.bytes += float64(rec.size)
							res.tenantB[rec.tenant] += float64(rec.size)
							if now > res.lastDone {
								res.lastDone = now
							}
							complete++
							if issue != nil {
								issue()
							}
						}
					},
					Failure: func(error) { failures++ },
				},
			}
			if th := throttleFor(int(m)); th != nil {
				if err := th.BindGroup(id, tenant); err != nil {
					panic(fmt.Sprintf("bench: scenario %s: bind group %v: %v", cfg.Name, set, err))
				}
				gc.Throttle = th
			}
			g, err := d.grid.Engine(int(m)).CreateGroup(id, members, gc)
			if err != nil {
				panic(fmt.Sprintf("bench: scenario %s: create group %v: %v", cfg.Name, set, err))
			}
			if g.Rank() == 0 {
				roots[gk] = g
			}
		}
	}

	send := func(ev scenario.Event) {
		gk := key(ev.Group)
		root := roots[gk]
		if root == nil {
			panic(fmt.Sprintf("bench: scenario %s: no group for %v", cfg.Name, ev.Group))
		}
		seq := seqOf[gk]
		seqOf[gk] = seq + 1
		pendingOf[gk][seq] = &writeRec{
			tenant:    ev.Tenant,
			size:      ev.Size,
			issuedAt:  d.grid.Sim().Now(),
			remaining: sizesOf[gk],
		}
		if err := root.SendSized(ev.Size); err != nil {
			panic(fmt.Sprintf("bench: scenario %s: send %d: %v", cfg.Name, ev.Seq, err))
		}
	}

	if cfg.Arrival.Kind == scenario.ArrivalClosed {
		issued := 0
		issue = func() {
			if issued >= len(stream.Events) {
				return
			}
			ev := stream.Events[issued]
			issued++
			send(ev)
		}
		slots := stream.Concurrency()
		if slots > len(stream.Events) {
			slots = len(stream.Events)
		}
		for i := 0; i < slots; i++ {
			issue()
		}
	} else {
		for _, ev := range stream.Events {
			ev := ev
			d.grid.Sim().At(ev.At, func() { send(ev) })
		}
	}

	d.grid.Run()
	if failures > 0 {
		panic(fmt.Sprintf("bench: scenario %s: %d group failures", cfg.Name, failures))
	}
	if complete != len(stream.Events) {
		panic(fmt.Sprintf("bench: scenario %s: completed %d of %d writes", cfg.Name, complete, len(stream.Events)))
	}
	res.elapsed = d.grid.Sim().Now()
	return res
}

// latencyStats renders the percentile cells the scenario and fig9 reports
// share.
func latencyStats(latencies []float64, percentiles []float64) (cells []string, mean float64) {
	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	for _, p := range percentiles {
		idx := int(p * float64(len(sorted)-1))
		cells = append(cells, ms(sorted[idx]))
	}
	var sum float64
	for _, l := range sorted {
		sum += l
	}
	mean = sum / float64(len(sorted))
	return cells, mean
}

// scaledWrites trims the stream length at quick scale when the config
// advertises a quick cap.
func scaledWrites(cfg scenario.Config, scale Scale) int {
	if scale == Quick && cfg.Replay.QuickWrites > 0 && cfg.Replay.QuickWrites < cfg.Writes {
		return cfg.Replay.QuickWrites
	}
	return cfg.Writes
}

// RunScenario replays an arbitrary scenario config and reports per-
// algorithm (and per-tenant) latency percentiles plus aggregate
// throughput. Configs with a failure schedule are delegated to the chaos
// harness and report the session layer's recovery outcome instead. This is
// what `rdmcbench -scenario <file.json>` runs: a new workload is a config
// file, not a new experiment function.
func RunScenario(cfg scenario.Config, scale Scale) Report {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	cfg.Writes = scaledWrites(cfg, scale)
	if len(cfg.Faults) > 0 {
		return runFaultScenario(cfg)
	}

	stream, err := scenario.Compile(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	algos, err := replayAlgorithms(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: scenario %s: %v", cfg.Name, err))
	}

	r := Report{
		ID:    "scenario:" + cfg.Name,
		Title: fmt.Sprintf("Scenario %s: %d writes, %s arrival, seed %d", cfg.Name, cfg.Writes, cfg.Arrival.Kind, cfg.Seed),
		Columns: []string{
			"algorithm", "tenant", "writes", "p50", "p90", "p99", "mean ms", "agg Gb/s",
		},
	}
	for _, spec := range algos {
		res := replayStream(cfg, stream, spec)
		row := func(tenant string, lats []float64, bytes float64) {
			cells, mean := latencyStats(lats, []float64{0.50, 0.90, 0.99})
			label := tenant
			if label == "" {
				label = "all"
			}
			r.Rows = append(r.Rows, append(append([]string{
				spec.name, label, fmt.Sprintf("%d", len(lats)),
			}, cells...), ms(mean), f1(gbps(bytes, res.elapsed))))
		}
		row("", res.latencies, res.bytes)
		if len(cfg.Tenants) > 0 {
			for _, t := range cfg.Tenants {
				if lats := res.byTenant[t.Name]; len(lats) > 0 {
					row(t.Name, lats, res.tenantB[t.Name])
				}
			}
		}
	}
	if digest, err := stream.SHA256(); err == nil {
		r.Notes = append(r.Notes, fmt.Sprintf("stream sha256 %s (%d events)", digest, len(stream.Events)))
	}
	return r
}

// runFaultScenario replays a fault-schedule scenario on the chaos harness
// and reports the recovery outcome with the failover experiment's columns.
func runFaultScenario(cfg scenario.Config) Report {
	r := Report{
		ID:    "scenario:" + cfg.Name,
		Title: fmt.Sprintf("Scenario %s: %d-node session under a declarative fault schedule", cfg.Name, cfg.Nodes),
		Paper: "§2: on failure the application layer re-issues the multicast; sessions bound what is re-sent",
		Columns: []string{
			"scenario", "nodes", "epoch", "recovery µs", "msgs re-sent", "bytes re-sent", "delivered", "baseline",
		},
	}
	sc, err := chaos.FromConfig(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: scenario %s: %v", cfg.Name, err))
	}
	appendFailoverRow(&r, sc)
	return r
}
