package bench

import (
	"fmt"

	"rdmc/internal/core"
	"rdmc/internal/schedule"
)

// SlackAnalysis verifies §4.5(3): the average steady-state slack of the
// binomial pipeline — how many steps earlier a relayer received the block it
// forwards — is the constant 2·(1 − (l−1)/(n−2)), approaching 2 for
// moderate n. Slack is what lets a slightly-late node catch up.
func SlackAnalysis(scale Scale) Report {
	sizes := []int{8, 16, 32, 64}
	if scale == Full {
		sizes = []int{4, 8, 16, 32, 64, 128, 256}
	}
	const k = 48
	r := Report{
		ID:      "slack",
		Title:   "Steady-state average slack of the binomial pipeline",
		Paper:   "avg_slack(j) = 2(1 − (l−1)/(n−2)) for every steady step; ≈2 for moderate n",
		Columns: []string{"nodes", "predicted", "measured min", "measured max"},
	}
	for _, n := range sizes {
		p := schedule.New(schedule.BinomialPipeline).Plan(n, k)
		lo, hi := schedule.SteadySteps(n, k)
		minS, maxS := 1e9, -1e9
		for j := lo; j <= hi; j++ {
			if s, ok := schedule.AvgSlack(p, j); ok {
				if s < minS {
					minS = s
				}
				if s > maxS {
					maxS = s
				}
			}
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", n), f2(schedule.PredictedAvgSlack(n)), f2(minS), f2(maxS),
		})
	}
	return r
}

// SlowLink verifies §4.5(2): with one link slowed from T to T′, the binomial
// pipeline retains at least lT′/(T+(l−1)T′) of its bandwidth (85.6% for
// T′ = T/2 at n = 64), because each link carries only 1/l of the steps —
// while chain send collapses to the slow link's rate, since every block
// crosses every link.
func SlowLink(scale Scale) Report {
	n := 16
	size := 64 * mib
	if scale == Full {
		n = 64
		size = 256 * mib
	}
	r := Report{
		ID:      "slowlink",
		Title:   fmt.Sprintf("One slow link (T′ = T/2) in an %d-node group", n),
		Paper:   "binomial retains ≥ lT′/(T+(l−1)T′) of full bandwidth (85.6% at n=64); chain is limited by the slowest link (≈50%)",
		Columns: []string{"algorithm", "healthy ms", "slow-link ms", "retained", "paper bound"},
	}

	for _, algo := range []schedule.Algorithm{schedule.BinomialPipeline, schedule.Chain} {
		gen := schedule.New(algo)
		healthy := multicastOnce(Fractus(n), gen, size, mib)

		d := deploy(Fractus(n), false)
		// Slow a mid-pipeline neighbour pair in both directions: ranks 2↔3
		// exchange along hypercube dimension 0 (and are chain neighbours).
		half := Fractus(n).LinkBandwidth / 2
		d.grid.Cluster().SetLinkBandwidth(2, 3, half)
		d.grid.Cluster().SetLinkBandwidth(3, 2, half)
		g := d.group(members(n), core.GroupConfig{BlockSize: mib, Generator: gen})
		g.send(size)
		slow := run(d, g)

		bound := "-"
		if algo == schedule.BinomialPipeline {
			bound = fmt.Sprintf("%.1f%%", schedule.SlowLinkBandwidthFraction(n, 1, 0.5)*100)
		} else {
			bound = "≈50%"
		}
		r.Rows = append(r.Rows, []string{
			gen.Name(), ms(healthy), ms(slow),
			fmt.Sprintf("%.1f%%", healthy/slow*100), bound,
		})
	}
	return r
}

// DelayRobustness verifies §4.5(1): a delay of ε in sending one block adds
// at most about ε to the total transfer time — the pipeline does not
// amplify isolated stalls.
func DelayRobustness(scale Scale) Report {
	const (
		n     = 16
		size  = 128 * mib
		block = mib
	)
	gen := schedule.New(schedule.BinomialPipeline)
	baseline := multicastOnce(Fractus(n), gen, size, block)

	epsilons := []float64{0.5e-3, 2e-3, 5e-3}
	r := Report{
		ID:      "delay",
		Title:   "Total-time cost of one injected ε scheduling stall (128 MB, 16 nodes)",
		Paper:   "a delay ε in sending a block delays the whole transfer by at most ≈ε",
		Columns: []string{"ε ms", "baseline ms", "delayed ms", "added ms", "added/ε"},
	}
	for _, eps := range epsilons {
		cluster := Fractus(n)
		fired := false
		count := 0
		eps := eps
		cluster.CPU.DelayInjector = func() float64 {
			count++
			// One stall on one node, roughly mid-transfer.
			if !fired && count == 400 {
				fired = true
				return eps
			}
			return 0
		}
		d := deploy(cluster, false)
		g := d.group(members(n), core.GroupConfig{BlockSize: block, Generator: gen})
		g.send(size)
		delayed := run(d, g)
		added := delayed - baseline
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.1f", eps*1e3), ms(baseline), ms(delayed), ms(added), f2(added / eps),
		})
	}
	return r
}

// HybridTopology evaluates the §4.3 hybrid the paper proposes but could not
// test, sweeping TOR oversubscription. The result refines the paper's
// intuition: rack leaders transmit twice per step (one cross-rack relay plus
// one in-rack injection), so the hybrid's effective rate is about half the
// NIC — it beats the flat overlay only once the per-node cross-rack share
// drops below roughly half the NIC rate, and loses on mildly oversubscribed
// fabrics like Apt's.
func HybridTopology(scale Scale) Report {
	n := 32
	size := 64 * mib
	if scale == Full {
		size = 256 * mib
	}
	rackOf := make([]int, n)
	for i := range rackOf {
		rackOf[i] = i / AptRackSize
	}
	flatGen := schedule.New(schedule.BinomialPipeline)
	hybridGen := schedule.HybridGen{RackOf: rackOf}

	r := Report{
		ID:    "hybrid",
		Title: fmt.Sprintf("Rack-aware hybrid vs flat binomial across TOR oversubscription (%d nodes, 40 Gb/s NICs)", n),
		Paper: "untested in the paper (§4.3); measured here: the hybrid wins only under heavy " +
			"oversubscription because leaders carry double transmit load",
		Columns: []string{"cross-rack Gb/s per node", "flat Gb/s", "hybrid Gb/s", "hybrid/flat"},
	}
	for _, perNode := range []float64{2, 4, 8, 16, 40} {
		cluster := Apt(n)
		cluster.TrunkBandwidth = perNode * float64(AptRackSize) * 1e9 / 8
		flat := multicastOnce(cluster, flatGen, size, mib)
		hyb := multicastOnce(cluster, hybridGen, size, mib)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.0f", perNode),
			f1(gbps(float64(size), flat)),
			f1(gbps(float64(size), hyb)),
			f2(flat / hyb),
		})
	}
	return r
}

// RecvWindowAblation quantifies the receive-window design choice called out
// in DESIGN.md: a window of 1 keeps the pipeline in lockstep (no receive
// contention) at the cost of a per-block control bubble; larger windows hide
// the bubble but let rounds overlap and contend.
func RecvWindowAblation(scale Scale) Report {
	const n = 16
	windows := []int{1, 2, 4, 8}
	blocks := []int{64 * kib, mib}
	size := 64 * mib
	if scale == Full {
		size = 256 * mib
	}
	r := Report{
		ID:      "window",
		Title:   fmt.Sprintf("Receive-window ablation (%d nodes, %s message)", n, sizeLabel(size)),
		Paper:   "(design ablation — no paper counterpart)",
		Columns: []string{"block size"},
	}
	for _, w := range windows {
		r.Columns = append(r.Columns, fmt.Sprintf("W=%d Gb/s", w))
	}
	for _, b := range blocks {
		row := []string{sizeLabel(b)}
		for _, w := range windows {
			d := deploy(Fractus(n), false)
			g := d.group(members(n), core.GroupConfig{
				BlockSize:  b,
				Generator:  schedule.New(schedule.BinomialPipeline),
				RecvWindow: w,
			})
			g.send(size)
			elapsed := run(d, g)
			row = append(row, f1(gbps(float64(size), elapsed)))
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}
