package bench

import (
	"rdmc/internal/simnet"
)

// Cluster models of the paper's four testbeds (§5.1). Bandwidths are the
// effective unicast rates the paper reports rather than nominal link
// signalling rates.

// Fractus models the 16-node Cornell cluster: 100 Gb/s Mellanox fabric with
// one-hop paths (full bisection bandwidth).
func Fractus(nodes int) simnet.ClusterConfig {
	return simnet.ClusterConfig{
		Nodes:         nodes,
		LinkBandwidth: 100e9 / 8,
		Latency:       1.5e-6,
		CPU:           simnet.DefaultCPUConfig(),
	}
}

// Sierra models the LLNL batch cluster: 4x QDR fabric at 40 Gb/s per NIC on
// a federated fat-tree (modelled as full bisection, which the fat-tree
// approximates).
func Sierra(nodes int) simnet.ClusterConfig {
	return simnet.ClusterConfig{
		Nodes:         nodes,
		LinkBandwidth: 40e9 / 8,
		Latency:       2.0e-6,
		CPU:           simnet.DefaultCPUConfig(),
	}
}

// Stampede models the U. Texas cluster: FDR NICs on which the paper
// "measured unicast speeds of up to 40 Gb/s".
func Stampede(nodes int) simnet.ClusterConfig {
	return simnet.ClusterConfig{
		Nodes:         nodes,
		LinkBandwidth: 40e9 / 8,
		Latency:       2.0e-6,
		CPU:           simnet.DefaultCPUConfig(),
	}
}

// AptRackSize is the rack granularity used by the Apt model.
const AptRackSize = 8

// Apt models the EmuLab cluster: FDR NICs (≈40 Gb/s effective) behind a
// "significantly oversubscribed TOR network that degrades to about 16 Gb/s
// per link when heavily loaded" — racks of AptRackSize share a trunk sized
// so that a fully loaded rack gets 16 Gb/s per node.
func Apt(nodes int) simnet.ClusterConfig {
	return simnet.ClusterConfig{
		Nodes:          nodes,
		LinkBandwidth:  40e9 / 8,
		Latency:        2.0e-6,
		CPU:            simnet.DefaultCPUConfig(),
		RackSize:       AptRackSize,
		TrunkBandwidth: AptRackSize * 16e9 / 8,
	}
}
