package bench

import (
	"fmt"

	"rdmc/internal/core"
	"rdmc/internal/schedule"
	"rdmc/internal/simnet"
)

// crossStream runs one looping bulk flow from→to on the deployment's
// cluster: chunk-sized transfers re-issue back to back from start until the
// virtual clock passes stop, modelling a foreign tenant loading part of the
// fabric. The flows ride the same fluid model as the multicast, so they
// steal trunk capacity exactly as competing traffic would.
func crossStream(d *deployment, from, to int, chunk, start, stop float64) {
	cl := d.grid.Cluster()
	var loop func(broken bool)
	issue := func() {
		cl.Transfer(simnet.NodeID(from), simnet.NodeID(to), chunk, loop)
	}
	loop = func(broken bool) {
		if broken || d.grid.Sim().Now() >= stop {
			return
		}
		issue()
	}
	d.grid.Sim().At(start, issue)
}

// AdaptiveScheduling compares the adaptive planner against every static
// schedule on a three-rack slice of the Apt model, uncontended and with
// foreign cross traffic saturating one member rack's TOR uplink. The group
// spans racks 0 (the root's, all eight nodes), 1, and 2 (four nodes each);
// rack 1's four spare NICs stream outbound to rack 3, offering 20 GB/s of
// demand against the 16 GB/s trunk — genuine saturation, not just flow
// count. Egress contention is the configuration where schedule choice
// matters most: rack 1's members still receive at full rate through the
// clean downlink, but any schedule that routes relay duties through rack 1
// (the chain's onward edge, the hybrid's leader-to-leader hop) drags every
// downstream rack to the trunk's fair share. The adaptive planner shelters
// rack 1 — its leader drops out of the leader-level pipeline and is fed
// point-to-point by the root — so no multicast edge crosses the hot uplink
// at all.
func AdaptiveScheduling(scale Scale) Report {
	const n = 32 // four Apt racks; the group spans three
	size := 64 * mib
	stop := 2.0
	if scale == Full {
		size = 256 * mib
		stop = 8.0
	}

	// Group: all of rack 0, nodes 8..11 of rack 1, nodes 16..19 of rack 2.
	// Nodes 12..15 (rack 1) and 24..29 (rack 3) stay outside the group as
	// cross-traffic endpoints.
	var group []int
	group = append(group, members(8)...)
	for i := 8; i < 12; i++ {
		group = append(group, i)
	}
	for i := 16; i < 20; i++ {
		group = append(group, i)
	}
	rackOf := make([]int, len(group))
	for i, m := range group {
		rackOf[i] = m / AptRackSize
	}

	gens := []struct {
		name string
		gen  schedule.Generator
	}{
		{"chain", schedule.New(schedule.Chain)},
		{"pipeline", schedule.New(schedule.BinomialPipeline)},
		{"hybrid", schedule.HybridGen{RackOf: rackOf}},
		{"adaptive", schedule.AdaptiveGen{RackOf: rackOf}},
	}

	// runOne issues the multicast at 1 ms of virtual time — after the
	// cross-traffic flows are on the fabric, so the root's contention
	// sample sees them — and returns the seconds from issue to the last
	// delivery.
	runOne := func(gen schedule.Generator, cluster simnet.ClusterConfig, contended bool) float64 {
		d := deploy(cluster, false)
		if contended {
			// Twenty-four streams out of rack 1's four spare NICs into
			// rack-3 sinks. The aggregate demand (20 GB/s of NIC capacity)
			// saturates the 16 GB/s trunk, and the flow count drives the
			// per-flow max-min share — and with it any multicast edge
			// crossing rack1.up — down to about 5 Gb/s.
			for i := 0; i < 24; i++ {
				crossStream(d, 12+i%4, 24+i%6, 8*mib, 0, stop)
			}
		}
		g := d.group(group, core.GroupConfig{BlockSize: mib, Generator: gen})
		const issueAt = 1e-3
		d.grid.Sim().At(issueAt, func() { g.send(size) })
		last := run(d, g)
		if g.delivered != len(group) {
			panic(fmt.Sprintf("bench: adaptive: delivered %d of %d", g.delivered, len(group)))
		}
		return last - issueAt
	}

	configs := []struct {
		name      string
		cluster   simnet.ClusterConfig
		contended bool
	}{
		{"uncontended", Apt(n), false},
		{"cross-traffic", Apt(n), true},
		{"oversub 8 Gb/s + cross", func() simnet.ClusterConfig {
			c := Apt(n)
			c.TrunkBandwidth = AptRackSize * 8e9 / 8
			return c
		}(), true},
	}

	r := Report{
		ID: "adaptive",
		Title: fmt.Sprintf("Adaptive vs static schedules under cross traffic (%d-node group on Apt, %s)",
			len(group), sizeLabel(size)),
		Paper: "(no paper counterpart — §4.3 fixes the schedule at group creation; " +
			"this measures picking and re-routing it from a live congestion signal)",
		Columns: []string{"config"},
	}
	for _, g := range gens {
		r.Columns = append(r.Columns, g.name+" Gb/s")
	}
	r.Columns = append(r.Columns, "adaptive/best-static")

	var uncontendedHybrid, uncontendedAdaptive string
	for _, cfg := range configs {
		row := []string{cfg.name}
		bestStatic := 0.0
		adaptiveRate := 0.0
		for _, g := range gens {
			elapsed := runOne(g.gen, cfg.cluster, cfg.contended)
			rate := gbps(float64(size), elapsed)
			row = append(row, f1(rate))
			if g.name == "adaptive" {
				adaptiveRate = rate
			} else if rate > bestStatic {
				bestStatic = rate
			}
		}
		row = append(row, f2(adaptiveRate/bestStatic))
		r.Rows = append(r.Rows, row)
		if cfg.name == "uncontended" {
			uncontendedHybrid = row[3]
			uncontendedAdaptive = row[4]
		}
	}
	if uncontendedAdaptive == uncontendedHybrid {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"uncontended adaptive matches static hybrid cell-for-cell (%s Gb/s): mask 0 shares the hybrid's plan cache entries", uncontendedAdaptive))
	} else {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"MISMATCH: uncontended adaptive %s Gb/s != static hybrid %s Gb/s", uncontendedAdaptive, uncontendedHybrid))
	}
	return r
}
