package bench

import (
	"fmt"

	"rdmc/internal/chaos"
	"rdmc/internal/scenario"
)

// appendFailoverRow runs one chaos scenario plus its session-less baseline
// and appends the recovery row. Shared by the failover experiment and the
// generic scenario runner's fault path.
func appendFailoverRow(r *Report, sc chaos.Scenario) {
	res, err := chaos.Run(sc)
	if err != nil {
		r.Notes = append(r.Notes, fmt.Sprintf("%s/n=%d FAILED: %v", sc.Name, sc.Nodes, err))
		return
	}
	base, err := chaos.RunBaseline(sc)
	baseCell := "error"
	switch {
	case err != nil:
		r.Notes = append(r.Notes, fmt.Sprintf("%s/n=%d baseline error: %v", sc.Name, sc.Nodes, err))
	case base.Failed():
		baseCell = fmt.Sprintf("short %d/%d", base.MinDelivered, base.Sent)
	default:
		baseCell = "survived(!)"
		r.Notes = append(r.Notes, fmt.Sprintf("%s/n=%d: session-less baseline was NOT defeated", sc.Name, sc.Nodes))
	}
	r.Rows = append(r.Rows, []string{
		sc.Name,
		fmt.Sprintf("%d", sc.Nodes),
		fmt.Sprintf("%d", res.Epochs),
		us(res.RecoverySeconds),
		fmt.Sprintf("%d", res.Resent),
		fmt.Sprintf("%d", res.ResentBytes),
		fmt.Sprintf("%d", res.Delivered),
		baseCell,
	})
}

// Failover measures the session layer's recovery path: for each cluster size
// and fault — a mid-tree relay crash, a root crash, and a transient
// cross-rack partition, each fired at 50% of the fault-free runtime — it
// reports the majority's recovery latency (wedge to new-epoch install) and
// how many bytes the surviving root re-sent to close the gap. The fault
// schedules are declarative scenario configs (scenario.FailoverSuite)
// compiled onto the chaos harness. Every run is paired with a session-less
// replay of the same schedule to confirm the fault actually defeats the
// bare engine; the paper stops at "the layer above re-issues the multicast"
// (§2), so there is no paper row to match, only the qualitative claim that
// recovery is finite and proportional to the unstable suffix.
func Failover(scale Scale) Report {
	sizes := []int{4, 8}
	if scale == Full {
		sizes = append(sizes, 16)
	}

	r := Report{
		ID:    "failover",
		Title: "Session recovery: crash and partition at 50% of a paced 10-message transfer",
		Paper: "§2: on failure the application layer re-issues the multicast; sessions bound what is re-sent",
		Columns: []string{
			"scenario", "nodes", "epoch", "recovery µs", "msgs re-sent", "bytes re-sent", "delivered", "baseline",
		},
	}
	for _, n := range sizes {
		for _, cfg := range scenario.FailoverSuite(n, 1) {
			sc, err := chaos.FromConfig(cfg)
			if err != nil {
				r.Notes = append(r.Notes, fmt.Sprintf("%s/n=%d config rejected: %v", cfg.Name, n, err))
				continue
			}
			appendFailoverRow(&r, sc)
		}
	}
	r.Notes = append(r.Notes,
		"recovery = wedge-to-install latency at the slowest majority survivor; re-sends cover exactly the not-globally-delivered suffix",
		"baseline column replays the identical fault against bare engine groups: survivors come up short without the session layer")
	return r
}
