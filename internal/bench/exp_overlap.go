package bench

import (
	"fmt"

	"rdmc/internal/core"
	"rdmc/internal/schedule"
	"rdmc/internal/simnet"
)

// Fig10aFractusOverlap reproduces Figure 10a: aggregate bandwidth of
// concurrent multicasts to overlapping groups on Fractus, varying the
// fraction of members that send (all / half / one) and the message size.
func Fig10aFractusOverlap(scale Scale) Report {
	sizes := groupSizes(scale)
	return overlapReport("fig10a", "Aggregate bandwidth (Gb/s) of overlapped groups on Fractus",
		"peak rates close to the 100 Gb/s full-bisection limit for large messages with concurrent senders; small messages far lower",
		sizes, Fractus, scale)
}

// Fig10bAptOverlap reproduces Figure 10b: the same experiment on the Apt
// model, whose oversubscribed TOR caps cross-rack bandwidth near 16 Gb/s per
// node under load — "our protocols gracefully adapt to match the available
// bandwidth".
func Fig10bAptOverlap(scale Scale) Report {
	sizes := []int{8, 16, 32}
	if scale == Full {
		sizes = []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55}
	}
	return overlapReport("fig10b", "Aggregate bandwidth (Gb/s) of overlapped groups on Apt (oversubscribed TOR)",
		"bandwidth approaches the TOR's ≈16 Gb/s per-node bisection for larger groups, not the 40 Gb/s NIC rate",
		sizes, Apt, scale)
}

func overlapReport(id, title, paper string, sizes []int, model func(int) simnet.ClusterConfig, scale Scale) Report {
	msgSizes := []struct {
		bytes int
		label string
		count int
	}{
		{100 * mib, "100MB", 2},
		{1 * mib, "1MB", 20},
		{10 * kib, "10KB", 50},
	}
	if scale == Quick {
		msgSizes[0].count, msgSizes[1].count, msgSizes[2].count = 1, 10, 30
	}
	patterns := []struct {
		label   string
		senders func(n int) int
	}{
		{"all", func(n int) int { return n }},
		{"half", func(n int) int { return (n + 1) / 2 }},
		{"one", func(int) int { return 1 }},
	}

	r := Report{
		ID:      id,
		Title:   title,
		Paper:   paper,
		Columns: []string{"group size"},
	}
	for _, m := range msgSizes {
		for _, p := range patterns {
			r.Columns = append(r.Columns, m.label+" "+p.label)
		}
	}

	for _, n := range sizes {
		row := []string{fmt.Sprintf("%d", n)}
		for _, m := range msgSizes {
			for _, p := range patterns {
				bw := overlapRun(model(n), n, p.senders(n), m.bytes, m.count)
				row = append(row, f1(bw))
			}
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

// overlapRun creates `senders` fully overlapped groups over the same n
// members — identical membership, rotated so each group has a distinct root
// — has every root send `count` messages of `size` bytes, and returns the
// paper's aggregate bandwidth: total bytes sent across all groups divided by
// the time until the last delivery.
func overlapRun(cluster simnet.ClusterConfig, n, senders, size, count int) float64 {
	d := deploy(cluster, false)
	block := mib
	if size < block {
		block = size
	}
	groups := make([]*benchGroup, senders)
	for s := 0; s < senders; s++ {
		rotated := make([]int, n)
		for i := 0; i < n; i++ {
			rotated[i] = (i + s) % n
		}
		groups[s] = d.group(rotated, core.GroupConfig{
			BlockSize: block,
			Generator: schedule.New(schedule.BinomialPipeline),
		})
	}
	for _, g := range groups {
		for i := 0; i < count; i++ {
			g.send(size)
		}
	}
	elapsed := run(d, groups...)
	total := float64(senders) * float64(count) * float64(size)
	return gbps(total, elapsed)
}
