package bench

import (
	"strings"
	"testing"

	"rdmc/internal/scenario"
	"rdmc/internal/schedule"
)

// TestShippedScenariosDeterministic double-runs every shipped scenario
// config end to end: the compiled event stream must be byte-identical and
// the quick-scale experiment rows must render byte-identical. This is the
// seed-determinism contract the golden harness depends on.
func TestShippedScenariosDeterministic(t *testing.T) {
	lib := scenario.Library()
	for _, name := range scenario.LibraryNames() {
		cfg := lib[name]
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s1, err := scenario.Compile(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := scenario.Compile(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b1, err := s1.MarshalEvents()
			if err != nil {
				t.Fatal(err)
			}
			b2, err := s2.MarshalEvents()
			if err != nil {
				t.Fatal(err)
			}
			if string(b1) != string(b2) {
				t.Fatal("double-compiled event streams differ")
			}
			r1 := RunScenario(cfg, Quick).String()
			r2 := RunScenario(cfg, Quick).String()
			if r1 != r2 {
				t.Errorf("double-run reports differ:\nfirst:\n%s\nsecond:\n%s", r1, r2)
			}
		})
	}
}

// TestRunScenarioCosmosMatchesFig9 pins the re-expression: the canned
// cosmos scenario through the generic runner reproduces Figure 9's
// latency distribution (same stream, same replayer, different report
// shape — the shared cells must agree).
func TestRunScenarioCosmosMatchesFig9(t *testing.T) {
	cfg := scenario.Cosmos()
	cfg.Writes = scaledWrites(cfg, Quick)
	stream, err := scenario.Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct := replayStream(cfg, stream, staticSpec(schedule.BinomialPipeline))

	rep := RunScenario(scenario.Cosmos(), Quick)
	var row []string
	for _, r := range rep.Rows {
		if r[0] == "binomial pipeline" && r[1] == "all" {
			row = r
		}
	}
	if row == nil {
		t.Fatalf("no binomial pipeline row in %v", rep.Rows)
	}
	cells, _ := latencyStats(direct.latencies, []float64{0.50, 0.90, 0.99})
	for i, want := range cells {
		if got := row[3+i]; got != want {
			t.Errorf("cell %d: scenario runner %s, direct replay %s", i, got, want)
		}
	}
	if got, want := row[len(row)-1], f1(gbps(direct.bytes, direct.elapsed)); got != want {
		t.Errorf("throughput: scenario runner %s, direct replay %s", got, want)
	}
}

// TestRunScenarioFaultPath routes a fault-schedule config through the
// chaos harness and checks a recovery row comes back.
func TestRunScenarioFaultPath(t *testing.T) {
	rep := RunScenario(scenario.FailoverCrashRoot(4, 2), Quick)
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %v, want one recovery row", rep.Rows)
	}
	if rep.Rows[0][0] != "crash-root" || rep.Rows[0][1] != "4" {
		t.Errorf("row = %v", rep.Rows[0])
	}
	if !strings.HasPrefix(rep.Rows[0][len(rep.Rows[0])-1], "short ") {
		t.Errorf("baseline cell = %q, want a shortfall", rep.Rows[0][len(rep.Rows[0])-1])
	}
}
