package bench

import (
	"fmt"

	"rdmc/internal/rdma"
	"rdmc/internal/rdma/simnic"
	"rdmc/internal/scenario"
	"rdmc/internal/schedule"
	"rdmc/internal/simnet"
	"rdmc/internal/smc"
)

// SmallMessages reproduces the §4.6 small-message comparison: Derecho's
// one-sided-write ring-buffer multicast versus RDMC's block protocol, across
// message sizes and group sizes. The paper: "the optimized small message
// protocol gains as much as a 5x speedup compared to RDMC provided that the
// group is small enough (up to about 16 members) and the messages are small
// enough (no more than 10KB). For larger groups or larger messages ... the
// binomial pipeline dominates."
func SmallMessages(scale Scale) Report {
	count := 120
	msgSizes := []int{128, 10 * kib, mib}
	if scale == Full {
		count = 2000
		msgSizes = []int{128, 1 * kib, 10 * kib, 100 * kib, mib}
	}
	groups := []int{2, 4, 8, 16}

	r := Report{
		ID:      "smc",
		Title:   "Small-message ring-buffer multicast vs RDMC (speedup = smc/rdmc msgs/s)",
		Paper:   "SMC up to ≈5× faster for ≤10 KB and ≤16 members; RDMC dominates beyond",
		Columns: []string{"message"},
	}
	for _, n := range groups {
		r.Columns = append(r.Columns, fmt.Sprintf("n=%d smc/s", n), fmt.Sprintf("n=%d rdmc/s", n), fmt.Sprintf("n=%d speedup", n))
	}

	var bestSmall, worstLarge float64 = 0, 1e18
	for _, size := range msgSizes {
		row := []string{sizeLabel(size)}
		for _, n := range groups {
			smcRate := smcRun(n, size, count)
			rdmcRate := rdmcSmallRun(n, size, count)
			speedup := smcRate / rdmcRate
			row = append(row, fmt.Sprintf("%.0f", smcRate), fmt.Sprintf("%.0f", rdmcRate), f2(speedup))
			if size <= 10*kib && speedup > bestSmall {
				bestSmall = speedup
			}
			if size >= mib && speedup < worstLarge {
				worstLarge = speedup
			}
		}
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("best SMC speedup in the small regime (≤10KB): %.1f× (paper: up to ≈5×)", bestSmall),
		fmt.Sprintf("at 1MB messages SMC drops to %.2f× — the binomial pipeline dominates", worstLarge),
	)
	return r
}

// smcRun measures SMC throughput: one sender, n-1 receivers, count messages
// of the given size, returning messages per second of virtual time.
func smcRun(n, size, count int) float64 {
	sim := simnet.NewSim(1)
	cluster, err := simnet.NewCluster(sim, Fractus(n))
	if err != nil {
		panic(err)
	}
	network := simnic.NewNetwork(cluster)

	ids := make([]rdma.NodeID, n)
	for i := range ids {
		ids[i] = rdma.NodeID(i)
	}
	cfg := smc.Config{SlotSize: size, Slots: 32}
	var (
		groups    []*smc.Group
		delivered = make([]int, n)
		last      float64
	)
	for i := 0; i < n; i++ {
		i := i
		provider := network.Provider(ids[i])
		var g *smc.Group
		provider.SetHandler(func(c rdma.Completion) {
			if g != nil {
				g.HandleCompletion(c)
			}
		})
		g, err = smc.New(provider, 1, ids, cfg, smc.Callbacks{
			Message: func(uint64, []byte) {
				delivered[i]++
				last = sim.Now()
			},
		})
		if err != nil {
			panic(err)
		}
		groups = append(groups, g)
	}
	payload := make([]byte, size)
	for m := 0; m < count; m++ {
		if err := groups[0].Send(payload); err != nil {
			panic(err)
		}
	}
	sim.Run()
	for i := 1; i < n; i++ {
		if delivered[i] != count {
			panic(fmt.Sprintf("bench: smc receiver %d got %d of %d", i, delivered[i], count))
		}
	}
	return float64(count) / last
}

// rdmcSmallRun measures RDMC throughput on the same workload, expressed as
// the scenario.SmallMessages config: count writes burst onto one n-member
// group, block size picked by the small/large regime.
func rdmcSmallRun(n, size, count int) float64 {
	cfg := scenario.SmallMessages(n, size, count)
	stream, err := scenario.Compile(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: smc: %v", err))
	}
	res := replayStream(cfg, stream, staticSpec(schedule.BinomialPipeline))
	return float64(count) / res.lastDone
}
