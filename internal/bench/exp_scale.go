package bench

import (
	"fmt"

	"rdmc/internal/scenario"
	"rdmc/internal/schedule"
)

// Fig8Scalability reproduces Figure 8: total time to replicate a 256 MB
// object to N nodes on the Sierra model. Sequential send scales linearly in
// the receiver count while the binomial pipeline scales sub-linearly —
// "whether making 127, 255 or 511 copies, the total time required is almost
// the same". Each sweep point is the scenario.Fig8 config replayed with
// both algorithms.
func Fig8Scalability(scale Scale) Report {
	sizes := []int{2, 8, 32, 128}
	if scale == Full {
		sizes = []int{2, 4, 8, 16, 32, 64, 128, 256, 512}
	}
	r := Report{
		ID:      "fig8",
		Title:   "Total time (ms) replicating 256 MB to N nodes (Sierra model)",
		Paper:   "sequential scales linearly with receivers; binomial pipeline is nearly flat (orders of magnitude apart at 512 nodes)",
		Columns: []string{"nodes", "sequential send", "binomial pipeline", "ratio"},
	}
	var firstBin, lastBin float64
	for i, n := range sizes {
		cfg := scenario.Fig8(n)
		stream, err := scenario.Compile(cfg)
		if err != nil {
			panic(fmt.Sprintf("bench: fig8: %v", err))
		}
		seq := replayStream(cfg, stream, staticSpec(schedule.Sequential)).lastDone
		bin := replayStream(cfg, stream, staticSpec(schedule.BinomialPipeline)).lastDone
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", n), ms(seq), ms(bin), f1(seq / bin),
		})
		if i == 0 {
			firstBin = bin
		}
		lastBin = bin
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"binomial pipeline time grows only %.2f× from %d to %d nodes — replication is almost free",
		lastBin/firstBin, sizes[0], sizes[len(sizes)-1]))
	return r
}

// Fig9Cosmos reproduces Figure 9: the latency distribution of a
// Cosmos-calibrated replication workload (3 random replicas out of 15,
// log-normal sizes) replayed with sequential send, binomial tree, and
// binomial pipeline, plus the aggregate replication throughput. The
// workload is the canned scenario.Cosmos config — seed-for-seed identical
// to the legacy trace generator — compiled once and replayed per
// algorithm.
func Fig9Cosmos(scale Scale) Report {
	cfg := scenario.Cosmos()
	cfg.Writes = scaledWrites(cfg, scale)
	stream, err := scenario.Compile(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: fig9: %v", err))
	}
	algos, err := replayAlgorithms(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: fig9: %v", err))
	}
	results := make(map[string]streamResult, len(algos))
	for _, spec := range algos {
		results[spec.name] = replayStream(cfg, stream, spec)
	}

	r := Report{
		ID:    "fig9",
		Title: fmt.Sprintf("Cosmos replication-layer replay, %d writes (latency percentiles, ms)", cfg.Writes),
		Paper: "binomial pipeline ≈2× faster than binomial tree and ≈3× faster than " +
			"sequential send; ≈93 Gb/s replicated with binomial pipeline (≈1 PB/day)",
		Columns: []string{"algorithm", "p10", "p25", "p50", "p75", "p90", "p99", "mean", "agg Gb/s"},
	}
	for _, spec := range algos {
		res := results[spec.name]
		cells, mean := latencyStats(res.latencies, []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99})
		r.Rows = append(r.Rows, append(append([]string{spec.name}, cells...),
			ms(mean), f1(gbps(res.bytes, res.elapsed))))
	}
	mean := func(a schedule.Algorithm) float64 {
		var sum float64
		for _, l := range results[a.String()].latencies {
			sum += l
		}
		return sum / float64(len(results[a.String()].latencies))
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("mean latency: binomial pipeline is %.1f× faster than binomial tree, %.1f× faster than sequential",
			mean(schedule.BinomialTree)/mean(schedule.BinomialPipeline),
			mean(schedule.Sequential)/mean(schedule.BinomialPipeline)))
	return r
}
