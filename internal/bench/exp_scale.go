package bench

import (
	"fmt"
	"sort"

	"rdmc/internal/core"
	"rdmc/internal/rdma"
	"rdmc/internal/schedule"
	"rdmc/internal/trace"
)

// Fig8Scalability reproduces Figure 8: total time to replicate a 256 MB
// object to N nodes on the Sierra model. Sequential send scales linearly in
// the receiver count while the binomial pipeline scales sub-linearly —
// "whether making 127, 255 or 511 copies, the total time required is almost
// the same".
func Fig8Scalability(scale Scale) Report {
	sizes := []int{2, 8, 32, 128}
	if scale == Full {
		sizes = []int{2, 4, 8, 16, 32, 64, 128, 256, 512}
	}
	r := Report{
		ID:      "fig8",
		Title:   "Total time (ms) replicating 256 MB to N nodes (Sierra model)",
		Paper:   "sequential scales linearly with receivers; binomial pipeline is nearly flat (orders of magnitude apart at 512 nodes)",
		Columns: []string{"nodes", "sequential send", "binomial pipeline", "ratio"},
	}
	var firstBin, lastBin float64
	for i, n := range sizes {
		seq := multicastOnce(Sierra(n), schedule.New(schedule.Sequential), 256*mib, mib)
		bin := multicastOnce(Sierra(n), schedule.New(schedule.BinomialPipeline), 256*mib, mib)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", n), ms(seq), ms(bin), f1(seq / bin),
		})
		if i == 0 {
			firstBin = bin
		}
		lastBin = bin
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"binomial pipeline time grows only %.2f× from %d to %d nodes — replication is almost free",
		lastBin/firstBin, sizes[0], sizes[len(sizes)-1]))
	return r
}

// cosmosResult is the replay outcome for one algorithm.
type cosmosResult struct {
	latencies []float64 // per-write seconds
	bytes     float64
	elapsed   float64
}

// Fig9Cosmos reproduces Figure 9: the latency distribution of a
// Cosmos-calibrated replication workload (3 random replicas out of 15,
// log-normal sizes) replayed with sequential send, binomial tree, and
// binomial pipeline, plus the aggregate replication throughput.
func Fig9Cosmos(scale Scale) Report {
	writes := 300
	if scale == Full {
		writes = 3000
	}
	algos := []schedule.Algorithm{
		schedule.Sequential, schedule.BinomialTree, schedule.BinomialPipeline,
	}
	results := make(map[schedule.Algorithm]cosmosResult, len(algos))
	for _, a := range algos {
		results[a] = replayCosmos(a, writes)
	}

	r := Report{
		ID:    "fig9",
		Title: fmt.Sprintf("Cosmos replication-layer replay, %d writes (latency percentiles, ms)", writes),
		Paper: "binomial pipeline ≈2× faster than binomial tree and ≈3× faster than " +
			"sequential send; ≈93 Gb/s replicated with binomial pipeline (≈1 PB/day)",
		Columns: []string{"algorithm", "p10", "p25", "p50", "p75", "p90", "p99", "mean", "agg Gb/s"},
	}
	for _, a := range algos {
		res := results[a]
		sort.Float64s(res.latencies)
		pct := func(p float64) string {
			idx := int(p * float64(len(res.latencies)-1))
			return ms(res.latencies[idx])
		}
		var sum float64
		for _, l := range res.latencies {
			sum += l
		}
		r.Rows = append(r.Rows, []string{
			a.String(), pct(0.10), pct(0.25), pct(0.50), pct(0.75), pct(0.90), pct(0.99),
			ms(sum / float64(len(res.latencies))),
			f1(gbps(res.bytes, res.elapsed)),
		})
	}
	mean := func(a schedule.Algorithm) float64 {
		var sum float64
		for _, l := range results[a].latencies {
			sum += l
		}
		return sum / float64(len(results[a].latencies))
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("mean latency: binomial pipeline is %.1f× faster than binomial tree, %.1f× faster than sequential",
			mean(schedule.BinomialTree)/mean(schedule.BinomialPipeline),
			mean(schedule.Sequential)/mean(schedule.BinomialPipeline)))
	return r
}

// replayCosmos replays the workload on a 16-node Fractus model: node 0
// generates objects and each write replicates to 3 of the 15 replica hosts.
// Up to 4 writes are outstanding at a time, keeping the generator NIC busy
// as the paper's continuous replay does.
func replayCosmos(algo schedule.Algorithm, writes int) cosmosResult {
	const concurrency = 4
	gen, err := trace.NewCosmos(trace.CosmosConfig{}, 42)
	if err != nil {
		panic(err)
	}
	d := deploy(Fractus(16), false)

	// Pre-create every possible replica group, as the paper does, "so that
	// this would be off the critical path".
	type writeRec struct {
		size      int
		issuedAt  float64
		remaining int
		done      func(latency float64, size int)
	}
	groups := make(map[[3]int]*core.Group)          // root handles, keyed by triple
	pendingOf := make(map[[3]int]map[int]*writeRec) // triple → seq → write
	seqOf := make(map[[3]int]int)                   // next sequence per group
	for _, triple := range gen.Groups() {
		triple := triple
		pendingOf[triple] = make(map[int]*writeRec)
		membersList := []rdma.NodeID{0, rdma.NodeID(triple[0] + 1), rdma.NodeID(triple[1] + 1), rdma.NodeID(triple[2] + 1)}
		id := d.nextID
		d.nextID++
		for _, m := range membersList {
			cfg := core.GroupConfig{
				BlockSize: mib,
				Generator: schedule.New(algo),
				Callbacks: core.Callbacks{
					Completion: func(seq int, _ []byte, _ int) {
						rec := pendingOf[triple][seq]
						if rec == nil {
							return
						}
						rec.remaining--
						if rec.remaining == 0 {
							delete(pendingOf[triple], seq)
							rec.done(d.grid.Sim().Now()-rec.issuedAt, rec.size)
						}
					},
				},
			}
			g, err := d.grid.Engine(int(m)).CreateGroup(id, membersList, cfg)
			if err != nil {
				panic(err)
			}
			if g.Rank() == 0 {
				groups[triple] = g
			}
		}
	}

	// Replay with a bounded number of outstanding writes.
	var (
		res      cosmosResult
		issued   int
		complete int
		issue    func()
	)
	issue = func() {
		if issued >= writes {
			return
		}
		w := gen.Next()
		issued++
		rec := &writeRec{
			size:      w.Size,
			issuedAt:  d.grid.Sim().Now(),
			remaining: 4, // generator + 3 replicas complete locally
			done: func(latency float64, size int) {
				complete++
				res.latencies = append(res.latencies, latency)
				res.bytes += float64(size)
				issue()
			},
		}
		seq := seqOf[w.Group]
		seqOf[w.Group] = seq + 1
		pendingOf[w.Group][seq] = rec
		if err := groups[w.Group].SendSized(w.Size); err != nil {
			panic(err)
		}
	}
	for i := 0; i < concurrency; i++ {
		issue()
	}
	d.grid.Run()
	if complete != writes {
		panic(fmt.Sprintf("bench: cosmos replay completed %d of %d writes", complete, writes))
	}
	res.elapsed = d.grid.Sim().Now()
	return res
}
