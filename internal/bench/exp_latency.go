package bench

import (
	"fmt"

	"rdmc/internal/schedule"
)

// fig4Algorithms are the algorithms Figure 4 compares, in its legend order.
func fig4Algorithms() []schedule.Algorithm {
	return []schedule.Algorithm{
		schedule.Sequential,
		schedule.BinomialTree,
		schedule.Chain,
		schedule.BinomialPipeline,
		schedule.MPIScatterAllgather,
	}
}

// Fig4aLatency256MB reproduces Figure 4a: latency of each algorithm sending
// one 256 MB message (1 MB blocks) on the Fractus model, versus group size.
func Fig4aLatency256MB(scale Scale) Report {
	return fig4(scale, "fig4a", 256*mib, "256 MB")
}

// Fig4bLatency8MB reproduces Figure 4b: the same sweep with 8 MB messages,
// where fewer blocks mean less pipelining headroom.
func Fig4bLatency8MB(scale Scale) Report {
	return fig4(scale, "fig4b", 8*mib, "8 MB")
}

func fig4(scale Scale, id string, size int, label string) Report {
	algos := fig4Algorithms()
	r := Report{
		ID:    id,
		Title: fmt.Sprintf("Latency of %s multicasts on Fractus (ms)", label),
		Paper: "sequential send and binomial tree grow with group size; chain " +
			"send tracks binomial pipeline (binomial pulls ahead for small " +
			"transfers to many nodes); MVAPICH falls in between at 1.03–3×" +
			" binomial pipeline",
		Columns: []string{"group size"},
	}
	for _, a := range algos {
		r.Columns = append(r.Columns, a.String())
	}

	var (
		worstMPIRatio float64
		binGrowth     []float64
		seqGrowth     []float64
	)
	for _, n := range groupSizes(scale) {
		row := []string{fmt.Sprintf("%d", n)}
		results := make(map[schedule.Algorithm]float64, len(algos))
		for _, a := range algos {
			elapsed := multicastOnce(Fractus(n), schedule.New(a), size, mib)
			results[a] = elapsed
			row = append(row, ms(elapsed))
		}
		r.Rows = append(r.Rows, row)
		if ratio := results[schedule.MPIScatterAllgather] / results[schedule.BinomialPipeline]; ratio > worstMPIRatio {
			worstMPIRatio = ratio
		}
		binGrowth = append(binGrowth, results[schedule.BinomialPipeline])
		seqGrowth = append(seqGrowth, results[schedule.Sequential])
	}

	first, last := 0, len(binGrowth)-1
	r.Notes = append(r.Notes,
		fmt.Sprintf("sequential grows %.1f× from smallest to largest group; binomial pipeline %.2f×",
			seqGrowth[last]/seqGrowth[first], binGrowth[last]/binGrowth[first]),
		fmt.Sprintf("worst mpi/binomial ratio across sweep: %.2f× (paper: 1.03–3×)", worstMPIRatio),
	)
	return r
}
