package bench

import (
	"fmt"

	"rdmc/internal/core"
	"rdmc/internal/schedule"
	"rdmc/internal/simnet"
)

// modeRun performs one all-send overlapped run under a completion mode and
// returns aggregate bandwidth plus mean CPU utilization across the nodes.
func modeRun(n int, mode simnet.CompletionMode, offload bool, size, count int) (bw, cpu float64) {
	cluster := Fractus(n)
	cluster.CPU.Mode = mode
	d := deploy(cluster, offload)
	block := mib
	if size < block {
		block = size
	}
	groups := make([]*benchGroup, n)
	for s := 0; s < n; s++ {
		rotated := make([]int, n)
		for i := 0; i < n; i++ {
			rotated[i] = (i + s) % n
		}
		groups[s] = d.group(rotated, core.GroupConfig{
			BlockSize: block,
			Generator: schedule.New(schedule.BinomialPipeline),
		})
	}
	for _, g := range groups {
		for i := 0; i < count; i++ {
			g.send(size)
		}
	}
	elapsed := run(d, groups...)
	total := float64(n) * float64(count) * float64(size)
	var cpuSum float64
	for i := 0; i < n; i++ {
		cpuSum += d.grid.Cluster().CPU(simnet.NodeID(i)).Utilization(elapsed)
	}
	return gbps(total, elapsed), cpuSum / float64(n) * 100
}

// Fig11CompletionModes reproduces Figure 11: RDMC's hybrid polling/interrupt
// completion scheme versus pure interrupts, across message sizes, with the
// CPU cost of each. Pure polling matches the hybrid (the paper found no
// measurable difference), so the hybrid column stands for both.
func Fig11CompletionModes(scale Scale) Report {
	sizes := []int{4, 8, 16}
	if scale == Full {
		sizes = groupSizes(Full)
	}
	msgs := []struct {
		bytes int
		label string
		count int
	}{
		{100 * mib, "100MB", 2},
		{1 * mib, "1MB", 20},
		{10 * kib, "10KB", 50},
	}

	r := Report{
		ID:    "fig11",
		Title: "Hybrid polling/interrupts vs pure interrupts (all-send overlap, Fractus)",
		Paper: "bandwidth impact of pure interrupts is minimal for large transfers; " +
			"CPU drops from ≈100% (polling) to ≈10% for 100 MB and ≈50% for 1 MB",
		Columns: []string{"group size"},
	}
	for _, m := range msgs {
		r.Columns = append(r.Columns,
			m.label+" hybrid Gb/s", m.label+" irq Gb/s", m.label+" hybrid cpu%", m.label+" irq cpu%")
	}

	var largeLoss, largeIrqCPU float64
	for _, n := range sizes {
		row := []string{fmt.Sprintf("%d", n)}
		for _, m := range msgs {
			hb, hc := modeRun(n, simnet.ModeHybrid, false, m.bytes, m.count)
			ib, ic := modeRun(n, simnet.ModeInterrupt, false, m.bytes, m.count)
			row = append(row, f1(hb), f1(ib), f1(hc), f1(ic))
			if m.bytes == 100*mib {
				if loss := (hb - ib) / hb * 100; loss > largeLoss {
					largeLoss = loss
				}
				largeIrqCPU = ic
			}
		}
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("worst 100MB bandwidth loss from pure interrupts: %.1f%% (paper: quite minimal)", largeLoss),
		fmt.Sprintf("100MB interrupt-mode CPU: %.1f%% vs 100%% with polling (paper: ≈10%%)", largeIrqCPU),
	)
	return r
}

// Fig12CoreDirect reproduces Figure 12: chain send with CORE-Direct-style
// cross-channel offload (the NIC executes the precomputed relay graph with
// no software on the critical path) versus the traditional software relay,
// under both completion modes.
func Fig12CoreDirect(scale Scale) Report {
	sizes := []int{3, 4, 5, 6, 7, 8}
	if scale == Quick {
		sizes = []int{3, 5, 8}
	}
	r := Report{
		ID:    "fig12",
		Title: "CORE-Direct chain send, 100 MB messages (all-send overlap, Gb/s)",
		Paper: "cross-channel offload generally ≈5% faster than the traditional path",
		Columns: []string{
			"group size",
			"cross-channel polling", "traditional polling",
			"cross-channel interrupts", "traditional interrupts",
		},
	}
	var sumGain float64
	for _, n := range sizes {
		ccPoll := chainRun(n, simnet.ModePolling, true)
		swPoll := chainRun(n, simnet.ModePolling, false)
		ccIrq := chainRun(n, simnet.ModeInterrupt, true)
		swIrq := chainRun(n, simnet.ModeInterrupt, false)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", n), f1(ccPoll), f1(swPoll), f1(ccIrq), f1(swIrq),
		})
		sumGain += (ccPoll/swPoll - 1) + (ccIrq/swIrq - 1)
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"mean cross-channel speedup: %.1f%% (paper: ≈5%%)", sumGain/float64(2*len(sizes))*100))
	return r
}

func chainRun(n int, mode simnet.CompletionMode, offload bool) float64 {
	cluster := Fractus(n)
	cluster.CPU.Mode = mode
	d := deploy(cluster, offload)
	groups := make([]*benchGroup, n)
	for s := 0; s < n; s++ {
		rotated := make([]int, n)
		for i := 0; i < n; i++ {
			rotated[i] = (i + s) % n
		}
		groups[s] = d.group(rotated, core.GroupConfig{
			BlockSize: mib,
			Generator: schedule.New(schedule.Chain),
		})
	}
	for _, g := range groups {
		g.send(100 * mib)
	}
	elapsed := run(d, groups...)
	return gbps(float64(n)*100*mib, elapsed)
}
