// Package bench reproduces every table and figure in the RDMC paper's
// evaluation (§5) plus the §4.5 analysis claims, on the simulated fabric.
// Each experiment is a named runner that returns a Report: the same rows or
// series the paper presents, with the paper's qualitative result recorded
// alongside so EXPERIMENTS.md can compare shape against shape.
package bench

import (
	"fmt"
	"strings"
)

// Report is one reproduced table or figure.
type Report struct {
	// ID is the experiment identifier (for example "fig4a").
	ID string
	// Title names the paper artifact.
	Title string
	// Paper summarizes what the paper's version shows, for comparison.
	Paper string
	// Columns and Rows hold the regenerated data.
	Columns []string
	Rows    [][]string
	// Notes carry derived observations (speedups, crossovers, checks).
	Notes []string
}

// String renders the report as an aligned text table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Paper)
	}

	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Scale selects how much work an experiment does.
type Scale int

// Experiment scales.
const (
	// Quick trims repetitions and sweep points for test and bench runs.
	Quick Scale = iota + 1
	// Full reproduces the paper's parameter ranges.
	Full
)

// Runner produces a report at a given scale.
type Runner func(scale Scale) Report

// Experiments returns the registry of experiment runners keyed by ID, in
// presentation order (use Order for iteration).
func Experiments() map[string]Runner {
	return map[string]Runner{
		"table1":   Table1Breakdown,
		"fig4a":    Fig4aLatency256MB,
		"fig4b":    Fig4bLatency8MB,
		"fig5":     Fig5StepBreakdown,
		"fig6":     Fig6BlockSize,
		"fig7":     Fig7TinyMessages,
		"fig8":     Fig8Scalability,
		"fig9":     Fig9Cosmos,
		"fig10a":   Fig10aFractusOverlap,
		"fig10b":   Fig10bAptOverlap,
		"fig11":    Fig11CompletionModes,
		"fig12":    Fig12CoreDirect,
		"slack":    SlackAnalysis,
		"slowlink": SlowLink,
		"delay":    DelayRobustness,
		"hybrid":   HybridTopology,
		"adaptive": AdaptiveScheduling,
		"smc":      SmallMessages,
		"window":   RecvWindowAblation,
		"failover": Failover,
		"tenants":  TenantsQoS,
		"wan":      WANLossTolerance,
	}
}

// Order lists experiment IDs in the paper's presentation order.
func Order() []string {
	return []string{
		"fig4a", "fig4b", "table1", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10a", "fig10b", "fig11", "fig12",
		"slack", "slowlink", "delay", "hybrid", "adaptive", "smc", "window",
		"failover", "tenants", "wan",
	}
}
