package bench

import (
	"fmt"
	"sync/atomic"

	"rdmc/internal/core"
	"rdmc/internal/obs"
	"rdmc/internal/rdma"
	"rdmc/internal/rdma/reliab"
	"rdmc/internal/schedule"
	"rdmc/internal/simhost"
	"rdmc/internal/simnet"
)

// observer is the package-level observability sink deployments inherit; nil
// (the default) leaves every grid uninstrumented. An atomic pointer because
// -all runs experiment runners concurrently.
var observer atomic.Pointer[obs.Obs]

// SetObserver installs (or, with nil, removes) the sink every subsequently
// built deployment wires into its engines and NICs. The sink is shared by
// all deployments: counters aggregate across experiments and each structured
// event carries its node id. Instrumentation must never perturb the virtual
// clock, so the figures' virtual-time results are identical with and without
// an observer; only the wall-time cost of recording differs.
func SetObserver(o *obs.Obs) { observer.Store(o) }

// deployment wraps a simulated grid with benchmark helpers. Experiment
// runners are internal tooling, so setup errors panic rather than propagate.
type deployment struct {
	grid   *simhost.Grid
	nextID core.GroupID
}

func deploy(cluster simnet.ClusterConfig, offload bool) *deployment {
	return deployReliab(cluster, offload, nil)
}

// deployReliab is deploy with an optional loss-tolerant reliability layer
// (internal/rdma/reliab) wrapped around every NIC; nil rcfg is a plain
// deployment. A lossy cluster.Fabric needs rcfg, or queue pairs break.
func deployReliab(cluster simnet.ClusterConfig, offload bool, rcfg *reliab.Config) *deployment {
	grid, err := simhost.New(simhost.Config{
		Cluster:  cluster,
		Seed:     1,
		Offload:  offload,
		Observer: observer.Load(),
		Reliab:   rcfg,
	})
	if err != nil {
		panic(fmt.Sprintf("bench: deploy: %v", err))
	}
	return &deployment{grid: grid, nextID: 1}
}

// benchGroup is one group instantiated on every listed member, with delivery
// accounting in virtual time.
type benchGroup struct {
	dep     *deployment
	members []int
	root    *core.Group
	all     []*core.Group

	// delivered counts local completions across all members; lastDone is
	// the virtual time of the latest one.
	delivered int
	lastDone  float64
	failures  int
}

// group creates a group over the given members (members[0] is the root) on
// every member's engine.
func (d *deployment) group(members []int, cfg core.GroupConfig) *benchGroup {
	// The paper experiments model RDMC's per-block pacing in lockstep: in
	// the fluid fabric, where control latency is microseconds, overlapping
	// windows only steal capacity from critical-path blocks (the overlap
	// and ablation reports quantify this). Pin unset windows to 1 so the
	// figures track the paper rather than the library default, which is
	// tuned for real transports with per-block control round trips.
	if cfg.SendWindow == 0 {
		cfg.SendWindow = 1
	}
	if cfg.RecvWindow == 0 {
		cfg.RecvWindow = 1
	}
	bg := &benchGroup{dep: d, members: members}
	id := d.nextID
	d.nextID++
	ids := make([]rdma.NodeID, len(members))
	for i, m := range members {
		ids[i] = rdma.NodeID(m)
	}
	for _, m := range members {
		c := cfg
		c.Callbacks = core.Callbacks{
			Completion: func(int, []byte, int) {
				bg.delivered++
				bg.lastDone = d.grid.Sim().Now()
			},
			Failure: func(error) { bg.failures++ },
		}
		g, err := d.grid.Engine(m).CreateGroup(id, ids, c)
		if err != nil {
			panic(fmt.Sprintf("bench: create group: %v", err))
		}
		bg.all = append(bg.all, g)
		if g.Rank() == 0 {
			bg.root = g
		}
	}
	return bg
}

func (g *benchGroup) send(size int) {
	if err := g.root.SendSized(size); err != nil {
		panic(fmt.Sprintf("bench: send: %v", err))
	}
}

// run drives the simulation until idle and returns the virtual end time of
// the last delivery across the given groups.
func run(d *deployment, groups ...*benchGroup) float64 {
	d.grid.Run()
	last := 0.0
	for _, g := range groups {
		if g.failures > 0 {
			panic(fmt.Sprintf("bench: group over %v failed", g.members))
		}
		if g.lastDone > last {
			last = g.lastDone
		}
	}
	return last
}

// members returns [0, 1, ..., n-1].
func members(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// multicastOnce sends one message of size bytes through a fresh deployment
// and returns the virtual seconds until every member delivered it.
func multicastOnce(cluster simnet.ClusterConfig, gen schedule.Generator, size, blockSize int) float64 {
	d := deploy(cluster, false)
	g := d.group(members(cluster.Nodes), core.GroupConfig{
		BlockSize: blockSize,
		Generator: gen,
	})
	g.send(size)
	elapsed := run(d, g)
	want := len(g.members)
	if g.delivered != want {
		panic(fmt.Sprintf("bench: delivered %d of %d", g.delivered, want))
	}
	return elapsed
}

// gbps converts bytes over seconds to gigabits per second.
func gbps(bytes float64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return bytes * 8 / seconds / 1e9
}

func ms(seconds float64) string { return fmt.Sprintf("%.2f", seconds*1e3) }

func us(seconds float64) string { return fmt.Sprintf("%.0f", seconds*1e6) }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// groupSizes returns the sweep of group sizes for a scale.
func groupSizes(scale Scale) []int {
	if scale == Full {
		return []int{3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	}
	return []int{3, 4, 8, 12, 16}
}

const (
	mib = 1 << 20
	kib = 1 << 10
)

// MulticastOnceForBench exposes a single simulated multicast on the Fractus
// model to the repository's micro-benchmarks.
func MulticastOnceForBench(nodes, size, blockSize int) float64 {
	return multicastOnce(Fractus(nodes), schedule.New(schedule.BinomialPipeline), size, blockSize)
}
