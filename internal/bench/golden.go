package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"rdmc/internal/scenario"
)

// DefaultGoldenDir is where the golden datasets live, relative to the
// repository root.
const DefaultGoldenDir = "testdata/golden"

// goldenExperiments are the scenario-backed experiments whose quick-scale
// reports the golden harness pins. All of them replay deterministic virtual-
// time workloads, so their rendered rows are byte-stable across runs,
// machines, and -race.
var goldenExperiments = []string{"fig8", "fig9", "smc", "failover", "adaptive", "wan"}

// goldenEntry is one pinned dataset: a file name under the golden
// directory and the renderer that regenerates its contents.
type goldenEntry struct {
	File string
	Run  func() string
}

// goldenEntries lists every pinned dataset: the scenario-backed
// experiments at quick scale plus every shipped library scenario run
// through the generic runner.
func goldenEntries() []goldenEntry {
	var out []goldenEntry
	registry := Experiments()
	for _, id := range goldenExperiments {
		runner := registry[id]
		out = append(out, goldenEntry{
			File: "exp_" + id + ".txt",
			Run:  func() string { return runner(Quick).String() },
		})
	}
	lib := scenario.Library()
	for _, name := range scenario.LibraryNames() {
		cfg := lib[name]
		out = append(out, goldenEntry{
			File: "scenario_" + name + ".txt",
			Run:  func() string { return RunScenario(cfg, Quick).String() },
		})
	}
	return out
}

// renderGolden regenerates every golden dataset. Entries run concurrently —
// each owns private simulations — and panics surface as rendered errors so
// one broken entry doesn't tear down the batch.
func renderGolden() map[string]string {
	entries := goldenEntries()
	out := make(map[string]string, len(entries))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, e := range entries {
		e := e
		wg.Add(1)
		go func() {
			defer wg.Done()
			var text string
			func() {
				defer func() {
					if r := recover(); r != nil {
						text = fmt.Sprintf("PANIC: %v\n", r)
					}
				}()
				text = e.Run()
			}()
			mu.Lock()
			out[e.File] = text
			mu.Unlock()
		}()
	}
	wg.Wait()
	return out
}

// GoldenRecord regenerates every golden dataset and writes it under dir.
func GoldenRecord(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("golden: %w", err)
	}
	rendered := renderGolden()
	files := make([]string, 0, len(rendered))
	for f := range rendered {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		text := rendered[f]
		if strings.HasPrefix(text, "PANIC: ") {
			return fmt.Errorf("golden: %s: %s", f, strings.TrimSpace(text))
		}
		if err := os.WriteFile(filepath.Join(dir, f), []byte(text), 0o644); err != nil {
			return fmt.Errorf("golden: %w", err)
		}
		fmt.Printf("recorded %s (%d bytes)\n", filepath.Join(dir, f), len(text))
	}
	return nil
}

// GoldenCheck regenerates every golden dataset and compares it against the
// recorded files under dir, reporting each mismatch. Any difference is an
// error: either a regression broke determinism or an intentional change
// needs `-golden record` to refresh the pins.
func GoldenCheck(dir string) error {
	rendered := renderGolden()
	files := make([]string, 0, len(rendered))
	for f := range rendered {
		files = append(files, f)
	}
	sort.Strings(files)
	var bad []string
	for _, f := range files {
		text := rendered[f]
		path := filepath.Join(dir, f)
		want, err := os.ReadFile(path)
		switch {
		case err != nil:
			bad = append(bad, fmt.Sprintf("%s: %v", path, err))
		case strings.HasPrefix(text, "PANIC: "):
			bad = append(bad, fmt.Sprintf("%s: %s", path, strings.TrimSpace(text)))
		case string(want) != text:
			bad = append(bad, fmt.Sprintf("%s: regenerated output differs (%s)", path, firstDiff(string(want), text)))
		default:
			fmt.Printf("ok %s\n", path)
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("golden: %d of %d datasets diverged:\n  %s\nrun `rdmcbench -golden record` if the change is intentional",
			len(bad), len(files), strings.Join(bad, "\n  "))
	}
	return nil
}

// firstDiff locates the first line where two renderings diverge.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d: recorded %q, regenerated %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("recorded %d lines, regenerated %d", len(wl), len(gl))
}
