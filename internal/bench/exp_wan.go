package bench

import (
	"fmt"
	"sort"

	"rdmc/internal/core"
	"rdmc/internal/rdma/reliab"
	"rdmc/internal/schedule"
	"rdmc/internal/simnet"
)

// The planetary-scale profile: three regions (think US-east / EU / APAC) with
// 10 Gb/s uplinks and tens-of-milliseconds inter-region RTTs. The paper's
// fabric is a lossless machine-room network (§3: "RDMA requires a lossless
// network"); this experiment asks what RDMC costs when that assumption is
// dropped — per-frame random loss on inter-region paths — and compares three
// answers: the paper's break-on-loss contract with an application-level
// restart (the §2 story: the layer above re-issues the multicast), the
// selective-retransmit layer (IRN-style), and selective retransmit plus
// systematic XOR parity (SDR-RDMA-style forward error correction).

// wanRTTBase is the inter-region RTT matrix in seconds; the diagonal is the
// intra-region RTT.
var wanRTTBase = [][]float64{
	{0.0002, 0.030, 0.080},
	{0.030, 0.0002, 0.050},
	{0.080, 0.050, 0.0002},
}

// WANCluster models a 3-region planetary deployment with perRegion nodes in
// each region (nodes 0..perRegion-1 are region 0, and so on), inter-region
// RTTs scaled by rttScale, and seeded per-frame loss at lossRate.
func WANCluster(perRegion int, rttScale, lossRate float64, seed int64) simnet.ClusterConfig {
	n := 3 * perRegion
	regions := make([]int, n)
	for i := range regions {
		regions[i] = i / perRegion
	}
	rtt := make([][]float64, 3)
	for i := range rtt {
		rtt[i] = make([]float64, 3)
		for j := range rtt[i] {
			v := wanRTTBase[i][j]
			if i != j {
				v *= rttScale
			}
			rtt[i][j] = v
		}
	}
	return simnet.ClusterConfig{
		Nodes:         n,
		LinkBandwidth: 1.25e9, // 10 Gb/s WAN uplinks
		Latency:       5e-6,
		CPU:           simnet.DefaultCPUConfig(),
		RetryTimeout:  0.05,
		Fabric: &simnet.FabricProfile{
			Seed:     seed,
			Regions:  regions,
			RTT:      rtt,
			LossRate: lossRate,
		},
	}
}

const (
	// wanDeadline bounds one replica transfer in virtual seconds; a run that
	// has not delivered by then counts as stalled.
	wanDeadline = 60.0
	// wanAttempts is the restart budget of the break-on-loss baseline.
	wanAttempts = 4
	// wanBlock is the RDMC block size: small enough that a loss event costs
	// one cheap retransmission, large enough to amortize per-block control.
	wanBlock = 64 * kib
)

// wanTrial is one transfer attempt sequence at one sweep point.
type wanTrial struct {
	ok      bool
	seconds float64 // cumulative virtual time across restarts
	resent  uint64  // retransmitted bytes, or whole-message restart bytes
	parity  uint64
	retx    uint64 // retransmitted frame count
	fixed   uint64 // losses FEC repaired without a retransmission
	reruns  int
}

// wanGroup instantiates the benchmark group every WAN mode shares. Unlike the
// machine-room figures (window 1: control RTTs are microseconds there), the
// WAN pipeline keeps several blocks in flight so a 30-80 ms control round
// trip is amortized rather than paid per block.
func wanGroup(d *deployment, nodes int) *benchGroup {
	return d.group(members(nodes), core.GroupConfig{
		BlockSize:  wanBlock,
		SendWindow: 8,
		RecvWindow: 8,
		Generator:  schedule.New(schedule.BinomialPipeline),
	})
}

// wanBreak runs the break-on-loss baseline: the engine's native contract —
// any lost frame breaks the queue pair and fails the group — under a
// harness-level restart loop that re-sends the WHOLE message with a fresh
// deployment (and a fresh loss seed: a retry sees new fabric randomness).
func wanBreak(perRegion int, rttScale, loss float64, size int, seed int64) wanTrial {
	var tr wanTrial
	for a := 0; a < wanAttempts; a++ {
		cl := WANCluster(perRegion, rttScale, loss, seed+int64(a)*101)
		d := deploy(cl, false)
		g := wanGroup(d, cl.Nodes)
		g.send(size)
		d.grid.RunUntil(wanDeadline)
		if g.failures == 0 && g.delivered == len(g.members) {
			tr.ok = true
			tr.seconds += g.lastDone
			return tr
		}
		tr.reruns++
		tr.resent += uint64(size)
		tr.seconds += d.grid.Sim().Now()
	}
	return tr
}

// wanReliab runs one transfer under the selective-retransmit layer, with
// optional FEC.
func wanReliab(fec bool, perRegion int, rttScale, loss float64, size int, seed int64) wanTrial {
	cl := WANCluster(perRegion, rttScale, loss, seed)
	rto := 0.2 * rttScale
	if rto < 0.2 {
		rto = 0.2
	}
	rcfg := &reliab.Config{RTO: rto, MaxRTO: 4 * rto, Seed: seed}
	if fec {
		rcfg.FECGroup = 8
	}
	d := deployReliab(cl, false, rcfg)
	g := wanGroup(d, cl.Nodes)
	g.send(size)
	d.grid.RunUntil(wanDeadline)
	st := d.grid.ReliabStats()
	tr := wanTrial{
		ok:     g.failures == 0 && g.delivered == len(g.members),
		resent: st.RetransmitBytes,
		parity: st.ParityBytes,
		retx:   st.Retransmits,
		fixed:  st.Recovered,
	}
	if tr.ok {
		tr.seconds = g.lastDone
	} else {
		tr.seconds = d.grid.Sim().Now()
	}
	return tr
}

// wanCell aggregates trials of one (sweep point, mode) cell.
type wanCell struct {
	trials []wanTrial
}

func (c wanCell) done() (ok, total int) {
	for _, t := range c.trials {
		if t.ok {
			ok++
		}
	}
	return ok, len(c.trials)
}

func (c wanCell) resent() (bytes uint64) {
	for _, t := range c.trials {
		bytes += t.resent
	}
	return
}

func (c wanCell) row(sweep, mode string) []string {
	ok, total := c.done()
	var times []float64 // completed trials only: a stalled trial has no completion time
	var parity, fixed uint64
	reruns := 0
	for _, t := range c.trials {
		if t.ok {
			times = append(times, t.seconds)
		}
		parity += t.parity
		fixed += t.fixed
		reruns += t.reruns
	}
	sort.Float64s(times)
	p50, p99 := "stall", "stall"
	if len(times) > 0 {
		p50 = ms(times[len(times)/2])
		p99 = ms(times[len(times)-1])
	}
	if ok < total {
		p99 = "stall" // the tail trial never finished
	}
	return []string{
		sweep, mode,
		fmt.Sprintf("%d/%d", ok, total),
		p50, p99,
		fmt.Sprintf("%d", c.resent()/1024),
		fmt.Sprintf("%d", parity/1024),
		fmt.Sprintf("%d", reruns),
		fmt.Sprintf("%d", fixed),
	}
}

// WANLossTolerance sweeps per-frame loss (at 1x RTT) and then the RTT scale
// (at 0.1% loss) over the 3-region planetary profile, comparing break-on-loss
// + restart, selective retransmit, and selective retransmit + FEC. Headline
// metrics: p99 completion and re-sent bytes — restart re-ships the whole
// message per loss event, retransmission re-ships one block, and parity
// repairs single losses with no extra round trip at a fixed bandwidth tax.
func WANLossTolerance(scale Scale) Report {
	const (
		perRegion = 2
		size      = 32 * mib
		baseSeed  = 11
	)
	trials := 3
	losses := []float64{0, 0.001, 0.01}
	rttScales := []float64{0.5, 2}
	if scale == Full {
		trials = 5
		losses = []float64{0, 0.0005, 0.001, 0.005, 0.01}
		rttScales = []float64{0.5, 2, 4}
	}

	r := Report{
		ID:    "wan",
		Title: "Loss tolerance on a 3-region WAN: break+restart vs selective retransmit vs +FEC",
		Paper: "§3 assumes a lossless fabric and breaks on loss; IRN/SDR-RDMA motivate selective repeat + FEC for lossy paths",
		Columns: []string{
			"sweep", "mode", "done", "p50 ms", "p99 ms", "resent KB", "parity KB", "restarts", "fec fixes",
		},
	}

	type mode struct {
		name string
		run  func(rttScale, loss float64, seed int64) wanTrial
	}
	modes := []mode{
		{"break+restart", func(rs, l float64, seed int64) wanTrial { return wanBreak(perRegion, rs, l, size, seed) }},
		{"retransmit", func(rs, l float64, seed int64) wanTrial { return wanReliab(false, perRegion, rs, l, size, seed) }},
		{"retransmit+fec", func(rs, l float64, seed int64) wanTrial { return wanReliab(true, perRegion, rs, l, size, seed) }},
	}

	cell := func(m mode, rttScale, loss float64) wanCell {
		var c wanCell
		for t := 0; t < trials; t++ {
			c.trials = append(c.trials, m.run(rttScale, loss, baseSeed+int64(t)*1009))
		}
		return c
	}

	cells := make(map[string]wanCell)
	for _, loss := range losses {
		sweep := fmt.Sprintf("loss %.2f%%", loss*100)
		for _, m := range modes {
			c := cell(m, 1, loss)
			cells[sweep+"/"+m.name] = c
			r.Rows = append(r.Rows, c.row(sweep, m.name))
		}
	}
	for _, rs := range rttScales {
		sweep := fmt.Sprintf("rtt %.1fx", rs)
		for _, m := range modes {
			c := cell(m, rs, 0.001)
			cells[sweep+"/"+m.name] = c
			r.Rows = append(r.Rows, c.row(sweep, m.name))
		}
	}

	// The two headline comparisons, computed from the cells above.
	if br, rt := cells["loss 0.10%/break+restart"], cells["loss 0.10%/retransmit"]; rt.resent() > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"at 0.1%% loss, restart re-sent %d KB vs selective retransmit %d KB (%.0fx less)",
			br.resent()/1024, rt.resent()/1024, float64(br.resent())/float64(rt.resent())))
	}
	if br, fc := cells["loss 1.00%/break+restart"], cells["loss 1.00%/retransmit+fec"]; true {
		bOK, bT := br.done()
		fOK, fT := fc.done()
		r.Notes = append(r.Notes, fmt.Sprintf(
			"at 1%% loss, break+restart finished %d/%d trials within %d attempts; +FEC finished %d/%d with zero restarts",
			bOK, bT, wanAttempts, fOK, fT))
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("3 regions x %d nodes, 10 Gb/s uplinks, 30-80 ms inter-region RTT, %d MB message, %d KB blocks, window 8", perRegion, size/mib, wanBlock/kib),
		"restart cost is the whole message per failed attempt; retransmit cost is one block per lost frame; parity is a fixed 1/8 wire tax that repairs single losses with no extra round trip")
	return r
}
