package bench

import (
	"fmt"
	"sort"

	"rdmc/internal/scenario"
	"rdmc/internal/schedule"
)

// tenantsConfig is the many-group multi-tenancy workload behind `-exp
// tenants`: a 512-node Fractus fabric where every group is rooted at node 0
// (the service front-end, so one NIC port is genuinely contended), a heavy
// tenant replicates 2 MiB objects and a light tenant 64 KiB objects, each to
// 4 random replicas drawn from the other 511 nodes (5-member groups — a
// non-power-of-two size, so every group shares the process-wide circulant
// plan cache and the resident-table count must stay flat while the group
// count passes 1000). Arrivals are closed-loop
// with 96 writes outstanding — far beyond what the root's port can carry,
// which is the overload the QoS layer exists for. With >1000 writes the
// k-of-n draws produce >1000 distinct overlapping groups, all pre-created.
func tenantsConfig(writes, throttleBytes int) scenario.Config {
	groups := &scenario.GroupConfig{Kind: scenario.GroupKofN, K: 4, N: 511, Base: 1, Root: []int{0}}
	return scenario.Config{
		Name:    "tenants",
		Seed:    99,
		Nodes:   512,
		Writes:  writes,
		Arrival: scenario.Arrival{Kind: scenario.ArrivalClosed, Concurrency: 96},
		Tenants: []scenario.Tenant{
			{
				Name:      "heavy",
				Weight:    1,
				QoSWeight: 1,
				Sizes:     &scenario.SizeConfig{Kind: scenario.SizeFixed, Bytes: 2 * mib},
				Groups:    groups,
			},
			{
				Name:      "light",
				Weight:    3,
				QoSWeight: 3,
				Sizes:     &scenario.SizeConfig{Kind: scenario.SizeFixed, Bytes: 64 * kib},
				Groups:    groups,
			},
		},
		// SendWindow 4 lets the heavy tenant keep four blocks per group in
		// flight — its natural appetite with 32-block objects, and the
		// flooding the light tenant (one block per write) needs protection
		// from. Unthrottled, heavy's in-flight share of the root's port is
		// appetite-proportional; throttled, the WFQ drain makes it
		// weight-proportional.
		Replay: scenario.Replay{
			Cluster:       "fractus",
			BlockBytes:    64 * kib,
			SendWindow:    4,
			RecvWindow:    4,
			ThrottleBytes: throttleBytes,
		},
	}
}

// tenantP99 pulls one tenant's p99 latency in seconds.
func tenantP99(lats []float64) float64 {
	sorted := append([]float64(nil), lats...)
	sort.Float64s(sorted)
	return sorted[int(0.99*float64(len(sorted)-1))]
}

// jainIndex is Jain's fairness index: J = (Σx)² / (n·Σx²), 1.0 when every
// tenant gets exactly its weighted share, 1/n when one tenant starves the
// rest.
func jainIndex(x []float64) float64 {
	var sum, sq float64
	for _, v := range x {
		sum += v
		sq += v * v
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(x)) * sq)
}

// TenantsQoS is the RDMC-as-a-service experiment: the tenantsConfig workload
// replayed twice from the identical compiled stream — once unthrottled
// (groups contend unmanaged on the root's NIC) and once with each node's
// 512 KiB weighted-fair send budget (the service layer's QoS path, 3:1 in
// the light tenant's favor) — reporting per-tenant p50/p90/p99 and a Jain
// fairness index instead of only aggregate throughput. The claim under test:
// QoS-on bounds the heavy tenant's impact on the light tenant's p99. The
// plan-cache note pins the other service-layer invariant, a flat resident
// plan count across thousands of distinct groups.
func TenantsQoS(scale Scale) Report {
	writes := 3000
	if scale == Quick {
		writes = 1200
	}
	const throttleBytes = 512 * kib

	r := Report{
		ID:    "tenants",
		Title: fmt.Sprintf("RDMC-as-a-service: 512 nodes, %d writes over >1000 overlapping groups, heavy vs light tenants under overload", writes),
		Paper: "§5 (Cosmos workload, scaled out): many overlapping groups multiplexed over one fabric",
		Columns: []string{
			"qos", "tenant", "writes", "p50", "p90", "p99", "mean ms", "Gb/s",
		},
	}

	type outcome struct {
		res    streamResult
		cfg    scenario.Config
		groups int
		jain   float64
	}
	run := func(mode string, throttle int) outcome {
		cfg := tenantsConfig(writes, throttle)
		if err := cfg.Validate(); err != nil {
			panic(fmt.Sprintf("bench: tenants: %v", err))
		}
		stream, err := scenario.Compile(cfg)
		if err != nil {
			panic(fmt.Sprintf("bench: tenants: %v", err))
		}
		res := replayStream(cfg, stream, staticSpec(schedule.BinomialPipeline))
		row := func(tenant string, lats []float64, bytes float64) {
			cells, mean := latencyStats(lats, []float64{0.50, 0.90, 0.99})
			r.Rows = append(r.Rows, append(append([]string{
				mode, tenant, fmt.Sprintf("%d", len(lats)),
			}, cells...), ms(mean), f1(gbps(bytes, res.elapsed))))
		}
		row("all", res.latencies, res.bytes)
		// Fairness input: each tenant's attained rate — bytes moved per
		// second of observed write latency — normalized by its QoS weight.
		// A closed loop completes every write in both modes, so completed
		// bytes alone cannot distinguish fair from unfair; the latency each
		// tenant paid per byte can.
		var norm []float64
		for _, t := range cfg.Tenants {
			lats := res.byTenant[t.Name]
			row(t.Name, lats, res.tenantB[t.Name])
			var latSum float64
			for _, l := range lats {
				latSum += l
			}
			norm = append(norm, res.tenantB[t.Name]/latSum/float64(t.QoSWeight))
		}
		return outcome{res: res, cfg: cfg, groups: len(scenarioGroups(cfg, stream)), jain: jainIndex(norm)}
	}

	cacheBefore := schedule.PlanCacheSize()
	off := run("off", 0)
	cacheOff := schedule.PlanCacheSize()
	on := run("on", throttleBytes)
	cacheOn := schedule.PlanCacheSize()

	offP99 := tenantP99(off.res.byTenant["light"])
	onP99 := tenantP99(on.res.byTenant["light"])
	r.Notes = append(r.Notes,
		fmt.Sprintf("light p99: qos-off %sms, qos-on %sms, ratio %s (on must not exceed off)",
			ms(offP99), ms(onP99), f2(onP99/offP99)),
		fmt.Sprintf("jain fairness (goodput/weight): qos-off %s, qos-on %s", f2(off.jain), f2(on.jain)),
		fmt.Sprintf("plan cache resident: %d before, %d after qos-off, %d after qos-on", cacheBefore, cacheOff, cacheOn),
		fmt.Sprintf("groups: %d distinct on %d nodes, seed %d", on.groups, on.cfg.Nodes, on.cfg.Seed),
	)
	return r
}
