package bench

import (
	"strconv"
	"strings"
	"testing"

	"rdmc/internal/schedule"
)

func TestReportFormatting(t *testing.T) {
	r := Report{
		ID:      "x",
		Title:   "a title",
		Paper:   "the paper said so",
		Columns: []string{"col", "value"},
		Rows:    [][]string{{"row1", "1"}, {"longer row", "2"}},
		Notes:   []string{"a note"},
	}
	out := r.String()
	for _, want := range []string{"=== x: a title ===", "paper: the paper said so", "longer row", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryCoversOrder(t *testing.T) {
	reg := Experiments()
	for _, id := range Order() {
		if _, ok := reg[id]; !ok {
			t.Errorf("ordered experiment %q missing from registry", id)
		}
	}
	if len(reg) != len(Order()) {
		t.Errorf("registry has %d entries, order lists %d", len(reg), len(Order()))
	}
}

func TestClusterModels(t *testing.T) {
	for _, tt := range []struct {
		name   string
		cfg    func(int) float64
		wantBW float64
	}{
		{"fractus", func(n int) float64 { return Fractus(n).LinkBandwidth }, 100e9 / 8},
		{"sierra", func(n int) float64 { return Sierra(n).LinkBandwidth }, 40e9 / 8},
		{"stampede", func(n int) float64 { return Stampede(n).LinkBandwidth }, 40e9 / 8},
		{"apt", func(n int) float64 { return Apt(n).LinkBandwidth }, 40e9 / 8},
	} {
		if got := tt.cfg(4); got != tt.wantBW {
			t.Errorf("%s bandwidth = %g, want %g", tt.name, got, tt.wantBW)
		}
	}
	apt := Apt(16)
	if apt.RackSize != AptRackSize || apt.TrunkBandwidth != AptRackSize*16e9/8 {
		t.Errorf("apt topology = rack %d trunk %g", apt.RackSize, apt.TrunkBandwidth)
	}
	if err := Apt(16).Validate(); err != nil {
		t.Errorf("apt config invalid: %v", err)
	}
}

func TestMulticastOnceMatchesPhysics(t *testing.T) {
	// 64 MB to one receiver at 100 Gb/s must take ≈ size/bandwidth.
	elapsed := multicastOnce(Fractus(2), schedule.New(schedule.BinomialPipeline), 64*mib, mib)
	ideal := float64(64*mib) / (100e9 / 8)
	if ratio := elapsed / ideal; ratio < 1.0 || ratio > 1.2 {
		t.Errorf("elapsed/ideal = %.2f, want ≈1", ratio)
	}
}

func TestOverlapRunAggregates(t *testing.T) {
	// One sender, 4 nodes, two 8 MB messages: the aggregate must be near
	// the single-flow bandwidth on Fractus.
	bw := overlapRun(Fractus(4), 4, 1, 8*mib, 2)
	if bw < 60 || bw > 100 {
		t.Errorf("aggregate bandwidth = %.1f Gb/s, want 60–100", bw)
	}
}

func TestBreakdownOf(t *testing.T) {
	stats, _ := multicastStats(Stampede(4), schedule.New(schedule.BinomialPipeline), 16*mib, mib)
	far := stats[3]
	b := breakdownOf(far, float64(mib)/Stampede(4).LinkBandwidth)
	if b.total <= 0 || b.transfers <= 0 {
		t.Errorf("breakdown = %+v", b)
	}
	if b.transfers > b.total {
		t.Errorf("transfers %v exceed total %v", b.transfers, b.total)
	}
	if b.copySecs <= 0 {
		t.Error("copy time missing")
	}
}

// TestFastExperimentsProduceRows runs the cheap experiments end to end and
// checks their report structure; the heavyweight ones run under
// `go test -bench` and the rdmcbench CLI instead.
func TestFastExperimentsProduceRows(t *testing.T) {
	for _, id := range []string{"table1", "fig5", "slack", "slowlink", "delay", "hybrid"} {
		id := id
		t.Run(id, func(t *testing.T) {
			rep := Experiments()[id](Quick)
			if rep.ID != id {
				t.Errorf("report id = %q", rep.ID)
			}
			if len(rep.Rows) == 0 || len(rep.Columns) == 0 {
				t.Fatalf("experiment %s produced no data", id)
			}
			for _, row := range rep.Rows {
				if len(row) != len(rep.Columns) {
					t.Errorf("%s: row %v does not match columns %v", id, row, rep.Columns)
				}
			}
		})
	}
}

// TestAdaptiveExperimentInvariants runs the adaptive experiment end to end
// and checks the properties the adaptive planner is sold on: with no foreign
// traffic its row is cell-for-cell the static hybrid's (mask 0 is the same
// plan), and under both contended configs it is at least as fast as the best
// static schedule.
func TestAdaptiveExperimentInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-scale experiment still multicasts 64 MB twelve times")
	}
	rep := AdaptiveScheduling(Quick)
	if len(rep.Rows) != 3 || len(rep.Columns) != 6 {
		t.Fatalf("report shape = %d rows × %d cols, want 3 × 6", len(rep.Rows), len(rep.Columns))
	}
	cell := func(row []string, i int) float64 {
		v, err := strconv.ParseFloat(row[i], 64)
		if err != nil {
			t.Fatalf("cell %q: %v", row[i], err)
		}
		return v
	}
	// Columns: config, chain, pipeline, hybrid, adaptive, adaptive/best-static.
	if un := rep.Rows[0]; un[4] != un[3] {
		t.Errorf("uncontended adaptive %s Gb/s != static hybrid %s Gb/s", un[4], un[3])
	}
	for _, row := range rep.Rows[1:] {
		adaptive := cell(row, 4)
		for i := 1; i <= 3; i++ {
			if static := cell(row, i); adaptive < static {
				t.Errorf("%s: adaptive %.1f Gb/s loses to %s (%.1f Gb/s)",
					row[0], adaptive, rep.Columns[i], static)
			}
		}
	}
}

func TestGbpsAndFormatHelpers(t *testing.T) {
	if got := gbps(125e6, 1); got != 1.0 {
		t.Errorf("gbps(125e6, 1) = %v, want 1", got)
	}
	if got := gbps(1, 0); got != 0 {
		t.Errorf("gbps with zero time = %v", got)
	}
	if got := ms(0.0015); got != "1.50" {
		t.Errorf("ms = %q", got)
	}
	if got := us(1e-6); got != "1" {
		t.Errorf("us = %q", got)
	}
	if got := sizeLabel(mib); got != "1MB" {
		t.Errorf("sizeLabel(1MiB) = %q", got)
	}
	if got := sizeLabel(10 * kib); got != "10KB" {
		t.Errorf("sizeLabel(10KiB) = %q", got)
	}
	if got := sizeLabel(128); got != "128B" {
		t.Errorf("sizeLabel(128) = %q", got)
	}
}

func TestGroupSizes(t *testing.T) {
	if got := len(groupSizes(Full)); got != 14 {
		t.Errorf("full sweep has %d sizes, want 14 (3..16)", got)
	}
	if got := len(groupSizes(Quick)); got >= 14 {
		t.Errorf("quick sweep has %d sizes, want a trimmed set", got)
	}
}
