package scenario

import "fmt"

// Canonical byte sizes used by the canned configs.
const (
	kib = 1 << 10
	mib = 1 << 20
)

// Chaos-calibrated defaults shared by the failover scenarios (the values
// internal/chaos has always used).
const (
	failoverMessages = 10
	failoverMsgBytes = 16 * kib
	failoverBlock    = 4 * kib
	failoverEpilogue = 2
)

// Roster returns the fixed member list [0, 1, ..., n-1].
func Roster(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Cosmos is the legacy trace generator as a scenario config: node 0
// replicates log-normally sized objects (median 12 MiB, mean 29 MiB) to 3
// random replicas out of a 15-node pool, 4 writes outstanding — the
// paper's Figure 9 workload, seed-for-seed identical to trace.Cosmos.
func Cosmos() Config {
	return Config{
		Name:    "cosmos",
		Seed:    42,
		Nodes:   16,
		Writes:  3000,
		Arrival: Arrival{Kind: ArrivalClosed, Concurrency: 4},
		Sizes:   SizeConfig{Kind: SizeLognormal, MedianBytes: 12 * mib, MeanBytes: 29 * mib},
		Groups:  GroupConfig{Kind: GroupKofN, K: 3, N: 15, Base: 1, Root: []int{0}},
		Replay: Replay{
			Cluster:     "fractus",
			BlockBytes:  mib,
			Algorithms:  []string{"sequential send", "binomial tree", "binomial pipeline"},
			QuickWrites: 300,
		},
	}
}

// Fig8 is Figure 8's workload at one sweep point: a single 256 MB object
// replicated to all n nodes on the Sierra model, sequential send versus
// binomial pipeline.
func Fig8(n int) Config {
	return Config{
		Name:    fmt.Sprintf("fig8-%d", n),
		Seed:    1,
		Nodes:   n,
		Writes:  1,
		Arrival: Arrival{Kind: ArrivalClosed, Concurrency: 1},
		Sizes:   SizeConfig{Kind: SizeFixed, Bytes: 256 * mib},
		Groups:  GroupConfig{Kind: GroupRoster, Members: Roster(n)},
		Replay: Replay{
			Cluster:    "sierra",
			BlockBytes: mib,
			Algorithms: []string{"sequential send", "binomial pipeline"},
			SendWindow: 1,
			RecvWindow: 1,
		},
	}
}

// SmallMessages is the §4.6 RDMC side of the SMC comparison: count
// messages of size bytes burst onto one n-member group on Fractus.
func SmallMessages(n, size, count int) Config {
	block := 16 * kib
	if size > block {
		block = mib
	}
	return Config{
		Name:    fmt.Sprintf("smc-%d-%d", n, size),
		Seed:    1,
		Nodes:   n,
		Writes:  count,
		Arrival: Arrival{Kind: ArrivalClosed, Concurrency: count},
		Sizes:   SizeConfig{Kind: SizeFixed, Bytes: size},
		Groups:  GroupConfig{Kind: GroupRoster, Members: Roster(n)},
		Replay: Replay{
			Cluster:    "fractus",
			BlockBytes: block,
			Algorithms: []string{"binomial pipeline"},
			SendWindow: 1,
			RecvWindow: 1,
		},
	}
}

// failover is the chaos harness's paced 10-message session workload with a
// declarative fault schedule. A zero paced spacing means "calibrate from a
// fault-free rehearsal", exactly as the chaos scenarios always have.
func failover(name string, n int, seed int64, faults []Fault) Config {
	return Config{
		Name:     name,
		Seed:     seed,
		Nodes:    n,
		Writes:   failoverMessages,
		Arrival:  Arrival{Kind: ArrivalPaced},
		Sizes:    SizeConfig{Kind: SizeFixed, Bytes: failoverMsgBytes},
		Groups:   GroupConfig{Kind: GroupRoster, Members: Roster(n)},
		Faults:   faults,
		Epilogue: failoverEpilogue,
		Replay:   Replay{BlockBytes: failoverBlock},
	}
}

// FailoverCrashRelay crashes a mid-tree relay at 50% of the transfer.
func FailoverCrashRelay(n int, seed int64) Config {
	return failover("crash-relay", n, seed,
		[]Fault{{Kind: FaultCrash, AtFraction: 0.5, Node: n / 2}})
}

// FailoverCrashRoot crashes the sender at 50% of the transfer.
func FailoverCrashRoot(n int, seed int64) Config {
	return failover("crash-root", n, seed,
		[]Fault{{Kind: FaultCrash, AtFraction: 0.5, Node: 0}})
}

// FailoverPartition cuts the last rack off at 50% of the transfer and
// heals the links one baseline-runtime later.
func FailoverPartition(n int, seed int64) Config {
	rack := 1
	if n >= 4 {
		rack = n / 4
	}
	return failover("partition", n, seed,
		[]Fault{{Kind: FaultPartition, AtFraction: 0.5, RackSize: rack, HealAfterFraction: 1.0}})
}

// FailoverSuite is the standard chaos suite for one cluster size — the
// same three schedules internal/chaos has always run, as declarative
// configs.
func FailoverSuite(n int, seed int64) []Config {
	return []Config{
		FailoverCrashRelay(n, seed),
		FailoverCrashRoot(n, seed+1),
		FailoverPartition(n, seed+2),
	}
}

// MixedTenants is a workload no single paper figure covers: a bulk
// replication tenant (log-normal multi-MB objects to 3 random replicas)
// sharing the fabric with a chatty metadata tenant (16 KiB writes to 2
// random replicas, 3× the arrival share), driven by an open Poisson
// process.
func MixedTenants() Config {
	return Config{
		Name:    "mixed-tenants",
		Seed:    7,
		Nodes:   16,
		Writes:  200,
		Arrival: Arrival{Kind: ArrivalPoisson, RatePerSec: 2000},
		Sizes:   SizeConfig{Kind: SizeLognormal, MedianBytes: 4 * mib, MeanBytes: 8 * mib},
		Groups:  GroupConfig{Kind: GroupKofN, K: 3, N: 15, Base: 1, Root: []int{0}},
		Tenants: []Tenant{
			{Name: "bulk", Weight: 1, QoSWeight: 1},
			{
				Name:      "meta",
				Weight:    3,
				QoSWeight: 3,
				Sizes:     &SizeConfig{Kind: SizeFixed, Bytes: 16 * kib},
				Groups:    &GroupConfig{Kind: GroupKofN, K: 2, N: 15, Base: 1, Root: []int{0}},
			},
		},
		Replay: Replay{
			Cluster:     "fractus",
			BlockBytes:  64 * kib,
			Algorithms:  []string{"binomial pipeline"},
			QuickWrites: 120,
		},
	}
}

// MixedTenantsQoS is MixedTenants with the per-node weighted-fair send
// throttle turned on: every node's groups share a 256 KiB in-flight budget,
// drained 3:1 in favor of the chatty metadata tenant. Same seed, so the
// compiled stream is byte-identical to mixed-tenants — only the replay
// contends through the service layer's QoS path.
func MixedTenantsQoS() Config {
	cfg := MixedTenants()
	cfg.Name = "mixed-tenants-qos"
	cfg.Replay.ThrottleBytes = 256 * kib
	return cfg
}

// Churn is a membership-churn schedule: a 5-node roster hands off to an
// overlapping replacement roster mid-run, then degenerates into random
// 3-of-8 groups — paced arrivals so the handoff lands at a fixed virtual
// time.
func Churn() Config {
	return Config{
		Name:    "churn",
		Seed:    11,
		Nodes:   8,
		Writes:  60,
		Arrival: Arrival{Kind: ArrivalPaced, SpacingSec: 200e-6},
		Sizes:   SizeConfig{Kind: SizeFixed, Bytes: 64 * kib},
		Groups: GroupConfig{
			Kind: GroupChurn,
			Phases: []GroupPhase{
				{Writes: 20, Model: GroupConfig{Kind: GroupRoster, Members: []int{0, 1, 2, 3, 4}}},
				{Writes: 20, Model: GroupConfig{Kind: GroupRoster, Members: []int{0, 1, 5, 6, 7}}},
				{Model: GroupConfig{Kind: GroupKofN, K: 3, N: 7, Base: 1, Root: []int{0}}},
			},
		},
		Replay: Replay{
			Cluster:    "fractus",
			BlockBytes: 16 * kib,
			Algorithms: []string{"binomial pipeline"},
		},
	}
}

// AdaptiveCrossTraffic pits every schedule family against foreign traffic
// on a three-rack Apt slice: the group spans racks 0–2, while rack 1's four
// spare NICs blast 24 looping streams at rack 3, saturating rack 1's TOR
// uplink for the first virtual second. The first write issues before the
// foreign flows are on the fabric (the adaptive planner sees a clean signal
// and runs the plain hybrid schedule); the remaining writes issue under
// saturation and get the sheltered plan, so the per-write latency spread
// inside the adaptive row is itself the adaptation signal.
func AdaptiveCrossTraffic() Config {
	group := make([]int, 0, 16)
	group = append(group, Roster(8)...)
	for i := 8; i < 12; i++ {
		group = append(group, i)
	}
	for i := 16; i < 20; i++ {
		group = append(group, i)
	}
	cross := make([]CrossFlow, 0, 6)
	for i := 0; i < 6; i++ {
		cross = append(cross, CrossFlow{
			From:    12 + i%4,
			To:      24 + i,
			Streams: 4,
			StopSec: 1.0,
		})
	}
	return Config{
		Name:         "adaptive-crosstraffic",
		Seed:         3,
		Nodes:        32,
		Writes:       4,
		Arrival:      Arrival{Kind: ArrivalClosed, Concurrency: 1},
		Sizes:        SizeConfig{Kind: SizeFixed, Bytes: 64 * mib},
		Groups:       GroupConfig{Kind: GroupRoster, Members: group},
		CrossTraffic: cross,
		Replay: Replay{
			Cluster:    "apt",
			BlockBytes: mib,
			Algorithms: []string{"chain send", "binomial pipeline", "hybrid", "adaptive"},
			SendWindow: 1,
			RecvWindow: 1,
		},
	}
}

// WANLossy is the planetary-scale workload: a 6-node group spanning three
// regions with real inter-region RTTs and 0.2% per-frame loss on the
// long-haul paths, replayed through the selective-retransmit layer with XOR
// parity. The datacenter engine is untouched — the fabric stanza is what
// turns the lossless Fractus model into a WAN, and the reliability layer is
// what keeps a lossy replay from breaking queue pairs.
func WANLossy() Config {
	return Config{
		Name:    "wan-lossy",
		Seed:    19,
		Nodes:   6,
		Writes:  12,
		Arrival: Arrival{Kind: ArrivalClosed, Concurrency: 2},
		Sizes:   SizeConfig{Kind: SizeFixed, Bytes: 4 * mib},
		Groups:  GroupConfig{Kind: GroupRoster, Members: Roster(6)},
		Replay: Replay{
			Cluster:    "fractus",
			BlockBytes: 64 * kib,
			Algorithms: []string{"binomial pipeline"},
			SendWindow: 8,
			RecvWindow: 8,
			Fabric: &Fabric{
				Regions: []int{0, 0, 1, 1, 2, 2},
				RTTMs: [][]float64{
					{0.2, 30, 80},
					{30, 0.2, 50},
					{80, 50, 0.2},
				},
				LossRate: 0.002,
				Reliab:   true,
				FECGroup: 8,
				RTOMs:    200,
			},
		},
	}
}

// LibraryNames lists the shipped scenario configs in presentation order.
func LibraryNames() []string {
	return []string{"cosmos", "fig8", "smc", "failover-crash-root", "mixed-tenants", "mixed-tenants-qos", "churn", "adaptive-crosstraffic", "wan-lossy"}
}

// Library returns the shipped scenario configs by name — the set the
// scenarios/ directory mirrors, the determinism tests double-run, and the
// golden harness pins.
func Library() map[string]Config {
	fig8 := Fig8(32)
	fig8.Name = "fig8"
	smc := SmallMessages(16, 10*kib, 120)
	smc.Name = "smc"
	fo := FailoverCrashRoot(8, 2)
	fo.Name = "failover-crash-root"
	return map[string]Config{
		"cosmos":                Cosmos(),
		"fig8":                  fig8,
		"smc":                   smc,
		"failover-crash-root":   fo,
		"mixed-tenants":         MixedTenants(),
		"mixed-tenants-qos":     MixedTenantsQoS(),
		"churn":                 Churn(),
		"adaptive-crosstraffic": AdaptiveCrossTraffic(),
		"wan-lossy":             WANLossy(),
	}
}
