package scenario

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestLibraryConfigsValidateAndCompile is the gate every shipped scenario
// must pass: valid, compilable, and the advertised length.
func TestLibraryConfigsValidateAndCompile(t *testing.T) {
	lib := Library()
	if len(lib) != len(LibraryNames()) {
		t.Fatalf("library has %d configs, names list %d", len(lib), len(LibraryNames()))
	}
	for _, name := range LibraryNames() {
		cfg, ok := lib[name]
		if !ok {
			t.Fatalf("library missing %q", name)
		}
		if cfg.Name != name {
			t.Errorf("library[%q].Name = %q", name, cfg.Name)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		s, err := Compile(cfg)
		if err != nil {
			t.Errorf("%s: compile: %v", name, err)
			continue
		}
		if len(s.Events) != cfg.Writes {
			t.Errorf("%s: %d events, want %d", name, len(s.Events), cfg.Writes)
		}
		for _, ev := range s.Events {
			if ev.Size <= 0 {
				t.Fatalf("%s: event %d has size %d", name, ev.Seq, ev.Size)
			}
			if len(ev.Group) < 2 {
				t.Fatalf("%s: event %d group %v too small", name, ev.Seq, ev.Group)
			}
			for _, m := range ev.Group {
				if m < 0 || m >= cfg.Nodes {
					t.Fatalf("%s: event %d member %d outside [0,%d)", name, ev.Seq, m, cfg.Nodes)
				}
			}
		}
	}
}

// TestCompileDeterministic double-compiles every shipped config and
// requires byte-identical event streams — the package's core contract.
func TestCompileDeterministic(t *testing.T) {
	for name, cfg := range Library() {
		a, err := Compile(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Compile(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ea, err := a.MarshalEvents()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		eb, err := b.MarshalEvents()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(ea, eb) {
			t.Errorf("%s: double-compile diverged", name)
		}
		ha, _ := a.SHA256()
		hb, _ := b.SHA256()
		if ha != hb || ha == "" {
			t.Errorf("%s: digests %q vs %q", name, ha, hb)
		}
	}
}

// TestConfigJSONRoundTrip pins that every shipped config survives
// Marshal→Load unchanged — the property that keeps the scenarios/ files
// and the Go library from drifting apart.
func TestConfigJSONRoundTrip(t *testing.T) {
	for name, cfg := range Library() {
		data, err := cfg.Marshal()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := Load(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(cfg, back) {
			t.Errorf("%s: round trip changed the config:\n%s", name, data)
		}
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	_, err := Load(strings.NewReader(`{"name":"x","nodes":4,"writes":1,"arrival":{"kind":"closed"},"sizes":{"kind":"fixed","bytes":1},"groups":{"kind":"roster","members":[0,1]},"typo_field":1}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() Config {
		c := Cosmos()
		return c
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"missing name", func(c *Config) { c.Name = "" }},
		{"zero nodes", func(c *Config) { c.Nodes = 0 }},
		{"zero writes", func(c *Config) { c.Writes = 0 }},
		{"bad arrival", func(c *Config) { c.Arrival.Kind = "warp" }},
		{"poisson without rate", func(c *Config) { c.Arrival = Arrival{Kind: ArrivalPoisson} }},
		{"bad size kind", func(c *Config) { c.Sizes.Kind = "gaussian" }},
		{"bad group kind", func(c *Config) { c.Groups.Kind = "mesh" }},
		{"kofn pool outside cluster", func(c *Config) { c.Groups.N = 16 }},
		{"roster outside cluster", func(c *Config) {
			c.Groups = GroupConfig{Kind: GroupRoster, Members: []int{0, 99}}
		}},
		{"roster repeats", func(c *Config) {
			c.Groups = GroupConfig{Kind: GroupRoster, Members: []int{0, 0}}
		}},
		{"tenant without weight", func(c *Config) { c.Tenants = []Tenant{{Name: "t"}} }},
		{"tenant without name", func(c *Config) { c.Tenants = []Tenant{{Weight: 1}} }},
		{"fault kind", func(c *Config) { c.Faults = []Fault{{Kind: "meteor", AtFraction: 0.5}} }},
		{"fault node range", func(c *Config) { c.Faults = []Fault{{Kind: FaultCrash, AtFraction: 0.5, Node: 99}} }},
		{"fault at zero", func(c *Config) { c.Faults = []Fault{{Kind: FaultCrash, AtFraction: 0, Node: 1}} }},
		{"partition whole cluster", func(c *Config) {
			c.Faults = []Fault{{Kind: FaultPartition, AtFraction: 0.5, RackSize: 16}}
		}},
		{"cross-traffic from out of range", func(c *Config) {
			c.CrossTraffic = []CrossFlow{{From: -1, To: 1, StopSec: 1}}
		}},
		{"cross-traffic to out of range", func(c *Config) {
			c.CrossTraffic = []CrossFlow{{From: 0, To: 99, StopSec: 1}}
		}},
		{"cross-traffic self-loop", func(c *Config) {
			c.CrossTraffic = []CrossFlow{{From: 1, To: 1, StopSec: 1}}
		}},
		{"cross-traffic negative streams", func(c *Config) {
			c.CrossTraffic = []CrossFlow{{From: 0, To: 1, Streams: -1, StopSec: 1}}
		}},
		{"cross-traffic negative chunk", func(c *Config) {
			c.CrossTraffic = []CrossFlow{{From: 0, To: 1, ChunkBytes: -1, StopSec: 1}}
		}},
		{"cross-traffic missing stop", func(c *Config) {
			c.CrossTraffic = []CrossFlow{{From: 0, To: 1}}
		}},
		{"cross-traffic stop before start", func(c *Config) {
			c.CrossTraffic = []CrossFlow{{From: 0, To: 1, StartSec: 2, StopSec: 1}}
		}},
		{"fabric loss rate out of range", func(c *Config) {
			c.Replay.Fabric = &Fabric{LossRate: 1, Reliab: true}
		}},
		{"fabric negative reorder rate", func(c *Config) {
			c.Replay.Fabric = &Fabric{ReorderRate: -0.1, Reliab: true}
		}},
		{"fabric regions miss nodes", func(c *Config) {
			c.Replay.Fabric = &Fabric{Regions: []int{0, 1}}
		}},
		{"fabric negative region", func(c *Config) {
			c.Replay.Fabric = &Fabric{Regions: make([]int, c.Nodes)}
			c.Replay.Fabric.Regions[3] = -1
		}},
		{"fabric rtt matrix not square", func(c *Config) {
			c.Replay.Fabric = &Fabric{RTTMs: [][]float64{{1, 2}, {1}}}
		}},
		{"fabric rtt matrix misses region", func(c *Config) {
			regions := make([]int, c.Nodes)
			regions[0] = 2
			c.Replay.Fabric = &Fabric{Regions: regions, RTTMs: [][]float64{{1, 2}, {2, 1}}}
		}},
		{"fabric negative rtt", func(c *Config) {
			c.Replay.Fabric = &Fabric{RTTMs: [][]float64{{-1}}}
		}},
		{"fabric loss without reliab", func(c *Config) {
			c.Replay.Fabric = &Fabric{LossRate: 0.01}
		}},
		{"fabric reorder without reliab", func(c *Config) {
			c.Replay.Fabric = &Fabric{ReorderRate: 0.01}
		}},
		{"fabric fec without reliab", func(c *Config) {
			c.Replay.Fabric = &Fabric{FECGroup: 8}
		}},
		{"fabric negative fec group", func(c *Config) {
			c.Replay.Fabric = &Fabric{FECGroup: -1, Reliab: true}
		}},
		{"fabric rto without reliab", func(c *Config) {
			c.Replay.Fabric = &Fabric{RTOMs: 100}
		}},
		{"fabric negative rto", func(c *Config) {
			c.Replay.Fabric = &Fabric{RTOMs: -1, Reliab: true}
		}},
	} {
		cfg := base()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestArrivalTimes(t *testing.T) {
	cfg := Churn() // paced at 200 µs
	s, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range s.Events {
		if want := float64(i) * 200e-6; ev.At != want {
			t.Fatalf("paced event %d at %g, want %g", i, ev.At, want)
		}
	}

	cfg = MixedTenants() // poisson
	s, err = Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := 0.0
	for i, ev := range s.Events {
		if ev.At <= last {
			t.Fatalf("poisson event %d at %g, not after %g", i, ev.At, last)
		}
		last = ev.At
	}
	// Mean inter-arrival should be near 1/rate.
	mean := last / float64(len(s.Events))
	if mean < 0.2/2000 || mean > 5.0/2000 {
		t.Errorf("poisson mean gap %g, want ≈%g", mean, 1.0/2000)
	}

	cfg = Cosmos() // closed loop
	cfg.Writes = 10
	s, err = Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range s.Events {
		if ev.At != ClosedLoop {
			t.Fatalf("closed-loop event %d has At %g", ev.Seq, ev.At)
		}
	}
	if got := s.Concurrency(); got != 4 {
		t.Errorf("cosmos concurrency = %d, want 4", got)
	}
}

func TestChurnPhases(t *testing.T) {
	s, err := Compile(Churn())
	if err != nil {
		t.Fatal(err)
	}
	wantA := []int{0, 1, 2, 3, 4}
	wantB := []int{0, 1, 5, 6, 7}
	for i, ev := range s.Events {
		switch {
		case i < 20:
			if !reflect.DeepEqual(ev.Group, wantA) {
				t.Fatalf("event %d group %v, want %v", i, ev.Group, wantA)
			}
		case i < 40:
			if !reflect.DeepEqual(ev.Group, wantB) {
				t.Fatalf("event %d group %v, want %v", i, ev.Group, wantB)
			}
		default:
			if len(ev.Group) != 4 || ev.Group[0] != 0 {
				t.Fatalf("event %d group %v, want root 0 + 3 of 7", i, ev.Group)
			}
			for j := 1; j < 4; j++ {
				if ev.Group[j] < 1 || ev.Group[j] > 7 {
					t.Fatalf("event %d member %d outside pool", i, ev.Group[j])
				}
				if j > 1 && ev.Group[j-1] >= ev.Group[j] {
					t.Fatalf("event %d group %v unsorted", i, ev.Group)
				}
			}
		}
	}
}

func TestTenantMix(t *testing.T) {
	s, err := Compile(MixedTenants())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ev := range s.Events {
		counts[ev.Tenant]++
		switch ev.Tenant {
		case "meta":
			if ev.Size != 16*kib {
				t.Fatalf("meta event %d size %d", ev.Seq, ev.Size)
			}
			if len(ev.Group) != 3 {
				t.Fatalf("meta event %d group %v, want root + 2", ev.Seq, ev.Group)
			}
		case "bulk":
			if len(ev.Group) != 4 {
				t.Fatalf("bulk event %d group %v, want root + 3", ev.Seq, ev.Group)
			}
		default:
			t.Fatalf("event %d has unknown tenant %q", ev.Seq, ev.Tenant)
		}
	}
	// 3:1 weights over 200 writes — meta should clearly dominate.
	if counts["meta"] <= counts["bulk"] {
		t.Errorf("tenant mix %v does not reflect 3:1 weights", counts)
	}
}

// TestSingleTenantDrawsNothingExtra pins the skip-degenerate-draws rule: a
// one-tenant scenario compiles the same stream as the equivalent untenanted
// scenario, so adding a tenant label never perturbs the workload.
func TestSingleTenantDrawsNothingExtra(t *testing.T) {
	plain := Cosmos()
	plain.Writes = 50
	labeled := plain
	labeled.Tenants = []Tenant{{Name: "only", Weight: 1}}

	a, err := Compile(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(labeled)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ea.Size != eb.Size || !reflect.DeepEqual(ea.Group, eb.Group) {
			t.Fatalf("event %d diverged: %+v vs %+v", i, ea, eb)
		}
		if eb.Tenant != "only" {
			t.Fatalf("event %d tenant %q", i, eb.Tenant)
		}
	}
}

func TestBucketSampler(t *testing.T) {
	s, err := NewSizeSampler(SizeConfig{Kind: SizeBuckets, Buckets: []SizeBucket{
		{Bytes: 100, Weight: 1}, {Bytes: 1000, Weight: 9},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	counts := map[int]int{}
	for i := 0; i < 10_000; i++ {
		counts[s.Sample(rng)]++
	}
	if len(counts) != 2 {
		t.Fatalf("draw values %v, want exactly the two buckets", counts)
	}
	if frac := float64(counts[1000]) / 10_000; frac < 0.85 || frac > 0.95 {
		t.Errorf("heavy bucket drawn %.2f of the time, want ≈0.9", frac)
	}
}

func TestEnumerateGroups(t *testing.T) {
	got := EnumerateGroups(GroupConfig{Kind: GroupKofN, K: 3, N: 5}, 100)
	if len(got) != 10 {
		t.Fatalf("C(5,3) enumeration has %d entries", len(got))
	}
	if !reflect.DeepEqual(got[0], []int{0, 1, 2}) || !reflect.DeepEqual(got[9], []int{2, 3, 4}) {
		t.Errorf("enumeration order wrong: first %v last %v", got[0], got[9])
	}
	if EnumerateGroups(GroupConfig{Kind: GroupKofN, K: 10, N: 30}, 100) != nil {
		t.Error("over-limit enumeration did not return nil")
	}
	mapped := EnumerateGroups(GroupConfig{Kind: GroupKofN, K: 2, N: 3, Base: 1, Root: []int{0}}, 100)
	if !reflect.DeepEqual(mapped[0], []int{0, 1, 2}) || !reflect.DeepEqual(mapped[2], []int{0, 2, 3}) {
		t.Errorf("base/root mapping wrong: %v", mapped)
	}
	churn := EnumerateGroups(Churn().Groups, 1000)
	if len(churn) != 2+35 { // two rosters + C(7,3)
		t.Errorf("churn enumeration has %d entries, want 37", len(churn))
	}
}

func TestBinomialAndRank(t *testing.T) {
	for _, tc := range []struct{ n, k, want int }{
		{15, 3, 455}, {15, 0, 1}, {15, 15, 1}, {5, 6, 0}, {10, 2, 45}, {64, 1, 64},
	} {
		if got := Binomial(tc.n, tc.k); got != tc.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", tc.n, tc.k, got, tc.want)
		}
	}
	// Rank must invert enumeration for a non-trivial case.
	for i, g := range EnumerateGroups(GroupConfig{Kind: GroupKofN, K: 4, N: 9}, 1000) {
		if got := CombinationRank(g, 9); got != i {
			t.Fatalf("rank(%v) = %d, want %d", g, got, i)
		}
	}
	if CombinationRank([]int{3, 3}, 5) != -1 || CombinationRank([]int{0, 9}, 5) != -1 {
		t.Error("invalid combinations did not rank -1")
	}
}

func TestKofNSamplerAllocationFree(t *testing.T) {
	s, err := NewGroupSampler(GroupConfig{Kind: GroupKofN, K: 3, N: 15, Base: 1, Root: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	buf := make([]int, 4)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = s.Sample(rng, buf)
	})
	if allocs != 0 {
		t.Errorf("kofn sample allocates %.1f per draw, want 0", allocs)
	}
}
