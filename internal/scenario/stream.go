package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
)

// ClosedLoop is the At value of closed-loop events: the write is issued
// when an outstanding slot frees, not at an absolute time.
const ClosedLoop = -1

// Event is one compiled write: issue an object of Size bytes to the member
// nodes of Group (Group[0] is the root/sender).
type Event struct {
	// Seq is the event's position in the stream.
	Seq int `json:"seq"`
	// Tenant names the workload class ("" in single-tenant scenarios).
	Tenant string `json:"tenant,omitempty"`
	// At is the issue time in virtual seconds, or ClosedLoop (-1).
	At float64 `json:"at"`
	// Size is the object size in bytes.
	Size int `json:"size"`
	// Group is the sorted member list with any fixed roots first.
	Group []int `json:"group"`
}

// Stream is a compiled scenario: the full event sequence plus the config
// that produced it. Compiling the same config twice yields byte-identical
// streams — that determinism is what the golden harness pins.
type Stream struct {
	Config Config
	Events []Event
}

// tenantModels is one tenant's resolved samplers.
type tenantModels struct {
	name   string
	weight float64
	sizes  SizeSampler
	groups GroupSampler
}

// Compile materializes the scenario's event stream. Every draw comes from
// one seeded rng in a fixed per-event order — arrival, tenant, size, group
// — with degenerate draws skipped entirely (closed-loop arrivals and
// single-tenant scenarios consume nothing), so the canned Cosmos config
// replays the legacy trace generator seed-for-seed.
func Compile(cfg Config) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var tenants []tenantModels
	var totalWeight float64
	build := func(name string, weight float64, sc SizeConfig, gc GroupConfig) error {
		sizes, err := NewSizeSampler(sc)
		if err != nil {
			return err
		}
		groups, err := NewGroupSampler(gc)
		if err != nil {
			return err
		}
		tenants = append(tenants, tenantModels{name: name, weight: weight, sizes: sizes, groups: groups})
		totalWeight += weight
		return nil
	}
	if len(cfg.Tenants) == 0 {
		if err := build("", 1, cfg.Sizes, cfg.Groups); err != nil {
			return nil, err
		}
	}
	for _, t := range cfg.Tenants {
		sc, gc := cfg.Sizes, cfg.Groups
		if t.Sizes != nil {
			sc = *t.Sizes
		}
		if t.Groups != nil {
			gc = *t.Groups
		}
		if err := build(t.Name, t.Weight, sc, gc); err != nil {
			return nil, fmt.Errorf("tenant %s: %w", t.Name, err)
		}
	}

	var clock float64
	events := make([]Event, cfg.Writes)
	for i := range events {
		at := float64(ClosedLoop)
		switch cfg.Arrival.Kind {
		case ArrivalPoisson:
			clock += rng.ExpFloat64() / cfg.Arrival.RatePerSec
			at = clock
		case ArrivalPaced:
			at = float64(i) * cfg.Arrival.SpacingSec
		}
		t := &tenants[0]
		if len(tenants) > 1 {
			x := rng.Float64() * totalWeight
			for j := range tenants {
				if x -= tenants[j].weight; x < 0 {
					t = &tenants[j]
					break
				}
			}
		}
		size := t.sizes.Sample(rng)
		group := t.groups.Sample(rng, nil)
		events[i] = Event{
			Seq:    i,
			Tenant: t.name,
			At:     at,
			Size:   size,
			Group:  append([]int(nil), group...),
		}
	}
	return &Stream{Config: cfg, Events: events}, nil
}

// Concurrency returns the closed-loop slot count (minimum 1).
func (s *Stream) Concurrency() int {
	if s.Config.Arrival.Kind == ArrivalClosed && s.Config.Arrival.Concurrency > 1 {
		return s.Config.Arrival.Concurrency
	}
	if s.Config.Arrival.Kind != ArrivalClosed {
		return len(s.Events)
	}
	return 1
}

// MarshalEvents renders the event sequence as canonical JSON lines — the
// byte representation determinism tests and golden digests compare.
func (s *Stream) MarshalEvents() ([]byte, error) {
	var out []byte
	for i := range s.Events {
		line, err := json.Marshal(&s.Events[i])
		if err != nil {
			return nil, fmt.Errorf("scenario %s: marshal event %d: %w", s.Config.Name, i, err)
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	return out, nil
}

// SHA256 digests the canonical event encoding — a compact cross-machine
// pin for "this config still compiles to exactly this workload".
func (s *Stream) SHA256() (string, error) {
	data, err := s.MarshalEvents()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
