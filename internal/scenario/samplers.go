package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Trace-calibrated clamp defaults for log-normal draws ("hundreds of bytes
// to hundreds of MB").
const (
	DefaultMinBytes = 256
	DefaultMaxBytes = 512 << 20
)

// SizeSampler draws object sizes from a configured distribution. Samplers
// are deterministic functions of the supplied rng: one draw consumes a
// fixed number of rng values, so streams replay byte-identically.
type SizeSampler interface {
	Sample(rng *rand.Rand) int
}

// NewSizeSampler builds the sampler for a size config.
func NewSizeSampler(cfg SizeConfig) (SizeSampler, error) {
	switch cfg.Kind {
	case SizeFixed:
		if cfg.Bytes <= 0 {
			return nil, fmt.Errorf("scenario: fixed size must be positive, got %d", cfg.Bytes)
		}
		return fixedSize(cfg.Bytes), nil
	case SizeLognormal:
		if cfg.MedianBytes <= 0 || cfg.MeanBytes <= cfg.MedianBytes {
			return nil, fmt.Errorf("scenario: log-normal needs 0 < median (%g) < mean (%g)",
				cfg.MedianBytes, cfg.MeanBytes)
		}
		min, max := cfg.MinBytes, cfg.MaxBytes
		if min == 0 {
			min = DefaultMinBytes
		}
		if max == 0 {
			max = DefaultMaxBytes
		}
		if min > max {
			return nil, fmt.Errorf("scenario: size clamp [%d,%d] inverted", min, max)
		}
		// For a log-normal, median = e^µ and mean = e^(µ+σ²/2).
		return &lognormalSize{
			mu:    math.Log(cfg.MedianBytes),
			sigma: math.Sqrt(2 * math.Log(cfg.MeanBytes/cfg.MedianBytes)),
			min:   min,
			max:   max,
		}, nil
	case SizeBuckets:
		if len(cfg.Buckets) == 0 {
			return nil, fmt.Errorf("scenario: bucket distribution has no buckets")
		}
		s := &bucketSize{buckets: cfg.Buckets}
		for _, b := range cfg.Buckets {
			if b.Bytes <= 0 || b.Weight <= 0 {
				return nil, fmt.Errorf("scenario: bucket {%d bytes, weight %g} must be positive", b.Bytes, b.Weight)
			}
			s.total += b.Weight
		}
		return s, nil
	default:
		return nil, fmt.Errorf("scenario: unknown size kind %q", cfg.Kind)
	}
}

type fixedSize int

func (f fixedSize) Sample(*rand.Rand) int { return int(f) }

type lognormalSize struct {
	mu, sigma float64
	min, max  int
}

func (l *lognormalSize) Sample(rng *rand.Rand) int {
	size := int(math.Exp(l.mu + l.sigma*rng.NormFloat64()))
	if size < l.min {
		size = l.min
	}
	if size > l.max {
		size = l.max
	}
	return size
}

type bucketSize struct {
	buckets []SizeBucket
	total   float64
}

func (b *bucketSize) Sample(rng *rand.Rand) int {
	x := rng.Float64() * b.total
	for _, bk := range b.buckets {
		if x -= bk.Weight; x < 0 {
			return bk.Bytes
		}
	}
	return b.buckets[len(b.buckets)-1].Bytes
}

// GroupSampler draws sorted member groups. Sample appends the group to
// buf[:0] and returns it, so a caller reusing one buffer draws without
// allocating.
type GroupSampler interface {
	Sample(rng *rand.Rand, buf []int) []int
	// K returns the (maximum) group size a draw produces.
	K() int
}

// NewGroupSampler builds the sampler for a group config. Churn samplers are
// stateful (they advance through phases by draw count), so build a fresh
// one per stream.
func NewGroupSampler(cfg GroupConfig) (GroupSampler, error) {
	switch cfg.Kind {
	case GroupRoster:
		if len(cfg.Members) == 0 {
			return nil, fmt.Errorf("scenario: roster has no members")
		}
		seen := make(map[int]bool, len(cfg.Members))
		for _, m := range cfg.Members {
			if seen[m] {
				return nil, fmt.Errorf("scenario: roster repeats member %d", m)
			}
			seen[m] = true
		}
		return rosterGroup(cfg.Members), nil
	case GroupKofN:
		if cfg.K <= 0 || cfg.K > cfg.N {
			return nil, fmt.Errorf("scenario: kofn needs 0 < k (%d) <= n (%d)", cfg.K, cfg.N)
		}
		s := &kofnGroup{k: cfg.K, n: cfg.N, base: cfg.Base, root: cfg.Root, idx: make([]int, cfg.N)}
		for i := range s.idx {
			s.idx[i] = i
		}
		return s, nil
	case GroupChurn:
		if len(cfg.Phases) == 0 {
			return nil, fmt.Errorf("scenario: churn schedule has no phases")
		}
		c := &churnGroup{}
		for i, p := range cfg.Phases {
			if p.Writes < 0 {
				return nil, fmt.Errorf("scenario: churn phase %d has negative writes", i)
			}
			if p.Writes == 0 && i != len(cfg.Phases)-1 {
				return nil, fmt.Errorf("scenario: churn phase %d has zero writes but is not last", i)
			}
			sub, err := NewGroupSampler(p.Model)
			if err != nil {
				return nil, fmt.Errorf("churn phase %d: %w", i, err)
			}
			c.phases = append(c.phases, churnPhase{writes: p.Writes, sampler: sub})
		}
		return c, nil
	default:
		return nil, fmt.Errorf("scenario: unknown group kind %q", cfg.Kind)
	}
}

type rosterGroup []int

func (r rosterGroup) Sample(_ *rand.Rand, buf []int) []int { return append(buf[:0], r...) }

func (r rosterGroup) K() int { return len(r) }

// kofnGroup draws k distinct pool indices by partial Fisher–Yates: k swaps
// over a persistent index array, consuming exactly k rng draws per sample
// and allocating nothing. The drawn indices are sorted, mapped through
// base, and prefixed with the fixed roots.
type kofnGroup struct {
	k, n, base int
	root       []int
	idx        []int
}

func (s *kofnGroup) Sample(rng *rand.Rand, buf []int) []int {
	need := len(s.root) + s.k
	if cap(buf) < need {
		buf = make([]int, need)
	}
	buf = buf[:need]
	copy(buf, s.root)
	members := buf[len(s.root):]
	for i := 0; i < s.k; i++ {
		j := i + rng.Intn(s.n-i)
		s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
		members[i] = s.idx[i]
	}
	sort.Ints(members)
	if s.base != 0 {
		for i := range members {
			members[i] += s.base
		}
	}
	return buf
}

func (s *kofnGroup) K() int { return len(s.root) + s.k }

type churnPhase struct {
	writes  int
	sampler GroupSampler
}

type churnGroup struct {
	phases []churnPhase
	phase  int
	drawn  int
}

func (c *churnGroup) Sample(rng *rand.Rand, buf []int) []int {
	for c.phase < len(c.phases)-1 {
		p := c.phases[c.phase]
		if p.writes == 0 || c.drawn < p.writes {
			break
		}
		c.phase++
		c.drawn = 0
	}
	c.drawn++
	return c.phases[c.phase].sampler.Sample(rng, buf)
}

func (c *churnGroup) K() int {
	k := 0
	for _, p := range c.phases {
		if pk := p.sampler.K(); pk > k {
			k = pk
		}
	}
	return k
}

// EnumerateGroups lists every distinct group the model can produce, in a
// stable order: the fixed roster, the lexicographic k-of-n combinations
// (the Cosmos replay pre-creates all of them, "off the critical path" as
// the paper does), or the concatenated, deduplicated phase enumerations.
// It returns nil when the model space exceeds limit — the replayer then
// falls back to creating only the groups the stream actually uses.
func EnumerateGroups(cfg GroupConfig, limit int) [][]int {
	switch cfg.Kind {
	case GroupRoster:
		return [][]int{append([]int(nil), cfg.Members...)}
	case GroupKofN:
		if Binomial(cfg.N, cfg.K) > limit {
			return nil
		}
		var out [][]int
		comb := make([]int, cfg.K)
		for i := range comb {
			comb[i] = i
		}
		for {
			g := append([]int(nil), cfg.Root...)
			for _, v := range comb {
				g = append(g, v+cfg.Base)
			}
			out = append(out, g)
			// Advance to the next lexicographic combination.
			i := cfg.K - 1
			for i >= 0 && comb[i] == cfg.N-cfg.K+i {
				i--
			}
			if i < 0 {
				return out
			}
			comb[i]++
			for j := i + 1; j < cfg.K; j++ {
				comb[j] = comb[j-1] + 1
			}
		}
	case GroupChurn:
		var out [][]int
		seen := make(map[string]bool)
		for _, p := range cfg.Phases {
			sub := EnumerateGroups(p.Model, limit)
			if sub == nil {
				return nil
			}
			for _, g := range sub {
				key := fmt.Sprint(g)
				if !seen[key] {
					seen[key] = true
					out = append(out, g)
				}
			}
			if len(out) > limit {
				return nil
			}
		}
		return out
	default:
		return nil
	}
}

// Binomial returns C(n, k), saturating at math.MaxInt on overflow.
func Binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1
	for i := 1; i <= k; i++ {
		if out > math.MaxInt/(n-k+i) {
			return math.MaxInt
		}
		out = out * (n - k + i) / i
	}
	return out
}

// CombinationRank returns the zero-based lexicographic rank of the sorted
// k-subset g of [0, n) — the closed-form inverse of the enumeration order
// EnumerateGroups produces. Each position contributes a hockey-stick sum
// of the combinations skipped below it:
//
//	rank += C(n-prev-1, k-i) - C(n-g[i], k-i)
//
// so the whole rank costs O(k) binomials instead of an O(C(n,k)) scan. It
// returns -1 for anything that is not a strictly increasing subset of
// [0, n).
func CombinationRank(g []int, n int) int {
	k := len(g)
	rank := 0
	prev := -1
	for i, v := range g {
		if v <= prev || v >= n {
			return -1
		}
		rank += Binomial(n-prev-1, k-i) - Binomial(n-v, k-i)
		prev = v
	}
	return rank
}
