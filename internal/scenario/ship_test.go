package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateShipped = flag.Bool("update-scenarios", false,
	"rewrite the shipped scenarios/ directory from the library")

// shippedDir is the repository's scenarios/ directory, relative to this
// package.
const shippedDir = "../../scenarios"

// TestShippedConfigsMatchLibrary pins the scenarios/ directory to the
// library: every shipped JSON file is byte-for-byte the Marshal of its
// library config and loads back to the identical value. Regenerate with
// `go test ./internal/scenario -update-scenarios` after changing the
// library.
func TestShippedConfigsMatchLibrary(t *testing.T) {
	lib := Library()
	if *updateShipped {
		if err := os.MkdirAll(shippedDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range LibraryNames() {
		cfg, ok := lib[name]
		if !ok {
			t.Fatalf("library has no config %q", name)
		}
		want, err := cfg.Marshal()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		path := filepath.Join(shippedDir, name+".json")
		if *updateShipped {
			if err := os.WriteFile(path, want, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v — run `go test ./internal/scenario -update-scenarios`", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: shipped file differs from the library config — run `go test ./internal/scenario -update-scenarios`", path)
		}
		loaded, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: load: %v", path, err)
		}
		if !reflect.DeepEqual(loaded, cfg) {
			t.Errorf("%s: loaded config differs from the library value", path)
		}
	}
}
