// Package scenario is the workload DSL: a declarative, seed-deterministic
// description of a replication workload — arrival process, object-size
// distribution, group-membership model, tenant mix, and failure schedule —
// compiled into a replayable event stream.
//
// A Config is plain data (JSON-serializable); Compile turns it into the
// exact sequence of write events a replayer issues. Determinism is the
// package contract: the same Config and Seed always compile to a
// byte-identical stream, on every platform, because every random draw comes
// from one math/rand.Rand in a fixed per-event order (arrival, tenant,
// size, group). The bench harness replays streams on the simulated fabric,
// the chaos harness consumes the failure schedule, and the golden harness
// pins both the stream and the resulting experiment rows.
//
// The legacy trace.Cosmos generator is one canned Config (see Cosmos); its
// samplers live here so the equivalence is by construction, not by luck.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Arrival kinds.
const (
	// ArrivalClosed issues the next write when an outstanding slot frees
	// (closed loop with Concurrency outstanding writes).
	ArrivalClosed = "closed"
	// ArrivalPoisson issues writes at exponentially distributed intervals
	// (open loop at RatePerSec).
	ArrivalPoisson = "poisson"
	// ArrivalPaced issues write i at virtual time i·SpacingSec. A zero
	// spacing submits everything up front (a burst); the chaos harness
	// treats zero as "calibrate from a rehearsal", as its scenarios do.
	ArrivalPaced = "paced"
)

// Arrival selects the arrival process.
type Arrival struct {
	Kind string `json:"kind"`
	// Concurrency bounds outstanding writes (ArrivalClosed). Zero selects 1.
	Concurrency int `json:"concurrency,omitempty"`
	// RatePerSec is the open-loop arrival rate (ArrivalPoisson).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// SpacingSec is the fixed inter-arrival gap (ArrivalPaced).
	SpacingSec float64 `json:"spacing_sec,omitempty"`
}

// Size kinds.
const (
	// SizeFixed draws the same size every time.
	SizeFixed = "fixed"
	// SizeLognormal draws from the log-normal the paper calibrates to the
	// Cosmos trace statistics (median/mean parameterization).
	SizeLognormal = "lognormal"
	// SizeBuckets draws from an empirical weighted bucket list.
	SizeBuckets = "buckets"
)

// SizeBucket is one empirical size point with a relative weight.
type SizeBucket struct {
	Bytes  int     `json:"bytes"`
	Weight float64 `json:"weight"`
}

// SizeConfig selects the object-size distribution.
type SizeConfig struct {
	Kind string `json:"kind"`
	// Bytes is the fixed size (SizeFixed).
	Bytes int `json:"bytes,omitempty"`
	// MedianBytes and MeanBytes shape the log-normal (SizeLognormal):
	// median = e^µ, mean = e^(µ+σ²/2).
	MedianBytes float64 `json:"median_bytes,omitempty"`
	MeanBytes   float64 `json:"mean_bytes,omitempty"`
	// MinBytes and MaxBytes clamp log-normal draws. Zero selects 256 B and
	// 512 MiB, the trace defaults.
	MinBytes int `json:"min_bytes,omitempty"`
	MaxBytes int `json:"max_bytes,omitempty"`
	// Buckets is the empirical distribution (SizeBuckets).
	Buckets []SizeBucket `json:"buckets,omitempty"`
}

// Group kinds.
const (
	// GroupRoster uses the same fixed member list for every write.
	GroupRoster = "roster"
	// GroupKofN draws K distinct members from the pool [0, N) per write —
	// overlapping random groups, the Cosmos pattern.
	GroupKofN = "kofn"
	// GroupChurn switches between models on a write-count schedule.
	GroupChurn = "churn"
)

// GroupPhase is one step of a churn schedule.
type GroupPhase struct {
	// Writes is how many writes this phase covers; zero means "the rest".
	Writes int `json:"writes,omitempty"`
	// Model is the membership model active during the phase.
	Model GroupConfig `json:"model"`
}

// GroupConfig selects the group-membership model. Member indices are node
// ids in [0, Config.Nodes).
type GroupConfig struct {
	Kind string `json:"kind"`
	// Members is the fixed roster (GroupRoster); Members[0] is the root.
	Members []int `json:"members,omitempty"`
	// K distinct members are drawn from the pool [0, N) (GroupKofN).
	K int `json:"k,omitempty"`
	N int `json:"n,omitempty"`
	// Base is added to every drawn pool index, mapping pool slots to node
	// ids (the Cosmos replay maps pool 0..14 to nodes 1..15 with Base 1).
	Base int `json:"base,omitempty"`
	// Root is prepended to every drawn group — the fixed sender(s), e.g.
	// the Cosmos generator node. Root[0] is the root when present;
	// otherwise the lowest drawn member is.
	Root []int `json:"root,omitempty"`
	// Phases is the churn schedule (GroupChurn).
	Phases []GroupPhase `json:"phases,omitempty"`
}

// Tenant is one workload class in a mixed-tenant scenario. A write picks
// its tenant by Weight, then draws from the tenant's size and group models
// (nil models inherit the scenario-level ones).
type Tenant struct {
	Name   string       `json:"name"`
	Weight float64      `json:"weight"`
	Sizes  *SizeConfig  `json:"sizes,omitempty"`
	Groups *GroupConfig `json:"groups,omitempty"`
	// QoSWeight is the tenant's weighted-fair share of each node's send
	// budget when the replay throttles (Replay.ThrottleBytes > 0); zero
	// selects 1. Replay-only: Compile never reads it, so adding a QoS
	// weight to an existing scenario leaves its stream byte-identical.
	QoSWeight int `json:"qos_weight,omitempty"`
}

// Fault kinds (the chaos harness executes these; see internal/chaos).
const (
	// FaultCrash fails one node.
	FaultCrash = "crash"
	// FaultPartition cuts the last RackSize nodes off from the rest.
	FaultPartition = "partition"
)

// Fault is one declarative failure event, scheduled as a fraction of the
// fault-free baseline runtime (the chaos harness calibrates the baseline
// with a rehearsal run).
type Fault struct {
	Kind string `json:"kind"`
	// AtFraction fires the fault at this fraction of the baseline runtime.
	AtFraction float64 `json:"at_fraction"`
	// Node is the crashed node (FaultCrash).
	Node int `json:"node,omitempty"`
	// RackSize is the partitioned tail size (FaultPartition).
	RackSize int `json:"rack_size,omitempty"`
	// HealAfterFraction, when positive, restores partitioned links this
	// fraction of the baseline runtime after the cut.
	HealAfterFraction float64 `json:"heal_after_fraction,omitempty"`
}

// CrossFlow is one foreign bulk-traffic source: Streams looping transfers
// from one node to another, each re-issuing Chunk-sized transfers back to
// back from StartSec until the virtual clock passes StopSec. The flows ride
// the replay fabric's fluid model, so they contend with the multicast for
// NIC ports and TOR trunks exactly as a co-located tenant would — the
// workload the adaptive schedule exists to route around.
type CrossFlow struct {
	From int `json:"from"`
	To   int `json:"to"`
	// Streams is how many parallel looping streams to run (default 1).
	Streams int `json:"streams,omitempty"`
	// ChunkBytes is the per-transfer size (default 8 MiB).
	ChunkBytes int `json:"chunk_bytes,omitempty"`
	// StartSec and StopSec bound the traffic in virtual time. StopSec is
	// required: an unbounded stream would keep the event loop alive forever.
	StartSec float64 `json:"start_sec,omitempty"`
	StopSec  float64 `json:"stop_sec"`
}

// Fabric overlays a lossy WAN path model on the replay cluster: a
// per-region RTT matrix replacing the model's uniform latency, seeded
// per-frame loss on cross-region paths, and bounded reordering (the replay
// builds a simnet.FabricProfile from it). Any loss or reordering requires
// Reliab — the bare engine rides break-on-loss queue pairs, so the first
// drop would fail the group. Replay-only: the compiled stream is
// byte-identical with or without a fabric stanza.
type Fabric struct {
	// Seed fixes the loss and reorder draws; zero derives it from the
	// scenario seed.
	Seed int64 `json:"seed,omitempty"`
	// Regions assigns node i to region Regions[i]; empty places every node
	// in region 0. When present it must cover all Nodes.
	Regions []int `json:"regions,omitempty"`
	// RTTMs is the square region-by-region round-trip matrix in
	// milliseconds; the diagonal holds the intra-region RTT. Empty keeps the
	// cluster model's uniform latency.
	RTTMs [][]float64 `json:"rtt_ms,omitempty"`
	// LossRate is the per-frame drop probability on cross-region paths,
	// in [0,1).
	LossRate float64 `json:"loss_rate,omitempty"`
	// ReorderRate is the probability a frame is held back long enough for
	// later frames to overtake it, in [0,1).
	ReorderRate float64 `json:"reorder_rate,omitempty"`
	// Reliab wraps every node's NIC in the selective-retransmit
	// reliability layer, absorbing loss and reordering as retransmissions.
	Reliab bool `json:"reliab,omitempty"`
	// FECGroup, when positive, adds one XOR parity frame per FECGroup data
	// frames so single losses repair without a retransmission. Requires
	// Reliab.
	FECGroup int `json:"fec_group,omitempty"`
	// RTOMs is the reliability layer's initial retransmission timeout in
	// milliseconds; zero keeps the layer default. Requires Reliab.
	RTOMs float64 `json:"rto_ms,omitempty"`
}

// Replay tells the bench CLI how to run the scenario: which cluster model,
// block size, schedule algorithms, and windows. It shapes the replay, not
// the compiled stream.
type Replay struct {
	// Cluster names the hardware model: "fractus" (default), "sierra",
	// "stampede", or "apt".
	Cluster string `json:"cluster,omitempty"`
	// BlockBytes is the RDMC block size. Zero selects 1 MiB.
	BlockBytes int `json:"block_bytes,omitempty"`
	// Algorithms lists schedule algorithms by name ("sequential send",
	// "binomial pipeline", ...). Empty selects the binomial pipeline.
	Algorithms []string `json:"algorithms,omitempty"`
	// SendWindow and RecvWindow pin the data-plane windows; zero keeps the
	// engine default (the paper experiments pin 1 on the fluid model).
	SendWindow int `json:"send_window,omitempty"`
	RecvWindow int `json:"recv_window,omitempty"`
	// QuickWrites caps Writes at quick scale; zero keeps Writes.
	QuickWrites int `json:"quick_writes,omitempty"`
	// ThrottleBytes, for mixed-tenant scenarios, is each node's send
	// budget: how many bytes of block payload all its groups together may
	// hold in flight, drained weighted-fair across tenants by QoSWeight.
	// Zero replays unthrottled. Replay-only: the compiled stream is
	// identical either way.
	ThrottleBytes int `json:"throttle_bytes,omitempty"`
	// Fabric, when non-nil, overlays the lossy WAN path model on the
	// cluster; nil replays on the model's lossless datacenter fabric.
	Fabric *Fabric `json:"fabric,omitempty"`
}

// Config is one complete scenario. The zero-value subfields select the
// documented defaults; Validate reports anything unusable.
type Config struct {
	// Name identifies the scenario in reports and golden files.
	Name string `json:"name"`
	// Seed fixes every random draw.
	Seed int64 `json:"seed"`
	// Nodes is the cluster size the stream's member indices address.
	Nodes int `json:"nodes"`
	// Writes is the stream length.
	Writes int `json:"writes"`

	Arrival Arrival     `json:"arrival"`
	Sizes   SizeConfig  `json:"sizes"`
	Groups  GroupConfig `json:"groups"`
	// Tenants, when non-empty, mixes workload classes; Sizes/Groups above
	// become the defaults tenants inherit.
	Tenants []Tenant `json:"tenants,omitempty"`
	// Faults is the failure schedule (executed by the chaos harness).
	Faults []Fault `json:"faults,omitempty"`
	// Epilogue is how many liveness messages the surviving root publishes
	// after recovery (fault scenarios only).
	Epilogue int `json:"epilogue,omitempty"`
	// CrossTraffic runs foreign bulk flows alongside the stream, contending
	// with the multicast on the replay fabric.
	CrossTraffic []CrossFlow `json:"cross_traffic,omitempty"`

	Replay Replay `json:"replay,omitempty"`
}

// Validate reports the first problem that would make the scenario
// uncompilable or unreplayable.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if c.Nodes <= 0 {
		return fmt.Errorf("scenario %s: nodes must be positive, got %d", c.Name, c.Nodes)
	}
	if c.Writes <= 0 {
		return fmt.Errorf("scenario %s: writes must be positive, got %d", c.Name, c.Writes)
	}
	switch c.Arrival.Kind {
	case ArrivalClosed, ArrivalPaced:
	case ArrivalPoisson:
		if c.Arrival.RatePerSec <= 0 {
			return fmt.Errorf("scenario %s: poisson arrival needs rate_per_sec > 0", c.Name)
		}
	default:
		return fmt.Errorf("scenario %s: unknown arrival kind %q", c.Name, c.Arrival.Kind)
	}
	if len(c.Tenants) == 0 {
		if err := c.validateModels(c.Sizes, c.Groups); err != nil {
			return err
		}
	}
	if c.Replay.ThrottleBytes < 0 {
		return fmt.Errorf("scenario %s: throttle_bytes must be non-negative, got %d", c.Name, c.Replay.ThrottleBytes)
	}
	if err := c.validateFabric(); err != nil {
		return err
	}
	for _, t := range c.Tenants {
		if t.Name == "" {
			return fmt.Errorf("scenario %s: tenant missing name", c.Name)
		}
		if t.Weight <= 0 {
			return fmt.Errorf("scenario %s: tenant %s weight must be positive", c.Name, t.Name)
		}
		if t.QoSWeight < 0 {
			return fmt.Errorf("scenario %s: tenant %s qos_weight must be non-negative, got %d", c.Name, t.Name, t.QoSWeight)
		}
		sizes, groups := c.Sizes, c.Groups
		if t.Sizes != nil {
			sizes = *t.Sizes
		}
		if t.Groups != nil {
			groups = *t.Groups
		}
		if err := c.validateModels(sizes, groups); err != nil {
			return fmt.Errorf("tenant %s: %w", t.Name, err)
		}
	}
	for i, f := range c.Faults {
		switch f.Kind {
		case FaultCrash:
			if f.Node < 0 || f.Node >= c.Nodes {
				return fmt.Errorf("scenario %s: fault %d crashes node %d outside [0,%d)", c.Name, i, f.Node, c.Nodes)
			}
		case FaultPartition:
			if f.RackSize <= 0 || f.RackSize >= c.Nodes {
				return fmt.Errorf("scenario %s: fault %d partitions %d of %d nodes", c.Name, i, f.RackSize, c.Nodes)
			}
		default:
			return fmt.Errorf("scenario %s: unknown fault kind %q", c.Name, f.Kind)
		}
		if f.AtFraction <= 0 {
			return fmt.Errorf("scenario %s: fault %d fires at fraction %g, want > 0", c.Name, i, f.AtFraction)
		}
	}
	for i, ct := range c.CrossTraffic {
		if ct.From < 0 || ct.From >= c.Nodes || ct.To < 0 || ct.To >= c.Nodes {
			return fmt.Errorf("scenario %s: cross flow %d endpoints %d->%d outside [0,%d)", c.Name, i, ct.From, ct.To, c.Nodes)
		}
		if ct.From == ct.To {
			return fmt.Errorf("scenario %s: cross flow %d loops node %d onto itself", c.Name, i, ct.From)
		}
		if ct.Streams < 0 {
			return fmt.Errorf("scenario %s: cross flow %d streams must be non-negative, got %d", c.Name, i, ct.Streams)
		}
		if ct.ChunkBytes < 0 {
			return fmt.Errorf("scenario %s: cross flow %d chunk_bytes must be non-negative, got %d", c.Name, i, ct.ChunkBytes)
		}
		if ct.StartSec < 0 {
			return fmt.Errorf("scenario %s: cross flow %d start_sec must be non-negative, got %g", c.Name, i, ct.StartSec)
		}
		if ct.StopSec <= ct.StartSec {
			return fmt.Errorf("scenario %s: cross flow %d needs stop_sec > start_sec to terminate", c.Name, i)
		}
	}
	return nil
}

// validateFabric checks the replay's WAN overlay: rates in range, a
// region assignment that covers every node, a square non-negative RTT
// matrix covering every assigned region, and the reliability layer wherever
// the fabric can actually drop or reorder a frame — a lossy replay without
// it would break queue pairs, not test loss tolerance.
func (c Config) validateFabric() error {
	f := c.Replay.Fabric
	if f == nil {
		return nil
	}
	if f.LossRate < 0 || f.LossRate >= 1 {
		return fmt.Errorf("scenario %s: fabric loss_rate %g outside [0,1)", c.Name, f.LossRate)
	}
	if f.ReorderRate < 0 || f.ReorderRate >= 1 {
		return fmt.Errorf("scenario %s: fabric reorder_rate %g outside [0,1)", c.Name, f.ReorderRate)
	}
	if len(f.Regions) > 0 && len(f.Regions) != c.Nodes {
		return fmt.Errorf("scenario %s: fabric regions assigns %d of %d nodes", c.Name, len(f.Regions), c.Nodes)
	}
	maxRegion := 0
	for i, r := range f.Regions {
		if r < 0 {
			return fmt.Errorf("scenario %s: fabric node %d has negative region %d", c.Name, i, r)
		}
		if r > maxRegion {
			maxRegion = r
		}
	}
	if len(f.RTTMs) > 0 {
		if len(f.RTTMs) <= maxRegion {
			return fmt.Errorf("scenario %s: fabric rtt_ms covers %d regions, nodes use %d", c.Name, len(f.RTTMs), maxRegion+1)
		}
		for a, row := range f.RTTMs {
			if len(row) != len(f.RTTMs) {
				return fmt.Errorf("scenario %s: fabric rtt_ms row %d has %d cells, want %d", c.Name, a, len(row), len(f.RTTMs))
			}
			for b, rtt := range row {
				if rtt < 0 {
					return fmt.Errorf("scenario %s: fabric rtt_ms[%d][%d] is negative", c.Name, a, b)
				}
			}
		}
	}
	if (f.LossRate > 0 || f.ReorderRate > 0) && !f.Reliab {
		return fmt.Errorf("scenario %s: fabric drops or reorders frames, which breaks bare queue pairs — set reliab: true", c.Name)
	}
	if f.FECGroup < 0 {
		return fmt.Errorf("scenario %s: fabric fec_group must be non-negative, got %d", c.Name, f.FECGroup)
	}
	if f.FECGroup > 0 && !f.Reliab {
		return fmt.Errorf("scenario %s: fabric fec_group needs the reliability layer — set reliab: true", c.Name)
	}
	if f.RTOMs < 0 {
		return fmt.Errorf("scenario %s: fabric rto_ms must be non-negative, got %g", c.Name, f.RTOMs)
	}
	if f.RTOMs > 0 && !f.Reliab {
		return fmt.Errorf("scenario %s: fabric rto_ms configures the reliability layer — set reliab: true", c.Name)
	}
	return nil
}

func (c Config) validateModels(sizes SizeConfig, groups GroupConfig) error {
	if _, err := NewSizeSampler(sizes); err != nil {
		return fmt.Errorf("scenario %s: %w", c.Name, err)
	}
	if _, err := NewGroupSampler(groups); err != nil {
		return fmt.Errorf("scenario %s: %w", c.Name, err)
	}
	return c.checkGroupRange(groups)
}

func (c Config) checkGroupRange(g GroupConfig) error {
	switch g.Kind {
	case GroupRoster:
		for _, m := range g.Members {
			if m < 0 || m >= c.Nodes {
				return fmt.Errorf("scenario %s: roster member %d outside [0,%d)", c.Name, m, c.Nodes)
			}
		}
	case GroupKofN:
		if hi := g.Base + g.N - 1; hi >= c.Nodes || g.Base < 0 {
			return fmt.Errorf("scenario %s: kofn pool [%d,%d] outside [0,%d)", c.Name, g.Base, hi, c.Nodes)
		}
		for _, r := range g.Root {
			if r < 0 || r >= c.Nodes {
				return fmt.Errorf("scenario %s: kofn root %d outside [0,%d)", c.Name, r, c.Nodes)
			}
		}
	case GroupChurn:
		for _, p := range g.Phases {
			if err := c.checkGroupRange(p.Model); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load reads and validates one scenario config. Unknown fields are errors,
// so a typo in a hand-written file fails loudly instead of silently
// selecting a default.
func Load(r io.Reader) (Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// LoadFile reads and validates a scenario config file.
func LoadFile(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	cfg, err := Load(f)
	if err != nil {
		return Config{}, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

// Marshal renders the config as the canonical indented JSON the shipped
// scenario files use.
func (c Config) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario %s: marshal: %w", c.Name, err)
	}
	return append(data, '\n'), nil
}
