package trace

import (
	"testing"

	"rdmc/internal/scenario"
)

// TestScenarioCosmosMatchesTrace pins the tentpole equivalence: the canned
// scenario.Cosmos() config compiles to the seed-for-seed identical stream
// this package's generator draws. Scenario events carry node ids (the
// generator node 0 plus pool index + 1); the raw trace carries pool
// indices — the mapping is the Base/Root translation and nothing else.
func TestScenarioCosmosMatchesTrace(t *testing.T) {
	cfg := scenario.Cosmos()
	gen, err := NewCosmos(CosmosConfig{}, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := scenario.Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf []int
	for _, ev := range stream.Events {
		w := gen.NextInto(buf)
		buf = w.Group
		if ev.Size != w.Size {
			t.Fatalf("event %d: size %d, trace drew %d", ev.Seq, ev.Size, w.Size)
		}
		if len(ev.Group) != len(w.Group)+1 || ev.Group[0] != 0 {
			t.Fatalf("event %d: group %v, trace drew %v", ev.Seq, ev.Group, w.Group)
		}
		for j, m := range w.Group {
			if ev.Group[j+1] != m+1 {
				t.Fatalf("event %d: group %v, trace drew %v", ev.Seq, ev.Group, w.Group)
			}
		}
	}
}
