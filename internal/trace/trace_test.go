package trace

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCosmosDefaultsMatchPaperStatistics(t *testing.T) {
	gen, err := NewCosmos(CosmosConfig{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200_000
	sizes := make([]float64, n)
	var sum float64
	for i := range sizes {
		w := gen.Next()
		sizes[i] = float64(w.Size)
		sum += sizes[i]
	}
	sort.Float64s(sizes)
	median := sizes[n/2]
	mean := sum / n

	// The paper: median 12 MB, mean 29 MB. Clamping shaves the extreme
	// tail, so allow ±15% on the mean and ±5% on the median.
	if math.Abs(median-12<<20)/(12<<20) > 0.05 {
		t.Errorf("median = %.1f MiB, want ≈12 MiB", median/(1<<20))
	}
	if math.Abs(mean-29<<20)/(29<<20) > 0.15 {
		t.Errorf("mean = %.1f MiB, want ≈29 MiB", mean/(1<<20))
	}
	// "Hundreds of bytes to hundreds of MB".
	if sizes[0] < 256 || sizes[n-1] > 512<<20 {
		t.Errorf("size range [%v, %v] outside clamp", sizes[0], sizes[n-1])
	}
	if sizes[0] >= 100<<10 {
		t.Errorf("smallest of %d draws is %v — tail too thin", n, sizes[0])
	}
	if sizes[n-1] <= 100<<20 {
		t.Errorf("largest of %d draws is %v — tail too thin", n, sizes[n-1])
	}
}

func TestCosmosGroupsAre455SortedTriples(t *testing.T) {
	gen, err := NewCosmos(CosmosConfig{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	groups := gen.Groups()
	if len(groups) != 455 { // C(15,3)
		t.Fatalf("groups = %d, want 455", len(groups))
	}
	seen := make(map[[3]int]bool)
	for _, g := range groups {
		if !(g[0] < g[1] && g[1] < g[2]) {
			t.Fatalf("group %v not strictly sorted", g)
		}
		if seen[g] {
			t.Fatalf("duplicate group %v", g)
		}
		seen[g] = true
	}
}

func TestCosmosGroupIndexRoundTrips(t *testing.T) {
	gen, err := NewCosmos(CosmosConfig{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range gen.Groups() {
		if got := gen.GroupIndex(g); got != i {
			t.Fatalf("GroupIndex(%v) = %d, want %d", g, got, i)
		}
	}
	if gen.GroupIndex([3]int{0, 0, 0}) != -1 {
		t.Error("invalid triple did not map to -1")
	}
}

func TestCosmosWritesTargetValidGroups(t *testing.T) {
	gen, err := NewCosmos(CosmosConfig{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(uint8) bool {
		w := gen.Next()
		return w.Group[0] >= 0 && w.Group[0] < w.Group[1] &&
			w.Group[1] < w.Group[2] && w.Group[2] < 15 &&
			w.Size >= 256 && w.Size <= 512<<20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCosmosDeterministicBySeed(t *testing.T) {
	a, _ := NewCosmos(CosmosConfig{}, 11)
	b, _ := NewCosmos(CosmosConfig{}, 11)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestCosmosConfigValidation(t *testing.T) {
	if _, err := NewCosmos(CosmosConfig{Replicas: 2}, 1); err == nil {
		t.Error("non-3 replica count accepted")
	}
	if _, err := NewCosmos(CosmosConfig{Pool: 2, Replicas: 3}, 1); err == nil {
		t.Error("pool smaller than replicas accepted")
	}
	if _, err := NewCosmos(CosmosConfig{MedianBytes: 10, MeanBytes: 5}, 1); err == nil {
		t.Error("mean below median accepted")
	}
}
