package trace

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCosmosDefaultsMatchPaperStatistics(t *testing.T) {
	gen, err := NewCosmos(CosmosConfig{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200_000
	sizes := make([]float64, n)
	var sum float64
	var buf []int
	for i := range sizes {
		w := gen.NextInto(buf)
		buf = w.Group
		sizes[i] = float64(w.Size)
		sum += sizes[i]
	}
	sort.Float64s(sizes)
	median := sizes[n/2]
	mean := sum / n

	// The paper: median 12 MB, mean 29 MB. Clamping shaves the extreme
	// tail, so allow ±15% on the mean and ±5% on the median.
	if math.Abs(median-12<<20)/(12<<20) > 0.05 {
		t.Errorf("median = %.1f MiB, want ≈12 MiB", median/(1<<20))
	}
	if math.Abs(mean-29<<20)/(29<<20) > 0.15 {
		t.Errorf("mean = %.1f MiB, want ≈29 MiB", mean/(1<<20))
	}
	// "Hundreds of bytes to hundreds of MB".
	if sizes[0] < 256 || sizes[n-1] > 512<<20 {
		t.Errorf("size range [%v, %v] outside clamp", sizes[0], sizes[n-1])
	}
	if sizes[0] >= 100<<10 {
		t.Errorf("smallest of %d draws is %v — tail too thin", n, sizes[0])
	}
	if sizes[n-1] <= 100<<20 {
		t.Errorf("largest of %d draws is %v — tail too thin", n, sizes[n-1])
	}
}

func TestCosmosGroupsAre455SortedTriples(t *testing.T) {
	gen, err := NewCosmos(CosmosConfig{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	groups := gen.Groups()
	if len(groups) != 455 { // C(15,3)
		t.Fatalf("groups = %d, want 455", len(groups))
	}
	seen := make(map[[3]int]bool)
	for _, g := range groups {
		if len(g) != 3 {
			t.Fatalf("group %v is not a triple", g)
		}
		if !(g[0] < g[1] && g[1] < g[2]) {
			t.Fatalf("group %v not strictly sorted", g)
		}
		key := [3]int{g[0], g[1], g[2]}
		if seen[key] {
			t.Fatalf("duplicate group %v", g)
		}
		seen[key] = true
	}
}

func TestCosmosGroupIndexRoundTrips(t *testing.T) {
	gen, err := NewCosmos(CosmosConfig{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range gen.Groups() {
		if got := gen.GroupIndex(g); got != i {
			t.Fatalf("GroupIndex(%v) = %d, want %d", g, got, i)
		}
	}
	for _, bad := range [][]int{
		{0, 0, 0},    // repeated
		{2, 1, 0},    // unsorted
		{0, 1, 15},   // out of pool
		{0, 1},       // wrong arity
		{0, 1, 2, 3}, // wrong arity
		{-1, 1, 2},   // negative
	} {
		if got := gen.GroupIndex(bad); got != -1 {
			t.Errorf("GroupIndex(%v) = %d, want -1", bad, got)
		}
	}
}

// TestCosmosGroupIndexMatchesScanAllK pins the closed-form combinatorial
// rank against a brute-force enumeration scan across replica counts — the
// k-of-n generalization the scenario engine relies on.
func TestCosmosGroupIndexMatchesScanAllK(t *testing.T) {
	for _, tc := range []struct{ pool, k int }{
		{15, 3}, {15, 1}, {8, 2}, {10, 4}, {6, 6}, {12, 5},
	} {
		gen, err := NewCosmos(CosmosConfig{Pool: tc.pool, Replicas: tc.k}, 1)
		if err != nil {
			t.Fatalf("pool %d k %d: %v", tc.pool, tc.k, err)
		}
		groups := gen.Groups()
		for i, g := range groups {
			if got := gen.GroupIndex(g); got != i {
				t.Fatalf("pool %d k %d: GroupIndex(%v) = %d, want %d", tc.pool, tc.k, g, got, i)
			}
		}
	}
}

func TestCosmosWritesTargetValidGroups(t *testing.T) {
	gen, err := NewCosmos(CosmosConfig{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(uint8) bool {
		w := gen.Next()
		return len(w.Group) == 3 &&
			w.Group[0] >= 0 && w.Group[0] < w.Group[1] &&
			w.Group[1] < w.Group[2] && w.Group[2] < 15 &&
			w.Size >= 256 && w.Size <= 512<<20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCosmosKofNWrites(t *testing.T) {
	gen, err := NewCosmos(CosmosConfig{Pool: 9, Replicas: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		w := gen.Next()
		if len(w.Group) != 5 {
			t.Fatalf("write %d: group %v, want 5 members", i, w.Group)
		}
		for j := 1; j < len(w.Group); j++ {
			if w.Group[j-1] >= w.Group[j] {
				t.Fatalf("write %d: group %v not strictly sorted", i, w.Group)
			}
		}
		if w.Group[0] < 0 || w.Group[len(w.Group)-1] >= 9 {
			t.Fatalf("write %d: group %v outside pool", i, w.Group)
		}
	}
}

func TestCosmosDeterministicBySeed(t *testing.T) {
	a, _ := NewCosmos(CosmosConfig{}, 11)
	b, _ := NewCosmos(CosmosConfig{}, 11)
	var bufA []int
	for i := 0; i < 100; i++ {
		wa := a.NextInto(bufA)
		wb := b.Next()
		bufA = wa.Group
		if wa.Size != wb.Size {
			t.Fatalf("write %d: sizes %d vs %d", i, wa.Size, wb.Size)
		}
		if len(wa.Group) != len(wb.Group) {
			t.Fatalf("write %d: groups %v vs %v", i, wa.Group, wb.Group)
		}
		for j := range wa.Group {
			if wa.Group[j] != wb.Group[j] {
				t.Fatalf("write %d: groups %v vs %v", i, wa.Group, wb.Group)
			}
		}
	}
}

func TestCosmosConfigValidation(t *testing.T) {
	if _, err := NewCosmos(CosmosConfig{Pool: 2, Replicas: 3}, 1); err == nil {
		t.Error("pool smaller than replicas accepted")
	}
	if _, err := NewCosmos(CosmosConfig{Replicas: -1}, 1); err == nil {
		t.Error("negative replica count accepted")
	}
	if _, err := NewCosmos(CosmosConfig{MedianBytes: 10, MeanBytes: 5}, 1); err == nil {
		t.Error("mean below median accepted")
	}
	// The old 3-only restriction is lifted: k-of-n configs are valid.
	if _, err := NewCosmos(CosmosConfig{Pool: 10, Replicas: 2}, 1); err != nil {
		t.Errorf("2-of-10 rejected: %v", err)
	}
}

func TestCosmosNextIntoAllocationFree(t *testing.T) {
	gen, err := NewCosmos(CosmosConfig{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int, 3)
	allocs := testing.AllocsPerRun(1000, func() {
		w := gen.NextInto(buf)
		buf = w.Group
	})
	if allocs != 0 {
		t.Errorf("NextInto allocates %.1f objects per write, want 0", allocs)
	}
}

// BenchmarkCosmosNextInto measures the post-refactor draw path: partial
// Fisher–Yates group sampling into a reused buffer.
func BenchmarkCosmosNextInto(b *testing.B) {
	gen, err := NewCosmos(CosmosConfig{}, 5)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]int, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := gen.NextInto(buf)
		buf = w.Group
	}
}

// BenchmarkCosmosNextLegacyPerm replays the pre-refactor draw: a full
// rand.Perm(Pool) allocated per write — the before side of the
// before/after comparison.
func BenchmarkCosmosNextLegacyPerm(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rng.NormFloat64() // size draw
		perm := rng.Perm(15)[:3]
		sort.Ints(perm)
	}
}

// BenchmarkGroupIndexRank measures the closed-form combinatorial rank.
func BenchmarkGroupIndexRank(b *testing.B) {
	gen, _ := NewCosmos(CosmosConfig{}, 1)
	g := []int{7, 11, 14} // near the end of the enumeration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if gen.GroupIndex(g) < 0 {
			b.Fatal("rank failed")
		}
	}
}

// BenchmarkGroupIndexLegacyScan replays the pre-refactor O(C(n,3))
// enumeration scan the rank replaced.
func BenchmarkGroupIndexLegacyScan(b *testing.B) {
	g := [3]int{7, 11, 14}
	scan := func(g [3]int) int {
		idx := 0
		for a := 0; a < 15; a++ {
			for c := a + 1; c < 15; c++ {
				for d := c + 1; d < 15; d++ {
					if g == [3]int{a, c, d} {
						return idx
					}
					idx++
				}
			}
		}
		return -1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if scan(g) < 0 {
			b.Fatal("scan failed")
		}
	}
}
