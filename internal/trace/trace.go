// Package trace generates the synthetic replication workload used for the
// paper's Figure 9. The original experiment replays "a trace sampled from
// the data replication layer of Microsoft's Cosmos system"; the trace itself
// is proprietary, so this generator is calibrated to every statistic the
// paper publishes about it:
//
//   - several million 3-node writes with random target nodes out of a
//     15-node replica pool (one further node generates the traffic);
//   - object sizes "varying from hundreds of bytes to hundreds of MB", with
//     a median of 12 MB and a mean of 29 MB — matched here by a log-normal
//     size distribution (µ = ln 12 MiB, σ = ln(29/12)·√2 ≈ 1.33) clamped to
//     [256 B, 512 MiB];
//   - many transfers with overlapping target groups (all 455 possible
//     3-of-15 groups are pre-created, as in the paper).
//
// The substitution preserves what Figure 9 actually measures: the latency
// distribution of concurrent, size-skewed, group-overlapping replication.
//
// The generator is one canned instance of the scenario engine: its size and
// group draws are internal/scenario samplers, so scenario.Cosmos() compiles
// to the seed-for-seed identical stream (pinned by test). New workloads
// should be scenario configs; this package remains the paper-calibrated
// default and the k-of-n sampling it popularized.
package trace

import (
	"fmt"
	"math/rand"

	"rdmc/internal/scenario"
)

// Write is one replication operation: an object of Size bytes copied to the
// member nodes of Group (sorted indices into the replica pool).
type Write struct {
	// Size is the object size in bytes.
	Size int
	// Group is the sorted target-node set, Replicas long.
	Group []int
}

// CosmosConfig parameterizes the generator. The zero value of each field
// selects the paper-calibrated default.
type CosmosConfig struct {
	// Pool is the number of replica nodes; zero selects 15.
	Pool int
	// Replicas is the targets per write; zero selects 3 (the paper's
	// value). Any 1 ≤ Replicas ≤ Pool is accepted, so the scenario engine
	// can express k-of-n groups.
	Replicas int
	// MedianBytes and MeanBytes shape the log-normal size distribution;
	// zero selects 12 MiB and 29 MiB.
	MedianBytes float64
	MeanBytes   float64
	// MinBytes and MaxBytes clamp sizes; zero selects 256 B and 512 MiB.
	MinBytes int
	MaxBytes int
}

func (c CosmosConfig) withDefaults() CosmosConfig {
	if c.Pool == 0 {
		c.Pool = 15
	}
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.MedianBytes == 0 {
		c.MedianBytes = 12 << 20
	}
	if c.MeanBytes == 0 {
		c.MeanBytes = 29 << 20
	}
	if c.MinBytes == 0 {
		c.MinBytes = 256
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = 512 << 20
	}
	return c
}

// Cosmos is a deterministic generator of Cosmos-like writes.
type Cosmos struct {
	cfg    CosmosConfig
	rng    *rand.Rand
	sizes  scenario.SizeSampler
	groups scenario.GroupSampler
}

// NewCosmos builds a generator with the given seed.
func NewCosmos(cfg CosmosConfig, seed int64) (*Cosmos, error) {
	cfg = cfg.withDefaults()
	switch {
	case cfg.Replicas < 1:
		return nil, fmt.Errorf("trace: replica count %d must be positive", cfg.Replicas)
	case cfg.Pool < cfg.Replicas:
		return nil, fmt.Errorf("trace: pool %d smaller than replica count %d", cfg.Pool, cfg.Replicas)
	}
	sizes, err := scenario.NewSizeSampler(scenario.SizeConfig{
		Kind:        scenario.SizeLognormal,
		MedianBytes: cfg.MedianBytes,
		MeanBytes:   cfg.MeanBytes,
		MinBytes:    cfg.MinBytes,
		MaxBytes:    cfg.MaxBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	groups, err := scenario.NewGroupSampler(scenario.GroupConfig{
		Kind: scenario.GroupKofN,
		K:    cfg.Replicas,
		N:    cfg.Pool,
	})
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &Cosmos{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(seed)),
		sizes:  sizes,
		groups: groups,
	}, nil
}

// Next returns the next write in the trace. The returned Group is freshly
// allocated; the replay loops that draw millions of writes use NextInto.
func (c *Cosmos) Next() Write {
	return c.NextInto(nil)
}

// NextInto returns the next write, drawing the group into buf (grown if
// needed). With a reused buffer the default 3-of-15 path allocates
// nothing: the size draw is pure arithmetic and the group draw is a
// partial Fisher–Yates over a persistent index array — Replicas swaps and
// Replicas rng draws, not a full Perm(Pool).
func (c *Cosmos) NextInto(buf []int) Write {
	size := c.sizes.Sample(c.rng)
	return Write{Size: size, Group: c.groups.Sample(c.rng, buf)}
}

// Groups enumerates every possible sorted replica set in the pool, in
// lexicographic order (the paper pre-creates all 455 for the 3-of-15
// case).
func (c *Cosmos) Groups() [][]int {
	return scenario.EnumerateGroups(scenario.GroupConfig{
		Kind: scenario.GroupKofN,
		K:    c.cfg.Replicas,
		N:    c.cfg.Pool,
	}, scenario.Binomial(c.cfg.Pool, c.cfg.Replicas))
}

// GroupIndex returns a dense index for a sorted replica set, matching the
// order produced by Groups — the closed-form combinatorial rank, O(k)
// binomials instead of the old O(C(n,k)) enumeration scan. Invalid sets
// (unsorted, repeated, or out-of-pool members) map to -1.
func (c *Cosmos) GroupIndex(g []int) int {
	if len(g) != c.cfg.Replicas {
		return -1
	}
	return scenario.CombinationRank(g, c.cfg.Pool)
}
