// Package trace generates the synthetic replication workload used for the
// paper's Figure 9. The original experiment replays "a trace sampled from
// the data replication layer of Microsoft's Cosmos system"; the trace itself
// is proprietary, so this generator is calibrated to every statistic the
// paper publishes about it:
//
//   - several million 3-node writes with random target nodes out of a
//     15-node replica pool (one further node generates the traffic);
//   - object sizes "varying from hundreds of bytes to hundreds of MB", with
//     a median of 12 MB and a mean of 29 MB — matched here by a log-normal
//     size distribution (µ = ln 12 MiB, σ = ln(29/12)·√2 ≈ 1.33) clamped to
//     [256 B, 512 MiB];
//   - many transfers with overlapping target groups (all 455 possible
//     3-of-15 groups are pre-created, as in the paper).
//
// The substitution preserves what Figure 9 actually measures: the latency
// distribution of concurrent, size-skewed, group-overlapping replication.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Write is one replication operation: an object of Size bytes copied to the
// member nodes of Group (indices into the replica pool).
type Write struct {
	// Size is the object size in bytes.
	Size int
	// Group is the sorted target-node triple.
	Group [3]int
}

// CosmosConfig parameterizes the generator. The zero value of each field
// selects the paper-calibrated default.
type CosmosConfig struct {
	// Pool is the number of replica nodes; zero selects 15.
	Pool int
	// Replicas is the targets per write; zero selects 3.
	Replicas int
	// MedianBytes and MeanBytes shape the log-normal size distribution;
	// zero selects 12 MiB and 29 MiB.
	MedianBytes float64
	MeanBytes   float64
	// MinBytes and MaxBytes clamp sizes; zero selects 256 B and 512 MiB.
	MinBytes int
	MaxBytes int
}

func (c CosmosConfig) withDefaults() CosmosConfig {
	if c.Pool == 0 {
		c.Pool = 15
	}
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.MedianBytes == 0 {
		c.MedianBytes = 12 << 20
	}
	if c.MeanBytes == 0 {
		c.MeanBytes = 29 << 20
	}
	if c.MinBytes == 0 {
		c.MinBytes = 256
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = 512 << 20
	}
	return c
}

// Cosmos is a deterministic generator of Cosmos-like writes.
type Cosmos struct {
	cfg   CosmosConfig
	rng   *rand.Rand
	mu    float64
	sigma float64
}

// NewCosmos builds a generator with the given seed.
func NewCosmos(cfg CosmosConfig, seed int64) (*Cosmos, error) {
	cfg = cfg.withDefaults()
	switch {
	case cfg.Replicas != 3:
		return nil, fmt.Errorf("trace: writes are 3-node in the paper; got %d replicas", cfg.Replicas)
	case cfg.Pool < cfg.Replicas:
		return nil, fmt.Errorf("trace: pool %d smaller than replica count %d", cfg.Pool, cfg.Replicas)
	case cfg.MeanBytes <= cfg.MedianBytes:
		return nil, fmt.Errorf("trace: mean %g must exceed median %g for a log-normal", cfg.MeanBytes, cfg.MedianBytes)
	}
	// For log-normal, median = e^µ and mean = e^(µ+σ²/2).
	mu := math.Log(cfg.MedianBytes)
	sigma := math.Sqrt(2 * math.Log(cfg.MeanBytes/cfg.MedianBytes))
	return &Cosmos{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
		mu:    mu,
		sigma: sigma,
	}, nil
}

// Next returns the next write in the trace.
func (c *Cosmos) Next() Write {
	size := int(math.Exp(c.mu + c.sigma*c.rng.NormFloat64()))
	if size < c.cfg.MinBytes {
		size = c.cfg.MinBytes
	}
	if size > c.cfg.MaxBytes {
		size = c.cfg.MaxBytes
	}
	var g [3]int
	perm := c.rng.Perm(c.cfg.Pool)[:3]
	sort.Ints(perm)
	copy(g[:], perm)
	return Write{Size: size, Group: g}
}

// Groups enumerates every possible sorted replica triple in the pool (the
// paper pre-creates all 455 for the 15-node case).
func (c *Cosmos) Groups() [][3]int {
	var out [][3]int
	n := c.cfg.Pool
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for d := b + 1; d < n; d++ {
				out = append(out, [3]int{a, b, d})
			}
		}
	}
	return out
}

// GroupIndex returns a dense index for a sorted triple, matching the order
// produced by Groups.
func (c *Cosmos) GroupIndex(g [3]int) int {
	n := c.cfg.Pool
	idx := 0
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for d := b + 1; d < n; d++ {
				if g == [3]int{a, b, d} {
					return idx
				}
				idx++
			}
		}
	}
	return -1
}
