// Package reliab wraps any rdma.Provider with software selective-repeat
// reliability, turning the interface's break-on-loss contract into a
// lose-one-frame/retransmit-one-frame contract on fabrics that drop packets.
//
// RDMC inherits RDMA RC semantics: a lost block exhausts NIC retries and the
// whole session surfaces StatusBroken — the right trade on a lossless
// datacenter fabric and the wrong one everywhere else. IRN ("Revisiting
// Network Support for RDMA") showed selective repeat beats go-back-N/break
// once loss is real, and SDR-RDMA argues reliability should be software-
// defined per path. This package is that layer for the repository's
// providers: sequence-numbered frames, a receiver SACK bitmap, retransmission
// timeouts with exponential backoff and jitter, a bounded retransmit buffer,
// and optional systematic XOR parity (FEC) so a high-BDP path can repair a
// single loss per group without waiting a round trip.
//
// The wrapper is opt-in per queue pair (Config.Protect) and transparent to
// callers: PostSend/PostRecv/completions keep the rdma contract, including
// FIFO delivery (the receiver reassembles in sequence order) and the
// posted-buffer ownership rule — the wrapper stages its own copy of every
// protected payload, which is also the retransmit buffer, so the caller's
// buffer is returned at send-completion time as usual. A caller send
// completion means "accepted and scheduled for reliable delivery" (like a TCP
// write), not yet "delivered"; endpoint failure still surfaces StatusBroken.
// One-sided writes pass through unprotected: RDMC uses them only for
// receiver-ready signalling on the reliable bootstrap path.
//
// Protected queue pairs speak frames (16-byte header + payload; see
// protocol.go), so both ends of a connection must wrap with the same
// configuration. On metadata-only transports (simnic with nil-Data buffers)
// frames carry a real header and a simulated payload length; on real-byte
// transports (tcpnic, shmnic) the frame is one contiguous copy.
package reliab

import (
	"math/rand"
	"sync"
	"time"

	"rdmc/internal/rdma"
)

// TimerFunc schedules fn after d seconds and returns a cancel function. The
// default runs on the wall clock; simulations inject virtual time.
type TimerFunc func(d float64, fn func()) (cancel func())

func wallTimer(d float64, fn func()) func() {
	t := time.AfterFunc(time.Duration(d*float64(time.Second)), fn)
	return func() { t.Stop() }
}

// Config tunes the reliability layer. The zero value selects the defaults
// noted on each field.
type Config struct {
	// Window bounds the retransmit buffer: at most this many unacknowledged
	// data frames are on the wire per queue pair; further sends park in
	// sequence order until the cumulative ack advances. Default 32.
	Window int
	// RTO is the initial retransmission timeout in seconds; it doubles per
	// expiry (plus seeded jitter) up to MaxRTO and resets when the cumulative
	// ack advances. Defaults 0.2 and 2.
	RTO    float64
	MaxRTO float64
	// FECGroup, when positive, emits one systematic XOR parity frame per
	// this many data frames, letting the receiver repair any single loss per
	// group without waiting for a retransmission. Zero disables FEC.
	FECGroup int
	// FECFlush is the idle timeout in seconds after which a partial parity
	// group is flushed, covering message tails. Default RTO/2.
	FECFlush float64
	// MaxPayload sizes the wrapper's pre-posted receive pool; protected
	// frames whose real payload exceeds it break the connection. Metadata-
	// only payloads (nil Data) are unconstrained. Default 64 KiB.
	MaxPayload int
	// Seed fixes the RTO jitter draws. Default 1.
	Seed int64
	// Timer is the timeout scheduler; nil selects the wall clock.
	Timer TimerFunc
	// Protect selects which queue pairs get reliability; nil protects every
	// pair except self-connections. Unprotected pairs pass through verbatim.
	Protect func(peer rdma.NodeID, token uint64) bool
	// DropFn, when non-nil, is consulted for every data-frame transmission
	// (retransmit reports re-sends) and returning true makes the receiver
	// discard that copy on arrival — deterministic loss injection for tests
	// on transports whose own fabric never drops.
	DropFn func(seq uint32, retransmit bool) bool
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.RTO <= 0 {
		c.RTO = 0.2
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 2
	}
	if c.FECFlush <= 0 {
		c.FECFlush = c.RTO / 2
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = 64 << 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timer == nil {
		c.Timer = wallTimer
	}
	return c
}

// Stats counts the layer's work across all protected queue pairs of one
// provider. Retransmit* against Data* is the headline recovery-overhead
// ratio; Recovered counts losses FEC repaired without a retransmission.
type Stats struct {
	DataFrames      uint64
	DataBytes       uint64
	Retransmits     uint64
	RetransmitBytes uint64
	AcksSent        uint64
	AcksReceived    uint64
	ParityFrames    uint64
	ParityBytes     uint64
	Recovered       uint64
	DupFrames       uint64
	InjectedDrops   uint64
}

// Add accumulates o into s, for aggregating counters across a deployment's
// providers.
func (s *Stats) Add(o Stats) {
	s.DataFrames += o.DataFrames
	s.DataBytes += o.DataBytes
	s.Retransmits += o.Retransmits
	s.RetransmitBytes += o.RetransmitBytes
	s.AcksSent += o.AcksSent
	s.AcksReceived += o.AcksReceived
	s.ParityFrames += o.ParityFrames
	s.ParityBytes += o.ParityBytes
	s.Recovered += o.Recovered
	s.DupFrames += o.DupFrames
	s.InjectedDrops += o.InjectedDrops
}

// frameBuf is one wire frame owned by the wrapper: real bytes (header, and
// payload when real bytes move) plus the wire length charged to the fabric,
// which exceeds len(data) exactly when the payload is metadata-only.
type frameBuf struct {
	data    []byte
	wireLen int
}

func (f frameBuf) buffer() rdma.Buffer { return rdma.Buffer{Data: f.data, Len: f.wireLen} }

type qpKey struct {
	peer  rdma.NodeID
	token uint64
}

// Provider wraps an inner rdma.Provider with selective-repeat reliability on
// protected queue pairs. Wrap it once per node, before creating queue pairs.
type Provider struct {
	inner rdma.Provider
	cfg   Config

	mu         sync.Mutex
	qps        map[qpKey]*queuePair
	handler    func(rdma.Completion)
	batch      func([]rdma.Completion)
	queue      []rdma.Completion
	delivering bool
	wrSeq      uint64
	rng        *rand.Rand
	stats      Stats
	closed     bool
}

var (
	_ rdma.Provider      = (*Provider)(nil)
	_ rdma.BatchProvider = (*Provider)(nil)
)

// Wrap layers reliability over inner. The wrapper installs itself as inner's
// completion consumer, so it must be created before any completion handler or
// queue pair is set up on inner, and the caller must route all posts through
// the wrapper from then on.
func Wrap(inner rdma.Provider, cfg Config) *Provider {
	p := &Provider{
		inner: inner,
		cfg:   cfg.withDefaults(),
		qps:   make(map[qpKey]*queuePair),
	}
	p.rng = rand.New(rand.NewSource(p.cfg.Seed))
	if bp, ok := inner.(rdma.BatchProvider); ok {
		bp.SetBatchHandler(p.onInnerBatch)
	} else {
		inner.SetHandler(func(c rdma.Completion) { p.onInnerBatch([]rdma.Completion{c}) })
	}
	return p
}

// Stats returns a snapshot of the layer's counters.
func (p *Provider) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// NodeID implements rdma.Provider.
func (p *Provider) NodeID() rdma.NodeID { return p.inner.NodeID() }

// SetHandler implements rdma.Provider.
func (p *Provider) SetHandler(h func(rdma.Completion)) {
	p.mu.Lock()
	p.handler, p.batch = h, nil
	p.mu.Unlock()
}

// SetBatchHandler implements rdma.BatchProvider.
func (p *Provider) SetBatchHandler(h func([]rdma.Completion)) {
	p.mu.Lock()
	p.batch, p.handler = h, nil
	p.mu.Unlock()
}

// RegisterRegion implements rdma.Provider (pass-through).
func (p *Provider) RegisterRegion(id rdma.RegionID, buf []byte) error {
	return p.inner.RegisterRegion(id, buf)
}

// Region implements rdma.Provider (pass-through).
func (p *Provider) Region(id rdma.RegionID) []byte { return p.inner.Region(id) }

// WatchRegion implements rdma.Provider (pass-through).
func (p *Provider) WatchRegion(id rdma.RegionID, fn func(offset, length int)) error {
	return p.inner.WatchRegion(id, fn)
}

// Close implements rdma.Provider: protected pairs fail their outstanding
// caller work, then the inner provider is released.
func (p *Provider) Close() error {
	p.mu.Lock()
	p.closed = true
	for _, qp := range p.qps {
		qp.breakLocked()
	}
	p.mu.Unlock()
	p.dispatch()
	return p.inner.Close()
}

// Connect implements rdma.Provider. Protected pairs (per Config.Protect;
// self-connections never) get the reliability layer; others are returned as
// the inner provider created them, completions forwarded verbatim.
func (p *Provider) Connect(peer rdma.NodeID, token uint64) (rdma.QueuePair, error) {
	protect := peer != p.inner.NodeID() && (p.cfg.Protect == nil || p.cfg.Protect(peer, token))
	inner, err := p.inner.Connect(peer, token)
	if err != nil {
		return nil, err
	}
	if !protect {
		return inner, nil
	}
	qp := &queuePair{
		p:        p,
		inner:    inner,
		peer:     peer,
		token:    token,
		send:     newSendWindow(),
		recv:     newRecvWindow(p.cfg.FECGroup),
		sendRefs: make(map[uint64]*sendEntry),
		recvRefs: make(map[uint64][]byte),
	}
	if p.cfg.FECGroup > 0 {
		qp.fec = &fecAccum{k: p.cfg.FECGroup}
	}
	qp.rto = p.cfg.RTO
	p.mu.Lock()
	if p.qps[qpKey{peer, token}] != nil {
		p.mu.Unlock()
		_ = inner.Close()
		return nil, rdma.ErrBroken
	}
	p.qps[qpKey{peer, token}] = qp
	// Pre-post the inner receive pool: data + acks + parity in flight.
	var posts []post
	for i := 0; i < 2*p.cfg.Window+8; i++ {
		buf := make([]byte, headerSize+8+p.cfg.MaxPayload)
		posts = append(posts, post{qp: qp, recvBuf: buf, wrID: qp.newRecvRefLocked(buf)})
	}
	p.mu.Unlock()
	runPosts(posts)
	return qp, nil
}

// dispatch drains queued caller completions serially, outside the provider
// lock so handlers can re-enter (post more work) without deadlocking —
// the same single-consumer discipline nicbase's completion queue gives raw
// providers.
func (p *Provider) dispatch() {
	p.mu.Lock()
	if p.delivering {
		p.mu.Unlock()
		return
	}
	p.delivering = true
	for len(p.queue) > 0 {
		batch := p.queue
		p.queue = nil
		h, bh := p.handler, p.batch
		p.mu.Unlock()
		if bh != nil {
			bh(batch)
		} else if h != nil {
			for _, c := range batch {
				h(c)
			}
		}
		p.mu.Lock()
	}
	p.delivering = false
	p.mu.Unlock()
}

// post is one deferred inner-provider action, executed outside the wrapper
// lock (inner posts may block on transport queues whose drain needs the
// wrapper's completion path).
type post struct {
	qp      *queuePair
	send    rdma.Buffer // send when Data/Len set…
	recvBuf []byte      // …receive repost when set
	wrID    uint64
}

func runPosts(posts []post) {
	for _, a := range posts {
		var err error
		if a.recvBuf != nil {
			err = a.qp.inner.PostRecv(rdma.MakeBuffer(a.recvBuf), a.wrID)
		} else {
			err = a.qp.inner.PostSend(a.send, 0, a.wrID)
		}
		if err != nil {
			a.qp.breakNow()
		}
	}
}

// onInnerBatch consumes the inner provider's completion stream: completions
// for protected pairs drive the protocol; everything else (unprotected pairs,
// one-sided writes) is forwarded to the caller untouched, in order.
func (p *Provider) onInnerBatch(cs []rdma.Completion) {
	var posts []post
	p.mu.Lock()
	for _, c := range cs {
		qp := p.qps[qpKey{c.Peer, c.Token}]
		if qp == nil || c.Op == rdma.OpWrite {
			p.queue = append(p.queue, c)
			continue
		}
		qp.onInnerLocked(c, &posts)
	}
	p.mu.Unlock()
	runPosts(posts)
	p.dispatch()
}
