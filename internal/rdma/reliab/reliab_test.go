package reliab

import (
	"fmt"
	"testing"

	"rdmc/internal/rdma"
	"rdmc/internal/rdma/simnic"
	"rdmc/internal/simnet"
)

// testNet builds a 2-node, 2-region WAN cluster with loss-tolerant simulated
// NICs wrapped in the reliability layer, timers on virtual time.
func testNet(t *testing.T, loss float64, cfg Config) (*simnet.Sim, *simnet.Cluster, []*Provider, []*[]rdma.Completion) {
	t.Helper()
	sim := simnet.NewSim(1)
	cluster, err := simnet.NewCluster(sim, simnet.ClusterConfig{
		Nodes:         2,
		LinkBandwidth: 1e6,
		Latency:       0.001,
		CPU:           simnet.CPUConfig{Mode: simnet.ModePolling},
		RetryTimeout:  0.01,
		Fabric: &simnet.FabricProfile{
			Seed:     5,
			Regions:  []int{0, 1},
			RTT:      [][]float64{{0.001, 0.020}, {0.020, 0.001}},
			LossRate: loss,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	net := simnic.NewNetwork(cluster)
	net.SetTolerant(true)
	cfg.Timer = func(d float64, fn func()) func() {
		ev := sim.After(d, fn)
		return ev.Cancel
	}
	if cfg.RTO == 0 {
		cfg.RTO = 0.06
	}
	if cfg.MaxPayload == 0 {
		cfg.MaxPayload = 4096
	}
	providers := make([]*Provider, 2)
	logs := make([]*[]rdma.Completion, 2)
	for i := range providers {
		providers[i] = Wrap(net.Provider(rdma.NodeID(i)), cfg)
		log := &[]rdma.Completion{}
		logs[i] = log
		providers[i].SetHandler(func(c rdma.Completion) { *log = append(*log, c) })
	}
	return sim, cluster, providers, logs
}

func connectPair(t *testing.T, a, b *Provider, token uint64) (rdma.QueuePair, rdma.QueuePair) {
	t.Helper()
	qa, err := a.Connect(b.NodeID(), token)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := b.Connect(a.NodeID(), token)
	if err != nil {
		t.Fatal(err)
	}
	return qa, qb
}

func TestLosslessPassthrough(t *testing.T) {
	sim, _, ps, logs := testNet(t, 0, Config{})
	qa, qb := connectPair(t, ps[0], ps[1], 1)
	payload := []byte("reliable delivery")
	recvBuf := make([]byte, 64)
	if err := qb.PostRecv(rdma.MakeBuffer(recvBuf), 10); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.MakeBuffer(payload), 0xbeef, 20); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	sends, recvs := *logs[0], *logs[1]
	if len(sends) != 1 || sends[0].Op != rdma.OpSend || sends[0].WRID != 20 || sends[0].Bytes != len(payload) {
		t.Fatalf("sender completions = %+v", sends)
	}
	if len(recvs) != 1 {
		t.Fatalf("receiver completions = %+v", recvs)
	}
	r := recvs[0]
	if r.Imm != 0xbeef || r.WRID != 10 || r.Bytes != len(payload) || string(r.Data) != string(payload) {
		t.Errorf("recv completion = %+v data=%q", r, r.Data)
	}
	if st := ps[0].Stats(); st.Retransmits != 0 || st.DataFrames != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// sweep posts n frames A→B and returns the receiver's imm sequence.
func sweep(t *testing.T, sim *simnet.Sim, qa, qb rdma.QueuePair, logs []*[]rdma.Completion, n int) []uint32 {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := qb.PostRecv(rdma.SizeBuffer(1000), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := qa.PostSend(rdma.SizeBuffer(1000), uint32(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	return recvOrder(t, logs)
}

// sweepPaced is sweep with the sends staggered in virtual time. The fluid-flow
// fabric completes equal concurrent flows at the same instant, which bunches
// SACK arrivals; pacing keeps per-frame feedback realistic for the tests that
// assert fine-grained recovery behaviour (e.g. parity repair beating fast
// retransmit).
func sweepPaced(t *testing.T, sim *simnet.Sim, qa, qb rdma.QueuePair, logs []*[]rdma.Completion, n int, gap float64) []uint32 {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := qb.PostRecv(rdma.SizeBuffer(1000), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		i := i
		sim.After(float64(i)*gap, func() {
			if err := qa.PostSend(rdma.SizeBuffer(1000), uint32(i), uint64(i)); err != nil {
				t.Errorf("PostSend %d: %v", i, err)
			}
		})
	}
	sim.Run()
	return recvOrder(t, logs)
}

func recvOrder(t *testing.T, logs []*[]rdma.Completion) []uint32 {
	t.Helper()
	var order []uint32
	for _, c := range *logs[1] {
		if c.Op == rdma.OpRecv {
			if c.Status != rdma.StatusOK {
				t.Fatalf("recv completion %+v", c)
			}
			order = append(order, c.Imm)
		}
	}
	return order
}

func TestRetransmitDeliversEverythingExactlyOnceInOrder(t *testing.T) {
	const n = 200
	sim, _, ps, logs := testNet(t, 0.05, Config{})
	qa, qb := connectPair(t, ps[0], ps[1], 1)
	order := sweep(t, sim, qa, qb, logs, n)
	if len(order) != n {
		t.Fatalf("delivered %d of %d frames", len(order), n)
	}
	for i, imm := range order {
		if imm != uint32(i) {
			t.Fatalf("delivery %d carries imm %d: FIFO broken", i, imm)
		}
	}
	st := ps[0].Stats()
	if st.Retransmits == 0 {
		t.Error("5% loss produced no retransmissions")
	}
	if st.Retransmits > n/2 {
		t.Errorf("%d retransmits for %d frames at 5%% loss", st.Retransmits, n)
	}
}

func TestDropInjectionFastRetransmit(t *testing.T) {
	// Drop exactly seq 2's first transmission on an otherwise lossless wire:
	// SACKs for 3,4,5 trigger one fast retransmission, well before the RTO.
	cfg := Config{DropFn: func(seq uint32, retransmit bool) bool {
		return seq == 2 && !retransmit
	}}
	sim, _, ps, logs := testNet(t, 0, cfg)
	qa, qb := connectPair(t, ps[0], ps[1], 1)
	order := sweep(t, sim, qa, qb, logs, 8)
	if len(order) != 8 {
		t.Fatalf("delivered %d of 8 frames", len(order))
	}
	st := ps[0].Stats()
	if st.Retransmits != 1 {
		t.Errorf("retransmits = %d, want exactly 1 (fast)", st.Retransmits)
	}
	if st.InjectedDrops != 1 {
		t.Errorf("injected drops = %d", st.InjectedDrops)
	}
	if end := sim.Now(); end > 0.06 {
		t.Errorf("completed at %.3fs: fast retransmit should beat the %.2fs RTO", end, 0.06)
	}
}

func TestRTORecoversTailLoss(t *testing.T) {
	// Drop the last frame's first transmission: no later SACKs exist, so only
	// the retransmission timer can recover it.
	cfg := Config{DropFn: func(seq uint32, retransmit bool) bool {
		return seq == 5 && !retransmit
	}}
	sim, _, ps, logs := testNet(t, 0, cfg)
	qa, qb := connectPair(t, ps[0], ps[1], 1)
	order := sweep(t, sim, qa, qb, logs, 5)
	if len(order) != 5 {
		t.Fatalf("delivered %d of 5 frames", len(order))
	}
	if st := ps[0].Stats(); st.Retransmits != 1 {
		t.Errorf("retransmits = %d, want 1 (RTO)", st.Retransmits)
	}
	if end := sim.Now(); end < 0.06 {
		t.Errorf("completed at %.3fs, before the RTO could have fired", end)
	}
}

func TestFECRecoversWithoutRetransmit(t *testing.T) {
	cfg := Config{
		FECGroup: 4,
		DropFn: func(seq uint32, retransmit bool) bool {
			return seq == 3 && !retransmit
		},
	}
	sim, _, ps, logs := testNet(t, 0, cfg)
	qa, qb := connectPair(t, ps[0], ps[1], 1)
	order := sweepPaced(t, sim, qa, qb, logs, 8, 0.002)
	if len(order) != 8 {
		t.Fatalf("delivered %d of 8 frames", len(order))
	}
	st := ps[0].Stats()
	if st.Retransmits != 0 {
		t.Errorf("retransmits = %d, want 0: parity should repair the loss", st.Retransmits)
	}
	rst := ps[1].Stats()
	if rst.Recovered != 1 {
		t.Errorf("recovered = %d, want 1", rst.Recovered)
	}
	if st.ParityFrames != 2 {
		t.Errorf("parity frames = %d, want 2 (8 frames / group of 4)", st.ParityFrames)
	}
}

func TestFECFlushCoversTails(t *testing.T) {
	// 3 frames with a group of 4: the idle flush must emit partial parity,
	// and it must repair a lost tail frame without retransmission.
	cfg := Config{
		FECGroup: 4,
		FECFlush: 0.005,
		DropFn: func(seq uint32, retransmit bool) bool {
			return seq == 3 && !retransmit
		},
	}
	sim, _, ps, logs := testNet(t, 0, cfg)
	qa, qb := connectPair(t, ps[0], ps[1], 1)
	order := sweep(t, sim, qa, qb, logs, 3)
	if len(order) != 3 {
		t.Fatalf("delivered %d of 3 frames", len(order))
	}
	st := ps[0].Stats()
	if st.ParityFrames != 1 {
		t.Errorf("parity frames = %d, want 1 flushed partial group", st.ParityFrames)
	}
	if st.Retransmits != 0 {
		t.Errorf("retransmits = %d, want 0", st.Retransmits)
	}
	if ps[1].Stats().Recovered != 1 {
		t.Errorf("recovered = %d, want 1", ps[1].Stats().Recovered)
	}
}

func TestHighLossWithFECConverges(t *testing.T) {
	const n = 300
	sim, _, ps, logs := testNet(t, 0.1, Config{FECGroup: 8})
	qa, qb := connectPair(t, ps[0], ps[1], 1)
	order := sweep(t, sim, qa, qb, logs, n)
	if len(order) != n {
		t.Fatalf("delivered %d of %d frames", len(order), n)
	}
	for i, imm := range order {
		if imm != uint32(i) {
			t.Fatalf("delivery %d carries imm %d", i, imm)
		}
	}
	if ps[1].Stats().Recovered == 0 {
		t.Error("10% loss with FEC recovered nothing via parity")
	}
}

func TestWindowBoundParksAndDrains(t *testing.T) {
	const n = 100
	sim, _, ps, logs := testNet(t, 0, Config{Window: 4})
	qa, qb := connectPair(t, ps[0], ps[1], 1)
	order := sweep(t, sim, qa, qb, logs, n)
	if len(order) != n {
		t.Fatalf("delivered %d of %d frames through a 4-frame window", len(order), n)
	}
	for i, imm := range order {
		if imm != uint32(i) {
			t.Fatalf("delivery %d carries imm %d", i, imm)
		}
	}
}

func TestBreakStillSurfacesThroughReliability(t *testing.T) {
	sim, cluster, ps, logs := testNet(t, 0, Config{})
	qa, qb := connectPair(t, ps[0], ps[1], 1)
	if err := qb.PostRecv(rdma.SizeBuffer(100000), 1); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.SizeBuffer(100000), 0, 2); err != nil {
		t.Fatal(err)
	}
	sim.At(0.01, func() {
		cluster.BreakLink(0, 1)
		cluster.BreakLink(1, 0)
	})
	sim.Run()
	broken := func(log []rdma.Completion) bool {
		for _, c := range log {
			if c.Status == rdma.StatusBroken {
				return true
			}
		}
		return false
	}
	if !broken(*logs[0]) {
		t.Errorf("sender never saw StatusBroken: %+v", *logs[0])
	}
	if !broken(*logs[1]) {
		t.Errorf("receiver never saw StatusBroken: %+v", *logs[1])
	}
	if err := qa.PostSend(rdma.SizeBuffer(1), 0, 3); err != rdma.ErrBroken {
		t.Errorf("post after break: err = %v, want ErrBroken", err)
	}
}

func TestUnprotectedPairsPassThrough(t *testing.T) {
	cfg := Config{Protect: func(peer rdma.NodeID, token uint64) bool { return token != 9 }}
	sim, _, ps, logs := testNet(t, 0, cfg)
	qa, qb := connectPair(t, ps[0], ps[1], 9)
	if err := qb.PostRecv(rdma.SizeBuffer(10), 1); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.SizeBuffer(10), 5, 2); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	recvs := *logs[1]
	if len(recvs) != 1 || recvs[0].Imm != 5 {
		t.Fatalf("pass-through recv = %+v", recvs)
	}
	if st := ps[0].Stats(); st.DataFrames != 0 {
		t.Errorf("unprotected pair counted frames: %+v", st)
	}
}

func TestRealPayloadsSurviveLoss(t *testing.T) {
	const n = 50
	sim, _, ps, logs := testNet(t, 0.08, Config{FECGroup: 5})
	qa, qb := connectPair(t, ps[0], ps[1], 1)
	bufs := make([][]byte, n)
	for i := 0; i < n; i++ {
		bufs[i] = make([]byte, 32)
		if err := qb.PostRecv(rdma.MakeBuffer(bufs[i]), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := qa.PostSend(rdma.MakeBuffer([]byte(fmt.Sprintf("payload-%03d", i))), uint32(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	got := 0
	for _, c := range *logs[1] {
		if c.Op != rdma.OpRecv {
			continue
		}
		want := fmt.Sprintf("payload-%03d", c.Imm)
		if string(c.Data) != want {
			t.Fatalf("imm %d carried %q, want %q", c.Imm, c.Data, want)
		}
		got++
	}
	if got != n {
		t.Fatalf("delivered %d of %d payloads", got, n)
	}
}
