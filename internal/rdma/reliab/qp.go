package reliab

import "rdmc/internal/rdma"

// callerRecv is a receive the caller posted, waiting for the next in-order
// reassembled frame.
type callerRecv struct {
	buf  rdma.Buffer
	wrID uint64
}

// queuePair is one protected endpoint: the caller-facing rdma.QueuePair plus
// the sender and receiver halves of the selective-repeat protocol over the
// inner pair. All state is guarded by the provider's lock; inner posts happen
// outside it (see post).
type queuePair struct {
	p     *Provider
	inner rdma.QueuePair
	peer  rdma.NodeID
	token uint64

	send     *sendWindow
	parked   []*sendEntry // built and sequenced, waiting for window space
	recv     *recvWindow
	arrivals []*recvFrame // reassembled in-order frames with no posted receive
	recvQ    []callerRecv
	fec      *fecAccum

	rto       float64
	rtoCancel func()
	fecCancel func()

	sendRefs map[uint64]*sendEntry // inner send wrID → entry (nil for ack/parity/retransmit)
	recvRefs map[uint64][]byte     // inner recv wrID → pool buffer
	broken   bool
}

var _ rdma.QueuePair = (*queuePair)(nil)

// Peer implements rdma.QueuePair.
func (q *queuePair) Peer() rdma.NodeID { return q.peer }

// Token implements rdma.QueuePair.
func (q *queuePair) Token() uint64 { return q.token }

// Close implements rdma.QueuePair.
func (q *queuePair) Close() error {
	q.p.mu.Lock()
	q.breakLocked()
	q.p.mu.Unlock()
	q.p.dispatch()
	return q.inner.Close()
}

func (q *queuePair) postCheckLocked() error {
	if q.broken {
		return rdma.ErrBroken
	}
	if q.p.closed {
		return rdma.ErrClosed
	}
	if q.p.handler == nil && q.p.batch == nil {
		return rdma.ErrNoHandler
	}
	return nil
}

// PostSend implements rdma.QueuePair. The payload is copied into a wrapper-
// owned frame immediately — that copy is the retransmit buffer — so the
// caller's buffer obeys the standard ownership contract: lent until the send
// completion, free afterwards, even if the frame is still being repaired on
// the wire.
func (q *queuePair) PostSend(buf rdma.Buffer, imm uint32, wrID uint64) error {
	q.p.mu.Lock()
	if err := q.postCheckLocked(); err != nil {
		q.p.mu.Unlock()
		return err
	}
	seq := q.send.assign()
	e := &sendEntry{seq: seq, payloadLen: buf.Len, wrID: wrID, imm: imm}
	if buf.Data != nil {
		data := make([]byte, headerSize+buf.Len)
		putHeader(data, kindData, 0, seq, imm, uint32(buf.Len))
		copy(data[headerSize:], buf.Data[:buf.Len])
		e.frame = frameBuf{data: data, wireLen: len(data)}
	} else {
		hdr := make([]byte, headerSize)
		putHeader(hdr, kindData, 0, seq, imm, uint32(buf.Len))
		e.frame = frameBuf{data: hdr, wireLen: headerSize + buf.Len}
	}
	q.p.stats.DataFrames++
	q.p.stats.DataBytes += uint64(e.frame.wireLen)
	var posts []post
	if len(q.send.entries)+len(q.parked) >= q.p.cfg.Window || len(q.parked) > 0 {
		q.parked = append(q.parked, e)
	} else {
		q.launchLocked(e, &posts)
	}
	if q.fec != nil {
		q.fecAddLocked(e, &posts)
	}
	q.armRTOLocked()
	q.p.mu.Unlock()
	runPosts(posts)
	return nil
}

// PostRecv implements rdma.QueuePair: it matches the oldest reassembled
// in-order frame, or queues until one arrives.
func (q *queuePair) PostRecv(buf rdma.Buffer, wrID uint64) error {
	q.p.mu.Lock()
	if err := q.postCheckLocked(); err != nil {
		q.p.mu.Unlock()
		return err
	}
	if len(q.arrivals) > 0 {
		f := q.arrivals[0]
		if f.data != nil && buf.Data != nil && len(buf.Data) < len(f.data) {
			q.breakLocked()
			q.p.mu.Unlock()
			q.p.dispatch()
			return rdma.ErrBufferTooSmall
		}
		q.arrivals = q.arrivals[1:]
		q.completeRecvLocked(callerRecv{buf: buf, wrID: wrID}, f)
		q.p.mu.Unlock()
		q.p.dispatch()
		return nil
	}
	q.recvQ = append(q.recvQ, callerRecv{buf: buf, wrID: wrID})
	q.p.mu.Unlock()
	return nil
}

// PostWrite implements rdma.QueuePair. One-sided writes pass through
// unprotected — RDMC uses them only for receiver-ready signalling, which
// rides the reliable bootstrap path — so their completions keep the caller's
// wrID and are forwarded verbatim.
func (q *queuePair) PostWrite(region rdma.RegionID, offset int, data []byte, wrID uint64) error {
	q.p.mu.Lock()
	err := q.postCheckLocked()
	q.p.mu.Unlock()
	if err != nil {
		return err
	}
	return q.inner.PostWrite(region, offset, data, wrID)
}

// launchLocked puts a sequenced entry on the wire for the first time.
func (q *queuePair) launchLocked(e *sendEntry, posts *[]post) {
	e.launched = true
	q.send.push(e)
	*posts = append(*posts, post{qp: q, send: q.injectLocked(e, false), wrID: q.newSendRefLocked(e)})
}

// retransmitLocked re-sends one frame.
func (q *queuePair) retransmitLocked(e *sendEntry, posts *[]post) {
	q.p.stats.Retransmits++
	q.p.stats.RetransmitBytes += uint64(e.frame.wireLen)
	*posts = append(*posts, post{qp: q, send: q.injectLocked(e, true), wrID: q.newSendRefLocked(nil)})
}

// injectLocked returns the wire buffer for one transmission of e, consulting
// the test DropFn per copy: the stored frame stays clean, and a doomed copy
// is a clone with the blackhole flag set so the flip cannot race an
// outstanding inner send of the shared bytes.
func (q *queuePair) injectLocked(e *sendEntry, retransmit bool) rdma.Buffer {
	fb := e.frame
	if q.p.cfg.DropFn != nil && q.p.cfg.DropFn(e.seq, retransmit) {
		data := append([]byte(nil), fb.data...)
		data[1] |= flagBlackhole
		fb = frameBuf{data: data, wireLen: fb.wireLen}
		q.p.stats.InjectedDrops++
	}
	return fb.buffer()
}

func (q *queuePair) newSendRefLocked(e *sendEntry) uint64 {
	q.p.wrSeq++
	q.sendRefs[q.p.wrSeq] = e
	return q.p.wrSeq
}

func (q *queuePair) newRecvRefLocked(buf []byte) uint64 {
	q.p.wrSeq++
	q.recvRefs[q.p.wrSeq] = buf
	return q.p.wrSeq
}

// fecAddLocked folds a data frame into the parity accumulator, emitting the
// group's parity frame when full and arming the idle flush for tails.
func (q *queuePair) fecAddLocked(e *sendEntry, posts *[]post) {
	if q.fec.add(e.seq, e.imm, e.payloadLen, frameBody(e.frame)) {
		q.flushParityLocked(posts)
		return
	}
	if q.fecCancel == nil {
		q.fecCancel = q.p.cfg.Timer(q.p.cfg.FECFlush, q.fecFlushFired)
	}
}

func frameBody(f frameBuf) []byte {
	if len(f.data) > headerSize {
		return f.data[headerSize:]
	}
	return nil
}

func (q *queuePair) flushParityLocked(posts *[]post) {
	if q.fecCancel != nil {
		q.fecCancel()
		q.fecCancel = nil
	}
	end, count, payload, simExtra := q.fec.flush()
	if count == 0 {
		return
	}
	data := make([]byte, headerSize+len(payload))
	putHeader(data, kindParity, 0, end, uint32(count), uint32(len(payload)))
	copy(data[headerSize:], payload)
	fb := frameBuf{data: data, wireLen: len(data) + simExtra}
	q.p.stats.ParityFrames++
	q.p.stats.ParityBytes += uint64(fb.wireLen)
	*posts = append(*posts, post{qp: q, send: fb.buffer(), wrID: q.newSendRefLocked(nil)})
}

func (q *queuePair) fecFlushFired() {
	var posts []post
	q.p.mu.Lock()
	q.fecCancel = nil
	if !q.broken {
		q.flushParityLocked(&posts)
	}
	q.p.mu.Unlock()
	runPosts(posts)
}

// armRTOLocked (re)arms the retransmission timer when unacknowledged frames
// exist; jitter desynchronizes flows sharing a loss event.
func (q *queuePair) armRTOLocked() {
	if q.rtoCancel != nil || len(q.send.entries) == 0 || q.broken {
		return
	}
	d := q.rto * (1 + 0.1*q.p.rng.Float64())
	q.rtoCancel = q.p.cfg.Timer(d, q.rtoFired)
}

func (q *queuePair) rtoFired() {
	var posts []post
	q.p.mu.Lock()
	q.rtoCancel = nil
	if !q.broken {
		if e := q.send.rtoEntry(); e != nil {
			q.retransmitLocked(e, &posts)
		}
		q.rto *= 2
		if q.rto > q.p.cfg.MaxRTO {
			q.rto = q.p.cfg.MaxRTO
		}
		q.armRTOLocked()
	}
	q.p.mu.Unlock()
	runPosts(posts)
}

// onInnerLocked consumes one inner completion for this pair.
func (q *queuePair) onInnerLocked(c rdma.Completion, posts *[]post) {
	if q.broken {
		return
	}
	switch c.Op {
	case rdma.OpSend:
		e := q.sendRefs[c.WRID]
		delete(q.sendRefs, c.WRID)
		if c.Status != rdma.StatusOK {
			q.breakLocked()
			return
		}
		if e != nil && !e.callerDone {
			e.callerDone = true
			q.p.queue = append(q.p.queue, rdma.Completion{
				Op:     rdma.OpSend,
				Status: rdma.StatusOK,
				Peer:   q.peer,
				Token:  q.token,
				WRID:   e.wrID,
				Bytes:  e.payloadLen,
			})
		}
	case rdma.OpRecv:
		buf := q.recvRefs[c.WRID]
		delete(q.recvRefs, c.WRID)
		if c.Status != rdma.StatusOK {
			q.breakLocked()
			return
		}
		q.onFrameLocked(c, posts)
		if buf != nil {
			*posts = append(*posts, post{qp: q, recvBuf: buf, wrID: q.newRecvRefLocked(buf)})
		}
	}
}

// onFrameLocked parses and processes one arriving wire frame.
func (q *queuePair) onFrameLocked(c rdma.Completion, posts *[]post) {
	if c.Bytes < headerSize || len(c.Data) < headerSize {
		q.breakLocked()
		return
	}
	h := parseHeader(c.Data)
	switch h.kind {
	case kindData:
		if h.flags&flagBlackhole != 0 {
			return // test-injected far-end drop: as if the fabric ate it
		}
		f := &recvFrame{seq: h.seq, imm: h.a, payloadLen: c.Bytes - headerSize}
		if len(c.Data) > headerSize {
			f.data = append([]byte(nil), c.Data[headerSize:]...)
		}
		q.onDataLocked(f)
		q.ackLocked(posts)
	case kindAck:
		q.p.stats.AcksReceived++
		q.onAckLocked(h.seq, uint64(h.a)|uint64(h.b)<<32, posts)
	case kindParity:
		payload := append([]byte(nil), c.Data[headerSize:]...)
		q.recv.addParity(h.seq, int(h.a), payload)
		if q.recoverLocked() {
			q.ackLocked(posts)
		}
	default:
		q.breakLocked()
	}
}

func (q *queuePair) onDataLocked(f *recvFrame) {
	deliver, dup := q.recv.process(f)
	if dup {
		q.p.stats.DupFrames++
		return
	}
	for _, d := range deliver {
		q.deliverLocked(d)
	}
	// A new arrival can turn a two-hole parity group into a one-hole one.
	q.recoverLocked()
}

// recoverLocked drains every FEC repair the receive window can make,
// feeding each reconstructed frame back through reassembly (which may in
// turn complete another group). Reports whether anything was recovered.
func (q *queuePair) recoverLocked() bool {
	recovered := false
	for f := q.recv.tryRecover(); f != nil; f = q.recv.tryRecover() {
		q.p.stats.Recovered++
		recovered = true
		deliver, _ := q.recv.process(f)
		for _, d := range deliver {
			q.deliverLocked(d)
		}
	}
	return recovered
}

// deliverLocked hands one in-order frame to the caller: matched against the
// oldest posted receive, or held until one is posted.
func (q *queuePair) deliverLocked(f *recvFrame) {
	if len(q.recvQ) == 0 {
		q.arrivals = append(q.arrivals, f)
		return
	}
	wr := q.recvQ[0]
	q.recvQ = q.recvQ[1:]
	q.completeRecvLocked(wr, f)
}

func (q *queuePair) completeRecvLocked(wr callerRecv, f *recvFrame) {
	c := rdma.Completion{
		Op:     rdma.OpRecv,
		Status: rdma.StatusOK,
		Peer:   q.peer,
		Token:  q.token,
		WRID:   wr.wrID,
		Imm:    f.imm,
		Bytes:  f.payloadLen,
	}
	if f.data != nil && wr.buf.Data != nil {
		if len(wr.buf.Data) < len(f.data) {
			q.breakLocked()
			return
		}
		copy(wr.buf.Data, f.data)
		c.Data = wr.buf.Data[:len(f.data)]
	}
	q.p.queue = append(q.p.queue, c)
}

// ackLocked emits the receiver's current cumulative + SACK state. Every data
// arrival (including duplicates) is acknowledged, so a lost ack can never
// strand the sender.
func (q *queuePair) ackLocked(posts *[]post) {
	hdr := make([]byte, headerSize)
	bits := q.recv.sackBits()
	putHeader(hdr, kindAck, 0, q.recv.cumAck, uint32(bits), uint32(bits>>32))
	q.p.stats.AcksSent++
	*posts = append(*posts, post{qp: q, send: frameBuf{data: hdr, wireLen: headerSize}.buffer(), wrID: q.newSendRefLocked(nil)})
}

// onAckLocked folds a SACK frame into the send window: fast retransmissions,
// RTO reset on progress, and unparking queued sends into freed window space.
func (q *queuePair) onAckLocked(cum uint32, sack uint64, posts *[]post) {
	fast, progressed := q.send.onAck(cum, sack)
	for _, e := range fast {
		q.retransmitLocked(e, posts)
	}
	if progressed {
		q.rto = q.p.cfg.RTO
		if q.rtoCancel != nil {
			q.rtoCancel()
			q.rtoCancel = nil
		}
		for len(q.parked) > 0 && len(q.send.entries) < q.p.cfg.Window {
			e := q.parked[0]
			q.parked = q.parked[1:]
			q.launchLocked(e, posts)
		}
		q.armRTOLocked()
	}
}

// breakNow is breakLocked plus its own locking and dispatch, for call sites
// outside the provider lock (failed inner posts).
func (q *queuePair) breakNow() {
	q.p.mu.Lock()
	q.breakLocked()
	q.p.mu.Unlock()
	q.p.dispatch()
}

// breakLocked fails the pair: every caller send not yet completed and every
// posted receive surfaces StatusBroken, in post order, matching the raw
// providers' break semantics. Reliability covers frame loss, not endpoint
// failure.
func (q *queuePair) breakLocked() {
	if q.broken {
		return
	}
	q.broken = true
	if q.rtoCancel != nil {
		q.rtoCancel()
		q.rtoCancel = nil
	}
	if q.fecCancel != nil {
		q.fecCancel()
		q.fecCancel = nil
	}
	fail := func(op rdma.OpType, wrID uint64) {
		q.p.queue = append(q.p.queue, rdma.Completion{
			Op:     op,
			Status: rdma.StatusBroken,
			Peer:   q.peer,
			Token:  q.token,
			WRID:   wrID,
		})
	}
	for _, e := range q.send.entries {
		if !e.callerDone {
			e.callerDone = true
			fail(rdma.OpSend, e.wrID)
		}
	}
	for _, e := range q.parked {
		if !e.callerDone {
			e.callerDone = true
			fail(rdma.OpSend, e.wrID)
		}
	}
	q.send.entries, q.parked = nil, nil
	for _, wr := range q.recvQ {
		fail(rdma.OpRecv, wr.wrID)
	}
	q.recvQ = nil
}
