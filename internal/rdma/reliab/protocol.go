package reliab

import "encoding/binary"

// Wire format. Every frame a protected queue pair puts on the wire starts
// with a 16-byte header; the immediate value of the inner send is left
// untouched (callers above — the RDMC engine — encode the message size in it,
// so the wrapper carries caller immediates inside the header instead).
//
//	byte  0     kind (data / ack / parity)
//	byte  1     flags (blackhole: test-injected far-end drop)
//	bytes 2:4   reserved
//	bytes 4:8   data: sequence number · ack: cumulative ack · parity: last
//	            sequence number covered by the group
//	bytes 8:12  data: caller immediate · ack: SACK bitmap low word · parity:
//	            number of data frames in the group
//	bytes 12:16 data: payload length · ack: SACK bitmap high word
//
// Data sequence numbers start at 1 (0 means "nothing acknowledged yet").
// Parity frames live outside the data sequence space: a lost parity frame is
// never retransmitted — recovery falls back to SACK retransmission — which
// keeps the cumulative ack from ever stalling on repair traffic.
const (
	headerSize = 16

	kindData   = 1
	kindAck    = 2
	kindParity = 3

	// flagBlackhole marks a frame the test harness wants dropped at the far
	// end: the wire carries it (bandwidth and ordering behave exactly like a
	// delivered frame) but the receiver discards it before any protocol
	// processing, which is indistinguishable from a downstream fabric drop.
	// This is how loss is injected on genuinely lossless transports (tcpnic,
	// shmnic) in the conformance suite.
	flagBlackhole = 0x1

	// fastRetxDupes is how many frames must be selectively acknowledged above
	// a gap before the gap is retransmitted without waiting for the RTO —
	// TCP's triple-duplicate-ack heuristic applied to the SACK bitmap.
	fastRetxDupes = 3
)

func putHeader(h []byte, kind, flags byte, seq, a, b uint32) {
	h[0], h[1], h[2], h[3] = kind, flags, 0, 0
	binary.LittleEndian.PutUint32(h[4:8], seq)
	binary.LittleEndian.PutUint32(h[8:12], a)
	binary.LittleEndian.PutUint32(h[12:16], b)
}

type header struct {
	kind  byte
	flags byte
	seq   uint32
	a, b  uint32
}

func parseHeader(h []byte) header {
	return header{
		kind:  h[0],
		flags: h[1],
		seq:   binary.LittleEndian.Uint32(h[4:8]),
		a:     binary.LittleEndian.Uint32(h[8:12]),
		b:     binary.LittleEndian.Uint32(h[12:16]),
	}
}

// sendEntry is one data frame in the retransmit buffer: the wrapper-owned
// frame bytes (header + a private copy of the caller payload, so the caller
// gets its buffer back at send-completion time while retransmission remains
// possible — the posted-buffer ownership contract holds for the caller even
// though delivery may still be pending) plus the bookkeeping that decides
// when to send it again.
type sendEntry struct {
	seq        uint32
	frame      frameBuf
	payloadLen int
	wrID       uint64 // caller's work request ID
	imm        uint32
	acked      bool // selectively acknowledged; never retransmit again
	callerDone bool // caller send completion delivered
	launched   bool // first inner transmission posted (false while parked)
	fastRetx   bool // fast retransmit fired since the last ack progress / RTO
}

// sendWindow is the sender half of the selective-repeat state machine: the
// retransmit buffer in sequence order plus the cumulative-ack frontier. It is
// pure bookkeeping — the provider glue owns timers and actual posting.
type sendWindow struct {
	nextSeq uint32
	cumAck  uint32
	entries []*sendEntry // unacked (or selectively acked) frames, ascending seq
}

func newSendWindow() *sendWindow { return &sendWindow{nextSeq: 1} }

func (w *sendWindow) assign() uint32 {
	s := w.nextSeq
	w.nextSeq++
	return s
}

func (w *sendWindow) push(e *sendEntry) { w.entries = append(w.entries, e) }

// onAck folds one SACK frame in: advances the cumulative frontier, marks
// selectively acknowledged entries, and returns the entries whose gap now has
// enough acknowledged frames above it to justify fast retransmission.
func (w *sendWindow) onAck(cum uint32, sack uint64) (fast []*sendEntry, progressed bool) {
	if cum > w.cumAck {
		w.cumAck = cum
		progressed = true
		keep := w.entries[:0]
		for _, e := range w.entries {
			if e.seq > cum {
				keep = append(keep, e)
			}
		}
		w.entries = keep
		for _, e := range w.entries {
			e.fastRetx = false
		}
	}
	for _, e := range w.entries {
		if !e.acked && e.seq > cum && e.seq <= cum+64 && sack&(1<<(e.seq-cum-1)) != 0 {
			e.acked = true
		}
	}
	ackedAbove := 0
	for i := len(w.entries) - 1; i >= 0; i-- {
		e := w.entries[i]
		if e.acked {
			ackedAbove++
			continue
		}
		if e.launched && ackedAbove >= fastRetxDupes && !e.fastRetx {
			e.fastRetx = true
			fast = append(fast, e)
		}
	}
	// Collected tail-first; retransmit lowest gap first.
	for i, j := 0, len(fast)-1; i < j; i, j = i+1, j-1 {
		fast[i], fast[j] = fast[j], fast[i]
	}
	return fast, progressed
}

// rtoEntry returns the oldest unacknowledged launched frame — the one an
// expired retransmission timer resends — and opens a new fast-retransmit
// epoch for every entry.
func (w *sendWindow) rtoEntry() *sendEntry {
	var hit *sendEntry
	for _, e := range w.entries {
		e.fastRetx = false
		if hit == nil && !e.acked && e.launched {
			hit = e
		}
	}
	return hit
}

// recvFrame is one data frame after the wire: caller immediate, payload
// length, and a wrapper-owned copy of the payload bytes (nil for
// metadata-only simulation frames).
type recvFrame struct {
	seq        uint32
	imm        uint32
	payloadLen int
	data       []byte
}

type parityRec struct {
	count   int
	payload []byte
}

// recvWindow is the receiver half: cumulative reassembly with a held-back
// out-of-order set (restoring the FIFO delivery the caller was promised),
// duplicate suppression, the SACK bitmap, and single-loss FEC recovery from
// cached frame contributions.
type recvWindow struct {
	cumAck  uint32
	ooo     map[uint32]*recvFrame
	fec     bool
	contrib map[uint32][]byte    // seq → [imm|len|payload] for recent frames
	parity  map[uint32]parityRec // group-end seq → pending parity
	keep    uint32               // how far behind cumAck contributions survive
}

func newRecvWindow(fecGroup int) *recvWindow {
	w := &recvWindow{ooo: make(map[uint32]*recvFrame)}
	if fecGroup > 0 {
		w.fec = true
		w.contrib = make(map[uint32][]byte)
		w.parity = make(map[uint32]parityRec)
		w.keep = uint32(4*fecGroup + 128)
	}
	return w
}

// process folds one arriving data frame in. It returns the frames now
// deliverable in order, or dup=true for a frame already seen (the caller
// re-acks so a lost ack cannot strand the sender).
func (w *recvWindow) process(f *recvFrame) (deliver []*recvFrame, dup bool) {
	if f.seq <= w.cumAck {
		return nil, true
	}
	if _, ok := w.ooo[f.seq]; ok {
		return nil, true
	}
	if w.fec {
		w.contrib[f.seq] = contribution(f.imm, f.payloadLen, f.data)
	}
	w.ooo[f.seq] = f
	for {
		nf, ok := w.ooo[w.cumAck+1]
		if !ok {
			break
		}
		delete(w.ooo, w.cumAck+1)
		w.cumAck++
		deliver = append(deliver, nf)
	}
	w.prune()
	return deliver, false
}

// sackBits reports which of the 64 sequence numbers above the cumulative
// frontier are held out of order.
func (w *recvWindow) sackBits() uint64 {
	var bits uint64
	for i := uint32(1); i <= 64; i++ {
		if _, ok := w.ooo[w.cumAck+i]; ok {
			bits |= 1 << (i - 1)
		}
	}
	return bits
}

// addParity registers a parity frame covering the count data frames ending at
// end. Recovery happens in tryRecover.
func (w *recvWindow) addParity(end uint32, count int, payload []byte) {
	if !w.fec || count <= 0 {
		return
	}
	w.parity[end] = parityRec{count: count, payload: payload}
}

// tryRecover reconstructs at most one missing frame from some pending parity
// group that has exactly one hole. The caller feeds the result back through
// process (which may in turn unlock another group), so one call per arrival
// suffices to drain all recoverable repairs.
func (w *recvWindow) tryRecover() *recvFrame {
	if !w.fec {
		return nil
	}
	for end, pr := range w.parity {
		start := end - uint32(pr.count) + 1
		var missing uint32
		holes := 0
		for s := start; s <= end; s++ {
			if s > w.cumAck {
				if _, ok := w.ooo[s]; !ok {
					missing, holes = s, holes+1
				}
			}
		}
		if holes == 0 {
			delete(w.parity, end)
			continue
		}
		if holes > 1 {
			continue
		}
		buf := append([]byte(nil), pr.payload...)
		complete := true
		for s := start; s <= end; s++ {
			if s == missing {
				continue
			}
			c, ok := w.contrib[s]
			if !ok {
				complete = false // pruned too far back; retransmission covers it
				break
			}
			buf = xorExtend(buf, c)
		}
		if !complete {
			continue
		}
		delete(w.parity, end)
		if len(buf) < 8 {
			continue
		}
		f := &recvFrame{
			seq:        missing,
			imm:        binary.LittleEndian.Uint32(buf[0:4]),
			payloadLen: int(binary.LittleEndian.Uint32(buf[4:8])),
		}
		if f.payloadLen > 0 && len(buf) >= 8+f.payloadLen {
			f.data = buf[8 : 8+f.payloadLen]
		}
		return f
	}
	return nil
}

func (w *recvWindow) prune() {
	if !w.fec || w.cumAck <= w.keep {
		return
	}
	floor := w.cumAck - w.keep
	for s := range w.contrib {
		if s <= floor {
			delete(w.contrib, s)
		}
	}
	for end, pr := range w.parity {
		if end <= floor-uint32(pr.count) {
			delete(w.parity, end)
		}
	}
}

// contribution is a frame's share of its parity group: caller immediate and
// payload length (so a reconstructed frame is whole even when payload bytes
// are metadata-only), then the payload bytes when real ones moved.
func contribution(imm uint32, payloadLen int, data []byte) []byte {
	c := make([]byte, 8, 8+len(data))
	binary.LittleEndian.PutUint32(c[0:4], imm)
	binary.LittleEndian.PutUint32(c[4:8], uint32(payloadLen))
	return append(c, data...)
}

// xorExtend XORs src into dst, growing dst if src is longer (parity groups
// pad every member to the longest frame).
func xorExtend(dst, src []byte) []byte {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i, b := range src {
		dst[i] ^= b
	}
	return dst
}

// fecAccum builds systematic XOR parity on the sender: every data frame is
// folded in, and after k frames (or an idle flush for a short tail) the
// accumulated parity goes on the wire. simExtra carries the largest
// metadata-only payload length in the group, so a parity frame's wire size
// charges the fabric for the padded-block XOR it stands for even when no real
// bytes back the blocks.
type fecAccum struct {
	k        int
	count    int
	end      uint32
	buf      []byte
	simExtra int
}

func (a *fecAccum) add(seq, imm uint32, payloadLen int, data []byte) (full bool) {
	a.buf = xorExtend(a.buf, contribution(imm, payloadLen, data))
	if data == nil && payloadLen > a.simExtra {
		a.simExtra = payloadLen
	}
	a.count++
	a.end = seq
	return a.count >= a.k
}

// flush returns the pending parity group and resets the accumulator; count is
// zero when there is nothing to flush.
func (a *fecAccum) flush() (end uint32, count int, payload []byte, simExtra int) {
	end, count, payload, simExtra = a.end, a.count, a.buf, a.simExtra
	a.count, a.end, a.buf, a.simExtra = 0, 0, nil, 0
	return
}
