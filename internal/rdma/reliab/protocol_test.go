package reliab

import (
	"bytes"
	"testing"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := make([]byte, headerSize)
	putHeader(h, kindData, flagBlackhole, 12345, 0xdeadbeef, 999)
	got := parseHeader(h)
	if got.kind != kindData || got.flags != flagBlackhole || got.seq != 12345 || got.a != 0xdeadbeef || got.b != 999 {
		t.Errorf("parsed %+v", got)
	}
}

func entries(w *sendWindow, n int) []*sendEntry {
	var es []*sendEntry
	for i := 0; i < n; i++ {
		e := &sendEntry{seq: w.assign(), launched: true}
		w.push(e)
		es = append(es, e)
	}
	return es
}

func TestSendWindowCumulativeAck(t *testing.T) {
	w := newSendWindow()
	entries(w, 5)
	fast, progressed := w.onAck(3, 0)
	if !progressed || len(fast) != 0 {
		t.Fatalf("onAck(3) fast=%v progressed=%v", fast, progressed)
	}
	if len(w.entries) != 2 || w.entries[0].seq != 4 {
		t.Fatalf("entries after cum 3: %+v", w.entries)
	}
	if _, progressed := w.onAck(3, 0); progressed {
		t.Error("duplicate cumulative ack reported progress")
	}
}

func TestSendWindowFastRetransmit(t *testing.T) {
	w := newSendWindow()
	es := entries(w, 6)
	// Frame 1 lost; 2, 3 sacked: not yet enough duplicate evidence.
	fast, _ := w.onAck(0, 0b0110)
	if len(fast) != 0 {
		t.Fatalf("fast retransmit after 2 sacked: %v", fast)
	}
	// Frame 4 sacked too: three above the gap → retransmit frame 1 once.
	fast, _ = w.onAck(0, 0b1110)
	if len(fast) != 1 || fast[0] != es[0] {
		t.Fatalf("fast = %+v, want frame 1", fast)
	}
	// Same evidence again: no duplicate fast retransmission.
	fast, _ = w.onAck(0, 0b1110)
	if len(fast) != 0 {
		t.Fatalf("repeated fast retransmit: %v", fast)
	}
	// The retransmission lands, the receiver's cumulative point jumps over
	// the held frames, and the window drains through 4.
	_, progressed := w.onAck(4, 0)
	if !progressed || len(w.entries) != 2 || w.entries[0].seq != 5 {
		t.Fatalf("after cum 4: progressed=%v entries=%+v", progressed, w.entries)
	}
}

func TestSendWindowFastRetransmitMultipleGaps(t *testing.T) {
	w := newSendWindow()
	entries(w, 8)
	// Frames 1 and 3 lost, 2,4,5,6,7,8 sacked: both gaps have ≥3 above.
	fast, _ := w.onAck(0, 0b11111010)
	if len(fast) != 2 || fast[0].seq != 1 || fast[1].seq != 3 {
		t.Fatalf("fast = %+v, want frames 1 and 3 in order", fast)
	}
}

func TestSendWindowRTOEntry(t *testing.T) {
	w := newSendWindow()
	es := entries(w, 3)
	es[0].acked = true
	es[1].fastRetx = true
	e := w.rtoEntry()
	if e != es[1] {
		t.Fatalf("rtoEntry = %+v, want oldest unacked (frame 2)", e)
	}
	if es[1].fastRetx || es[2].fastRetx {
		t.Error("RTO did not open a new fast-retransmit epoch")
	}
	if w.rtoEntry() != es[1] {
		t.Error("rtoEntry not stable before ack progress")
	}
}

func TestRecvWindowReassemblyAndSack(t *testing.T) {
	w := newRecvWindow(0)
	d, dup := w.process(&recvFrame{seq: 2})
	if dup || len(d) != 0 {
		t.Fatalf("out-of-order frame: deliver=%v dup=%v", d, dup)
	}
	if bits := w.sackBits(); bits != 0b10 {
		t.Fatalf("sack = %b, want bit for seq 2", bits)
	}
	d, dup = w.process(&recvFrame{seq: 1})
	if dup || len(d) != 2 || d[0].seq != 1 || d[1].seq != 2 {
		t.Fatalf("fill gap: deliver=%v dup=%v", d, dup)
	}
	if w.cumAck != 2 || w.sackBits() != 0 {
		t.Fatalf("cumAck=%d sack=%b after reassembly", w.cumAck, w.sackBits())
	}
	// Both a stale frame and a held duplicate report dup.
	if _, dup = w.process(&recvFrame{seq: 1}); !dup {
		t.Error("stale frame not flagged dup")
	}
	w.process(&recvFrame{seq: 5})
	if _, dup = w.process(&recvFrame{seq: 5}); !dup {
		t.Error("held out-of-order duplicate not flagged dup")
	}
}

func TestFECRecoversSingleLoss(t *testing.T) {
	send := &fecAccum{k: 3}
	recv := newRecvWindow(3)
	payloads := [][]byte{[]byte("alpha"), []byte("bravo-longer"), []byte("cc")}
	var full bool
	for i, pl := range payloads {
		full = send.add(uint32(i+1), uint32(100+i), len(pl), pl)
	}
	if !full {
		t.Fatal("accumulator not full after k frames")
	}
	end, count, parity, simExtra := send.flush()
	if end != 3 || count != 3 || simExtra != 0 {
		t.Fatalf("flush end=%d count=%d simExtra=%d", end, count, simExtra)
	}
	// Frames 1 and 3 arrive; 2 is lost; parity repairs it.
	recv.process(&recvFrame{seq: 1, imm: 100, payloadLen: 5, data: payloads[0]})
	recv.process(&recvFrame{seq: 3, imm: 102, payloadLen: 2, data: payloads[2]})
	recv.addParity(end, count, parity)
	f := recv.tryRecover()
	if f == nil {
		t.Fatal("no recovery from single loss")
	}
	if f.seq != 2 || f.imm != 101 || f.payloadLen != len(payloads[1]) || !bytes.Equal(f.data, payloads[1]) {
		t.Fatalf("recovered %+v data=%q", f, f.data)
	}
	if recv.tryRecover() != nil {
		t.Error("second recovery from a consumed parity group")
	}
}

func TestFECDoubleLossIsUnrecoverable(t *testing.T) {
	send := &fecAccum{k: 3}
	recv := newRecvWindow(3)
	for i := 0; i < 3; i++ {
		send.add(uint32(i+1), 0, 4, []byte("data"))
	}
	end, count, parity, _ := send.flush()
	recv.process(&recvFrame{seq: 1, payloadLen: 4, data: []byte("data")})
	recv.addParity(end, count, parity)
	if f := recv.tryRecover(); f != nil {
		t.Fatalf("recovered %+v from a two-hole group", f)
	}
	// The second frame arriving later makes the group one-hole: recoverable.
	recv.process(&recvFrame{seq: 2, payloadLen: 4, data: []byte("data")})
	if f := recv.tryRecover(); f == nil || f.seq != 3 {
		t.Fatalf("late recovery = %+v, want frame 3", f)
	}
}

func TestFECMetadataOnlyFrames(t *testing.T) {
	// Simulation-only payloads: contributions are 8 bytes, parity reconstructs
	// imm and length, and simExtra charges the padded-block wire cost.
	send := &fecAccum{k: 2}
	recv := newRecvWindow(2)
	send.add(1, 11, 1000, nil)
	send.add(2, 22, 800, nil)
	end, count, parity, simExtra := send.flush()
	if simExtra != 1000 || len(parity) != 8 {
		t.Fatalf("simExtra=%d len(parity)=%d", simExtra, len(parity))
	}
	recv.process(&recvFrame{seq: 1, imm: 11, payloadLen: 1000})
	recv.addParity(end, count, parity)
	f := recv.tryRecover()
	if f == nil || f.seq != 2 || f.imm != 22 || f.payloadLen != 800 || f.data != nil {
		t.Fatalf("recovered %+v", f)
	}
}

func TestXorExtend(t *testing.T) {
	got := xorExtend([]byte{1, 2}, []byte{1, 2, 3, 4})
	if !bytes.Equal(got, []byte{0, 0, 3, 4}) {
		t.Errorf("xorExtend = %v", got)
	}
}
