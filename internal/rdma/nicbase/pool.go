package nicbase

import (
	"math/bits"
	"sync"
)

// Size classes span 64 B (spill fragments, control payloads) to 4 MB (the
// largest block size the experiments use). Each class holds buffers of
// exactly its power-of-two capacity, so Put can classify by cap alone and a
// recycled buffer always satisfies any request that maps to its class.
const (
	poolMinBits = 6
	poolMaxBits = 22
	poolClasses = poolMaxBits - poolMinBits + 1
)

// BufPool recycles block-sized byte buffers across transfers through
// power-of-two size classes. The dataplane allocates one staging or arrival
// buffer per block in steady state (the first-block landing area, early
// arrivals the receiver has not posted for, inbound write payloads, reader
// spill fragments); classing by size means a workload mixing 1 MB blocks
// with 64 B control payloads recycles both instead of thrashing one shared
// free list. Requests beyond the largest class fall through to the garbage
// collector, and Put drops any buffer whose capacity is not an exact class
// size — an oversize or foreign buffer can never poison a class.
type BufPool struct {
	classes [poolClasses]sync.Pool
}

// classFor maps a request of n bytes to the smallest class that holds it.
// Callers have already bounded n to (0, 1<<poolMaxBits].
func classFor(n int) int {
	c := bits.Len(uint(n-1)) - poolMinBits
	if c < 0 {
		return 0
	}
	return c
}

// Get returns a buffer of length n (contents unspecified). Buffers larger
// than the top class are freshly allocated and will not be pooled on Put.
func (p *BufPool) Get(n int) []byte {
	if n <= 0 {
		// Zero-length requests still get a non-nil buffer: nil payloads
		// mean "virtual frame" to the transports, and a zero-size
		// allocation costs nothing.
		return []byte{}
	}
	if n > 1<<poolMaxBits {
		return make([]byte, n)
	}
	c := classFor(n)
	if v := p.classes[c].Get(); v != nil {
		return (*(v.(*[]byte)))[:n]
	}
	return make([]byte, n, 1<<(c+poolMinBits))
}

// Put recycles a buffer obtained from Get once its contents have been
// consumed. The caller must not touch b afterwards. Buffers whose capacity
// is not an exact class size (oversize allocations, slices from elsewhere)
// are dropped for the GC rather than filed under a class they don't fit.
func (p *BufPool) Put(b []byte) {
	c := cap(b)
	if c < 1<<poolMinBits || c > 1<<poolMaxBits || c&(c-1) != 0 {
		return
	}
	b = b[:c]
	p.classes[bits.Len(uint(c))-1-poolMinBits].Put(&b)
}
