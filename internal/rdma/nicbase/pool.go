package nicbase

import "sync"

// BufPool recycles block-sized byte buffers across transfers. The dataplane
// allocates one staging or arrival buffer per block in steady state (the
// first-block landing area, early arrivals the receiver has not posted for,
// inbound write payloads); since a deployment uses one or two block sizes,
// a single pool reaches near-zero steady-state allocation without size
// classes. Get never returns a buffer shorter than requested; an undersized
// pooled buffer is simply dropped for the GC.
type BufPool struct {
	p sync.Pool
}

// Get returns a buffer of length n (contents unspecified).
func (p *BufPool) Get(n int) []byte {
	if v := p.p.Get(); v != nil {
		if b := *(v.(*[]byte)); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// Put recycles a buffer obtained from Get once its contents have been
// consumed. The caller must not touch b afterwards.
func (p *BufPool) Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	p.p.Put(&b)
}
