// Package nicbase is the shared runtime under every rdma.Provider: the
// bookkeeping a NIC needs regardless of what actually moves the bytes. It
// owns the queue-pair table, the pending-connect rendezvous, the registered
// memory regions with their watchers, and the serial completion dispatch
// (CompletionQueue), so that a transport — simnic's virtual-time fabric,
// tcpnic's sockets, or a future ibverbs or io_uring backend — implements
// only the wire: how a work request becomes bytes and how bytes become
// completions.
package nicbase

import (
	"fmt"
	"sync"

	"rdmc/internal/obs"
	"rdmc/internal/rdma"
)

// QPKey identifies a queue pair within one provider: the remote endpoint
// plus the rendezvous token both sides agreed on out of band.
type QPKey struct {
	Peer  rdma.NodeID
	Token uint64
}

// Base is the provider-independent half of an rdma.Provider. Transports
// embed it and delegate NodeID, SetHandler, the region calls, and the
// closed/handler gating of posts; Base never calls back into the transport
// except through the queue pairs it is asked to break on Close.
type Base struct {
	id rdma.NodeID
	cq *CompletionQueue

	// posts counts admitted work requests; nil (the default) discards them.
	// Installed via SetObserver before any activity.
	posts *obs.Counter

	mu       sync.Mutex
	regions  map[rdma.RegionID][]byte
	watchers map[rdma.RegionID]func(int, int)
	byKey    map[QPKey]rdma.QueuePair
	qps      []rdma.QueuePair
	closed   bool
}

// Init wires the base to its identity and completion queue. Providers call
// it once at construction (Base is embedded, so there is no constructor).
func (b *Base) Init(id rdma.NodeID, cq *CompletionQueue) {
	b.id = id
	b.cq = cq
	b.regions = make(map[rdma.RegionID][]byte)
	b.watchers = make(map[rdma.RegionID]func(int, int))
	b.byKey = make(map[QPKey]rdma.QueuePair)
}

// NodeID implements rdma.Provider.
func (b *Base) NodeID() rdma.NodeID { return b.id }

// SetHandler implements rdma.Provider.
func (b *Base) SetHandler(h func(rdma.Completion)) { b.cq.SetHandler(h) }

// SetBatchHandler implements rdma.BatchProvider: completions are drained to
// the handler in slices (ring-mode dispatch) or in the batches the producer
// posted (event-mode dispatch), replacing any per-completion handler.
func (b *Base) SetBatchHandler(h func([]rdma.Completion)) { b.cq.SetBatchHandler(h) }

// Complete posts one completion to the node's queue.
func (b *Base) Complete(c rdma.Completion) { b.cq.Post(c) }

// CompleteBatch posts a run of completions in order with one queue
// operation — the completion-coalescing half of the ring pair (tcpnic's
// writer retires a whole writev batch this way).
func (b *Base) CompleteBatch(cs []rdma.Completion) { b.cq.PostBatch(cs) }

// CheckPost is the shared gate in front of every work-request post: the
// provider must be open and a completion handler installed.
func (b *Base) CheckPost() error {
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return rdma.ErrClosed
	}
	if !b.cq.HasHandler() {
		return rdma.ErrNoHandler
	}
	b.posts.Inc()
	return nil
}

// Closed reports whether the provider has been closed.
func (b *Base) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// EnsureQP returns the queue pair registered under key, creating and
// registering create()'s result if none exists. It reports whether the
// queue pair was created by this call (tcpnic's Connect/accept rendezvous:
// whichever side arrives first parks the endpoint for the other to find).
func (b *Base) EnsureQP(key QPKey, create func() rdma.QueuePair) (rdma.QueuePair, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, false, rdma.ErrClosed
	}
	if qp, ok := b.byKey[key]; ok {
		return qp, false, nil
	}
	qp := create()
	b.byKey[key] = qp
	b.qps = append(b.qps, qp)
	return qp, true, nil
}

// AddQP registers a queue pair without table deduplication, for transports
// whose rendezvous pairs endpoints elsewhere (simnic allows several live
// queue pairs per (peer, token), e.g. both ends of a self-connection). The
// first registration per key still lands in the lookup table.
func (b *Base) AddQP(key QPKey, qp rdma.QueuePair) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return rdma.ErrClosed
	}
	if _, ok := b.byKey[key]; !ok {
		b.byKey[key] = qp
	}
	b.qps = append(b.qps, qp)
	return nil
}

// Shutdown marks the base closed and hands back every registered queue pair
// exactly once, for the transport to break. The second result is false when
// the base was already closed (Close must be idempotent).
func (b *Base) Shutdown() ([]rdma.QueuePair, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, false
	}
	b.closed = true
	qps := b.qps
	b.qps = nil
	return qps, true
}

// CloseCQ stops the completion dispatcher (ring mode only). Transports
// call it after breaking their queue pairs so broken-status completions
// still drain.
func (b *Base) CloseCQ() { b.cq.Close() }

// RegisterRegion implements rdma.Provider.
func (b *Base) RegisterRegion(id rdma.RegionID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return rdma.ErrClosed
	}
	b.regions[id] = buf
	return nil
}

// UnregisterRegion withdraws a region and its watcher: later inbound writes
// to the id are dropped silently (the sender's completion still succeeds, as
// with a real NIC racing a deregistration) and the watcher closure is
// released. Session-style layers that register a region per instance must
// call this on teardown or every churned-through instance stays reachable
// from the provider through its watcher.
func (b *Base) UnregisterRegion(id rdma.RegionID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.regions, id)
	delete(b.watchers, id)
}

// Region implements rdma.Provider.
func (b *Base) Region(id rdma.RegionID) []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.regions[id]
}

// WatchRegion implements rdma.Provider.
func (b *Base) WatchRegion(id rdma.RegionID, fn func(offset, length int)) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return rdma.ErrClosed
	}
	if _, ok := b.regions[id]; !ok {
		return rdma.ErrUnknownRegion
	}
	b.watchers[id] = fn
	return nil
}

// ApplyWrite lands an inbound one-sided write: payload (when real bytes
// moved — nil for metadata-only writes) is copied into the registered
// region, then the region's watcher fires. A write outside a registered
// region's bounds is a protocol violation and returns an error for the
// transport to surface as a broken connection. The watcher runs without
// Base's lock, so it may re-enter the provider.
func (b *Base) ApplyWrite(id rdma.RegionID, offset, length int, payload []byte) error {
	b.mu.Lock()
	mem := b.regions[id]
	watcher := b.watchers[id]
	b.mu.Unlock()
	if mem != nil && payload != nil {
		if offset < 0 || offset+length > len(mem) {
			return fmt.Errorf("nicbase: write [%d,%d) outside region %d of %d bytes", offset, offset+length, id, len(mem))
		}
		copy(mem[offset:], payload[:length])
	}
	if watcher != nil {
		watcher(offset, length)
	}
	return nil
}
