package nicbase

import (
	"sync"
	"testing"

	"rdmc/internal/rdma"
)

// fakeQP is a minimal rdma.QueuePair for table tests.
type fakeQP struct {
	peer   rdma.NodeID
	token  uint64
	closed bool
}

func (q *fakeQP) Peer() rdma.NodeID                                  { return q.peer }
func (q *fakeQP) Token() uint64                                      { return q.token }
func (q *fakeQP) PostSend(rdma.Buffer, uint32, uint64) error         { return nil }
func (q *fakeQP) PostRecv(rdma.Buffer, uint64) error                 { return nil }
func (q *fakeQP) PostWrite(rdma.RegionID, int, []byte, uint64) error { return nil }
func (q *fakeQP) Close() error                                       { q.closed = true; return nil }

func newBase(cq *CompletionQueue) *Base {
	b := &Base{}
	b.Init(3, cq)
	return b
}

func TestEventCQDeliversSerially(t *testing.T) {
	var queue []func()
	cq := NewEventCQ(func(fn func()) { queue = append(queue, fn) })
	var got []uint64
	cq.SetHandler(func(c rdma.Completion) { got = append(got, c.WRID) })
	cq.Post(rdma.Completion{WRID: 1})
	cq.Post(rdma.Completion{WRID: 2})
	if len(got) != 0 {
		t.Fatal("event CQ delivered before the loop ran")
	}
	for _, fn := range queue {
		fn()
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("deliveries = %v, want [1 2]", got)
	}
}

func TestEventCQDropsWithoutHandler(t *testing.T) {
	var queue []func()
	cq := NewEventCQ(func(fn func()) { queue = append(queue, fn) })
	cq.Post(rdma.Completion{WRID: 1})
	if len(queue) != 0 {
		t.Fatal("completion submitted with no handler installed")
	}
}

func TestRingCQDrainsOnClose(t *testing.T) {
	cq := NewRingCQ(8)
	var mu sync.Mutex
	var got []uint64
	cq.SetHandler(func(c rdma.Completion) {
		mu.Lock()
		got = append(got, c.WRID)
		mu.Unlock()
	})
	for i := uint64(0); i < 5; i++ {
		cq.Post(rdma.Completion{WRID: i})
	}
	cq.Close() // blocks until the dispatcher drained and exited
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 5 {
		t.Fatalf("delivered %d of 5 completions", len(got))
	}
	for i, id := range got {
		if id != uint64(i) {
			t.Fatalf("deliveries out of order: %v", got)
		}
	}
}

func TestCheckPostGates(t *testing.T) {
	cq := NewEventCQ(func(fn func()) { fn() })
	b := newBase(cq)
	if err := b.CheckPost(); err != rdma.ErrNoHandler {
		t.Errorf("no handler: err = %v, want ErrNoHandler", err)
	}
	cq.SetHandler(func(rdma.Completion) {})
	if err := b.CheckPost(); err != nil {
		t.Errorf("ready provider: err = %v", err)
	}
	b.Shutdown()
	if err := b.CheckPost(); err != rdma.ErrClosed {
		t.Errorf("closed provider: err = %v, want ErrClosed", err)
	}
}

func TestEnsureQPParksAndFinds(t *testing.T) {
	b := newBase(NewEventCQ(func(fn func()) { fn() }))
	key := QPKey{Peer: 1, Token: 42}
	q1, created, err := b.EnsureQP(key, func() rdma.QueuePair { return &fakeQP{peer: 1, token: 42} })
	if err != nil || !created {
		t.Fatalf("first EnsureQP: created=%v err=%v", created, err)
	}
	q2, created, err := b.EnsureQP(key, func() rdma.QueuePair { t.Fatal("create called twice"); return nil })
	if err != nil || created || q2 != q1 {
		t.Fatalf("second EnsureQP: qp=%p created=%v err=%v, want %p", q2, created, err, q1)
	}
}

func TestShutdownHandsBackQueuePairsOnce(t *testing.T) {
	b := newBase(NewEventCQ(func(fn func()) { fn() }))
	_, _, _ = b.EnsureQP(QPKey{Peer: 1, Token: 1}, func() rdma.QueuePair { return &fakeQP{} })
	_ = b.AddQP(QPKey{Peer: 1, Token: 1}, &fakeQP{}) // duplicate key, distinct endpoint
	qps, first := b.Shutdown()
	if len(qps) != 2 || !first {
		t.Fatalf("Shutdown returned %d queue pairs (first=%v), want 2 (true)", len(qps), first)
	}
	if again, first := b.Shutdown(); again != nil || first {
		t.Fatalf("second Shutdown returned %d queue pairs (first=%v), want nil (false)", len(again), first)
	}
	if _, _, err := b.EnsureQP(QPKey{Peer: 2, Token: 2}, nil); err != rdma.ErrClosed {
		t.Errorf("EnsureQP after shutdown: err = %v, want ErrClosed", err)
	}
}

func TestRegionsAndWatchers(t *testing.T) {
	b := newBase(NewEventCQ(func(fn func()) { fn() }))
	if err := b.WatchRegion(9, func(int, int) {}); err != rdma.ErrUnknownRegion {
		t.Errorf("watch unknown region: err = %v, want ErrUnknownRegion", err)
	}
	mem := make([]byte, 16)
	if err := b.RegisterRegion(9, mem); err != nil {
		t.Fatal(err)
	}
	if got := b.Region(9); &got[0] != &mem[0] {
		t.Error("Region returned different memory")
	}
	var fired [][2]int
	if err := b.WatchRegion(9, func(off, n int) { fired = append(fired, [2]int{off, n}) }); err != nil {
		t.Fatal(err)
	}

	if err := b.ApplyWrite(9, 4, 3, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if string(mem[4:7]) != "abc" {
		t.Errorf("region after write = %q", mem[:8])
	}
	// Metadata-only write: no copy, watcher still fires.
	if err := b.ApplyWrite(9, 0, 8, nil); err != nil {
		t.Fatal(err)
	}
	// Unknown region with payload: silently ignored (no registered memory).
	if err := b.ApplyWrite(8, 0, 1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	// Out of range against registered memory: protocol violation.
	if err := b.ApplyWrite(9, 10, 10, make([]byte, 10)); err == nil {
		t.Error("out-of-range write did not error")
	}
	if len(fired) != 2 || fired[0] != [2]int{4, 3} || fired[1] != [2]int{0, 8} {
		t.Errorf("watcher calls = %v", fired)
	}
}

func TestRendezvousPairsMirrorOffers(t *testing.T) {
	r := NewRendezvous[int]()
	if _, ok := r.Match(0, 1, 7, 100); ok {
		t.Fatal("first offer matched")
	}
	other, ok := r.Match(1, 0, 7, 200)
	if !ok || other != 100 {
		t.Fatalf("mirror offer: other=%d ok=%v, want 100 true", other, ok)
	}
	// Same nodes, different token: separate connections.
	if _, ok := r.Match(1, 0, 8, 300); ok {
		t.Fatal("offer with different token matched")
	}
	// Self-connection: two offers from the same node pair up.
	if _, ok := r.Match(2, 2, 1, 400); ok {
		t.Fatal("first self offer matched")
	}
	other, ok = r.Match(2, 2, 1, 500)
	if !ok || other != 400 {
		t.Fatalf("self rendezvous: other=%d ok=%v, want 400 true", other, ok)
	}
}

func TestBufPoolRecycles(t *testing.T) {
	var p BufPool
	b1 := p.Get(64)
	if len(b1) != 64 {
		t.Fatalf("Get(64) len = %d", len(b1))
	}
	p.Put(b1)
	b2 := p.Get(32)
	if len(b2) != 32 {
		t.Fatalf("Get(32) len = %d", len(b2))
	}
	// A pool hit must reuse the backing array (same pool, larger capacity).
	if cap(b2) < 64 {
		t.Skip("sync.Pool dropped the buffer (GC pressure); nothing to assert")
	}
	if &b1[:1][0] != &b2[:1][0] {
		t.Error("pooled buffer not reused")
	}
	p.Put(nil) // must not panic
	if got := p.Get(128); len(got) != 128 {
		t.Fatalf("Get(128) after undersized pool entry: len = %d", len(got))
	}
}

func TestBufPoolSizeClasses(t *testing.T) {
	var p BufPool
	// Every request lands in a buffer whose capacity is the exact class size.
	for _, n := range []int{1, 63, 64, 65, 1000, 4096, 1 << 20, 1<<22 - 1, 1 << 22} {
		b := p.Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) len = %d", n, len(b))
		}
		if c := cap(b); c < n || c&(c-1) != 0 || c < 1<<poolMinBits || c > 1<<poolMaxBits {
			t.Fatalf("Get(%d) cap = %d, want exact power-of-two class", n, c)
		}
		p.Put(b)
	}
	// Oversize requests bypass the classes entirely...
	big := p.Get(1<<22 + 1)
	if len(big) != 1<<22+1 {
		t.Fatalf("oversize Get len = %d", len(big))
	}
	p.Put(big) // ...and Put drops them rather than poisoning a class.
	if b := p.Get(1 << 22); cap(b) != 1<<22 {
		t.Fatalf("class polluted by oversize Put: cap = %d", cap(b))
	}
	// A foreign buffer with non-class capacity is likewise dropped.
	p.Put(make([]byte, 100))
	if b := p.Get(100); cap(b) != 128 {
		t.Fatalf("class polluted by foreign Put: cap = %d", cap(b))
	}
	p.Put(nil)
	p.Put(make([]byte, 10)) // below the smallest class: dropped
	if got := p.Get(0); got == nil || len(got) != 0 {
		t.Fatalf("Get(0) = %v, want non-nil empty", got)
	}
}

func TestBufPoolConcurrentChurn(t *testing.T) {
	// Hammer overlapping size classes from several goroutines; under -race
	// this proves Get/Put are safe, and the length/zero checks prove a
	// buffer is never shared by two holders at once.
	var p BufPool
	sizes := []int{48, 64, 100, 4096, 65536}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				n := sizes[(g+i)%len(sizes)]
				b := p.Get(n)
				if len(b) != n {
					t.Errorf("Get(%d) len = %d", n, len(b))
					return
				}
				b[0], b[n-1] = byte(g), byte(g)
				if b[0] != byte(g) || b[n-1] != byte(g) {
					t.Error("buffer shared across holders")
					return
				}
				p.Put(b)
			}
		}(g)
	}
	wg.Wait()
}

func TestRingPushDrainFIFO(t *testing.T) {
	r := NewRing(4)
	if r.Capacity() != 4 {
		t.Fatalf("Capacity = %d", r.Capacity())
	}
	// A batch larger than the ring lands in waves: a consumer drains
	// between them, and order is preserved end to end.
	cs := make([]rdma.Completion, 10)
	for i := range cs {
		cs[i] = rdma.Completion{WRID: uint64(i)}
	}
	var got []rdma.Completion
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(got) < len(cs) {
			var ok bool
			got, ok = r.Drain(got)
			if !ok {
				return
			}
		}
	}()
	if !r.PushBatch(cs) {
		t.Error("PushBatch on open ring returned false")
	}
	<-done
	for i, c := range got {
		if c.WRID != uint64(i) {
			t.Fatalf("drained order %v", got)
		}
	}
}

func TestRingCloseUnblocksAndDrainsTail(t *testing.T) {
	r := NewRing(2)
	r.Push(rdma.Completion{WRID: 1})
	r.Push(rdma.Completion{WRID: 2})
	blocked := make(chan bool)
	go func() { blocked <- r.Push(rdma.Completion{WRID: 3}) }() // ring full: blocks
	r.Close()
	if ok := <-blocked; ok {
		t.Error("Push on closed ring returned true")
	}
	// Entries queued before Close still drain; then the ring reports dry.
	out, ok := r.Drain(nil)
	if !ok || len(out) != 2 || out[0].WRID != 1 || out[1].WRID != 2 {
		t.Fatalf("post-close drain = %v ok=%v", out, ok)
	}
	if out, ok := r.Drain(nil); ok || len(out) != 0 {
		t.Fatalf("dry closed ring: drain = %v ok=%v", out, ok)
	}
	if r.Push(rdma.Completion{}) {
		t.Error("Push after close returned true")
	}
	if r.PushBatch([]rdma.Completion{{}}) {
		t.Error("PushBatch after close returned true")
	}
	r.Close() // idempotent
}

func TestRingCQBatchHandlerChunks(t *testing.T) {
	cq := NewRingCQ(maxBatch * 2)
	var mu sync.Mutex
	var batches [][]uint64
	total := 0
	cq.SetBatchHandler(func(cs []rdma.Completion) {
		ids := make([]uint64, len(cs))
		for i, c := range cs {
			ids[i] = c.WRID
		}
		mu.Lock()
		batches = append(batches, ids)
		total += len(cs)
		mu.Unlock()
	})
	n := maxBatch + 7
	cs := make([]rdma.Completion, n)
	for i := range cs {
		cs[i] = rdma.Completion{WRID: uint64(i)}
	}
	cq.PostBatch(cs)
	cq.Close()
	mu.Lock()
	defer mu.Unlock()
	if total != n {
		t.Fatalf("delivered %d of %d", total, n)
	}
	next := uint64(0)
	for _, b := range batches {
		if len(b) > maxBatch {
			t.Fatalf("batch of %d exceeds maxBatch", len(b))
		}
		for _, id := range b {
			if id != next {
				t.Fatalf("out of order: got %d want %d", id, next)
			}
			next++
		}
	}
}
