package nicbase

import (
	"sync"
	"testing"

	"rdmc/internal/rdma"
)

// fakeQP is a minimal rdma.QueuePair for table tests.
type fakeQP struct {
	peer   rdma.NodeID
	token  uint64
	closed bool
}

func (q *fakeQP) Peer() rdma.NodeID                                  { return q.peer }
func (q *fakeQP) Token() uint64                                      { return q.token }
func (q *fakeQP) PostSend(rdma.Buffer, uint32, uint64) error         { return nil }
func (q *fakeQP) PostRecv(rdma.Buffer, uint64) error                 { return nil }
func (q *fakeQP) PostWrite(rdma.RegionID, int, []byte, uint64) error { return nil }
func (q *fakeQP) Close() error                                       { q.closed = true; return nil }

func newBase(cq *CompletionQueue) *Base {
	b := &Base{}
	b.Init(3, cq)
	return b
}

func TestEventCQDeliversSerially(t *testing.T) {
	var queue []func()
	cq := NewEventCQ(func(fn func()) { queue = append(queue, fn) })
	var got []uint64
	cq.SetHandler(func(c rdma.Completion) { got = append(got, c.WRID) })
	cq.Post(rdma.Completion{WRID: 1})
	cq.Post(rdma.Completion{WRID: 2})
	if len(got) != 0 {
		t.Fatal("event CQ delivered before the loop ran")
	}
	for _, fn := range queue {
		fn()
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("deliveries = %v, want [1 2]", got)
	}
}

func TestEventCQDropsWithoutHandler(t *testing.T) {
	var queue []func()
	cq := NewEventCQ(func(fn func()) { queue = append(queue, fn) })
	cq.Post(rdma.Completion{WRID: 1})
	if len(queue) != 0 {
		t.Fatal("completion submitted with no handler installed")
	}
}

func TestChannelCQDrainsOnClose(t *testing.T) {
	cq := NewChannelCQ(8)
	var mu sync.Mutex
	var got []uint64
	cq.SetHandler(func(c rdma.Completion) {
		mu.Lock()
		got = append(got, c.WRID)
		mu.Unlock()
	})
	for i := uint64(0); i < 5; i++ {
		cq.Post(rdma.Completion{WRID: i})
	}
	cq.Close() // blocks until the dispatcher drained and exited
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 5 {
		t.Fatalf("delivered %d of 5 completions", len(got))
	}
	for i, id := range got {
		if id != uint64(i) {
			t.Fatalf("deliveries out of order: %v", got)
		}
	}
}

func TestCheckPostGates(t *testing.T) {
	cq := NewEventCQ(func(fn func()) { fn() })
	b := newBase(cq)
	if err := b.CheckPost(); err != rdma.ErrNoHandler {
		t.Errorf("no handler: err = %v, want ErrNoHandler", err)
	}
	cq.SetHandler(func(rdma.Completion) {})
	if err := b.CheckPost(); err != nil {
		t.Errorf("ready provider: err = %v", err)
	}
	b.Shutdown()
	if err := b.CheckPost(); err != rdma.ErrClosed {
		t.Errorf("closed provider: err = %v, want ErrClosed", err)
	}
}

func TestEnsureQPParksAndFinds(t *testing.T) {
	b := newBase(NewEventCQ(func(fn func()) { fn() }))
	key := QPKey{Peer: 1, Token: 42}
	q1, created, err := b.EnsureQP(key, func() rdma.QueuePair { return &fakeQP{peer: 1, token: 42} })
	if err != nil || !created {
		t.Fatalf("first EnsureQP: created=%v err=%v", created, err)
	}
	q2, created, err := b.EnsureQP(key, func() rdma.QueuePair { t.Fatal("create called twice"); return nil })
	if err != nil || created || q2 != q1 {
		t.Fatalf("second EnsureQP: qp=%p created=%v err=%v, want %p", q2, created, err, q1)
	}
}

func TestShutdownHandsBackQueuePairsOnce(t *testing.T) {
	b := newBase(NewEventCQ(func(fn func()) { fn() }))
	_, _, _ = b.EnsureQP(QPKey{Peer: 1, Token: 1}, func() rdma.QueuePair { return &fakeQP{} })
	_ = b.AddQP(QPKey{Peer: 1, Token: 1}, &fakeQP{}) // duplicate key, distinct endpoint
	qps, first := b.Shutdown()
	if len(qps) != 2 || !first {
		t.Fatalf("Shutdown returned %d queue pairs (first=%v), want 2 (true)", len(qps), first)
	}
	if again, first := b.Shutdown(); again != nil || first {
		t.Fatalf("second Shutdown returned %d queue pairs (first=%v), want nil (false)", len(again), first)
	}
	if _, _, err := b.EnsureQP(QPKey{Peer: 2, Token: 2}, nil); err != rdma.ErrClosed {
		t.Errorf("EnsureQP after shutdown: err = %v, want ErrClosed", err)
	}
}

func TestRegionsAndWatchers(t *testing.T) {
	b := newBase(NewEventCQ(func(fn func()) { fn() }))
	if err := b.WatchRegion(9, func(int, int) {}); err != rdma.ErrUnknownRegion {
		t.Errorf("watch unknown region: err = %v, want ErrUnknownRegion", err)
	}
	mem := make([]byte, 16)
	if err := b.RegisterRegion(9, mem); err != nil {
		t.Fatal(err)
	}
	if got := b.Region(9); &got[0] != &mem[0] {
		t.Error("Region returned different memory")
	}
	var fired [][2]int
	if err := b.WatchRegion(9, func(off, n int) { fired = append(fired, [2]int{off, n}) }); err != nil {
		t.Fatal(err)
	}

	if err := b.ApplyWrite(9, 4, 3, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if string(mem[4:7]) != "abc" {
		t.Errorf("region after write = %q", mem[:8])
	}
	// Metadata-only write: no copy, watcher still fires.
	if err := b.ApplyWrite(9, 0, 8, nil); err != nil {
		t.Fatal(err)
	}
	// Unknown region with payload: silently ignored (no registered memory).
	if err := b.ApplyWrite(8, 0, 1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	// Out of range against registered memory: protocol violation.
	if err := b.ApplyWrite(9, 10, 10, make([]byte, 10)); err == nil {
		t.Error("out-of-range write did not error")
	}
	if len(fired) != 2 || fired[0] != [2]int{4, 3} || fired[1] != [2]int{0, 8} {
		t.Errorf("watcher calls = %v", fired)
	}
}

func TestRendezvousPairsMirrorOffers(t *testing.T) {
	r := NewRendezvous[int]()
	if _, ok := r.Match(0, 1, 7, 100); ok {
		t.Fatal("first offer matched")
	}
	other, ok := r.Match(1, 0, 7, 200)
	if !ok || other != 100 {
		t.Fatalf("mirror offer: other=%d ok=%v, want 100 true", other, ok)
	}
	// Same nodes, different token: separate connections.
	if _, ok := r.Match(1, 0, 8, 300); ok {
		t.Fatal("offer with different token matched")
	}
	// Self-connection: two offers from the same node pair up.
	if _, ok := r.Match(2, 2, 1, 400); ok {
		t.Fatal("first self offer matched")
	}
	other, ok = r.Match(2, 2, 1, 500)
	if !ok || other != 400 {
		t.Fatalf("self rendezvous: other=%d ok=%v, want 400 true", other, ok)
	}
}

func TestBufPoolRecycles(t *testing.T) {
	var p BufPool
	b1 := p.Get(64)
	if len(b1) != 64 {
		t.Fatalf("Get(64) len = %d", len(b1))
	}
	p.Put(b1)
	b2 := p.Get(32)
	if len(b2) != 32 {
		t.Fatalf("Get(32) len = %d", len(b2))
	}
	// A pool hit must reuse the backing array (same pool, larger capacity).
	if cap(b2) < 64 {
		t.Skip("sync.Pool dropped the buffer (GC pressure); nothing to assert")
	}
	if &b1[:1][0] != &b2[:1][0] {
		t.Error("pooled buffer not reused")
	}
	p.Put(nil) // must not panic
	if got := p.Get(128); len(got) != 128 {
		t.Fatalf("Get(128) after undersized pool entry: len = %d", len(got))
	}
}
