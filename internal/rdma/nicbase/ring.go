package nicbase

import (
	"sync"

	"rdmc/internal/rdma"
)

// Ring is a fixed-capacity completion ring: the io_uring-style buffer behind
// ring-mode CompletionQueues. Producers (a transport's reader and writer
// goroutines) push completions one at a time or in batches; one consumer (the
// CQ dispatcher) drains everything queued in a single pass per wakeup, so the
// per-wakeup costs downstream — the handler's group lock, the futex to wake
// the dispatcher — are paid once per drained run instead of once per
// completion.
//
// Push blocks while the ring is full (the transport-side analogue of a full
// hardware CQ exerting backpressure on the doorbell) and returns false only
// once the ring is closed. Drain blocks while the ring is empty and keeps
// returning queued entries after Close until the ring is dry, so no
// completion posted before Close is lost.
type Ring struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	buf      []rdma.Completion
	head     int // index of the oldest entry
	size     int // entries queued
	closed   bool
}

// NewRing builds a ring holding up to capacity completions (zero or negative
// selects 1024, matching the historical channel-mode buffer).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1024
	}
	r := &Ring{buf: make([]rdma.Completion, capacity)}
	r.notEmpty.L = &r.mu
	r.notFull.L = &r.mu
	return r
}

// Capacity returns the fixed ring size.
func (r *Ring) Capacity() int { return len(r.buf) }

// Push enqueues one completion, blocking while the ring is full. It returns
// false when the ring has been closed (the completion is dropped, matching a
// destroyed hardware CQ).
func (r *Ring) Push(c rdma.Completion) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.size == len(r.buf) && !r.closed {
		r.notFull.Wait()
	}
	if r.closed {
		return false
	}
	r.buf[(r.head+r.size)%len(r.buf)] = c
	r.size++
	if r.size == 1 {
		r.notEmpty.Signal()
	}
	return true
}

// PushBatch enqueues a run of completions in order, blocking for space as
// needed (a batch larger than the ring lands in capacity-sized waves). It
// returns false when the ring closed before every entry was queued; entries
// already queued still drain.
func (r *Ring) PushBatch(cs []rdma.Completion) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(cs) > 0 {
		for r.size == len(r.buf) && !r.closed {
			r.notFull.Wait()
		}
		if r.closed {
			return false
		}
		wasEmpty := r.size == 0
		n := len(r.buf) - r.size
		if n > len(cs) {
			n = len(cs)
		}
		for i := 0; i < n; i++ {
			r.buf[(r.head+r.size+i)%len(r.buf)] = cs[i]
		}
		r.size += n
		cs = cs[n:]
		if wasEmpty {
			r.notEmpty.Signal()
		}
	}
	return true
}

// Drain appends everything queued to dst in FIFO order — the whole ring in
// one pass — blocking while the ring is empty. It returns ok=false only when
// the ring is closed AND dry, so a Close never truncates queued completions.
func (r *Ring) Drain(dst []rdma.Completion) ([]rdma.Completion, bool) {
	r.mu.Lock()
	for r.size == 0 && !r.closed {
		r.notEmpty.Wait()
	}
	if r.size == 0 {
		r.mu.Unlock()
		return dst, false
	}
	wasFull := r.size == len(r.buf)
	for r.size > 0 {
		dst = append(dst, r.buf[r.head])
		r.buf[r.head] = rdma.Completion{}
		r.head = (r.head + 1) % len(r.buf)
		r.size--
	}
	r.head = 0
	if wasFull {
		r.notFull.Broadcast()
	}
	r.mu.Unlock()
	return dst, true
}

// Close marks the ring closed: blocked pushers return false, and the consumer
// drains what is queued and then sees ok=false. Idempotent.
func (r *Ring) Close() {
	r.mu.Lock()
	r.closed = true
	r.notEmpty.Broadcast()
	r.notFull.Broadcast()
	r.mu.Unlock()
}
