package nicbase

import (
	"sync"

	"rdmc/internal/obs"
	"rdmc/internal/rdma"
)

// maxBatch bounds how many completions one dispatcher wakeup hands to a
// batch handler. Large enough to amortize the consumer's per-batch work
// (the engine takes one group lock per same-group run), small enough that a
// slow handler cannot starve the ring producers behind a giant drain.
const maxBatch = 256

// CompletionQueue serializes a node's completions into its single installed
// handler — the explicit object behind rdma.Provider.SetHandler and the
// analogue of the paper's one shared hardware completion queue per node.
//
// Two dispatch disciplines cover the two kinds of provider:
//
//   - NewEventCQ hands each delivery to a submit hook supplied by the
//     provider, for transports that already run on a serial event loop
//     (simnic routes deliveries through the simulated CPU model);
//   - NewRingCQ queues completions on a fixed-capacity Ring drained by one
//     dispatcher goroutine, for transports whose queue pairs complete work
//     on independent goroutines (tcpnic's per-connection readers and
//     writers, shmnic's synchronous intra-host deliveries).
//
// Either way the handler observes completions serially, which is the
// contract the protocol engine is written against.
//
// A consumer may install a batch handler instead (SetBatchHandler): ring
// mode then drains the whole ring per wakeup and hands it over in slices of
// up to maxBatch, so the consumer's per-batch overhead (a group lock, say)
// is paid once per drained run rather than once per completion. Event mode
// delivers the PostBatch grouping as posted (single-element batches for
// Post) — its submit hook is already the serialization point and there is
// no queue to drain.
type CompletionQueue struct {
	// Instrumentation, nil by default; installed through Base.SetObserver
	// before any activity (see obs.go).
	completions *obs.Counter
	batchSize   *obs.Histogram
	ringBatches *obs.Counter

	mu      sync.Mutex
	handler func(rdma.Completion)
	batch   func([]rdma.Completion)

	// Event mode.
	submit func(fn func())

	// Ring mode.
	ring *Ring
	wg   sync.WaitGroup
}

// NewEventCQ builds a completion queue for event-loop transports: each
// posted completion is wrapped in a closure and handed to submit, which must
// run closures serially (the simulation's CPU model already does).
func NewEventCQ(submit func(fn func())) *CompletionQueue {
	return &CompletionQueue{submit: submit}
}

// NewRingCQ builds a completion queue whose producers post into a
// fixed-capacity submission ring drained whole by one dispatcher goroutine;
// capacity sizes the ring (zero selects 1024). Close stops the dispatcher
// after draining what is queued.
func NewRingCQ(capacity int) *CompletionQueue {
	q := &CompletionQueue{ring: NewRing(capacity)}
	q.wg.Add(1)
	go q.dispatch()
	return q
}

// SetHandler installs the per-completion consumer, replacing any batch
// handler.
func (q *CompletionQueue) SetHandler(h func(rdma.Completion)) {
	q.mu.Lock()
	q.handler = h
	q.batch = nil
	q.mu.Unlock()
}

// SetBatchHandler installs a batch consumer, replacing any per-completion
// handler. See CompletionQueue's comment for the delivery discipline.
func (q *CompletionQueue) SetBatchHandler(h func([]rdma.Completion)) {
	q.mu.Lock()
	q.batch = h
	q.handler = nil
	q.mu.Unlock()
}

// HasHandler reports whether a handler is installed (providers gate posting
// on it, returning rdma.ErrNoHandler otherwise).
func (q *CompletionQueue) HasHandler() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.handler != nil || q.batch != nil
}

// Post delivers one completion. Event mode submits it to the provider's
// loop; ring mode enqueues it for the dispatcher (dropping it only when
// the queue has been closed, matching a destroyed hardware CQ).
func (q *CompletionQueue) Post(c rdma.Completion) {
	q.completions.Inc()
	if q.submit != nil {
		q.mu.Lock()
		h, bh := q.handler, q.batch
		q.mu.Unlock()
		switch {
		case bh != nil:
			// Event mode has no queue to drain: every batch is one element.
			q.batchSize.Observe(1)
			q.submit(func() { bh([]rdma.Completion{c}) })
		case h != nil:
			q.submit(func() { h(c) })
		}
		return
	}
	q.ring.Push(c)
}

// PostBatch delivers a run of completions in order with one ring operation —
// the producer-side half of completion coalescing (tcpnic's writer retires a
// whole writev batch this way). Event mode keeps the grouping and submits
// the run as one batch.
func (q *CompletionQueue) PostBatch(cs []rdma.Completion) {
	if len(cs) == 0 {
		return
	}
	q.completions.Add(uint64(len(cs)))
	if q.submit != nil {
		q.mu.Lock()
		h, bh := q.handler, q.batch
		q.mu.Unlock()
		switch {
		case bh != nil:
			q.batchSize.Observe(int64(len(cs)))
			batch := append([]rdma.Completion(nil), cs...)
			q.submit(func() { bh(batch) })
		case h != nil:
			for _, c := range cs {
				c := c
				q.submit(func() { h(c) })
			}
		}
		return
	}
	q.ring.PushBatch(cs)
}

// dispatch drains the ring serially; on Close it delivers whatever is still
// queued and exits. Every wakeup slurps the whole ring in one pass into a
// reused backing slice — so steady-state dispatch allocates nothing — and
// hands it to the consumer in slices of up to maxBatch.
func (q *CompletionQueue) dispatch() {
	defer q.wg.Done()
	buf := make([]rdma.Completion, 0, q.ring.Capacity())
	for {
		var ok bool
		buf, ok = q.ring.Drain(buf[:0])
		if len(buf) > 0 {
			q.ringBatches.Inc()
			q.deliver(buf)
		}
		if !ok {
			return
		}
	}
}

// deliver hands one drained run to the installed consumer.
func (q *CompletionQueue) deliver(run []rdma.Completion) {
	q.mu.Lock()
	h, bh := q.handler, q.batch
	q.mu.Unlock()
	if bh != nil {
		for len(run) > 0 {
			n := len(run)
			if n > maxBatch {
				n = maxBatch
			}
			q.batchSize.Observe(int64(n))
			bh(run[:n])
			run = run[n:]
		}
		return
	}
	if h != nil {
		for _, c := range run {
			h(c)
		}
	}
}

// Close stops a ring-mode dispatcher after a final drain pass and waits for
// it to exit; event-mode queues have nothing to stop. Close is idempotent
// only through the owning Base, which guards it with its closed flag.
func (q *CompletionQueue) Close() {
	if q.submit != nil {
		return
	}
	q.ring.Close()
	q.wg.Wait()
}
