package nicbase

import (
	"sync"

	"rdmc/internal/obs"
	"rdmc/internal/rdma"
)

// maxBatch bounds how many completions one dispatcher wakeup hands to a
// batch handler. Large enough to amortize the consumer's per-batch work
// (the engine takes one group lock per same-group run), small enough that a
// slow handler cannot starve the channel senders behind a giant drain.
const maxBatch = 256

// CompletionQueue serializes a node's completions into its single installed
// handler — the explicit object behind rdma.Provider.SetHandler and the
// analogue of the paper's one shared hardware completion queue per node.
//
// Two dispatch disciplines cover the two kinds of provider:
//
//   - NewEventCQ hands each delivery to a submit hook supplied by the
//     provider, for transports that already run on a serial event loop
//     (simnic routes deliveries through the simulated CPU model);
//   - NewChannelCQ buffers completions on a channel drained by one
//     dispatcher goroutine, for transports whose queue pairs complete work
//     on independent goroutines (tcpnic's per-connection readers and
//     writers).
//
// Either way the handler observes completions serially, which is the
// contract the protocol engine is written against.
//
// A consumer may install a batch handler instead (SetBatchHandler): channel
// mode then drains up to maxBatch queued completions per wakeup into one
// slice, so the consumer's per-batch overhead (a group lock, say) is paid
// once per drain rather than once per completion. Event mode delivers
// single-element batches — its submit hook is already the serialization
// point and there is no queue to drain.
type CompletionQueue struct {
	// Instrumentation, nil by default; installed through Base.SetObserver
	// before any activity (see obs.go).
	completions *obs.Counter
	batchSize   *obs.Histogram

	mu      sync.Mutex
	handler func(rdma.Completion)
	batch   func([]rdma.Completion)

	// Event mode.
	submit func(fn func())

	// Channel mode.
	ch   chan rdma.Completion
	quit chan struct{}
	wg   sync.WaitGroup
}

// NewEventCQ builds a completion queue for event-loop transports: each
// posted completion is wrapped in a closure and handed to submit, which must
// run closures serially (the simulation's CPU model already does).
func NewEventCQ(submit func(fn func())) *CompletionQueue {
	return &CompletionQueue{submit: submit}
}

// NewChannelCQ builds a completion queue with its own dispatcher goroutine
// reading a buffered channel; buffer sizes the channel (zero selects 1024).
// Close stops the dispatcher after draining what is queued.
func NewChannelCQ(buffer int) *CompletionQueue {
	if buffer <= 0 {
		buffer = 1024
	}
	q := &CompletionQueue{
		ch:   make(chan rdma.Completion, buffer),
		quit: make(chan struct{}),
	}
	q.wg.Add(1)
	go q.dispatch()
	return q
}

// SetHandler installs the per-completion consumer, replacing any batch
// handler.
func (q *CompletionQueue) SetHandler(h func(rdma.Completion)) {
	q.mu.Lock()
	q.handler = h
	q.batch = nil
	q.mu.Unlock()
}

// SetBatchHandler installs a batch consumer, replacing any per-completion
// handler. See CompletionQueue's comment for the delivery discipline.
func (q *CompletionQueue) SetBatchHandler(h func([]rdma.Completion)) {
	q.mu.Lock()
	q.batch = h
	q.handler = nil
	q.mu.Unlock()
}

// HasHandler reports whether a handler is installed (providers gate posting
// on it, returning rdma.ErrNoHandler otherwise).
func (q *CompletionQueue) HasHandler() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.handler != nil || q.batch != nil
}

// Post delivers one completion. Event mode submits it to the provider's
// loop; channel mode enqueues it for the dispatcher (dropping it only when
// the queue has been closed, matching a destroyed hardware CQ).
func (q *CompletionQueue) Post(c rdma.Completion) {
	q.completions.Inc()
	if q.submit != nil {
		q.mu.Lock()
		h, bh := q.handler, q.batch
		q.mu.Unlock()
		switch {
		case bh != nil:
			// Event mode has no queue to drain: every batch is one element.
			q.batchSize.Observe(1)
			q.submit(func() { bh([]rdma.Completion{c}) })
		case h != nil:
			q.submit(func() { h(c) })
		}
		return
	}
	select {
	case q.ch <- c:
	case <-q.quit:
	}
}

// dispatch drains the channel serially; on Close it delivers whatever is
// still queued and exits. With a batch handler installed it slurps every
// already-queued completion (up to maxBatch) per wakeup, reusing one backing
// slice across wakeups so steady-state dispatch allocates nothing.
func (q *CompletionQueue) dispatch() {
	defer q.wg.Done()
	buf := make([]rdma.Completion, 0, maxBatch)
	deliver := func(c rdma.Completion) {
		q.mu.Lock()
		h, bh := q.handler, q.batch
		q.mu.Unlock()
		if bh != nil {
			buf = append(buf[:0], c)
			for len(buf) < maxBatch {
				select {
				case more := <-q.ch:
					buf = append(buf, more)
				default:
					q.batchSize.Observe(int64(len(buf)))
					bh(buf)
					return
				}
			}
			q.batchSize.Observe(int64(len(buf)))
			bh(buf)
			return
		}
		if h != nil {
			h(c)
		}
	}
	for {
		select {
		case c := <-q.ch:
			deliver(c)
		case <-q.quit:
			for {
				select {
				case c := <-q.ch:
					deliver(c)
				default:
					return
				}
			}
		}
	}
}

// Close stops a channel-mode dispatcher after a drain pass and waits for it
// to exit; event-mode queues have nothing to stop. Close is idempotent only
// through the owning Base, which guards it with its closed flag.
func (q *CompletionQueue) Close() {
	if q.submit != nil {
		return
	}
	close(q.quit)
	q.wg.Wait()
}
