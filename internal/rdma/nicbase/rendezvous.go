package nicbase

import "rdmc/internal/rdma"

// rendezvousKey orders the two endpoints so both sides of a connection
// compute the same key from (local, peer, token).
type rendezvousKey struct {
	lo, hi rdma.NodeID
	token  uint64
}

// Rendezvous pairs queue-pair endpoints created independently by the two
// sides of a Connect call — the in-memory counterpart of the out-of-band
// key exchange the paper performs over its bootstrap mesh. E is the
// transport's endpoint type. Rendezvous is not goroutine-safe: it belongs
// to transports that rendezvous on a single event loop (simnic); socket
// transports rendezvous through their accept handshake and Base.EnsureQP
// instead.
type Rendezvous[E any] struct {
	pending map[rendezvousKey][]pendingEndpoint[E]
}

type pendingEndpoint[E any] struct {
	local rdma.NodeID
	ep    E
}

// NewRendezvous builds an empty rendezvous table.
func NewRendezvous[E any]() *Rendezvous[E] {
	return &Rendezvous[E]{pending: make(map[rendezvousKey][]pendingEndpoint[E])}
}

// Match offers an endpoint owned by local that wants to reach peer under
// token. If the mirror-image offer is already parked, both are removed and
// the peer's endpoint is returned; otherwise the offer is parked for the
// peer to find and ok is false. Self-connections (local == peer) pair two
// successive offers from the same node.
func (r *Rendezvous[E]) Match(local, peer rdma.NodeID, token uint64, ep E) (other E, ok bool) {
	key := rendezvousKey{lo: local, hi: peer, token: token}
	if key.lo > key.hi {
		key.lo, key.hi = key.hi, key.lo
	}
	for i, cand := range r.pending[key] {
		if cand.local == peer {
			r.pending[key] = append(r.pending[key][:i], r.pending[key][i+1:]...)
			return cand.ep, true
		}
	}
	r.pending[key] = append(r.pending[key], pendingEndpoint[E]{local: local, ep: ep})
	return other, false
}
