package nicbase

import "rdmc/internal/obs"

// SetObserver installs (or, with nil, removes) NIC-level instrumentation:
//
//	nic.posts          work requests admitted through CheckPost
//	nic.completions    completions posted to the node's CQ
//	nic.cq_batch       completions handed to the batch handler per wakeup
//	nicbase.ring_batch dispatcher wakeups that drained a non-empty ring
//
// Like every observer hook in the tree it must be installed before provider
// activity — the instrument pointers are read without synchronization on the
// post and dispatch paths. All instruments are nil-safe, so a provider with
// no observer pays a nil test per event and nothing else.
func (b *Base) SetObserver(o *obs.Obs) {
	if o == nil {
		b.posts = nil
		b.cq.setMetrics(nil, nil, nil)
		return
	}
	r := o.Registry()
	b.posts = r.Counter("nic.posts")
	b.cq.setMetrics(r.Counter("nic.completions"), r.Histogram("nic.cq_batch", obs.Pow2Buckets(9)), r.Counter("nicbase.ring_batch"))
}

// setMetrics installs the queue's instruments (see Base.SetObserver).
func (q *CompletionQueue) setMetrics(completions *obs.Counter, batchSize *obs.Histogram, ringBatches *obs.Counter) {
	q.completions = completions
	q.batchSize = batchSize
	q.ringBatches = ringBatches
}
