package shmnic

import (
	"sync"

	"rdmc/internal/rdma"
)

// endpoint is one half of an intra-host queue pair. All mutable state is
// guarded by the owning Exchange's mutex; posts deliver synchronously into
// the peer half while the lock is held, and the side effects that may
// re-enter a provider — completions and region writes — are collected in an
// effects set and run after the lock drops.
type endpoint struct {
	x     *Exchange
	h     Host
	peer  rdma.NodeID
	token uint64

	// Guarded by x.mu.
	remote   *endpoint
	pending  []outWR // posts queued before the halves paired, FIFO
	recvs    fifo[recvWR]
	arrivals fifo[arrival]
	broken   bool
}

// fifo is a slice-backed queue that recycles its backing array: popping
// advances a head index instead of re-slicing (which shrinks capacity and
// forces a reallocation every few push/pop cycles), so the steady-state
// post/match churn stops allocating once the array reaches its high-water
// mark. Popped and compacted-over slots are zeroed to drop buffer
// references.
type fifo[T any] struct {
	buf  []T
	head int
}

func (f *fifo[T]) len() int { return len(f.buf) - f.head }

func (f *fifo[T]) push(v T) {
	if f.head > 0 && len(f.buf) == cap(f.buf) {
		var zero T
		n := copy(f.buf, f.buf[f.head:])
		for i := n; i < len(f.buf); i++ {
			f.buf[i] = zero
		}
		f.buf = f.buf[:n]
		f.head = 0
	}
	f.buf = append(f.buf, v)
}

func (f *fifo[T]) peek() T { return f.buf[f.head] }

func (f *fifo[T]) pop() T {
	var zero T
	v := f.buf[f.head]
	f.buf[f.head] = zero
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return v
}

var _ rdma.QueuePair = (*endpoint)(nil)

type outWR struct {
	write  bool
	buf    rdma.Buffer // sends
	imm    uint32
	region rdma.RegionID // writes
	offset int
	data   []byte
	wrID   uint64
}

type recvWR struct {
	buf  rdma.Buffer
	wrID uint64
}

// arrival is a send that reached this endpoint before a receive was posted.
// Real payloads are staged by copy through the host's pool: the sender's
// completion has already fired, so the sender owns its buffer again.
type arrival struct {
	data   []byte
	pooled bool
	imm    uint32
	bytes  int
}

// emit is one completion bound for a host's completion queue.
type emit struct {
	h Host
	c rdma.Completion
}

// apply is one one-sided write bound for a host's registered region. The
// payload is the poster's slice, zero-copy: applies run before completions,
// so the bytes land in the region before the poster can observe the write
// completion and reuse the buffer.
type apply struct {
	src    *endpoint
	h      Host
	region rdma.RegionID
	offset int
	length int
	data   []byte
}

// effects accumulates the provider re-entrant side effects of a locked
// state transition. Instances cycle through a pool — the struct is handed
// across non-inlined calls and self-references its slices, so a stack
// instance would escape and cost an allocation per post; recycling keeps
// the steady-state data plane allocation-free.
type effects struct {
	comps   []emit
	applies []apply
}

var fxPool = sync.Pool{New: func() any { return new(effects) }}

func newEffects() *effects { return fxPool.Get().(*effects) }

func (fx *effects) complete(e *endpoint, c rdma.Completion) {
	c.Peer, c.Token = e.peer, e.token
	fx.comps = append(fx.comps, emit{h: e.h, c: c})
}

// run executes the collected side effects with no locks held: region writes
// first (mirroring the hardware, where the write lands before its completion
// is observable), completions second. A write that misses its target region
// breaks the pair, exactly as a real NIC fails the connection on an invalid
// remote access. fx recycles into the pool; it must not be used after run.
func (fx *effects) run(x *Exchange) {
	for _, a := range fx.applies {
		if err := a.h.ApplyWrite(a.region, a.offset, a.length, a.data); err != nil {
			bx := newEffects()
			x.mu.Lock()
			a.src.breakBothLocked(bx)
			x.mu.Unlock()
			bx.run(x)
		}
	}
	for _, e := range fx.comps {
		e.h.Complete(e.c)
	}
	for i := range fx.comps {
		fx.comps[i] = emit{}
	}
	for i := range fx.applies {
		fx.applies[i] = apply{}
	}
	fx.comps, fx.applies = fx.comps[:0], fx.applies[:0]
	fxPool.Put(fx)
}

// Peer implements rdma.QueuePair.
func (e *endpoint) Peer() rdma.NodeID { return e.peer }

// Token implements rdma.QueuePair.
func (e *endpoint) Token() uint64 { return e.token }

// PostSend implements rdma.QueuePair.
func (e *endpoint) PostSend(buf rdma.Buffer, imm uint32, wrID uint64) error {
	return e.post(outWR{buf: buf, imm: imm, wrID: wrID})
}

// PostWrite implements rdma.QueuePair.
func (e *endpoint) PostWrite(region rdma.RegionID, offset int, data []byte, wrID uint64) error {
	return e.post(outWR{write: true, region: region, offset: offset, data: data, wrID: wrID})
}

func (e *endpoint) post(wr outWR) error {
	e.x.mu.Lock()
	if e.broken {
		e.x.mu.Unlock()
		return rdma.ErrBroken
	}
	if err := e.h.CheckPost(); err != nil {
		e.x.mu.Unlock()
		return err
	}
	if e.remote == nil {
		e.pending = append(e.pending, wr)
		e.x.mu.Unlock()
		return nil
	}
	fx := newEffects()
	e.deliverLocked(wr, fx)
	e.x.mu.Unlock()
	fx.run(e.x)
	return nil
}

// PostRecv implements rdma.QueuePair.
func (e *endpoint) PostRecv(buf rdma.Buffer, wrID uint64) error {
	e.x.mu.Lock()
	if e.broken {
		e.x.mu.Unlock()
		return rdma.ErrBroken
	}
	if err := e.h.CheckPost(); err != nil {
		e.x.mu.Unlock()
		return err
	}
	if e.arrivals.len() > 0 {
		fx := newEffects()
		a := e.arrivals.peek()
		if a.data != nil && buf.Data != nil && len(buf.Data) < len(a.data) {
			e.breakBothLocked(fx)
			e.x.mu.Unlock()
			fx.run(e.x)
			return rdma.ErrBufferTooSmall
		}
		e.arrivals.pop()
		e.completeRecvLocked(recvWR{buf: buf, wrID: wrID}, a.data, a.imm, a.bytes, fx)
		if a.pooled {
			e.h.Pool().Put(a.data)
		}
		e.x.mu.Unlock()
		fx.run(e.x)
		return nil
	}
	e.recvs.push(recvWR{buf: buf, wrID: wrID})
	e.x.mu.Unlock()
	return nil
}

// Close implements rdma.QueuePair: both halves break and every outstanding
// work request on either side completes with StatusBroken.
func (e *endpoint) Close() error {
	fx := newEffects()
	e.x.mu.Lock()
	e.breakBothLocked(fx)
	e.x.mu.Unlock()
	fx.run(e.x)
	return nil
}

// deliverLocked moves one work request into the paired half: writes become
// deferred region applies; sends match the peer's oldest posted receive (one
// copy, posted buffer to posted buffer) or stage through the peer's pool.
// The send or write completion fires unconditionally — acceptance, like a
// NIC reporting DMA-done once the payload left the source buffer.
func (e *endpoint) deliverLocked(wr outWR, fx *effects) {
	r := e.remote
	if wr.write {
		fx.applies = append(fx.applies, apply{
			src: e, h: r.h,
			region: wr.region, offset: wr.offset, length: len(wr.data), data: wr.data,
		})
		fx.complete(e, rdma.Completion{Op: rdma.OpWrite, Status: rdma.StatusOK, WRID: wr.wrID, Bytes: len(wr.data)})
		return
	}
	fx.complete(e, rdma.Completion{Op: rdma.OpSend, Status: rdma.StatusOK, WRID: wr.wrID, Bytes: wr.buf.Len})
	var payload []byte
	if wr.buf.Data != nil {
		payload = wr.buf.Data[:wr.buf.Len]
	}
	if r.recvs.len() > 0 {
		r.completeRecvLocked(r.recvs.pop(), payload, wr.imm, wr.buf.Len, fx)
		return
	}
	a := arrival{imm: wr.imm, bytes: wr.buf.Len}
	if payload != nil {
		st := r.h.Pool().Get(len(payload))
		copy(st, payload)
		a.data = st[:len(payload)]
		a.pooled = true
	}
	r.arrivals.push(a)
}

// completeRecvLocked lands a payload in a matched receive. A posted buffer
// too small for real arriving bytes breaks the pair — the receive never
// completes, matching the simulated and socket transports.
func (r *endpoint) completeRecvLocked(rv recvWR, payload []byte, imm uint32, bytes int, fx *effects) {
	c := rdma.Completion{Op: rdma.OpRecv, Status: rdma.StatusOK, WRID: rv.wrID, Imm: imm, Bytes: bytes}
	if payload != nil && rv.buf.Data != nil {
		if len(rv.buf.Data) < len(payload) {
			r.breakBothLocked(fx)
			return
		}
		copy(rv.buf.Data, payload)
		c.Data = rv.buf.Data[:len(payload)]
	}
	fx.complete(r, c)
}

// flushLocked delivers the posts queued before pairing, in post order. A
// delivery can break the pair mid-flush (undersized posted receive); the
// remainder then completes Broken, preserving exactly-once completion.
func (e *endpoint) flushLocked(fx *effects) {
	pend := e.pending
	e.pending = nil
	for _, wr := range pend {
		if e.broken {
			op := rdma.OpSend
			if wr.write {
				op = rdma.OpWrite
			}
			fx.complete(e, rdma.Completion{Op: op, Status: rdma.StatusBroken, WRID: wr.wrID})
			continue
		}
		e.deliverLocked(wr, fx)
	}
}

func (e *endpoint) breakBothLocked(fx *effects) {
	e.breakLocked(fx)
	if e.remote != nil {
		e.remote.breakLocked(fx)
	}
}

// breakLocked fails every outstanding work request on this half — queued
// posts in post order, then posted receives — and releases staged arrivals
// back to the pool.
func (e *endpoint) breakLocked(fx *effects) {
	if e.broken {
		return
	}
	e.broken = true
	for _, wr := range e.pending {
		op := rdma.OpSend
		if wr.write {
			op = rdma.OpWrite
		}
		fx.complete(e, rdma.Completion{Op: op, Status: rdma.StatusBroken, WRID: wr.wrID})
	}
	e.pending = nil
	for e.recvs.len() > 0 {
		rv := e.recvs.pop()
		fx.complete(e, rdma.Completion{Op: rdma.OpRecv, Status: rdma.StatusBroken, WRID: rv.wrID})
	}
	for e.arrivals.len() > 0 {
		a := e.arrivals.pop()
		if a.pooled {
			e.h.Pool().Put(a.data)
		}
	}
}
