// Package shmnic implements the rdma.Provider contract for ranks that share
// one operating-system process: co-located endpoints exchange blocks through
// direct memory copies — one memcpy from the sender's posted buffer into the
// receiver's posted buffer, the intra-host analogue of a DMA — skipping the
// kernel socket entirely. It is the building block the many-group
// multi-tenancy work needs for large single-process simulations with
// realistic co-location: the data plane between co-located ranks costs a
// lock and a copy instead of two syscalls and two kernel copies.
//
// The package has two faces:
//
//   - a standalone Provider, used directly and by the conformance suite:
//     every queue pair the provider creates is an in-process endpoint;
//   - the Exchange + Host plumbing that lets another transport co-host
//     intra-host endpoints: tcpnic registers its providers in an Exchange
//     and routes Connect calls for co-located peers to shared-memory
//     endpoints, while socket queue pairs keep serving remote peers.
//
// Semantics match the other providers: FIFO per queue pair, early arrivals
// staged (by copy, through the host's buffer pool) until a receive is
// posted, one-sided writes applied to the target's registered region with
// the watcher fired, and break-on-failure — closing either end fails the
// outstanding work requests of both with StatusBroken. Send buffers are
// referenced zero-copy until the send completion fires, per the ownership
// contract on rdma.QueuePair; because delivery happens inside the post
// call, the payload has always been copied out (to the peer's buffer or to
// staging) by the time the completion is observable.
package shmnic

import (
	"fmt"
	"sync"

	"rdmc/internal/rdma"
	"rdmc/internal/rdma/nicbase"
)

// Host is the provider-side surface an endpoint needs from whichever NIC
// owns it: the standalone shmnic Provider, or a transport like tcpnic
// co-hosting intra-host endpoints next to its sockets. nicbase.Base
// supplies everything but Pool.
type Host interface {
	NodeID() rdma.NodeID
	CheckPost() error
	Closed() bool
	Complete(rdma.Completion)
	ApplyWrite(id rdma.RegionID, offset, length int, payload []byte) error
	EnsureQP(key nicbase.QPKey, create func() rdma.QueuePair) (rdma.QueuePair, bool, error)
	// Pool stages early arrivals; co-hosting transports share their own so
	// one set of size classes serves the whole node.
	Pool() *nicbase.BufPool
}

// Exchange is one intra-host communication domain: the set of hosts whose
// ranks reach each other through shared memory. Its mutex serializes every
// endpoint state transition in the domain — pairing, posting, matching,
// breaking — which keeps the cross-endpoint delivery logic free of lock
// ordering concerns; completions and region writes are applied after the
// lock drops so the completion queue and region watchers can re-enter the
// providers.
type Exchange struct {
	mu    sync.Mutex
	hosts map[rdma.NodeID]Host
}

// NewExchange creates an empty intra-host domain.
func NewExchange() *Exchange {
	return &Exchange{hosts: make(map[rdma.NodeID]Host)}
}

var (
	domainsMu sync.Mutex
	domains   = make(map[string]*Exchange)
)

// DomainExchange returns the process-wide Exchange registered under name,
// creating it on first use. Distinct names are fully isolated; clusters that
// must not see each other (parallel tests, multiple local clusters) pick
// distinct names.
func DomainExchange(name string) *Exchange {
	domainsMu.Lock()
	defer domainsMu.Unlock()
	ex := domains[name]
	if ex == nil {
		ex = NewExchange()
		domains[name] = ex
	}
	return ex
}

// Register adds a host to the domain. Co-located hosts must all register
// before any of them connects, so both sides of a pair agree the peer is
// intra-host.
func (x *Exchange) Register(h Host) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, dup := x.hosts[h.NodeID()]; dup {
		return fmt.Errorf("shmnic: node %d already registered in exchange", h.NodeID())
	}
	x.hosts[h.NodeID()] = h
	return nil
}

// Deregister removes a host (typically on provider close).
func (x *Exchange) Deregister(h Host) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.hosts[h.NodeID()] == h {
		delete(x.hosts, h.NodeID())
	}
}

// Has reports whether peer is reachable through this domain.
func (x *Exchange) Has(peer rdma.NodeID) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	_, ok := x.hosts[peer]
	return ok
}

// NewEndpoint creates the local half of an intra-host queue pair owned by
// h. The caller registers it in the host's queue-pair table (EnsureQP) and
// then calls Pair to link it with the peer's half once both exist.
func (x *Exchange) NewEndpoint(h Host, peer rdma.NodeID, token uint64) rdma.QueuePair {
	return &endpoint{x: x, h: h, peer: peer, token: token}
}

// Pair links ep with the matching endpoint on the peer host, creating (and
// parking) the peer's half if its Connect has not run yet — the same
// whichever-side-arrives-first rendezvous tcpnic's accept path performs.
// Posts queued before pairing flush in order. Pair is idempotent.
func (x *Exchange) Pair(qp rdma.QueuePair) {
	ep, ok := qp.(*endpoint)
	if !ok {
		return
	}
	x.mu.Lock()
	rh := x.hosts[ep.peer]
	x.mu.Unlock()
	if rh == nil || rh.Closed() {
		return // peer not up yet; its Connect (or Register+Connect) pairs
	}
	rqp, _, err := rh.EnsureQP(
		nicbase.QPKey{Peer: ep.h.NodeID(), Token: ep.token},
		func() rdma.QueuePair { return x.NewEndpoint(rh, ep.h.NodeID(), ep.token) },
	)
	if err != nil {
		return // peer closed between lookup and rendezvous
	}
	remote, ok := rqp.(*endpoint)
	if !ok {
		return // key occupied by another transport's queue pair
	}

	x.mu.Lock()
	if ep.remote != nil || remote.remote != nil || ep.broken || remote.broken {
		x.mu.Unlock()
		return
	}
	ep.remote = remote
	remote.remote = ep
	fx := newEffects()
	ep.flushLocked(fx)
	remote.flushLocked(fx)
	x.mu.Unlock()
	fx.run(x)
}

// Config describes one standalone shared-memory provider.
type Config struct {
	// NodeID is the local identity within the exchange's domain.
	NodeID rdma.NodeID
	// Exchange is the intra-host domain to join; required.
	Exchange *Exchange
	// CompletionBuffer sizes the completion ring; zero selects 1024.
	CompletionBuffer int
}

// Provider is a shared-memory NIC for one rank of an intra-host domain.
type Provider struct {
	nicbase.Base
	ex   *Exchange
	pool nicbase.BufPool
}

var _ rdma.Provider = (*Provider)(nil)
var _ Host = (*Provider)(nil)

// New joins the exchange and starts dispatching completions.
func New(cfg Config) (*Provider, error) {
	if cfg.Exchange == nil {
		return nil, fmt.Errorf("shmnic: node %d needs an exchange", cfg.NodeID)
	}
	p := &Provider{ex: cfg.Exchange}
	p.Init(cfg.NodeID, nicbase.NewRingCQ(cfg.CompletionBuffer))
	if err := cfg.Exchange.Register(p); err != nil {
		p.CloseCQ()
		return nil, err
	}
	return p, nil
}

// Pool implements Host.
func (p *Provider) Pool() *nicbase.BufPool { return &p.pool }

// Connect implements rdma.Provider. Both sides call Connect with the same
// token; whichever arrives second completes the pairing and flushes queued
// work requests.
func (p *Provider) Connect(peer rdma.NodeID, token uint64) (rdma.QueuePair, error) {
	if peer == p.NodeID() {
		return nil, fmt.Errorf("shmnic: node %d cannot connect to itself", peer)
	}
	qp, _, err := p.EnsureQP(
		nicbase.QPKey{Peer: peer, Token: token},
		func() rdma.QueuePair { return p.ex.NewEndpoint(p, peer, token) },
	)
	if err != nil {
		return nil, err
	}
	p.ex.Pair(qp)
	return qp, nil
}

// Close implements rdma.Provider: every endpoint breaks (failing the
// outstanding work of both halves), the completion queue drains, and the
// node leaves the exchange.
func (p *Provider) Close() error {
	qps, first := p.Shutdown()
	if !first {
		return nil
	}
	for _, qp := range qps {
		_ = qp.Close()
	}
	p.CloseCQ()
	p.ex.Deregister(p)
	return nil
}
