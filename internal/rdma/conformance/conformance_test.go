package conformance

import (
	"net"
	"testing"
	"time"

	"rdmc/internal/rdma"
	"rdmc/internal/rdma/shmnic"
	"rdmc/internal/rdma/simnic"
	"rdmc/internal/rdma/tcpnic"
	"rdmc/internal/simnet"
)

func TestSimnicConformance(t *testing.T) {
	Run(t, func(t *testing.T) *Harness {
		sim := simnet.NewSim(1)
		cluster, err := simnet.NewCluster(sim, simnet.ClusterConfig{
			Nodes:         2,
			LinkBandwidth: 1e6,
			Latency:       0.001,
			CPU:           simnet.CPUConfig{Mode: simnet.ModePolling},
			RetryTimeout:  0.01,
		})
		if err != nil {
			t.Fatal(err)
		}
		network := simnic.NewNetwork(cluster)
		return &Harness{
			A:      network.Provider(0),
			B:      network.Provider(1),
			Settle: func() { sim.Run() },
			Timer: func(d float64, fn func()) func() {
				ev := sim.After(d, fn)
				return ev.Cancel
			},
		}
	})
}

func TestShmNicConformance(t *testing.T) {
	Run(t, func(t *testing.T) *Harness {
		ex := shmnic.NewExchange()
		a, err := shmnic.New(shmnic.Config{NodeID: 0, Exchange: ex})
		if err != nil {
			t.Fatal(err)
		}
		b, err := shmnic.New(shmnic.Config{NodeID: 1, Exchange: ex})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			_ = a.Close()
			_ = b.Close()
		})
		return &Harness{
			A:      a,
			B:      b,
			Settle: func() { time.Sleep(time.Millisecond) },
		}
	})
}

func TestTCPNicConformance(t *testing.T) {
	Run(t, func(t *testing.T) *Harness {
		lnA, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lnB, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs := map[rdma.NodeID]string{0: lnA.Addr().String(), 1: lnB.Addr().String()}
		a, err := tcpnic.New(tcpnic.Config{NodeID: 0, Listener: lnA, Addrs: addrs})
		if err != nil {
			t.Fatal(err)
		}
		b, err := tcpnic.New(tcpnic.Config{NodeID: 1, Listener: lnB, Addrs: addrs})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			_ = a.Close()
			_ = b.Close()
		})
		return &Harness{
			A:      a,
			B:      b,
			Settle: func() { time.Sleep(50 * time.Millisecond) },
		}
	})
}
