// Package conformance is the executable contract of rdma.Provider: a suite
// of behavioral tests that every transport must pass, exercised identically
// against the simulated NIC and the TCP NIC. It pins down the semantics the
// protocol engine relies on — FIFO per queue pair, immediate delivery, early
// arrival buffering, region watcher behavior, and the exact error surfaced
// on each misuse (ErrNoHandler, ErrBufferTooSmall, ErrBroken, ErrClosed) —
// so that the providers cannot drift apart and a future backend (ibverbs,
// io_uring) can be validated by pointing a Factory at it.
package conformance

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"rdmc/internal/rdma"
)

// Harness is one connected two-node transport instance under test.
type Harness struct {
	// A and B are providers for nodes 0 and 1 of a two-node cluster. The
	// factory returns them without completion handlers; the suite installs
	// its own.
	A, B rdma.Provider
	// Settle advances the transport until in-flight work has landed: the
	// simulated NIC runs its event loop dry, the TCP NIC sleeps long
	// enough for loopback frames to arrive. After Settle returns, anything
	// still undelivered is expected never to deliver.
	Settle func()
	// Timer, when set, schedules fn after d seconds of TRANSPORT time and
	// returns a cancel function. The loss-mode cases hand it to the
	// reliability wrapper as its retransmission clock: the simulated NIC
	// must supply a virtual-time timer (a wall-clock timer never fires
	// inside its Settle, and firing off the event loop would race it),
	// while real-time transports leave it nil for the wall-clock default.
	Timer func(d float64, fn func()) (cancel func())
}

// Factory builds a fresh Harness per test and registers cleanup on t.
type Factory func(t *testing.T) *Harness

// Run exercises the full conformance suite against the transport.
func Run(t *testing.T, f Factory) {
	suite := []struct {
		name string
		fn   func(*testing.T, *Harness)
	}{
		{"SendRecvDeliversDataAndImmediate", testSendRecv},
		{"VirtualSendCarriesNoBytes", testVirtualSend},
		{"FIFOPerQueuePair", testFIFO},
		{"WindowedBurstKeepsFIFOAndPerWRCompletions", testWindowedBurst},
		{"BatchDispatchPreservesOrderAndMetadata", testBatchDispatch},
		{"EarlyArrivalBuffersUntilRecvPosted", testEarlyArrival},
		{"DistinctTokensAreSeparateQueuePairs", testDistinctTokens},
		{"OneSidedWriteUpdatesRegionAndWatcher", testOneSidedWrite},
		{"WatchUnknownRegionFails", testWatchUnknownRegion},
		{"PostWithoutHandlerFails", testPostWithoutHandler},
		{"PostedRecvTooSmallBreaksQueuePair", testPostedRecvTooSmall},
		{"LateRecvTooSmallReturnsErrorAndBreaks", testLateRecvTooSmall},
		{"PostedBuffersOwnedUntilCompletion", testPostedBufferOwnership},
		{"QueuePairCloseFailsOutstandingWork", testQPCloseFailsOutstanding},
		{"BrokenMidWindowedTransferPropagates", testBrokenMidWindow},
		{"ProviderCloseRefusesNewWork", testProviderClose},
		{"ReliabRetransmitDeliversExactlyOnce", testReliabExactlyOnce},
		{"ReliabFIFOPreservedAcrossRetransmit", testReliabFIFO},
		{"ReliabBreakStillSurfaces", testReliabBreak},
	}
	for _, tc := range suite {
		t.Run(tc.name, func(t *testing.T) { tc.fn(t, f(t)) })
	}
}

// sink records completions from any dispatch discipline (the simulated NIC
// delivers on its event loop, the TCP NIC from a dispatcher goroutine).
type sink struct {
	mu  sync.Mutex
	got []rdma.Completion
}

func (s *sink) handle(c rdma.Completion) {
	s.mu.Lock()
	s.got = append(s.got, c)
	s.mu.Unlock()
}

func (s *sink) snapshot() []rdma.Completion {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]rdma.Completion(nil), s.got...)
}

// waitN settles the transport until n completions arrived, failing the test
// after a real-time deadline.
func (s *sink) waitN(t *testing.T, h *Harness, n int) []rdma.Completion {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		h.Settle()
		if got := s.snapshot(); len(got) >= n {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d of %d completions", len(s.snapshot()), n)
		}
	}
}

// attach installs fresh sinks on both providers.
func attach(h *Harness) (sa, sb *sink) {
	sa, sb = &sink{}, &sink{}
	h.A.SetHandler(sa.handle)
	h.B.SetHandler(sb.handle)
	return sa, sb
}

// connect builds both ends of a queue pair under the given token.
func connect(t *testing.T, h *Harness, token uint64) (qa, qb rdma.QueuePair) {
	t.Helper()
	qa, err := h.A.Connect(h.B.NodeID(), token)
	if err != nil {
		t.Fatal(err)
	}
	qb, err = h.B.Connect(h.A.NodeID(), token)
	if err != nil {
		t.Fatal(err)
	}
	return qa, qb
}

func testSendRecv(t *testing.T, h *Harness) {
	sa, sb := attach(h)
	qa, qb := connect(t, h, 7)

	payload := []byte("conformant payload")
	if err := qb.PostRecv(rdma.MakeBuffer(make([]byte, 64)), 100); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.MakeBuffer(payload), 0xdead, 200); err != nil {
		t.Fatal(err)
	}

	sends := sa.waitN(t, h, 1)
	if c := sends[0]; c.Op != rdma.OpSend || c.Status != rdma.StatusOK || c.WRID != 200 || c.Bytes != len(payload) {
		t.Errorf("send completion = %+v", c)
	}
	recvs := sb.waitN(t, h, 1)
	c := recvs[0]
	if c.Op != rdma.OpRecv || c.Status != rdma.StatusOK || c.Imm != 0xdead || c.WRID != 100 {
		t.Errorf("recv completion = %+v", c)
	}
	if !bytes.Equal(c.Data, payload) {
		t.Errorf("data = %q, want %q", c.Data, payload)
	}
	if c.Peer != h.A.NodeID() || c.Token != 7 || c.Bytes != len(payload) {
		t.Errorf("peer/token/bytes = %d/%d/%d, want %d/7/%d", c.Peer, c.Token, c.Bytes, h.A.NodeID(), len(payload))
	}
}

func testVirtualSend(t *testing.T, h *Harness) {
	_, sb := attach(h)
	qa, qb := connect(t, h, 1)
	if err := qb.PostRecv(rdma.SizeBuffer(1<<16), 1); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.SizeBuffer(1<<16), 5, 2); err != nil {
		t.Fatal(err)
	}
	recvs := sb.waitN(t, h, 1)
	if recvs[0].Bytes != 1<<16 || recvs[0].Data != nil {
		t.Errorf("virtual recv = %+v, want Bytes=%d Data=nil", recvs[0], 1<<16)
	}
}

func testFIFO(t *testing.T, h *Harness) {
	_, sb := attach(h)
	qa, qb := connect(t, h, 1)
	const n = 20
	for i := uint64(0); i < n; i++ {
		if err := qb.PostRecv(rdma.SizeBuffer(16), i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if err := qa.PostSend(rdma.SizeBuffer(16), uint32(i), i); err != nil {
			t.Fatal(err)
		}
	}
	recvs := sb.waitN(t, h, n)
	for i, c := range recvs {
		if c.WRID != uint64(i) || c.Imm != uint32(i) {
			t.Fatalf("completion %d out of order: %+v", i, c)
		}
	}
}

// testWindowedBurst is the transport-level contract behind the engine's send
// window: many sends posted back to back with no completion in between must
// still hit the wire in post order — even when a short block posted late
// could overtake a large one in flight — and every work request must get
// exactly one completion of its own. Payload sizes alternate large and tiny
// to tempt a transport that races transfers into reordering them.
func testWindowedBurst(t *testing.T, h *Harness) {
	sa, sb := attach(h)
	qa, qb := connect(t, h, 1)
	const n = 32
	sizes := make([]int, n)
	payloads := make([][]byte, n)
	for i := range sizes {
		sizes[i] = 8 << 10
		if i%3 == 2 {
			sizes[i] = 16 // a runt every third send, tempting overtake
		}
		payloads[i] = bytes.Repeat([]byte{byte(i + 1)}, sizes[i])
		if err := qb.PostRecv(rdma.MakeBuffer(make([]byte, 8<<10)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		if err := qa.PostSend(rdma.MakeBuffer(p), uint32(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	recvs := sb.waitN(t, h, n)
	for i, c := range recvs[:n] {
		if c.WRID != uint64(i) || c.Imm != uint32(i) {
			t.Fatalf("recv %d out of order: %+v", i, c)
		}
		if c.Bytes != sizes[i] || !bytes.Equal(c.Data, payloads[i]) {
			t.Fatalf("recv %d payload corrupted: %d bytes", i, c.Bytes)
		}
	}

	sends := sa.waitN(t, h, n)
	seen := make(map[uint64]bool, n)
	for i, c := range sends[:n] {
		if c.Op != rdma.OpSend || c.Status != rdma.StatusOK {
			t.Fatalf("send completion %d = %+v", i, c)
		}
		if c.WRID != uint64(i) {
			t.Fatalf("send completion %d has WRID %d, want FIFO order", i, c.WRID)
		}
		if seen[c.WRID] {
			t.Fatalf("send WRID %d completed twice", c.WRID)
		}
		seen[c.WRID] = true
	}
	if len(seen) != n {
		t.Fatalf("got %d distinct send completions, want %d", len(seen), n)
	}
}

// batchSink records batch-dispatched completions flattened in delivery
// order. Batches must be copied element-wise: the dispatcher reuses its
// backing slice across wakeups.
type batchSink struct {
	mu      sync.Mutex
	flat    []rdma.Completion
	batches []int // length of each delivered batch
}

func (s *batchSink) handle(batch []rdma.Completion) {
	s.mu.Lock()
	s.flat = append(s.flat, batch...)
	s.batches = append(s.batches, len(batch))
	s.mu.Unlock()
}

func (s *batchSink) snapshot() []rdma.Completion {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]rdma.Completion(nil), s.flat...)
}

func (s *batchSink) waitN(t *testing.T, h *Harness, n int) []rdma.Completion {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		h.Settle()
		if got := s.snapshot(); len(got) >= n {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d of %d completions", len(s.snapshot()), n)
		}
	}
}

// testBatchDispatch pins the batch-dispatch contract the engine's
// onCompletionBatch depends on: with a batch handler installed, completions
// arrive in slices whose flattened order is exactly the per-completion
// dispatch order, and each completion carries the same metadata (WRID, Imm,
// Bytes, Peer, Token, Op, Status) it would carry under one-at-a-time
// dispatch. Both providers must surface the identical flattened sequence for
// this deterministic workload, so the engine may treat batch boundaries as
// pure framing.
func testBatchDispatch(t *testing.T, h *Harness) {
	ba, aOK := h.A.(rdma.BatchProvider)
	bb, bOK := h.B.(rdma.BatchProvider)
	if !aOK || !bOK {
		t.Fatalf("provider does not implement rdma.BatchProvider (A %v, B %v)", aOK, bOK)
	}
	sa, sb := &batchSink{}, &batchSink{}
	ba.SetBatchHandler(sa.handle)
	bb.SetBatchHandler(sb.handle)
	qa, qb := connect(t, h, 9)

	const n = 24
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = 4 << 10
		if i%3 == 2 {
			sizes[i] = 16
		}
		if err := qb.PostRecv(rdma.SizeBuffer(4<<10), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := range sizes {
		if err := qa.PostSend(rdma.SizeBuffer(sizes[i]), uint32(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	recvs := sb.waitN(t, h, n)
	if len(recvs) != n {
		t.Fatalf("receiver flattened %d completions, want exactly %d", len(recvs), n)
	}
	for i, c := range recvs {
		if c.Op != rdma.OpRecv || c.Status != rdma.StatusOK {
			t.Fatalf("recv %d = %+v, want OK recv", i, c)
		}
		if c.WRID != uint64(i) || c.Imm != uint32(i) {
			t.Fatalf("recv %d out of order under batch dispatch: WRID %d Imm %d", i, c.WRID, c.Imm)
		}
		if c.Bytes != sizes[i] || c.Peer != h.A.NodeID() || c.Token != 9 {
			t.Fatalf("recv %d metadata = bytes %d peer %d token %d, want %d/%d/9",
				i, c.Bytes, c.Peer, c.Token, sizes[i], h.A.NodeID())
		}
	}

	sends := sa.waitN(t, h, n)
	if len(sends) != n {
		t.Fatalf("sender flattened %d completions, want exactly %d", len(sends), n)
	}
	for i, c := range sends {
		if c.Op != rdma.OpSend || c.Status != rdma.StatusOK || c.WRID != uint64(i) {
			t.Fatalf("send %d = %+v, want OK send WRID %d (FIFO)", i, c, i)
		}
		if c.Bytes != sizes[i] || c.Peer != h.B.NodeID() || c.Token != 9 {
			t.Fatalf("send %d metadata = bytes %d peer %d token %d, want %d/%d/9",
				i, c.Bytes, c.Peer, c.Token, sizes[i], h.B.NodeID())
		}
	}

	// Batch framing sanity: every delivered batch was non-empty, and the
	// per-batch lengths sum to the flattened total (no completion was
	// delivered twice across batch boundaries).
	for _, s := range []*batchSink{sa, sb} {
		s.mu.Lock()
		total := 0
		for _, bl := range s.batches {
			if bl <= 0 {
				s.mu.Unlock()
				t.Fatal("empty batch delivered")
			}
			total += bl
		}
		flat := len(s.flat)
		s.mu.Unlock()
		if total != flat {
			t.Fatalf("batch lengths sum to %d, flattened %d", total, flat)
		}
	}
}

func testEarlyArrival(t *testing.T, h *Harness) {
	_, sb := attach(h)
	qa, qb := connect(t, h, 1)
	payload := []byte("early bird")
	if err := qa.PostSend(rdma.MakeBuffer(payload), 1, 1); err != nil {
		t.Fatal(err)
	}
	h.Settle() // frame lands with no receive posted
	if got := sb.snapshot(); len(got) != 0 {
		t.Fatalf("receiver completed before posting a recv: %+v", got)
	}
	if err := qb.PostRecv(rdma.MakeBuffer(make([]byte, 32)), 2); err != nil {
		t.Fatal(err)
	}
	recvs := sb.waitN(t, h, 1)
	if !bytes.Equal(recvs[0].Data, payload) {
		t.Errorf("buffered arrival corrupted: %q", recvs[0].Data)
	}
}

func testDistinctTokens(t *testing.T, h *Harness) {
	_, sb := attach(h)
	qa1, qb1 := connect(t, h, 1)
	_, qb2 := connect(t, h, 2)
	if err := qb1.PostRecv(rdma.SizeBuffer(16), 11); err != nil {
		t.Fatal(err)
	}
	if err := qb2.PostRecv(rdma.SizeBuffer(16), 22); err != nil {
		t.Fatal(err)
	}
	if err := qa1.PostSend(rdma.SizeBuffer(16), 0, 1); err != nil {
		t.Fatal(err)
	}
	recvs := sb.waitN(t, h, 1)
	h.Settle()
	if recvs = sb.snapshot(); len(recvs) != 1 || recvs[0].WRID != 11 || recvs[0].Token != 1 {
		t.Fatalf("recv completions = %+v, want exactly the token-1 recv", recvs)
	}
}

func testOneSidedWrite(t *testing.T, h *Harness) {
	sa, sb := attach(h)
	region := make([]byte, 64)
	if err := h.B.RegisterRegion(3, region); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var watched [][2]int
	if err := h.B.WatchRegion(3, func(off, n int) {
		mu.Lock()
		watched = append(watched, [2]int{off, n})
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	qa, _ := connect(t, h, 1)
	if err := qa.PostWrite(3, 16, []byte("poke"), 77); err != nil {
		t.Fatal(err)
	}
	writes := sa.waitN(t, h, 1)
	if writes[0].Op != rdma.OpWrite || writes[0].WRID != 77 || writes[0].Status != rdma.StatusOK {
		t.Errorf("write completion = %+v", writes[0])
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		h.Settle()
		mu.Lock()
		n := len(watched)
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(watched) != 1 || watched[0] != [2]int{16, 4} {
		t.Fatalf("watcher calls = %v, want [[16 4]]", watched)
	}
	if string(region[16:20]) != "poke" {
		t.Errorf("region = %q, want write at offset 16", region[:24])
	}
	// One-sided: the target must not see a completion.
	if got := sb.snapshot(); len(got) != 0 {
		t.Errorf("target saw completions for one-sided write: %+v", got)
	}
}

func testWatchUnknownRegion(t *testing.T, h *Harness) {
	attach(h)
	if err := h.A.WatchRegion(99, func(int, int) {}); err != rdma.ErrUnknownRegion {
		t.Errorf("err = %v, want ErrUnknownRegion", err)
	}
}

func testPostWithoutHandler(t *testing.T, h *Harness) {
	// No handlers installed: every post must fail fast.
	qp, err := h.A.Connect(h.B.NodeID(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := qp.PostSend(rdma.SizeBuffer(1), 0, 1); err != rdma.ErrNoHandler {
		t.Errorf("PostSend: err = %v, want ErrNoHandler", err)
	}
	if err := qp.PostRecv(rdma.SizeBuffer(1), 2); err != rdma.ErrNoHandler {
		t.Errorf("PostRecv: err = %v, want ErrNoHandler", err)
	}
	if err := qp.PostWrite(1, 0, []byte{1}, 3); err != rdma.ErrNoHandler {
		t.Errorf("PostWrite: err = %v, want ErrNoHandler", err)
	}
}

func testPostedRecvTooSmall(t *testing.T, h *Harness) {
	attach(h)
	qa, qb := connect(t, h, 1)
	if err := qb.PostRecv(rdma.MakeBuffer(make([]byte, 2)), 1); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.MakeBuffer([]byte("too big to land")), 0, 2); err != nil {
		t.Fatal(err)
	}
	waitBroken(t, h, qb)
}

func testLateRecvTooSmall(t *testing.T, h *Harness) {
	_, sb := attach(h)
	qa, qb := connect(t, h, 1)
	if err := qa.PostSend(rdma.MakeBuffer([]byte("too big to land")), 0, 1); err != nil {
		t.Fatal(err)
	}
	h.Settle() // arrival staged with no receive posted
	if got := sb.snapshot(); len(got) != 0 {
		t.Fatalf("receiver completed with no recv posted: %+v", got)
	}
	if err := qb.PostRecv(rdma.MakeBuffer(make([]byte, 2)), 2); err != rdma.ErrBufferTooSmall {
		t.Fatalf("undersized late recv: err = %v, want ErrBufferTooSmall", err)
	}
	if err := qb.PostRecv(rdma.SizeBuffer(64), 3); err != rdma.ErrBroken {
		t.Errorf("post after overflow: err = %v, want ErrBroken", err)
	}
}

// testPostedBufferOwnership pins the ownership half of the zero-copy
// contract: a posted buffer belongs to the provider only until its
// completion fires. Once the poster observes the send (or write) completion
// it may immediately reuse the buffer, and bytes already in flight must not
// be affected — so a transport may reference posted memory instead of
// copying it, but must have captured the payload (handed it to the kernel,
// the peer, or the fabric) before completing the work request. Mutating a
// buffer BEFORE its completion remains undefined behaviour; this case pins
// the defined side only, identically on every transport.
func testPostedBufferOwnership(t *testing.T, h *Harness) {
	sa, sb := attach(h)
	qa, qb := connect(t, h, 21)

	if err := qb.PostRecv(rdma.MakeBuffer(make([]byte, 64)), 1); err != nil {
		t.Fatal(err)
	}
	payload := []byte("owned until completion")
	want := append([]byte(nil), payload...)
	if err := qa.PostSend(rdma.MakeBuffer(payload), 0xbeef, 2); err != nil {
		t.Fatal(err)
	}
	sa.waitN(t, h, 1) // completion observed: ownership is back with the caller
	for i := range payload {
		payload[i] = 0xff
	}
	recvs := sb.waitN(t, h, 1)
	if !bytes.Equal(recvs[0].Data, want) {
		t.Errorf("recv data = %q, want %q (send buffer reuse after completion corrupted the payload)", recvs[0].Data, want)
	}

	// Same contract for one-sided writes: after the write completion the
	// source slice is the caller's again, and the region must hold the
	// pre-reuse bytes.
	region := make([]byte, 32)
	if err := h.B.RegisterRegion(8, region); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	landed := false
	if err := h.B.WatchRegion(8, func(off, n int) {
		mu.Lock()
		landed = true
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	data := []byte("write-me")
	wantW := append([]byte(nil), data...)
	if err := qa.PostWrite(8, 4, data, 3); err != nil {
		t.Fatal(err)
	}
	sa.waitN(t, h, 2)
	for i := range data {
		data[i] = 0xee
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		h.Settle()
		mu.Lock()
		ok := landed
		mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for one-sided write to land")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(region[4:4+len(wantW)], wantW) {
		t.Errorf("region = %q, want %q (write buffer reuse after completion corrupted the payload)", region[4:4+len(wantW)], wantW)
	}
}

func testQPCloseFailsOutstanding(t *testing.T, h *Harness) {
	_, sb := attach(h)
	_, qb := connect(t, h, 1)
	if err := qb.PostRecv(rdma.SizeBuffer(8), 1); err != nil {
		t.Fatal(err)
	}
	if err := qb.Close(); err != nil {
		t.Fatal(err)
	}
	recvs := sb.waitN(t, h, 1)
	if recvs[0].Status != rdma.StatusBroken || recvs[0].Op != rdma.OpRecv || recvs[0].WRID != 1 {
		t.Errorf("completion after close = %+v, want broken recv 1", recvs[0])
	}
	if err := qb.PostSend(rdma.SizeBuffer(1), 0, 2); err != rdma.ErrBroken {
		t.Errorf("post on closed qp: err = %v, want ErrBroken", err)
	}
}

// testBrokenMidWindow pins what the engine's failure path depends on: when a
// queue pair is torn down with a whole send window in flight, the surviving
// end must not lose work requests silently. Every accepted WR completes
// exactly once — StatusOK for the prefix that landed before the break,
// StatusBroken for everything after — and new posts eventually return
// ErrBroken on BOTH ends, even though the transports discover the break
// differently (the simulated NIC at delivery time, the TCP NIC when the
// socket dies). The timing race is real on the TCP transport, so the test
// asserts shape (exactly-once, an OK prefix), not a fixed OK count.
func testBrokenMidWindow(t *testing.T, h *Harness) {
	sa, sb := attach(h)
	qa, qb := connect(t, h, 1)

	// Warm-up round trip: connection setup is asynchronous on the TCP
	// transport, and a close that lands before the dial completes breaks
	// only the closing end — the point here is a break with a LIVE wire
	// and a window in flight. WRIDs >= 1000 stay out of burst accounting.
	if err := qb.PostRecv(rdma.SizeBuffer(16), 2000); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.SizeBuffer(16), 0, 2000); err != nil {
		t.Fatal(err)
	}
	sa.waitN(t, h, 1)
	sb.waitN(t, h, 1)

	const n = 16
	const recvsPosted = 4
	for i := 0; i < recvsPosted; i++ {
		if err := qb.PostRecv(rdma.MakeBuffer(make([]byte, 8<<10)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := qa.PostSend(rdma.MakeBuffer(bytes.Repeat([]byte{byte(i + 1)}, 8<<10)), uint32(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Tear the receiving end down with the window still in flight.
	if err := qb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := qb.PostRecv(rdma.SizeBuffer(8), 500); err != rdma.ErrBroken {
		t.Fatalf("recv on closed qp: err = %v, want ErrBroken", err)
	}

	// The sender must eventually refuse new work. Until the break
	// propagates, posts are accepted (and later complete StatusBroken);
	// WRIDs >= 1000 keep these probes out of the burst's accounting.
	deadline := time.Now().Add(10 * time.Second)
	for probe := uint64(1000); ; probe++ {
		h.Settle()
		if err := qa.PostSend(rdma.SizeBuffer(8), 0, probe); err == rdma.ErrBroken {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sender never surfaced ErrBroken after the peer broke mid-window")
		}
	}

	// Exactly-once per burst WR, OK forming a FIFO prefix then Broken.
	checkBurst := func(side string, got []rdma.Completion, op rdma.OpType, total int) {
		t.Helper()
		status := make(map[uint64]rdma.Status, total)
		for _, c := range got {
			if c.Op != op || c.WRID >= uint64(total) {
				continue // probe traffic
			}
			if _, dup := status[c.WRID]; dup {
				t.Fatalf("%s WR %d completed twice", side, c.WRID)
			}
			status[c.WRID] = c.Status
		}
		if len(status) != total {
			t.Fatalf("%s completed %d of %d burst WRs", side, len(status), total)
		}
		okDone := false
		for i := 0; i < total; i++ {
			switch status[uint64(i)] {
			case rdma.StatusOK:
				if okDone {
					t.Fatalf("%s WR %d OK after an earlier broken WR (not a FIFO prefix)", side, i)
				}
			case rdma.StatusBroken:
				okDone = true
			default:
				t.Fatalf("%s WR %d has status %v", side, i, status[uint64(i)])
			}
		}
	}
	waitOp := func(s *sink, op rdma.OpType, total int) []rdma.Completion {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			h.Settle()
			got := s.snapshot()
			count := 0
			for _, c := range got {
				if c.Op == op && c.WRID < uint64(total) {
					count++
				}
			}
			if count >= total {
				return got
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out with %d of %d %v completions", count, total, op)
			}
		}
	}
	checkBurst("sender", waitOp(sa, rdma.OpSend, n), rdma.OpSend, n)
	checkBurst("receiver", waitOp(sb, rdma.OpRecv, recvsPosted), rdma.OpRecv, recvsPosted)
}

func testProviderClose(t *testing.T, h *Harness) {
	attach(h)
	qa, _ := connect(t, h, 1)
	if err := h.A.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.A.Close(); err != nil {
		t.Errorf("second Close: err = %v, want idempotent nil", err)
	}
	if _, err := h.A.Connect(h.B.NodeID(), 2); err != rdma.ErrClosed {
		t.Errorf("Connect after close: err = %v, want ErrClosed", err)
	}
	if err := qa.PostSend(rdma.SizeBuffer(1), 0, 1); err != rdma.ErrBroken {
		t.Errorf("post after provider close: err = %v, want ErrBroken", err)
	}
	if err := h.A.RegisterRegion(1, make([]byte, 8)); err != rdma.ErrClosed {
		t.Errorf("RegisterRegion after close: err = %v, want ErrClosed", err)
	}
}

// waitBroken settles until posting on the queue pair reports ErrBroken.
func waitBroken(t *testing.T, h *Harness, qp rdma.QueuePair) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		h.Settle()
		err := qp.PostRecv(rdma.SizeBuffer(1), 999)
		if err == rdma.ErrBroken {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue pair never broke (last post err = %v)", err)
		}
	}
}
