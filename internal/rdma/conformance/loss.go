package conformance

import (
	"bytes"
	"testing"
	"time"

	"rdmc/internal/rdma"
	"rdmc/internal/rdma/reliab"
)

// Loss-mode conformance: the reliability wrapper (internal/rdma/reliab) must
// behave identically over every transport. The transports themselves stay
// lossless here — loss is injected with the wrapper's DropFn, which blackholes
// chosen transmissions at the far end exactly as a fabric drop would — so
// these cases pin the wrapper-over-provider contract: a retransmitted frame is
// delivered exactly once, caller-observed FIFO survives retransmission, and a
// genuine break (peer teardown) still surfaces StatusBroken/ErrBroken through
// the wrapper rather than being retried forever.
//
// The simulated NIC runs on virtual time, where wall-clock retransmission
// timers would never fire inside Settle; the Harness.Timer seam lets that
// factory supply a virtual-time TimerFunc while the real-time transports keep
// the wall-clock default.

// wrapReliab builds a reliability layer over both harness providers.
func wrapReliab(h *Harness, cfg reliab.Config) (ra, rb *reliab.Provider) {
	cfg.Timer = h.Timer
	if cfg.RTO == 0 {
		// Short enough that an RTO-driven recovery lands well inside the
		// suite's 10-second real-time deadlines on wall-clock transports.
		cfg.RTO = 0.05
	}
	return reliab.Wrap(h.A, cfg), reliab.Wrap(h.B, cfg)
}

// rconnect builds both ends of a protected queue pair.
func rconnect(t *testing.T, ra, rb *reliab.Provider, token uint64) (qa, qb rdma.QueuePair) {
	t.Helper()
	qa, err := ra.Connect(rb.NodeID(), token)
	if err != nil {
		t.Fatal(err)
	}
	qb, err = rb.Connect(ra.NodeID(), token)
	if err != nil {
		t.Fatal(err)
	}
	return qa, qb
}

// testReliabExactlyOnce drops the first transmission of two frames in the
// middle of a burst and checks every frame is delivered exactly once with its
// payload intact: the retransmission path must not duplicate, corrupt, or
// lose work requests on any transport.
func testReliabExactlyOnce(t *testing.T, h *Harness) {
	ra, rb := wrapReliab(h, reliab.Config{
		DropFn: func(seq uint32, retransmit bool) bool {
			return (seq == 2 || seq == 5) && !retransmit
		},
	})
	sa, sb := &sink{}, &sink{}
	ra.SetHandler(sa.handle)
	rb.SetHandler(sb.handle)
	qa, qb := rconnect(t, ra, rb, 31)

	const n = 10
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte(i + 1)}, 100+i)
		if err := qb.PostRecv(rdma.MakeBuffer(make([]byte, 256)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		if err := qa.PostSend(rdma.MakeBuffer(p), uint32(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	recvs := sb.waitN(t, h, n)
	h.Settle() // give a duplicated delivery every chance to show up
	recvs = sb.snapshot()
	if len(recvs) != n {
		t.Fatalf("receiver delivered %d completions, want exactly %d", len(recvs), n)
	}
	seen := make(map[uint32]bool, n)
	for _, c := range recvs {
		if c.Op != rdma.OpRecv || c.Status != rdma.StatusOK {
			t.Fatalf("recv completion = %+v", c)
		}
		if seen[c.Imm] {
			t.Fatalf("frame with imm %d delivered twice", c.Imm)
		}
		seen[c.Imm] = true
		if !bytes.Equal(c.Data, payloads[c.Imm]) {
			t.Fatalf("frame %d payload corrupted after retransmission: %d bytes", c.Imm, len(c.Data))
		}
	}
	sends := sa.waitN(t, h, n)
	if len(sends) != n {
		t.Fatalf("sender saw %d completions, want %d", len(sends), n)
	}
	st := ra.Stats()
	if st.InjectedDrops != 2 {
		t.Errorf("injected drops = %d, want 2", st.InjectedDrops)
	}
	if st.Retransmits < 2 {
		t.Errorf("retransmits = %d, want >= 2 (one per dropped frame)", st.Retransmits)
	}
}

// testReliabFIFO drops a frame mid-burst and checks the receiver still
// observes the exact post order: the wrapper holds back out-of-order arrivals
// until the retransmission fills the gap, restoring the FIFO contract the
// protocol engine depends on.
func testReliabFIFO(t *testing.T, h *Harness) {
	ra, rb := wrapReliab(h, reliab.Config{
		DropFn: func(seq uint32, retransmit bool) bool {
			return seq == 3 && !retransmit
		},
	})
	sa, sb := &sink{}, &sink{}
	ra.SetHandler(sa.handle)
	rb.SetHandler(sb.handle)
	qa, qb := rconnect(t, ra, rb, 32)

	const n = 12
	for i := 0; i < n; i++ {
		if err := qb.PostRecv(rdma.MakeBuffer(make([]byte, 64)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := qa.PostSend(rdma.MakeBuffer([]byte{byte(i)}), uint32(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	recvs := sb.waitN(t, h, n)
	for i, c := range recvs[:n] {
		if c.Imm != uint32(i) || c.WRID != uint64(i) {
			t.Fatalf("delivery %d carries imm %d WRID %d: FIFO broken across retransmit", i, c.Imm, c.WRID)
		}
	}
	sends := sa.waitN(t, h, n)
	for i, c := range sends[:n] {
		if c.Op != rdma.OpSend || c.WRID != uint64(i) {
			t.Fatalf("send completion %d = %+v, want FIFO WRID %d", i, c, i)
		}
	}
	if st := ra.Stats(); st.InjectedDrops != 1 {
		t.Errorf("injected drops = %d, want 1", st.InjectedDrops)
	}
}

// testReliabBreak tears the receiving end down and checks the break still
// surfaces through the reliability layer: retransmission recovers from loss,
// not from endpoint failure, so the sender must end with StatusBroken
// completions for undelivered work and ErrBroken on new posts — exactly the
// contract the unwrapped transport gives the engine.
func testReliabBreak(t *testing.T, h *Harness) {
	ra, rb := wrapReliab(h, reliab.Config{})
	sa, sb := &sink{}, &sink{}
	ra.SetHandler(sa.handle)
	rb.SetHandler(sb.handle)
	qa, qb := rconnect(t, ra, rb, 33)

	// Warm-up round trip so the break lands on a live wire (connection setup
	// is asynchronous on the TCP transport).
	if err := qb.PostRecv(rdma.MakeBuffer(make([]byte, 32)), 2000); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.MakeBuffer([]byte("warm-up")), 0, 2000); err != nil {
		t.Fatal(err)
	}
	sa.waitN(t, h, 1)
	sb.waitN(t, h, 1)

	if err := qb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := qb.PostRecv(rdma.MakeBuffer(make([]byte, 8)), 500); err != rdma.ErrBroken {
		t.Fatalf("recv on closed wrapped qp: err = %v, want ErrBroken", err)
	}

	// The sender must eventually refuse new work instead of retrying into
	// the dead peer forever.
	deadline := time.Now().Add(10 * time.Second)
	for probe := uint64(1000); ; probe++ {
		h.Settle()
		if err := qa.PostSend(rdma.MakeBuffer([]byte{1}), 0, probe); err == rdma.ErrBroken {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sender never surfaced ErrBroken through the reliability layer")
		}
	}

	// Every accepted probe completes exactly once, OK prefix then Broken.
	got := sa.snapshot()
	status := make(map[uint64]rdma.Status)
	for _, c := range got {
		if c.Op != rdma.OpSend || c.WRID < 1000 {
			continue
		}
		if _, dup := status[c.WRID]; dup {
			t.Fatalf("probe WR %d completed twice", c.WRID)
		}
		status[c.WRID] = c.Status
	}
	for id, s := range status {
		if s != rdma.StatusOK && s != rdma.StatusBroken {
			t.Fatalf("probe WR %d has status %v", id, s)
		}
	}
}
