// Package rdma defines a verbs-like reliable-connection API: queue pairs,
// two-sided send/receive with immediate values, one-sided remote writes into
// registered regions, and a single completion stream per node.
//
// The abstraction mirrors what RDMC (DSN 2018) consumes from Infiniband
// verbs, reduced to the parts the protocol actually uses (§2 of the paper):
//
//   - reliable two-sided operations: a send matches the receiver's oldest
//     posted receive, data arrives uncorrupted and in FIFO order per queue
//     pair, and a completion is raised on both ends;
//   - a 32-bit immediate value carried with every send (RDMC uses it to
//     announce the total message size on every block);
//   - one-sided writes into pre-registered remote memory (RDMC receivers use
//     one to tell the sender they are ready; the small-message extension
//     builds its ring buffers from them);
//   - break-on-failure semantics: when a connection is lost, outstanding and
//     future work requests complete with StatusBroken — there is no software
//     retransmission.
//
// Two providers implement the interface: simnic (virtual-time simulation over
// package simnet, substituting for the RDMA hardware this reproduction does
// not have) and tcpnic (real TCP sockets — the paper's §5.3 "RDMC on TCP"
// direction, made concrete).
package rdma

import "errors"

// NodeID identifies an endpoint in the communication domain. Providers for
// the same domain agree on the numbering.
type NodeID int

// RegionID names a registered memory region addressable by one-sided writes.
type RegionID uint32

// OpType distinguishes completion kinds.
type OpType int

// Completion operation kinds.
const (
	OpSend OpType = iota + 1
	OpRecv
	OpWrite
)

func (o OpType) String() string {
	switch o {
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpWrite:
		return "write"
	default:
		return "unknown"
	}
}

// Status is the outcome of a work request.
type Status int

// Work request outcomes.
const (
	StatusOK Status = iota + 1
	// StatusBroken reports that the connection failed: the NIC exhausted
	// its retries or the peer vanished. Per the paper's §2, a broken
	// connection is a genuine network or endpoint failure, because RDMC
	// never sends before the receiver is ready.
	StatusBroken
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBroken:
		return "broken"
	default:
		return "unknown"
	}
}

// Buffer describes a memory region handed to a work request. Data may be nil
// for simulation-only workloads where moving real bytes would be wasteful; in
// that case only Len is meaningful. MakeBuffer and SizeBuffer construct the
// two forms.
type Buffer struct {
	Data []byte
	Len  int
}

// MakeBuffer wraps a real byte slice.
func MakeBuffer(data []byte) Buffer { return Buffer{Data: data, Len: len(data)} }

// SizeBuffer describes a metadata-only buffer of n bytes for simulated
// workloads; no user memory backs it.
func SizeBuffer(n int) Buffer { return Buffer{Len: n} }

// Completion reports the outcome of one work request. Completions for a node
// are delivered serially, in order, to the handler installed with SetHandler
// — the analogue of the paper's single shared completion queue and thread.
type Completion struct {
	// Op is the kind of work request that completed.
	Op OpType
	// Status is StatusOK or StatusBroken.
	Status Status
	// Peer is the remote end of the queue pair.
	Peer NodeID
	// Token is the rendezvous token of the queue pair (see Connect).
	Token uint64
	// WRID is the caller-chosen work request identifier.
	WRID uint64
	// Imm is the immediate value carried by the send (valid for OpRecv).
	Imm uint32
	// Bytes is the number of bytes transferred.
	Bytes int
	// Data is the receive buffer (valid for OpRecv when real bytes move).
	Data []byte
}

// QueuePair is one endpoint of a reliable connection. Work requests on a
// queue pair execute and complete in FIFO order.
//
// Posting a buffer lends it to the provider until the matching completion
// fires, exactly as registered memory is lent to a hardware NIC while a work
// request is outstanding. Transports rely on this to run zero-copy: posted
// send and write payloads are referenced, not copied, so mutating a buffer
// between post and completion is undefined behaviour — the wire may carry
// either version. Once the completion is observed the buffer is the
// caller's again; the payload has been captured by then, so immediate reuse
// is safe. A receive buffer's contents are likewise unspecified until its
// completion reports StatusOK. The conformance suite's
// PostedBuffersOwnedUntilCompletion case pins the defined (post-completion
// reuse) side of this contract on every transport.
type QueuePair interface {
	// Peer returns the remote node.
	Peer() NodeID
	// Token returns the rendezvous token that paired the endpoints.
	Token() uint64
	// PostSend enqueues a send carrying buf and the immediate value. The
	// matching receive completion at the peer reports imm. buf is lent to
	// the provider until the send completion fires (see the ownership
	// contract above).
	PostSend(buf Buffer, imm uint32, wrID uint64) error
	// PostRecv enqueues a receive buffer. Arriving sends match posted
	// receives in order; buf must be at least as large as the arriving
	// message. buf's contents are unspecified until the receive completes
	// with StatusOK.
	PostRecv(buf Buffer, wrID uint64) error
	// PostWrite enqueues a one-sided write of data into the peer's
	// registered region at the given offset. Only the local end observes
	// a completion; the peer's region watcher (if any) fires instead.
	// data is lent to the provider until the write completion fires.
	PostWrite(region RegionID, offset int, data []byte, wrID uint64) error
	// Close tears the connection down. The peer observes StatusBroken on
	// its outstanding work requests.
	Close() error
}

// Provider is a node's NIC: it creates queue pairs and delivers completions.
type Provider interface {
	// NodeID returns the local endpoint identity.
	NodeID() NodeID
	// Connect creates a queue pair to peer. Both sides must call Connect
	// with the same token (the out-of-band "key exchange" the paper does
	// over its bootstrap TCP mesh); the call returns immediately and work
	// requests posted before the pairing completes are queued.
	Connect(peer NodeID, token uint64) (QueuePair, error)
	// SetHandler installs the completion consumer. It must be set before
	// the first work request is posted and is invoked serially.
	SetHandler(h func(Completion))
	// RegisterRegion makes buf addressable by peers' one-sided writes.
	RegisterRegion(id RegionID, buf []byte) error
	// Region returns a registered region's memory (nil if unknown).
	Region(id RegionID) []byte
	// WatchRegion installs fn to run after each remote write into the
	// region, standing in for the polling loop a real one-sided-write
	// consumer would run.
	WatchRegion(id RegionID, fn func(offset, length int)) error
	// Close releases the provider; all queue pairs break.
	Close() error
}

// BatchProvider is optionally implemented by providers whose completion
// dispatch can drain several completions per wakeup. A consumer that installs
// a batch handler receives non-empty slices in the same serial order the
// per-completion handler would have observed; the slice is only valid for the
// duration of the call (the dispatcher reuses it). Installing a batch handler
// replaces any per-completion handler.
//
// Batching exists for lock amortization: the RDMC engine routes completions
// to per-group state machines behind per-group locks, and a batch lets it
// take each lock once per drained run instead of once per block.
type BatchProvider interface {
	SetBatchHandler(h func([]Completion))
}

// Errors shared by providers.
var (
	// ErrBroken is returned by posts on a queue pair whose connection has
	// failed or been closed.
	ErrBroken = errors.New("rdma: connection broken")
	// ErrClosed is returned by operations on a closed provider.
	ErrClosed = errors.New("rdma: provider closed")
	// ErrNoHandler is returned when a work request is posted before a
	// completion handler is installed.
	ErrNoHandler = errors.New("rdma: no completion handler installed")
	// ErrUnknownRegion is returned by writes targeting an unregistered
	// region.
	ErrUnknownRegion = errors.New("rdma: unknown memory region")
	// ErrBufferTooSmall is returned when an arriving message exceeds the
	// posted receive buffer.
	ErrBufferTooSmall = errors.New("rdma: posted receive buffer too small")
)
