package rdma

import "testing"

func TestOpTypeStrings(t *testing.T) {
	tests := []struct {
		op   OpType
		want string
	}{
		{OpSend, "send"},
		{OpRecv, "recv"},
		{OpWrite, "write"},
		{OpType(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("OpType(%d).String() = %q, want %q", tt.op, got, tt.want)
		}
	}
}

func TestStatusStrings(t *testing.T) {
	tests := []struct {
		s    Status
		want string
	}{
		{StatusOK, "ok"},
		{StatusBroken, "broken"},
		{Status(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("Status(%d).String() = %q, want %q", tt.s, got, tt.want)
		}
	}
}

func TestBufferConstructors(t *testing.T) {
	data := []byte{1, 2, 3}
	b := MakeBuffer(data)
	if b.Len != 3 || &b.Data[0] != &data[0] {
		t.Errorf("MakeBuffer = %+v", b)
	}
	s := SizeBuffer(1 << 20)
	if s.Len != 1<<20 || s.Data != nil {
		t.Errorf("SizeBuffer = %+v", s)
	}
}
