package simnic

import (
	"testing"

	"rdmc/internal/rdma"
	"rdmc/internal/simnet"
)

// newPair builds a 2-node (or larger) network with 100 B/s links and 1 ms
// latency and returns connected providers with recording handlers.
func newNet(t *testing.T, nodes int) (*simnet.Sim, *Network, []*Provider, []*[]rdma.Completion) {
	t.Helper()
	sim := simnet.NewSim(1)
	cluster, err := simnet.NewCluster(sim, simnet.ClusterConfig{
		Nodes:         nodes,
		LinkBandwidth: 100,
		Latency:       0.001,
		CPU:           simnet.CPUConfig{Mode: simnet.ModePolling},
		RetryTimeout:  0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(cluster)
	providers := make([]*Provider, nodes)
	logs := make([]*[]rdma.Completion, nodes)
	for i := range providers {
		providers[i] = net.Provider(rdma.NodeID(i))
		log := &[]rdma.Completion{}
		logs[i] = log
		providers[i].SetHandler(func(c rdma.Completion) { *log = append(*log, c) })
	}
	return sim, net, providers, logs
}

func connect(t *testing.T, a, b *Provider, token uint64) (rdma.QueuePair, rdma.QueuePair) {
	t.Helper()
	qa, err := a.Connect(b.NodeID(), token)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := b.Connect(a.NodeID(), token)
	if err != nil {
		t.Fatal(err)
	}
	return qa, qb
}

func TestSendRecvDeliversDataAndImmediate(t *testing.T) {
	sim, _, ps, logs := newNet(t, 2)
	qa, qb := connect(t, ps[0], ps[1], 7)

	payload := []byte("hello rdma world")
	recvBuf := make([]byte, 64)
	if err := qb.PostRecv(rdma.MakeBuffer(recvBuf), 100); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.MakeBuffer(payload), 0xdead, 200); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	sends, recvs := *logs[0], *logs[1]
	if len(sends) != 1 || sends[0].Op != rdma.OpSend || sends[0].WRID != 200 {
		t.Fatalf("sender completions = %+v", sends)
	}
	if len(recvs) != 1 {
		t.Fatalf("receiver completions = %+v", recvs)
	}
	r := recvs[0]
	if r.Op != rdma.OpRecv || r.Status != rdma.StatusOK || r.Imm != 0xdead || r.WRID != 100 {
		t.Errorf("recv completion = %+v", r)
	}
	if string(r.Data) != string(payload) {
		t.Errorf("data = %q, want %q", r.Data, payload)
	}
	if r.Peer != 0 || r.Token != 7 {
		t.Errorf("peer/token = %d/%d, want 0/7", r.Peer, r.Token)
	}
}

func TestSendBeforeRecvIsBuffered(t *testing.T) {
	sim, _, ps, logs := newNet(t, 2)
	qa, qb := connect(t, ps[0], ps[1], 1)
	if err := qa.PostSend(rdma.SizeBuffer(50), 5, 1); err != nil {
		t.Fatal(err)
	}
	sim.Run() // arrival sits unmatched
	if len(*logs[1]) != 0 {
		t.Fatalf("receiver saw completion before posting recv: %+v", *logs[1])
	}
	if err := qb.PostRecv(rdma.SizeBuffer(50), 2); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if len(*logs[1]) != 1 || (*logs[1])[0].Imm != 5 {
		t.Fatalf("late-posted recv not matched: %+v", *logs[1])
	}
}

func TestPostBeforePairingIsQueued(t *testing.T) {
	sim, _, ps, logs := newNet(t, 2)
	qa, err := ps[0].Connect(1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.SizeBuffer(10), 0, 1); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if len(*logs[0]) != 0 {
		t.Fatal("send completed before peer connected")
	}
	qb, err := ps[1].Connect(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := qb.PostRecv(rdma.SizeBuffer(10), 2); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if len(*logs[0]) != 1 || len(*logs[1]) != 1 {
		t.Fatalf("completions after pairing: %d sender, %d receiver", len(*logs[0]), len(*logs[1]))
	}
}

func TestQueuePairFIFOOrder(t *testing.T) {
	sim, _, ps, logs := newNet(t, 2)
	qa, qb := connect(t, ps[0], ps[1], 1)
	for i := uint64(0); i < 5; i++ {
		if err := qb.PostRecv(rdma.SizeBuffer(10), i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 5; i++ {
		if err := qa.PostSend(rdma.SizeBuffer(10), uint32(i), i); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	recvs := *logs[1]
	if len(recvs) != 5 {
		t.Fatalf("recv count = %d, want 5", len(recvs))
	}
	for i, c := range recvs {
		if c.WRID != uint64(i) || c.Imm != uint32(i) {
			t.Fatalf("out-of-order completion at %d: %+v", i, c)
		}
	}
}

func TestDistinctTokensAreSeparateQueuePairs(t *testing.T) {
	sim, _, ps, logs := newNet(t, 2)
	qa1, qb1 := connect(t, ps[0], ps[1], 1)
	qa2, qb2 := connect(t, ps[0], ps[1], 2)
	_ = qa2
	if err := qb1.PostRecv(rdma.SizeBuffer(10), 11); err != nil {
		t.Fatal(err)
	}
	if err := qb2.PostRecv(rdma.SizeBuffer(10), 22); err != nil {
		t.Fatal(err)
	}
	// Send only on QP 1; QP 2's recv must stay pending.
	if err := qa1.PostSend(rdma.SizeBuffer(10), 0, 1); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	recvs := *logs[1]
	if len(recvs) != 1 || recvs[0].WRID != 11 || recvs[0].Token != 1 {
		t.Fatalf("recv completions = %+v, want exactly the token-1 recv", recvs)
	}
}

func TestOneSidedWriteUpdatesRegionAndWatcher(t *testing.T) {
	sim, _, ps, logs := newNet(t, 2)
	qa, _ := connect(t, ps[0], ps[1], 1)
	region := make([]byte, 32)
	if err := ps[1].RegisterRegion(4, region); err != nil {
		t.Fatal(err)
	}
	var watched [][2]int
	if err := ps[1].WatchRegion(4, func(off, n int) { watched = append(watched, [2]int{off, n}) }); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostWrite(4, 8, []byte("abcd"), 77); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if string(region[8:12]) != "abcd" {
		t.Errorf("region = %q, want write at offset 8", region[:16])
	}
	if len(watched) != 1 || watched[0] != [2]int{8, 4} {
		t.Errorf("watcher calls = %v", watched)
	}
	// Writer sees an OpWrite completion; the target sees no completion.
	if len(*logs[0]) != 1 || (*logs[0])[0].Op != rdma.OpWrite || (*logs[0])[0].WRID != 77 {
		t.Errorf("writer completions = %+v", *logs[0])
	}
	if len(*logs[1]) != 0 {
		t.Errorf("target saw completions for one-sided write: %+v", *logs[1])
	}
}

func TestWatchRegionUnknownRegion(t *testing.T) {
	_, _, ps, _ := newNet(t, 2)
	if err := ps[0].WatchRegion(99, func(int, int) {}); err != rdma.ErrUnknownRegion {
		t.Errorf("err = %v, want ErrUnknownRegion", err)
	}
}

func TestBrokenLinkFailsOutstandingRequests(t *testing.T) {
	sim, net, ps, logs := newNet(t, 2)
	qa, qb := connect(t, ps[0], ps[1], 1)
	if err := qb.PostRecv(rdma.SizeBuffer(1000), 1); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.SizeBuffer(1000), 0, 2); err != nil {
		t.Fatal(err)
	}
	sim.At(0.5, func() { net.Cluster().BreakLink(0, 1) })
	sim.Run()

	var senderBroken, recvBroken bool
	for _, c := range *logs[0] {
		if c.Status == rdma.StatusBroken {
			senderBroken = true
		}
	}
	for _, c := range *logs[1] {
		if c.Status == rdma.StatusBroken {
			recvBroken = true
		}
	}
	if !senderBroken || !recvBroken {
		t.Errorf("broken completions: sender=%v receiver=%v, want both", senderBroken, recvBroken)
	}
	if err := qa.PostSend(rdma.SizeBuffer(1), 0, 3); err != rdma.ErrBroken {
		t.Errorf("post on broken QP: err = %v, want ErrBroken", err)
	}
}

func TestRecvBufferTooSmallBreaksConnection(t *testing.T) {
	sim, _, ps, _ := newNet(t, 2)
	qa, qb := connect(t, ps[0], ps[1], 1)
	if err := qb.PostRecv(rdma.MakeBuffer(make([]byte, 2)), 1); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.MakeBuffer([]byte("too big")), 0, 2); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if err := qb.PostRecv(rdma.SizeBuffer(1), 3); err != rdma.ErrBroken {
		t.Errorf("post after overflow: err = %v, want ErrBroken", err)
	}
}

func TestPostWithoutHandlerFails(t *testing.T) {
	sim := simnet.NewSim(1)
	cluster, err := simnet.NewCluster(sim, simnet.ClusterConfig{
		Nodes: 2, LinkBandwidth: 100, CPU: simnet.CPUConfig{Mode: simnet.ModePolling},
	})
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(cluster)
	p := net.Provider(0)
	qp, err := p.Connect(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := qp.PostSend(rdma.SizeBuffer(1), 0, 1); err != rdma.ErrNoHandler {
		t.Errorf("err = %v, want ErrNoHandler", err)
	}
}

func TestConnectPeerOutOfRange(t *testing.T) {
	_, _, ps, _ := newNet(t, 2)
	if _, err := ps[0].Connect(5, 1); err == nil {
		t.Error("Connect to out-of-range peer succeeded")
	}
}

func TestProviderCloseBreaksQueuePairs(t *testing.T) {
	sim, _, ps, logs := newNet(t, 2)
	qa, qb := connect(t, ps[0], ps[1], 1)
	if err := qb.PostRecv(rdma.SizeBuffer(10), 1); err != nil {
		t.Fatal(err)
	}
	if err := ps[1].Close(); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if len(*logs[1]) != 1 || (*logs[1])[0].Status != rdma.StatusBroken {
		t.Errorf("close did not fail pending recv: %+v", *logs[1])
	}
	_ = qa
	if _, err := ps[1].Connect(0, 2); err != rdma.ErrClosed {
		t.Errorf("Connect after close: err = %v, want ErrClosed", err)
	}
}

func TestOffloadSkipsCPUCosts(t *testing.T) {
	// With heavy CPU costs, offload should deliver far sooner.
	run := func(offload bool) float64 {
		sim := simnet.NewSim(1)
		cluster, err := simnet.NewCluster(sim, simnet.ClusterConfig{
			Nodes:         2,
			LinkBandwidth: 100,
			CPU: simnet.CPUConfig{
				Mode:           simnet.ModeInterrupt,
				PostCost:       0.5,
				CompletionCost: 0.5,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		net := NewNetwork(cluster)
		a, b := net.Provider(0), net.Provider(1)
		a.SetOffload(offload)
		b.SetOffload(offload)
		var at float64 = -1
		a.SetHandler(func(rdma.Completion) {})
		b.SetHandler(func(rdma.Completion) { at = sim.Now() })
		qa, _ := a.Connect(1, 1)
		qb, _ := b.Connect(0, 1)
		if err := qb.PostRecv(rdma.SizeBuffer(100), 1); err != nil {
			t.Fatal(err)
		}
		if err := qa.PostSend(rdma.SizeBuffer(100), 0, 2); err != nil {
			t.Fatal(err)
		}
		sim.Run()
		return at
	}
	slow := run(false)
	fast := run(true)
	if fast >= slow {
		t.Errorf("offload delivery at %v, software at %v: offload should be faster", fast, slow)
	}
	if fast > 1.1 {
		t.Errorf("offload delivery at %v, want ≈ wire time 1.0s", fast)
	}
}

// newWANNet builds a 2-node, 2-region lossy network with the given fabric
// profile and returns connected providers with recording handlers.
func newWANNet(t *testing.T, fabric *simnet.FabricProfile, tolerant bool) (*simnet.Sim, *Network, []*Provider, []*[]rdma.Completion) {
	t.Helper()
	sim := simnet.NewSim(1)
	cluster, err := simnet.NewCluster(sim, simnet.ClusterConfig{
		Nodes:         2,
		LinkBandwidth: 100,
		Latency:       0.001,
		CPU:           simnet.CPUConfig{Mode: simnet.ModePolling},
		RetryTimeout:  0.01,
		Fabric:        fabric,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(cluster)
	net.SetTolerant(tolerant)
	providers := make([]*Provider, 2)
	logs := make([]*[]rdma.Completion, 2)
	for i := range providers {
		providers[i] = net.Provider(rdma.NodeID(i))
		log := &[]rdma.Completion{}
		logs[i] = log
		providers[i].SetHandler(func(c rdma.Completion) { *log = append(*log, c) })
	}
	return sim, net, providers, logs
}

func wanProfile() *simnet.FabricProfile {
	return &simnet.FabricProfile{
		Seed:    11,
		Regions: []int{0, 1},
		RTT:     [][]float64{{0.001, 0.020}, {0.020, 0.001}},
	}
}

func TestTolerantLossVanishesWithoutBreaking(t *testing.T) {
	f := wanProfile()
	f.LossRate = 0.999999 // every frame drops; the pair must survive anyway
	sim, _, ps, logs := newWANNet(t, f, true)
	qa, qb := connect(t, ps[0], ps[1], 1)
	if err := qb.PostRecv(rdma.SizeBuffer(10), 1); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.SizeBuffer(10), 5, 2); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	sends := *logs[0]
	if len(sends) != 1 || sends[0].Status != rdma.StatusOK || sends[0].WRID != 2 {
		t.Fatalf("sender completions = %+v, want one StatusOK send (bytes left the NIC)", sends)
	}
	if len(*logs[1]) != 0 {
		t.Fatalf("receiver saw %+v for a dropped frame", *logs[1])
	}
	// The pair is alive: tolerance turns loss into silence, not ErrBroken.
	if err := qa.PostSend(rdma.SizeBuffer(10), 6, 3); err != nil {
		t.Errorf("post after loss: err = %v, want nil", err)
	}
}

func TestTolerantBreakStillSurfaces(t *testing.T) {
	sim, net, ps, logs := newWANNet(t, wanProfile(), true)
	qa, qb := connect(t, ps[0], ps[1], 1)
	if err := qb.PostRecv(rdma.SizeBuffer(1000), 1); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.SizeBuffer(1000), 0, 2); err != nil {
		t.Fatal(err)
	}
	sim.At(0.5, func() { net.Cluster().BreakLink(0, 1) })
	sim.Run()
	var senderBroken bool
	for _, c := range *logs[0] {
		if c.Status == rdma.StatusBroken {
			senderBroken = true
		}
	}
	if !senderBroken {
		t.Errorf("tolerant QP hid a severed path: %+v", *logs[0])
	}
}

func TestTolerantDeliversOutOfOrder(t *testing.T) {
	f := wanProfile()
	f.ReorderRate = 0.5
	f.ReorderSpan = 2.0
	sim, _, ps, logs := newWANNet(t, f, true)
	qa, qb := connect(t, ps[0], ps[1], 1)
	for i := uint64(0); i < 16; i++ {
		if err := qb.PostRecv(rdma.SizeBuffer(10), i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 16; i++ {
		if err := qa.PostSend(rdma.SizeBuffer(10), uint32(i), i); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	recvs := *logs[1]
	if len(recvs) != 16 {
		t.Fatalf("recv count = %d, want 16", len(recvs))
	}
	flipped := false
	for i := 1; i < len(recvs); i++ {
		if recvs[i].Imm < recvs[i-1].Imm {
			flipped = true
			break
		}
	}
	if !flipped {
		t.Error("reordering fabric delivered in post order through a tolerant QP")
	}
	// Local send completions still drain FIFO regardless of wire order.
	sends := *logs[0]
	for i := 1; i < len(sends); i++ {
		if sends[i].WRID < sends[i-1].WRID {
			t.Fatalf("send completions out of post order: %+v", sends)
		}
	}
}

func TestBreakModeQPUnchangedByFabricProfile(t *testing.T) {
	// A non-tolerant QP over a lossy fabric inherits RC semantics: the first
	// dropped frame is retry exhaustion and breaks the pair.
	f := wanProfile()
	f.LossRate = 0.999999
	sim, _, ps, logs := newWANNet(t, f, false)
	qa, qb := connect(t, ps[0], ps[1], 1)
	if err := qb.PostRecv(rdma.SizeBuffer(10), 1); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.SizeBuffer(10), 0, 2); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	var senderBroken bool
	for _, c := range *logs[0] {
		if c.Status == rdma.StatusBroken {
			senderBroken = true
		}
	}
	if !senderBroken {
		t.Errorf("break-mode QP survived a dropped frame: %+v", *logs[0])
	}
	if err := qa.PostSend(rdma.SizeBuffer(1), 0, 3); err != rdma.ErrBroken {
		t.Errorf("post after loss on break-mode QP: err = %v, want ErrBroken", err)
	}
}

func TestSelfConnection(t *testing.T) {
	sim, _, ps, logs := newNet(t, 2)
	q1, err := ps[0].Connect(0, 42)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := ps[0].Connect(0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := q2.PostRecv(rdma.SizeBuffer(5), 1); err != nil {
		t.Fatal(err)
	}
	if err := q1.PostSend(rdma.SizeBuffer(5), 9, 2); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	var gotRecv bool
	for _, c := range *logs[0] {
		if c.Op == rdma.OpRecv && c.Imm == 9 {
			gotRecv = true
		}
	}
	if !gotRecv {
		t.Error("self-connection did not deliver")
	}
}
