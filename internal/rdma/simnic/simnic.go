// Package simnic implements the rdma.Provider interface over the simnet
// fluid-flow fabric. It is the stand-in for the Mellanox RDMA NICs used in
// the RDMC paper: queue pairs are FIFO, completions fire at the virtual time
// the last byte arrives, software costs go through the simnet CPU model, and
// link or node failures surface as StatusBroken completions.
//
// The queue-pair table, region registry, watchers, and serial completion
// dispatch live in the shared runtime (package nicbase); this package
// contributes only the wire — how a work request becomes a simulated flow
// and how a flow's completion becomes a delivery.
//
// Everything runs on the simulation's single event-loop thread; providers are
// not goroutine-safe and must only be touched from simulation callbacks (or
// before the simulation starts).
package simnic

import (
	"fmt"

	"rdmc/internal/rdma"
	"rdmc/internal/rdma/nicbase"
	"rdmc/internal/simnet"
)

// defaultQPWindow is how many work requests one simulated queue pair keeps
// in flight concurrently — the NIC's send pipelining depth. Deep enough to
// cover the engine's send window sweep (W ≤ 8) without queueing in the QP.
const defaultQPWindow = 8

// Network creates providers that share one simulated cluster and pairs their
// queue-pair endpoints by (node, node, token) rendezvous.
type Network struct {
	cluster    *simnet.Cluster
	rendezvous *nicbase.Rendezvous[*queuePair]
	providers  map[rdma.NodeID]*Provider
	qpWindow   int
	tolerant   bool
}

// NewNetwork wraps a simulated cluster.
func NewNetwork(cluster *simnet.Cluster) *Network {
	return &Network{
		cluster:    cluster,
		rendezvous: nicbase.NewRendezvous[*queuePair](),
		providers:  make(map[rdma.NodeID]*Provider),
		qpWindow:   defaultQPWindow,
	}
}

// SetQPWindow overrides how many work requests each queue pair executes
// concurrently (1 restores the strictly serial pre-window behavior). It
// affects queue pairs created after the call.
func (n *Network) SetQPWindow(w int) {
	if w < 1 {
		w = 1
	}
	n.qpWindow = w
}

// SetTolerant flips queue pairs created after the call into loss-tolerant
// delivery, the UD-like wire a selective-retransmit layer (rdma/reliab)
// builds on instead of the RC default:
//
//   - a frame dropped by a lossy fabric path (simnet.OutcomeLost) silently
//     vanishes — the local send still completes StatusOK when its bytes
//     leave the NIC, the receiver just never sees it — instead of breaking
//     the connection as RC retry exhaustion would;
//   - arrivals are delivered at actual arrival time, so a reordering fabric
//     is observable, while local send completions keep post order.
//
// Severed paths and torn-down peers still surface StatusBroken: tolerance
// covers frame loss, not endpoint failure.
func (n *Network) SetTolerant(on bool) { n.tolerant = on }

// Cluster returns the underlying simulated cluster.
func (n *Network) Cluster() *simnet.Cluster { return n.cluster }

// Provider returns the NIC of the given node; a node has exactly one, so
// repeated calls return the same instance.
func (n *Network) Provider(id rdma.NodeID) *Provider {
	if p, ok := n.providers[id]; ok {
		return p
	}
	p := &Provider{net: n}
	p.Init(id, nicbase.NewEventCQ(p.submit))
	n.providers[id] = p
	return p
}

// Provider is a simulated NIC.
type Provider struct {
	nicbase.Base
	net     *Network
	offload bool
}

var _ rdma.Provider = (*Provider)(nil)

// SetOffload toggles CORE-Direct-style cross-channel offload (§2, Figure 12
// of the paper): with it on, posting and completion handling bypass the CPU
// model entirely, as if the precomputed data-flow graph executed on the NIC.
func (p *Provider) SetOffload(on bool) { p.offload = on }

// submit routes a completion delivery through the CPU model (or straight
// through under offload); it is the provider's completion-queue dispatch
// hook.
func (p *Provider) submit(fn func()) {
	if p.offload {
		p.sim().After(0, fn)
		return
	}
	p.cpu().Deliver(fn)
}

// Connect implements rdma.Provider. Unlike socket transports, rendezvous is
// in-memory and per-call: each Connect creates a fresh endpoint, so a node
// may hold both ends of a self-connection under one token.
func (p *Provider) Connect(peer rdma.NodeID, token uint64) (rdma.QueuePair, error) {
	if int(peer) < 0 || int(peer) >= p.net.cluster.Config().Nodes {
		return nil, fmt.Errorf("simnic: peer %d outside cluster of %d nodes", peer, p.net.cluster.Config().Nodes)
	}
	qp := &queuePair{local: p, peer: peer, token: token, window: p.net.qpWindow, tolerant: p.net.tolerant}
	if err := p.AddQP(nicbase.QPKey{Peer: peer, Token: token}, qp); err != nil {
		return nil, err
	}
	if other, ok := p.net.rendezvous.Match(p.NodeID(), peer, token, qp); ok {
		qp.remote, other.remote = other, qp
		qp.maybeStart()
		other.maybeStart()
	}
	return qp, nil
}

// Close implements rdma.Provider.
func (p *Provider) Close() error {
	qps, _ := p.Shutdown()
	for _, qp := range qps {
		_ = qp.Close()
	}
	return nil
}

func (p *Provider) cpu() *simnet.CPU { return p.net.cluster.CPU(simnet.NodeID(p.NodeID())) }

func (p *Provider) sim() *simnet.Sim { return p.net.cluster.Sim() }

type sendWR struct {
	buf   rdma.Buffer
	imm   uint32
	wrID  uint64
	write bool
	// one-sided write fields
	region rdma.RegionID
	offset int
	data   []byte
}

type recvWR struct {
	buf  rdma.Buffer
	wrID uint64
}

type arrival struct {
	bytes int
	imm   uint32
	data  []byte
	write bool
	// write fields
	region rdma.RegionID
	offset int
}

// sendEntry is one launched work request awaiting in-order delivery: its
// flow may finish out of order (a short final block racing full-size
// predecessors through the fair-shared fabric), so completion and arrival
// are held until every earlier entry has landed — the FIFO delivery an RC
// queue pair guarantees no matter how deeply the NIC pipelines.
type sendEntry struct {
	wr   sendWR
	done bool
	// lost marks a tolerant-mode frame the fabric dropped: the local send
	// completes normally (the bytes left the NIC) but no arrival is
	// delivered.
	lost bool
}

// queuePair is one simulated RC endpoint. Up to window work requests execute
// concurrently as overlapping fabric flows (the NIC keeping its pipe full),
// while completions and arrivals are delivered strictly in post order;
// receives match arrivals in order.
type queuePair struct {
	local    *Provider
	peer     rdma.NodeID
	token    uint64
	window   int
	tolerant bool
	remote   *queuePair
	pending  []sendWR     // posted, not yet launched
	flight   []*sendEntry // launched, in post order (reorder buffer)
	recvs    []recvWR
	arrivals []arrival
	broken   bool
}

var _ rdma.QueuePair = (*queuePair)(nil)

// Peer implements rdma.QueuePair.
func (q *queuePair) Peer() rdma.NodeID { return q.peer }

// Token implements rdma.QueuePair.
func (q *queuePair) Token() uint64 { return q.token }

// PostSend implements rdma.QueuePair.
func (q *queuePair) PostSend(buf rdma.Buffer, imm uint32, wrID uint64) error {
	if err := q.postCheck(); err != nil {
		return err
	}
	q.pending = append(q.pending, sendWR{buf: buf, imm: imm, wrID: wrID})
	q.maybeStart()
	return nil
}

// PostWrite implements rdma.QueuePair. The payload is referenced, not
// copied — data stays owned by the provider until the write completion
// fires (the ownership contract on rdma.QueuePair), which is what lets the
// simulated NIC stay allocation-free per write.
func (q *queuePair) PostWrite(region rdma.RegionID, offset int, data []byte, wrID uint64) error {
	if err := q.postCheck(); err != nil {
		return err
	}
	q.pending = append(q.pending, sendWR{
		write:  true,
		region: region,
		offset: offset,
		data:   data,
		buf:    rdma.SizeBuffer(len(data)),
		wrID:   wrID,
	})
	q.maybeStart()
	return nil
}

// PostRecv implements rdma.QueuePair.
func (q *queuePair) PostRecv(buf rdma.Buffer, wrID uint64) error {
	if err := q.postCheck(); err != nil {
		return err
	}
	if len(q.arrivals) > 0 {
		a := q.arrivals[0]
		if a.data != nil && buf.Data != nil && len(buf.Data) < len(a.data) {
			q.breakBoth()
			return rdma.ErrBufferTooSmall
		}
		q.arrivals = q.arrivals[1:]
		q.completeRecv(recvWR{buf: buf, wrID: wrID}, a)
		return nil
	}
	q.recvs = append(q.recvs, recvWR{buf: buf, wrID: wrID})
	return nil
}

// Close implements rdma.QueuePair.
func (q *queuePair) Close() error {
	q.breakConn()
	return nil
}

func (q *queuePair) postCheck() error {
	if q.broken {
		return rdma.ErrBroken
	}
	return q.local.CheckPost()
}

// maybeStart launches queued sends until the window is full, the queue is
// empty, or the endpoints are not yet paired. Each launch pays the software
// post cost through the CPU model (offload bypasses it) and then becomes a
// concurrent fabric flow.
func (q *queuePair) maybeStart() {
	if q.broken || q.remote == nil {
		return
	}
	for len(q.flight) < q.window && len(q.pending) > 0 {
		wr := q.pending[0]
		q.pending = q.pending[1:]
		e := &sendEntry{wr: wr}
		q.flight = append(q.flight, e)
		start := func() { q.transmit(e) }
		if q.local.offload {
			start()
			continue
		}
		q.local.cpu().Exec(q.local.cpu().Config().PostCost, start)
	}
}

func (q *queuePair) transmit(e *sendEntry) {
	if q.broken {
		return
	}
	src := simnet.NodeID(q.local.NodeID())
	dst := simnet.NodeID(q.peer)
	if q.tolerant {
		// Loss-tolerant wire: a dropped frame vanishes instead of breaking
		// the pair, and arrivals land at actual arrival time so a reordering
		// fabric is observable. Local send completions still drain in post
		// order — the NIC reports its own work FIFO either way.
		q.local.net.cluster.TransferFrame(src, dst, float64(e.wr.buf.Len), func(o simnet.Outcome) {
			if q.broken {
				return
			}
			if o == simnet.OutcomeBroken {
				q.breakBoth()
				return
			}
			e.done = true
			switch {
			case o == simnet.OutcomeLost:
				e.lost = true
			case q.remote == nil || q.remote.broken:
				// A frame into a torn-down peer vanishes; drainFlight
				// surfaces the breakage when this entry reaches the head.
				e.lost = true
			default:
				q.remote.onArrival(arrival{
					bytes:  e.wr.buf.Len,
					imm:    e.wr.imm,
					data:   e.wr.buf.Data,
					write:  e.wr.write,
					region: e.wr.region,
					offset: e.wr.offset,
				}, e.wr.data)
			}
			q.drainFlight()
		})
		return
	}
	q.local.net.cluster.Transfer(src, dst, float64(e.wr.buf.Len), func(broken bool) {
		if q.broken {
			return
		}
		if broken {
			q.breakBoth()
			return
		}
		e.done = true
		q.drainFlight()
	})
}

// drainFlight delivers finished flows in post order: completion to the local
// node, arrival to the remote, head of the window first. A flow that landed
// ahead of an unfinished predecessor waits in the reorder buffer. Delivering
// into a peer endpoint that was closed unilaterally breaks this end instead —
// the RC behavior when retries against a torn-down QP exhaust — so a sender
// learns its peer is gone the same way it would on the TCP transport.
func (q *queuePair) drainFlight() {
	for !q.broken && len(q.flight) > 0 && q.flight[0].done {
		if q.remote != nil && q.remote.broken {
			q.breakConn()
			return
		}
		e := q.flight[0]
		q.flight = q.flight[1:]
		wr := e.wr
		op := rdma.OpSend
		if wr.write {
			op = rdma.OpWrite
		}
		q.local.Complete(rdma.Completion{
			Op:     op,
			Status: rdma.StatusOK,
			Peer:   q.peer,
			Token:  q.token,
			WRID:   wr.wrID,
			Bytes:  wr.buf.Len,
		})
		if q.tolerant {
			// The arrival (if the fabric delivered it) already landed at
			// flow-completion time; lost frames produce no arrival at all.
			continue
		}
		q.remote.onArrival(arrival{
			bytes:  wr.buf.Len,
			imm:    wr.imm,
			data:   wr.buf.Data,
			write:  wr.write,
			region: wr.region,
			offset: wr.offset,
		}, wr.data)
	}
	q.maybeStart()
}

func (q *queuePair) onArrival(a arrival, writeData []byte) {
	if q.broken {
		return
	}
	if a.write {
		if err := q.local.ApplyWrite(a.region, a.offset, a.bytes, writeData); err != nil {
			q.breakBoth()
		}
		return
	}
	if len(q.recvs) == 0 {
		q.arrivals = append(q.arrivals, a)
		return
	}
	wr := q.recvs[0]
	q.recvs = q.recvs[1:]
	q.completeRecv(wr, a)
}

func (q *queuePair) completeRecv(wr recvWR, a arrival) {
	c := rdma.Completion{
		Op:     rdma.OpRecv,
		Status: rdma.StatusOK,
		Peer:   q.peer,
		Token:  q.token,
		WRID:   wr.wrID,
		Imm:    a.imm,
		Bytes:  a.bytes,
	}
	if a.data != nil && wr.buf.Data != nil {
		if len(wr.buf.Data) < len(a.data) {
			q.breakBoth()
			return
		}
		copy(wr.buf.Data, a.data)
		c.Data = wr.buf.Data[:len(a.data)]
	}
	q.local.Complete(c)
}

// breakBoth fails this endpoint and, when paired, its remote.
func (q *queuePair) breakBoth() {
	q.breakConn()
	if q.remote != nil {
		q.remote.breakConn()
	}
}

// breakConn fails every outstanding work request on this endpoint, launched
// window entries first (post order), then unlaunched sends.
func (q *queuePair) breakConn() {
	if q.broken {
		return
	}
	q.broken = true
	failed := make([]sendWR, 0, len(q.flight)+len(q.pending))
	for _, e := range q.flight {
		failed = append(failed, e.wr)
	}
	failed = append(failed, q.pending...)
	q.flight, q.pending = nil, nil
	for _, wr := range failed {
		op := rdma.OpSend
		if wr.write {
			op = rdma.OpWrite
		}
		q.local.Complete(rdma.Completion{
			Op:     op,
			Status: rdma.StatusBroken,
			Peer:   q.peer,
			Token:  q.token,
			WRID:   wr.wrID,
		})
	}
	for _, wr := range q.recvs {
		q.local.Complete(rdma.Completion{
			Op:     rdma.OpRecv,
			Status: rdma.StatusBroken,
			Peer:   q.peer,
			Token:  q.token,
			WRID:   wr.wrID,
		})
	}
	q.recvs = nil
}
