// Package simnic implements the rdma.Provider interface over the simnet
// fluid-flow fabric. It is the stand-in for the Mellanox RDMA NICs used in
// the RDMC paper: queue pairs are FIFO, completions fire at the virtual time
// the last byte arrives, software costs go through the simnet CPU model, and
// link or node failures surface as StatusBroken completions.
//
// The queue-pair table, region registry, watchers, and serial completion
// dispatch live in the shared runtime (package nicbase); this package
// contributes only the wire — how a work request becomes a simulated flow
// and how a flow's completion becomes a delivery.
//
// Everything runs on the simulation's single event-loop thread; providers are
// not goroutine-safe and must only be touched from simulation callbacks (or
// before the simulation starts).
package simnic

import (
	"fmt"

	"rdmc/internal/rdma"
	"rdmc/internal/rdma/nicbase"
	"rdmc/internal/simnet"
)

// Network creates providers that share one simulated cluster and pairs their
// queue-pair endpoints by (node, node, token) rendezvous.
type Network struct {
	cluster    *simnet.Cluster
	rendezvous *nicbase.Rendezvous[*queuePair]
	providers  map[rdma.NodeID]*Provider
}

// NewNetwork wraps a simulated cluster.
func NewNetwork(cluster *simnet.Cluster) *Network {
	return &Network{
		cluster:    cluster,
		rendezvous: nicbase.NewRendezvous[*queuePair](),
		providers:  make(map[rdma.NodeID]*Provider),
	}
}

// Cluster returns the underlying simulated cluster.
func (n *Network) Cluster() *simnet.Cluster { return n.cluster }

// Provider returns the NIC of the given node; a node has exactly one, so
// repeated calls return the same instance.
func (n *Network) Provider(id rdma.NodeID) *Provider {
	if p, ok := n.providers[id]; ok {
		return p
	}
	p := &Provider{net: n}
	p.Init(id, nicbase.NewEventCQ(p.submit))
	n.providers[id] = p
	return p
}

// Provider is a simulated NIC.
type Provider struct {
	nicbase.Base
	net     *Network
	offload bool
}

var _ rdma.Provider = (*Provider)(nil)

// SetOffload toggles CORE-Direct-style cross-channel offload (§2, Figure 12
// of the paper): with it on, posting and completion handling bypass the CPU
// model entirely, as if the precomputed data-flow graph executed on the NIC.
func (p *Provider) SetOffload(on bool) { p.offload = on }

// submit routes a completion delivery through the CPU model (or straight
// through under offload); it is the provider's completion-queue dispatch
// hook.
func (p *Provider) submit(fn func()) {
	if p.offload {
		p.sim().After(0, fn)
		return
	}
	p.cpu().Deliver(fn)
}

// Connect implements rdma.Provider. Unlike socket transports, rendezvous is
// in-memory and per-call: each Connect creates a fresh endpoint, so a node
// may hold both ends of a self-connection under one token.
func (p *Provider) Connect(peer rdma.NodeID, token uint64) (rdma.QueuePair, error) {
	if int(peer) < 0 || int(peer) >= p.net.cluster.Config().Nodes {
		return nil, fmt.Errorf("simnic: peer %d outside cluster of %d nodes", peer, p.net.cluster.Config().Nodes)
	}
	qp := &queuePair{local: p, peer: peer, token: token}
	if err := p.AddQP(nicbase.QPKey{Peer: peer, Token: token}, qp); err != nil {
		return nil, err
	}
	if other, ok := p.net.rendezvous.Match(p.NodeID(), peer, token, qp); ok {
		qp.remote, other.remote = other, qp
		qp.maybeStart()
		other.maybeStart()
	}
	return qp, nil
}

// Close implements rdma.Provider.
func (p *Provider) Close() error {
	qps, _ := p.Shutdown()
	for _, qp := range qps {
		_ = qp.Close()
	}
	return nil
}

func (p *Provider) cpu() *simnet.CPU { return p.net.cluster.CPU(simnet.NodeID(p.NodeID())) }

func (p *Provider) sim() *simnet.Sim { return p.net.cluster.Sim() }

type sendWR struct {
	buf   rdma.Buffer
	imm   uint32
	wrID  uint64
	write bool
	// one-sided write fields
	region rdma.RegionID
	offset int
	data   []byte
}

type recvWR struct {
	buf  rdma.Buffer
	wrID uint64
}

type arrival struct {
	bytes int
	imm   uint32
	data  []byte
	write bool
	// write fields
	region rdma.RegionID
	offset int
}

// queuePair is one simulated RC endpoint. Sends execute one at a time in
// FIFO order; receives match arrivals in order.
type queuePair struct {
	local    *Provider
	peer     rdma.NodeID
	token    uint64
	remote   *queuePair
	sends    []sendWR
	inflight bool
	recvs    []recvWR
	arrivals []arrival
	broken   bool
}

var _ rdma.QueuePair = (*queuePair)(nil)

// Peer implements rdma.QueuePair.
func (q *queuePair) Peer() rdma.NodeID { return q.peer }

// Token implements rdma.QueuePair.
func (q *queuePair) Token() uint64 { return q.token }

// PostSend implements rdma.QueuePair.
func (q *queuePair) PostSend(buf rdma.Buffer, imm uint32, wrID uint64) error {
	if err := q.postCheck(); err != nil {
		return err
	}
	q.sends = append(q.sends, sendWR{buf: buf, imm: imm, wrID: wrID})
	q.maybeStart()
	return nil
}

// PostWrite implements rdma.QueuePair.
func (q *queuePair) PostWrite(region rdma.RegionID, offset int, data []byte, wrID uint64) error {
	if err := q.postCheck(); err != nil {
		return err
	}
	q.sends = append(q.sends, sendWR{
		write:  true,
		region: region,
		offset: offset,
		data:   append([]byte(nil), data...),
		buf:    rdma.SizeBuffer(len(data)),
		wrID:   wrID,
	})
	q.maybeStart()
	return nil
}

// PostRecv implements rdma.QueuePair.
func (q *queuePair) PostRecv(buf rdma.Buffer, wrID uint64) error {
	if err := q.postCheck(); err != nil {
		return err
	}
	if len(q.arrivals) > 0 {
		a := q.arrivals[0]
		if a.data != nil && buf.Data != nil && len(buf.Data) < len(a.data) {
			q.breakBoth()
			return rdma.ErrBufferTooSmall
		}
		q.arrivals = q.arrivals[1:]
		q.completeRecv(recvWR{buf: buf, wrID: wrID}, a)
		return nil
	}
	q.recvs = append(q.recvs, recvWR{buf: buf, wrID: wrID})
	return nil
}

// Close implements rdma.QueuePair.
func (q *queuePair) Close() error {
	q.breakConn()
	return nil
}

func (q *queuePair) postCheck() error {
	if q.broken {
		return rdma.ErrBroken
	}
	return q.local.CheckPost()
}

// maybeStart launches the next queued send if the wire is idle and the
// endpoints are paired.
func (q *queuePair) maybeStart() {
	if q.inflight || q.broken || q.remote == nil || len(q.sends) == 0 {
		return
	}
	q.inflight = true
	wr := q.sends[0]
	start := func() { q.transmit(wr) }
	if q.local.offload {
		start()
		return
	}
	q.local.cpu().Exec(q.local.cpu().Config().PostCost, start)
}

func (q *queuePair) transmit(wr sendWR) {
	src := simnet.NodeID(q.local.NodeID())
	dst := simnet.NodeID(q.peer)
	q.local.net.cluster.Transfer(src, dst, float64(wr.buf.Len), func(broken bool) {
		if q.broken {
			return
		}
		if broken {
			q.breakBoth()
			return
		}
		q.sends = q.sends[1:]
		q.inflight = false
		op := rdma.OpSend
		if wr.write {
			op = rdma.OpWrite
		}
		q.local.Complete(rdma.Completion{
			Op:     op,
			Status: rdma.StatusOK,
			Peer:   q.peer,
			Token:  q.token,
			WRID:   wr.wrID,
			Bytes:  wr.buf.Len,
		})
		q.remote.onArrival(arrival{
			bytes:  wr.buf.Len,
			imm:    wr.imm,
			data:   wr.buf.Data,
			write:  wr.write,
			region: wr.region,
			offset: wr.offset,
		}, wr.data)
		q.maybeStart()
	})
}

func (q *queuePair) onArrival(a arrival, writeData []byte) {
	if q.broken {
		return
	}
	if a.write {
		if err := q.local.ApplyWrite(a.region, a.offset, a.bytes, writeData); err != nil {
			q.breakBoth()
		}
		return
	}
	if len(q.recvs) == 0 {
		q.arrivals = append(q.arrivals, a)
		return
	}
	wr := q.recvs[0]
	q.recvs = q.recvs[1:]
	q.completeRecv(wr, a)
}

func (q *queuePair) completeRecv(wr recvWR, a arrival) {
	c := rdma.Completion{
		Op:     rdma.OpRecv,
		Status: rdma.StatusOK,
		Peer:   q.peer,
		Token:  q.token,
		WRID:   wr.wrID,
		Imm:    a.imm,
		Bytes:  a.bytes,
	}
	if a.data != nil && wr.buf.Data != nil {
		if len(wr.buf.Data) < len(a.data) {
			q.breakBoth()
			return
		}
		copy(wr.buf.Data, a.data)
		c.Data = wr.buf.Data[:len(a.data)]
	}
	q.local.Complete(c)
}

// breakBoth fails this endpoint and, when paired, its remote.
func (q *queuePair) breakBoth() {
	q.breakConn()
	if q.remote != nil {
		q.remote.breakConn()
	}
}

// breakConn fails every outstanding work request on this endpoint.
func (q *queuePair) breakConn() {
	if q.broken {
		return
	}
	q.broken = true
	for _, wr := range q.sends {
		op := rdma.OpSend
		if wr.write {
			op = rdma.OpWrite
		}
		q.local.Complete(rdma.Completion{
			Op:     op,
			Status: rdma.StatusBroken,
			Peer:   q.peer,
			Token:  q.token,
			WRID:   wr.wrID,
		})
	}
	q.sends = nil
	for _, wr := range q.recvs {
		q.local.Complete(rdma.Completion{
			Op:     rdma.OpRecv,
			Status: rdma.StatusBroken,
			Peer:   q.peer,
			Token:  q.token,
			WRID:   wr.wrID,
		})
	}
	q.recvs = nil
}
