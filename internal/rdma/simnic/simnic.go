// Package simnic implements the rdma.Provider interface over the simnet
// fluid-flow fabric. It is the stand-in for the Mellanox RDMA NICs used in
// the RDMC paper: queue pairs are FIFO, completions fire at the virtual time
// the last byte arrives, software costs go through the simnet CPU model, and
// link or node failures surface as StatusBroken completions.
//
// Everything runs on the simulation's single event-loop thread; providers are
// not goroutine-safe and must only be touched from simulation callbacks (or
// before the simulation starts).
package simnic

import (
	"fmt"

	"rdmc/internal/rdma"
	"rdmc/internal/simnet"
)

// Network creates providers that share one simulated cluster and pairs their
// queue-pair endpoints by (node, node, token) rendezvous.
type Network struct {
	cluster   *simnet.Cluster
	pending   map[connKey][]*queuePair
	providers map[rdma.NodeID]*Provider
}

type connKey struct {
	lo, hi rdma.NodeID
	token  uint64
}

// NewNetwork wraps a simulated cluster.
func NewNetwork(cluster *simnet.Cluster) *Network {
	return &Network{
		cluster:   cluster,
		pending:   make(map[connKey][]*queuePair),
		providers: make(map[rdma.NodeID]*Provider),
	}
}

// Cluster returns the underlying simulated cluster.
func (n *Network) Cluster() *simnet.Cluster { return n.cluster }

// Provider returns the NIC of the given node; a node has exactly one, so
// repeated calls return the same instance.
func (n *Network) Provider(id rdma.NodeID) *Provider {
	if p, ok := n.providers[id]; ok {
		return p
	}
	p := &Provider{
		net:      n,
		id:       id,
		regions:  make(map[rdma.RegionID][]byte),
		watchers: make(map[rdma.RegionID]func(int, int)),
	}
	n.providers[id] = p
	return p
}

func (n *Network) rendezvous(qp *queuePair) {
	key := connKey{lo: qp.local.id, hi: qp.peer, token: qp.token}
	if key.lo > key.hi {
		key.lo, key.hi = key.hi, key.lo
	}
	for i, other := range n.pending[key] {
		if other.local.id == qp.peer {
			n.pending[key] = append(n.pending[key][:i], n.pending[key][i+1:]...)
			qp.remote, other.remote = other, qp
			qp.maybeStart()
			other.maybeStart()
			return
		}
	}
	n.pending[key] = append(n.pending[key], qp)
}

// Provider is a simulated NIC.
type Provider struct {
	net      *Network
	id       rdma.NodeID
	handler  func(rdma.Completion)
	regions  map[rdma.RegionID][]byte
	watchers map[rdma.RegionID]func(int, int)
	offload  bool
	closed   bool
	qps      []*queuePair
}

var _ rdma.Provider = (*Provider)(nil)

// NodeID implements rdma.Provider.
func (p *Provider) NodeID() rdma.NodeID { return p.id }

// SetHandler implements rdma.Provider.
func (p *Provider) SetHandler(h func(rdma.Completion)) { p.handler = h }

// SetOffload toggles CORE-Direct-style cross-channel offload (§2, Figure 12
// of the paper): with it on, posting and completion handling bypass the CPU
// model entirely, as if the precomputed data-flow graph executed on the NIC.
func (p *Provider) SetOffload(on bool) { p.offload = on }

// Connect implements rdma.Provider.
func (p *Provider) Connect(peer rdma.NodeID, token uint64) (rdma.QueuePair, error) {
	if p.closed {
		return nil, rdma.ErrClosed
	}
	if int(peer) < 0 || int(peer) >= p.net.cluster.Config().Nodes {
		return nil, fmt.Errorf("simnic: peer %d outside cluster of %d nodes", peer, p.net.cluster.Config().Nodes)
	}
	qp := &queuePair{local: p, peer: peer, token: token}
	p.qps = append(p.qps, qp)
	p.net.rendezvous(qp)
	return qp, nil
}

// RegisterRegion implements rdma.Provider.
func (p *Provider) RegisterRegion(id rdma.RegionID, buf []byte) error {
	if p.closed {
		return rdma.ErrClosed
	}
	p.regions[id] = buf
	return nil
}

// Region implements rdma.Provider.
func (p *Provider) Region(id rdma.RegionID) []byte { return p.regions[id] }

// WatchRegion implements rdma.Provider.
func (p *Provider) WatchRegion(id rdma.RegionID, fn func(offset, length int)) error {
	if p.closed {
		return rdma.ErrClosed
	}
	if _, ok := p.regions[id]; !ok {
		return rdma.ErrUnknownRegion
	}
	p.watchers[id] = fn
	return nil
}

// Close implements rdma.Provider.
func (p *Provider) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	for _, qp := range p.qps {
		qp.breakConn()
	}
	return nil
}

func (p *Provider) cpu() *simnet.CPU { return p.net.cluster.CPU(simnet.NodeID(p.id)) }

func (p *Provider) sim() *simnet.Sim { return p.net.cluster.Sim() }

// deliver routes a completion through the CPU model (or straight through
// under offload) to the handler.
func (p *Provider) deliver(c rdma.Completion) {
	if p.handler == nil {
		return
	}
	h := p.handler
	if p.offload {
		p.sim().After(0, func() { h(c) })
		return
	}
	p.cpu().Deliver(func() { h(c) })
}

type sendWR struct {
	buf   rdma.Buffer
	imm   uint32
	wrID  uint64
	write bool
	// one-sided write fields
	region rdma.RegionID
	offset int
	data   []byte
}

type recvWR struct {
	buf  rdma.Buffer
	wrID uint64
}

type arrival struct {
	bytes int
	imm   uint32
	data  []byte
	write bool
	// write fields
	region rdma.RegionID
	offset int
}

// queuePair is one simulated RC endpoint. Sends execute one at a time in
// FIFO order; receives match arrivals in order.
type queuePair struct {
	local    *Provider
	peer     rdma.NodeID
	token    uint64
	remote   *queuePair
	sends    []sendWR
	inflight bool
	recvs    []recvWR
	arrivals []arrival
	broken   bool
}

var _ rdma.QueuePair = (*queuePair)(nil)

// Peer implements rdma.QueuePair.
func (q *queuePair) Peer() rdma.NodeID { return q.peer }

// Token implements rdma.QueuePair.
func (q *queuePair) Token() uint64 { return q.token }

// PostSend implements rdma.QueuePair.
func (q *queuePair) PostSend(buf rdma.Buffer, imm uint32, wrID uint64) error {
	if err := q.postCheck(); err != nil {
		return err
	}
	q.sends = append(q.sends, sendWR{buf: buf, imm: imm, wrID: wrID})
	q.maybeStart()
	return nil
}

// PostWrite implements rdma.QueuePair.
func (q *queuePair) PostWrite(region rdma.RegionID, offset int, data []byte, wrID uint64) error {
	if err := q.postCheck(); err != nil {
		return err
	}
	q.sends = append(q.sends, sendWR{
		write:  true,
		region: region,
		offset: offset,
		data:   append([]byte(nil), data...),
		buf:    rdma.SizeBuffer(len(data)),
		wrID:   wrID,
	})
	q.maybeStart()
	return nil
}

// PostRecv implements rdma.QueuePair.
func (q *queuePair) PostRecv(buf rdma.Buffer, wrID uint64) error {
	if err := q.postCheck(); err != nil {
		return err
	}
	if len(q.arrivals) > 0 {
		a := q.arrivals[0]
		q.arrivals = q.arrivals[1:]
		q.completeRecv(recvWR{buf: buf, wrID: wrID}, a)
		return nil
	}
	q.recvs = append(q.recvs, recvWR{buf: buf, wrID: wrID})
	return nil
}

// Close implements rdma.QueuePair.
func (q *queuePair) Close() error {
	q.breakConn()
	return nil
}

func (q *queuePair) postCheck() error {
	switch {
	case q.broken:
		return rdma.ErrBroken
	case q.local.closed:
		return rdma.ErrClosed
	case q.local.handler == nil:
		return rdma.ErrNoHandler
	}
	return nil
}

// maybeStart launches the next queued send if the wire is idle and the
// endpoints are paired.
func (q *queuePair) maybeStart() {
	if q.inflight || q.broken || q.remote == nil || len(q.sends) == 0 {
		return
	}
	q.inflight = true
	wr := q.sends[0]
	start := func() { q.transmit(wr) }
	if q.local.offload {
		start()
		return
	}
	q.local.cpu().Exec(q.local.cpu().Config().PostCost, start)
}

func (q *queuePair) transmit(wr sendWR) {
	src := simnet.NodeID(q.local.id)
	dst := simnet.NodeID(q.peer)
	q.local.net.cluster.Transfer(src, dst, float64(wr.buf.Len), func(broken bool) {
		if q.broken {
			return
		}
		if broken {
			q.breakConn()
			if q.remote != nil {
				q.remote.breakConn()
			}
			return
		}
		q.sends = q.sends[1:]
		q.inflight = false
		op := rdma.OpSend
		if wr.write {
			op = rdma.OpWrite
		}
		q.local.deliver(rdma.Completion{
			Op:     op,
			Status: rdma.StatusOK,
			Peer:   q.peer,
			Token:  q.token,
			WRID:   wr.wrID,
			Bytes:  wr.buf.Len,
		})
		q.remote.onArrival(arrival{
			bytes:  wr.buf.Len,
			imm:    wr.imm,
			data:   wr.buf.Data,
			write:  wr.write,
			region: wr.region,
			offset: wr.offset,
		}, wr.data)
		q.maybeStart()
	})
}

func (q *queuePair) onArrival(a arrival, writeData []byte) {
	if q.broken {
		return
	}
	if a.write {
		region := q.local.regions[a.region]
		if region != nil && a.offset >= 0 && a.offset+len(writeData) <= len(region) {
			copy(region[a.offset:], writeData)
		}
		if fn := q.local.watchers[a.region]; fn != nil {
			fn(a.offset, len(writeData))
		}
		return
	}
	if len(q.recvs) == 0 {
		q.arrivals = append(q.arrivals, a)
		return
	}
	wr := q.recvs[0]
	q.recvs = q.recvs[1:]
	q.completeRecv(wr, a)
}

func (q *queuePair) completeRecv(wr recvWR, a arrival) {
	c := rdma.Completion{
		Op:     rdma.OpRecv,
		Status: rdma.StatusOK,
		Peer:   q.peer,
		Token:  q.token,
		WRID:   wr.wrID,
		Imm:    a.imm,
		Bytes:  a.bytes,
	}
	if a.data != nil && wr.buf.Data != nil {
		if len(wr.buf.Data) < len(a.data) {
			q.breakConn()
			if q.remote != nil {
				q.remote.breakConn()
			}
			return
		}
		copy(wr.buf.Data, a.data)
		c.Data = wr.buf.Data[:len(a.data)]
	}
	q.local.deliver(c)
}

// breakConn fails every outstanding work request on this endpoint.
func (q *queuePair) breakConn() {
	if q.broken {
		return
	}
	q.broken = true
	for _, wr := range q.sends {
		op := rdma.OpSend
		if wr.write {
			op = rdma.OpWrite
		}
		q.local.deliver(rdma.Completion{
			Op:     op,
			Status: rdma.StatusBroken,
			Peer:   q.peer,
			Token:  q.token,
			WRID:   wr.wrID,
		})
	}
	q.sends = nil
	for _, wr := range q.recvs {
		q.local.deliver(rdma.Completion{
			Op:     rdma.OpRecv,
			Status: rdma.StatusBroken,
			Peer:   q.peer,
			Token:  q.token,
			WRID:   wr.wrID,
		})
	}
	q.recvs = nil
}
