// Package tcpnic implements the rdma.Provider interface over real TCP
// sockets. It realizes the paper's §5.3 direction — "RDMC might work
// surprisingly well over high speed datacenter TCP (with no RDMA)" — and
// gives this reproduction a genuinely runnable transport: the protocol
// engine drives tcpnic exactly as it drives the simulated NIC.
//
// Mapping of verbs semantics onto TCP:
//
//   - one TCP connection per queue pair, established by a (node, token)
//     handshake: both sides call Connect with the same token, the higher
//     node id dials, the lower accepts;
//   - sends are framed [imm][len][payload] and execute in FIFO order per
//     queue pair; the writer coalesces up to eight queued frames (bounded in
//     bytes) into one vectored writev, so a pipelined send window moves with
//     one syscall; the send completion fires when the frame has been handed
//     to the kernel;
//   - receives take a zero-copy fast path whenever a matching receive is
//     already posted at frame-read time: the payload is read from the
//     socket directly into the posted buffer, with no staging and no copy.
//     Only early arrivals (no receive posted yet) stage in a pooled buffer
//     and pay one copy when the receive lands;
//   - one-sided writes are frames applied directly to the target's
//     registered region without raising a receive completion, mirroring
//     RDMA write semantics;
//   - a connection error surfaces as StatusBroken completions for all
//     outstanding work requests on the queue pair, like an RC connection
//     exhausting its retries.
//
// The queue-pair table, region registry, watchers, and the single-dispatcher
// completion queue live in the shared runtime (package nicbase); this
// package contributes only the sockets: framing, the connect handshake, and
// the per-connection reader/writer loops. Early arrivals and inbound write
// payloads are staged in pooled buffers (nicbase.BufPool), so the
// steady-state receive path allocates nothing per block.
package tcpnic

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"rdmc/internal/obs"
	"rdmc/internal/rdma"
	"rdmc/internal/rdma/nicbase"
	"rdmc/internal/rdma/shmnic"
)

const (
	frameData  = 1
	frameWrite = 2

	// maxFrame bounds a frame payload (1 GiB) as a corruption guard.
	maxFrame = 1 << 30
)

// Config describes one node's transport.
type Config struct {
	// NodeID is the local identity.
	NodeID rdma.NodeID
	// Listener accepts queue-pair connections from lower-id peers. The
	// caller owns address distribution (Addrs must contain every peer's
	// listen address, including this node's).
	Listener net.Listener
	// Addrs maps node ids to listen addresses.
	Addrs map[rdma.NodeID]string
	// CompletionBuffer sizes the completion ring; zero selects 1024.
	CompletionBuffer int
	// SocketBuffer sizes the kernel send and receive buffers of every
	// queue-pair connection, on both the dial and accept paths. Zero (the
	// default) leaves the kernel's autotuning in charge — measured on
	// loopback, pinning large static buffers lets windowed bursts build
	// receive queues deep enough that the kernel starts collapsing
	// (copying) socket buffers, costing more than the headroom buys. Set
	// it explicitly for real networks whose bandwidth-delay product
	// outgrows the autotuned window.
	SocketBuffer int
	// Intra, when non-nil, is the shared-memory domain of co-located
	// providers: Connect calls whose peer is registered in the exchange
	// produce in-process shared-memory endpoints instead of TCP
	// connections, while remote peers keep using sockets. Every co-located
	// provider must be constructed (registering itself) before any of them
	// connects, so both sides of a pair route consistently.
	Intra *shmnic.Exchange
}

// RecvCounters is a snapshot of the receive path's copy behavior: frames
// that landed zero-copy (read straight into the posted buffer) versus frames
// that staged through a pooled buffer because no receive was posted yet,
// plus the bytes that staging copied. The conformance-adjacent tests and the
// send-window benchmark use it to prove the fast path stays copy-free.
type RecvCounters struct {
	DirectFrames uint64
	StagedFrames uint64
	StagedBytes  uint64
}

// Provider is a TCP-backed NIC.
type Provider struct {
	nicbase.Base
	cfg  Config
	pool nicbase.BufPool
	wg   sync.WaitGroup

	directFrames  atomic.Uint64
	stagedFrames  atomic.Uint64
	stagedBytes   atomic.Uint64
	zeroCopySends atomic.Uint64

	// Registry mirrors of the counters above plus the writer coalescing
	// histogram; nil (the default) discards the updates. See SetObserver.
	obsDirect      *obs.Counter
	obsStaged      *obs.Counter
	obsStagedBytes *obs.Counter
	obsZeroCopy    *obs.Counter
	obsCoalesce    *obs.Histogram
}

// ZeroCopySends returns how many frames the writers emitted referencing the
// caller's memory directly (every non-virtual send and one-sided write).
func (p *Provider) ZeroCopySends() uint64 { return p.zeroCopySends.Load() }

// Pool exposes the provider's buffer pool so a co-hosted shared-memory
// exchange (see package shmnic) can stage early arrivals through the same
// size classes.
func (p *Provider) Pool() *nicbase.BufPool { return &p.pool }

// RecvStats returns the provider's receive-path copy counters.
func (p *Provider) RecvStats() RecvCounters {
	return RecvCounters{
		DirectFrames: p.directFrames.Load(),
		StagedFrames: p.stagedFrames.Load(),
		StagedBytes:  p.stagedBytes.Load(),
	}
}

var _ rdma.Provider = (*Provider)(nil)
var _ shmnic.Host = (*Provider)(nil)

// New starts the provider: it begins accepting queue-pair connections and
// dispatching completions immediately (the handler must be installed before
// the first work request is posted).
func New(cfg Config) (*Provider, error) {
	if cfg.Listener == nil {
		return nil, fmt.Errorf("tcpnic: node %d needs a listener", cfg.NodeID)
	}
	p := &Provider{cfg: cfg}
	p.Init(cfg.NodeID, nicbase.NewRingCQ(cfg.CompletionBuffer))
	if cfg.Intra != nil {
		if err := cfg.Intra.Register(p); err != nil {
			p.CloseCQ()
			return nil, err
		}
	}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Connect implements rdma.Provider: it returns immediately; the connection
// is dialed (or awaited) in the background and queued work requests flush
// once it is up.
func (p *Provider) Connect(peer rdma.NodeID, token uint64) (rdma.QueuePair, error) {
	if ex := p.cfg.Intra; ex != nil && peer != p.cfg.NodeID && ex.Has(peer) {
		// Co-located peer: the queue pair is a shared-memory endpoint, no
		// socket. Pair is idempotent; whichever side connects second links
		// the halves and flushes queued posts.
		qp, _, err := p.EnsureQP(nicbase.QPKey{Peer: peer, Token: token}, func() rdma.QueuePair {
			return ex.NewEndpoint(p, peer, token)
		})
		if err != nil {
			return nil, err
		}
		ex.Pair(qp)
		return qp, nil
	}
	qp, created, err := p.EnsureQP(nicbase.QPKey{Peer: peer, Token: token}, func() rdma.QueuePair {
		return newQueuePair(p, peer, token)
	})
	if err != nil {
		return nil, err
	}
	if created && p.cfg.NodeID > peer {
		// Higher id dials; lower id accepts.
		addr, ok := p.cfg.Addrs[peer]
		if !ok {
			return nil, fmt.Errorf("tcpnic: no address for peer %d", peer)
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			qp.(*queuePair).dial(addr)
		}()
	}
	return qp, nil
}

// Close implements rdma.Provider: it stops accepting, breaks every queue
// pair, drains the completion dispatcher, and waits for the background
// goroutines to exit.
func (p *Provider) Close() error {
	qps, first := p.Shutdown()
	if !first {
		return nil
	}
	err := p.cfg.Listener.Close()
	for _, qp := range qps {
		_ = qp.Close()
	}
	p.CloseCQ()
	p.wg.Wait()
	if p.cfg.Intra != nil {
		p.cfg.Intra.Deregister(p)
	}
	return err
}

// accept pairs inbound connections with pending Connect calls by their
// handshake (peer id, token).
func (p *Provider) accept() {
	defer p.wg.Done()
	for {
		conn, err := p.cfg.Listener.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handleInbound(conn)
		}()
	}
}

func (p *Provider) handleInbound(conn net.Conn) {
	p.tuneConn(conn)
	var hs [12]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		_ = conn.Close()
		return
	}
	peer := rdma.NodeID(binary.BigEndian.Uint32(hs[0:4]))
	token := binary.BigEndian.Uint64(hs[4:12])

	// The peer may connect before the local Connect call: EnsureQP parks
	// the endpoint so Connect finds it live.
	qp, _, err := p.EnsureQP(nicbase.QPKey{Peer: peer, Token: token}, func() rdma.QueuePair {
		return newQueuePair(p, peer, token)
	})
	if err != nil {
		_ = conn.Close()
		return
	}
	tq, ok := qp.(*queuePair)
	if !ok {
		// The (peer, token) key is occupied by a non-TCP endpoint (an
		// intra-host shared-memory pair): the socket has no one to serve.
		_ = conn.Close()
		return
	}
	tq.attach(conn)
}

// tuneConn applies the data-plane socket options. TCP_NODELAY keeps the
// 18-byte frame headers (and the control notices they unblock) from sitting
// in Nagle's buffer behind a block payload; explicitly sized kernel buffers
// (SocketBuffer > 0) let a full send window of blocks stream on high
// bandwidth-delay-product paths. Called on both the dial and accept paths
// before the handshake bytes move.
func (p *Provider) tuneConn(conn net.Conn) {
	tc, ok := conn.(*net.TCPConn)
	if !ok {
		return
	}
	_ = tc.SetNoDelay(true)
	if size := p.cfg.SocketBuffer; size > 0 {
		_ = tc.SetReadBuffer(size)
		_ = tc.SetWriteBuffer(size)
	}
}
