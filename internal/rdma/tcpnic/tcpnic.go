// Package tcpnic implements the rdma.Provider interface over real TCP
// sockets. It realizes the paper's §5.3 direction — "RDMC might work
// surprisingly well over high speed datacenter TCP (with no RDMA)" — and
// gives this reproduction a genuinely runnable transport: the protocol
// engine drives tcpnic exactly as it drives the simulated NIC.
//
// Mapping of verbs semantics onto TCP:
//
//   - one TCP connection per queue pair, established by a (node, token)
//     handshake: both sides call Connect with the same token, the higher
//     node id dials, the lower accepts;
//   - sends are framed [imm][len][payload] and execute one at a time per
//     queue pair (FIFO); the send completion fires when the frame has been
//     handed to the kernel, receives complete when fully read and copied
//     into the posted buffer;
//   - one-sided writes are frames applied directly to the target's
//     registered region without raising a receive completion, mirroring
//     RDMA write semantics;
//   - a connection error surfaces as StatusBroken completions for all
//     outstanding work requests on the queue pair, like an RC connection
//     exhausting its retries.
//
// The queue-pair table, region registry, watchers, and the single-dispatcher
// completion queue live in the shared runtime (package nicbase); this
// package contributes only the sockets: framing, the connect handshake, and
// the per-connection reader/writer loops. Early arrivals and inbound write
// payloads are staged in pooled buffers (nicbase.BufPool), so the
// steady-state receive path allocates nothing per block.
package tcpnic

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"rdmc/internal/rdma"
	"rdmc/internal/rdma/nicbase"
)

const (
	frameData  = 1
	frameWrite = 2

	// maxFrame bounds a frame payload (1 GiB) as a corruption guard.
	maxFrame = 1 << 30
)

// Config describes one node's transport.
type Config struct {
	// NodeID is the local identity.
	NodeID rdma.NodeID
	// Listener accepts queue-pair connections from lower-id peers. The
	// caller owns address distribution (Addrs must contain every peer's
	// listen address, including this node's).
	Listener net.Listener
	// Addrs maps node ids to listen addresses.
	Addrs map[rdma.NodeID]string
	// CompletionBuffer sizes the completion channel; zero selects 1024.
	CompletionBuffer int
}

// Provider is a TCP-backed NIC.
type Provider struct {
	nicbase.Base
	cfg  Config
	pool nicbase.BufPool
	wg   sync.WaitGroup
}

var _ rdma.Provider = (*Provider)(nil)

// New starts the provider: it begins accepting queue-pair connections and
// dispatching completions immediately (the handler must be installed before
// the first work request is posted).
func New(cfg Config) (*Provider, error) {
	if cfg.Listener == nil {
		return nil, fmt.Errorf("tcpnic: node %d needs a listener", cfg.NodeID)
	}
	p := &Provider{cfg: cfg}
	p.Init(cfg.NodeID, nicbase.NewChannelCQ(cfg.CompletionBuffer))
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Connect implements rdma.Provider: it returns immediately; the connection
// is dialed (or awaited) in the background and queued work requests flush
// once it is up.
func (p *Provider) Connect(peer rdma.NodeID, token uint64) (rdma.QueuePair, error) {
	qp, created, err := p.EnsureQP(nicbase.QPKey{Peer: peer, Token: token}, func() rdma.QueuePair {
		return newQueuePair(p, peer, token)
	})
	if err != nil {
		return nil, err
	}
	if created && p.cfg.NodeID > peer {
		// Higher id dials; lower id accepts.
		addr, ok := p.cfg.Addrs[peer]
		if !ok {
			return nil, fmt.Errorf("tcpnic: no address for peer %d", peer)
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			qp.(*queuePair).dial(addr)
		}()
	}
	return qp, nil
}

// Close implements rdma.Provider: it stops accepting, breaks every queue
// pair, drains the completion dispatcher, and waits for the background
// goroutines to exit.
func (p *Provider) Close() error {
	qps, first := p.Shutdown()
	if !first {
		return nil
	}
	err := p.cfg.Listener.Close()
	for _, qp := range qps {
		_ = qp.Close()
	}
	p.CloseCQ()
	p.wg.Wait()
	return err
}

// accept pairs inbound connections with pending Connect calls by their
// handshake (peer id, token).
func (p *Provider) accept() {
	defer p.wg.Done()
	for {
		conn, err := p.cfg.Listener.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handleInbound(conn)
		}()
	}
}

func (p *Provider) handleInbound(conn net.Conn) {
	var hs [12]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		_ = conn.Close()
		return
	}
	peer := rdma.NodeID(binary.BigEndian.Uint32(hs[0:4]))
	token := binary.BigEndian.Uint64(hs[4:12])

	// The peer may connect before the local Connect call: EnsureQP parks
	// the endpoint so Connect finds it live.
	qp, _, err := p.EnsureQP(nicbase.QPKey{Peer: peer, Token: token}, func() rdma.QueuePair {
		return newQueuePair(p, peer, token)
	})
	if err != nil {
		_ = conn.Close()
		return
	}
	qp.(*queuePair).attach(conn)
}

func setNoDelay(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
}
