// Package tcpnic implements the rdma.Provider interface over real TCP
// sockets. It realizes the paper's §5.3 direction — "RDMC might work
// surprisingly well over high speed datacenter TCP (with no RDMA)" — and
// gives this reproduction a genuinely runnable transport: the protocol
// engine drives tcpnic exactly as it drives the simulated NIC.
//
// Mapping of verbs semantics onto TCP:
//
//   - one TCP connection per queue pair, established by a (node, token)
//     handshake: both sides call Connect with the same token, the higher
//     node id dials, the lower accepts;
//   - sends are framed [imm][len][payload] and execute one at a time per
//     queue pair (FIFO); the send completion fires when the frame has been
//     handed to the kernel, receives complete when fully read and copied
//     into the posted buffer;
//   - one-sided writes are frames applied directly to the target's
//     registered region without raising a receive completion, mirroring
//     RDMA write semantics;
//   - a connection error surfaces as StatusBroken completions for all
//     outstanding work requests on the queue pair, like an RC connection
//     exhausting its retries.
//
// Completions from every queue pair funnel into one dispatcher goroutine per
// provider, preserving the single-completion-thread discipline the engine
// expects.
package tcpnic

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"rdmc/internal/rdma"
)

const (
	frameData  = 1
	frameWrite = 2

	// maxFrame bounds a frame payload (1 GiB) as a corruption guard.
	maxFrame = 1 << 30
)

// Config describes one node's transport.
type Config struct {
	// NodeID is the local identity.
	NodeID rdma.NodeID
	// Listener accepts queue-pair connections from lower-id peers. The
	// caller owns address distribution (Addrs must contain every peer's
	// listen address, including this node's).
	Listener net.Listener
	// Addrs maps node ids to listen addresses.
	Addrs map[rdma.NodeID]string
	// CompletionBuffer sizes the completion channel; zero selects 1024.
	CompletionBuffer int
}

// Provider is a TCP-backed NIC.
type Provider struct {
	cfg Config

	mu       sync.Mutex
	handler  func(rdma.Completion)
	qps      map[qpKey]*queuePair
	regions  map[rdma.RegionID][]byte
	watchers map[rdma.RegionID]func(int, int)
	closed   bool

	completions chan rdma.Completion
	dispatchEnd chan struct{}
	acceptEnd   chan struct{}
	wg          sync.WaitGroup
}

type qpKey struct {
	peer  rdma.NodeID
	token uint64
}

var _ rdma.Provider = (*Provider)(nil)

// New starts the provider: it begins accepting queue-pair connections and
// dispatching completions immediately (the handler must be installed before
// the first work request is posted).
func New(cfg Config) (*Provider, error) {
	if cfg.Listener == nil {
		return nil, fmt.Errorf("tcpnic: node %d needs a listener", cfg.NodeID)
	}
	if cfg.CompletionBuffer <= 0 {
		cfg.CompletionBuffer = 1024
	}
	p := &Provider{
		cfg:         cfg,
		qps:         make(map[qpKey]*queuePair),
		regions:     make(map[rdma.RegionID][]byte),
		watchers:    make(map[rdma.RegionID]func(int, int)),
		completions: make(chan rdma.Completion, cfg.CompletionBuffer),
		dispatchEnd: make(chan struct{}),
		acceptEnd:   make(chan struct{}),
	}
	p.wg.Add(2)
	go p.dispatch()
	go p.accept()
	return p, nil
}

// NodeID implements rdma.Provider.
func (p *Provider) NodeID() rdma.NodeID { return p.cfg.NodeID }

// SetHandler implements rdma.Provider.
func (p *Provider) SetHandler(h func(rdma.Completion)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.handler = h
}

// Connect implements rdma.Provider: it returns immediately; the connection
// is dialed (or awaited) in the background and queued work requests flush
// once it is up.
func (p *Provider) Connect(peer rdma.NodeID, token uint64) (rdma.QueuePair, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, rdma.ErrClosed
	}
	key := qpKey{peer: peer, token: token}
	if qp, ok := p.qps[key]; ok {
		return qp, nil
	}
	qp := newQueuePair(p, peer, token)
	p.qps[key] = qp
	if p.cfg.NodeID > peer {
		// Higher id dials; lower id accepts.
		addr, ok := p.cfg.Addrs[peer]
		if !ok {
			return nil, fmt.Errorf("tcpnic: no address for peer %d", peer)
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			qp.dial(addr)
		}()
	}
	return qp, nil
}

// RegisterRegion implements rdma.Provider.
func (p *Provider) RegisterRegion(id rdma.RegionID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return rdma.ErrClosed
	}
	p.regions[id] = buf
	return nil
}

// Region implements rdma.Provider.
func (p *Provider) Region(id rdma.RegionID) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.regions[id]
}

// WatchRegion implements rdma.Provider.
func (p *Provider) WatchRegion(id rdma.RegionID, fn func(offset, length int)) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return rdma.ErrClosed
	}
	if _, ok := p.regions[id]; !ok {
		return rdma.ErrUnknownRegion
	}
	p.watchers[id] = fn
	return nil
}

// Close implements rdma.Provider: it stops accepting, breaks every queue
// pair, and waits for the background goroutines to exit.
func (p *Provider) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	qps := make([]*queuePair, 0, len(p.qps))
	for _, qp := range p.qps {
		qps = append(qps, qp)
	}
	p.mu.Unlock()

	err := p.cfg.Listener.Close()
	for _, qp := range qps {
		_ = qp.Close()
	}
	close(p.dispatchEnd)
	p.wg.Wait()
	return err
}

// dispatch delivers completions serially to the handler.
func (p *Provider) dispatch() {
	defer p.wg.Done()
	for {
		select {
		case c := <-p.completions:
			p.mu.Lock()
			h := p.handler
			p.mu.Unlock()
			if h != nil {
				h(c)
			}
		case <-p.dispatchEnd:
			// Drain whatever is queued, then exit.
			for {
				select {
				case c := <-p.completions:
					p.mu.Lock()
					h := p.handler
					p.mu.Unlock()
					if h != nil {
						h(c)
					}
				default:
					return
				}
			}
		}
	}
}

func (p *Provider) post(c rdma.Completion) {
	select {
	case p.completions <- c:
	case <-p.dispatchEnd:
	}
}

// accept pairs inbound connections with pending Connect calls by their
// handshake (peer id, token).
func (p *Provider) accept() {
	defer p.wg.Done()
	defer close(p.acceptEnd)
	for {
		conn, err := p.cfg.Listener.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handleInbound(conn)
		}()
	}
}

func (p *Provider) handleInbound(conn net.Conn) {
	var hs [12]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		_ = conn.Close()
		return
	}
	peer := rdma.NodeID(binary.BigEndian.Uint32(hs[0:4]))
	token := binary.BigEndian.Uint64(hs[4:12])

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = conn.Close()
		return
	}
	key := qpKey{peer: peer, token: token}
	qp, ok := p.qps[key]
	if !ok {
		// The peer connected before the local Connect call: park the
		// endpoint so Connect finds it live.
		qp = newQueuePair(p, peer, token)
		p.qps[key] = qp
	}
	p.mu.Unlock()
	qp.attach(conn)
}

func setNoDelay(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
}
