package tcpnic

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"time"

	"rdmc/internal/rdma"
)

// frame header layout: type(1) virtual(1) imm(4) aux(8) length(4).
// For data frames aux is unused; for write frames aux packs the region id
// (high 32 bits) and offset (low 32 bits). virtual=1 marks a metadata-only
// payload that is not carried on the wire.
const headerLen = 18

type sendWR struct {
	buf     rdma.Buffer
	imm     uint32
	wrID    uint64
	write   bool
	region  rdma.RegionID
	offset  int
	payload []byte // write payload (pooled owned copy)
}

type recvWR struct {
	buf  rdma.Buffer
	wrID uint64
}

type arrival struct {
	imm     uint32
	length  int
	payload []byte // nil for virtual frames
	pooled  bool   // payload came from the provider's buffer pool
}

// queuePair is one TCP-backed reliable connection endpoint.
type queuePair struct {
	p     *Provider
	peer  rdma.NodeID
	token uint64

	mu       sync.Mutex
	cond     *sync.Cond
	conn     net.Conn
	sendQ    []sendWR // entries before sendHead are consumed
	sendHead int
	recvQ    []recvWR
	arrivals []arrival
	broken   bool
}

var _ rdma.QueuePair = (*queuePair)(nil)

func newQueuePair(p *Provider, peer rdma.NodeID, token uint64) *queuePair {
	qp := &queuePair{p: p, peer: peer, token: token}
	qp.cond = sync.NewCond(&qp.mu)
	return qp
}

// Peer implements rdma.QueuePair.
func (q *queuePair) Peer() rdma.NodeID { return q.peer }

// Token implements rdma.QueuePair.
func (q *queuePair) Token() uint64 { return q.token }

// PostSend implements rdma.QueuePair.
func (q *queuePair) PostSend(buf rdma.Buffer, imm uint32, wrID uint64) error {
	return q.enqueue(sendWR{buf: buf, imm: imm, wrID: wrID})
}

// PostWrite implements rdma.QueuePair.
func (q *queuePair) PostWrite(region rdma.RegionID, offset int, data []byte, wrID uint64) error {
	payload := q.p.pool.Get(len(data))
	copy(payload, data)
	return q.enqueue(sendWR{
		write:   true,
		region:  region,
		offset:  offset,
		payload: payload,
		buf:     rdma.SizeBuffer(len(data)),
		wrID:    wrID,
	})
}

func (q *queuePair) enqueue(wr sendWR) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.broken {
		return rdma.ErrBroken
	}
	if err := q.p.CheckPost(); err != nil {
		return err
	}
	q.sendQ = append(q.sendQ, wr)
	q.cond.Broadcast()
	return nil
}

// PostRecv implements rdma.QueuePair.
func (q *queuePair) PostRecv(buf rdma.Buffer, wrID uint64) error {
	q.mu.Lock()
	if q.broken {
		q.mu.Unlock()
		return rdma.ErrBroken
	}
	if err := q.p.CheckPost(); err != nil {
		q.mu.Unlock()
		return err
	}
	if len(q.arrivals) > 0 {
		a := q.arrivals[0]
		q.arrivals = q.arrivals[1:]
		q.mu.Unlock()
		if err := q.completeRecv(recvWR{buf: buf, wrID: wrID}, a); err != nil {
			q.breakConn()
			return err
		}
		return nil
	}
	q.recvQ = append(q.recvQ, recvWR{buf: buf, wrID: wrID})
	q.mu.Unlock()
	return nil
}

// Close implements rdma.QueuePair.
func (q *queuePair) Close() error {
	q.breakConn()
	return nil
}

// dial establishes the connection from the higher-id side, retrying briefly
// to ride out listener startup races.
func (q *queuePair) dial(addr string) {
	var (
		conn net.Conn
		err  error
	)
	for attempt := 0; attempt < 5; attempt++ {
		q.mu.Lock()
		dead := q.broken
		q.mu.Unlock()
		if dead {
			return
		}
		conn, err = net.DialTimeout("tcp", addr, 2*time.Second)
		if err == nil {
			break
		}
		time.Sleep(time.Duration(attempt+1) * 20 * time.Millisecond)
	}
	if err != nil {
		q.breakConn()
		return
	}
	q.p.tuneConn(conn)
	var hs [12]byte
	binary.BigEndian.PutUint32(hs[0:4], uint32(q.p.NodeID()))
	binary.BigEndian.PutUint64(hs[4:12], q.token)
	if _, err := conn.Write(hs[:]); err != nil {
		_ = conn.Close()
		q.breakConn()
		return
	}
	q.attach(conn)
}

// attach binds the live connection and starts the reader and writer loops.
// The connection was tuned (TCP_NODELAY, socket buffers) on its dial or
// accept path before the handshake.
func (q *queuePair) attach(conn net.Conn) {
	q.mu.Lock()
	if q.broken || q.conn != nil {
		q.mu.Unlock()
		_ = conn.Close()
		return
	}
	q.conn = conn
	q.cond.Broadcast()
	q.mu.Unlock()

	q.p.wg.Add(2)
	go func() {
		defer q.p.wg.Done()
		q.writer(conn)
	}()
	go func() {
		defer q.p.wg.Done()
		q.reader(conn)
	}()
}

// maxCoalesce bounds how many queued frames the writer folds into one
// vectored write, and maxCoalesceBytes bounds the payload it carries. A send
// window's worth of small blocks usually sits queued when the engine
// pipelines, so one writev moves the whole window; the byte cap keeps large
// blocks going out one or two at a time — measured on loopback, writev
// bursts past a few hundred KB stall in the kernel's socket-buffer
// accounting and cost more than the saved syscalls.
const (
	maxCoalesce      = 8
	maxCoalesceBytes = 256 << 10
)

// writer drains the send queue in FIFO order, coalescing everything queued
// (up to maxCoalesce frames) into a single vectored write: headers and
// payloads interleave in one writev, so a full send window of blocks costs
// one syscall instead of one per block. The header and vector storage is
// reused across batches, so steady-state writing allocates nothing.
func (q *queuePair) writer(conn net.Conn) {
	var (
		hdrs  [maxCoalesce][headerLen]byte
		vec   = make(net.Buffers, 0, 2*maxCoalesce)
		batch = make([]sendWR, 0, maxCoalesce)
	)
	for {
		q.mu.Lock()
		for q.sendHead == len(q.sendQ) && !q.broken {
			q.cond.Wait()
		}
		if q.broken {
			q.mu.Unlock()
			return
		}
		avail := len(q.sendQ) - q.sendHead
		if avail > maxCoalesce {
			avail = maxCoalesce
		}
		n, bytes := 1, q.sendQ[q.sendHead].buf.Len
		for n < avail {
			next := q.sendQ[q.sendHead+n].buf.Len
			if bytes+next > maxCoalesceBytes {
				break
			}
			bytes += next
			n++
		}
		batch = append(batch[:0], q.sendQ[q.sendHead:q.sendHead+n]...)
		q.mu.Unlock()

		q.p.obsCoalesce.Observe(int64(n))
		if err := q.writeFrames(conn, batch, &hdrs, &vec); err != nil {
			q.breakConn()
			return
		}
		for _, wr := range batch {
			if wr.payload != nil {
				q.p.pool.Put(wr.payload)
			}
		}

		q.mu.Lock()
		if q.broken {
			// breakConn already completed these entries with StatusBroken.
			q.mu.Unlock()
			return
		}
		// Consume by advancing the head; once the queue drains, rewind so
		// the backing array is reused instead of reallocated every round.
		for i := 0; i < n; i++ {
			q.sendQ[q.sendHead+i] = sendWR{}
		}
		q.sendHead += n
		if q.sendHead == len(q.sendQ) {
			q.sendQ = q.sendQ[:0]
			q.sendHead = 0
		}
		q.mu.Unlock()

		for _, wr := range batch {
			op := rdma.OpSend
			if wr.write {
				op = rdma.OpWrite
			}
			q.p.Complete(rdma.Completion{
				Op:     op,
				Status: rdma.StatusOK,
				Peer:   q.peer,
				Token:  q.token,
				WRID:   wr.wrID,
				Bytes:  wr.buf.Len,
			})
		}
	}
}

// writeFrames emits a batch of frames in one vectored write. net.Buffers
// consumes the vector in place as segments drain, so the vector is rebuilt
// (and its entries cleared for the garbage collector) on every call.
func (q *queuePair) writeFrames(conn net.Conn, batch []sendWR, hdrs *[maxCoalesce][headerLen]byte, vec *net.Buffers) error {
	bufs := (*vec)[:0]
	for i := range batch {
		wr := &batch[i]
		hdr := &hdrs[i]
		payload := wr.buf.Data
		virtual := byte(0)
		kind := byte(frameData)
		if wr.write {
			kind = frameWrite
			payload = wr.payload
			binary.BigEndian.PutUint64(hdr[6:14], uint64(wr.region)<<32|uint64(uint32(wr.offset)))
		} else {
			binary.BigEndian.PutUint64(hdr[6:14], 0)
		}
		if payload == nil {
			virtual = 1
		}
		hdr[0] = kind
		hdr[1] = virtual
		binary.BigEndian.PutUint32(hdr[2:6], wr.imm)
		binary.BigEndian.PutUint32(hdr[14:18], uint32(wr.buf.Len))
		bufs = append(bufs, hdr[:])
		if virtual == 0 && len(payload) > 0 {
			bufs = append(bufs, payload)
		}
	}
	_, err := bufs.WriteTo(conn)
	bufs = (*vec)[:cap(*vec)]
	for i := range bufs {
		bufs[i] = nil
	}
	*vec = bufs[:0]
	return err
}

// reader decodes frames and matches them against posted receives.
func (q *queuePair) reader(conn net.Conn) {
	for {
		var hdr [headerLen]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			q.breakConn()
			return
		}
		var (
			kind    = hdr[0]
			virtual = hdr[1] == 1
			imm     = binary.BigEndian.Uint32(hdr[2:6])
			aux     = binary.BigEndian.Uint64(hdr[6:14])
			length  = int(binary.BigEndian.Uint32(hdr[14:18]))
		)
		if length < 0 || length > maxFrame {
			q.breakConn()
			return
		}

		switch kind {
		case frameWrite:
			if err := q.applyWrite(conn, aux, length, virtual); err != nil {
				q.breakConn()
				return
			}

		case frameData:
			q.mu.Lock()
			var wr recvWR
			matched := false
			if len(q.recvQ) > 0 {
				wr = q.recvQ[0]
				q.recvQ = q.recvQ[1:]
				matched = true
			}
			q.mu.Unlock()

			if matched {
				// Zero-copy fast path: the receive was already posted,
				// so the payload reads from the socket straight into
				// the posted buffer — no staging, no copy.
				a := arrival{imm: imm, length: length}
				if !virtual {
					if wr.buf.Data == nil || len(wr.buf.Data) < length {
						// No place to put real bytes: protocol breach.
						q.breakConn()
						return
					}
					if _, err := io.ReadFull(conn, wr.buf.Data[:length]); err != nil {
						q.breakConn()
						return
					}
					a.payload = wr.buf.Data[:length]
					q.p.directFrames.Add(1)
					q.p.obsDirect.Inc()
				}
				if err := q.completeRecv(wr, a); err != nil {
					q.breakConn()
					return
				}
				continue
			}

			// Receive not yet posted: stage the arrival in a pooled
			// buffer until one is (the slow path — one extra copy when
			// the receive lands).
			a := arrival{imm: imm, length: length}
			if !virtual {
				a.payload = q.p.pool.Get(length)
				a.pooled = true
				if _, err := io.ReadFull(conn, a.payload); err != nil {
					q.breakConn()
					return
				}
				q.p.stagedFrames.Add(1)
				q.p.stagedBytes.Add(uint64(length))
				q.p.obsStaged.Inc()
				q.p.obsStagedBytes.Add(uint64(length))
			}
			q.mu.Lock()
			q.arrivals = append(q.arrivals, a)
			q.mu.Unlock()

		default:
			q.breakConn()
			return
		}
	}
}

func (q *queuePair) applyWrite(conn net.Conn, aux uint64, length int, virtual bool) error {
	region := rdma.RegionID(aux >> 32)
	offset := int(uint32(aux))
	var payload []byte
	if !virtual {
		payload = q.p.pool.Get(length)
		if _, err := io.ReadFull(conn, payload); err != nil {
			q.p.pool.Put(payload)
			return err
		}
	}
	err := q.p.ApplyWrite(region, offset, length, payload)
	if payload != nil {
		q.p.pool.Put(payload)
	}
	return err
}

func (q *queuePair) completeRecv(wr recvWR, a arrival) error {
	if a.payload != nil && wr.buf.Data != nil && a.length > 0 {
		if len(wr.buf.Data) < a.length {
			return rdma.ErrBufferTooSmall
		}
		if &wr.buf.Data[0] != &a.payload[0] {
			copy(wr.buf.Data, a.payload)
		}
	}
	c := rdma.Completion{
		Op:     rdma.OpRecv,
		Status: rdma.StatusOK,
		Peer:   q.peer,
		Token:  q.token,
		WRID:   wr.wrID,
		Imm:    a.imm,
		Bytes:  a.length,
	}
	if a.payload != nil && wr.buf.Data != nil {
		c.Data = wr.buf.Data[:a.length]
	}
	if a.pooled {
		q.p.pool.Put(a.payload)
	}
	q.p.Complete(c)
	return nil
}

// breakConn fails the endpoint: outstanding work requests complete with
// StatusBroken and the connection closes.
func (q *queuePair) breakConn() {
	q.mu.Lock()
	if q.broken {
		q.mu.Unlock()
		return
	}
	q.broken = true
	conn := q.conn
	sends := q.sendQ[q.sendHead:]
	recvs := q.recvQ
	q.sendQ, q.recvQ, q.sendHead = nil, nil, 0
	q.cond.Broadcast()
	q.mu.Unlock()

	if conn != nil {
		_ = conn.Close()
	}
	for _, wr := range sends {
		op := rdma.OpSend
		if wr.write {
			op = rdma.OpWrite
		}
		q.p.Complete(rdma.Completion{
			Op: op, Status: rdma.StatusBroken, Peer: q.peer, Token: q.token, WRID: wr.wrID,
		})
	}
	for _, wr := range recvs {
		q.p.Complete(rdma.Completion{
			Op: rdma.OpRecv, Status: rdma.StatusBroken, Peer: q.peer, Token: q.token, WRID: wr.wrID,
		})
	}
}
