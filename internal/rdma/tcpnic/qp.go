package tcpnic

import (
	"encoding/binary"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"rdmc/internal/rdma"
)

// frame header layout: type(1) virtual(1) imm(4) aux(8) length(4).
// For data frames aux is unused; for write frames aux packs the region id
// (high 32 bits) and offset (low 32 bits). virtual=1 marks a metadata-only
// payload that is not carried on the wire.
const headerLen = 18

// The submission rings. Work requests land in fixed-capacity rings (the
// io_uring shape: power-of-two capacity, free-running head/tail indices
// masked on access) instead of growable queues: posting is a slot store,
// the writer selects a whole run of queued sends per pass, and a full ring
// exerts backpressure by blocking the poster — the transport-side analogue
// of a NIC send queue running out of WQEs.
const (
	sendRingCap = 256
	sendMask    = sendRingCap - 1
	recvRingCap = 256
	recvMask    = recvRingCap - 1
)

// sendWR references the caller's memory zero-copy: the payload is not
// staged, and the buffer remains owned by the provider until the send
// completion fires (see the ownership contract on rdma.QueuePair).
type sendWR struct {
	data   []byte // caller's payload; nil marks a virtual (metadata-only) frame
	length int
	imm    uint32
	wrID   uint64
	write  bool
	region rdma.RegionID
	offset int
}

type recvWR struct {
	buf  rdma.Buffer
	wrID uint64
}

type arrival struct {
	imm     uint32
	length  int
	payload []byte // nil for virtual frames
	pooled  bool   // payload came from the provider's buffer pool
}

// queuePair is one TCP-backed reliable connection endpoint.
type queuePair struct {
	p     *Provider
	peer  rdma.NodeID
	token uint64

	mu   sync.Mutex
	cond *sync.Cond
	conn net.Conn

	// Send submission ring. Slots in [sendHead, sendTail) are queued and
	// immutable: posters fill free slots at the tail, only the writer
	// advances the head (after its writev), so the writer may read a queued
	// run without the lock while the writev runs.
	sends    [sendRingCap]sendWR
	sendHead uint64
	sendTail uint64

	// Receive ring, same discipline; the reader is the only consumer. The
	// reader may additionally hold one receive out on lease for its
	// speculative readv (leased reserves the slot's worth of capacity so
	// the lease can always be returned to the front).
	recvs    [recvRingCap]recvWR
	recvHead uint64
	recvTail uint64
	leased   int

	arrivals []arrival
	broken   bool
}

var _ rdma.QueuePair = (*queuePair)(nil)

func newQueuePair(p *Provider, peer rdma.NodeID, token uint64) *queuePair {
	qp := &queuePair{p: p, peer: peer, token: token}
	qp.cond = sync.NewCond(&qp.mu)
	return qp
}

// Peer implements rdma.QueuePair.
func (q *queuePair) Peer() rdma.NodeID { return q.peer }

// Token implements rdma.QueuePair.
func (q *queuePair) Token() uint64 { return q.token }

// PostSend implements rdma.QueuePair. The payload is referenced, not
// copied: buf stays owned by the provider until the send completion.
func (q *queuePair) PostSend(buf rdma.Buffer, imm uint32, wrID uint64) error {
	return q.enqueue(sendWR{data: buf.Data, length: buf.Len, imm: imm, wrID: wrID})
}

// PostWrite implements rdma.QueuePair. Like PostSend it references the
// caller's memory zero-copy — no pooled staging copy, no shadow buffer —
// so data must stay untouched until the write completion fires.
func (q *queuePair) PostWrite(region rdma.RegionID, offset int, data []byte, wrID uint64) error {
	return q.enqueue(sendWR{
		write:  true,
		region: region,
		offset: offset,
		data:   data,
		length: len(data),
		wrID:   wrID,
	})
}

func (q *queuePair) enqueue(wr sendWR) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.sendTail-q.sendHead == sendRingCap && !q.broken {
		q.cond.Wait()
	}
	if q.broken {
		return rdma.ErrBroken
	}
	if err := q.p.CheckPost(); err != nil {
		return err
	}
	q.sends[q.sendTail&sendMask] = wr
	q.sendTail++
	q.cond.Broadcast()
	return nil
}

// PostRecv implements rdma.QueuePair.
func (q *queuePair) PostRecv(buf rdma.Buffer, wrID uint64) error {
	q.mu.Lock()
	if q.broken {
		q.mu.Unlock()
		return rdma.ErrBroken
	}
	if err := q.p.CheckPost(); err != nil {
		q.mu.Unlock()
		return err
	}
	for {
		if len(q.arrivals) > 0 {
			a := q.arrivals[0]
			q.arrivals = q.arrivals[1:]
			q.mu.Unlock()
			if err := q.completeRecv(recvWR{buf: buf, wrID: wrID}, a); err != nil {
				q.breakConn()
				return err
			}
			return nil
		}
		if int(q.recvTail-q.recvHead) < recvRingCap-q.leased {
			break
		}
		q.cond.Wait()
		if q.broken {
			q.mu.Unlock()
			return rdma.ErrBroken
		}
	}
	q.recvs[q.recvTail&recvMask] = recvWR{buf: buf, wrID: wrID}
	q.recvTail++
	q.mu.Unlock()
	return nil
}

// Close implements rdma.QueuePair.
func (q *queuePair) Close() error {
	q.breakConn()
	return nil
}

// dial establishes the connection from the higher-id side, retrying briefly
// to ride out listener startup races.
func (q *queuePair) dial(addr string) {
	var (
		conn net.Conn
		err  error
	)
	for attempt := 0; attempt < 5; attempt++ {
		q.mu.Lock()
		dead := q.broken
		q.mu.Unlock()
		if dead {
			return
		}
		conn, err = net.DialTimeout("tcp", addr, 2*time.Second)
		if err == nil {
			break
		}
		time.Sleep(time.Duration(attempt+1) * 20 * time.Millisecond)
	}
	if err != nil {
		q.breakConn()
		return
	}
	q.p.tuneConn(conn)
	var hs [12]byte
	binary.BigEndian.PutUint32(hs[0:4], uint32(q.p.NodeID()))
	binary.BigEndian.PutUint64(hs[4:12], q.token)
	if _, err := conn.Write(hs[:]); err != nil {
		_ = conn.Close()
		q.breakConn()
		return
	}
	q.attach(conn)
}

// attach binds the live connection and starts the reader and writer loops.
// The connection was tuned (TCP_NODELAY, socket buffers) on its dial or
// accept path before the handshake.
func (q *queuePair) attach(conn net.Conn) {
	q.mu.Lock()
	if q.broken || q.conn != nil {
		q.mu.Unlock()
		_ = conn.Close()
		return
	}
	q.conn = conn
	q.cond.Broadcast()
	q.mu.Unlock()

	q.p.wg.Add(2)
	go func() {
		defer q.p.wg.Done()
		q.writer(conn)
	}()
	go func() {
		defer q.p.wg.Done()
		q.reader(conn)
	}()
}

// maxCoalesceBytes bounds the payload one vectored write carries. The frame
// count is ring-sized — the writer folds everything queued into one writev —
// but the byte cap keeps large blocks going out one or two at a time:
// measured on loopback, writev bursts past a few hundred KB stall in the
// kernel's socket-buffer accounting and cost more than the saved syscalls.
const maxCoalesceBytes = 256 << 10

// writer drains the send ring in FIFO order, coalescing a whole queued run
// (bounded in bytes, up to the full ring in frames) into a single vectored
// write: headers and payloads interleave in one writev, so a full send
// window of blocks costs one syscall instead of one per block. The run's
// completions retire through one batched CQ operation. Header and vector
// storage is reused across batches, so steady-state writing allocates
// nothing.
func (q *queuePair) writer(conn net.Conn) {
	defer q.clearSends()
	var (
		hdrs  = make([][headerLen]byte, sendRingCap)
		vec   = &writerVec{base: make(net.Buffers, 0, 2*sendRingCap)}
		comps = make([]rdma.Completion, 0, sendRingCap)
	)
	for {
		q.mu.Lock()
		for q.sendHead == q.sendTail && !q.broken {
			q.cond.Wait()
		}
		if q.broken {
			q.mu.Unlock()
			return
		}
		head := q.sendHead
		avail := int(q.sendTail - head)
		n, bytes := 1, q.sends[head&sendMask].length
		for n < avail {
			next := q.sends[(head+uint64(n))&sendMask].length
			if bytes+next > maxCoalesceBytes {
				break
			}
			bytes += next
			n++
		}
		q.mu.Unlock()

		q.p.obsCoalesce.Observe(int64(n))
		zc, err := q.writeFrames(conn, head, n, hdrs, vec)
		if err != nil {
			q.breakConn()
			return
		}
		q.p.zeroCopySends.Add(zc)
		q.p.obsZeroCopy.Add(zc)

		q.mu.Lock()
		if q.broken {
			// breakConn already completed these entries with StatusBroken.
			q.mu.Unlock()
			return
		}
		comps = comps[:0]
		for i := 0; i < n; i++ {
			wr := &q.sends[(head+uint64(i))&sendMask]
			op := rdma.OpSend
			if wr.write {
				op = rdma.OpWrite
			}
			comps = append(comps, rdma.Completion{
				Op:     op,
				Status: rdma.StatusOK,
				Peer:   q.peer,
				Token:  q.token,
				WRID:   wr.wrID,
				Bytes:  wr.length,
			})
			*wr = sendWR{}
		}
		q.sendHead = head + uint64(n)
		q.cond.Broadcast()
		q.mu.Unlock()

		q.p.CompleteBatch(comps)
	}
}

// clearSends drops the payload references still queued when the writer
// exits, so a broken queue pair does not pin its callers' buffers until the
// provider itself is released. The writer is the only unlocked reader of
// ring slots, so clearing under the lock after it stops is safe.
func (q *queuePair) clearSends() {
	q.mu.Lock()
	for i := q.sendHead; i != q.sendTail; i++ {
		q.sends[i&sendMask] = sendWR{}
	}
	q.mu.Unlock()
}

// writerVec owns the writer's scatter list across wakeups. WriteTo has a
// pointer receiver (it consumes the vector in place as segments drain), so
// calling it on a stack-local net.Buffers makes the slice header escape —
// one heap allocation per writev. Keeping the consumable view as a field of
// this heap-resident struct, with base retaining the backing array for
// rebuilds and clearing, pins the steady-state writer at zero allocations.
type writerVec struct {
	base net.Buffers // full backing array, reused per wakeup
	view net.Buffers // the consumable slice WriteTo advances
}

// writeFrames emits ring entries [head, head+n) in one vectored write and
// returns how many frames carried a zero-copy payload reference. Entries
// stay queued in the ring while the writev runs — slots in
// [sendHead, sendTail) are immutable once posted and the head only advances
// after this call returns — so breakConn can still fail them exactly once.
// net.Buffers consumes the vector in place as segments drain, so the vector
// is rebuilt (and its entries cleared for the garbage collector) per call.
func (q *queuePair) writeFrames(conn net.Conn, head uint64, n int, hdrs [][headerLen]byte, vec *writerVec) (uint64, error) {
	bufs := vec.base[:0]
	var zc uint64
	for i := 0; i < n; i++ {
		wr := &q.sends[(head+uint64(i))&sendMask]
		hdr := &hdrs[i]
		kind := byte(frameData)
		if wr.write {
			kind = frameWrite
			binary.BigEndian.PutUint64(hdr[6:14], uint64(wr.region)<<32|uint64(uint32(wr.offset)))
		} else {
			binary.BigEndian.PutUint64(hdr[6:14], 0)
		}
		virtual := byte(0)
		if wr.data == nil {
			virtual = 1
		}
		hdr[0] = kind
		hdr[1] = virtual
		binary.BigEndian.PutUint32(hdr[2:6], wr.imm)
		binary.BigEndian.PutUint32(hdr[14:18], uint32(wr.length))
		bufs = append(bufs, hdr[:])
		if virtual == 0 && wr.length > 0 {
			bufs = append(bufs, wr.data[:wr.length])
			zc++
		}
	}
	vec.view = bufs
	_, err := vec.view.WriteTo(conn)
	vec.view = nil
	bufs = vec.base[:cap(vec.base)]
	for i := range bufs {
		bufs[i] = nil
	}
	vec.base = bufs[:0]
	return zc, err
}

// specMax bounds how many posted receives one speculative readv spans.
const specMax = 8

// frameReader decodes the inbound frame stream. Its distinguishing move is
// the speculative vectored read: when posted receives with real memory are
// waiting, the reader leases up to specMax of them and issues one readv
// whose scatter list interleaves frame headers and the receives' buffers —
// so a run of matched, buffer-filling data frames (the shape a pipelined
// send window produces) costs one syscall for the whole run instead of two
// per frame. The speculation bets that each frame is a data frame whose
// payload exactly fills its posted buffer; the bet is settled frame by
// frame, and at the first miss (a write frame, a virtual frame, a short
// payload) the bytes that landed past the consumed prefix spill into a
// pooled buffer that is consumed before the socket, and unconsumed leases
// return to the front of the ring. A leased buffer may have been scribbled
// by a mispredicted readv, which the ownership contract permits (contents
// are unspecified until the completion fires).
type frameReader struct {
	q    *queuePair
	conn net.Conn
	vr   *vectorReader
	hdr  [headerLen]byte

	// Speculation scratch, reused across readv calls.
	hdrs   [specMax][headerLen]byte
	segs   [2 * specMax][]byte
	leases [specMax]recvWR

	spill    []byte // pooled over-read bytes, consumed before the socket
	spillOff int
}

// reader decodes frames and matches them against posted receives.
func (q *queuePair) reader(conn net.Conn) {
	fr := frameReader{q: q, conn: conn, vr: newVectorReader(conn)}
	for fr.frame() {
	}
	if fr.spill != nil {
		q.p.pool.Put(fr.spill)
		fr.spill = nil
	}
}

// readFull fills p from the spill buffer first, then the socket.
func (fr *frameReader) readFull(p []byte) error {
	if fr.spill != nil {
		n := copy(p, fr.spill[fr.spillOff:])
		fr.spillOff += n
		if fr.spillOff == len(fr.spill) {
			fr.q.p.pool.Put(fr.spill)
			fr.spill, fr.spillOff = nil, 0
		}
		p = p[n:]
		if len(p) == 0 {
			return nil
		}
	}
	_, err := io.ReadFull(fr.conn, p)
	return err
}

// stashLayout parks un-consumed scatter-read bytes in the spill buffer: an
// optional replayed prefix (a decoded header the plain path must see again)
// followed by every byte the readv landed in [from, n) of the segment
// layout (header/buffer pairs, in lease order). Must run before any buffer
// the range covers is handed back through a completion. Only called when
// the spill is empty (speculation is gated on that).
func (fr *frameReader) stashLayout(prefix []byte, leases []recvWR, from, n int) {
	total := len(prefix)
	if n > from {
		total += n - from
	}
	if total == 0 {
		return
	}
	spill := fr.q.p.pool.Get(total)
	off := copy(spill, prefix)
	pos := 0
	for j := 0; j < len(leases) && pos < n; j++ {
		for _, seg := range [2][]byte{fr.hdrs[j][:], leases[j].buf.Data} {
			end := pos + len(seg)
			lo, hi := max(from, pos), min(n, end)
			if hi > lo {
				off += copy(spill[off:], seg[lo-pos:hi-pos])
			}
			pos = end
		}
	}
	fr.spill = spill[:off]
	fr.spillOff = 0
}

// frame processes one step of the inbound stream; false stops the reader
// loop. Leases taken for the speculative read are resolved on every path:
// completed on a match, returned to the ring on a mispredict, failed by the
// reader itself when the connection breaks (leases are invisible to
// breakConn).
func (fr *frameReader) frame() bool {
	if fr.vr != nil && fr.spill == nil {
		if nl := fr.q.leaseRecvs(&fr.leases); nl > 0 {
			return fr.specFrames(nl)
		}
		// An empty ring at this instant is usually a cadence artifact: the
		// engine reposts receives within a scheduler tick of consuming the
		// completions the previous scatter read produced. One yield before
		// falling back to plain (two-syscall) decoding keeps the fast path
		// hot without busy-waiting.
		runtime.Gosched()
		if nl := fr.q.leaseRecvs(&fr.leases); nl > 0 {
			return fr.specFrames(nl)
		}
	}
	return fr.plainFrame()
}

// specFrames settles one speculative scatter read covering nl leased
// receives. The readv's byte count can stop anywhere in the
// header/buffer/header/... layout; the walk completes the clean prefix of
// matched, buffer-filling data frames zero-copy, tops up a frame the read
// went dry inside straight from the wire (a dry read guarantees no bytes
// landed past it), and at the first misalignment — a write frame, a virtual
// frame, a payload shorter than its buffer — parks the displaced bytes in
// the spill and returns the unconsumed leases to the ring front.
func (fr *frameReader) specFrames(nl int) bool {
	q := fr.q
	leases := fr.leases[:nl]
	segs := fr.segs[:0]
	for j := 0; j < nl; j++ {
		segs = append(segs, fr.hdrs[j][:], leases[j].buf.Data)
	}
	n, err := fr.vr.readv(segs)
	if err != nil {
		q.breakConn()
		q.failLeases(leases)
		return false
	}

	pos := 0 // layout offset where frame j's header begins
	for j := range leases {
		if j > 0 && pos >= n {
			// The scatter read is exhausted at a frame boundary: return the
			// untouched leases and re-speculate with a fresh readv rather
			// than decoding them through blocking plain reads.
			q.unleaseRecvs(leases[j:])
			return true
		}
		buf := leases[j].buf.Data
		if h := min(max(n-pos, 0), headerLen); h < headerLen {
			// The scatter read ran dry inside this header, so nothing
			// landed past it; finish the header over the wire.
			if _, err := io.ReadFull(fr.conn, fr.hdrs[j][h:]); err != nil {
				q.breakConn()
				q.failLeases(leases[j:])
				return false
			}
		}
		hdr := &fr.hdrs[j]
		var (
			kind    = hdr[0]
			virtual = hdr[1] == 1
			imm     = binary.BigEndian.Uint32(hdr[2:6])
			length  = int(binary.BigEndian.Uint32(hdr[14:18]))
		)
		if length < 0 || length > maxFrame || (kind != frameData && kind != frameWrite) {
			q.breakConn()
			q.failLeases(leases[j:])
			return false
		}
		if kind == frameWrite {
			// Mispredict: not a receive match. Replay the decoded header
			// through the spill together with whatever landed past it, give
			// the unconsumed leases back, and let the plain path take the
			// frame from the spill.
			fr.stashLayout(hdr[:], leases, pos+headerLen, n)
			q.unleaseRecvs(leases[j:])
			return true
		}
		if virtual {
			// Virtual data frame: it matches this lease (the oldest
			// posted) but carries no wire payload, so every byte past its
			// header is misaligned from here on.
			fr.stashLayout(nil, leases, pos+headerLen, n)
			rest := leases[j+1:]
			q.settleLease()
			if err := q.completeRecv(leases[j], arrival{imm: imm, length: length}); err != nil {
				q.breakConn()
				q.unleaseRecvs(rest)
				return false
			}
			q.unleaseRecvs(rest)
			return true
		}
		if length > len(buf) {
			// No room for the payload: protocol breach, like the unleased
			// too-small path.
			q.breakConn()
			q.failLeases(leases[j:])
			return false
		}
		pstart := pos + headerLen
		p := min(max(n-pstart, 0), len(buf))
		if p < length {
			// Dry mid-payload ⇒ no bytes landed beyond this frame either;
			// finish the payload over the wire.
			if _, err := io.ReadFull(fr.conn, buf[p:length]); err != nil {
				q.breakConn()
				q.failLeases(leases[j:])
				return false
			}
		}
		if length < len(buf) {
			// Short payload: bytes past it landed at the wrong offsets.
			// Park them (before the completion hands the buffer back) and
			// stop speculating on this run.
			fr.stashLayout(nil, leases, pstart+length, n)
		}
		q.p.directFrames.Add(1)
		q.p.obsDirect.Inc()
		rest := leases[j+1:]
		q.settleLease()
		if err := q.completeRecv(leases[j], arrival{imm: imm, length: length, payload: buf[:length]}); err != nil {
			q.breakConn()
			q.unleaseRecvs(rest)
			return false
		}
		if length < len(buf) {
			q.unleaseRecvs(rest)
			return true
		}
		pos = pstart + len(buf)
	}
	return true
}

// plainFrame handles one frame without speculation: header first, then the
// payload routed by kind — the path taken when no real-memory receive is
// posted or spilled bytes must drain first. A matched data frame still
// lands its payload straight in the posted buffer; only an unposted
// arrival pays a staging copy.
func (fr *frameReader) plainFrame() bool {
	q := fr.q
	if err := fr.readFull(fr.hdr[:]); err != nil {
		q.breakConn()
		return false
	}
	var (
		kind    = fr.hdr[0]
		virtual = fr.hdr[1] == 1
		imm     = binary.BigEndian.Uint32(fr.hdr[2:6])
		aux     = binary.BigEndian.Uint64(fr.hdr[6:14])
		length  = int(binary.BigEndian.Uint32(fr.hdr[14:18]))
	)
	if length < 0 || length > maxFrame || (kind != frameData && kind != frameWrite) {
		q.breakConn()
		return false
	}

	switch kind {
	case frameWrite:
		if err := fr.applyWrite(aux, length, virtual); err != nil {
			q.breakConn()
			return false
		}

	case frameData:
		q.mu.Lock()
		var wr recvWR
		matched := false
		if q.recvHead != q.recvTail {
			wr = q.recvs[q.recvHead&recvMask]
			q.recvs[q.recvHead&recvMask] = recvWR{}
			q.recvHead++
			matched = true
			q.cond.Broadcast()
		}
		q.mu.Unlock()

		if matched {
			// Fast path without the readv (virtual receives, spill in
			// play): the payload still reads straight into the posted
			// buffer — no staging, no copy.
			a := arrival{imm: imm, length: length}
			if !virtual {
				if wr.buf.Data == nil || len(wr.buf.Data) < length {
					// No place to put real bytes: protocol breach.
					q.breakConn()
					return false
				}
				if err := fr.readFull(wr.buf.Data[:length]); err != nil {
					q.breakConn()
					return false
				}
				a.payload = wr.buf.Data[:length]
				q.p.directFrames.Add(1)
				q.p.obsDirect.Inc()
			}
			if err := q.completeRecv(wr, a); err != nil {
				q.breakConn()
				return false
			}
			return true
		}

		// Receive not yet posted: stage the arrival in a pooled buffer
		// until one is (the slow path — one extra copy when the receive
		// lands).
		a := arrival{imm: imm, length: length}
		if !virtual {
			a.payload = q.p.pool.Get(length)
			a.pooled = true
			if err := fr.readFull(a.payload); err != nil {
				q.breakConn()
				return false
			}
			q.p.stagedFrames.Add(1)
			q.p.stagedBytes.Add(uint64(length))
			q.p.obsStaged.Inc()
			q.p.obsStagedBytes.Add(uint64(length))
		}
		q.mu.Lock()
		q.arrivals = append(q.arrivals, a)
		q.mu.Unlock()
	}
	return true
}

// leaseRecvs pops up to specMax of the oldest posted receives for the
// reader's exclusive use — only the front run with real memory is worth a
// speculative readv. While out on lease the receives are invisible to
// breakConn: the reader owns each one's completion (or its return to the
// ring) on every path. leased reserves the run's worth of ring capacity so
// the leases can always be returned to the front.
func (q *queuePair) leaseRecvs(dst *[specMax]recvWR) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.broken {
		return 0
	}
	n := 0
	for n < specMax && q.recvHead != q.recvTail {
		wr := q.recvs[q.recvHead&recvMask]
		if len(wr.buf.Data) == 0 {
			break
		}
		dst[n] = wr
		q.recvs[q.recvHead&recvMask] = recvWR{}
		q.recvHead++
		n++
	}
	q.leased = n
	if n > 0 {
		q.cond.Broadcast()
	}
	return n
}

// unleaseRecvs returns mispredicted leases to the front of the ring in
// their original order. If the queue pair broke while they were out, the
// reader still owns their broken completions.
func (q *queuePair) unleaseRecvs(ls []recvWR) {
	if len(ls) == 0 {
		return
	}
	q.mu.Lock()
	q.leased -= len(ls)
	if q.broken {
		q.mu.Unlock()
		for _, wr := range ls {
			q.p.Complete(rdma.Completion{
				Op: rdma.OpRecv, Status: rdma.StatusBroken, Peer: q.peer, Token: q.token, WRID: wr.wrID,
			})
		}
		return
	}
	for i := len(ls) - 1; i >= 0; i-- {
		q.recvHead--
		q.recvs[q.recvHead&recvMask] = ls[i]
	}
	q.mu.Unlock()
}

// settleLease releases one lease's capacity reservation once the reader has
// decided to complete it.
func (q *queuePair) settleLease() {
	q.mu.Lock()
	q.leased--
	q.cond.Broadcast()
	q.mu.Unlock()
}

// failLeases completes leased receives with StatusBroken on the reader's
// error paths — breakConn cannot see a lease, so the reader must.
func (q *queuePair) failLeases(ls []recvWR) {
	q.mu.Lock()
	q.leased -= len(ls)
	q.mu.Unlock()
	for _, wr := range ls {
		q.p.Complete(rdma.Completion{
			Op: rdma.OpRecv, Status: rdma.StatusBroken, Peer: q.peer, Token: q.token, WRID: wr.wrID,
		})
	}
}

func (fr *frameReader) applyWrite(aux uint64, length int, virtual bool) error {
	q := fr.q
	region := rdma.RegionID(aux >> 32)
	offset := int(uint32(aux))
	var payload []byte
	if !virtual {
		payload = q.p.pool.Get(length)
		if err := fr.readFull(payload); err != nil {
			q.p.pool.Put(payload)
			return err
		}
	}
	err := q.p.ApplyWrite(region, offset, length, payload)
	if payload != nil {
		q.p.pool.Put(payload)
	}
	return err
}

func (q *queuePair) completeRecv(wr recvWR, a arrival) error {
	if a.payload != nil && wr.buf.Data != nil && a.length > 0 {
		if len(wr.buf.Data) < a.length {
			return rdma.ErrBufferTooSmall
		}
		if &wr.buf.Data[0] != &a.payload[0] {
			copy(wr.buf.Data, a.payload)
		}
	}
	c := rdma.Completion{
		Op:     rdma.OpRecv,
		Status: rdma.StatusOK,
		Peer:   q.peer,
		Token:  q.token,
		WRID:   wr.wrID,
		Imm:    a.imm,
		Bytes:  a.length,
	}
	if a.payload != nil && wr.buf.Data != nil {
		c.Data = wr.buf.Data[:a.length]
	}
	if a.pooled {
		q.p.pool.Put(a.payload)
	}
	q.p.Complete(c)
	return nil
}

// breakConn fails the endpoint: outstanding work requests complete with
// StatusBroken (in one batched CQ operation) and the connection closes. A
// receive out on lease to the reader is not completed here — the reader
// owns it (see leaseRecv).
func (q *queuePair) breakConn() {
	q.mu.Lock()
	if q.broken {
		q.mu.Unlock()
		return
	}
	q.broken = true
	conn := q.conn
	var broken []rdma.Completion
	for i := q.sendHead; i != q.sendTail; i++ {
		wr := &q.sends[i&sendMask]
		op := rdma.OpSend
		if wr.write {
			op = rdma.OpWrite
		}
		broken = append(broken, rdma.Completion{
			Op: op, Status: rdma.StatusBroken, Peer: q.peer, Token: q.token, WRID: wr.wrID,
		})
	}
	for i := q.recvHead; i != q.recvTail; i++ {
		wr := &q.recvs[i&recvMask]
		broken = append(broken, rdma.Completion{
			Op: rdma.OpRecv, Status: rdma.StatusBroken, Peer: q.peer, Token: q.token, WRID: wr.wrID,
		})
		q.recvs[i&recvMask] = recvWR{}
	}
	q.recvHead = q.recvTail
	if conn == nil {
		// No connection ⇒ no writer was ever started (attach refuses once
		// broken), so nothing reads the send ring without the lock.
		for i := q.sendHead; i != q.sendTail; i++ {
			q.sends[i&sendMask] = sendWR{}
		}
	}
	// Otherwise the send ring is left for the writer to clear: it may be
	// reading the queued run without the lock mid-writev.
	leased := q.leased
	q.cond.Broadcast()
	q.mu.Unlock()

	if conn != nil {
		_ = conn.Close()
	}
	if len(broken) == 0 && leased == 0 {
		// An idle endpoint breaking flushes no work, but the layer above
		// still has to learn the peer is gone: a peer that closes between
		// transfers would otherwise vanish silently, and a group gated on
		// its readiness credit would wait forever (nothing is ever posted to
		// the broken pair, so no ErrBroken surfaces either). Real NICs raise
		// an async event when a queue pair enters the error state; the
		// synthetic completion below is that event, carrying the endpoint
		// identity and no work request.
		broken = append(broken, rdma.Completion{
			Op: rdma.OpRecv, Status: rdma.StatusBroken, Peer: q.peer, Token: q.token, WRID: ^uint64(0),
		})
	}
	q.p.CompleteBatch(broken)
}
