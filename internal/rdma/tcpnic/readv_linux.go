//go:build linux

package tcpnic

import (
	"io"
	"net"
	"syscall"
	"unsafe"
)

// vectorReader issues one readv(2) spanning interleaved frame headers and
// payload buffers, collapsing the data-plane read syscalls: the classic
// two-read frame decode (header, then payload) becomes a single scatter
// read covering up to specMax predicted frames whenever the reader can
// guess where the payloads belong. It integrates with the runtime poller
// through syscall.RawConn, so a not-ready socket parks the goroutine
// instead of spinning, and a concurrent Close unblocks it like any
// net.Conn read.
//
// The iovec array and the fd callback live on the struct and are built
// once, keeping the per-read path allocation-free.
type vectorReader struct {
	rc  syscall.RawConn
	iov [2 * specMax]syscall.Iovec
	cnt int
	n   int
	err error
	fn  func(fd uintptr) bool
}

// newVectorReader returns nil when the connection cannot expose its fd
// (in-memory pipes in tests); the reader then falls back to plain reads.
func newVectorReader(conn net.Conn) *vectorReader {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return nil
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return nil
	}
	v := &vectorReader{rc: rc}
	v.fn = func(fd uintptr) bool {
		for {
			n, _, errno := syscall.Syscall(syscall.SYS_READV, fd, uintptr(unsafe.Pointer(&v.iov[0])), uintptr(v.cnt))
			switch errno {
			case 0:
				if n == 0 {
					v.err = io.EOF
				}
				v.n = int(n)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // not ready: re-arm the poller and park
			default:
				v.err = errno
				return true
			}
		}
	}
	return v
}

// readv scatters one read across segs in order, returning how many bytes
// landed in total (possibly short — the kernel returns what is buffered, and
// the count can stop anywhere in the layout). Every segment must be
// non-empty and the list is bounded by the iovec array (2*specMax entries).
func (v *vectorReader) readv(segs [][]byte) (int, error) {
	for i, s := range segs {
		v.iov[i].Base = &s[0]
		v.iov[i].SetLen(len(s))
	}
	v.cnt = len(segs)
	v.n, v.err = 0, nil
	err := v.rc.Read(v.fn)
	for i := range segs {
		v.iov[i] = syscall.Iovec{}
	}
	if err != nil {
		return 0, err
	}
	return v.n, v.err
}
