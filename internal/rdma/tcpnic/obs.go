package tcpnic

import "rdmc/internal/obs"

// SetObserver installs (or, with nil, removes) the provider's
// instrumentation: the shared NIC instruments (see nicbase.Base.SetObserver)
// plus the TCP transport's own receive-path and writer-coalescing meters:
//
//	tcpnic.direct_frames    data frames landed directly in a posted receive
//	tcpnic.staged_frames    data frames staged through a pooled buffer
//	tcpnic.staged_bytes     bytes that took the staged (extra-copy) path
//	tcpnic.zero_copy_sends  frames emitted referencing caller memory directly
//	tcpnic.writer_coalesce  frames folded into one vectored write
//
// Must be installed before provider activity; every instrument is nil-safe,
// so an unobserved provider pays only nil tests.
func (p *Provider) SetObserver(o *obs.Obs) {
	if o == nil {
		p.Base.SetObserver(nil)
		p.obsDirect, p.obsStaged, p.obsStagedBytes, p.obsZeroCopy, p.obsCoalesce = nil, nil, nil, nil, nil
		return
	}
	p.Base.SetObserver(o)
	r := o.Registry()
	p.obsDirect = r.Counter("tcpnic.direct_frames")
	p.obsStaged = r.Counter("tcpnic.staged_frames")
	p.obsStagedBytes = r.Counter("tcpnic.staged_bytes")
	p.obsZeroCopy = r.Counter("tcpnic.zero_copy_sends")
	p.obsCoalesce = r.Histogram("tcpnic.writer_coalesce", obs.Pow2Buckets(9))
}
