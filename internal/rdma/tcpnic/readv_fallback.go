//go:build !linux

package tcpnic

import "net"

// vectorReader is unavailable off Linux: newVectorReader returns nil and
// the frame reader sticks to plain header/payload reads.
type vectorReader struct{}

func newVectorReader(net.Conn) *vectorReader { return nil }

func (v *vectorReader) readv([][]byte) (int, error) { return 0, nil }
