package tcpnic

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"rdmc/internal/rdma"
)

// completionSink collects completions thread-safely.
type completionSink struct {
	mu   sync.Mutex
	got  []rdma.Completion
	cond *sync.Cond
}

func newSink() *completionSink {
	s := &completionSink{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *completionSink) handle(c rdma.Completion) {
	s.mu.Lock()
	s.got = append(s.got, c)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// waitN blocks until n completions arrived or the timeout passed.
func (s *completionSink) waitN(t *testing.T, n int) []rdma.Completion {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	timer := time.AfterFunc(10*time.Second, func() { s.cond.Broadcast() })
	defer timer.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.got) < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d of %d completions", len(s.got), n)
		}
		s.cond.Wait()
	}
	return append([]rdma.Completion(nil), s.got...)
}

// newPair stands up two providers on loopback and returns them with sinks.
func newPair(t *testing.T) (a, b *Provider, sa, sb *completionSink) {
	t.Helper()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := map[rdma.NodeID]string{0: lnA.Addr().String(), 1: lnB.Addr().String()}
	a, err = New(Config{NodeID: 0, Listener: lnA, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	b, err = New(Config{NodeID: 1, Listener: lnB, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	sa, sb = newSink(), newSink()
	a.SetHandler(sa.handle)
	b.SetHandler(sb.handle)
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})
	return a, b, sa, sb
}

func TestSendRecvRoundTrip(t *testing.T) {
	a, b, sa, sb := newPair(t)
	qa, err := a.Connect(1, 42)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := b.Connect(0, 42)
	if err != nil {
		t.Fatal(err)
	}

	recvBuf := make([]byte, 64)
	if err := qb.PostRecv(rdma.MakeBuffer(recvBuf), 7); err != nil {
		t.Fatal(err)
	}
	payload := []byte("over real sockets")
	if err := qa.PostSend(rdma.MakeBuffer(payload), 0xbeef, 9); err != nil {
		t.Fatal(err)
	}

	sends := sa.waitN(t, 1)
	if sends[0].Op != rdma.OpSend || sends[0].WRID != 9 || sends[0].Status != rdma.StatusOK {
		t.Errorf("send completion = %+v", sends[0])
	}
	recvs := sb.waitN(t, 1)
	r := recvs[0]
	if r.Op != rdma.OpRecv || r.Imm != 0xbeef || r.WRID != 7 || r.Peer != 0 || r.Token != 42 {
		t.Errorf("recv completion = %+v", r)
	}
	if !bytes.Equal(r.Data, payload) {
		t.Errorf("data = %q, want %q", r.Data, payload)
	}
}

func TestVirtualSendCarriesNoBytes(t *testing.T) {
	a, b, _, sb := newPair(t)
	qa, _ := a.Connect(1, 1)
	qb, _ := b.Connect(0, 1)
	if err := qb.PostRecv(rdma.SizeBuffer(1<<20), 1); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.SizeBuffer(1<<20), 5, 2); err != nil {
		t.Fatal(err)
	}
	recvs := sb.waitN(t, 1)
	if recvs[0].Bytes != 1<<20 || recvs[0].Data != nil {
		t.Errorf("virtual recv = %+v", recvs[0])
	}
}

func TestFIFOAcrossManyMessages(t *testing.T) {
	a, b, _, sb := newPair(t)
	qa, _ := a.Connect(1, 1)
	qb, _ := b.Connect(0, 1)
	const n = 200
	for i := 0; i < n; i++ {
		if err := qb.PostRecv(rdma.SizeBuffer(64), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := qa.PostSend(rdma.SizeBuffer(64), uint32(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	recvs := sb.waitN(t, n)
	for i, c := range recvs {
		if c.WRID != uint64(i) || c.Imm != uint32(i) {
			t.Fatalf("completion %d out of order: %+v", i, c)
		}
	}
}

func TestEarlyArrivalBuffersUntilRecvPosted(t *testing.T) {
	a, b, _, sb := newPair(t)
	qa, _ := a.Connect(1, 1)
	qb, _ := b.Connect(0, 1)
	payload := []byte("early bird")
	if err := qa.PostSend(rdma.MakeBuffer(payload), 1, 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the frame land unmatched
	buf := make([]byte, 32)
	if err := qb.PostRecv(rdma.MakeBuffer(buf), 2); err != nil {
		t.Fatal(err)
	}
	recvs := sb.waitN(t, 1)
	if !bytes.Equal(recvs[0].Data, payload) {
		t.Errorf("buffered arrival corrupted: %q", recvs[0].Data)
	}
}

func TestOneSidedWriteOverTCP(t *testing.T) {
	a, b, sa, _ := newPair(t)
	region := make([]byte, 64)
	if err := b.RegisterRegion(3, region); err != nil {
		t.Fatal(err)
	}
	watched := make(chan [2]int, 1)
	if err := b.WatchRegion(3, func(off, n int) { watched <- [2]int{off, n} }); err != nil {
		t.Fatal(err)
	}
	qa, _ := a.Connect(1, 1)
	if _, err := b.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostWrite(3, 16, []byte("poke"), 11); err != nil {
		t.Fatal(err)
	}
	writes := sa.waitN(t, 1)
	if writes[0].Op != rdma.OpWrite || writes[0].WRID != 11 {
		t.Errorf("write completion = %+v", writes[0])
	}
	select {
	case w := <-watched:
		if w != [2]int{16, 4} {
			t.Errorf("watch = %v, want {16,4}", w)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never fired")
	}
	if string(region[16:20]) != "poke" {
		t.Errorf("region = %q", region[:24])
	}
}

func TestPeerCloseBreaksOutstandingWork(t *testing.T) {
	a, b, _, sb := newPair(t)
	qa, _ := a.Connect(1, 1)
	qb, _ := b.Connect(0, 1)
	// Force connection establishment with one round trip.
	if err := qb.PostRecv(rdma.SizeBuffer(8), 1); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.SizeBuffer(8), 0, 1); err != nil {
		t.Fatal(err)
	}
	sb.waitN(t, 1)
	if err := qb.PostRecv(rdma.SizeBuffer(8), 2); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	recvs := sb.waitN(t, 2)
	if recvs[1].Status != rdma.StatusBroken {
		t.Errorf("pending recv after peer close: %+v", recvs[1])
	}
	if err := qb.PostSend(rdma.SizeBuffer(1), 0, 3); err != rdma.ErrBroken {
		t.Errorf("post on broken qp: err = %v, want ErrBroken", err)
	}
}

func TestPostWithoutHandler(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{NodeID: 0, Listener: ln, Addrs: map[rdma.NodeID]string{0: ln.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	qp, err := p.Connect(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := qp.PostSend(rdma.SizeBuffer(1), 0, 1); err != rdma.ErrNoHandler {
		t.Errorf("err = %v, want ErrNoHandler", err)
	}
}

func TestConnectIsIdempotentPerToken(t *testing.T) {
	a, _, _, _ := newPair(t)
	q1, err := a.Connect(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := a.Connect(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Error("same (peer, token) returned distinct queue pairs")
	}
}

func TestNewRequiresListener(t *testing.T) {
	if _, err := New(Config{NodeID: 0}); err == nil {
		t.Error("New without listener succeeded")
	}
}

func TestLargeTransferIntegrity(t *testing.T) {
	a, b, _, sb := newPair(t)
	qa, _ := a.Connect(1, 1)
	qb, _ := b.Connect(0, 1)
	payload := make([]byte, 4<<20)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	buf := make([]byte, len(payload))
	if err := qb.PostRecv(rdma.MakeBuffer(buf), 1); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.MakeBuffer(payload), 0, 1); err != nil {
		t.Fatal(err)
	}
	recvs := sb.waitN(t, 1)
	if !bytes.Equal(recvs[0].Data, payload) {
		t.Error("4 MB transfer corrupted")
	}
}

// TestRecvPathCounters proves the receive fast path stays copy-free: frames
// whose receive is posted before they arrive must land directly in the
// posted buffer (direct), while only true early arrivals stage through a
// pooled buffer and pay a copy (staged).
func TestRecvPathCounters(t *testing.T) {
	a, b, sa, sb := newPair(t)
	qa, _ := a.Connect(1, 5)
	qb, _ := b.Connect(0, 5)

	// Phase 1: receives posted ahead of every send — all direct.
	const pre = 8
	payload := bytes.Repeat([]byte{0xab}, 4096)
	for i := 0; i < pre; i++ {
		if err := qb.PostRecv(rdma.MakeBuffer(make([]byte, len(payload))), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The posted-recv count is racy against the reader goroutine only when
	// sends overlap posting; posting first then sending serializes it.
	for i := 0; i < pre; i++ {
		if err := qa.PostSend(rdma.MakeBuffer(payload), 0, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	sb.waitN(t, pre)
	stats := b.RecvStats()
	if stats.DirectFrames != pre || stats.StagedFrames != 0 {
		t.Fatalf("pre-posted phase: stats = %+v, want %d direct and 0 staged", stats, pre)
	}

	// Phase 2: a send with no receive posted must stage.
	if err := qa.PostSend(rdma.MakeBuffer(payload), 0, 100); err != nil {
		t.Fatal(err)
	}
	sa.waitN(t, pre+1)
	deadline := time.Now().Add(10 * time.Second)
	for b.RecvStats().StagedFrames == 0 {
		if time.Now().After(deadline) {
			t.Fatal("early arrival never staged")
		}
		time.Sleep(time.Millisecond)
	}
	if err := qb.PostRecv(rdma.MakeBuffer(make([]byte, len(payload))), 101); err != nil {
		t.Fatal(err)
	}
	recvs := sb.waitN(t, pre+1)
	if !bytes.Equal(recvs[pre].Data, payload) {
		t.Error("staged arrival corrupted")
	}
	stats = b.RecvStats()
	if stats.DirectFrames != pre || stats.StagedFrames != 1 || stats.StagedBytes != uint64(len(payload)) {
		t.Fatalf("staged phase: stats = %+v, want %d direct, 1 staged, %d staged bytes", stats, pre, len(payload))
	}
}
