package tcpnic

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"rdmc/internal/rdma"
	"rdmc/internal/rdma/shmnic"
)

// completionSink collects completions thread-safely.
type completionSink struct {
	mu   sync.Mutex
	got  []rdma.Completion
	cond *sync.Cond
}

func newSink() *completionSink {
	s := &completionSink{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *completionSink) handle(c rdma.Completion) {
	s.mu.Lock()
	s.got = append(s.got, c)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// waitN blocks until n completions arrived or the timeout passed.
func (s *completionSink) waitN(t *testing.T, n int) []rdma.Completion {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	timer := time.AfterFunc(10*time.Second, func() { s.cond.Broadcast() })
	defer timer.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.got) < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d of %d completions", len(s.got), n)
		}
		s.cond.Wait()
	}
	return append([]rdma.Completion(nil), s.got...)
}

// newPair stands up two providers on loopback and returns them with sinks.
func newPair(t *testing.T) (a, b *Provider, sa, sb *completionSink) {
	t.Helper()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := map[rdma.NodeID]string{0: lnA.Addr().String(), 1: lnB.Addr().String()}
	a, err = New(Config{NodeID: 0, Listener: lnA, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	b, err = New(Config{NodeID: 1, Listener: lnB, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	sa, sb = newSink(), newSink()
	a.SetHandler(sa.handle)
	b.SetHandler(sb.handle)
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})
	return a, b, sa, sb
}

func TestSendRecvRoundTrip(t *testing.T) {
	a, b, sa, sb := newPair(t)
	qa, err := a.Connect(1, 42)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := b.Connect(0, 42)
	if err != nil {
		t.Fatal(err)
	}

	recvBuf := make([]byte, 64)
	if err := qb.PostRecv(rdma.MakeBuffer(recvBuf), 7); err != nil {
		t.Fatal(err)
	}
	payload := []byte("over real sockets")
	if err := qa.PostSend(rdma.MakeBuffer(payload), 0xbeef, 9); err != nil {
		t.Fatal(err)
	}

	sends := sa.waitN(t, 1)
	if sends[0].Op != rdma.OpSend || sends[0].WRID != 9 || sends[0].Status != rdma.StatusOK {
		t.Errorf("send completion = %+v", sends[0])
	}
	recvs := sb.waitN(t, 1)
	r := recvs[0]
	if r.Op != rdma.OpRecv || r.Imm != 0xbeef || r.WRID != 7 || r.Peer != 0 || r.Token != 42 {
		t.Errorf("recv completion = %+v", r)
	}
	if !bytes.Equal(r.Data, payload) {
		t.Errorf("data = %q, want %q", r.Data, payload)
	}
}

func TestVirtualSendCarriesNoBytes(t *testing.T) {
	a, b, _, sb := newPair(t)
	qa, _ := a.Connect(1, 1)
	qb, _ := b.Connect(0, 1)
	if err := qb.PostRecv(rdma.SizeBuffer(1<<20), 1); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.SizeBuffer(1<<20), 5, 2); err != nil {
		t.Fatal(err)
	}
	recvs := sb.waitN(t, 1)
	if recvs[0].Bytes != 1<<20 || recvs[0].Data != nil {
		t.Errorf("virtual recv = %+v", recvs[0])
	}
}

func TestFIFOAcrossManyMessages(t *testing.T) {
	a, b, _, sb := newPair(t)
	qa, _ := a.Connect(1, 1)
	qb, _ := b.Connect(0, 1)
	const n = 200
	for i := 0; i < n; i++ {
		if err := qb.PostRecv(rdma.SizeBuffer(64), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := qa.PostSend(rdma.SizeBuffer(64), uint32(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	recvs := sb.waitN(t, n)
	for i, c := range recvs {
		if c.WRID != uint64(i) || c.Imm != uint32(i) {
			t.Fatalf("completion %d out of order: %+v", i, c)
		}
	}
}

func TestEarlyArrivalBuffersUntilRecvPosted(t *testing.T) {
	a, b, _, sb := newPair(t)
	qa, _ := a.Connect(1, 1)
	qb, _ := b.Connect(0, 1)
	payload := []byte("early bird")
	if err := qa.PostSend(rdma.MakeBuffer(payload), 1, 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the frame land unmatched
	buf := make([]byte, 32)
	if err := qb.PostRecv(rdma.MakeBuffer(buf), 2); err != nil {
		t.Fatal(err)
	}
	recvs := sb.waitN(t, 1)
	if !bytes.Equal(recvs[0].Data, payload) {
		t.Errorf("buffered arrival corrupted: %q", recvs[0].Data)
	}
}

func TestOneSidedWriteOverTCP(t *testing.T) {
	a, b, sa, _ := newPair(t)
	region := make([]byte, 64)
	if err := b.RegisterRegion(3, region); err != nil {
		t.Fatal(err)
	}
	watched := make(chan [2]int, 1)
	if err := b.WatchRegion(3, func(off, n int) { watched <- [2]int{off, n} }); err != nil {
		t.Fatal(err)
	}
	qa, _ := a.Connect(1, 1)
	if _, err := b.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostWrite(3, 16, []byte("poke"), 11); err != nil {
		t.Fatal(err)
	}
	writes := sa.waitN(t, 1)
	if writes[0].Op != rdma.OpWrite || writes[0].WRID != 11 {
		t.Errorf("write completion = %+v", writes[0])
	}
	select {
	case w := <-watched:
		if w != [2]int{16, 4} {
			t.Errorf("watch = %v, want {16,4}", w)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never fired")
	}
	if string(region[16:20]) != "poke" {
		t.Errorf("region = %q", region[:24])
	}
}

func TestPeerCloseBreaksOutstandingWork(t *testing.T) {
	a, b, _, sb := newPair(t)
	qa, _ := a.Connect(1, 1)
	qb, _ := b.Connect(0, 1)
	// Force connection establishment with one round trip.
	if err := qb.PostRecv(rdma.SizeBuffer(8), 1); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.SizeBuffer(8), 0, 1); err != nil {
		t.Fatal(err)
	}
	sb.waitN(t, 1)
	if err := qb.PostRecv(rdma.SizeBuffer(8), 2); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	recvs := sb.waitN(t, 2)
	if recvs[1].Status != rdma.StatusBroken {
		t.Errorf("pending recv after peer close: %+v", recvs[1])
	}
	if err := qb.PostSend(rdma.SizeBuffer(1), 0, 3); err != rdma.ErrBroken {
		t.Errorf("post on broken qp: err = %v, want ErrBroken", err)
	}
}

// TestPeerCloseOnIdleQueuePairSignalsBreak pins the async-event analogue: a
// peer that closes while the local endpoint has NOTHING posted must still
// surface exactly one StatusBroken completion carrying the endpoint identity,
// or layers gated on that peer's credit wait forever (found by the
// many-session churn soak: a departed group member was undetectable until
// something happened to be in flight).
func TestPeerCloseOnIdleQueuePairSignalsBreak(t *testing.T) {
	a, b, _, sb := newPair(t)
	qa, _ := a.Connect(1, 77)
	qb, _ := b.Connect(0, 77)
	// One round trip so the connection is established and fully drained.
	if err := qb.PostRecv(rdma.SizeBuffer(8), 1); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.SizeBuffer(8), 0, 1); err != nil {
		t.Fatal(err)
	}
	sb.waitN(t, 1)

	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	got := sb.waitN(t, 2)
	c := got[1]
	if c.Status != rdma.StatusBroken || c.Peer != 0 || c.Token != 77 {
		t.Errorf("idle break completion = %+v, want broken from peer 0 token 77", c)
	}
	if err := qb.PostSend(rdma.SizeBuffer(1), 0, 2); err != rdma.ErrBroken {
		t.Errorf("post after idle break: err = %v, want ErrBroken", err)
	}
}

func TestPostWithoutHandler(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{NodeID: 0, Listener: ln, Addrs: map[rdma.NodeID]string{0: ln.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	qp, err := p.Connect(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := qp.PostSend(rdma.SizeBuffer(1), 0, 1); err != rdma.ErrNoHandler {
		t.Errorf("err = %v, want ErrNoHandler", err)
	}
}

func TestConnectIsIdempotentPerToken(t *testing.T) {
	a, _, _, _ := newPair(t)
	q1, err := a.Connect(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := a.Connect(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Error("same (peer, token) returned distinct queue pairs")
	}
}

func TestNewRequiresListener(t *testing.T) {
	if _, err := New(Config{NodeID: 0}); err == nil {
		t.Error("New without listener succeeded")
	}
}

func TestLargeTransferIntegrity(t *testing.T) {
	a, b, _, sb := newPair(t)
	qa, _ := a.Connect(1, 1)
	qb, _ := b.Connect(0, 1)
	payload := make([]byte, 4<<20)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	buf := make([]byte, len(payload))
	if err := qb.PostRecv(rdma.MakeBuffer(buf), 1); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.MakeBuffer(payload), 0, 1); err != nil {
		t.Fatal(err)
	}
	recvs := sb.waitN(t, 1)
	if !bytes.Equal(recvs[0].Data, payload) {
		t.Error("4 MB transfer corrupted")
	}
}

// TestRecvPathCounters proves the receive fast path stays copy-free: frames
// whose receive is posted before they arrive must land directly in the
// posted buffer (direct), while only true early arrivals stage through a
// pooled buffer and pay a copy (staged).
func TestRecvPathCounters(t *testing.T) {
	a, b, sa, sb := newPair(t)
	qa, _ := a.Connect(1, 5)
	qb, _ := b.Connect(0, 5)

	// Phase 1: receives posted ahead of every send — all direct.
	const pre = 8
	payload := bytes.Repeat([]byte{0xab}, 4096)
	for i := 0; i < pre; i++ {
		if err := qb.PostRecv(rdma.MakeBuffer(make([]byte, len(payload))), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The posted-recv count is racy against the reader goroutine only when
	// sends overlap posting; posting first then sending serializes it.
	for i := 0; i < pre; i++ {
		if err := qa.PostSend(rdma.MakeBuffer(payload), 0, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	sb.waitN(t, pre)
	stats := b.RecvStats()
	if stats.DirectFrames != pre || stats.StagedFrames != 0 {
		t.Fatalf("pre-posted phase: stats = %+v, want %d direct and 0 staged", stats, pre)
	}

	// Phase 2: a send with no receive posted must stage.
	if err := qa.PostSend(rdma.MakeBuffer(payload), 0, 100); err != nil {
		t.Fatal(err)
	}
	sa.waitN(t, pre+1)
	deadline := time.Now().Add(10 * time.Second)
	for b.RecvStats().StagedFrames == 0 {
		if time.Now().After(deadline) {
			t.Fatal("early arrival never staged")
		}
		time.Sleep(time.Millisecond)
	}
	if err := qb.PostRecv(rdma.MakeBuffer(make([]byte, len(payload))), 101); err != nil {
		t.Fatal(err)
	}
	recvs := sb.waitN(t, pre+1)
	if !bytes.Equal(recvs[pre].Data, payload) {
		t.Error("staged arrival corrupted")
	}
	stats = b.RecvStats()
	if stats.DirectFrames != pre || stats.StagedFrames != 1 || stats.StagedBytes != uint64(len(payload)) {
		t.Fatalf("staged phase: stats = %+v, want %d direct, 1 staged, %d staged bytes", stats, pre, len(payload))
	}
}

// TestZeroCopySendCounter proves sends and one-sided writes leave through
// the writer referencing the caller's memory: every real (non-virtual)
// frame bumps the zero-copy counter, and virtual frames do not.
func TestZeroCopySendCounter(t *testing.T) {
	a, b, sa, sb := newPair(t)
	qa, _ := a.Connect(1, 6)
	qb, _ := b.Connect(0, 6)

	region := make([]byte, 64)
	if err := b.RegisterRegion(1, region); err != nil {
		t.Fatal(err)
	}
	const sends = 4
	payload := bytes.Repeat([]byte{0x5a}, 1024)
	for i := 0; i < sends; i++ {
		if err := qb.PostRecv(rdma.MakeBuffer(make([]byte, len(payload))), uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := qa.PostSend(rdma.MakeBuffer(payload), 0, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := qa.PostWrite(1, 0, []byte("poke"), 50); err != nil {
		t.Fatal(err)
	}
	sa.waitN(t, sends+1)
	sb.waitN(t, sends)
	if got := a.ZeroCopySends(); got != sends+1 {
		t.Errorf("ZeroCopySends = %d, want %d (each real send and write)", got, sends+1)
	}

	// A virtual send moves no payload bytes, so nothing to zero-copy.
	if err := qb.PostRecv(rdma.SizeBuffer(1<<10), 60); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.SizeBuffer(1<<10), 0, 61); err != nil {
		t.Fatal(err)
	}
	sb.waitN(t, sends+1)
	if got := a.ZeroCopySends(); got != sends+1 {
		t.Errorf("ZeroCopySends after virtual send = %d, want %d", got, sends+1)
	}
}

// pingPongPair builds a connected pair wired for steady-state ping-pong:
// every round posts one receive and one payload send on A; B's handler
// reposts its receive and acks with a virtual send; A's handler signals the
// round's end. Nothing in a round should allocate — the test below pins it.
func pingPongPair(tb testing.TB, payload []byte) (round func()) {
	tb.Helper()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	addrs := map[rdma.NodeID]string{0: lnA.Addr().String(), 1: lnB.Addr().String()}
	a, err := New(Config{NodeID: 0, Listener: lnA, Addrs: addrs})
	if err != nil {
		tb.Fatal(err)
	}
	b, err := New(Config{NodeID: 1, Listener: lnB, Addrs: addrs})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})

	qa, err := a.Connect(1, 9)
	if err != nil {
		tb.Fatal(err)
	}
	qb, err := b.Connect(0, 9)
	if err != nil {
		tb.Fatal(err)
	}

	recvB := make([]byte, len(payload))
	b.SetHandler(func(c rdma.Completion) {
		if c.Op != rdma.OpRecv {
			return
		}
		_ = qb.PostRecv(rdma.MakeBuffer(recvB), 1)
		_ = qb.PostSend(rdma.SizeBuffer(1), 0, 2)
	})
	ack := make(chan struct{}, 1)
	a.SetHandler(func(c rdma.Completion) {
		if c.Op == rdma.OpRecv {
			ack <- struct{}{}
		}
	})
	if err := qb.PostRecv(rdma.MakeBuffer(recvB), 1); err != nil {
		tb.Fatal(err)
	}
	return func() {
		if err := qa.PostRecv(rdma.SizeBuffer(1), 3); err != nil {
			tb.Fatal(err)
		}
		if err := qa.PostSend(rdma.MakeBuffer(payload), 0, 4); err != nil {
			tb.Fatal(err)
		}
		<-ack
	}
}

// TestSteadyStateAllocationFree pins the hot path at zero allocations per
// round once pools and rings are primed: posting, framing, the vectored
// reader, staging-free delivery, and completion dispatch all reuse memory.
// The average tolerates the stray runtime allocation (stack growth, GC
// bookkeeping) without letting a real per-op allocation through.
func TestSteadyStateAllocationFree(t *testing.T) {
	round := pingPongPair(t, bytes.Repeat([]byte{0x3c}, 4096))
	for i := 0; i < 100; i++ { // prime pools, rings, and socket buffers
		round()
	}
	if avg := testing.AllocsPerRun(200, round); avg > 0.5 {
		t.Errorf("steady-state allocations = %.2f per round, want 0", avg)
	}
}

// BenchmarkSteadyStatePingPong reports the hot path's time and allocation
// profile: one 4 KiB send, its delivery into a pre-posted buffer, and a
// virtual ack per round.
func BenchmarkSteadyStatePingPong(b *testing.B) {
	round := pingPongPair(b, bytes.Repeat([]byte{0x3c}, 4096))
	for i := 0; i < 100; i++ {
		round()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round()
	}
}

// TestIntraHostRoutingUsesSharedMemory wires two co-located providers into
// one shmnic exchange: their queue pairs must be shared-memory endpoints —
// payloads flow without any TCP data-plane traffic — while the rdma surface
// (completions, metadata, FIFO) stays identical.
func TestIntraHostRoutingUsesSharedMemory(t *testing.T) {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := map[rdma.NodeID]string{0: lnA.Addr().String(), 1: lnB.Addr().String()}
	ex := shmnic.NewExchange()
	a, err := New(Config{NodeID: 0, Listener: lnA, Addrs: addrs, Intra: ex})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{NodeID: 1, Listener: lnB, Addrs: addrs, Intra: ex})
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := newSink(), newSink()
	a.SetHandler(sa.handle)
	b.SetHandler(sb.handle)
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})

	qa, err := a.Connect(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := b.Connect(0, 3)
	if err != nil {
		t.Fatal(err)
	}

	payload := bytes.Repeat([]byte{0x42}, 1<<20)
	buf := make([]byte, len(payload))
	if err := qb.PostRecv(rdma.MakeBuffer(buf), 1); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(rdma.MakeBuffer(payload), 0xfeed, 2); err != nil {
		t.Fatal(err)
	}
	sa.waitN(t, 1)
	recvs := sb.waitN(t, 1)
	r := recvs[0]
	if r.Imm != 0xfeed || r.Peer != 0 || r.Token != 3 || !bytes.Equal(r.Data, payload) {
		t.Errorf("recv completion over shared memory = op=%v imm=%#x peer=%d token=%d", r.Op, r.Imm, r.Peer, r.Token)
	}

	// The megabyte moved without touching the socket data plane: no frames
	// were read on either side, and the writers emitted nothing.
	if s := b.RecvStats(); s.DirectFrames != 0 || s.StagedFrames != 0 {
		t.Errorf("TCP receive path saw frames despite intra-host routing: %+v", s)
	}
	if zc := a.ZeroCopySends(); zc != 0 {
		t.Errorf("TCP writer emitted %d frames despite intra-host routing", zc)
	}
}
