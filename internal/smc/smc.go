// Package smc implements the small-message multicast the paper describes as
// Derecho's companion to RDMC (§4.6): "a small-message protocol that uses
// one-sided RDMA writes into a set of round-robin bounded buffers, one per
// receiver". For groups of up to about 16 members and messages up to about
// 10 KB it beats the block protocol by avoiding all per-message control
// traffic: the sender writes each message directly into a ring slot in every
// receiver's registered memory, and receivers acknowledge consumption with a
// one-sided write back into the sender's memory.
//
// The smc experiment in the benchmark harness reproduces the paper's claimed
// crossover ("as much as a 5x speedup ... provided that the group is small
// enough ... and the messages are small enough"; beyond that, the binomial
// pipeline dominates).
package smc

import (
	"encoding/binary"
	"fmt"

	"rdmc/internal/rdma"
)

// Config sizes the ring buffers.
type Config struct {
	// SlotSize is the largest message the group can carry; zero selects
	// 10 KiB, the paper's crossover point.
	SlotSize int
	// Slots is the ring depth per receiver; zero selects 16.
	Slots int
}

func (c Config) withDefaults() Config {
	if c.SlotSize == 0 {
		c.SlotSize = 10 << 10
	}
	if c.Slots == 0 {
		c.Slots = 16
	}
	return c
}

// slot layout: [seq u64][len u32][payload SlotSize].
const slotHeader = 12

// Callbacks notify the application.
type Callbacks struct {
	// Message runs on receivers for each delivered message, in sender
	// order. The data slice aliases the ring slot and must be consumed or
	// copied before returning.
	Message func(seq uint64, data []byte)
	// Sent runs on the sender when a message has been written to every
	// receiver.
	Sent func(seq uint64)
}

// Group is one small-message multicast session; members[0] is the sender.
type Group struct {
	provider rdma.Provider
	id       uint32
	members  []rdma.NodeID
	rank     int
	cfg      Config
	cbs      Callbacks

	// Sender state.
	qps      []rdma.QueuePair // per receiver rank 1..n-1
	ackBuf   []byte           // receivers' consumed counters, 8 bytes each
	seq      uint64           // next sequence to assign
	inflight map[uint64]int   // seq → outstanding write completions
	pending  [][]byte         // messages waiting for ring space

	// Receiver state.
	ring    []byte
	nextSeq uint64
	ackQP   rdma.QueuePair
}

// ringRegion and ackRegion derive the registered-memory ids for a group.
func ringRegion(id uint32) rdma.RegionID { return rdma.RegionID(id) }
func ackRegion(id uint32) rdma.RegionID  { return rdma.RegionID(id | 1<<31) }

// New creates the local endpoint of an SMC group. Every member calls New
// with identical arguments; memory registration and queue-pair setup happen
// here, before any message moves (as §4.1 requires).
func New(provider rdma.Provider, id uint32, members []rdma.NodeID, cfg Config, cbs Callbacks) (*Group, error) {
	cfg = cfg.withDefaults()
	if len(members) < 2 {
		return nil, fmt.Errorf("smc: group needs at least 2 members, got %d", len(members))
	}
	if id >= 1<<31 {
		return nil, fmt.Errorf("smc: group id %d must fit in 31 bits", id)
	}
	g := &Group{
		provider: provider,
		id:       id,
		members:  append([]rdma.NodeID(nil), members...),
		rank:     -1,
		cfg:      cfg,
		cbs:      cbs,
		inflight: make(map[uint64]int),
	}
	for i, m := range members {
		if m == provider.NodeID() {
			g.rank = i
			break
		}
	}
	if g.rank < 0 {
		return nil, fmt.Errorf("smc: node %d not in member list", provider.NodeID())
	}

	token := func(rank int) uint64 {
		return uint64(id)<<32 | 1<<31 | uint64(rank)
	}
	if g.rank == 0 {
		g.ackBuf = make([]byte, 8*(len(members)-1))
		if err := provider.RegisterRegion(ackRegion(id), g.ackBuf); err != nil {
			return nil, err
		}
		if err := provider.WatchRegion(ackRegion(id), func(int, int) { g.drainPending() }); err != nil {
			return nil, err
		}
		for rank := 1; rank < len(members); rank++ {
			qp, err := provider.Connect(members[rank], token(rank))
			if err != nil {
				return nil, err
			}
			g.qps = append(g.qps, qp)
		}
		return g, nil
	}

	stride := slotHeader + cfg.SlotSize
	g.ring = make([]byte, stride*cfg.Slots)
	if err := provider.RegisterRegion(ringRegion(id), g.ring); err != nil {
		return nil, err
	}
	if err := provider.WatchRegion(ringRegion(id), g.onSlotWrite); err != nil {
		return nil, err
	}
	qp, err := provider.Connect(members[0], token(g.rank))
	if err != nil {
		return nil, err
	}
	g.ackQP = qp
	return g, nil
}

// HandleCompletion consumes the provider completions belonging to this group
// (callers multiplexing several consumers dispatch on Completion.Token). It
// reports whether the completion was taken.
func (g *Group) HandleCompletion(c rdma.Completion) bool {
	if c.Token>>32 != uint64(g.id) || c.Token&(1<<31) == 0 {
		return false
	}
	if g.rank != 0 || c.Op != rdma.OpWrite || c.Status != rdma.StatusOK {
		return true
	}
	seq := c.WRID
	if n, ok := g.inflight[seq]; ok {
		if n--; n == 0 {
			delete(g.inflight, seq)
			if g.cbs.Sent != nil {
				g.cbs.Sent(seq)
			}
		} else {
			g.inflight[seq] = n
		}
	}
	return true
}

// Send multicasts a small message; only rank 0 may call it. Messages queue
// when the slowest receiver's ring is full and drain as acknowledgements
// arrive.
func (g *Group) Send(data []byte) error {
	if g.rank != 0 {
		return fmt.Errorf("smc: only the sender (rank 0) may send")
	}
	if len(data) == 0 || len(data) > g.cfg.SlotSize {
		return fmt.Errorf("smc: message of %d bytes outside (0, %d]", len(data), g.cfg.SlotSize)
	}
	if !g.ringSpace() {
		g.pending = append(g.pending, append([]byte(nil), data...))
		return nil
	}
	return g.write(data)
}

// ringSpace reports whether every receiver has a free slot.
func (g *Group) ringSpace() bool {
	for i := range g.qps {
		acked := binary.LittleEndian.Uint64(g.ackBuf[8*i:])
		if g.seq-acked >= uint64(g.cfg.Slots) {
			return false
		}
	}
	return true
}

func (g *Group) write(data []byte) error {
	seq := g.seq
	g.seq++
	stride := slotHeader + g.cfg.SlotSize
	offset := int(seq%uint64(g.cfg.Slots)) * stride
	frame := make([]byte, slotHeader+len(data))
	binary.LittleEndian.PutUint64(frame[0:8], seq+1) // +1 so zeroed memory is "empty"
	binary.LittleEndian.PutUint32(frame[8:12], uint32(len(data)))
	copy(frame[slotHeader:], data)
	g.inflight[seq] = len(g.qps)
	for _, qp := range g.qps {
		if err := qp.PostWrite(ringRegion(g.id), offset, frame, seq); err != nil {
			return fmt.Errorf("smc: write seq %d: %w", seq, err)
		}
	}
	return nil
}

func (g *Group) drainPending() {
	for len(g.pending) > 0 && g.ringSpace() {
		data := g.pending[0]
		g.pending = g.pending[1:]
		if err := g.write(data); err != nil {
			return
		}
	}
}

// onSlotWrite runs on receivers when the sender's one-sided write lands.
func (g *Group) onSlotWrite(offset, _ int) {
	stride := slotHeader + g.cfg.SlotSize
	for {
		slot := int(g.nextSeq % uint64(g.cfg.Slots))
		base := slot * stride
		seqPlus1 := binary.LittleEndian.Uint64(g.ring[base : base+8])
		if seqPlus1 != g.nextSeq+1 {
			return // next message not here yet
		}
		length := int(binary.LittleEndian.Uint32(g.ring[base+8 : base+12]))
		if length < 0 || length > g.cfg.SlotSize {
			return
		}
		seq := g.nextSeq
		g.nextSeq++
		if g.cbs.Message != nil {
			g.cbs.Message(seq, g.ring[base+slotHeader:base+slotHeader+length])
		}
		// Acknowledge consumption with a one-sided write of the consumed
		// count into the sender's ack table.
		var ack [8]byte
		binary.LittleEndian.PutUint64(ack[:], g.nextSeq)
		_ = g.ackQP.PostWrite(ackRegion(g.id), 8*(g.rank-1), ack[:], g.nextSeq)
	}
}
