package smc

import (
	"bytes"
	"fmt"
	"testing"

	"rdmc/internal/rdma"
	"rdmc/internal/rdma/simnic"
	"rdmc/internal/simnet"
)

// testNet builds an n-node simulated network with SMC groups on every node.
func testNet(t *testing.T, n int, cfg Config) (*simnet.Sim, []*Group, [][]string) {
	t.Helper()
	sim := simnet.NewSim(1)
	cluster, err := simnet.NewCluster(sim, simnet.ClusterConfig{
		Nodes:         n,
		LinkBandwidth: 12.5e9,
		Latency:       1.5e-6,
		CPU:           simnet.CPUConfig{Mode: simnet.ModePolling},
	})
	if err != nil {
		t.Fatal(err)
	}
	network := simnic.NewNetwork(cluster)
	ids := make([]rdma.NodeID, n)
	for i := range ids {
		ids[i] = rdma.NodeID(i)
	}
	groups := make([]*Group, n)
	delivered := make([][]string, n)
	for i := 0; i < n; i++ {
		i := i
		provider := network.Provider(ids[i])
		provider.SetHandler(func(c rdma.Completion) {
			if groups[i] != nil {
				groups[i].HandleCompletion(c)
			}
		})
		g, err := New(provider, 1, ids, cfg, Callbacks{
			Message: func(seq uint64, data []byte) {
				delivered[i] = append(delivered[i], fmt.Sprintf("%d:%s", seq, data))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = g
	}
	return sim, groups, delivered
}

func TestSMCDeliversInOrderToAllReceivers(t *testing.T) {
	sim, groups, delivered := testNet(t, 4, Config{SlotSize: 64, Slots: 8})
	for i := 0; i < 20; i++ {
		if err := groups[0].Send([]byte(fmt.Sprintf("m%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	for r := 1; r < 4; r++ {
		if len(delivered[r]) != 20 {
			t.Fatalf("receiver %d got %d of 20", r, len(delivered[r]))
		}
		for i, got := range delivered[r] {
			want := fmt.Sprintf("%d:m%02d", i, i)
			if got != want {
				t.Fatalf("receiver %d message %d = %q, want %q", r, i, got, want)
			}
		}
	}
	if len(delivered[0]) != 0 {
		t.Error("sender delivered to itself")
	}
}

func TestSMCRingWrapsAndFlowControls(t *testing.T) {
	// Far more messages than ring slots: sends must queue and drain.
	sim, groups, delivered := testNet(t, 3, Config{SlotSize: 16, Slots: 4})
	const total = 200
	for i := 0; i < total; i++ {
		if err := groups[0].Send([]byte(fmt.Sprintf("%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	for r := 1; r < 3; r++ {
		if len(delivered[r]) != total {
			t.Fatalf("receiver %d got %d of %d", r, len(delivered[r]), total)
		}
	}
}

func TestSMCSenderCallback(t *testing.T) {
	sim := simnet.NewSim(1)
	cluster, err := simnet.NewCluster(sim, simnet.ClusterConfig{
		Nodes: 2, LinkBandwidth: 1e9, CPU: simnet.CPUConfig{Mode: simnet.ModePolling},
	})
	if err != nil {
		t.Fatal(err)
	}
	network := simnic.NewNetwork(cluster)
	ids := []rdma.NodeID{0, 1}

	var sent []uint64
	groups := make([]*Group, 2)
	for i := 0; i < 2; i++ {
		i := i
		p := network.Provider(ids[i])
		p.SetHandler(func(c rdma.Completion) {
			if groups[i] != nil {
				groups[i].HandleCompletion(c)
			}
		})
		g, err := New(p, 1, ids, Config{}, Callbacks{
			Sent: func(seq uint64) { sent = append(sent, seq) },
		})
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = g
	}
	for i := 0; i < 3; i++ {
		if err := groups[0].Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	if len(sent) != 3 || sent[0] != 0 || sent[2] != 2 {
		t.Errorf("sent callbacks = %v", sent)
	}
}

func TestSMCSendValidation(t *testing.T) {
	_, groups, _ := testNet(t, 2, Config{SlotSize: 8, Slots: 2})
	if err := groups[1].Send([]byte("x")); err == nil {
		t.Error("non-sender Send succeeded")
	}
	if err := groups[0].Send(nil); err == nil {
		t.Error("empty message accepted")
	}
	if err := groups[0].Send(bytes.Repeat([]byte("x"), 9)); err == nil {
		t.Error("oversize message accepted")
	}
}

func TestSMCNewValidation(t *testing.T) {
	sim := simnet.NewSim(1)
	cluster, err := simnet.NewCluster(sim, simnet.ClusterConfig{
		Nodes: 2, LinkBandwidth: 1e9, CPU: simnet.CPUConfig{Mode: simnet.ModePolling},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := simnic.NewNetwork(cluster).Provider(0)
	p.SetHandler(func(rdma.Completion) {})
	if _, err := New(p, 1, []rdma.NodeID{0}, Config{}, Callbacks{}); err == nil {
		t.Error("single-member group accepted")
	}
	if _, err := New(p, 1<<31, []rdma.NodeID{0, 1}, Config{}, Callbacks{}); err == nil {
		t.Error("oversized group id accepted")
	}
	if _, err := New(p, 1, []rdma.NodeID{5, 6}, Config{}, Callbacks{}); err == nil {
		t.Error("non-member create accepted")
	}
}

func TestSMCCompletionRouting(t *testing.T) {
	_, groups, _ := testNet(t, 2, Config{})
	// A completion for a different group id is not consumed.
	if groups[0].HandleCompletion(rdma.Completion{Token: 99 << 32}) {
		t.Error("foreign completion consumed")
	}
	// An RDMC-style token (bit 31 clear) is not consumed either.
	if groups[0].HandleCompletion(rdma.Completion{Token: 1 << 32}) {
		t.Error("non-SMC completion consumed")
	}
}
