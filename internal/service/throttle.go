package service

import (
	"fmt"
	"sync"

	"rdmc/internal/core"
	"rdmc/internal/obs"
)

// WFQThrottle is a weighted-fair implementation of core.SendThrottle: one
// instance per NIC port rations a byte budget (bytes of block payload in
// flight at once) across classes, one class per tenant. Under contention the
// class with the least normalized service (bytes sent divided by weight) is
// admitted first, so a tenant with weight 3 drains three bytes for every byte
// a weight-1 tenant drains — the classic WFQ virtual-time argument, with the
// engine's own block completions as the clock.
//
// Everything is deterministic given call order: classes are scanned in
// creation order, ties in normalized service go to the earliest-created
// class, and per-class waiters are FIFO. The simulator's single-threaded
// event loop therefore produces byte-identical schedules run to run, which
// the scenario goldens rely on.
var _ core.SendThrottle = (*WFQThrottle)(nil)

type WFQThrottle struct {
	mu       sync.Mutex
	capacity int
	inFlight int
	classes  []*throttleClass // creation order; index breaks served ties
	byName   map[string]*throttleClass
	byGroup  map[core.GroupID]*throttleClass
	spans    []classSpan
	grants   map[core.GroupID]grant
	def      *throttleClass

	refusals uint64
	gauge    *obs.Gauge // bytes in flight, when metrics are wired
}

// throttleClass is one tenant's share of the budget.
type throttleClass struct {
	name    string
	weight  int
	served  float64 // bytes granted / weight — the WFQ virtual clock
	waiters []waiter
}

// waiter is one stalled group: a group stalls at most one block at a time
// (the pump stops at the first refusal), so each group has at most one entry.
type waiter struct {
	g      core.GroupID
	bytes  int
	resume func()
}

// grant is budget reserved for a woken waiter that has not re-Acquired yet.
// Without the reservation another group could steal the freed bytes between
// the resume callback firing and the re-Acquire, starving the waiter forever.
type grant struct {
	bytes int
	class *throttleClass
}

// classSpan maps a contiguous group-id range to a class. Sessions mint a new
// group id per epoch (session id + epoch), so per-id binding cannot cover
// them; a span binds the whole range once.
type classSpan struct {
	base core.GroupID
	span uint32
	c    *throttleClass
}

// NewWFQThrottle builds a throttle admitting up to capacity bytes of block
// payload in flight at once. Groups bound to no class share a default class
// of weight 1. A group whose single block exceeds capacity is still admitted
// when the port is idle (inFlight == 0), so capacity never deadlocks a
// transfer — it only serializes one.
func NewWFQThrottle(capacity int) *WFQThrottle {
	if capacity <= 0 {
		capacity = 1
	}
	t := &WFQThrottle{
		capacity: capacity,
		byName:   make(map[string]*throttleClass),
		byGroup:  make(map[core.GroupID]*throttleClass),
		grants:   make(map[core.GroupID]grant),
	}
	t.def = t.addClassLocked("_default", 1)
	return t
}

// SetMetrics exports the throttle's in-flight gauge
// (service.throttle_inflight_bytes) on the registry.
func (t *WFQThrottle) SetMetrics(r *obs.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gauge = r.Gauge("service.throttle_inflight_bytes")
	t.gauge.Set(int64(t.inFlight))
}

func (t *WFQThrottle) addClassLocked(name string, weight int) *throttleClass {
	if weight <= 0 {
		weight = 1
	}
	c := &throttleClass{name: name, weight: weight}
	t.classes = append(t.classes, c)
	t.byName[name] = c
	return c
}

// AddClass registers a tenant class with the given weight. Re-adding a name
// updates its weight in place (service before served is unaffected).
func (t *WFQThrottle) AddClass(name string, weight int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.byName[name]; ok {
		if weight <= 0 {
			weight = 1
		}
		c.weight = weight
		return nil
	}
	t.addClassLocked(name, weight)
	return nil
}

// BindGroup routes a single group id to a class.
func (t *WFQThrottle) BindGroup(g core.GroupID, class string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.byName[class]
	if !ok {
		return fmt.Errorf("service: unknown throttle class %q", class)
	}
	t.byGroup[g] = c
	return nil
}

// BindSpan routes every group id in [base, base+span) to a class — how a
// session (whose epoch groups use ids ID+1, ID+2, ...) is bound once for all
// its epochs. Per-id bindings win over spans; overlapping spans resolve to
// the earliest bound.
func (t *WFQThrottle) BindSpan(base core.GroupID, span uint32, class string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.byName[class]
	if !ok {
		return fmt.Errorf("service: unknown throttle class %q", class)
	}
	t.spans = append(t.spans, classSpan{base: base, span: span, c: c})
	return nil
}

func (t *WFQThrottle) classOf(g core.GroupID) *throttleClass {
	if c, ok := t.byGroup[g]; ok {
		return c
	}
	for _, s := range t.spans {
		if g >= s.base && uint32(g-s.base) < s.span {
			return s.c
		}
	}
	return t.def
}

// Acquire implements core.SendThrottle.
func (t *WFQThrottle) Acquire(g core.GroupID, bytes int, resume func()) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.classOf(g)
	if gr, ok := t.grants[g]; ok {
		delete(t.grants, g)
		if gr.bytes == bytes {
			// The drain reserved exactly these bytes and already charged
			// the class; just hand them over.
			t.setGauge()
			return true
		}
		// The group re-planned between wakeup and re-Acquire (block size
		// changed); refund the reservation and fall through to the normal
		// admission path with the real size.
		t.inFlight -= gr.bytes
		gr.class.served -= float64(gr.bytes) / float64(gr.class.weight)
	}
	if len(c.waiters) == 0 && (t.inFlight == 0 || t.inFlight+bytes <= t.capacity) {
		t.admitLocked(c, g, bytes, false)
		return true
	}
	t.refusals++
	for i := range c.waiters {
		if c.waiters[i].g == g {
			c.waiters[i] = waiter{g: g, bytes: bytes, resume: resume}
			return false
		}
	}
	c.waiters = append(c.waiters, waiter{g: g, bytes: bytes, resume: resume})
	return false
}

// admitLocked charges an admission to the class's virtual clock. reserve
// marks the bytes as a grant to be claimed by a later re-Acquire.
func (t *WFQThrottle) admitLocked(c *throttleClass, g core.GroupID, bytes int, reserve bool) {
	t.inFlight += bytes
	c.served += float64(bytes) / float64(c.weight)
	if reserve {
		t.grants[g] = grant{bytes: bytes, class: c}
	}
	t.setGauge()
}

// Release implements core.SendThrottle.
func (t *WFQThrottle) Release(g core.GroupID, bytes int) []func() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.inFlight -= bytes
	if t.inFlight < 0 {
		t.inFlight = 0
	}
	t.setGauge()
	return t.drainLocked()
}

// Forget implements core.SendThrottle: a departed group's waiter, grant, and
// binding all go away, and whatever its grant was pinning is redistributed.
func (t *WFQThrottle) Forget(g core.GroupID) []func() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if gr, ok := t.grants[g]; ok {
		delete(t.grants, g)
		t.inFlight -= gr.bytes
		gr.class.served -= float64(gr.bytes) / float64(gr.class.weight)
	}
	c := t.classOf(g)
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if w.g != g {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
	delete(t.byGroup, g)
	t.setGauge()
	return t.drainLocked()
}

// drainLocked wakes stalled groups while budget lasts, least-served class
// first. Woken bytes are reserved (see grant) so the wakeup cannot lose a
// race for them; the resume callbacks are returned for the caller to run
// outside every lock.
func (t *WFQThrottle) drainLocked() []func() {
	var cbs []func()
	for {
		var best *throttleClass
		for _, c := range t.classes {
			if len(c.waiters) == 0 {
				continue
			}
			if best == nil || c.served < best.served {
				best = c
			}
		}
		if best == nil {
			break
		}
		w := best.waiters[0]
		if t.inFlight > 0 && t.inFlight+w.bytes > t.capacity {
			break
		}
		best.waiters = best.waiters[1:]
		t.admitLocked(best, w.g, w.bytes, true)
		cbs = append(cbs, w.resume)
	}
	return cbs
}

func (t *WFQThrottle) setGauge() {
	if t.gauge != nil {
		t.gauge.Set(int64(t.inFlight))
	}
}

// InFlight reports the bytes currently admitted (including unclaimed grants).
func (t *WFQThrottle) InFlight() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.inFlight
}

// Waiting reports how many groups are stalled across all classes.
func (t *WFQThrottle) Waiting() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, c := range t.classes {
		n += len(c.waiters)
	}
	return n
}

// Refusals reports how many Acquire calls were stalled since creation.
func (t *WFQThrottle) Refusals() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.refusals
}
