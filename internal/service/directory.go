// Package service is the RDMC-as-a-service layer: a membership/registry
// directory that multiplexes many named multicast groups over one cluster,
// per-tenant admission control, and weighted-fair bandwidth sharing across
// the groups contending for each NIC (WFQThrottle, plugged into
// core.GroupConfig.Throttle).
//
// The paper's evaluation runs a handful of groups; production Derecho-style
// deployments multiplex thousands of overlapping groups over the same NICs,
// and Storm's lesson is that unbounded per-connection dataplane state is
// what breaks RDMA at that scale. The service layer therefore keeps the
// dataplane untouched — groups are ordinary core/session groups — and adds
// only control-plane state: a roster of live nodes, tenants with admission
// budgets, and named group registrations whose members are drawn k-of-n from
// the live roster with a seeded generator (deterministic for simulation,
// uniform in expectation like the paper's Cosmos workload).
//
// The Directory is logically centralized, like Derecho's membership service:
// in-process deployments (the simulator, NewLocalCluster) share one instance;
// a distributed deployment would place it behind its own replicated group.
package service

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"rdmc/internal/core"
	"rdmc/internal/rdma"
)

// Errors returned by the admission and registry paths.
var (
	ErrUnknownTenant  = errors.New("service: unknown tenant")
	ErrTenantExists   = errors.New("service: tenant already registered")
	ErrGroupExists    = errors.New("service: group name already registered")
	ErrUnknownGroup   = errors.New("service: unknown group name")
	ErrRosterTooSmall = errors.New("service: live roster smaller than requested group")
	ErrOverloaded     = errors.New("service: tenant over admission budget")
)

// DirectoryConfig seeds the registry.
type DirectoryConfig struct {
	// Seed drives the k-of-n member draws; a fixed seed makes every draw
	// sequence reproducible.
	Seed int64
	// FirstGroupID is the first core group id the allocator hands out
	// (default 1). Each registration reserves GroupIDSpan ids so epoch
	// groups layered on a registration never collide with the next one.
	FirstGroupID uint32
	// GroupIDSpan is the id stride between registrations (default 1024,
	// leaving room for ~1k view changes per session-backed group).
	GroupIDSpan uint32
}

// Directory is the registry service: the roster of live nodes, the tenants,
// and the named groups registered against them.
type Directory struct {
	mu      sync.Mutex
	rng     *rand.Rand
	cfg     DirectoryConfig
	present map[rdma.NodeID]bool
	roster  []rdma.NodeID // sorted; rebuilt on attach/detach
	tenants map[string]*Tenant
	order   []string // tenant creation order, for deterministic iteration
	groups  map[string]GroupSpec
	nextID  uint32
}

// GroupSpec is one registered group: a stable id range and a concrete member
// list (members[0] is the root).
type GroupSpec struct {
	// ID is the base core group id reserved for this registration.
	ID core.GroupID
	// Span is how many consecutive ids (starting at ID) the registration
	// owns — session epochs burn through them one per view change.
	Span uint32
	// Tenant and Name identify the registration; names are scoped per
	// tenant ("tenantA/logs" and "tenantB/logs" coexist).
	Tenant string
	Name   string
	// Members is the resolved membership, Members[0] the root.
	Members []rdma.NodeID
}

// NewDirectory builds an empty registry.
func NewDirectory(cfg DirectoryConfig) *Directory {
	if cfg.FirstGroupID == 0 {
		cfg.FirstGroupID = 1
	}
	if cfg.GroupIDSpan == 0 {
		cfg.GroupIDSpan = 1024
	}
	return &Directory{
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		cfg:     cfg,
		present: make(map[rdma.NodeID]bool),
		tenants: make(map[string]*Tenant),
		groups:  make(map[string]GroupSpec),
		nextID:  cfg.FirstGroupID,
	}
}

// Attach adds a node to the live roster (idempotent).
func (d *Directory) Attach(node rdma.NodeID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.present[node] {
		return
	}
	d.present[node] = true
	d.rebuildRosterLocked()
}

// Detach removes a node from the live roster. Groups already resolved keep
// their member lists — failure handling is the session layer's job — but new
// draws never pick the departed node.
func (d *Directory) Detach(node rdma.NodeID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.present[node] {
		return
	}
	delete(d.present, node)
	d.rebuildRosterLocked()
}

func (d *Directory) rebuildRosterLocked() {
	d.roster = d.roster[:0]
	for n := range d.present {
		d.roster = append(d.roster, n)
	}
	sort.Slice(d.roster, func(i, j int) bool { return d.roster[i] < d.roster[j] })
}

// Roster returns the live nodes in id order.
func (d *Directory) Roster() []rdma.NodeID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]rdma.NodeID(nil), d.roster...)
}

// TenantConfig is one tenant's admission budget and bandwidth share.
type TenantConfig struct {
	// Weight is the tenant's WFQ bandwidth share (default 1). The
	// directory itself only records it; callers feed it to the
	// WFQThrottle(s) guarding their NICs.
	Weight int
	// MaxInFlight caps concurrently admitted transfers (0 = unlimited).
	MaxInFlight int
	// MaxQueuedBytes is how many bytes of transfers past the in-flight cap
	// may wait in the tenant's queue. Zero queues nothing: over-cap
	// submissions are rejected outright (the reject-vs-queue policy is
	// simply whether this budget is zero).
	MaxQueuedBytes int64
}

// AddTenant registers a tenant.
func (d *Directory) AddTenant(name string, cfg TenantConfig) (*Tenant, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.tenants[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrTenantExists, name)
	}
	if cfg.Weight <= 0 {
		cfg.Weight = 1
	}
	t := &Tenant{dir: d, name: name, cfg: cfg}
	d.tenants[name] = t
	d.order = append(d.order, name)
	return t, nil
}

// Tenant returns a registered tenant handle, or nil.
func (d *Directory) Tenant(name string) *Tenant {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tenants[name]
}

// Tenants returns the tenant handles in registration order.
func (d *Directory) Tenants() []*Tenant {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Tenant, 0, len(d.order))
	for _, n := range d.order {
		out = append(out, d.tenants[n])
	}
	return out
}

// NumGroups reports registered group names.
func (d *Directory) NumGroups() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.groups)
}

// Lookup resolves a registered group by tenant-scoped name.
func (d *Directory) Lookup(tenant, name string) (GroupSpec, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	gs, ok := d.groups[tenant+"/"+name]
	return gs, ok
}

// RegisterGroup registers a named group with an explicit member list and
// allocates its id range.
func (d *Directory) RegisterGroup(tenant, name string, members []rdma.NodeID) (GroupSpec, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.registerLocked(tenant, name, append([]rdma.NodeID(nil), members...))
}

// DrawGroup registers a named group whose k members are drawn uniformly from
// the live roster — the paper's Cosmos pattern (random k-of-n overlapping
// groups) as a service call. The draw is a seeded partial Fisher–Yates over
// the sorted roster, so a fixed directory seed and call order reproduce the
// same overlay.
func (d *Directory) DrawGroup(tenant, name string, k int) (GroupSpec, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if k <= 0 || k > len(d.roster) {
		return GroupSpec{}, fmt.Errorf("%w: need %d of %d live nodes", ErrRosterTooSmall, k, len(d.roster))
	}
	pick := append([]rdma.NodeID(nil), d.roster...)
	for i := 0; i < k; i++ {
		j := i + d.rng.Intn(len(pick)-i)
		pick[i], pick[j] = pick[j], pick[i]
	}
	return d.registerLocked(tenant, name, pick[:k:k])
}

func (d *Directory) registerLocked(tenant, name string, members []rdma.NodeID) (GroupSpec, error) {
	if _, ok := d.tenants[tenant]; !ok {
		return GroupSpec{}, fmt.Errorf("%w: %s", ErrUnknownTenant, tenant)
	}
	if len(members) == 0 {
		return GroupSpec{}, fmt.Errorf("service: group %q needs at least one member", name)
	}
	key := tenant + "/" + name
	if _, ok := d.groups[key]; ok {
		return GroupSpec{}, fmt.Errorf("%w: %s", ErrGroupExists, key)
	}
	gs := GroupSpec{
		ID:      core.GroupID(d.nextID),
		Span:    d.cfg.GroupIDSpan,
		Tenant:  tenant,
		Name:    name,
		Members: members,
	}
	d.nextID += d.cfg.GroupIDSpan
	d.groups[key] = gs
	return gs, nil
}

// Unregister drops a named group; its id range is not reused (ids are cheap
// and reuse would let a stale epoch group collide with a fresh one).
func (d *Directory) Unregister(tenant, name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.groups, tenant+"/"+name)
}

// TenantStats is a snapshot of one tenant's admission counters.
type TenantStats struct {
	Admitted  uint64 // transfers started (immediately or from the queue)
	Queued    uint64 // transfers that waited in the queue first
	Rejected  uint64 // transfers refused outright
	Completed uint64 // transfers finished (Done called)
	InFlight  int    // currently admitted
	QueuedNow int    // currently waiting
}

// Tenant is one tenant's admission-control state. Submit either starts the
// transfer now, parks it in the tenant's FIFO queue, or rejects it; Done
// frees the slot and starts the queue head.
type Tenant struct {
	dir  *Directory
	name string
	cfg  TenantConfig

	mu          sync.Mutex
	inFlight    int
	queued      []queuedXfer
	queuedBytes int64
	stats       TenantStats
}

type queuedXfer struct {
	bytes int64
	start func()
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// Config returns the tenant's registered budget.
func (t *Tenant) Config() TenantConfig { return t.cfg }

// Submit admits a transfer of the given size. If the tenant has a free
// in-flight slot, start runs before Submit returns. Otherwise the transfer
// queues (within MaxQueuedBytes) and start runs from a later Done, or the
// submission is rejected with ErrOverloaded. Exactly one Done is owed per
// nil return.
func (t *Tenant) Submit(bytes int64, start func()) error {
	t.mu.Lock()
	if t.cfg.MaxInFlight <= 0 || t.inFlight < t.cfg.MaxInFlight {
		t.inFlight++
		t.stats.Admitted++
		t.mu.Unlock()
		start()
		return nil
	}
	if t.queuedBytes+bytes <= t.cfg.MaxQueuedBytes {
		t.queued = append(t.queued, queuedXfer{bytes: bytes, start: start})
		t.queuedBytes += bytes
		t.stats.Queued++
		t.mu.Unlock()
		return nil
	}
	t.stats.Rejected++
	t.mu.Unlock()
	return fmt.Errorf("%w: %s (%d in flight, %d queued bytes)",
		ErrOverloaded, t.name, t.cfg.MaxInFlight, t.queuedBytes)
}

// Done releases one admitted transfer's slot and starts the queue head if
// one is waiting.
func (t *Tenant) Done() {
	t.mu.Lock()
	if t.inFlight > 0 {
		t.inFlight--
	}
	t.stats.Completed++
	var next *queuedXfer
	if len(t.queued) > 0 && (t.cfg.MaxInFlight <= 0 || t.inFlight < t.cfg.MaxInFlight) {
		q := t.queued[0]
		t.queued = t.queued[1:]
		t.queuedBytes -= q.bytes
		t.inFlight++
		t.stats.Admitted++
		next = &q
	}
	t.mu.Unlock()
	if next != nil {
		next.start()
	}
}

// Stats snapshots the tenant's counters.
func (t *Tenant) Stats() TenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	s.InFlight = t.inFlight
	s.QueuedNow = len(t.queued)
	return s
}
