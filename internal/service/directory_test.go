package service

import (
	"errors"
	"testing"

	"rdmc/internal/rdma"
)

func testDirectory(t *testing.T, nodes int) *Directory {
	t.Helper()
	d := NewDirectory(DirectoryConfig{Seed: 42})
	for i := 0; i < nodes; i++ {
		d.Attach(rdma.NodeID(i))
	}
	return d
}

// TestDrawGroupIsSeededAndLive pins the k-of-n draw: deterministic under a
// fixed seed, distinct members, never a detached node, and disjoint id
// ranges between registrations.
func TestDrawGroupIsSeededAndLive(t *testing.T) {
	d := testDirectory(t, 15)
	if _, err := d.AddTenant("cosmos", TenantConfig{}); err != nil {
		t.Fatal(err)
	}

	d2 := testDirectory(t, 15)
	if _, err := d2.AddTenant("cosmos", TenantConfig{}); err != nil {
		t.Fatal(err)
	}

	var prevEnd uint32
	for i := 0; i < 50; i++ {
		name := string(rune('a' + i%26)) + string(rune('0'+i/26))
		g1, err := d.DrawGroup("cosmos", name, 3)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := d2.DrawGroup("cosmos", name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(g1.Members) != 3 {
			t.Fatalf("draw %d: %d members, want 3", i, len(g1.Members))
		}
		seen := map[rdma.NodeID]bool{}
		for j, m := range g1.Members {
			if seen[m] {
				t.Fatalf("draw %d repeats member %d", i, m)
			}
			seen[m] = true
			if m != g2.Members[j] {
				t.Fatalf("draw %d diverged between same-seed directories", i)
			}
		}
		if uint32(g1.ID) < prevEnd {
			t.Fatalf("draw %d id %d overlaps previous range ending %d", i, g1.ID, prevEnd)
		}
		prevEnd = uint32(g1.ID) + g1.Span
	}

	// Detached nodes leave the draw pool.
	d.Detach(7)
	for i := 0; i < 30; i++ {
		g, err := d.DrawGroup("cosmos", "post-detach-"+string(rune('a'+i)), 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range g.Members {
			if m == 7 {
				t.Fatal("draw picked a detached node")
			}
		}
	}

	if _, err := d.DrawGroup("cosmos", "too-big", 20); !errors.Is(err, ErrRosterTooSmall) {
		t.Fatalf("oversized draw error = %v, want ErrRosterTooSmall", err)
	}
	if _, err := d.DrawGroup("nobody", "x", 3); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant error = %v, want ErrUnknownTenant", err)
	}
	if _, err := d.DrawGroup("cosmos", "a0", 3); !errors.Is(err, ErrGroupExists) {
		t.Fatalf("duplicate name error = %v, want ErrGroupExists", err)
	}
}

// TestTenantAdmission pins the reject-vs-queue policy: in-flight slots admit
// immediately, the queue absorbs up to MaxQueuedBytes, the rest is rejected,
// and Done drains the queue FIFO.
func TestTenantAdmission(t *testing.T) {
	d := testDirectory(t, 3)
	ten, err := d.AddTenant("batch", TenantConfig{MaxInFlight: 2, MaxQueuedBytes: 100})
	if err != nil {
		t.Fatal(err)
	}

	var started []int
	submit := func(id int, bytes int64) error {
		return ten.Submit(bytes, func() { started = append(started, id) })
	}

	if err := submit(1, 50); err != nil {
		t.Fatal(err)
	}
	if err := submit(2, 50); err != nil {
		t.Fatal(err)
	}
	if len(started) != 2 {
		t.Fatalf("started %v, want the two in-flight slots filled synchronously", started)
	}
	if err := submit(3, 60); err != nil { // queues (60 ≤ 100)
		t.Fatal(err)
	}
	if err := submit(4, 40); err != nil { // queues (60+40 ≤ 100)
		t.Fatal(err)
	}
	if err := submit(5, 1); !errors.Is(err, ErrOverloaded) { // 101 > 100
		t.Fatalf("over-budget submit error = %v, want ErrOverloaded", err)
	}
	if len(started) != 2 {
		t.Fatalf("queueing started work early: %v", started)
	}

	ten.Done()
	ten.Done()
	if want := []int{1, 2, 3, 4}; len(started) != 4 || started[2] != 3 || started[3] != 4 {
		t.Fatalf("started %v, want %v (FIFO drain)", started, want)
	}
	ten.Done()
	ten.Done()

	s := ten.Stats()
	if s.Admitted != 4 || s.Queued != 2 || s.Rejected != 1 || s.Completed != 4 {
		t.Fatalf("stats = %+v, want 4 admitted / 2 queued / 1 rejected / 4 completed", s)
	}
	if s.InFlight != 0 || s.QueuedNow != 0 {
		t.Fatalf("stats = %+v, want drained", s)
	}

	// Zero queue budget is the pure-reject policy.
	rej, err := d.AddTenant("interactive", TenantConfig{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rej.Submit(10, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := rej.Submit(10, func() {}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("reject-policy second submit error = %v, want ErrOverloaded", err)
	}
}
