package service

import (
	"testing"

	"rdmc/internal/core"
)

// drive runs the returned resumes immediately, the way the engine's runAll
// does outside its locks.
func drive(cbs []func()) {
	for _, cb := range cbs {
		cb()
	}
}

// TestWFQAdmitsUpToCapacity pins the fast path: admissions under capacity
// succeed without stalling, and an idle port admits even an oversized block.
func TestWFQAdmitsUpToCapacity(t *testing.T) {
	th := NewWFQThrottle(100)
	if !th.Acquire(1, 60, nil) {
		t.Fatal("first acquire within capacity refused")
	}
	if !th.Acquire(2, 40, nil) {
		t.Fatal("second acquire exactly filling capacity refused")
	}
	if th.Acquire(3, 1, func() {}) {
		t.Fatal("acquire above capacity admitted")
	}
	drive(th.Release(1, 60))
	drive(th.Release(2, 40))
	if got := th.InFlight(); got != 1 {
		t.Fatalf("in flight = %d after releases woke the waiter, want 1 (its grant)", got)
	}
	if !th.Acquire(3, 1, nil) {
		t.Fatal("re-acquire of granted bytes refused")
	}

	// Oversized single block on an idle port must not deadlock.
	drive(th.Release(3, 1))
	if !th.Acquire(4, 500, nil) {
		t.Fatal("idle port refused an oversized block")
	}
	if th.Acquire(5, 1, func() {}) {
		t.Fatal("busy port above capacity admitted a second block")
	}
}

// TestWFQWeightedSharing pins the fairness property the tenants experiment
// depends on: under sustained contention a weight-3 class is granted three
// bytes for every byte a weight-1 class gets, and ties break toward the
// earlier-created class (deterministic run to run).
func TestWFQWeightedSharing(t *testing.T) {
	// Capacity equals one block, so every grant is a drain decision and
	// both classes stay backlogged for the whole window.
	th := NewWFQThrottle(100)
	th.AddClass("heavy", 3)
	th.AddClass("light", 1)
	th.BindGroup(1, "heavy")
	th.BindGroup(2, "light")

	granted := map[core.GroupID]int{}
	const window = 4000
	var wake func(g core.GroupID) func()
	wake = func(g core.GroupID) func() {
		return func() {
			if !th.Acquire(g, 100, wake(g)) {
				return
			}
			granted[g] += 100
			if granted[1]+granted[2] < window {
				// Re-queue the class's next block before completing this
				// one, so the drain always has both classes to choose from.
				th.Acquire(g, 100, wake(g))
			}
			drive(th.Release(g, 100))
		}
	}

	// Saturate the port, queue both classes, then free it: from here every
	// grant flows through the least-served-first drain.
	if !th.Acquire(99, 100, nil) {
		t.Fatal("saturating acquire refused")
	}
	if th.Acquire(1, 100, wake(1)) || th.Acquire(2, 100, wake(2)) {
		t.Fatal("acquire on a saturated port admitted")
	}
	drive(th.Release(99, 100))

	if total := granted[1] + granted[2]; total < window {
		t.Fatalf("backlog drained only %d of %d bytes", total, window)
	}
	ratio := float64(granted[1]) / float64(granted[2])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("heavy/light grant ratio = %.2f (%d vs %d bytes), want ~3",
			ratio, granted[1], granted[2])
	}
}

// TestWFQForgetRedistributes pins teardown: forgetting a group drops its
// waiter and refunds its unclaimed grant, waking others.
func TestWFQForgetRedistributes(t *testing.T) {
	th := NewWFQThrottle(100)
	if !th.Acquire(1, 100, nil) {
		t.Fatal("acquire refused")
	}
	woke2 := false
	if th.Acquire(2, 50, func() { woke2 = true }) {
		t.Fatal("acquire above capacity admitted")
	}
	woke3 := false
	if th.Acquire(3, 50, func() { woke3 = true }) {
		t.Fatal("acquire above capacity admitted")
	}

	// Group 2 dies while waiting; releasing group 1 must wake 3, not 2.
	drive(th.Forget(2))
	drive(th.Release(1, 100))
	if woke2 {
		t.Error("forgotten group's waiter still resumed")
	}
	if !woke3 {
		t.Error("surviving waiter never resumed")
	}

	// Group 3 dies between wakeup and re-acquire: its grant must be
	// refunded so the port is genuinely idle again.
	drive(th.Forget(3))
	if got := th.InFlight(); got != 0 {
		t.Fatalf("in flight = %d after forgetting grant holder, want 0", got)
	}
	if th.Waiting() != 0 {
		t.Fatalf("waiters = %d, want 0", th.Waiting())
	}
}

// TestWFQSpanBinding pins the session-epoch binding: every id in a bound
// span routes to its class, per-id bindings win, and ids outside all spans
// fall to the default class.
func TestWFQSpanBinding(t *testing.T) {
	th := NewWFQThrottle(10)
	th.AddClass("a", 2)
	th.AddClass("b", 5)
	th.BindSpan(1000, 100, "a")
	th.BindGroup(1050, "b")

	th.mu.Lock()
	defer th.mu.Unlock()
	if c := th.classOf(1000); c.name != "a" {
		t.Errorf("span base routed to %q, want a", c.name)
	}
	if c := th.classOf(1099); c.name != "a" {
		t.Errorf("span end routed to %q, want a", c.name)
	}
	if c := th.classOf(1100); c.name != "_default" {
		t.Errorf("past-span id routed to %q, want default", c.name)
	}
	if c := th.classOf(1050); c.name != "b" {
		t.Errorf("per-id binding routed to %q, want b (ids beat spans)", c.name)
	}
	if c := th.classOf(7); c.name != "_default" {
		t.Errorf("unbound id routed to %q, want default", c.name)
	}
}
