package simhost

import (
	"testing"
	"time"

	"rdmc/internal/core"
	"rdmc/internal/rdma"
	"rdmc/internal/simnet"
)

func testConfig(n int) Config {
	return Config{
		Cluster: simnet.ClusterConfig{
			Nodes:         n,
			LinkBandwidth: 12.5e9,
			Latency:       1.5e-6,
			CPU:           simnet.DefaultCPUConfig(),
		},
		Seed: 1,
	}
}

func TestGridWiresEngines(t *testing.T) {
	grid, err := New(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if grid.Nodes() != 3 {
		t.Fatalf("nodes = %d", grid.Nodes())
	}
	for i := 0; i < 3; i++ {
		if got := grid.Engine(i).NodeID(); got != rdma.NodeID(i) {
			t.Errorf("engine %d has node id %d", i, got)
		}
	}
}

func TestGridControlPreservesSenderOrder(t *testing.T) {
	grid, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	ctrl := &gridControl{grid: grid, local: 0}
	sink := &gridControl{grid: grid, local: 1}
	var seqs []int
	sink.SetHandler(func(from rdma.NodeID, m core.CtrlMsg) {
		if from != 0 {
			t.Errorf("from = %d", from)
		}
		seqs = append(seqs, m.Seq)
	})
	for i := 0; i < 10; i++ {
		if err := ctrl.Send(1, core.CtrlMsg{Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	grid.Run()
	for i, s := range seqs {
		if s != i {
			t.Fatalf("control messages reordered: %v", seqs)
		}
	}
}

func TestGridHostClockAndCopy(t *testing.T) {
	grid, err := New(Config{
		Cluster: simnet.ClusterConfig{
			Nodes:         1,
			LinkBandwidth: 1e9,
			CPU:           simnet.CPUConfig{Mode: simnet.ModePolling},
		},
		CopyBandwidth: 1e6, // 1 MB/s so the copy charge is visible
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	host := &gridHost{grid: grid, local: 0, copyBW: 1e6}
	var at time.Duration
	host.ChargeCopy(1e6, func() { at = host.Now() })
	grid.Run()
	if at != time.Second {
		t.Errorf("copy of 1 MB at 1 MB/s finished at %v, want 1s", at)
	}
}

func TestGridFailNodeNotifiesEngines(t *testing.T) {
	grid, err := New(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	members := []rdma.NodeID{0, 1, 2}
	var failures int
	for i := 0; i < 3; i++ {
		_, err := grid.Engine(i).CreateGroup(1, members, core.GroupConfig{
			BlockSize: 1024,
			Callbacks: core.Callbacks{Failure: func(error) { failures++ }},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	grid.FailNode(2)
	grid.Run()
	if failures != 2 {
		t.Errorf("failure callbacks = %d, want 2 survivors", failures)
	}
}

func TestGridRejectsBadCluster(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}
