package simhost

import (
	"testing"
	"time"

	"rdmc/internal/core"
	"rdmc/internal/rdma"
	"rdmc/internal/rdma/reliab"
	"rdmc/internal/simnet"
)

func testConfig(n int) Config {
	return Config{
		Cluster: simnet.ClusterConfig{
			Nodes:         n,
			LinkBandwidth: 12.5e9,
			Latency:       1.5e-6,
			CPU:           simnet.DefaultCPUConfig(),
		},
		Seed: 1,
	}
}

func TestGridWiresEngines(t *testing.T) {
	grid, err := New(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if grid.Nodes() != 3 {
		t.Fatalf("nodes = %d", grid.Nodes())
	}
	for i := 0; i < 3; i++ {
		if got := grid.Engine(i).NodeID(); got != rdma.NodeID(i) {
			t.Errorf("engine %d has node id %d", i, got)
		}
	}
}

func TestGridControlPreservesSenderOrder(t *testing.T) {
	grid, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	ctrl := &gridControl{grid: grid, local: 0}
	sink := &gridControl{grid: grid, local: 1}
	var seqs []int
	sink.SetHandler(func(from rdma.NodeID, m core.CtrlMsg) {
		if from != 0 {
			t.Errorf("from = %d", from)
		}
		seqs = append(seqs, m.Seq)
	})
	for i := 0; i < 10; i++ {
		if err := ctrl.Send(1, core.CtrlMsg{Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	grid.Run()
	for i, s := range seqs {
		if s != i {
			t.Fatalf("control messages reordered: %v", seqs)
		}
	}
}

func TestGridHostClockAndCopy(t *testing.T) {
	grid, err := New(Config{
		Cluster: simnet.ClusterConfig{
			Nodes:         1,
			LinkBandwidth: 1e9,
			CPU:           simnet.CPUConfig{Mode: simnet.ModePolling},
		},
		CopyBandwidth: 1e6, // 1 MB/s so the copy charge is visible
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	host := &gridHost{grid: grid, local: 0, copyBW: 1e6}
	var at time.Duration
	host.ChargeCopy(1e6, func() { at = host.Now() })
	grid.Run()
	if at != time.Second {
		t.Errorf("copy of 1 MB at 1 MB/s finished at %v, want 1s", at)
	}
}

func TestGridFailNodeNotifiesEngines(t *testing.T) {
	grid, err := New(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	members := []rdma.NodeID{0, 1, 2}
	var failures int
	for i := 0; i < 3; i++ {
		_, err := grid.Engine(i).CreateGroup(1, members, core.GroupConfig{
			BlockSize: 1024,
			Callbacks: core.Callbacks{Failure: func(error) { failures++ }},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	grid.FailNode(2)
	grid.Run()
	if failures != 2 {
		t.Errorf("failure callbacks = %d, want 2 survivors", failures)
	}
}

func TestGridRejectsBadCluster(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

// TestGridReliabDeliversOverLossyWAN is the end-to-end seam test for the
// loss-tolerant stack: a 3-region lossy fabric under a Reliab-wrapped grid
// must deliver a full multicast (where the bare grid would break), with the
// loss showing up as retransmissions in ReliabStats.
func TestGridReliabDeliversOverLossyWAN(t *testing.T) {
	cfg := Config{
		Cluster: simnet.ClusterConfig{
			Nodes:         6,
			LinkBandwidth: 1.25e9,
			Latency:       5e-6,
			CPU:           simnet.DefaultCPUConfig(),
			RetryTimeout:  0.05,
			Fabric: &simnet.FabricProfile{
				Seed:    7,
				Regions: []int{0, 0, 1, 1, 2, 2},
				RTT: [][]float64{
					{0.0002, 0.030, 0.080},
					{0.030, 0.0002, 0.050},
					{0.080, 0.050, 0.0002},
				},
				LossRate: 0.02,
			},
		},
		Seed:   1,
		Reliab: &reliab.Config{RTO: 0.15},
	}
	grid, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	members := []rdma.NodeID{0, 1, 2, 3, 4, 5}
	var delivered, failures int
	var root *core.Group
	for i := 0; i < 6; i++ {
		g, err := grid.Engine(i).CreateGroup(1, members, core.GroupConfig{
			BlockSize:  64 << 10,
			SendWindow: 1,
			RecvWindow: 1,
			Callbacks: core.Callbacks{
				Completion: func(int, []byte, int) { delivered++ },
				Failure:    func(error) { failures++ },
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if g.Rank() == 0 {
			root = g
		}
	}
	if err := root.SendSized(1 << 20); err != nil {
		t.Fatal(err)
	}
	grid.Run()
	if failures != 0 {
		t.Fatalf("%d engines failed: loss should be absorbed by the reliability layer", failures)
	}
	if delivered != 6 {
		t.Fatalf("delivered = %d of 6", delivered)
	}
	st := grid.ReliabStats()
	if st.Retransmits == 0 {
		t.Error("2% loss on a WAN produced no retransmissions")
	}
	if st.DataFrames == 0 || st.AcksReceived == 0 {
		t.Errorf("stats look unwired: %+v", st)
	}
}
