// Package simhost assembles a complete simulated RDMC deployment: a simnet
// cluster, one simnic provider plus control channel and host services per
// node, and one protocol engine per node, all driven by a single virtual
// clock. The benchmark harness and the public library's simulation
// constructors build on it.
package simhost

import (
	"fmt"
	"time"

	"rdmc/internal/core"
	"rdmc/internal/obs"
	"rdmc/internal/rdma"
	"rdmc/internal/rdma/reliab"
	"rdmc/internal/rdma/simnic"
	"rdmc/internal/schedule"
	"rdmc/internal/simnet"
)

// Config describes a simulated deployment.
type Config struct {
	// Cluster is the hardware model (see simnet.ClusterConfig).
	Cluster simnet.ClusterConfig
	// CopyBandwidth models critical-path memory copies, in bytes per
	// second. Zero selects 5 GB/s, matching the paper's Table 1 copy rate
	// (1 MB in ≈215 µs).
	CopyBandwidth float64
	// Seed fixes the virtual run's randomness.
	Seed int64
	// Offload enables CORE-Direct-style NIC offload on every node
	// (Figure 12's cross-channel mode).
	Offload bool
	// Observer, when non-nil, instruments every engine and NIC in the grid.
	// The deployment shares one sink: the virtual clock is global, and each
	// structured event carries its node id, so one ring holds the whole
	// grid's timeline (exactly what the Chrome-trace exporter wants).
	Observer *obs.Obs
	// Reliab, when non-nil, wraps every node's NIC in the selective-
	// retransmit reliability layer (internal/rdma/reliab) and switches the
	// simulated NICs into loss-tolerant mode, so a lossy FabricProfile
	// (Cluster.Fabric) costs retransmissions instead of broken queue pairs.
	// The config's Timer is replaced with the grid's virtual clock; a zero
	// MaxPayload defaults to 4 KiB (simulation frames carry metadata, not
	// payload bytes); a zero Seed derives per-node seeds from the grid seed.
	Reliab *reliab.Config
}

// Grid is a simulated deployment of engines sharing one virtual clock.
type Grid struct {
	sim      *simnet.Sim
	cluster  *simnet.Cluster
	network  *simnic.Network
	engines  []*core.Engine
	reliabs  []*reliab.Provider
	handlers []func(from rdma.NodeID, m core.CtrlMsg)
}

// New builds the deployment.
func New(cfg Config) (*Grid, error) {
	if cfg.CopyBandwidth == 0 {
		cfg.CopyBandwidth = 5e9
	}
	sim := simnet.NewSim(cfg.Seed)
	cluster, err := simnet.NewCluster(sim, cfg.Cluster)
	if err != nil {
		return nil, fmt.Errorf("simhost: %w", err)
	}
	g := &Grid{
		sim:      sim,
		cluster:  cluster,
		network:  simnic.NewNetwork(cluster),
		handlers: make([]func(rdma.NodeID, core.CtrlMsg), cfg.Cluster.Nodes),
	}
	if cfg.Reliab != nil {
		g.network.SetTolerant(true)
	}
	for i := 0; i < cfg.Cluster.Nodes; i++ {
		id := rdma.NodeID(i)
		provider := g.network.Provider(id)
		provider.SetOffload(cfg.Offload)
		if cfg.Observer != nil {
			provider.SetObserver(cfg.Observer)
		}
		var nic rdma.Provider = provider
		if cfg.Reliab != nil {
			rcfg := *cfg.Reliab
			rcfg.Timer = func(d float64, fn func()) func() {
				ev := sim.After(d, fn)
				return ev.Cancel
			}
			if rcfg.MaxPayload == 0 {
				rcfg.MaxPayload = 4 << 10
			}
			if rcfg.Seed == 0 {
				rcfg.Seed = cfg.Seed * 1000
			}
			rcfg.Seed += int64(i) // desynchronize per-node RTO jitter
			rp := reliab.Wrap(provider, rcfg)
			g.reliabs = append(g.reliabs, rp)
			nic = rp
		}
		ctrl := &gridControl{grid: g, local: id}
		host := &gridHost{grid: g, local: id, copyBW: cfg.CopyBandwidth}
		engine := core.NewEngine(nic, ctrl, host)
		if cfg.Observer != nil {
			engine.SetObserver(cfg.Observer)
		}
		engine.SetContentionSampler(g)
		g.engines = append(g.engines, engine)
	}
	return g, nil
}

// Sim returns the virtual clock.
func (g *Grid) Sim() *simnet.Sim { return g.sim }

// Cluster returns the simulated hardware.
func (g *Grid) Cluster() *simnet.Cluster { return g.cluster }

// Network returns the simulated NIC fabric, for components that share the
// engines' providers (status tables, small-message groups).
func (g *Grid) Network() *simnic.Network { return g.network }

// Engine returns node i's protocol engine.
func (g *Grid) Engine(i int) *core.Engine { return g.engines[i] }

// ReliabStats sums the reliability layer's counters across every node; the
// zero value when the deployment runs without Config.Reliab.
func (g *Grid) ReliabStats() reliab.Stats {
	var total reliab.Stats
	for _, p := range g.reliabs {
		total.Add(p.Stats())
	}
	return total
}

// Nodes returns the deployment size.
func (g *Grid) Nodes() int { return len(g.engines) }

// Run drains the event queue and returns the virtual end time in seconds.
func (g *Grid) Run() float64 { return g.sim.Run() }

// RunUntil executes events up to the virtual deadline (seconds), reporting
// whether the queue drained.
func (g *Grid) RunUntil(deadline float64) bool { return g.sim.RunUntil(deadline) }

// FailNode injects a node crash (all its links break) and informs the
// surviving engines' failure detectors, as the bootstrap mesh would.
func (g *Grid) FailNode(i int) {
	id := simnet.NodeID(i)
	g.cluster.FailNode(id)
	for j, e := range g.engines {
		if j != i {
			e.NotifyFailure(rdma.NodeID(i))
		}
	}
}

// SampleContention implements core.ContentionSampler: a zero-cost census of
// the fluid model's live flows, quantified as demand/capacity pressure. The
// fabric's max-min allocation pins a used trunk at its capacity whenever any
// flow crosses it, so achieved rate carries no contention information —
// what the planner needs is how many NIC-rate flows are competing for each
// trunk, which is exactly TrunkPressure. Host pressure is the deepest flow
// queue on any NIC port, in units of "full-rate flows per port".
func (g *Grid) SampleContention() schedule.Contention {
	var c schedule.Contention
	if racks := g.cluster.Racks(); racks > 0 {
		c.TrunkUp = make([]float64, racks)
		c.TrunkDown = make([]float64, racks)
		for r := 0; r < racks; r++ {
			c.TrunkUp[r], c.TrunkDown[r] = g.cluster.TrunkPressure(r)
		}
	}
	for i := 0; i < g.cluster.Config().Nodes; i++ {
		tx, rx := g.cluster.NodePortFlows(simnet.NodeID(i))
		if f := float64(tx); f > c.HostTx {
			c.HostTx = f
		}
		if f := float64(rx); f > c.HostRx {
			c.HostRx = f
		}
	}
	return c
}

var _ core.ContentionSampler = (*Grid)(nil)

// gridControl carries control messages over the cluster's latency-only
// channel, preserving per-sender order (simultaneous events fire in
// scheduling order).
type gridControl struct {
	grid  *Grid
	local rdma.NodeID
}

var _ core.Control = (*gridControl)(nil)

// Send implements core.Control.
func (c *gridControl) Send(to rdma.NodeID, m core.CtrlMsg) error {
	src, dst := c.local, to
	c.grid.cluster.Ctrl(simnet.NodeID(src), simnet.NodeID(dst), func() {
		if h := c.grid.handlers[dst]; h != nil {
			h(src, m)
		}
	})
	return nil
}

// SetHandler implements core.Control.
func (c *gridControl) SetHandler(fn func(from rdma.NodeID, m core.CtrlMsg)) {
	c.grid.handlers[c.local] = fn
}

// gridHost provides virtual time and the memory-copy cost model.
type gridHost struct {
	grid   *Grid
	local  rdma.NodeID
	copyBW float64
}

var _ core.Host = (*gridHost)(nil)

// Now implements core.Host.
func (h *gridHost) Now() time.Duration { return h.grid.sim.NowDuration() }

// ChargeCopy implements core.Host. The copy overlaps the transfer (§4.2), so
// it does not occupy the protocol CPU; fn simply fires when the modelled
// memcpy would finish.
func (h *gridHost) ChargeCopy(n int, fn func()) {
	h.grid.sim.After(float64(n)/h.copyBW, fn)
}
