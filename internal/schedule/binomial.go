package schedule

import (
	"fmt"
	"math/bits"
)

// BinomialPipelineGen generates the paper's main algorithm (§4.3–4.4): a
// virtual hypercube overlay of dimension l in which up to l distinct blocks
// are relayed concurrently. Every node repeatedly performs one send and one
// receive per step until, on the last step, all nodes simultaneously receive
// their final block.
//
// For power-of-two group sizes the plan comes from the paper's closed-form
// send scheme (§4.4); a property test cross-checks it against an independent
// synchronous executor of the paper's exchange rules. For other sizes —
// which the paper handles with "straightforward extensions" it omits — the
// hypercube overlay generalizes to a directed circulant: in step j, rank i
// sends one block to (i+2^(j%l)) mod n and receives one from
// (i−2^(j%l)) mod n, so every rank keeps the full-duplex one-in/one-out
// discipline at any group size. The block rule is unchanged: the root
// injects block min(j, k−1), relayers forward the highest block they hold
// that their target lacks.
type BinomialPipelineGen struct{}

var _ Generator = BinomialPipelineGen{}

// Name implements Generator.
func (BinomialPipelineGen) Name() string { return BinomialPipeline.String() }

// Plan implements Generator.
func (BinomialPipelineGen) Plan(nodes, blocks int) Plan {
	checkArgs(nodes, blocks)
	if nodes == 1 {
		return Plan{Nodes: 1, Blocks: blocks}
	}
	if nodes&(nodes-1) == 0 {
		return closedFormPlan(nodes, blocks)
	}
	return Plan{Nodes: nodes, Blocks: blocks, Transfers: circulantPlan(nodes, blocks, nil)}
}

// NodePlan implements Generator. For power-of-two sizes rank i's sends come
// straight from ClosedFormSend, and its receives from the mirrored sender
// relation: the partner i⊕2^(j mod l) sending at step j targets exactly i,
// so evaluating the closed form for the partner at every step enumerates
// rank i's k receives. One rank's plan therefore costs O(l+k) time with
// exact-size allocations and no global plan. Non-power-of-two sizes have no
// closed form; their circulant plan is computed once per (n, k) in the
// process-wide cache and shared by every caller.
func (BinomialPipelineGen) NodePlan(nodes, blocks, rank int) NodePlan {
	checkArgs(nodes, blocks)
	checkRank(nodes, rank)
	if nodes == 1 {
		planFast()
		return NodePlan{}
	}
	if nodes&(nodes-1) != 0 {
		return cachedNodePlan(planKey{algo: "circulant", nodes: nodes, blocks: blocks}, rank, func() Plan {
			return BinomialPipelineGen{}.Plan(nodes, blocks)
		})
	}
	planFast()
	l := log2Ceil(nodes)
	steps := l + blocks - 1
	nSends := 0
	for j := 0; j < steps; j++ {
		if _, _, ok := ClosedFormSend(l, blocks, rank, j); ok {
			nSends++
		}
	}
	var np NodePlan
	if nSends > 0 {
		np.Sends = make([]Transfer, 0, nSends)
		for j := 0; j < steps; j++ {
			if b, to, ok := ClosedFormSend(l, blocks, rank, j); ok {
				np.Sends = append(np.Sends, Transfer{Round: j, From: rank, To: to, Block: b})
			}
		}
	}
	if rank != 0 {
		// Every non-root rank receives each block exactly once: k receives.
		np.Recvs = make([]Transfer, 0, blocks)
		for j := 0; j < steps; j++ {
			partner := rank ^ (1 << (j % l))
			if b, _, ok := ClosedFormSend(l, blocks, partner, j); ok {
				np.Recvs = append(np.Recvs, Transfer{Round: j, From: partner, To: rank, Block: b})
			}
		}
	}
	return np
}

// ClosedFormSend evaluates the paper's §4.4 send scheme directly: at step j
// in a 2^l-node group sending k blocks, node i sends block b to node
// i⊕2^(j%l). ok is false when the node sends nothing that step (the paper's
// "nothing" cases). Steps run from 0 to l+k−2 inclusive.
func ClosedFormSend(l, k, i, j int) (b, to int, ok bool) {
	d := j % l
	to = i ^ (1 << d)
	rot := rotr(uint(i), d, l)
	switch {
	case rot == 0:
		return min(j, k-1), to, true
	case rot == 1:
		// The node's neighbour along this dimension is the sender.
		return 0, to, false
	default:
		r := bits.TrailingZeros(rot)
		if j-l+r >= 0 {
			return min(j-l+r, k-1), to, true
		}
		return 0, to, false
	}
}

// closedFormPlan expands the §4.4 scheme into a full plan for n = 2^l nodes.
func closedFormPlan(n, k int) Plan {
	l := log2Ceil(n)
	p := Plan{Nodes: n, Blocks: k}
	// Every transfer delivers one new block to one of the n−1 receivers.
	p.Transfers = make([]Transfer, 0, (n-1)*k)
	steps := l + k - 1
	for j := 0; j < steps; j++ {
		for i := 0; i < n; i++ {
			b, to, ok := ClosedFormSend(l, k, i, j)
			if !ok {
				continue
			}
			p.Transfers = append(p.Transfers, Transfer{Round: j, From: i, To: to, Block: b})
		}
	}
	return p
}

// rotr right-rotates the low l bits of x by r positions.
func rotr(x uint, r, l int) uint {
	mask := uint(1)<<l - 1
	x &= mask
	if r == 0 {
		return x
	}
	return (x>>r | x<<(l-r)) & mask
}

// circulantPlan runs the generalized pipeline round by round for arbitrary
// n ≥ 2, recording the transfers it performs; the plan is complete by
// construction because the loop runs until every node holds every block.
//
// avail optionally delays the root's holdings: the root holds block b only
// on rounds strictly after avail[b] (nil, or -1 entries, mean "from the
// start"). The hybrid generator uses this to seed a rack pipeline from its
// leader as the leader-level pipeline delivers.
func circulantPlan(n, k int, avail []int) []Transfer {
	l := log2Ceil(n)
	has := newHoldings(n, k)

	maxAvail := 0
	granted := make([]bool, k)
	if avail == nil {
		for b := range granted {
			granted[b] = true
		}
	} else {
		// Withdraw the root's blocks; re-grant per round as they arrive.
		has.count[0] = 0
		for i := range has.bits[:has.words] {
			has.bits[i] = 0
		}
		for _, a := range avail {
			if a > maxAvail {
				maxAvail = a
			}
		}
	}

	limit := maxAvail + 4*(l+k) + 64
	// Every transfer delivers one new block to one of the n−1 non-root
	// nodes, so the output size is exactly (n−1)·k; the per-round delivery
	// scratch is hoisted out of the loop and reused across rounds.
	out := make([]Transfer, 0, (n-1)*k)
	type delivery struct{ node, block int }
	arrived := make([]delivery, 0, n)
	for round := 0; !has.complete(); round++ {
		if round > limit {
			panic(fmt.Sprintf("schedule: binomial pipeline failed to converge for n=%d k=%d", n, k))
		}
		if avail != nil {
			for b := 0; b < k; b++ {
				if !granted[b] && avail[b] < round {
					granted[b] = true
					has.set(0, b)
				}
			}
		}
		d := round % l
		arrived = arrived[:0]
		for i := 0; i < n; i++ {
			to := (i + 1<<d) % n
			if to == 0 || to == i {
				continue // the root needs nothing
			}
			b := pickBlock(has, i, to, round, k)
			if b < 0 {
				continue
			}
			out = append(out, Transfer{Round: round, From: i, To: to, Block: b})
			arrived = append(arrived, delivery{node: to, block: b})
		}
		for _, a := range arrived {
			has.set(a.node, a.block)
		}
	}
	return out
}

// pickBlock selects the block rank from sends to rank to at the given round,
// or -1 for none: the root injects the round's fresh block when the target
// lacks it, otherwise (and for relayers always) the sender forwards the
// highest block it holds that the target lacks.
func pickBlock(h holdings, from, to, round, k int) int {
	if from == 0 {
		if fresh := min(round, k-1); h.get(0, fresh) && !h.get(to, fresh) {
			return fresh
		}
	}
	for b := k - 1; b >= 0; b-- {
		if h.get(from, b) && !h.get(to, b) {
			return b
		}
	}
	return -1
}

// hypercubePlan is an independent synchronous executor of the paper's §4.4
// exchange rules for power-of-two n, used by tests as an executable
// specification to cross-check closedFormPlan: at step j each node exchanges
// with its neighbour along hypercube dimension j mod l, the root sends block
// min(j, k−1) and every other node its highest held block the partner lacks.
func hypercubePlan(n, k int) Plan {
	if n&(n-1) != 0 {
		panic("schedule: hypercubePlan requires power-of-two n")
	}
	l := log2Ceil(n)
	p := Plan{Nodes: n, Blocks: k}
	has := newHoldings(n, k)
	limit := 4*(l+k) + 64
	for round := 0; !has.complete(); round++ {
		if round > limit {
			panic(fmt.Sprintf("schedule: hypercube executor failed to converge for n=%d k=%d", n, k))
		}
		d := round % l
		type delivery struct{ node, block int }
		var arrived []delivery
		for i := 0; i < n; i++ {
			to := i ^ (1 << d)
			if to == 0 {
				continue
			}
			b := pickBlock(has, i, to, round, k)
			if b < 0 {
				continue
			}
			p.Transfers = append(p.Transfers, Transfer{Round: round, From: i, To: to, Block: b})
			arrived = append(arrived, delivery{node: to, block: b})
		}
		for _, a := range arrived {
			has.set(a.node, a.block)
		}
	}
	return p
}

// holdings is a per-rank block bitset.
type holdings struct {
	k     int
	words int
	bits  []uint64
	count []int
}

func newHoldings(n, k int) holdings {
	h := holdings{
		k:     k,
		words: (k + 63) / 64,
		count: make([]int, n),
	}
	h.bits = make([]uint64, n*h.words)
	for b := 0; b < k; b++ {
		h.setRaw(0, b)
	}
	h.count[0] = k
	return h
}

func (h holdings) get(node, b int) bool {
	return h.bits[node*h.words+b/64]&(1<<(b%64)) != 0
}

func (h holdings) setRaw(node, b int) {
	h.bits[node*h.words+b/64] |= 1 << (b % 64)
}

func (h holdings) set(node, b int) {
	if !h.get(node, b) {
		h.setRaw(node, b)
		h.count[node]++
	}
}

func (h holdings) complete() bool {
	for _, c := range h.count {
		if c != h.k {
			return false
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
