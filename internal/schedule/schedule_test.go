package schedule

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestPlanValidateAcceptsTrivialPlans(t *testing.T) {
	if err := (Plan{Nodes: 1, Blocks: 5}).Validate(); err != nil {
		t.Errorf("single-node empty plan: %v", err)
	}
	p := Plan{Nodes: 2, Blocks: 1, Transfers: []Transfer{{Round: 0, From: 0, To: 1, Block: 0}}}
	if err := p.Validate(); err != nil {
		t.Errorf("minimal plan: %v", err)
	}
}

func TestPlanValidateRejectsBadPlans(t *testing.T) {
	tests := []struct {
		name string
		plan Plan
		want string
	}{
		{"no nodes", Plan{Nodes: 0, Blocks: 1}, "0 nodes"},
		{"no blocks", Plan{Nodes: 2, Blocks: 0}, "0 blocks"},
		{
			"missing delivery",
			Plan{Nodes: 3, Blocks: 1, Transfers: []Transfer{{Round: 0, From: 0, To: 1, Block: 0}}},
			"never receives",
		},
		{
			"duplicate delivery",
			Plan{Nodes: 2, Blocks: 1, Transfers: []Transfer{
				{Round: 0, From: 0, To: 1, Block: 0},
				{Round: 1, From: 0, To: 1, Block: 0},
			}},
			"duplicate",
		},
		{
			"causality violation",
			Plan{Nodes: 3, Blocks: 1, Transfers: []Transfer{
				{Round: 0, From: 1, To: 2, Block: 0},
				{Round: 1, From: 0, To: 1, Block: 0},
			}},
			"causality",
		},
		{
			"same-round relay",
			Plan{Nodes: 3, Blocks: 1, Transfers: []Transfer{
				{Round: 0, From: 0, To: 1, Block: 0},
				{Round: 0, From: 1, To: 2, Block: 0},
			}},
			"causality",
		},
		{
			"send to root",
			Plan{Nodes: 2, Blocks: 1, Transfers: []Transfer{
				{Round: 0, From: 0, To: 1, Block: 0},
				{Round: 1, From: 1, To: 0, Block: 0},
			}},
			"to root",
		},
		{
			"self transfer",
			Plan{Nodes: 2, Blocks: 1, Transfers: []Transfer{{Round: 0, From: 1, To: 1, Block: 0}}},
			"self",
		},
		{
			"rank out of range",
			Plan{Nodes: 2, Blocks: 1, Transfers: []Transfer{{Round: 0, From: 0, To: 7, Block: 0}}},
			"out of range",
		},
		{
			"block out of range",
			Plan{Nodes: 2, Blocks: 1, Transfers: []Transfer{{Round: 0, From: 0, To: 1, Block: 3}}},
			"block out of range",
		},
		{
			"negative round",
			Plan{Nodes: 2, Blocks: 1, Transfers: []Transfer{{Round: -1, From: 0, To: 1, Block: 0}}},
			"negative round",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.plan.Validate()
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("Validate() = %v, want substring %q", err, tt.want)
			}
		})
	}
}

func TestPlanValidateStrictCatchesDoubleSend(t *testing.T) {
	p := Plan{Nodes: 3, Blocks: 2, Transfers: []Transfer{
		{Round: 0, From: 0, To: 1, Block: 0},
		{Round: 0, From: 0, To: 2, Block: 0},
		{Round: 1, From: 0, To: 1, Block: 1},
		{Round: 1, From: 0, To: 2, Block: 1},
	}}
	if err := p.Validate(); err != nil {
		t.Fatalf("base validation: %v", err)
	}
	err := p.ValidateStrict()
	if err == nil || !strings.Contains(err.Error(), "sends twice") {
		t.Errorf("ValidateStrict() = %v, want double-send error", err)
	}
}

func TestPlanValidateStrictCatchesDoubleRecv(t *testing.T) {
	p := Plan{Nodes: 3, Blocks: 2, Transfers: []Transfer{
		{Round: 0, From: 0, To: 1, Block: 0},
		{Round: 1, From: 0, To: 2, Block: 0},
		{Round: 2, From: 0, To: 1, Block: 1},
		{Round: 2, From: 2, To: 1, Block: 0},
	}}
	if err := p.ValidateStrict(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		// The duplicate-delivery check fires first here; build a real
		// double-recv instead.
		p = Plan{Nodes: 4, Blocks: 2, Transfers: []Transfer{
			{Round: 0, From: 0, To: 1, Block: 0},
			{Round: 1, From: 0, To: 2, Block: 1},
			{Round: 2, From: 1, To: 3, Block: 0},
			{Round: 2, From: 2, To: 3, Block: 1},
			{Round: 3, From: 0, To: 1, Block: 1},
			{Round: 3, From: 0, To: 2, Block: 0},
		}}
		if err := p.Validate(); err != nil {
			t.Fatalf("base validation: %v", err)
		}
		err := p.ValidateStrict()
		if err == nil || !strings.Contains(err.Error(), "receives twice") {
			t.Errorf("ValidateStrict() = %v, want double-recv error", err)
		}
	}
}

// TestAllGeneratorsProduceValidPlans sweeps every built-in algorithm across a
// grid of group and block sizes and checks the full plan invariants.
func TestAllGeneratorsProduceValidPlans(t *testing.T) {
	blockCounts := []int{1, 2, 3, 7, 16, 64}
	for _, a := range Algorithms() {
		gen := New(a)
		for nodes := 1; nodes <= 33; nodes++ {
			for _, k := range blockCounts {
				p := gen.Plan(nodes, k)
				if p.Nodes != nodes || p.Blocks != k {
					t.Fatalf("%s(%d,%d): plan reports %d nodes %d blocks", gen.Name(), nodes, k, p.Nodes, p.Blocks)
				}
				if err := p.ValidateStrict(); err != nil {
					t.Fatalf("%s(%d,%d): %v", gen.Name(), nodes, k, err)
				}
			}
		}
	}
}

func TestGeneratorsPanicOnInvalidArgs(t *testing.T) {
	for _, a := range Algorithms() {
		gen := New(a)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic for zero nodes", gen.Name())
				}
			}()
			gen.Plan(0, 1)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic for zero blocks", gen.Name())
				}
			}()
			gen.Plan(2, 0)
		}()
	}
}

func TestNewPanicsOnUnknownAlgorithm(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(Algorithm(0))
}

func TestAlgorithmStrings(t *testing.T) {
	tests := []struct {
		a    Algorithm
		want string
	}{
		{Sequential, "sequential send"},
		{Chain, "chain send"},
		{BinomialTree, "binomial tree"},
		{BinomialPipeline, "binomial pipeline"},
		{MPIScatterAllgather, "mpi bcast"},
		{Algorithm(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.a.String(); got != tt.want {
			t.Errorf("Algorithm(%d).String() = %q, want %q", tt.a, got, tt.want)
		}
	}
}

func TestSequentialRoundCount(t *testing.T) {
	p := New(Sequential).Plan(5, 7)
	if got, want := p.Rounds(), 4*7; got != want {
		t.Errorf("sequential rounds = %d, want %d", got, want)
	}
	if got, want := len(p.Transfers), 4*7; got != want {
		t.Errorf("sequential transfers = %d, want %d", got, want)
	}
}

func TestChainRoundCount(t *testing.T) {
	// Chain over n nodes with k blocks pipelines in n+k-2 rounds.
	p := New(Chain).Plan(6, 10)
	if got, want := p.Rounds(), 6+10-2; got != want {
		t.Errorf("chain rounds = %d, want %d", got, want)
	}
}

func TestBinomialTreeRoundCount(t *testing.T) {
	// log2(n) whole-message stages of k rounds each.
	p := New(BinomialTree).Plan(8, 5)
	if got, want := p.Rounds(), 3*5; got != want {
		t.Errorf("tree rounds = %d, want %d", got, want)
	}
}

func TestBinomialPipelineRoundCountPowerOfTwo(t *testing.T) {
	// The paper's l + k - 1 bound, exactly.
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		for _, k := range []int{1, 4, 20} {
			p := New(BinomialPipeline).Plan(n, k)
			want := log2Ceil(n) + k - 1
			if got := p.Rounds(); got != want {
				t.Errorf("pipeline(%d,%d) rounds = %d, want l+k-1 = %d", n, k, got, want)
			}
		}
	}
}

func TestBinomialPipelineRoundCountGeneralN(t *testing.T) {
	// The paper's power-of-two bound is l+k-1. The circulant
	// generalization for other sizes pays an O(l) tail (a looser result
	// than the paper's claimed one or two extra steps, costing a few
	// percent at realistic block counts); hold it to that envelope.
	for n := 3; n <= 70; n++ {
		for _, k := range []int{1, 5, 32} {
			p := New(BinomialPipeline).Plan(n, k)
			l := log2Ceil(n)
			if got, max := p.Rounds(), l+k-1+2*l+2; got > max {
				t.Errorf("pipeline(%d,%d) rounds = %d, want ≤ %d", n, k, got, max)
			}
		}
	}
}

// TestHypercubeExecutorMatchesClosedForm is the central equivalence
// property: an independent synchronous executor of the paper's exchange
// rules and the §4.4 closed form must produce the identical transfer
// multiset for every power-of-two size.
func TestHypercubeExecutorMatchesClosedForm(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		for _, k := range []int{1, 2, 3, 8, 17} {
			closed := closedFormPlan(n, k)
			greedy := hypercubePlan(n, k)
			cset := transferSet(closed)
			gset := transferSet(greedy)
			for tr := range cset {
				if !gset[tr] {
					t.Fatalf("n=%d k=%d: closed-form transfer %v missing from greedy", n, k, tr)
				}
			}
			for tr := range gset {
				if !cset[tr] {
					t.Fatalf("n=%d k=%d: greedy transfer %v absent from closed form", n, k, tr)
				}
			}
		}
	}
}

func transferSet(p Plan) map[Transfer]bool {
	s := make(map[Transfer]bool, len(p.Transfers))
	for _, tr := range p.Transfers {
		s[tr] = true
	}
	return s
}

// TestClosedFormMatchesFigure3 checks the first steps of the paper's worked
// example: 8 nodes, 3 blocks (Figure 3, center).
func TestClosedFormMatchesFigure3(t *testing.T) {
	p := closedFormPlan(8, 3)
	want := []Transfer{
		{Round: 0, From: 0, To: 1, Block: 0}, // sender injects block 0
		{Round: 1, From: 0, To: 2, Block: 1}, // sender injects block 1
		{Round: 1, From: 1, To: 3, Block: 0}, // first relay of block 0
		{Round: 2, From: 0, To: 4, Block: 2},
		{Round: 2, From: 1, To: 5, Block: 0},
		{Round: 2, From: 2, To: 6, Block: 1},
		{Round: 2, From: 3, To: 7, Block: 0},
	}
	set := transferSet(p)
	for _, tr := range want {
		if !set[tr] {
			t.Errorf("figure-3 transfer %v missing from plan", tr)
		}
	}
	// Total steps: l + k - 1 = 5.
	if got := p.Rounds(); got != 5 {
		t.Errorf("figure-3 rounds = %d, want 5", got)
	}
}

func TestBinomialPipelineStrictDegreePowerOfTwo(t *testing.T) {
	// Each node sends at most one and receives at most one block per step:
	// the bidirectional exchange discipline.
	p := New(BinomialPipeline).Plan(16, 12)
	if err := p.ValidateStrict(); err != nil {
		t.Fatal(err)
	}
}

func TestPerNodeOrdering(t *testing.T) {
	p := New(BinomialPipeline).Plan(8, 6)
	for rank, np := range p.PerNode() {
		for i := 1; i < len(np.Sends); i++ {
			if np.Sends[i].Round < np.Sends[i-1].Round {
				t.Fatalf("rank %d sends out of order: %v", rank, np.Sends)
			}
		}
		for i := 1; i < len(np.Recvs); i++ {
			if np.Recvs[i].Round < np.Recvs[i-1].Round {
				t.Fatalf("rank %d recvs out of order: %v", rank, np.Recvs)
			}
		}
		if rank == 0 && len(np.Recvs) != 0 {
			t.Errorf("root has %d receives", len(np.Recvs))
		}
		if rank != 0 && len(np.Recvs) != p.Blocks {
			t.Errorf("rank %d receives %d blocks, want %d", rank, len(np.Recvs), p.Blocks)
		}
	}
}

// TestQuickRandomPlansAreValid drives the generators with random sizes via
// testing/quick.
func TestQuickRandomPlansAreValid(t *testing.T) {
	f := func(nRaw, kRaw uint8, aRaw uint8) bool {
		nodes := int(nRaw)%40 + 1
		k := int(kRaw)%50 + 1
		algos := Algorithms()
		gen := New(algos[int(aRaw)%len(algos)])
		return gen.Plan(nodes, k).ValidateStrict() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHybridPlanValidAcrossRackShapes(t *testing.T) {
	tests := []struct {
		name     string
		rackSize int
		nodes    int
	}{
		{"even racks", 4, 16},
		{"ragged last rack", 4, 14},
		{"single rack", 16, 12},
		{"racks of one", 1, 6},
		{"two big racks", 8, 16},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rackOf := make([]int, tt.nodes)
			for i := range rackOf {
				rackOf[i] = i / tt.rackSize
			}
			for _, k := range []int{1, 4, 24} {
				p := HybridGen{RackOf: rackOf}.Plan(tt.nodes, k)
				if err := p.Validate(); err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
			}
		})
	}
}

func TestHybridCrossRackTransferCount(t *testing.T) {
	// Only leader-phase transfers cross racks: k blocks to each of the
	// r-1 non-root leaders... at least, every cross-rack transfer must
	// involve two leaders.
	rackOf := make([]int, 16)
	for i := range rackOf {
		rackOf[i] = i / 4
	}
	p := HybridGen{RackOf: rackOf}.Plan(16, 8)
	leaders := map[int]bool{0: true, 4: true, 8: true, 12: true}
	for _, tr := range p.Transfers {
		if rackOf[tr.From] != rackOf[tr.To] && (!leaders[tr.From] || !leaders[tr.To]) {
			t.Fatalf("cross-rack transfer %v between non-leaders", tr)
		}
	}
}

func TestHybridPanicsOnBadRackOf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for short RackOf")
		}
	}()
	HybridGen{RackOf: []int{0}}.Plan(4, 2)
}

func TestPlanRoundsEmpty(t *testing.T) {
	if got := (Plan{Nodes: 1, Blocks: 1}).Rounds(); got != 0 {
		t.Errorf("empty plan rounds = %d, want 0", got)
	}
}

func TestLog2Ceil(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}, {17, 5}, {1024, 10},
	}
	for _, tt := range tests {
		if got := log2Ceil(tt.n); got != tt.want {
			t.Errorf("log2Ceil(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func ExampleBinomialPipelineGen_Plan() {
	p := BinomialPipelineGen{}.Plan(4, 2)
	for _, tr := range p.Transfers {
		fmt.Printf("round %d: %d -> %d (block %d)\n", tr.Round, tr.From, tr.To, tr.Block)
	}
	// Output:
	// round 0: 0 -> 1 (block 0)
	// round 1: 0 -> 2 (block 1)
	// round 1: 1 -> 3 (block 0)
	// round 2: 0 -> 1 (block 1)
	// round 2: 2 -> 3 (block 1)
	// round 2: 3 -> 2 (block 0)
}
