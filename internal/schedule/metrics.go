package schedule

import (
	"sync/atomic"

	"rdmc/internal/obs"
)

// Metrics counts rank-local planning outcomes across the whole process —
// the planner's caches are process-global (see planCache), so its metrics
// are too. All fields are optional; nil counters discard increments.
type Metrics struct {
	// FastPath counts NodePlan calls answered by a per-rank closed form,
	// with no global plan ever materialized.
	FastPath *obs.Counter
	// CacheHit counts plan-cache lookups that found an already-computed
	// table; CacheMiss counts the lookups that had to compute it.
	CacheHit  *obs.Counter
	CacheMiss *obs.Counter
	// CacheSize tracks the resident plan-table count (the
	// schedule.plan_cache_size gauge); CacheEvict counts tables removed by
	// the clock sweep that keeps the cache under its cap.
	CacheSize  *obs.Gauge
	CacheEvict *obs.Counter
}

// metrics is the installed hook; an atomic pointer so SetMetrics may race
// freely with planning on other engines.
var metrics atomic.Pointer[Metrics]

// SetMetrics installs (or, with nil, removes) the planner's metrics hook.
// Typically wired as:
//
//	schedule.SetMetrics(&schedule.Metrics{
//	    FastPath:   reg.Counter("schedule.nodeplan_fast"),
//	    CacheHit:   reg.Counter("schedule.plan_cache_hits"),
//	    CacheMiss:  reg.Counter("schedule.plan_cache_misses"),
//	    CacheSize:  reg.Gauge("schedule.plan_cache_size"),
//	    CacheEvict: reg.Counter("schedule.plan_cache_evictions"),
//	})
func SetMetrics(m *Metrics) {
	metrics.Store(m)
	planCacheGauge()
}

// planFast records one closed-form NodePlan answer.
func planFast() {
	if m := metrics.Load(); m != nil {
		m.FastPath.Inc()
	}
}

// planCacheOutcome records one cachedNodePlan lookup.
func planCacheOutcome(computed bool) {
	m := metrics.Load()
	if m == nil {
		return
	}
	if computed {
		m.CacheMiss.Inc()
	} else {
		m.CacheHit.Inc()
	}
}

// planCacheGauge publishes the resident plan-table count.
func planCacheGauge() {
	if m := metrics.Load(); m != nil {
		m.CacheSize.Set(planCacheLen.Load())
	}
}

// planCacheEvicted records one clock-sweep eviction.
func planCacheEvicted() {
	if m := metrics.Load(); m != nil {
		m.CacheEvict.Inc()
	}
}
