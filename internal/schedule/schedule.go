// Package schedule computes the deterministic block-transfer plans at the
// heart of RDMC (DSN 2018, §3–4): given a group of n nodes (rank 0 is the
// root/sender) and a message split into k blocks, a Generator maps the
// multicast onto a sequence of point-to-point unicast block transfers.
//
// Implemented generators, in the paper's order of increasing effectiveness
// (§4.3):
//
//   - Sequential: the root unicasts the whole message to each receiver in
//     turn — today's datacenter default and the paper's baseline.
//   - Chain: a bucket brigade in the style of chain replication.
//   - BinomialTree: whole-message relaying along a binomial tree.
//   - BinomialPipeline: the paper's main algorithm — a virtual hypercube in
//     which d distinct blocks are concurrently relayed, so every node spends
//     as much time as possible simultaneously sending and receiving.
//   - MPIScatterAllgather: the MVAPICH-style large-message broadcast
//     (binomial scatter + ring allgather) used as the MPI comparator.
//   - Hybrid: the paper's §4.3 topology-aware variant — one binomial
//     pipeline across rack leaders and one within each rack.
//
// Plans are pure data, independent of any transport: the engine in
// internal/core executes them asynchronously, and the analysis helpers in
// this package (slack.go) study them symbolically.
package schedule

import (
	"fmt"
	"math/bits"
	"sort"
)

// Transfer is one point-to-point block copy. From and To are group-relative
// ranks; rank 0 is the root. Round is the synchronous step the transfer
// belongs to; the asynchronous engine uses rounds only for ordering and
// gating, exactly as the paper's implementation treats its precomputed
// schedule as "a series of asynchronous steps" (§4.2).
type Transfer struct {
	Round int
	From  int
	To    int
	Block int
}

// Plan is a complete multicast schedule for n nodes and k blocks.
type Plan struct {
	Nodes     int
	Blocks    int
	Transfers []Transfer
}

// Rounds returns the number of synchronous rounds the plan spans (the
// highest round number plus one), or zero for an empty plan.
func (p Plan) Rounds() int {
	max := -1
	for _, tr := range p.Transfers {
		if tr.Round > max {
			max = tr.Round
		}
	}
	return max + 1
}

// NodePlan is one node's view of a plan: its sends and receives in execution
// order.
type NodePlan struct {
	Sends []Transfer
	Recvs []Transfer
}

// PerNode splits the plan by rank. Both lists are ordered by round (ties by
// plan order, which generators keep deterministic).
//
// The split is allocation-exact and sort-free in the common case: a first
// pass counts each rank's transfers so every slice is sized in one shot, and
// the stable sort runs only if some rank's transfers arrived out of round
// order — every built-in generator except the hybrid (whose two phases
// interleave rounds) emits them already ordered.
func (p Plan) PerNode() []NodePlan {
	nodes := make([]NodePlan, p.Nodes)
	counts := make([]int, 2*p.Nodes) // sends in [0,n), recvs in [n,2n)
	for _, tr := range p.Transfers {
		counts[tr.From]++
		counts[p.Nodes+tr.To]++
	}
	for i := range nodes {
		if c := counts[i]; c > 0 {
			nodes[i].Sends = make([]Transfer, 0, c)
		}
		if c := counts[p.Nodes+i]; c > 0 {
			nodes[i].Recvs = make([]Transfer, 0, c)
		}
	}
	ordered := true
	for _, tr := range p.Transfers {
		s := nodes[tr.From].Sends
		if n := len(s); n > 0 && s[n-1].Round > tr.Round {
			ordered = false
		}
		nodes[tr.From].Sends = append(s, tr)
		r := nodes[tr.To].Recvs
		if n := len(r); n > 0 && r[n-1].Round > tr.Round {
			ordered = false
		}
		nodes[tr.To].Recvs = append(r, tr)
	}
	if !ordered {
		for i := range nodes {
			sortStable(nodes[i].Sends)
			sortStable(nodes[i].Recvs)
		}
	}
	return nodes
}

func sortStable(ts []Transfer) {
	sort.SliceStable(ts, func(i, j int) bool { return ts[i].Round < ts[j].Round })
}

// Validate checks the invariants every correct plan must satisfy:
//
//   - ranks and block numbers in range, no self-transfers, nothing sent to
//     the root;
//   - completeness without duplication: every non-root rank receives every
//     block exactly once (the paper's "no duplications, omissions or
//     corruption" guarantee starts here);
//   - causality: a node only sends blocks it holds — the root holds
//     everything from the start, every other node holds a block strictly
//     after the round that delivered it.
func (p Plan) Validate() error {
	if p.Nodes < 1 {
		return fmt.Errorf("schedule: plan has %d nodes", p.Nodes)
	}
	if p.Blocks < 1 {
		return fmt.Errorf("schedule: plan has %d blocks", p.Blocks)
	}
	recvRound := make([][]int, p.Nodes) // rank → block → round received (-1 unset)
	for i := range recvRound {
		recvRound[i] = make([]int, p.Blocks)
		for b := range recvRound[i] {
			recvRound[i][b] = -1
		}
	}
	sorted := append([]Transfer(nil), p.Transfers...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Round < sorted[j].Round })
	for _, tr := range sorted {
		switch {
		case tr.From < 0 || tr.From >= p.Nodes || tr.To < 0 || tr.To >= p.Nodes:
			return fmt.Errorf("schedule: transfer %+v out of range for %d nodes", tr, p.Nodes)
		case tr.Block < 0 || tr.Block >= p.Blocks:
			return fmt.Errorf("schedule: transfer %+v block out of range for %d blocks", tr, p.Blocks)
		case tr.From == tr.To:
			return fmt.Errorf("schedule: self transfer %+v", tr)
		case tr.To == 0:
			return fmt.Errorf("schedule: transfer to root %+v", tr)
		case tr.Round < 0:
			return fmt.Errorf("schedule: negative round %+v", tr)
		}
		if tr.From != 0 {
			got := recvRound[tr.From][tr.Block]
			if got < 0 || got >= tr.Round {
				return fmt.Errorf("schedule: causality violation: %+v sent before held (received round %d)", tr, got)
			}
		}
		if recvRound[tr.To][tr.Block] >= 0 {
			return fmt.Errorf("schedule: duplicate delivery %+v", tr)
		}
		recvRound[tr.To][tr.Block] = tr.Round
	}
	for rank := 1; rank < p.Nodes; rank++ {
		for b := 0; b < p.Blocks; b++ {
			if recvRound[rank][b] < 0 {
				return fmt.Errorf("schedule: rank %d never receives block %d", rank, b)
			}
		}
	}
	return nil
}

// ValidateStrict additionally requires that no node performs more than one
// send or one receive per round — the full-duplex one-block-in, one-block-out
// discipline of the paper's non-hybrid schedules.
func (p Plan) ValidateStrict() error {
	if err := p.Validate(); err != nil {
		return err
	}
	type slot struct{ round, rank int }
	sends := make(map[slot]bool)
	recvs := make(map[slot]bool)
	for _, tr := range p.Transfers {
		s := slot{tr.Round, tr.From}
		if sends[s] {
			return fmt.Errorf("schedule: rank %d sends twice in round %d", tr.From, tr.Round)
		}
		sends[s] = true
		r := slot{tr.Round, tr.To}
		if recvs[r] {
			return fmt.Errorf("schedule: rank %d receives twice in round %d", tr.To, tr.Round)
		}
		recvs[r] = true
	}
	return nil
}

// Generator produces plans for a given group and block count.
type Generator interface {
	// Name returns the algorithm's display name as used in the paper.
	Name() string
	// Plan computes the schedule for nodes ranks and blocks message blocks.
	// It panics if nodes < 1 or blocks < 1; plans for a single node are
	// empty.
	Plan(nodes, blocks int) Plan
	// NodePlan computes rank's slice of Plan(nodes, blocks) without
	// materializing the global transfer list: the result is element-for-
	// element identical to Plan(nodes, blocks).PerNode()[rank]. Generators
	// with a per-rank closed form (the paper's §4.4 "each node can compute
	// its send schedule directly") answer in time proportional to the
	// rank's own transfers; the rest share one immutable plan table per
	// (algorithm, n, k) through the process-wide cache in nodeplan.go. The
	// returned slices may be shared across callers and must not be
	// mutated. It panics on invalid sizes or an out-of-range rank.
	NodePlan(nodes, blocks, rank int) NodePlan
}

// Algorithm enumerates the built-in generators.
type Algorithm int

// Built-in multicast algorithms.
const (
	Sequential Algorithm = iota + 1
	Chain
	BinomialTree
	BinomialPipeline
	MPIScatterAllgather
)

func (a Algorithm) String() string {
	switch a {
	case Sequential:
		return "sequential send"
	case Chain:
		return "chain send"
	case BinomialTree:
		return "binomial tree"
	case BinomialPipeline:
		return "binomial pipeline"
	case MPIScatterAllgather:
		return "mpi bcast"
	default:
		return "unknown"
	}
}

// New returns the generator for the algorithm. It panics on an unknown value.
func New(a Algorithm) Generator {
	switch a {
	case Sequential:
		return sequentialGen{}
	case Chain:
		return chainGen{}
	case BinomialTree:
		return binomialTreeGen{}
	case BinomialPipeline:
		return BinomialPipelineGen{}
	case MPIScatterAllgather:
		return mpiGen{}
	default:
		panic(fmt.Sprintf("schedule: unknown algorithm %d", a))
	}
}

// Algorithms returns the built-in algorithms in the paper's presentation
// order.
func Algorithms() []Algorithm {
	return []Algorithm{Sequential, Chain, BinomialTree, BinomialPipeline, MPIScatterAllgather}
}

func checkArgs(nodes, blocks int) {
	if nodes < 1 || blocks < 1 {
		panic(fmt.Sprintf("schedule: invalid plan size %d nodes × %d blocks", nodes, blocks))
	}
}

func checkRank(nodes, rank int) {
	if rank < 0 || rank >= nodes {
		panic(fmt.Sprintf("schedule: rank %d out of range for %d nodes", rank, nodes))
	}
}

// log2Ceil returns ⌈log₂ n⌉ for n ≥ 1.
func log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
