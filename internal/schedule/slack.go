package schedule

// This file implements the §4.5 robustness analysis of the paper: slack
// measures how much earlier a node received the block it forwards, i.e. how
// much room a slightly-late node has to catch up, and the closed-form
// bandwidth bound quantifies tolerance of one slow link.

// Slack returns, for each transfer in the plan, tr.Round minus the round in
// which tr.From received tr.Block. Transfers out of the root are skipped
// (the root never receives). The result maps steady-state step numbers to
// the slacks of the sends performed in them.
func Slack(p Plan) map[int][]int {
	recvRound := make(map[[2]int]int, len(p.Transfers))
	for _, tr := range p.Transfers {
		recvRound[[2]int{tr.To, tr.Block}] = tr.Round
	}
	out := make(map[int][]int)
	for _, tr := range p.Transfers {
		if tr.From == 0 {
			continue
		}
		got, ok := recvRound[[2]int{tr.From, tr.Block}]
		if !ok {
			continue
		}
		out[tr.Round] = append(out[tr.Round], tr.Round-got)
	}
	return out
}

// AvgSlack returns the average slack over the relaying sends of step j
// (§4.5's avg_slack(j)), and false if no relayer sends in that step.
func AvgSlack(p Plan, j int) (float64, bool) {
	slacks := Slack(p)[j]
	if len(slacks) == 0 {
		return 0, false
	}
	sum := 0
	for _, s := range slacks {
		sum += s
	}
	return float64(sum) / float64(len(slacks)), true
}

// SteadySteps returns the [l, l+k-2] step range the paper calls "steady" for
// an n-node, k-block binomial pipeline.
func SteadySteps(n, k int) (lo, hi int) {
	l := log2Ceil(n)
	return l, l + k - 2
}

// PredictedAvgSlack is the paper's closed form for the steady-state average
// slack of the binomial pipeline: 2·(1 − (l−1)/(n−2)) with l = log₂ n.
// It applies to power-of-two n ≥ 4.
func PredictedAvgSlack(n int) float64 {
	l := float64(log2Ceil(n))
	return 2 * (1 - (l-1)/(float64(n)-2))
}

// SlowLinkBandwidthFraction is the paper's §4.5(2) lower bound on the
// fraction of full bandwidth the binomial pipeline retains when a single
// link is slowed from T to Tprime: l·T′ / (T + (l−1)·T′).
func SlowLinkBandwidthFraction(n int, t, tprime float64) float64 {
	l := float64(log2Ceil(n))
	return l * tprime / (t + (l-1)*tprime)
}
