package schedule

import (
	"fmt"
	"strconv"
)

// HybridGen implements the paper's §4.3 hybrid: when rack topology is known,
// run one binomial pipeline across rack leaders and a second one within each
// rack, seeded by the leader as its blocks arrive. The paper motivates but
// could not evaluate this variant (its testbed hid placement); the simulator
// can, so the harness includes it as the `hybrid` experiment.
//
// The in-rack pipelines overlap with the leader-level pipeline: a leader
// forwards a block into its rack on any round after the round that delivered
// it, so dissemination is pipelined across the two levels rather than
// staged.
type HybridGen struct {
	// RackOf maps each rank to its rack index. Rank 0 (the root) may live
	// in any rack; the lowest rank of each rack acts as its leader, so the
	// root is always its own rack's leader.
	RackOf []int
}

var _ Generator = HybridGen{}

// Name implements Generator.
func (HybridGen) Name() string { return "hybrid binomial pipeline" }

// NodePlan implements Generator. The hybrid has no per-rank closed form —
// its two pipeline levels interleave rounds and depend on the rack layout —
// so the full plan is computed once per (layout, n, k) in the process-wide
// cache and every member takes its slice of the shared immutable table.
func (h HybridGen) NodePlan(nodes, blocks, rank int) NodePlan {
	checkArgs(nodes, blocks)
	checkRank(nodes, rank)
	if len(h.RackOf) != nodes {
		panic(fmt.Sprintf("schedule: RackOf covers %d ranks, plan needs %d", len(h.RackOf), nodes))
	}
	sig := make([]byte, 0, 4*nodes)
	for _, r := range h.RackOf {
		sig = strconv.AppendInt(sig, int64(r), 10)
		sig = append(sig, ',')
	}
	key := planKey{algo: "hybrid", nodes: nodes, blocks: blocks, aux: string(sig)}
	return cachedNodePlan(key, rank, func() Plan { return h.Plan(nodes, blocks) })
}

// Plan implements Generator. It panics if RackOf does not cover every rank.
func (h HybridGen) Plan(nodes, blocks int) Plan {
	checkArgs(nodes, blocks)
	if len(h.RackOf) != nodes {
		panic(fmt.Sprintf("schedule: RackOf covers %d ranks, plan needs %d", len(h.RackOf), nodes))
	}
	if nodes == 1 {
		return Plan{Nodes: 1, Blocks: blocks}
	}

	// Group ranks by rack, ascending within each rack so members[0] is the
	// leader.
	racks := make(map[int][]int)
	var rackOrder []int
	for rank := 0; rank < nodes; rank++ {
		r := h.RackOf[rank]
		if _, ok := racks[r]; !ok {
			rackOrder = append(rackOrder, r)
		}
		racks[r] = append(racks[r], rank)
	}

	// Leaders, with the root's rack first so the leader-level plan is
	// rooted at rank 0.
	rootRack := h.RackOf[0]
	leaders := []int{racks[rootRack][0]}
	for _, r := range rackOrder {
		if r != rootRack {
			leaders = append(leaders, racks[r][0])
		}
	}
	if leaders[0] != 0 {
		panic("schedule: rank 0 must be the lowest rank in its rack")
	}

	p := Plan{Nodes: nodes, Blocks: blocks}

	// Phase 1: binomial pipeline across leaders. Record when each leader
	// acquires each block.
	leaderRecv := make(map[int][]int, len(leaders))
	for _, ld := range leaders {
		rounds := make([]int, blocks)
		for b := range rounds {
			rounds[b] = -1
		}
		leaderRecv[ld] = rounds
	}
	if len(leaders) > 1 {
		lp := BinomialPipelineGen{}.Plan(len(leaders), blocks)
		for _, tr := range lp.Transfers {
			g := Transfer{Round: tr.Round, From: leaders[tr.From], To: leaders[tr.To], Block: tr.Block}
			p.Transfers = append(p.Transfers, g)
			leaderRecv[g.To][g.Block] = g.Round
		}
	}

	// Phase 2: within each rack, a pipeline rooted at the leader whose
	// holdings appear as phase 1 delivers them.
	for _, r := range rackOrder {
		members := racks[r]
		if len(members) < 2 {
			continue
		}
		avail := leaderRecv[members[0]] // all -1 for the root's own rack
		for _, tr := range circulantPlan(len(members), blocks, avail) {
			p.Transfers = append(p.Transfers, Transfer{
				Round: tr.Round,
				From:  members[tr.From],
				To:    members[tr.To],
				Block: tr.Block,
			})
		}
	}
	return p
}
