package schedule

import (
	"reflect"
	"sync"
	"testing"

	"rdmc/internal/obs"
)

// adaptiveRackOf maps rank → rank/rackSize, the layout every adaptive test
// uses (rank 0 is always the lowest rank of rack 0, as the planner requires).
func adaptiveRackOf(n, rackSize int) []int {
	rackOf := make([]int, n)
	for i := range rackOf {
		rackOf[i] = i / rackSize
	}
	return rackOf
}

// adaptiveMasks enumerates the contention buckets worth testing for one
// geometry: clean, one saturated rack, all non-root racks, a two-rack spread,
// and a mask polluted with bits the planner must strip (the root's rack and
// the flat-fabric bit).
func adaptiveMasks(n, rackSize int) []uint64 {
	lastRack := (n - 1) / rackSize
	masks := []uint64{0}
	if lastRack >= 1 {
		var all uint64
		for r := 1; r <= lastRack; r++ {
			all |= uint64(1) << uint(r)
		}
		masks = append(masks, uint64(1)<<1, all, all|1|flatHotBit)
		if lastRack >= 2 {
			masks = append(masks, uint64(1)<<1|uint64(1)<<uint(lastRack))
		}
	}
	return masks
}

// TestAdaptiveMaskedNodePlanMatchesPerNode is the planner-equivalence
// property extended over contention buckets: for every rack shape, group
// size, block count, and mask, the rank-local fast path must return exactly
// what splitting the global masked plan returns.
func TestAdaptiveMaskedNodePlanMatchesPerNode(t *testing.T) {
	for _, rackSize := range []int{1, 3, 4, 8} {
		for _, n := range []int{4, 8, 12, 16, 17, 32, 48, 64} {
			gen := AdaptiveGen{RackOf: adaptiveRackOf(n, rackSize)}
			for _, k := range nodePlanBlocks {
				for _, mask := range adaptiveMasks(n, rackSize) {
					want := gen.MaskedPlan(n, k, mask).PerNode()
					for r := 0; r < n; r++ {
						if got := gen.MaskedNodePlan(n, k, r, mask); !nodePlanEqual(got, want[r]) {
							t.Fatalf("adaptive(rack=%d n=%d k=%d rank=%d mask=%#x): MaskedNodePlan ≠ PerNode\n got: %+v\nwant: %+v",
								rackSize, n, k, r, mask, got, want[r])
						}
					}
				}
			}
		}
	}
}

// TestShelterPlanInvariants checks every sheltered hybrid the mask grid can
// produce for causality and coverage (Validate), and for the sheltering
// property itself: no transfer leaves a saturated rack for another rack, and
// each saturated rack's trunk is crossed inbound exactly once per block — the
// delivery minimum.
func TestShelterPlanInvariants(t *testing.T) {
	for _, tc := range []struct{ n, rackSize int }{
		{8, 4}, {16, 4}, {17, 4}, {24, 8}, {32, 8}, {64, 8}, {12, 1},
	} {
		rackOf := adaptiveRackOf(tc.n, tc.rackSize)
		gen := AdaptiveGen{RackOf: rackOf}
		for _, k := range nodePlanBlocks {
			for _, mask := range adaptiveMasks(tc.n, tc.rackSize) {
				eff := gen.effectiveMask(mask)
				if eff == 0 {
					continue
				}
				p := gen.MaskedPlan(tc.n, k, mask)
				if err := p.Validate(); err != nil {
					t.Fatalf("shelter(rack=%d n=%d k=%d mask=%#x): %v", tc.rackSize, tc.n, k, mask, err)
				}
				inbound := make(map[int]int)
				for _, tr := range p.Transfers {
					fr, to := rackOf[tr.From], rackOf[tr.To]
					if fr == to {
						continue
					}
					if eff&(uint64(1)<<uint(fr)) != 0 {
						t.Fatalf("shelter(rack=%d n=%d k=%d mask=%#x): transfer %+v relays out of saturated rack %d",
							tc.rackSize, tc.n, k, mask, tr, fr)
					}
					if eff&(uint64(1)<<uint(to)) != 0 {
						inbound[to]++
					}
				}
				for r := 0; r <= maxMaskRack; r++ {
					if eff&(uint64(1)<<uint(r)) == 0 {
						continue
					}
					if got := inbound[r]; got != k {
						t.Fatalf("shelter(rack=%d n=%d k=%d mask=%#x): saturated rack %d crossed inbound %d times, want exactly %d (one per block)",
							tc.rackSize, tc.n, k, mask, r, got, k)
					}
				}
			}
		}
	}
}

// TestAdaptiveMaskZeroSharesHybridCache pins the uncontended fast path: mask
// 0 (and any mask whose routable bits strip to nothing) must not merely equal
// the static hybrid's plan but alias the very same cached table, so an
// adaptive group that never sees contention is bit-identical to — and shares
// memory with — its static counterpart.
func TestAdaptiveMaskZeroSharesHybridCache(t *testing.T) {
	const n, k, rackSize = 32, 16, 8
	rackOf := adaptiveRackOf(n, rackSize)
	ad := AdaptiveGen{RackOf: rackOf}
	hy := HybridGen{RackOf: rackOf}
	for r := 0; r < n; r++ {
		if got, want := ad.MaskedNodePlan(n, k, r, 0), hy.NodePlan(n, k, r); !nodePlanEqual(got, want) {
			t.Fatalf("rank %d: mask-0 adaptive plan ≠ hybrid plan", r)
		}
	}
	a := ad.NodePlan(n, k, 1)
	b := hy.NodePlan(n, k, 1)
	if len(a.Recvs) == 0 || len(b.Recvs) == 0 || &a.Recvs[0] != &b.Recvs[0] {
		t.Error("mask-0 adaptive plan does not alias the hybrid's cache entry")
	}
	// Bits the shape cannot act on (the root's rack, the flat-fabric bit)
	// must strip back to the same entry, not mint a new key.
	c := ad.MaskedNodePlan(n, k, 1, flatHotBit|1)
	if len(c.Recvs) == 0 || &c.Recvs[0] != &a.Recvs[0] {
		t.Error("stripped-to-zero mask resolved to a different cache entry than mask 0")
	}
}

// TestAdaptiveFlatFallbacks pins the flat-fabric forms: with no topology the
// adaptive planner is the binomial pipeline when cool and the chain when the
// host-contention bit is set; rack bits without a rack layout are ignored.
func TestAdaptiveFlatFallbacks(t *testing.T) {
	gen := AdaptiveGen{}
	for _, n := range []int{4, 16, 17} {
		for _, k := range nodePlanBlocks {
			cool := gen.MaskedPlan(n, k, 0)
			if !reflect.DeepEqual(cool, BinomialPipelineGen{}.Plan(n, k)) {
				t.Fatalf("flat(n=%d k=%d): mask-0 plan ≠ binomial pipeline", n, k)
			}
			if !reflect.DeepEqual(gen.MaskedPlan(n, k, uint64(1)<<5), cool) {
				t.Fatalf("flat(n=%d k=%d): rack bits changed a flat-fabric plan", n, k)
			}
			hot := gen.MaskedPlan(n, k, flatHotBit)
			if !reflect.DeepEqual(hot, chainGen{}.Plan(n, k)) {
				t.Fatalf("flat(n=%d k=%d): hot plan ≠ chain", n, k)
			}
			for r := 0; r < n; r++ {
				if got, want := gen.MaskedNodePlan(n, k, r, flatHotBit), (chainGen{}).NodePlan(n, k, r); !nodePlanEqual(got, want) {
					t.Fatalf("flat(n=%d k=%d rank=%d): hot MaskedNodePlan ≠ chain NodePlan", n, k, r)
				}
			}
		}
	}
}

// TestAdaptiveShelterCacheSingleFlight hammers one sheltered-plan cache key
// from many goroutines: the shelter computation must run exactly once (the
// PR 3 single-flight property, observed through the planner metrics hook) and
// every caller must see the identical shared table.
func TestAdaptiveShelterCacheSingleFlight(t *testing.T) {
	const n, k = 40, 16 // geometry unique to this test: the key starts cold
	mask := uint64(1) << 2
	gen := AdaptiveGen{RackOf: adaptiveRackOf(n, 8)}
	var hit, miss obs.Counter
	SetMetrics(&Metrics{CacheHit: &hit, CacheMiss: &miss})
	defer SetMetrics(nil)

	want := gen.MaskedPlan(n, k, mask).PerNode() // direct build, bypasses the cache
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := g; r < n; r += 16 {
				if got := gen.MaskedNodePlan(n, k, r, mask); !nodePlanEqual(got, want[r]) {
					t.Errorf("rank %d: cached MaskedNodePlan ≠ MaskedPlan.PerNode", r)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := miss.Load(); got != 1 {
		t.Errorf("shelter plan computed %d times under concurrent lookups, want 1", got)
	}
	if got := hit.Load(); got != uint64(n-1) {
		t.Errorf("plan cache hits = %d, want %d", got, n-1)
	}

	a := gen.MaskedNodePlan(n, k, 1, mask)
	b := gen.MaskedNodePlan(n, k, 1, mask)
	if len(a.Recvs) > 0 && &a.Recvs[0] != &b.Recvs[0] {
		t.Error("cached MaskedNodePlan calls returned distinct tables for one key")
	}
}

// countPlanCacheKeys counts process-global plan-cache entries for one
// (algorithm, group size) pair.
func countPlanCacheKeys(algo string, nodes int) int {
	count := 0
	planCache.Range(func(k, _ any) bool {
		if pk := k.(planKey); pk.algo == algo && pk.nodes == nodes {
			count++
		}
		return true
	})
	return count
}

// TestAdaptiveChurningSignalBoundsCacheKeys drives DecideMask with hundreds
// of oscillating contention samples — including values inside the hysteresis
// band — and plans from every mask it emits. The cache may grow by at most
// one key per distinct effective mask (3 here: two routable racks), however
// noisy the signal: the contention bucket, not the raw sample, keys the
// cache.
func TestAdaptiveChurningSignalBoundsCacheKeys(t *testing.T) {
	const n, k = 24, 8 // racks 0 (root's), 1, 2
	gen := AdaptiveGen{RackOf: adaptiveRackOf(n, 8)}
	before := countPlanCacheKeys("adaptive-hybrid", n)
	var mask uint64
	planned := 0
	for i := 0; i < 400; i++ {
		sample := Contention{TrunkUp: []float64{
			5.0,                          // root rack: loud, but there is no route around it
			0.5 + float64(i%13)/10.0,     // rack 1 sweeps 0.5..1.7 through both thresholds
			0.5 + float64((i*7)%13)/10.0, // rack 2: decorrelated sweep
		}}
		mask = gen.DecideMask(sample, mask)
		if mask&^uint64(0b110) != 0 {
			t.Fatalf("sample %d: mask %#x sets bits outside the routable racks", i, mask)
		}
		if mask != 0 {
			gen.MaskedNodePlan(n, k, i%n, mask)
			planned++
		}
	}
	if planned == 0 {
		t.Fatal("signal sweep never produced a sheltered plan")
	}
	added := countPlanCacheKeys("adaptive-hybrid", n) - before
	if added < 1 || added > 3 {
		t.Fatalf("churning signal grew the plan cache by %d keys, want 1..3 (one per distinct mask)", added)
	}
}

// TestDecideMaskHysteresis pins the two-threshold quantizer: racks enter the
// mask at SaturateAt, stay down to ClearAt, and leave below it; the root's
// rack is never masked; trunk pressure is the max of the two directions. The
// flat-fabric bit follows the same discipline on the host-busy and
// credit-stall signals.
func TestDecideMaskHysteresis(t *testing.T) {
	topo := AdaptiveGen{RackOf: adaptiveRackOf(16, 4)} // racks 0..3
	bit1, bit2 := uint64(1)<<1, uint64(1)<<2
	topoCases := []struct {
		name string
		c    Contention
		prev uint64
		want uint64
	}{
		{"below threshold", Contention{TrunkUp: []float64{0, 1.24}}, 0, 0},
		{"enters at SaturateAt", Contention{TrunkUp: []float64{0, 1.25}}, 0, bit1},
		{"holds inside the band", Contention{TrunkUp: []float64{0, 0.75}}, bit1, bit1},
		{"band pressure alone never enters", Contention{TrunkUp: []float64{0, 0.9}}, 0, 0},
		{"clears below ClearAt", Contention{TrunkUp: []float64{0, 0.74}}, bit1, 0},
		{"downlink pressure counts", Contention{TrunkDown: []float64{0, 0, 1.3}}, 0, bit2},
		{"root rack never masked", Contention{TrunkUp: []float64{99, 0, 0}}, 0, 0},
		{"independent racks", Contention{TrunkUp: []float64{0, 1.5, 0.8}}, bit2, bit1 | bit2},
	}
	for _, tc := range topoCases {
		if got := topo.DecideMask(tc.c, tc.prev); got != tc.want {
			t.Errorf("topo %s: DecideMask = %#x, want %#x", tc.name, got, tc.want)
		}
	}

	flat := AdaptiveGen{}
	flatCases := []struct {
		name string
		c    Contention
		prev uint64
		want uint64
	}{
		{"idle", Contention{HostTx: 1, HostRx: 1}, 0, 0},
		{"enters at HostBusyAt", Contention{HostRx: 3}, 0, flatHotBit},
		{"stall alone enters", Contention{CreditStall: 0.5}, 0, flatHotBit},
		{"holds inside the band", Contention{HostTx: 1.6}, flatHotBit, flatHotBit},
		{"residual stall holds", Contention{HostTx: 1, CreditStall: 0.3}, flatHotBit, flatHotBit},
		{"clears below half-thresholds", Contention{HostTx: 1.4, CreditStall: 0.2}, flatHotBit, 0},
	}
	for _, tc := range flatCases {
		if got := flat.DecideMask(tc.c, tc.prev); got != tc.want {
			t.Errorf("flat %s: DecideMask = %#x, want %#x", tc.name, got, tc.want)
		}
	}
}

// TestAdaptiveBlockSizeAndReplanPolicy pins the remaining policy surface:
// block-size scaling only engages under a non-zero mask, and ReplanPolicy
// reports the configured (or default) re-plan gate.
func TestAdaptiveBlockSizeAndReplanPolicy(t *testing.T) {
	gen := AdaptiveGen{}
	if got := gen.AdaptiveBlockSize(1<<20, 0); got != 1<<20 {
		t.Errorf("mask-0 block size = %d, want the base", got)
	}
	if got := gen.AdaptiveBlockSize(1<<20, 1<<1); got != 2<<20 {
		t.Errorf("contended block size = %d, want 2× the base", got)
	}
	if got := gen.AdaptiveBlockSize(0, 1<<1); got != 0 {
		t.Errorf("zero base scaled to %d", got)
	}
	one := AdaptiveGen{Policy: AdaptivePolicy{BlockScale: 1}}
	if got := one.AdaptiveBlockSize(1<<20, 1<<1); got != 1<<20 {
		t.Errorf("BlockScale 1 scaled the base to %d", got)
	}

	if on, min := gen.ReplanPolicy(); on || min != 8 {
		t.Errorf("default ReplanPolicy = (%v, %d), want (false, 8)", on, min)
	}
	tuned := AdaptiveGen{Policy: AdaptivePolicy{Replan: true, MinReplanBlocks: 4}}
	if on, min := tuned.ReplanPolicy(); !on || min != 4 {
		t.Errorf("tuned ReplanPolicy = (%v, %d), want (true, 4)", on, min)
	}
}

func TestAdaptivePanicsOnRackOfMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for a RackOf shorter than the group")
		}
	}()
	AdaptiveGen{RackOf: []int{0, 0}}.NodePlan(3, 1, 0)
}
