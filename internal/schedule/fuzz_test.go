package schedule

import "testing"

// FuzzBinomialPipelinePlan drives the pipeline generator (closed form and
// circulant paths) with arbitrary shapes and checks the full plan
// invariants; `go test -fuzz FuzzBinomialPipelinePlan` explores beyond the
// seeds.
func FuzzBinomialPipelinePlan(f *testing.F) {
	f.Add(uint8(2), uint16(1))
	f.Add(uint8(8), uint16(3))
	f.Add(uint8(9), uint16(64))
	f.Add(uint8(33), uint16(7))
	f.Add(uint8(64), uint16(256))
	f.Fuzz(func(t *testing.T, nRaw uint8, kRaw uint16) {
		n := int(nRaw)%96 + 1
		k := int(kRaw)%300 + 1
		p := BinomialPipelineGen{}.Plan(n, k)
		if err := p.ValidateStrict(); err != nil {
			t.Fatalf("n=%d k=%d: %v", n, k, err)
		}
	})
}

// FuzzHybridPlan drives the rack-aware generator with arbitrary rack shapes.
func FuzzHybridPlan(f *testing.F) {
	f.Add(uint8(8), uint16(4), uint8(4))
	f.Add(uint8(14), uint16(24), uint8(5))
	f.Add(uint8(17), uint16(3), uint8(1))
	f.Fuzz(func(t *testing.T, nRaw uint8, kRaw uint16, rackRaw uint8) {
		n := int(nRaw)%48 + 1
		k := int(kRaw)%120 + 1
		rackSize := int(rackRaw)%n + 1
		rackOf := make([]int, n)
		for i := range rackOf {
			rackOf[i] = i / rackSize
		}
		p := HybridGen{RackOf: rackOf}.Plan(n, k)
		if err := p.Validate(); err != nil {
			t.Fatalf("n=%d k=%d rack=%d: %v", n, k, rackSize, err)
		}
	})
}
