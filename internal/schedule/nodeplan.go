package schedule

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// This file holds the rank-local planning fast paths: the per-rank closed
// forms for the generators that have one, and the process-wide plan cache for
// the ones that do not.
//
// Motivation (paper §4.4): "each node can compute its send schedule
// directly". The engine only ever needs one rank's sends and receives, so
// building the global O(n·k) transfer list on every member — and splitting
// it n ways with PerNode — turns an O(l+k) per-rank computation into
// O(n²·(l+k)) across a simulated group. The closed forms below answer in
// time proportional to the rank's own transfers; every path is required (and
// property-tested) to be element-for-element identical to
// Plan(nodes, blocks).PerNode()[rank].

// planKey identifies one cached per-rank plan table: the generating
// algorithm, the group geometry, and, for topology-aware generators, an
// auxiliary signature (the hybrid's rack layout).
type planKey struct {
	algo   string
	nodes  int
	blocks int
	aux    string
}

// planCacheEntry is filled exactly once; plans is immutable afterwards. ref
// is the clock hand's second-chance bit — set on every lookup, cleared by an
// eviction sweep; done guards the evictor from removing an entry whose
// computation is still in flight (its plans slice is not yet published).
type planCacheEntry struct {
	once  sync.Once
	plans []NodePlan
	ref   atomic.Bool
	done  atomic.Bool
}

// planCache is the process-wide, single-flight cache of per-rank plan tables
// for generators with no per-rank closed form (the circulant pipeline at
// non-power-of-two sizes, the hybrid, the masked adaptive shapes). It is
// shared across every engine and group in the process: when hundreds of
// members of one simulated group all need the same (algorithm, n, k) plan,
// exactly one of them computes it and the rest take slices of the same
// immutable table.
//
// The cache is bounded: a multi-tenant service churns k-of-n draws through
// arbitrarily many distinct geometries, so "the set of distinct geometries a
// process touches" is NOT bounded by any one workload. Resident entries are
// capped at planCacheCap with a clock (second-chance) sweep — lookups stay
// lock-free; only the rare over-cap insert takes the eviction mutex. Evicting
// an entry another goroutine still holds is safe (the table is immutable and
// garbage-collected once the holder drops it); a re-miss simply recomputes.
var (
	planCache    sync.Map // planKey → *planCacheEntry
	planCacheLen atomic.Int64
	planCacheCap atomic.Int64
	planEvictMu  sync.Mutex
)

// DefaultPlanCacheCap bounds the resident plan tables. The adaptive planner's
// masked shapes already rely on a bounded key space per geometry (a handful of
// hysteresis buckets); this cap applies the same discipline globally. 512
// tables at O(n·k) transfers each is a few tens of MB worst-case — far below
// what an unbounded map reaches under group churn — while still covering every
// geometry any single benchmark or deployment revisits.
const DefaultPlanCacheCap = 512

func init() { planCacheCap.Store(DefaultPlanCacheCap) }

// SetPlanCacheCap overrides the resident-entry cap (n <= 0 restores the
// default). Intended for tests and capacity experiments; safe to call
// concurrently with planning.
func SetPlanCacheCap(n int) {
	if n <= 0 {
		n = DefaultPlanCacheCap
	}
	planCacheCap.Store(int64(n))
}

// PlanCacheSize reports the resident plan-table count — the value exported as
// the schedule.plan_cache_size gauge.
func PlanCacheSize() int { return int(planCacheLen.Load()) }

// cachedNodePlan returns rank's slice of the plan identified by key,
// computing the full plan at most once per residency (concurrent callers for
// the same key block on the first computation; distinct keys do not
// interact). The returned NodePlan aliases the shared table and must be
// treated as immutable.
func cachedNodePlan(key planKey, rank int, plan func() Plan) NodePlan {
	e, loaded := planCache.LoadOrStore(key, &planCacheEntry{})
	entry := e.(*planCacheEntry)
	if !loaded {
		if n := planCacheLen.Add(1); n > planCacheCap.Load() {
			evictPlanCache()
		}
		planCacheGauge()
	}
	computed := false
	entry.once.Do(func() {
		entry.plans = plan().PerNode()
		entry.done.Store(true)
		computed = true
	})
	// The reference bit is set on hits only: a fresh insert starts cold, so
	// one-shot churn entries are the sweep's first victims and an entry that
	// is genuinely re-looked-up always survives the bit-clearing pass. (If
	// inserts started hot, a sweep landing while every entry is fresh would
	// clear all bits without evicting and fall through to the force pass,
	// whose sync.Map iteration order picks an arbitrary victim.)
	if loaded {
		entry.ref.Store(true)
	}
	planCacheOutcome(computed)
	return entry.plans[rank]
}

// evictPlanCache runs the clock sweep until the cache is back under its cap.
// One evictor at a time; concurrent inserts during a sweep are tolerated (the
// next over-cap insert sweeps again). The first pass grants each referenced
// entry its second chance by clearing the bit, the second evicts whatever
// stayed cold, and the final pass force-evicts regardless of reference bits so
// a fully-hot cache still converges. Entries whose computation is in flight
// are never evicted.
func evictPlanCache() {
	planEvictMu.Lock()
	defer planEvictMu.Unlock()
	limit := planCacheCap.Load()
	for pass := 0; pass < 3 && planCacheLen.Load() > limit; pass++ {
		force := pass == 2
		planCache.Range(func(k, v any) bool {
			entry := v.(*planCacheEntry)
			if !entry.done.Load() {
				return true
			}
			if !force && entry.ref.CompareAndSwap(true, false) {
				return true
			}
			planCache.Delete(k)
			planCacheLen.Add(-1)
			planCacheEvicted()
			return planCacheLen.Load() > limit
		})
	}
	planCacheGauge()
}

// NodePlan implements Generator. The root's sends and each receiver's
// receives enumerate directly: receiver r's k blocks occupy rounds
// (r−1)·k … r·k−1. O(own transfers) time and allocation.
func (sequentialGen) NodePlan(nodes, blocks, rank int) NodePlan {
	checkArgs(nodes, blocks)
	checkRank(nodes, rank)
	planFast()
	var np NodePlan
	if rank == 0 {
		if nodes == 1 {
			return np
		}
		np.Sends = make([]Transfer, 0, (nodes-1)*blocks)
		round := 0
		for to := 1; to < nodes; to++ {
			for b := 0; b < blocks; b++ {
				np.Sends = append(np.Sends, Transfer{Round: round, From: 0, To: to, Block: b})
				round++
			}
		}
		return np
	}
	np.Recvs = make([]Transfer, 0, blocks)
	base := (rank - 1) * blocks
	for b := 0; b < blocks; b++ {
		np.Recvs = append(np.Recvs, Transfer{Round: base + b, From: 0, To: rank, Block: b})
	}
	return np
}

// NodePlan implements Generator. Rank r relays block b to r+1 in round b+r
// and received it from r−1 in round b+r−1. O(k) time and allocation.
func (chainGen) NodePlan(nodes, blocks, rank int) NodePlan {
	checkArgs(nodes, blocks)
	checkRank(nodes, rank)
	planFast()
	var np NodePlan
	if rank < nodes-1 {
		np.Sends = make([]Transfer, 0, blocks)
		for b := 0; b < blocks; b++ {
			np.Sends = append(np.Sends, Transfer{Round: b + rank, From: rank, To: rank + 1, Block: b})
		}
	}
	if rank > 0 {
		np.Recvs = make([]Transfer, 0, blocks)
		for b := 0; b < blocks; b++ {
			np.Recvs = append(np.Recvs, Transfer{Round: b + rank - 1, From: rank - 1, To: rank, Block: b})
		}
	}
	return np
}

// NodePlan implements Generator. Rank r receives the whole message at tree
// step ⌊log₂ r⌋ from r − 2^⌊log₂ r⌋ and forwards it at every later step s
// with r < 2^s whose partner r + 2^s exists. O(k·log n) time, exact-size
// allocations.
func (binomialTreeGen) NodePlan(nodes, blocks, rank int) NodePlan {
	checkArgs(nodes, blocks)
	checkRank(nodes, rank)
	planFast()
	var np NodePlan
	first := 0 // first step at which rank holds the message and may send
	if rank > 0 {
		s := bits.Len(uint(rank)) - 1
		from := rank - 1<<s
		np.Recvs = make([]Transfer, 0, blocks)
		for b := 0; b < blocks; b++ {
			np.Recvs = append(np.Recvs, Transfer{Round: s*blocks + b, From: from, To: rank, Block: b})
		}
		first = s + 1
	}
	nSends := 0
	for s := first; 1<<s < nodes; s++ {
		if rank+1<<s < nodes {
			nSends += blocks
		}
	}
	if nSends > 0 {
		np.Sends = make([]Transfer, 0, nSends)
		for s := first; 1<<s < nodes; s++ {
			to := rank + 1<<s
			if to >= nodes {
				continue
			}
			for b := 0; b < blocks; b++ {
				np.Sends = append(np.Sends, Transfer{Round: s*blocks + b, From: rank, To: to, Block: b})
			}
		}
	}
	return np
}

// NodePlan implements Generator. Rank r's transfers are derived from the
// scatter recursion and the ring structure directly, never materializing the
// global plan: the scatter's job tree is walked once (O(n) ranges, tracking
// only round offsets, chunk retention, and the jobs that touch r), and each
// allgather step's round advance is recomputed arithmetically. Worst-case
// O(n²) time for the n−1 ring steps, but the only allocations are rank r's
// own transfer slices, the O(n) retention table, and the tree scratch.
func (mpiGen) NodePlan(nodes, blocks, rank int) NodePlan {
	checkArgs(nodes, blocks)
	checkRank(nodes, rank)
	planFast()
	var np NodePlan
	if nodes == 1 {
		return np
	}
	chunkLo := func(c int) int { return c * blocks / nodes }
	appendRun := func(dst []Transfer, round, from, to, bLo, bHi int) []Transfer {
		for b := bLo; b < bHi; b++ {
			dst = append(dst, Transfer{Round: round + (b - bLo), From: from, To: to, Block: b})
		}
		return dst
	}

	// holdsHi[r] caps the chunk range [r, holdsHi[r]) rank r retains after
	// the scatter (intermediaries keep the chunks they relay). Ranks the
	// scatter never reaches — possible only when all their chunks are
	// empty — keep the vacuous default [r, r+1).
	holdsHi := make([]int, nodes)
	for r := range holdsHi {
		holdsHi[r] = r + 1
	}
	holdsHi[0] = nodes

	// Binomial scatter, mirroring Plan's job recursion: the owner of chunk
	// range [lo,hi) is always lo, and each split sends chunks [mid,hi) to
	// rank mid. The step's round advance is the largest per-job block run.
	round := 0
	type job struct{ lo, hi int }
	jobs := []job{{0, nodes}}
	var next []job
	for len(jobs) > 0 {
		next = next[:0]
		maxBlocks := 0
		for _, j := range jobs {
			if j.hi-j.lo <= 1 {
				continue
			}
			mid := (j.lo + j.hi + 1) / 2
			holdsHi[mid] = j.hi
			nb := chunkLo(j.hi) - chunkLo(mid)
			if nb > maxBlocks {
				maxBlocks = nb
			}
			if nb > 0 {
				if j.lo == rank {
					np.Sends = appendRun(np.Sends, round, j.lo, mid, chunkLo(mid), chunkLo(j.hi))
				} else if mid == rank {
					np.Recvs = appendRun(np.Recvs, round, j.lo, mid, chunkLo(mid), chunkLo(j.hi))
				}
			}
			next = append(next, job{j.lo, mid}, job{mid, j.hi})
		}
		if maxBlocks == 0 {
			break
		}
		round += maxBlocks
		jobs, next = next, jobs
	}

	// Ring allgather: at step t, rank i forwards chunk (i−t) mod n to i+1,
	// skipping the root and chunks the target retained from the scatter.
	// Each (receiver, chunk) pair occurs at most once across the whole
	// ring, so scatter retention is the only reason a chunk is skipped and
	// the per-block holdings of the global generator reduce to the
	// chunk-granular check below.
	for t := 0; t < nodes-1; t++ {
		maxBlocks := 0
		for i := 0; i < nodes-1; i++ { // i = n−1 would target the root
			to := i + 1
			c := i - t
			if c < 0 {
				c += nodes
			}
			if to <= c && c < holdsHi[to] {
				continue // target kept this chunk from the scatter
			}
			nb := chunkLo(c+1) - chunkLo(c)
			if nb == 0 {
				continue
			}
			if nb > maxBlocks {
				maxBlocks = nb
			}
			if i == rank {
				np.Sends = appendRun(np.Sends, round, i, to, chunkLo(c), chunkLo(c+1))
			} else if to == rank {
				np.Recvs = appendRun(np.Recvs, round, i, to, chunkLo(c), chunkLo(c+1))
			}
		}
		round += maxBlocks
		if maxBlocks == 0 {
			round++
		}
	}
	return np
}
