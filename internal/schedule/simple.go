package schedule

// sequentialGen implements the paper's baseline: the root pushes the whole
// message to each receiver in turn. One block moves per round, so the root's
// NIC carries N·B bytes in total while every receiver NIC carries only B —
// the "hot spot at the sender" of §4.3.
type sequentialGen struct{}

func (sequentialGen) Name() string { return Sequential.String() }

func (sequentialGen) Plan(nodes, blocks int) Plan {
	checkArgs(nodes, blocks)
	p := Plan{Nodes: nodes, Blocks: blocks}
	round := 0
	for to := 1; to < nodes; to++ {
		for b := 0; b < blocks; b++ {
			p.Transfers = append(p.Transfers, Transfer{Round: round, From: 0, To: to, Block: b})
			round++
		}
	}
	return p
}

// chainGen implements the bucket brigade of §4.3: each inner receiver relays
// blocks down the chain as they arrive. Relayers use full duplex bandwidth,
// but a node i sits idle for i rounds before its first block arrives.
type chainGen struct{}

func (chainGen) Name() string { return Chain.String() }

func (chainGen) Plan(nodes, blocks int) Plan {
	checkArgs(nodes, blocks)
	p := Plan{Nodes: nodes, Blocks: blocks}
	for from := 0; from < nodes-1; from++ {
		for b := 0; b < blocks; b++ {
			p.Transfers = append(p.Transfers, Transfer{
				Round: b + from,
				From:  from,
				To:    from + 1,
				Block: b,
			})
		}
	}
	return p
}

// binomialTreeGen implements §4.3's whole-message binomial tree: at tree step
// s, every node holding the message forwards all of it to the rank 2^s above
// its own. Latency beats sequential send, but inner transfers cannot start
// until the outer ones finish, so large messages waste link time.
type binomialTreeGen struct{}

func (binomialTreeGen) Name() string { return BinomialTree.String() }

func (binomialTreeGen) Plan(nodes, blocks int) Plan {
	checkArgs(nodes, blocks)
	p := Plan{Nodes: nodes, Blocks: blocks}
	for s, round := 0, 0; 1<<s < nodes; s++ {
		for from := 0; from < 1<<s && from < nodes; from++ {
			to := from + 1<<s
			if to >= nodes {
				continue
			}
			for b := 0; b < blocks; b++ {
				p.Transfers = append(p.Transfers, Transfer{
					Round: round + b,
					From:  from,
					To:    to,
					Block: b,
				})
			}
		}
		round += blocks
	}
	return p
}

// mpiGen models the MVAPICH MPI_Bcast comparator of Figure 4: for large
// messages MVAPICH broadcasts by a binomial-tree scatter of message chunks
// followed by a ring allgather. Chunks here are contiguous runs of blocks.
type mpiGen struct{}

func (mpiGen) Name() string { return MPIScatterAllgather.String() }

func (mpiGen) Plan(nodes, blocks int) Plan {
	checkArgs(nodes, blocks)
	p := Plan{Nodes: nodes, Blocks: blocks}
	if nodes == 1 {
		return p
	}
	// Chunk c is the block range owned by rank c after the scatter.
	chunkLo := func(c int) int { return c * blocks / nodes }
	chunkHi := func(c int) int { return (c + 1) * blocks / nodes }

	// holds tracks which blocks each rank has, because scatter
	// intermediaries retain the chunks they relay and must not receive
	// them again during the allgather.
	holds := make([]map[int]bool, nodes)
	for i := range holds {
		holds[i] = make(map[int]bool)
	}
	for b := 0; b < blocks; b++ {
		holds[0][b] = true
	}

	// Binomial scatter on a power-of-two superstructure: at step s a holder
	// of chunk range [lo,hi) splits it, keeping the low half and sending the
	// high half to rank lo+span/2 — the standard MPI scatter recursion.
	round := 0
	type job struct{ owner, lo, hi int } // chunk range [lo,hi) held at owner
	jobs := []job{{owner: 0, lo: 0, hi: nodes}}
	for len(jobs) > 0 {
		var next []job
		maxBlocks := 0
		for _, j := range jobs {
			if j.hi-j.lo <= 1 {
				continue
			}
			mid := (j.lo + j.hi + 1) / 2
			dst := mid % nodes
			n := 0
			for c := mid; c < j.hi; c++ {
				for b := chunkLo(c); b < chunkHi(c); b++ {
					p.Transfers = append(p.Transfers, Transfer{
						Round: round + n,
						From:  j.owner,
						To:    dst,
						Block: b,
					})
					holds[dst][b] = true
					n++
				}
			}
			if n > maxBlocks {
				maxBlocks = n
			}
			next = append(next, job{owner: j.owner, lo: j.lo, hi: mid})
			next = append(next, job{owner: dst, lo: mid, hi: j.hi})
		}
		if maxBlocks == 0 {
			break
		}
		round += maxBlocks
		jobs = next
	}

	// Ring allgather: at step t, rank i forwards the chunk it received at
	// step t−1 (initially its own) to rank (i+1) mod nodes, skipping the
	// root, which needs nothing.
	for t := 0; t < nodes-1; t++ {
		maxBlocks := 0
		for i := 0; i < nodes; i++ {
			to := (i + 1) % nodes
			if to == 0 {
				continue
			}
			c := ((i-t)%nodes + nodes) % nodes
			n := 0
			for b := chunkLo(c); b < chunkHi(c); b++ {
				if holds[to][b] {
					continue
				}
				p.Transfers = append(p.Transfers, Transfer{
					Round: round + n,
					From:  i,
					To:    to,
					Block: b,
				})
				holds[to][b] = true
				n++
			}
			if n > maxBlocks {
				maxBlocks = n
			}
		}
		round += maxBlocks
		if maxBlocks == 0 {
			round++
		}
	}
	return p
}
