package schedule

import (
	"fmt"
	"runtime"
	"testing"

	"rdmc/internal/obs"
)

// drainPlanCache evicts everything resident so a test starts from a known
// cache population regardless of what ran before it.
func drainPlanCache(t *testing.T) {
	t.Helper()
	SetPlanCacheCap(1)
	planEvictMu.Lock()
	planCache.Range(func(k, _ any) bool {
		planCache.Delete(k)
		planCacheLen.Add(-1)
		return true
	})
	planEvictMu.Unlock()
	SetPlanCacheCap(0)
	if n := PlanCacheSize(); n != 0 {
		t.Fatalf("drained cache still holds %d entries", n)
	}
}

// TestPlanCacheChurnStaysBounded is the regression test for the unbounded
// planCache: 10k distinct geometries must leave both the resident-entry count
// and the heap flat, while every returned plan stays correct.
func TestPlanCacheChurnStaysBounded(t *testing.T) {
	drainPlanCache(t)
	const cap = 64
	SetPlanCacheCap(cap)
	defer SetPlanCacheCap(0)
	defer drainPlanCache(t)

	var gauge obs.Gauge
	var evict obs.Counter
	SetMetrics(&Metrics{CacheSize: &gauge, CacheEvict: &evict})
	defer SetMetrics(nil)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	const geometries = 10000
	for i := 0; i < geometries; i++ {
		nodes := 3 + i%5
		blocks := 1 + i%4
		key := planKey{algo: "churn-test", nodes: nodes, blocks: blocks, aux: fmt.Sprintf("g%d", i)}
		np := cachedNodePlan(key, nodes-1, func() Plan {
			return chainGen{}.Plan(nodes, blocks)
		})
		if len(np.Recvs) != blocks {
			t.Fatalf("geometry %d: rank %d got %d recvs, want %d", i, nodes-1, len(np.Recvs), blocks)
		}
		if i%1000 == 0 {
			if n := PlanCacheSize(); n > cap {
				t.Fatalf("after %d geometries cache holds %d entries, cap %d", i, n, cap)
			}
		}
	}

	if n := PlanCacheSize(); n > cap {
		t.Fatalf("cache holds %d entries after churn, cap %d", n, cap)
	}
	if g := gauge.Load(); g != int64(PlanCacheSize()) {
		t.Fatalf("plan_cache_size gauge %d, resident entries %d", g, PlanCacheSize())
	}
	if evict.Load() < geometries-cap {
		t.Fatalf("eviction counter %d, want >= %d", evict.Load(), geometries-cap)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	const headroom = 16 << 20 // generous: cap×tiny tables is well under 1 MiB
	if after.HeapAlloc > before.HeapAlloc+headroom {
		t.Fatalf("heap grew from %d to %d across 10k geometries", before.HeapAlloc, after.HeapAlloc)
	}
}

// TestPlanCacheHotEntrySurvivesSweep checks the second-chance bit: an entry
// referenced every round outlives cold churn until a force pass is required.
func TestPlanCacheHotEntrySurvivesSweep(t *testing.T) {
	drainPlanCache(t)
	SetPlanCacheCap(8)
	defer SetPlanCacheCap(0)
	defer drainPlanCache(t)

	hot := planKey{algo: "churn-test", nodes: 4, blocks: 2, aux: "hot"}
	computes := 0
	lookupHot := func() {
		cachedNodePlan(hot, 0, func() Plan {
			computes++
			return chainGen{}.Plan(4, 2)
		})
	}
	lookupHot()
	for i := 0; i < 100; i++ {
		key := planKey{algo: "churn-test", nodes: 4, blocks: 2, aux: fmt.Sprintf("cold%d", i)}
		cachedNodePlan(key, 0, func() Plan { return chainGen{}.Plan(4, 2) })
		lookupHot() // keep the reference bit set between sweeps
	}
	if computes != 1 {
		t.Fatalf("hot entry recomputed %d times; second-chance bit not honored", computes)
	}
}

// TestPlanCacheReMissRecomputes proves eviction is safe: a key evicted by
// churn recomputes on the next lookup and yields an identical plan.
func TestPlanCacheReMissRecomputes(t *testing.T) {
	drainPlanCache(t)
	SetPlanCacheCap(4)
	defer SetPlanCacheCap(0)
	defer drainPlanCache(t)

	key := planKey{algo: "churn-test", nodes: 6, blocks: 3, aux: "victim"}
	build := func() Plan { return chainGen{}.Plan(6, 3) }
	first := cachedNodePlan(key, 2, build)
	// Flood with cold keys twice so the victim loses its second chance too.
	for i := 0; i < 64; i++ {
		k := planKey{algo: "churn-test", nodes: 6, blocks: 3, aux: fmt.Sprintf("flood%d", i)}
		cachedNodePlan(k, 0, build)
	}
	if _, ok := planCache.Load(key); ok {
		t.Fatalf("victim survived a 16x-over-cap flood")
	}
	again := cachedNodePlan(key, 2, build)
	if len(again.Sends) != len(first.Sends) || len(again.Recvs) != len(first.Recvs) {
		t.Fatalf("recomputed plan differs: %d/%d sends, %d/%d recvs",
			len(again.Sends), len(first.Sends), len(again.Recvs), len(first.Recvs))
	}
	for i := range again.Recvs {
		if again.Recvs[i] != first.Recvs[i] {
			t.Fatalf("recv %d differs after recompute: %+v vs %+v", i, again.Recvs[i], first.Recvs[i])
		}
	}
}
