package schedule

import (
	"math"
	"testing"
)

func TestSlackMatchesPaperFormula(t *testing.T) {
	// §4.5(3): for the power-of-two binomial pipeline, avg_slack(j) at any
	// steady step j is the constant 2·(1 − (l−1)/(n−2)).
	for _, n := range []int{8, 16, 32, 64} {
		k := 40
		p := New(BinomialPipeline).Plan(n, k)
		want := PredictedAvgSlack(n)
		lo, hi := SteadySteps(n, k)
		for j := lo; j <= hi; j++ {
			got, ok := AvgSlack(p, j)
			if !ok {
				t.Fatalf("n=%d: no relaying sends in steady step %d", n, j)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("n=%d step %d: avg slack = %v, want %v", n, j, got, want)
			}
		}
	}
}

func TestPredictedAvgSlackApproachesTwo(t *testing.T) {
	// For moderate n, log n ≪ n and the average slack approaches 2.
	if got := PredictedAvgSlack(1024); got < 1.9 {
		t.Errorf("PredictedAvgSlack(1024) = %v, want near 2", got)
	}
	if got := PredictedAvgSlack(4); got != 2*(1-1.0/2.0) {
		t.Errorf("PredictedAvgSlack(4) = %v", got)
	}
}

func TestSlackSkipsRootSends(t *testing.T) {
	p := New(Sequential).Plan(3, 2)
	if got := Slack(p); len(got) != 0 {
		t.Errorf("sequential plan (root-only sends) has slack entries: %v", got)
	}
}

func TestAvgSlackNoSenders(t *testing.T) {
	p := New(BinomialPipeline).Plan(8, 5)
	if _, ok := AvgSlack(p, 9999); ok {
		t.Error("AvgSlack reported ok for a step with no sends")
	}
}

func TestChainSlackIsOne(t *testing.T) {
	// In a chain, every relayer forwards the block it received the round
	// before: slack exactly 1, which is why chain send has no room to
	// absorb delays.
	p := New(Chain).Plan(8, 10)
	for step, slacks := range Slack(p) {
		for _, s := range slacks {
			if s != 1 {
				t.Fatalf("chain slack at step %d = %d, want 1", step, s)
			}
		}
	}
}

func TestSlowLinkBandwidthFractionPaperExample(t *testing.T) {
	// §4.5(2): T′ = T/2, n = 64 gives 85.6% (wire: 6·0.5/(1+5·0.5) = 6/7).
	got := SlowLinkBandwidthFraction(64, 1.0, 0.5)
	if math.Abs(got-6.0/7.0) > 1e-9 {
		t.Errorf("fraction = %v, want 6/7 ≈ 0.857", got)
	}
	// A healthy link (T′ = T) retains full bandwidth.
	if got := SlowLinkBandwidthFraction(64, 1.0, 1.0); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("fraction with equal links = %v, want 1", got)
	}
}

func TestSteadySteps(t *testing.T) {
	lo, hi := SteadySteps(8, 10)
	if lo != 3 || hi != 11 {
		t.Errorf("SteadySteps(8,10) = %d,%d, want 3,11", lo, hi)
	}
}
