package schedule

import (
	"reflect"
	"sync"
	"testing"
)

// nodePlanSizes is the equivalence grid from the planner-rework acceptance
// criteria: every small size (closed-form edge cases live at n ≤ 17), plus
// the power-of-two ladder up to the paper's 512-node Sierra runs.
var nodePlanSizes = []int{
	1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 32, 64, 128, 512,
}

var nodePlanBlocks = []int{1, 3, 64}

// equivalenceRanks picks the ranks to cross-check for one (algorithm, n)
// cell. Every rank is checked except for the O(n²)-per-rank MPI derivation
// at the largest sizes, where a boundary-heavy stride keeps the test fast
// while still covering the root, the scatter leaves, and the ring seam.
func equivalenceRanks(algo Algorithm, nodes int) []int {
	if !(algo == MPIScatterAllgather && nodes >= 128) {
		ranks := make([]int, nodes)
		for i := range ranks {
			ranks[i] = i
		}
		return ranks
	}
	var ranks []int
	for r := 0; r < nodes; r++ {
		if r < 20 || r >= nodes-20 || r%17 == 0 || nodes/2-2 <= r && r <= nodes/2+2 {
			ranks = append(ranks, r)
		}
	}
	return ranks
}

// TestNodePlanMatchesPerNode is the planner-equivalence property: for every
// built-in algorithm and every grid cell, the rank-local fast path must
// return exactly what splitting the global plan returns — same transfers,
// same order, element for element.
func TestNodePlanMatchesPerNode(t *testing.T) {
	for _, a := range Algorithms() {
		gen := New(a)
		for _, n := range nodePlanSizes {
			for _, k := range nodePlanBlocks {
				want := gen.Plan(n, k).PerNode()
				for _, r := range equivalenceRanks(a, n) {
					got := gen.NodePlan(n, k, r)
					if !nodePlanEqual(got, want[r]) {
						t.Fatalf("%s(n=%d k=%d rank=%d): NodePlan ≠ PerNode\n got: %+v\nwant: %+v",
							gen.Name(), n, k, r, got, want[r])
					}
				}
			}
		}
	}
}

// TestHybridNodePlanMatchesPerNode runs the same property for the hybrid
// generator across rack shapes (the hybrid resolves through the shared plan
// cache, so this also pins the cache's rank slicing and the PerNode sort
// fallback its out-of-order plan requires).
func TestHybridNodePlanMatchesPerNode(t *testing.T) {
	for _, rackSize := range []int{1, 3, 4, 8} {
		for _, n := range []int{1, 2, 5, 8, 12, 16, 17, 32} {
			rackOf := make([]int, n)
			for i := range rackOf {
				rackOf[i] = i / rackSize
			}
			gen := HybridGen{RackOf: rackOf}
			for _, k := range nodePlanBlocks {
				want := gen.Plan(n, k).PerNode()
				for r := 0; r < n; r++ {
					if got := gen.NodePlan(n, k, r); !nodePlanEqual(got, want[r]) {
						t.Fatalf("hybrid(rack=%d n=%d k=%d rank=%d): NodePlan ≠ PerNode\n got: %+v\nwant: %+v",
							rackSize, n, k, r, got, want[r])
					}
				}
			}
		}
	}
}

// nodePlanEqual compares transfer-for-transfer; nil and empty are the same
// plan (the fast paths pre-size exactly and may legitimately return nil for
// a rank with no sends or no receives).
func nodePlanEqual(a, b NodePlan) bool {
	return transfersEqual(a.Sends, b.Sends) && transfersEqual(a.Recvs, b.Recvs)
}

func transfersEqual(a, b []Transfer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNodePlanPanicsOnBadRank(t *testing.T) {
	for _, a := range Algorithms() {
		gen := New(a)
		for _, rank := range []int{-1, 4} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: no panic for rank %d of 4 nodes", gen.Name(), rank)
					}
				}()
				gen.NodePlan(4, 2, rank)
			}()
		}
	}
}

// TestHybridPerNodeSortFallback pins the PerNode slow path: the hybrid's
// plan appends its rack phase after its leader phase, so per-rank transfers
// arrive round-disordered and PerNode must fall back to the stable sort.
func TestHybridPerNodeSortFallback(t *testing.T) {
	rackOf := make([]int, 16)
	for i := range rackOf {
		rackOf[i] = i / 4
	}
	for rank, np := range (HybridGen{RackOf: rackOf}).Plan(16, 8).PerNode() {
		for i := 1; i < len(np.Sends); i++ {
			if np.Sends[i].Round < np.Sends[i-1].Round {
				t.Fatalf("rank %d sends out of round order after PerNode", rank)
			}
		}
		for i := 1; i < len(np.Recvs); i++ {
			if np.Recvs[i].Round < np.Recvs[i-1].Round {
				t.Fatalf("rank %d recvs out of round order after PerNode", rank)
			}
		}
	}
}

// TestPlanCacheSingleFlight hammers one cache key from many goroutines: all
// callers must observe the identical shared table (the computation runs once)
// and the race detector must stay quiet.
func TestPlanCacheSingleFlight(t *testing.T) {
	const n, k = 48, 16 // non-power-of-two: resolves through the cache
	gen := New(BinomialPipeline)
	want := gen.Plan(n, k).PerNode()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := g; r < n; r += 16 {
				if got := gen.NodePlan(n, k, r); !nodePlanEqual(got, want[r]) {
					t.Errorf("rank %d: cached NodePlan ≠ PerNode", r)
				}
			}
		}(g)
	}
	wg.Wait()

	// Two sequential calls must alias the same backing table.
	a := gen.NodePlan(n, k, 1)
	b := gen.NodePlan(n, k, 1)
	if len(a.Recvs) > 0 && &a.Recvs[0] != &b.Recvs[0] {
		t.Error("cached NodePlan calls returned distinct tables for one key")
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("cached NodePlan calls disagree")
	}
}
