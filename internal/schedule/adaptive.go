package schedule

import (
	"fmt"
	"strconv"
)

// This file implements the congestion- and topology-aware adaptive planner
// (ROADMAP item 2). The static generators fix the multicast shape at group
// creation; AdaptiveGen instead picks the shape — binomial pipeline vs chain
// vs hybrid — and the tree's routing per transfer from a measured contention
// signal, quantized into a small "contention bucket" (the mask below) so the
// single-flight plan cache still collapses concurrent planning to one
// computation per distinct bucket.
//
// The signal itself is sampled by the engine (internal/core) from the fabric
// (simnet's fluid model) and its own credit-stall counters; the planner here
// is pure: given the same mask every member builds the same plan, which is
// what lets the root decide once per transfer and disseminate the mask in
// the prepare message instead of every member sampling a racing signal.

// Contention is the compact link/rank contention signal the adaptive planner
// consumes. Trunk pressures are demand-over-capacity ratios: the number of
// flows crossing a TOR trunk times the per-NIC line rate, divided by the
// trunk capacity. Under max-min fairness a trunk's *rate* is pinned at
// capacity whenever anything crosses it, so rates carry no contention
// information — demand does. A pressure above 1 means the trunk is
// oversubscribed by the offered load and flows crossing it are being cut
// below NIC line rate.
type Contention struct {
	// TrunkUp and TrunkDown are per-rack trunk pressures, indexed by rack.
	// Empty on flat (full-bisection) fabrics.
	TrunkUp   []float64
	TrunkDown []float64
	// HostTx and HostRx are the worst per-NIC-port concurrent flow counts
	// across the cluster: 1 means every port carries at most one flow (the
	// multicast alone), higher values mean foreign flows are stealing port
	// bandwidth.
	HostTx float64
	HostRx float64
	// CreditStall is the fraction of send-pump attempts since the last
	// sample that blocked waiting for receiver credit — back-pressure the
	// engine observes directly, independent of the fabric model.
	CreditStall float64
}

// Mask bit assignments: bits 0..62 mark saturated racks; bit 63 marks a
// host-level (flat fabric) contention state with no rack attribution.
const (
	flatHotBit  = uint64(1) << 63
	maxMaskRack = 62
)

// AdaptivePolicy tunes the adaptive planner's thresholds. The zero value of
// any field selects its default, so AdaptivePolicy{} is a working policy.
type AdaptivePolicy struct {
	// SaturateAt is the trunk pressure at which a rack enters the saturated
	// set, and ClearAt the pressure below which it leaves — the hysteresis
	// band that keeps a flapping signal from churning plans. Defaults: 1.25
	// and 0.75. The multicast's own relaying keeps at most two concurrent
	// flows per trunk direction, so on the Apt model its self-pressure
	// stays well under 1; crossing SaturateAt requires foreign traffic.
	SaturateAt float64
	ClearAt    float64
	// HostBusyAt is the per-NIC-port concurrent-flow count at which a flat
	// fabric counts as contended (default 3): above it the wide binomial
	// pipeline loses to a chain, whose one-in/one-out discipline adds the
	// least extra load per port.
	HostBusyAt float64
	// StallBusyAt is the credit-stall fraction that likewise marks a flat
	// fabric contended (default 0.5).
	StallBusyAt float64
	// BlockScale multiplies the group block size while the mask is non-zero
	// (default 2): under contention per-flow bandwidth shrinks, so larger
	// blocks amortize the per-block control traffic over more bytes. 1
	// disables block-size adaptation.
	BlockScale int
	// Replan enables the mid-transfer re-plan path in the engine: when the
	// mask changes while a transfer is in flight, the remaining blocks
	// switch to the new plan at a block boundary.
	Replan bool
	// MinReplanBlocks is the minimum number of not-yet-scheduled blocks for
	// which a mid-transfer re-plan is worth its barrier (default 8).
	MinReplanBlocks int
}

func (p AdaptivePolicy) withDefaults() AdaptivePolicy {
	if p.SaturateAt == 0 {
		p.SaturateAt = 1.25
	}
	if p.ClearAt == 0 {
		p.ClearAt = 0.75
	}
	if p.HostBusyAt == 0 {
		p.HostBusyAt = 3
	}
	if p.StallBusyAt == 0 {
		p.StallBusyAt = 0.5
	}
	if p.BlockScale == 0 {
		p.BlockScale = 2
	}
	if p.MinReplanBlocks == 0 {
		p.MinReplanBlocks = 8
	}
	return p
}

// AdaptivePlanner is the engine-facing contract of an adaptive generator:
// besides the Generator interface it exposes the mask decision (with
// hysteresis against the previous mask), mask-conditioned planning, and the
// per-transfer block size. The engine's root samples the signal, decides the
// mask once per transfer, and ships it to every member in the prepare
// message; members plan from the shipped mask, never from their own sample,
// so all members of a transfer build identical plans by construction.
type AdaptivePlanner interface {
	Generator
	// DecideMask quantizes a contention sample into a plan-selection mask,
	// applying hysteresis against the previous mask.
	DecideMask(c Contention, prev uint64) uint64
	// MaskedNodePlan is NodePlan conditioned on a mask; mask 0 must equal
	// NodePlan exactly. The result is element-for-element identical to
	// MaskedPlan(nodes, blocks, mask).PerNode()[rank].
	MaskedNodePlan(nodes, blocks, rank int, mask uint64) NodePlan
	// MaskedPlan is the full-plan form of MaskedNodePlan.
	MaskedPlan(nodes, blocks int, mask uint64) Plan
	// AdaptiveBlockSize picks the per-transfer block size from the group's
	// configured base size and the transfer's mask.
	AdaptiveBlockSize(base int, mask uint64) int
	// ReplanPolicy reports whether mid-transfer re-planning is enabled and
	// the minimum remaining block count for which it engages.
	ReplanPolicy() (enabled bool, minBlocks int)
}

// AdaptiveGen selects and shapes the multicast schedule per transfer from a
// contention mask:
//
//   - flat fabric, mask 0: the binomial pipeline (the paper's default);
//   - flat fabric, host-contended: the chain, which adds the least load per
//     NIC port when ports are already shared;
//   - rack topology, mask 0: exactly HybridGen's plan (same cache entries,
//     so the uncontended adaptive group is bit-identical to static hybrid);
//   - rack topology, saturated racks: a sheltered hybrid that routes leader
//     edges around the saturated TOR trunks — saturated racks' leaders are
//     demoted from the leader-level pipeline to leaf consumers fed by a
//     sponsor leader in an unsaturated rack, so no relay traffic transits a
//     saturated trunk more often than delivery strictly requires.
type AdaptiveGen struct {
	// RackOf maps each rank to its rack index (as HybridGen); nil selects
	// flat-fabric behavior. Rank 0 must be the lowest rank of its rack.
	RackOf []int
	// Policy tunes thresholds; the zero value works.
	Policy AdaptivePolicy
}

var _ Generator = AdaptiveGen{}
var _ AdaptivePlanner = AdaptiveGen{}

// Name implements Generator.
func (AdaptiveGen) Name() string { return "adaptive" }

// Plan implements Generator: the uncontended (mask 0) plan.
func (a AdaptiveGen) Plan(nodes, blocks int) Plan {
	return a.MaskedPlan(nodes, blocks, 0)
}

// NodePlan implements Generator: the uncontended (mask 0) rank plan.
func (a AdaptiveGen) NodePlan(nodes, blocks, rank int) NodePlan {
	return a.MaskedNodePlan(nodes, blocks, rank, 0)
}

// ReplanPolicy implements AdaptivePlanner.
func (a AdaptiveGen) ReplanPolicy() (bool, int) {
	p := a.Policy.withDefaults()
	return p.Replan, p.MinReplanBlocks
}

// AdaptiveBlockSize implements AdaptivePlanner. Mask 0 returns base
// unchanged — the uncontended adaptive group must be indistinguishable from
// its static counterpart.
func (a AdaptiveGen) AdaptiveBlockSize(base int, mask uint64) int {
	if mask == 0 || base <= 0 {
		return base
	}
	return base * a.Policy.withDefaults().BlockScale
}

// DecideMask implements AdaptivePlanner. Racks enter the mask at SaturateAt
// and leave below ClearAt; the root's own rack is never masked (all traffic
// originates there — there is no route around it). On flat fabrics the mask
// is a single host-contention bit with the same two-threshold hysteresis.
func (a AdaptiveGen) DecideMask(c Contention, prev uint64) uint64 {
	p := a.Policy.withDefaults()
	if len(a.RackOf) == 0 {
		host := c.HostTx
		if c.HostRx > host {
			host = c.HostRx
		}
		hot := prev&flatHotBit != 0
		if host >= p.HostBusyAt || c.CreditStall >= p.StallBusyAt {
			hot = true
		} else if host < p.HostBusyAt/2 && c.CreditStall < p.StallBusyAt/2 {
			hot = false
		}
		if hot {
			return flatHotBit
		}
		return 0
	}
	rootRack := a.RackOf[0]
	var mask uint64
	for _, r := range a.RackOf {
		if r == rootRack || r < 0 || r > maxMaskRack {
			continue
		}
		bit := uint64(1) << uint(r)
		if mask&bit != 0 {
			continue
		}
		var up, down float64
		if r < len(c.TrunkUp) {
			up = c.TrunkUp[r]
		}
		if r < len(c.TrunkDown) {
			down = c.TrunkDown[r]
		}
		pressure := up
		if down > pressure {
			pressure = down
		}
		was := prev&bit != 0
		if pressure >= p.SaturateAt || (was && pressure >= p.ClearAt) {
			mask |= bit
		}
	}
	return mask
}

// effectiveMask strips bits the plan shape cannot act on: the flat-hot bit
// when rack topology is present, the root's rack, and racks outside the
// layout. Plans are keyed on the effective mask so equivalent signals share
// one cache entry.
func (a AdaptiveGen) effectiveMask(mask uint64) uint64 {
	if len(a.RackOf) == 0 {
		return mask & flatHotBit
	}
	mask &^= flatHotBit
	var present uint64
	for _, r := range a.RackOf {
		if r >= 0 && r <= maxMaskRack {
			present |= uint64(1) << uint(r)
		}
	}
	mask &= present
	if rr := a.RackOf[0]; rr >= 0 && rr <= maxMaskRack {
		mask &^= uint64(1) << uint(rr)
	}
	return mask
}

func (a AdaptiveGen) checkTopo(nodes int) bool {
	if len(a.RackOf) == 0 {
		return false
	}
	if len(a.RackOf) != nodes {
		panic(fmt.Sprintf("schedule: RackOf covers %d ranks, plan needs %d", len(a.RackOf), nodes))
	}
	return true
}

// MaskedNodePlan implements AdaptivePlanner. Delegated shapes (mask 0, or
// the flat-fabric forms) reuse the underlying generators' cache entries and
// closed forms; sheltered hybrids are cached under a (topology signature,
// contention bucket) key — the PR 3 single-flight cache extended with the
// mask as the bucket. The key space is bounded: at most 2^racks masks per
// geometry, and in practice the hysteresis visits a handful.
func (a AdaptiveGen) MaskedNodePlan(nodes, blocks, rank int, mask uint64) NodePlan {
	checkArgs(nodes, blocks)
	checkRank(nodes, rank)
	if !a.checkTopo(nodes) {
		if mask&flatHotBit != 0 {
			return chainGen{}.NodePlan(nodes, blocks, rank)
		}
		return BinomialPipelineGen{}.NodePlan(nodes, blocks, rank)
	}
	eff := a.effectiveMask(mask)
	if eff == 0 {
		return HybridGen{RackOf: a.RackOf}.NodePlan(nodes, blocks, rank)
	}
	sig := make([]byte, 0, 4*nodes+20)
	for _, r := range a.RackOf {
		sig = strconv.AppendInt(sig, int64(r), 10)
		sig = append(sig, ',')
	}
	sig = append(sig, '|')
	sig = strconv.AppendUint(sig, eff, 16)
	key := planKey{algo: "adaptive-hybrid", nodes: nodes, blocks: blocks, aux: string(sig)}
	return cachedNodePlan(key, rank, func() Plan { return a.shelterPlan(nodes, blocks, eff) })
}

// MaskedPlan implements AdaptivePlanner.
func (a AdaptiveGen) MaskedPlan(nodes, blocks int, mask uint64) Plan {
	checkArgs(nodes, blocks)
	if !a.checkTopo(nodes) {
		if mask&flatHotBit != 0 {
			return chainGen{}.Plan(nodes, blocks)
		}
		return BinomialPipelineGen{}.Plan(nodes, blocks)
	}
	eff := a.effectiveMask(mask)
	if eff == 0 {
		return HybridGen{RackOf: a.RackOf}.Plan(nodes, blocks)
	}
	return a.shelterPlan(nodes, blocks, eff)
}

// shelterPlan builds the masked hybrid: rack leaders split into fast (rack
// trunk unsaturated, always including the root's) and sheltered (saturated).
// Fast leaders run the ordinary leader-level binomial pipeline among
// themselves; each sheltered leader is assigned a fast sponsor round-robin
// and receives its blocks point-to-point from the sponsor as the sponsor
// acquires them — exactly one crossing of the saturated trunk per block, the
// delivery minimum, with zero relay obligations placed on the saturated
// rack's uplink. In-rack pipelines are unchanged from the hybrid: each rack
// disseminates from its leader as the leader's blocks arrive.
func (a AdaptiveGen) shelterPlan(nodes, blocks int, mask uint64) Plan {
	if nodes == 1 {
		return Plan{Nodes: 1, Blocks: blocks}
	}

	// Group ranks by rack, ascending within each rack so members[0] is the
	// leader (same layout rules as HybridGen).
	racks := make(map[int][]int)
	var rackOrder []int
	for rank := 0; rank < nodes; rank++ {
		r := a.RackOf[rank]
		if _, ok := racks[r]; !ok {
			rackOrder = append(rackOrder, r)
		}
		racks[r] = append(racks[r], rank)
	}
	rootRack := a.RackOf[0]
	if racks[rootRack][0] != 0 {
		panic("schedule: rank 0 must be the lowest rank in its rack")
	}

	var fast, sheltered []int // leader ranks
	fast = append(fast, racks[rootRack][0])
	for _, r := range rackOrder {
		if r == rootRack {
			continue
		}
		ld := racks[r][0]
		if r >= 0 && r <= maxMaskRack && mask&(uint64(1)<<uint(r)) != 0 {
			sheltered = append(sheltered, ld)
		} else {
			fast = append(fast, ld)
		}
	}

	p := Plan{Nodes: nodes, Blocks: blocks}
	leaderRecv := make(map[int][]int, len(fast)+len(sheltered))
	for _, ld := range append(append([]int(nil), fast...), sheltered...) {
		rounds := make([]int, blocks)
		for b := range rounds {
			rounds[b] = -1
		}
		leaderRecv[ld] = rounds
	}

	// Phase 1a: binomial pipeline across the fast leaders.
	if len(fast) > 1 {
		lp := BinomialPipelineGen{}.Plan(len(fast), blocks)
		for _, tr := range lp.Transfers {
			g := Transfer{Round: tr.Round, From: fast[tr.From], To: fast[tr.To], Block: tr.Block}
			p.Transfers = append(p.Transfers, g)
			leaderRecv[g.To][g.Block] = g.Round
		}
	}

	// Phase 1b: sponsor feeds. Sponsors rotate round-robin over the fast
	// leaders; each sponsor's feed sends serialize on the sponsor (spBusy),
	// so a sponsor carrying several sheltered racks interleaves them one
	// block per round rather than doubling its per-round transmit load.
	// Iterating blocks in the outer loop keeps low blocks flowing to every
	// sheltered rack before high blocks monopolize the sponsors.
	sponsorOf := make(map[int]int, len(sheltered))
	for i, sl := range sheltered {
		sponsorOf[sl] = fast[i%len(fast)]
	}
	spBusy := make(map[int]int, len(fast))
	for b := 0; b < blocks; b++ {
		for _, sl := range sheltered {
			sp := sponsorOf[sl]
			avail := leaderRecv[sp][b] // -1 for the root, which holds all
			round := avail + 1
			if spBusy[sp] > round {
				round = spBusy[sp]
			}
			spBusy[sp] = round + 1
			p.Transfers = append(p.Transfers, Transfer{Round: round, From: sp, To: sl, Block: b})
			leaderRecv[sl][b] = round
		}
	}

	// Phase 2: within each rack, a pipeline rooted at the leader whose
	// holdings appear as the earlier phases deliver them.
	for _, r := range rackOrder {
		members := racks[r]
		if len(members) < 2 {
			continue
		}
		avail := leaderRecv[members[0]]
		for _, tr := range circulantPlan(len(members), blocks, avail) {
			p.Transfers = append(p.Transfers, Transfer{
				Round: tr.Round,
				From:  members[tr.From],
				To:    members[tr.To],
				Block: tr.Block,
			})
		}
	}
	return p
}
