// Package sst implements a shared state table in the style Derecho layers
// over RDMC (paper §4.6): every member owns one row of counters, replicated
// into every other member's memory with one-sided RDMA writes, and reads the
// whole table locally. The paper: "Derecho augments RDMC with a replicated
// status table implemented using one-sided RDMA writes ... Delivery occurs
// only after every receiver has a copy of the message, which receivers
// discover by monitoring the status table."
//
// The table is deliberately minimal — a matrix of uint64 counters — which is
// exactly what the stability protocol needs: member i publishes "I have
// received messages 0..k of group g" by bumping a counter in its row; every
// member computes min over the column to learn the stable frontier.
package sst

import (
	"encoding/binary"
	"fmt"

	"rdmc/internal/rdma"
)

// Table is one member's endpoint of a shared state table with one row per
// member and a fixed number of uint64 columns.
type Table struct {
	provider rdma.Provider
	id       uint32
	members  []rdma.NodeID
	rank     int
	cols     int

	local  []byte             // the full table: len(members) rows × cols × 8 bytes
	qps    []rdma.QueuePair   // to every other member
	onPush func(row, col int) // observer for remote updates
}

// region derives the registered-memory id for a table.
func region(id uint32) rdma.RegionID { return rdma.RegionID(id | 1<<30) }

// New creates the local endpoint. Every member calls New with identical
// arguments; rows start zeroed.
//
// onPush, when non-nil, runs whenever a remote member pushes an update into
// the local replica (the polling thread a real SST runs), with the updated
// row and column. It is installed before any queue pair is connected, so no
// remote write can ever land unobserved; because a cell has exactly one
// writer and the watcher runs on the thread that just applied that cell,
// reading the reported cell from inside the callback is race-free even on
// multi-threaded transports.
func New(provider rdma.Provider, id uint32, members []rdma.NodeID, cols int, onPush func(row, col int)) (*Table, error) {
	if cols < 1 {
		return nil, fmt.Errorf("sst: need at least one column, got %d", cols)
	}
	if len(members) < 2 {
		return nil, fmt.Errorf("sst: need at least two members, got %d", len(members))
	}
	if id >= 1<<30 {
		return nil, fmt.Errorf("sst: table id %d must fit in 30 bits", id)
	}
	t := &Table{
		provider: provider,
		id:       id,
		members:  append([]rdma.NodeID(nil), members...),
		rank:     -1,
		cols:     cols,
		local:    make([]byte, len(members)*cols*8),
	}
	for i, m := range members {
		if m == provider.NodeID() {
			t.rank = i
			break
		}
	}
	if t.rank < 0 {
		return nil, fmt.Errorf("sst: node %d not in member list", provider.NodeID())
	}
	if err := provider.RegisterRegion(region(id), t.local); err != nil {
		return nil, err
	}
	if onPush != nil {
		t.onPush = onPush
		err := provider.WatchRegion(region(id), func(offset, _ int) {
			cell := offset / 8
			onPush(cell/t.cols, cell%t.cols)
		})
		if err != nil {
			return nil, err
		}
	}
	for rank, m := range members {
		if rank == t.rank {
			t.qps = append(t.qps, nil)
			continue
		}
		lo, hi := t.rank, rank
		if lo > hi {
			lo, hi = hi, lo
		}
		qp, err := provider.Connect(m, uint64(id)<<32|1<<30|uint64(lo)<<16|uint64(hi))
		if err != nil {
			return nil, err
		}
		t.qps = append(t.qps, qp)
	}
	return t, nil
}

// regionReleaser is the optional provider capability Close uses to withdraw
// the table's registered memory and watcher. Every in-tree provider supports
// it (they embed nicbase.Base); a provider without it merely keeps the
// replica bytes registered.
type regionReleaser interface {
	UnregisterRegion(id rdma.RegionID)
}

// Close releases the table's endpoint: the queue pairs close and the
// registered region and its watcher are withdrawn, so a churned-through
// table leaves nothing reachable from the provider. Local reads (Get, Row,
// ColumnMin) keep working on the frozen replica; Set after Close fails on
// every push. Peers' replicas are untouched — they keep this member's last
// published row, which is exactly the frozen-frontier semantics a wedged
// session needs.
func (t *Table) Close() {
	for _, qp := range t.qps {
		if qp != nil {
			_ = qp.Close()
		}
	}
	t.qps = nil
	if r, ok := t.provider.(regionReleaser); ok {
		r.UnregisterRegion(region(t.id))
	}
}

// Rank returns the local member's row index.
func (t *Table) Rank() int { return t.rank }

func (t *Table) offset(row, col int) int { return (row*t.cols + col) * 8 }

// Get reads a cell from the local replica.
func (t *Table) Get(row, col int) uint64 {
	return binary.LittleEndian.Uint64(t.local[t.offset(row, col):])
}

// Set publishes a new value for a cell of the local member's own row: it
// updates the local replica and pushes the cell to every other member with
// one-sided writes. Values on a row must be monotone for ColumnMin to be
// meaningful, as in Derecho's monotonic-predicate design.
//
// A push that fails — typically because that member died and its queue pair
// broke — does not stop propagation to the remaining members: during a view
// change the survivors behind a dead peer in iteration order still need every
// update, or the recovery protocol would wait forever on rows that were never
// written. The first error is returned after all pushes were attempted.
func (t *Table) Set(col uint, value uint64) error {
	if int(col) >= t.cols {
		return fmt.Errorf("sst: column %d out of range (%d columns)", col, t.cols)
	}
	off := t.offset(t.rank, int(col))
	binary.LittleEndian.PutUint64(t.local[off:], value)
	// The pushed bytes are snapshotted rather than sliced out of t.local:
	// providers reference a posted buffer zero-copy until the write
	// completion fires, and a later Set of the same cell must not mutate
	// bytes an in-flight push still owns.
	push := make([]byte, 8)
	binary.LittleEndian.PutUint64(push, value)
	var firstErr error
	for rank, qp := range t.qps {
		if qp == nil {
			continue
		}
		if err := qp.PostWrite(region(t.id), off, push, value); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("sst: push to rank %d: %w", rank, err)
		}
	}
	return firstErr
}

// ColumnMin returns the minimum of a column across all rows — the stable
// frontier when rows publish monotone progress counters.
func (t *Table) ColumnMin(col int) uint64 {
	min := t.Get(0, col)
	for row := 1; row < len(t.members); row++ {
		if v := t.Get(row, col); v < min {
			min = v
		}
	}
	return min
}

// Row returns a copy of one row.
func (t *Table) Row(row int) []uint64 {
	out := make([]uint64, t.cols)
	for c := range out {
		out[c] = t.Get(row, c)
	}
	return out
}
