package sst

import (
	"testing"

	"rdmc/internal/rdma"
	"rdmc/internal/rdma/simnic"
	"rdmc/internal/simnet"
)

func testTables(t *testing.T, n, cols int) (*simnet.Sim, []*Table) {
	t.Helper()
	sim := simnet.NewSim(1)
	cluster, err := simnet.NewCluster(sim, simnet.ClusterConfig{
		Nodes:         n,
		LinkBandwidth: 1e9,
		Latency:       1e-6,
		CPU:           simnet.CPUConfig{Mode: simnet.ModePolling},
	})
	if err != nil {
		t.Fatal(err)
	}
	network := simnic.NewNetwork(cluster)
	ids := make([]rdma.NodeID, n)
	for i := range ids {
		ids[i] = rdma.NodeID(i)
	}
	tables := make([]*Table, n)
	for i := 0; i < n; i++ {
		p := network.Provider(ids[i])
		p.SetHandler(func(rdma.Completion) {})
		tb, err := New(p, 7, ids, cols, nil)
		if err != nil {
			t.Fatal(err)
		}
		tables[i] = tb
	}
	return sim, tables
}

func TestSetReplicatesToAllMembers(t *testing.T) {
	sim, tables := testTables(t, 3, 2)
	if err := tables[1].Set(0, 42); err != nil {
		t.Fatal(err)
	}
	if err := tables[1].Set(1, 7); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	for i, tb := range tables {
		if got := tb.Get(1, 0); got != 42 {
			t.Errorf("table %d cell (1,0) = %d, want 42", i, got)
		}
		if got := tb.Get(1, 1); got != 7 {
			t.Errorf("table %d cell (1,1) = %d, want 7", i, got)
		}
	}
}

func TestColumnMin(t *testing.T) {
	sim, tables := testTables(t, 4, 1)
	for i, tb := range tables {
		if err := tb.Set(0, uint64(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	for i, tb := range tables {
		if got := tb.ColumnMin(0); got != 10 {
			t.Errorf("table %d min = %d, want 10", i, got)
		}
	}
}

func TestWatchFiresOnRemoteUpdates(t *testing.T) {
	sim := simnet.NewSim(1)
	cluster, err := simnet.NewCluster(sim, simnet.ClusterConfig{
		Nodes:         2,
		LinkBandwidth: 1e9,
		Latency:       1e-6,
		CPU:           simnet.CPUConfig{Mode: simnet.ModePolling},
	})
	if err != nil {
		t.Fatal(err)
	}
	network := simnic.NewNetwork(cluster)
	ids := []rdma.NodeID{0, 1}
	tables := make([]*Table, 2)
	var updates [][2]int
	for i := range ids {
		p := network.Provider(ids[i])
		p.SetHandler(func(rdma.Completion) {})
		var onPush func(row, col int)
		if i == 1 {
			onPush = func(row, col int) { updates = append(updates, [2]int{row, col}) }
		}
		if tables[i], err = New(p, 7, ids, 1, onPush); err != nil {
			t.Fatal(err)
		}
	}
	if err := tables[0].Set(0, 5); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if len(updates) != 1 || updates[0] != [2]int{0, 0} {
		t.Errorf("updates = %v, want [[0 0]]", updates)
	}
}

func TestRowCopy(t *testing.T) {
	sim, tables := testTables(t, 2, 3)
	for c := uint(0); c < 3; c++ {
		if err := tables[0].Set(c, uint64(c)*100); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	row := tables[1].Row(0)
	if row[0] != 0 || row[1] != 100 || row[2] != 200 {
		t.Errorf("row = %v", row)
	}
}

func TestSetKeepsPushingPastDeadMember(t *testing.T) {
	sim := simnet.NewSim(1)
	cluster, err := simnet.NewCluster(sim, simnet.ClusterConfig{
		Nodes:         3,
		LinkBandwidth: 1e9,
		Latency:       1e-6,
		RetryTimeout:  1e-4,
		CPU:           simnet.CPUConfig{Mode: simnet.ModePolling},
	})
	if err != nil {
		t.Fatal(err)
	}
	network := simnic.NewNetwork(cluster)
	ids := []rdma.NodeID{0, 1, 2}
	tables := make([]*Table, 3)
	for i := range ids {
		p := network.Provider(ids[i])
		p.SetHandler(func(rdma.Completion) {})
		if tables[i], err = New(p, 7, ids, 1, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Node 1 dies. The first Set's push into it breaks the 0↔1 queue pair
	// after the retry timeout; the second Set then sees a posting error for
	// rank 1 but must still reach rank 2 — a survivor behind the dead peer
	// in iteration order.
	cluster.FailNode(1)
	if err := tables[0].Set(0, 1); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	err = tables[0].Set(0, 2)
	if err == nil {
		t.Error("Set reported no error with a broken member push")
	}
	sim.Run()
	if got := tables[2].Get(0, 0); got != 2 {
		t.Errorf("survivor replica = %d, want 2 (push must continue past the dead member)", got)
	}
}

func TestValidation(t *testing.T) {
	sim, _ := testTables(t, 2, 1)
	_ = sim
	cluster, err := simnet.NewCluster(simnet.NewSim(1), simnet.ClusterConfig{
		Nodes: 2, LinkBandwidth: 1e9, CPU: simnet.CPUConfig{Mode: simnet.ModePolling},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := simnic.NewNetwork(cluster).Provider(0)
	p.SetHandler(func(rdma.Completion) {})
	ids := []rdma.NodeID{0, 1}
	if _, err := New(p, 1, ids, 0, nil); err == nil {
		t.Error("zero columns accepted")
	}
	if _, err := New(p, 1, []rdma.NodeID{0}, 1, nil); err == nil {
		t.Error("single member accepted")
	}
	if _, err := New(p, 1<<30, ids, 1, nil); err == nil {
		t.Error("oversized id accepted")
	}
	if _, err := New(p, 1, []rdma.NodeID{4, 5}, 1, nil); err == nil {
		t.Error("non-member accepted")
	}
	tb, err := New(p, 1, ids, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Set(5, 1); err == nil {
		t.Error("out-of-range column accepted")
	}
}
