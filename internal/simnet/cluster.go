package simnet

import (
	"fmt"
	"math/rand"
)

// NodeID identifies a host within a simulated cluster.
type NodeID int

// ClusterConfig describes the modelled hardware. Bandwidths are in bytes per
// second and latencies in seconds. The zero value is not usable; start from
// a cluster model in package bench or fill every field.
type ClusterConfig struct {
	// Nodes is the number of hosts.
	Nodes int
	// LinkBandwidth is the full-duplex per-direction NIC capacity.
	LinkBandwidth float64
	// Latency is the one-way message latency (propagation + NIC pipeline)
	// charged to every transfer and control message.
	Latency float64
	// CPU configures the per-node software cost model.
	CPU CPUConfig
	// RackSize, when non-zero, arranges nodes into racks of this size
	// connected by a shared TOR trunk; zero models full bisection
	// bandwidth where only NIC ports constrain throughput.
	RackSize int
	// TrunkBandwidth is the per-rack uplink (and downlink) capacity when
	// RackSize is non-zero. A value below RackSize*LinkBandwidth models an
	// oversubscribed TOR, as on the paper's Apt cluster.
	TrunkBandwidth float64
	// RetryTimeout is the virtual time after which a transfer crossing a
	// broken link surfaces a connection-break completion, modelling NIC
	// retry exhaustion.
	RetryTimeout float64
	// Fabric, when non-nil, overlays the lossy WAN path model: a per-region
	// RTT matrix replacing the single Latency, seeded per-frame loss, and
	// bounded reordering (see FabricProfile in wan.go). Nil keeps the
	// lossless datacenter fabric, byte-identical to configurations that
	// predate the overlay.
	Fabric *FabricProfile
}

// Validate reports a descriptive error for an unusable configuration.
func (c ClusterConfig) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("simnet: cluster needs at least 1 node, got %d", c.Nodes)
	case c.LinkBandwidth <= 0:
		return fmt.Errorf("simnet: link bandwidth must be positive, got %g", c.LinkBandwidth)
	case c.Latency < 0:
		return fmt.Errorf("simnet: latency must be non-negative, got %g", c.Latency)
	case c.RackSize < 0:
		return fmt.Errorf("simnet: rack size must be non-negative, got %d", c.RackSize)
	case c.RackSize > 0 && c.TrunkBandwidth <= 0:
		return fmt.Errorf("simnet: two-tier topology needs a positive trunk bandwidth")
	}
	if c.Fabric != nil {
		return c.Fabric.Validate(c.Nodes)
	}
	return nil
}

// Cluster is a set of simulated hosts joined by a fabric.
type Cluster struct {
	sim    *Sim
	fabric *Fabric
	cfg    ClusterConfig
	nodes  []*node

	slow     map[[2]NodeID]*Resource
	broken   map[[2]NodeID]bool
	inFlight map[*Flow]transferState

	// lossRng feeds the fabric profile's loss and reorder draws. It is
	// seeded independently of the simulation's source and untouched when no
	// profile (or no loss) is configured, so the WAN overlay cannot perturb
	// profile-free runs.
	lossRng *rand.Rand
}

type node struct {
	id       NodeID
	tx, rx   *Resource
	cpu      *CPU
	rack     int
	rackUp   *Resource
	rackDown *Resource
	down     bool
}

type transferState struct {
	src, dst NodeID
	onDone   func(Outcome)
}

// NewCluster builds a cluster over the given simulation engine.
func NewCluster(sim *Sim, cfg ClusterConfig) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.RetryTimeout == 0 {
		cfg.RetryTimeout = 1e-3
	}
	lossSeed := int64(1)
	if cfg.Fabric != nil && cfg.Fabric.Seed != 0 {
		lossSeed = cfg.Fabric.Seed
	}
	c := &Cluster{
		sim:      sim,
		fabric:   NewFabric(sim),
		cfg:      cfg,
		slow:     make(map[[2]NodeID]*Resource),
		broken:   make(map[[2]NodeID]bool),
		inFlight: make(map[*Flow]transferState),
		lossRng:  rand.New(rand.NewSource(lossSeed)),
	}
	var uplinks, downlinks []*Resource
	if cfg.RackSize > 0 {
		racks := (cfg.Nodes + cfg.RackSize - 1) / cfg.RackSize
		for r := 0; r < racks; r++ {
			uplinks = append(uplinks, NewResource(fmt.Sprintf("rack%d.up", r), cfg.TrunkBandwidth))
			downlinks = append(downlinks, NewResource(fmt.Sprintf("rack%d.down", r), cfg.TrunkBandwidth))
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		n := &node{
			id:  NodeID(i),
			tx:  NewResource(fmt.Sprintf("node%d.tx", i), cfg.LinkBandwidth),
			rx:  NewResource(fmt.Sprintf("node%d.rx", i), cfg.LinkBandwidth),
			cpu: NewCPU(sim, cfg.CPU),
		}
		if cfg.RackSize > 0 {
			n.rack = i / cfg.RackSize
			n.rackUp = uplinks[n.rack]
			n.rackDown = downlinks[n.rack]
		}
		c.nodes = append(c.nodes, n)
	}
	return c, nil
}

// Sim returns the simulation engine the cluster runs on.
func (c *Cluster) Sim() *Sim { return c.sim }

// Config returns the cluster configuration.
func (c *Cluster) Config() ClusterConfig { return c.cfg }

// CPU returns the CPU model of the given node.
func (c *Cluster) CPU(id NodeID) *CPU { return c.nodes[id].cpu }

// Rack returns the rack index of a node (always 0 under full bisection).
func (c *Cluster) Rack(id NodeID) int { return c.nodes[id].rack }

// SetLinkBandwidth installs a dedicated capacity limit on the directed pair
// src→dst, modelling a slow link (§4.5's T′ experiment). A zero bandwidth
// removes the override.
func (c *Cluster) SetLinkBandwidth(src, dst NodeID, bandwidth float64) {
	key := [2]NodeID{src, dst}
	if bandwidth <= 0 {
		delete(c.slow, key)
		return
	}
	c.slow[key] = NewResource(fmt.Sprintf("slow:%d->%d", src, dst), bandwidth)
}

// BreakLink severs the directed pair src→dst. In-flight transfers on the pair
// surface broken completions after the retry timeout; new transfers break
// immediately after it.
func (c *Cluster) BreakLink(src, dst NodeID) {
	c.broken[[2]NodeID{src, dst}] = true
	c.breakMatching(func(t transferState) bool { return t.src == src && t.dst == dst })
}

// RestoreLink heals the directed pair src→dst after BreakLink: transfers
// started after the call route normally again. Transfers broken while the
// link was down stay broken — the retry timeout already fired or is armed —
// so healing re-admits new traffic without rewriting history, which is what a
// transient partition looks like to the endpoints.
func (c *Cluster) RestoreLink(src, dst NodeID) {
	delete(c.broken, [2]NodeID{src, dst})
}

// FailNode takes a host down: every transfer to or from it breaks.
func (c *Cluster) FailNode(id NodeID) {
	c.nodes[id].down = true
	c.breakMatching(func(t transferState) bool { return t.src == id || t.dst == id })
}

// RestoreNode brings a failed host back: new transfers to and from it are
// admitted again. Links broken individually with BreakLink stay broken until
// their own RestoreLink. Higher layers decide what a restored node means —
// the cluster only reopens the paths.
func (c *Cluster) RestoreNode(id NodeID) {
	c.nodes[id].down = false
}

// NodeFailed reports whether the host was failed.
func (c *Cluster) NodeFailed(id NodeID) bool { return c.nodes[id].down }

func (c *Cluster) breakMatching(match func(transferState) bool) {
	for fl, st := range c.inFlight {
		if !match(st) {
			continue
		}
		c.fabric.Cancel(fl)
		delete(c.inFlight, fl)
		done := st.onDone
		c.sim.After(c.cfg.RetryTimeout, func() { done(OutcomeBroken) })
	}
}

func (c *Cluster) pairBroken(src, dst NodeID) bool {
	return c.broken[[2]NodeID{src, dst}] || c.nodes[src].down || c.nodes[dst].down
}

// Transfer moves size bytes from src to dst with break semantics: onDone
// fires at arrival time with broken=false, or after the retry timeout with
// broken=true if the path failed. On a lossy fabric a dropped frame also
// surfaces broken=true — the NIC's retries cannot recover on a fabric
// modelled without them, which is exactly RDMC's inherited RC behavior when
// the lossless assumption is violated. Loss-tolerant transports use
// TransferFrame (wan.go) instead, which distinguishes one lost frame from a
// severed connection. Self-transfers complete after the control latency
// without consuming fabric capacity.
func (c *Cluster) Transfer(src, dst NodeID, size float64, onDone func(broken bool)) {
	c.frame(src, dst, size, false, func(o Outcome) { onDone(o == OutcomeBroken) })
}

// Ctrl delivers a small control message (latency only, no bandwidth cost).
// Frames on broken paths are silently dropped — the path swallows every
// datagram until it heals — and on a lossy fabric each datagram is dropped
// independently with the profile's CtrlLossRate (default 0: control traffic
// rides the reliable bootstrap mesh, not the lossy bulk path). Both drops
// route through the same frameFate decision point as bulk transfers, so
// "broken" and "lossy" are the same two states everywhere in the cluster.
func (c *Cluster) Ctrl(src, dst NodeID, onDeliver func()) {
	if c.frameFate(src, dst, c.ctrlLoss(src, dst)) != OutcomeDelivered {
		return
	}
	c.sim.After(c.pathLatency(src, dst), onDeliver)
}

// Racks returns the number of TOR trunks (zero under full bisection).
func (c *Cluster) Racks() int {
	if c.cfg.RackSize <= 0 {
		return 0
	}
	return (c.cfg.Nodes + c.cfg.RackSize - 1) / c.cfg.RackSize
}

// TrunkFlows returns the number of flows currently crossing the rack's
// uplink and downlink. Panics if the topology is flat; guard with Racks.
func (c *Cluster) TrunkFlows(rack int) (up, down int) {
	n := c.nodes[rack*c.cfg.RackSize]
	return n.rackUp.ActiveFlows(), n.rackDown.ActiveFlows()
}

// TrunkPressure returns the demand/capacity ratio of the rack's trunk in
// each direction: active flows × per-flow NIC capacity ÷ trunk capacity.
// Under the fabric's max-min allocation a used trunk always runs at its
// capacity, so achieved rate says nothing about contention — demand does.
// Values above 1 mean flows through the trunk are trunk-limited rather than
// NIC-limited. Panics if the topology is flat; guard with Racks.
func (c *Cluster) TrunkPressure(rack int) (up, down float64) {
	u, d := c.TrunkFlows(rack)
	scale := c.cfg.LinkBandwidth / c.cfg.TrunkBandwidth
	return float64(u) * scale, float64(d) * scale
}

// NodePortFlows returns the number of flows currently using the node's NIC
// transmit and receive ports.
func (c *Cluster) NodePortFlows(id NodeID) (tx, rx int) {
	n := c.nodes[id]
	return n.tx.ActiveFlows(), n.rx.ActiveFlows()
}

func (c *Cluster) path(src, dst NodeID) []*Resource {
	s, d := c.nodes[src], c.nodes[dst]
	path := make([]*Resource, 0, 5)
	path = append(path, s.tx)
	if extra, ok := c.slow[[2]NodeID{src, dst}]; ok {
		path = append(path, extra)
	}
	if c.cfg.RackSize > 0 && s.rack != d.rack {
		path = append(path, s.rackUp, d.rackDown)
	}
	path = append(path, d.rx)
	return path
}
