package simnet

import "fmt"

// This file is the lossy/WAN half of the cluster model. The datacenter
// fabric the rest of the repository simulates is lossless by assumption —
// RDMC's whole design leans on RC's in-order, no-drop delivery — so the only
// failure the base cluster knows is a *broken* path: a severed link or dead
// node on which frames are gone forever. A planetary-scale deployment breaks
// that assumption twice over: paths have wildly different latencies (a
// per-region RTT matrix instead of one global Latency) and they drop or
// reorder individual frames without being down.
//
// FabricProfile overlays exactly those behaviors. "Broken" and "lossy" stay
// distinct, deterministic states with one shared decision point (frameFate):
//
//   - broken path: every frame is dropped, forever, until the link heals.
//     Bulk transfers surface OutcomeBroken after the retry timeout (NIC retry
//     exhaustion); control datagrams are silently dropped (Cluster.Ctrl).
//   - lossy path: each frame is dropped independently with the profile's
//     seeded probability. Bulk transfers surface OutcomeLost at the virtual
//     time the frame's bytes finished crossing the fabric — the drop happens
//     downstream, so sender-side bandwidth is consumed either way. Control
//     datagrams are only lossy when CtrlLossRate says so (default 0: control
//     traffic rides the reliable bootstrap mesh, not the lossy bulk path).
//
// All loss and reorder draws come from a dedicated rand.Rand seeded by the
// profile, never from the simulation's shared source, and a profile-free (or
// loss-free) configuration makes zero draws — so enabling the WAN overlay on
// one experiment cannot perturb the virtual timeline of any other, and every
// existing configuration stays byte-identical.

// FabricProfile overlays WAN path behavior on a cluster: per-path latency
// from a region RTT matrix, seeded per-frame loss, and bounded reordering.
// The zero value of every field is the lossless datacenter default, so a
// profile can enable one behavior at a time.
type FabricProfile struct {
	// Seed fixes the loss and reorder draws. It is independent of the
	// simulation seed so the WAN overlay never perturbs other consumers of
	// the simulation's random source. Zero selects 1.
	Seed int64
	// Regions assigns node i to region Regions[i]. Nil places every node in
	// region 0 (single-region: the RTT matrix degenerates to one cell).
	Regions []int
	// RTT is the region-by-region round-trip matrix in seconds; the one-way
	// latency charged to a path is RTT[a][b]/2 and the diagonal holds the
	// intra-region RTT. Nil keeps the cluster's global Latency everywhere.
	RTT [][]float64
	// LossRate is the per-frame drop probability on cross-region paths —
	// the long-haul links where loss is real.
	LossRate float64
	// IntraLossRate is the per-frame drop probability on intra-region (and
	// self) paths; usually zero, the datacenter assumption.
	IntraLossRate float64
	// CtrlLossRate is the drop probability for control datagrams (Ctrl).
	// Zero — the default — models control traffic on the reliable bootstrap
	// mesh while only the bulk data path is lossy.
	CtrlLossRate float64
	// ReorderRate is the probability a delivered frame is held back by an
	// extra propagation delay, letting frames launched after it overtake —
	// the in-order wire guarantee does not survive a multi-path WAN. Only
	// loss-tolerant endpoints observe it: break-mode queue pairs re-impose
	// post order in their reorder buffers.
	ReorderRate float64
	// ReorderSpan is the maximum extra one-way delay, in seconds, a
	// reordered frame suffers (drawn uniformly). Zero selects half the
	// path's one-way latency.
	ReorderSpan float64
}

// Validate reports a descriptive error for an unusable profile overlaying a
// cluster of the given size.
func (f *FabricProfile) Validate(nodes int) error {
	if f.Regions != nil && len(f.Regions) != nodes {
		return fmt.Errorf("simnet: fabric profile assigns %d of %d nodes to regions", len(f.Regions), nodes)
	}
	maxRegion := 0
	for i, r := range f.Regions {
		if r < 0 {
			return fmt.Errorf("simnet: fabric profile node %d has negative region %d", i, r)
		}
		if r > maxRegion {
			maxRegion = r
		}
	}
	if f.RTT != nil {
		if len(f.RTT) <= maxRegion {
			return fmt.Errorf("simnet: fabric profile RTT matrix covers %d regions, nodes use %d", len(f.RTT), maxRegion+1)
		}
		for a, row := range f.RTT {
			if len(row) != len(f.RTT) {
				return fmt.Errorf("simnet: fabric profile RTT row %d has %d cells, want %d", a, len(row), len(f.RTT))
			}
			for b, rtt := range row {
				if rtt < 0 {
					return fmt.Errorf("simnet: fabric profile RTT[%d][%d] is negative", a, b)
				}
			}
		}
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"loss rate", f.LossRate},
		{"intra-region loss rate", f.IntraLossRate},
		{"ctrl loss rate", f.CtrlLossRate},
		{"reorder rate", f.ReorderRate},
	} {
		if p.v < 0 || p.v >= 1 {
			return fmt.Errorf("simnet: fabric profile %s %g outside [0,1)", p.name, p.v)
		}
	}
	if f.ReorderSpan < 0 {
		return fmt.Errorf("simnet: fabric profile reorder span must be non-negative, got %g", f.ReorderSpan)
	}
	return nil
}

// region maps a node to its region (0 when unassigned).
func (f *FabricProfile) region(id NodeID) int {
	if f == nil || f.Regions == nil {
		return 0
	}
	return f.Regions[id]
}

// Outcome classifies how one frame's crossing of the fabric ended. It is the
// three-state refinement of Transfer's broken bool that loss-tolerant
// transports consume (TransferFrame).
type Outcome int

// Frame outcomes.
const (
	// OutcomeDelivered: the frame arrived intact.
	OutcomeDelivered Outcome = iota
	// OutcomeLost: the frame was dropped by a lossy path. The path itself is
	// healthy — the next frame routes normally.
	OutcomeLost
	// OutcomeBroken: the path is severed (broken link or failed node); the
	// connection is gone, not just one frame.
	OutcomeBroken
)

func (o Outcome) String() string {
	switch o {
	case OutcomeDelivered:
		return "delivered"
	case OutcomeLost:
		return "lost"
	case OutcomeBroken:
		return "broken"
	default:
		return "unknown"
	}
}

// frameFate is the single decision point for what the fabric does to one
// frame or datagram on the directed path src→dst: broken paths swallow
// everything, lossy paths drop independently per frame with probability p
// (drawn from the profile's dedicated source), healthy paths deliver. Both
// Transfer and Ctrl route through it, so "broken" and "lossy" cannot drift
// into different semantics per call site.
func (c *Cluster) frameFate(src, dst NodeID, p float64) Outcome {
	if c.pairBroken(src, dst) {
		return OutcomeBroken
	}
	if p > 0 && c.lossRng.Float64() < p {
		return OutcomeLost
	}
	return OutcomeDelivered
}

// pathLatency is the one-way latency charged to the directed path src→dst:
// half the region RTT under a profile with a matrix, the global Latency
// otherwise.
func (c *Cluster) pathLatency(src, dst NodeID) float64 {
	f := c.cfg.Fabric
	if f == nil || f.RTT == nil {
		return c.cfg.Latency
	}
	return f.RTT[f.region(src)][f.region(dst)] / 2
}

// pathLoss is the per-frame drop probability for bulk data on src→dst.
func (c *Cluster) pathLoss(src, dst NodeID) float64 {
	f := c.cfg.Fabric
	if f == nil {
		return 0
	}
	if f.region(src) == f.region(dst) {
		return f.IntraLossRate
	}
	return f.LossRate
}

// ctrlLoss is the drop probability for control datagrams on src→dst.
func (c *Cluster) ctrlLoss(src, dst NodeID) float64 {
	f := c.cfg.Fabric
	if f == nil {
		return 0
	}
	_ = src
	_ = dst
	return f.CtrlLossRate
}

// reorderDelay draws the extra propagation delay for one delivered frame on
// src→dst: zero for most frames, a uniform draw up to the profile's span for
// the ReorderRate fraction that took the long path.
func (c *Cluster) reorderDelay(src, dst NodeID) float64 {
	f := c.cfg.Fabric
	if f == nil || f.ReorderRate <= 0 {
		return 0
	}
	if c.lossRng.Float64() >= f.ReorderRate {
		return 0
	}
	span := f.ReorderSpan
	if span == 0 {
		span = c.pathLatency(src, dst) / 2
	}
	return c.lossRng.Float64() * span
}

// TransferFrame moves size bytes from src to dst with loss-tolerant
// semantics: onDone fires with OutcomeDelivered at arrival time, with
// OutcomeLost at the virtual time a lossy path finished carrying (and then
// dropped) the frame, or with OutcomeBroken after the retry timeout when the
// path is severed. This is the wire a selective-retransmit transport builds
// on; break-semantics callers use Transfer, which maps loss to breakage as
// RC retry exhaustion would.
func (c *Cluster) TransferFrame(src, dst NodeID, size float64, onDone func(Outcome)) {
	c.frame(src, dst, size, true, onDone)
}

// frame is the shared implementation under Transfer (tolerant=false: a lossy
// drop is NIC retry exhaustion, surfaced as OutcomeBroken after the retry
// timeout) and TransferFrame (tolerant=true: a lossy drop surfaces as
// OutcomeLost without condemning the connection). All random draws happen at
// call time, in a fixed order (loss, then reorder), from the profile's
// dedicated source — the determinism contract.
func (c *Cluster) frame(src, dst NodeID, size float64, tolerant bool, onDone func(Outcome)) {
	switch c.frameFate(src, dst, c.pathLoss(src, dst)) {
	case OutcomeBroken:
		c.sim.After(c.cfg.RetryTimeout, func() { onDone(OutcomeBroken) })
		return
	case OutcomeLost:
		if !tolerant {
			// Break semantics: the NIC's hardware retries cannot recover on
			// a fabric modelled without them, so a drop is retry exhaustion.
			c.sim.After(c.cfg.RetryTimeout, func() { onDone(OutcomeBroken) })
			return
		}
		// The frame crosses the fabric and is dropped downstream: charge
		// propagation and bandwidth, then report the loss at the time the
		// last byte would have landed.
		c.launch(src, dst, size, 0, OutcomeLost, onDone)
		return
	}
	c.launch(src, dst, size, c.reorderDelay(src, dst), OutcomeDelivered, onDone)
}

// launch charges the path latency, re-checks for breakage (the path may have
// been severed while the frame was in the NIC pipeline), and runs the frame
// as a fabric flow. onDone fires with result extra seconds after the flow
// completes, or with OutcomeBroken (after the retry timeout) if the path is
// severed before or during the flow.
func (c *Cluster) launch(src, dst NodeID, size, extra float64, result Outcome, onDone func(Outcome)) {
	if src == dst {
		c.sim.After(c.pathLatency(src, dst)+extra, func() { onDone(result) })
		return
	}
	path := c.path(src, dst)
	c.sim.After(c.pathLatency(src, dst), func() {
		if c.pairBroken(src, dst) {
			c.sim.After(c.cfg.RetryTimeout, func() { onDone(OutcomeBroken) })
			return
		}
		var fl *Flow
		fl = c.fabric.StartFlow(size, path, func() {
			delete(c.inFlight, fl)
			if extra > 0 {
				c.sim.After(extra, func() { onDone(result) })
				return
			}
			onDone(result)
		})
		c.inFlight[fl] = transferState{src: src, dst: dst, onDone: onDone}
	})
}
