// Package simnet is a deterministic discrete-event network simulator used as
// the substitute for RDMA hardware in this reproduction of RDMC (DSN 2018).
//
// It has three layers:
//
//   - an event engine with a virtual clock (this file),
//   - a fluid-flow fabric that models full-duplex NIC ports, shared switch
//     trunks, and max-min fair bandwidth allocation (fluid.go), which is the
//     steady state that datacenter congestion control (DCQCN, TIMELY)
//     converges to, and
//   - a per-node CPU model that accounts for software overheads, completion
//     delivery modes (polling / interrupt / hybrid), and injected scheduling
//     delays (cpu.go).
//
// All time is float64 seconds of virtual time. A simulation run is fully
// deterministic for a fixed seed: simultaneous events fire in the order they
// were scheduled.
package simnet

import (
	"container/heap"
	"math/rand"
	"time"
)

// Sim is a discrete-event simulation engine with a virtual clock.
type Sim struct {
	now    float64
	seq    int64
	events eventHeap
	rng    *rand.Rand
}

// NewSim returns an engine whose clock starts at zero. The seed fixes all
// randomness used by delay injectors and workload generators attached to it.
func NewSim(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// NowDuration returns the current virtual time as a time.Duration.
func (s *Sim) NowDuration() time.Duration {
	return time.Duration(s.now * float64(time.Second))
}

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// runs the event at the current time (events never travel backwards).
func (s *Sim) At(t float64, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	ev := &Event{time: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return ev
}

// After schedules fn to run d seconds of virtual time from now.
func (s *Sim) After(d float64, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Run executes events until the queue is empty and returns the final time.
func (s *Sim) Run() float64 {
	for s.Step() {
	}
	return s.now
}

// RunUntil executes events with time ≤ deadline; remaining events stay queued.
// It reports whether the queue was drained.
func (s *Sim) RunUntil(deadline float64) bool {
	for {
		ev := s.peek()
		if ev == nil {
			return true
		}
		if ev.time > deadline {
			s.now = deadline
			return false
		}
		s.Step()
	}
}

// Step executes the single earliest pending event. It reports whether an
// event was executed.
func (s *Sim) Step() bool {
	for {
		if s.events.Len() == 0 {
			return false
		}
		ev, ok := heap.Pop(&s.events).(*Event)
		if !ok || ev.cancelled {
			continue
		}
		s.now = ev.time
		ev.fn()
		return true
	}
}

// Pending reports the number of live queued events.
func (s *Sim) Pending() int {
	n := 0
	for _, ev := range s.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

func (s *Sim) peek() *Event {
	for s.events.Len() > 0 {
		if ev := s.events[0]; !ev.cancelled {
			return ev
		}
		heap.Pop(&s.events)
	}
	return nil
}

// Event is a handle to a scheduled callback; it can be cancelled before it
// fires.
type Event struct {
	time      float64
	seq       int64
	fn        func()
	cancelled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired event is
// a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Time returns the virtual time the event is scheduled for.
func (e *Event) Time() float64 { return e.time }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if ok {
		*h = append(*h, ev)
	}
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
