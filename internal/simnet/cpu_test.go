package simnet

import (
	"testing"
)

func TestCPUExecSerializesTasks(t *testing.T) {
	s := NewSim(1)
	cpu := NewCPU(s, CPUConfig{Mode: ModePolling})
	var ends []float64
	cpu.Exec(1.0, func() { ends = append(ends, s.Now()) })
	cpu.Exec(2.0, func() { ends = append(ends, s.Now()) })
	s.Run()
	if len(ends) != 2 {
		t.Fatalf("tasks run = %d, want 2", len(ends))
	}
	approx(t, ends[0], 1.0, 1e-12, "first task end")
	approx(t, ends[1], 3.0, 1e-12, "second task queued behind first")
	approx(t, cpu.BusySeconds(), 3.0, 1e-12, "busy accounting")
}

func TestCPUExecLaterSubmissionStartsWhenFree(t *testing.T) {
	s := NewSim(1)
	cpu := NewCPU(s, CPUConfig{Mode: ModePolling})
	var end float64
	cpu.Exec(1.0, func() {})
	s.At(5.0, func() {
		cpu.Exec(1.0, func() { end = s.Now() })
	})
	s.Run()
	approx(t, end, 6.0, 1e-12, "idle CPU starts immediately")
}

func TestCPUDeliverModes(t *testing.T) {
	const (
		compCost = 1e-6
		irqLat   = 10e-6
	)
	run := func(mode CompletionMode, window float64) float64 {
		s := NewSim(1)
		cpu := NewCPU(s, CPUConfig{
			CompletionCost:   compCost,
			InterruptLatency: irqLat,
			PollWindow:       window,
			Mode:             mode,
		})
		var at float64
		s.At(1.0, func() { cpu.Deliver(func() { at = s.Now() }) })
		s.Run()
		return at - 1.0
	}

	approx(t, run(ModePolling, 0), compCost, 1e-12, "polling delivery cost")
	approx(t, run(ModeInterrupt, 0), irqLat+compCost, 1e-12, "interrupt delivery cost")
	// Hybrid with a cold completion queue pays the interrupt.
	approx(t, run(ModeHybrid, 50e-3), irqLat+compCost, 1e-12, "hybrid cold delivery")
}

func TestCPUHybridPollsWithinWindow(t *testing.T) {
	s := NewSim(1)
	cpu := NewCPU(s, CPUConfig{
		CompletionCost:   1e-6,
		InterruptLatency: 10e-6,
		PollWindow:       50e-3,
		Mode:             ModeHybrid,
	})
	var second float64
	s.At(1.0, func() { cpu.Deliver(func() {}) })
	s.At(1.01, func() { cpu.Deliver(func() { second = s.Now() }) }) // inside window
	s.Run()
	approx(t, second-1.01, 1e-6, 1e-12, "hybrid warm delivery skips interrupt")
}

func TestCPUHybridInterruptsAfterWindow(t *testing.T) {
	s := NewSim(1)
	cpu := NewCPU(s, CPUConfig{
		CompletionCost:   1e-6,
		InterruptLatency: 10e-6,
		PollWindow:       50e-3,
		Mode:             ModeHybrid,
	})
	var second float64
	s.At(1.0, func() { cpu.Deliver(func() {}) })
	s.At(2.0, func() { cpu.Deliver(func() { second = s.Now() }) }) // window expired
	s.Run()
	approx(t, second-2.0, 11e-6, 1e-12, "hybrid cold delivery pays interrupt")
}

func TestCPUDelayInjection(t *testing.T) {
	s := NewSim(1)
	cpu := NewCPU(s, CPUConfig{
		Mode:          ModePolling,
		DelayInjector: func() float64 { return 0.5 },
	})
	var end float64
	cpu.Exec(1.0, func() { end = s.Now() })
	s.Run()
	approx(t, end, 1.5, 1e-12, "injected delay extends occupancy")
	approx(t, cpu.InjectedDelaySeconds(), 0.5, 1e-12, "injected delay accounting")
	approx(t, cpu.BusySeconds(), 1.0, 1e-12, "busy excludes injected delay")
}

func TestCPUUtilizationByMode(t *testing.T) {
	s := NewSim(1)
	poll := NewCPU(s, CPUConfig{Mode: ModePolling})
	irq := NewCPU(s, CPUConfig{Mode: ModeInterrupt})
	poll.Exec(1.0, func() {})
	irq.Exec(1.0, func() {})
	s.Run()
	approx(t, poll.Utilization(10), 1.0, 1e-12, "polling pins a core")
	approx(t, irq.Utilization(10), 0.1, 1e-12, "interrupt pays only task time")
	approx(t, irq.Utilization(0), 0, 1e-12, "zero session duration")
}

func TestCompletionModeString(t *testing.T) {
	tests := []struct {
		mode CompletionMode
		want string
	}{
		{ModeHybrid, "hybrid"},
		{ModePolling, "polling"},
		{ModeInterrupt, "interrupts"},
		{CompletionMode(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.mode.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", tt.mode, got, tt.want)
		}
	}
}
