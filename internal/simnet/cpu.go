package simnet

// CompletionMode selects how NIC completions reach the software layer,
// mirroring the RDMC paper's §5.2.3 resource-consideration experiments.
type CompletionMode int

const (
	// ModeHybrid polls for a window after each completion event and then
	// falls back to interrupts: RDMC's default (50 ms window in the paper).
	ModeHybrid CompletionMode = iota + 1
	// ModePolling burns a core spinning on the completion queue; delivery
	// is immediate but CPU utilization is 100% while a session is active.
	ModePolling
	// ModeInterrupt blocks on the completion channel; each completion pays
	// an interrupt wake-up latency but the CPU is otherwise idle.
	ModeInterrupt
)

func (m CompletionMode) String() string {
	switch m {
	case ModeHybrid:
		return "hybrid"
	case ModePolling:
		return "polling"
	case ModeInterrupt:
		return "interrupts"
	default:
		return "unknown"
	}
}

// CPUConfig holds the software-overhead constants of a node. The defaults are
// order-of-magnitude values for the paper's Xeon-class hosts.
type CPUConfig struct {
	// PostCost is the CPU time to post one work request (send or recv).
	PostCost float64
	// CompletionCost is the CPU time to process one completion upcall.
	CompletionCost float64
	// InterruptLatency is the wake-up delay paid per completion in
	// interrupt mode (or in hybrid mode outside the polling window).
	InterruptLatency float64
	// PollWindow is the hybrid-mode duration after an event during which
	// completions are picked up by polling.
	PollWindow float64
	// Mode selects the completion delivery mode.
	Mode CompletionMode
	// DelayInjector, when non-nil, returns an extra occupancy delay
	// (seconds) sampled per CPU task; it models OS scheduling preemptions
	// (§4.5, Figure 5's anomalous wait).
	DelayInjector func() float64
}

// DefaultCPUConfig returns the constants used by the benchmark harness.
func DefaultCPUConfig() CPUConfig {
	return CPUConfig{
		PostCost:         0.7e-6,
		CompletionCost:   1.0e-6,
		InterruptLatency: 6.0e-6,
		PollWindow:       50e-3,
		Mode:             ModeHybrid,
	}
}

// CPU models a node's software execution as a serial resource: tasks execute
// one at a time in submission order, each occupying the CPU for its cost plus
// any injected scheduling delay.
type CPU struct {
	sim  *Sim
	cfg  CPUConfig
	free float64 // time the CPU becomes free

	busy          float64 // accumulated task seconds
	injectedDelay float64 // accumulated injected delay seconds
	lastEvent     float64 // last completion event (hybrid window tracking)
}

// NewCPU returns a CPU bound to the simulation clock.
func NewCPU(sim *Sim, cfg CPUConfig) *CPU {
	return &CPU{sim: sim, cfg: cfg, lastEvent: -1e18}
}

// Config returns the CPU's configuration.
func (c *CPU) Config() CPUConfig { return c.cfg }

// Exec schedules fn after the CPU has spent cost seconds on the task,
// queueing behind earlier tasks. It returns the virtual completion time.
func (c *CPU) Exec(cost float64, fn func()) float64 {
	start := c.sim.Now()
	if c.free > start {
		start = c.free
	}
	delay := 0.0
	if c.cfg.DelayInjector != nil {
		delay = c.cfg.DelayInjector()
	}
	end := start + cost + delay
	c.free = end
	c.busy += cost
	c.injectedDelay += delay
	c.sim.At(end, fn)
	return end
}

// Deliver routes a NIC completion to fn, charging the mode-dependent delivery
// latency and the completion processing cost.
func (c *CPU) Deliver(fn func()) {
	now := c.sim.Now()
	wake := 0.0
	switch c.cfg.Mode {
	case ModePolling:
	case ModeInterrupt:
		wake = c.cfg.InterruptLatency
	case ModeHybrid:
		if now-c.lastEvent > c.cfg.PollWindow {
			wake = c.cfg.InterruptLatency
		}
	}
	c.lastEvent = now
	if wake > 0 {
		c.sim.After(wake, func() { c.Exec(c.cfg.CompletionCost, fn) })
		return
	}
	c.Exec(c.cfg.CompletionCost, fn)
}

// Post charges the work-request posting cost and then runs fn.
func (c *CPU) Post(fn func()) { c.Exec(c.cfg.PostCost, fn) }

// BusySeconds returns the accumulated task execution time (excluding
// injected delays).
func (c *CPU) BusySeconds() float64 { return c.busy }

// InjectedDelaySeconds returns the accumulated injected scheduling delay.
func (c *CPU) InjectedDelaySeconds() float64 { return c.injectedDelay }

// Utilization returns the CPU utilization over a session of the given
// duration. Polling mode (and hybrid mode, which in practice polls
// continuously during active transfers) pins a core, matching the paper's
// "almost exactly 100%" observation; interrupt mode pays only task time.
func (c *CPU) Utilization(sessionSeconds float64) float64 {
	if sessionSeconds <= 0 {
		return 0
	}
	switch c.cfg.Mode {
	case ModePolling, ModeHybrid:
		return 1.0
	default:
		u := c.busy / sessionSeconds
		if u > 1 {
			u = 1
		}
		return u
	}
}
