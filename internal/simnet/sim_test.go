package simnet

import (
	"testing"
)

func TestSimRunsEventsInTimeOrder(t *testing.T) {
	s := NewSim(1)
	var got []int
	s.At(3.0, func() { got = append(got, 3) })
	s.At(1.0, func() { got = append(got, 1) })
	s.At(2.0, func() { got = append(got, 2) })
	end := s.Run()
	if end != 3.0 {
		t.Errorf("end time = %v, want 3.0", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSimTieBreaksBySchedulingOrder(t *testing.T) {
	s := NewSim(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(1.0, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("simultaneous events out of scheduling order: %v", got)
		}
	}
}

func TestSimAfterIsRelative(t *testing.T) {
	s := NewSim(1)
	var at float64
	s.At(5.0, func() {
		s.After(2.5, func() { at = s.Now() })
	})
	s.Run()
	if at != 7.5 {
		t.Errorf("After fired at %v, want 7.5", at)
	}
}

func TestSimPastEventRunsNow(t *testing.T) {
	s := NewSim(1)
	var at float64 = -1
	s.At(5.0, func() {
		s.At(1.0, func() { at = s.Now() })
	})
	s.Run()
	if at != 5.0 {
		t.Errorf("past event fired at %v, want clamped to 5.0", at)
	}
}

func TestSimCancelledEventDoesNotFire(t *testing.T) {
	s := NewSim(1)
	fired := false
	ev := s.At(1.0, func() { fired = true })
	ev.Cancel()
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestSimRunUntilStopsAtDeadline(t *testing.T) {
	s := NewSim(1)
	var fired []float64
	s.At(1.0, func() { fired = append(fired, 1.0) })
	s.At(3.0, func() { fired = append(fired, 3.0) })
	drained := s.RunUntil(2.0)
	if drained {
		t.Error("RunUntil reported drained with a pending event")
	}
	if len(fired) != 1 || fired[0] != 1.0 {
		t.Errorf("fired = %v, want [1.0]", fired)
	}
	if s.Now() != 2.0 {
		t.Errorf("Now = %v, want deadline 2.0", s.Now())
	}
	if !s.RunUntil(10.0) {
		t.Error("second RunUntil should drain the queue")
	}
	if len(fired) != 2 {
		t.Errorf("fired = %v, want both events", fired)
	}
}

func TestSimPendingCountsLiveEvents(t *testing.T) {
	s := NewSim(1)
	s.At(1, func() {})
	ev := s.At(2, func() {})
	ev.Cancel()
	if got := s.Pending(); got != 1 {
		t.Errorf("Pending = %d, want 1", got)
	}
}

func TestSimDeterministicRand(t *testing.T) {
	a := NewSim(42).Rand().Int63()
	b := NewSim(42).Rand().Int63()
	if a != b {
		t.Error("same seed produced different random streams")
	}
}
