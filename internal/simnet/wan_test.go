package simnet

import (
	"testing"
)

// wanConfig is a 4-node, 2-region WAN overlay: nodes {0,1} in region 0,
// {2,3} in region 1, 1 ms intra-region RTT, 100 ms cross-region RTT.
func wanConfig(loss float64) ClusterConfig {
	cfg := testConfig(4)
	cfg.Fabric = &FabricProfile{
		Seed:     7,
		Regions:  []int{0, 0, 1, 1},
		RTT:      [][]float64{{0.001, 0.100}, {0.100, 0.001}},
		LossRate: loss,
	}
	return cfg
}

func TestFabricProfileValidate(t *testing.T) {
	bad := []ClusterConfig{}
	add := func(mutate func(*FabricProfile)) {
		cfg := wanConfig(0)
		mutate(cfg.Fabric)
		bad = append(bad, cfg)
	}
	add(func(f *FabricProfile) { f.Regions = []int{0, 0, 1} })       // wrong length
	add(func(f *FabricProfile) { f.Regions = []int{0, 0, 1, -1} })   // negative region
	add(func(f *FabricProfile) { f.Regions = []int{0, 0, 1, 2} })    // region outside matrix
	add(func(f *FabricProfile) { f.RTT = [][]float64{{0.001}} })     // matrix smaller than regions
	add(func(f *FabricProfile) { f.RTT = [][]float64{{1, 1}, {1}} }) // ragged row
	add(func(f *FabricProfile) { f.RTT[0][1] = -1 })                 // negative RTT
	add(func(f *FabricProfile) { f.LossRate = 1.0 })                 // certain loss is a broken link, not a lossy one
	add(func(f *FabricProfile) { f.ReorderRate = -0.1 })             //
	add(func(f *FabricProfile) { f.CtrlLossRate = 2 })               //
	add(func(f *FabricProfile) { f.ReorderSpan = -1 })               //
	for i, cfg := range bad {
		if _, err := NewCluster(NewSim(1), cfg); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
	if _, err := NewCluster(NewSim(1), wanConfig(0.5)); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestFabricRTTMatrixReplacesGlobalLatency(t *testing.T) {
	s := NewSim(1)
	c, err := NewCluster(s, wanConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	var intra, cross float64 = -1, -1
	c.Ctrl(0, 1, func() { intra = s.Now() })
	c.Ctrl(0, 2, func() { cross = s.Now() })
	s.Run()
	approx(t, intra, 0.0005, 1e-9, "intra-region ctrl (RTT/2)")
	approx(t, cross, 0.050, 1e-9, "cross-region ctrl (RTT/2)")

	// Bulk transfers charge the same per-path propagation before the flow.
	var done float64 = -1
	c.TransferFrame(0, 2, 100, func(o Outcome) {
		if o != OutcomeDelivered {
			t.Errorf("loss-free transfer outcome %v", o)
		}
		done = s.Now()
	})
	s.Run()
	approx(t, done-0.050, 0.050+1.0, 1e-9, "cross-region transfer (RTT/2 + size/bw)")
}

func TestBrokenAndLossyAreDistinctStates(t *testing.T) {
	s := NewSim(1)
	cfg := wanConfig(0) // lossless profile: isolate the broken path
	c, err := NewCluster(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.BreakLink(0, 2)

	// Broken path: the frame surfaces OutcomeBroken after the retry timeout
	// and the control datagram is silently dropped.
	var got Outcome = -1
	var at float64
	c.TransferFrame(0, 2, 100, func(o Outcome) { got, at = o, s.Now() })
	delivered := false
	c.Ctrl(0, 2, func() { delivered = true })
	s.Run()
	if got != OutcomeBroken {
		t.Errorf("broken path outcome %v, want broken", got)
	}
	approx(t, at, c.Config().RetryTimeout, 1e-9, "retry timeout surfaces breakage")
	if delivered {
		t.Error("ctrl datagram crossed a broken path")
	}

	// Lossy path: a certain-loss link (via a loss rate just under 1) drops
	// the frame but reports OutcomeLost at bandwidth time — the connection
	// is alive — and control datagrams still cross (CtrlLossRate 0).
	s2 := NewSim(1)
	cfg2 := wanConfig(0.999999)
	c2, err := NewCluster(s2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	got = -1
	c2.TransferFrame(0, 2, 100, func(o Outcome) { got, at = o, s2.Now() })
	delivered = false
	c2.Ctrl(0, 2, func() { delivered = true })
	s2.Run()
	if got != OutcomeLost {
		t.Errorf("lossy path outcome %v, want lost", got)
	}
	approx(t, at, 0.050+1.0, 1e-6, "loss reported when the last byte would have landed")
	if !delivered {
		t.Error("ctrl datagram dropped although only the bulk path is lossy")
	}
}

func TestBreakModeTransferMapsLossToBreakage(t *testing.T) {
	s := NewSim(1)
	cfg := wanConfig(0.999999)
	c, err := NewCluster(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	broken := false
	var at float64
	c.Transfer(0, 2, 100, func(b bool) { broken, at = b, s.Now() })
	s.Run()
	if !broken {
		t.Fatal("break-semantics transfer survived a dropped frame")
	}
	approx(t, at, c.Config().RetryTimeout, 1e-9, "retry exhaustion after the retry timeout")
}

func TestCtrlLossRateDropsDatagrams(t *testing.T) {
	s := NewSim(1)
	cfg := wanConfig(0)
	cfg.Fabric.CtrlLossRate = 0.999999
	c, err := NewCluster(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	delivered := false
	c.Ctrl(0, 2, func() { delivered = true })
	s.Run()
	if delivered {
		t.Error("ctrl datagram survived a certain-loss control channel")
	}
}

func TestLossDrawsAreSeededDeterministic(t *testing.T) {
	outcomes := func(seed int64) []Outcome {
		s := NewSim(1)
		cfg := wanConfig(0.3)
		cfg.Fabric.Seed = seed
		c, err := NewCluster(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var got []Outcome
		for i := 0; i < 40; i++ {
			c.TransferFrame(0, 2, 10, func(o Outcome) { got = append(got, o) })
		}
		s.Run()
		return got
	}
	a, b := outcomes(7), outcomes(7)
	lost := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at frame %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] == OutcomeLost {
			lost++
		}
	}
	if lost == 0 || lost == len(a) {
		t.Errorf("30%% loss produced %d/%d lost frames", lost, len(a))
	}
	diff := false
	for i, o := range outcomes(8) {
		if o != a[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical loss patterns")
	}
}

func TestLossOffMakesNoRandomDraws(t *testing.T) {
	// The determinism contract behind "existing configs stay byte-identical":
	// a profile with loss and reorder disabled must consume nothing from the
	// loss source, so its presence cannot shift any draw sequence.
	s := NewSim(1)
	cfg := wanConfig(0)
	c, err := NewCluster(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := c.lossRng.Int63()
	c2, err := NewCluster(NewSim(1), wanConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		c2.TransferFrame(0, 2, 10, func(Outcome) {})
		c2.Ctrl(0, 2, func() {})
	}
	c2.Sim().Run()
	if got := c2.lossRng.Int63(); got != before {
		t.Errorf("loss-free traffic consumed random draws: next draw %d, want %d", got, before)
	}
}

func TestReorderDeliversOutOfOrder(t *testing.T) {
	s := NewSim(1)
	cfg := wanConfig(0)
	cfg.Fabric.ReorderRate = 0.5
	cfg.Fabric.ReorderSpan = 2.5
	c, err := NewCluster(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Equal-size frames posted back to back complete their flows in post
	// order; only the reorder overlay can flip arrival order. With a wide
	// span and 50% rate, some adjacent pair must flip.
	var order []int
	for i := 0; i < 16; i++ {
		i := i
		c.TransferFrame(0, 2, 1, func(o Outcome) {
			if o != OutcomeDelivered {
				t.Errorf("frame %d outcome %v", i, o)
			}
			order = append(order, i)
		})
	}
	s.Run()
	if len(order) != 16 {
		t.Fatalf("delivered %d of 16 frames", len(order))
	}
	flipped := false
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			flipped = true
			break
		}
	}
	if !flipped {
		t.Errorf("no reordering observed across %v", order)
	}
}

func TestMidFlowBreakSurfacesBrokenNotResult(t *testing.T) {
	s := NewSim(1)
	c, err := NewCluster(s, wanConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	var got Outcome = -1
	c.TransferFrame(0, 2, 100, func(o Outcome) { got = o })
	// The flow starts after 50 ms propagation and needs 1 s of bandwidth;
	// sever the link in the middle of the flow.
	s.After(0.5, func() { c.BreakLink(0, 2) })
	s.Run()
	if got != OutcomeBroken {
		t.Errorf("mid-flow break surfaced %v, want broken", got)
	}
}
