package simnet

import (
	"fmt"
	"math"
	"sort"
)

// completionSlack is the residual byte count below which a flow is considered
// finished; it absorbs float64 rounding across rate recomputations.
const completionSlack = 1e-3

// Resource is a capacity-limited element of the fabric: a NIC transmit port,
// a NIC receive port, or a shared switch trunk. Concurrent flows crossing a
// resource share its capacity max-min fairly.
type Resource struct {
	name     string
	capacity float64 // bytes per second
	flows    []*Flow
	fab      *Fabric // the fabric that last routed a flow across this resource
}

// NewResource returns a resource with the given capacity in bytes per second.
func NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("simnet: resource %q capacity must be positive", name))
	}
	return &Resource{name: name, capacity: capacity}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the resource capacity in bytes per second.
func (r *Resource) Capacity() float64 { return r.capacity }

// SetCapacity changes the capacity, immediately re-allocating the affected
// component: flows crossing the resource (and everything transitively
// sharing a resource with them) are settled — charged for progress at their
// old rates up to now — before the capacity changes, and their rates and
// completion events are then recomputed under the new allocation. Without
// the settle/reallocate pass, in-flight flows would keep stale rates until
// an unrelated flow event happened to touch their component. A resource
// carrying no flows just records the new value.
func (r *Resource) SetCapacity(c float64) {
	if c <= 0 {
		panic(fmt.Sprintf("simnet: resource %q capacity must be positive", r.name))
	}
	if r.fab == nil || len(r.flows) == 0 {
		r.capacity = c
		return
	}
	f := r.fab
	comp := f.component([]*Resource{r})
	f.settle(comp)
	r.capacity = c
	f.reallocate(comp)
}

// ActiveFlows returns the number of flows currently crossing the resource.
func (r *Resource) ActiveFlows() int { return len(r.flows) }

func (r *Resource) addFlow(f *Flow) { r.flows = append(r.flows, f) }

func (r *Resource) removeFlow(f *Flow) {
	for i, g := range r.flows {
		if g == f {
			r.flows = append(r.flows[:i], r.flows[i+1:]...)
			return
		}
	}
}

// Flow is a bulk transfer in progress across a path of resources.
type Flow struct {
	id         int64
	remaining  float64 // bytes left at lastUpdate
	rate       float64 // bytes per second under the current allocation
	path       []*Resource
	lastUpdate float64 // virtual time at which remaining was settled
	onDone     func()
	doneEv     *Event
	finished   bool

	// waterfill scratch state
	fixed bool
}

// Rate returns the flow's current allocated rate in bytes per second.
func (f *Flow) Rate() float64 { return f.rate }

// Fabric owns all flows and performs incremental max-min fair allocation.
// When a flow starts or finishes, only the connected component of flows that
// transitively share resources with it is re-allocated, which keeps large
// simulations (hundreds of nodes, each with an isolated sender/receiver pair)
// cheap.
type Fabric struct {
	sim    *Sim
	nextID int64

	// reallocate scratch, reused across calls to keep the per-flow-event
	// allocation count flat in large simulations. Safe because the fabric
	// is driven from the single-threaded event loop and reallocate never
	// reenters itself.
	resIdx    map[*Resource]int32 // resource → index into states
	resources []*Resource
	states    []resState
	prevRates []float64
}

// NewFabric returns a fabric driven by the given simulation clock.
func NewFabric(sim *Sim) *Fabric {
	return &Fabric{sim: sim}
}

// StartFlow begins transferring size bytes across path. onDone runs at the
// virtual time the last byte arrives. A zero-size flow completes after one
// event-loop tick.
func (f *Fabric) StartFlow(size float64, path []*Resource, onDone func()) *Flow {
	if len(path) == 0 {
		panic("simnet: flow path must contain at least one resource")
	}
	fl := &Flow{
		id:         f.nextID,
		remaining:  size,
		path:       path,
		lastUpdate: f.sim.Now(),
		onDone:     onDone,
	}
	f.nextID++
	comp := f.component(fl.path)
	f.settle(comp)
	for _, r := range fl.path {
		r.fab = f
		r.addFlow(fl)
	}
	comp = append(comp, fl)
	f.reallocate(comp)
	return fl
}

// Cancel aborts a flow in progress (used for link/node failure injection).
// Its onDone callback never runs.
func (f *Fabric) Cancel(fl *Flow) {
	if fl.finished {
		return
	}
	fl.finished = true
	if fl.doneEv != nil {
		fl.doneEv.Cancel()
	}
	comp := f.component(fl.path)
	f.settle(comp)
	for _, r := range fl.path {
		r.removeFlow(fl)
	}
	f.reallocate(remove(comp, fl))
}

func (f *Fabric) finish(fl *Flow) {
	if fl.finished {
		return
	}
	comp := f.component(fl.path)
	f.settle(comp)
	if !f.finishable(fl) {
		// A later reallocation slowed this flow down; reschedule.
		f.reallocate(comp)
		return
	}
	fl.finished = true
	for _, r := range fl.path {
		r.removeFlow(fl)
	}
	f.reallocate(remove(comp, fl))
	fl.onDone()
}

// component gathers every flow that transitively shares a resource with the
// given path.
func (f *Fabric) component(path []*Resource) []*Flow {
	var (
		flows     []*Flow
		seenRes   = make(map[*Resource]bool, len(path)*2)
		seenFlow  = make(map[*Flow]bool)
		resources = append([]*Resource(nil), path...)
	)
	for _, r := range resources {
		seenRes[r] = true
	}
	for len(resources) > 0 {
		r := resources[len(resources)-1]
		resources = resources[:len(resources)-1]
		for _, fl := range r.flows {
			if seenFlow[fl] {
				continue
			}
			seenFlow[fl] = true
			flows = append(flows, fl)
			for _, rr := range fl.path {
				if !seenRes[rr] {
					seenRes[rr] = true
					resources = append(resources, rr)
				}
			}
		}
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].id < flows[j].id })
	return flows
}

// settle charges each flow for progress made at its current rate since its
// last settlement.
func (f *Fabric) settle(flows []*Flow) {
	now := f.sim.Now()
	for _, fl := range flows {
		if dt := now - fl.lastUpdate; dt > 0 {
			fl.remaining -= fl.rate * dt
			if fl.remaining < 0 {
				fl.remaining = 0
			}
		}
		fl.lastUpdate = now
	}
}

// reallocate runs max-min waterfilling over the component and reschedules
// each member flow's completion event. Its working set (resource index,
// per-resource residual state, previous rates) lives on the Fabric and is
// reused across calls, so a steady stream of flow events allocates nothing
// here once the scratch has grown to the component size.
func (f *Fabric) reallocate(flows []*Flow) {
	if len(flows) == 0 {
		return
	}
	if f.resIdx == nil {
		f.resIdx = make(map[*Resource]int32)
	}
	clear(f.resIdx)
	f.resources = f.resources[:0]
	f.states = f.states[:0]
	f.prevRates = f.prevRates[:0]
	for _, fl := range flows {
		f.prevRates = append(f.prevRates, fl.rate)
		fl.fixed = false
		for _, r := range fl.path {
			idx, ok := f.resIdx[r]
			if !ok {
				idx = int32(len(f.states))
				f.resIdx[r] = idx
				f.states = append(f.states, resState{cap: r.capacity})
				f.resources = append(f.resources, r)
			}
			f.states[idx].count++
		}
	}
	// Deterministic bottleneck scan order: ties in fair share resolve by
	// resource name, independent of discovery order.
	sort.Slice(f.resources, func(i, j int) bool { return f.resources[i].name < f.resources[j].name })

	unfixed := len(flows)
	for unfixed > 0 {
		// Find the bottleneck: the resource offering the smallest fair share.
		var (
			bottleneck *Resource
			share      = math.Inf(1)
		)
		for _, r := range f.resources {
			st := &f.states[f.resIdx[r]]
			if st.count == 0 {
				continue
			}
			if s := st.cap / float64(st.count); s < share {
				share = s
				bottleneck = r
			}
		}
		if bottleneck == nil {
			break
		}
		for _, fl := range bottleneck.flows {
			if fl.fixed {
				continue
			}
			fl.fixed = true
			fl.rate = share
			unfixed--
			for _, r := range fl.path {
				st := &f.states[f.resIdx[r]]
				st.cap -= share
				if st.cap < 0 {
					st.cap = 0
				}
				st.count--
			}
		}
	}

	for i, fl := range flows {
		// A flow whose rate is unchanged keeps its completion event: the
		// settle charged it up to now at the same rate, so the absolute
		// completion time is identical. Skipping the reschedule keeps the
		// event heap free of cancelled-event churn in large simulations.
		if fl.doneEv != nil && !fl.doneEv.cancelled && sameRate(fl.rate, f.prevRates[i]) {
			continue
		}
		f.scheduleCompletion(fl)
	}
}

// sameRate compares rates with a relative tolerance tight enough that any
// completion-time error is absorbed by the finishable slack.
func sameRate(a, b float64) bool {
	if a == b {
		return true
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return diff <= 1e-12*a
}

func (f *Fabric) scheduleCompletion(fl *Flow) {
	if fl.doneEv != nil {
		fl.doneEv.Cancel()
		fl.doneEv = nil
	}
	if fl.finished {
		return
	}
	var eta float64
	if !f.finishable(fl) {
		eta = fl.remaining / fl.rate
	}
	target := fl
	fl.doneEv = f.sim.After(eta, func() { f.finish(target) })
}

// finishable reports whether a flow's residual bytes are beyond the clock's
// ability to resolve: either inside the byte slack, or smaller than what a
// few representable virtual-time ticks can transfer at the flow's rate.
// Without the tick guard, accumulated float64 rounding can leave a residue
// that reschedules a completion for "now + less than one ULP", which never
// advances the clock and livelocks the simulation.
func (f *Fabric) finishable(fl *Flow) bool {
	if fl.remaining <= completionSlack {
		return true
	}
	tick := math.Nextafter(f.sim.now, math.Inf(1)) - f.sim.now
	return fl.remaining <= fl.rate*tick*4
}

type resState struct {
	cap   float64
	count int
}

func remove(flows []*Flow, fl *Flow) []*Flow {
	for i, g := range flows {
		if g == fl {
			return append(flows[:i:i], flows[i+1:]...)
		}
	}
	return flows
}
