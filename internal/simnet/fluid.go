package simnet

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// completionSlack is the residual byte count below which a flow is considered
// finished; it absorbs float64 rounding across rate recomputations.
const completionSlack = 1e-3

// Resource is a capacity-limited element of the fabric: a NIC transmit port,
// a NIC receive port, or a shared switch trunk. Concurrent flows crossing a
// resource share its capacity max-min fairly.
type Resource struct {
	name     string
	capacity float64 // bytes per second
	flows    []*Flow
	fab      *Fabric // the fabric that last routed a flow across this resource

	// Generation-stamped scratch for the fabric's traversals. A resource
	// is "marked" when its stamp equals the fabric's current pass number,
	// which replaces per-pass map insertions — the dominant cost at many
	// hundreds of nodes — with a field compare. scratchIdx is the
	// resource's slot in the reallocation working set while scratchGen is
	// current.
	scratchGen uint64
	scratchIdx int32
	visitGen   uint64
}

// NewResource returns a resource with the given capacity in bytes per second.
func NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("simnet: resource %q capacity must be positive", name))
	}
	return &Resource{name: name, capacity: capacity}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the resource capacity in bytes per second.
func (r *Resource) Capacity() float64 { return r.capacity }

// SetCapacity changes the capacity, immediately re-allocating the affected
// component: flows crossing the resource (and everything transitively
// sharing a resource with them) are settled — charged for progress at their
// old rates up to now — before the capacity changes, and their rates and
// completion events are then recomputed under the new allocation. Without
// the settle/reallocate pass, in-flight flows would keep stale rates until
// an unrelated flow event happened to touch their component. A resource
// carrying no flows just records the new value.
func (r *Resource) SetCapacity(c float64) {
	if c <= 0 {
		panic(fmt.Sprintf("simnet: resource %q capacity must be positive", r.name))
	}
	if r.fab == nil || len(r.flows) == 0 {
		r.capacity = c
		return
	}
	f := r.fab
	comp := f.component([]*Resource{r})
	f.settle(comp)
	r.capacity = c
	f.reallocate(comp)
}

// ActiveFlows returns the number of flows currently crossing the resource.
func (r *Resource) ActiveFlows() int { return len(r.flows) }

func (r *Resource) addFlow(f *Flow) { r.flows = append(r.flows, f) }

func (r *Resource) removeFlow(f *Flow) {
	for i, g := range r.flows {
		if g == f {
			r.flows = append(r.flows[:i], r.flows[i+1:]...)
			return
		}
	}
}

// Flow is a bulk transfer in progress across a path of resources.
type Flow struct {
	id         int64
	remaining  float64 // bytes left at lastUpdate
	rate       float64 // bytes per second under the current allocation
	path       []*Resource
	lastUpdate float64 // virtual time at which remaining was settled
	onDone     func()
	doneEv     *Event
	finished   bool

	// waterfill scratch state
	fixed    bool
	visitGen uint64 // component-traversal mark (see Resource.visitGen)
}

// Rate returns the flow's current allocated rate in bytes per second.
func (f *Flow) Rate() float64 { return f.rate }

// Fabric owns all flows and performs incremental max-min fair allocation.
// When a flow starts or finishes, only the connected component of flows that
// transitively share resources with it is re-allocated, which keeps large
// simulations (hundreds of nodes, each with an isolated sender/receiver pair)
// cheap.
type Fabric struct {
	sim    *Sim
	nextID int64

	// gen numbers the traversal passes; resources and flows stamped with
	// the current gen are "in the working set" without any map.
	gen uint64

	// allFlows is the id-ordered registry of flows the fabric has routed:
	// ids are handed out monotonically and flows append at the tail, so
	// the slice is always sorted and component() recovers id order by
	// filtering it instead of sorting — the sort was a quarter of the
	// event-loop cost at 500+ nodes. Finished flows linger marked until
	// the registry is half dead, then one compaction sweep drops them.
	allFlows     []*Flow
	finishedDead int

	// allResources is the name-ordered registry of resources the fabric
	// has routed across (insertion-sorted once per resource lifetime), so
	// reallocate recovers the deterministic name order by filtering it
	// instead of re-sorting the working set on every flow event.
	allResources []*Resource

	// Traversal and reallocate scratch, reused across calls to keep the
	// per-flow-event allocation count flat in large simulations. Safe
	// because the fabric is driven from the single-threaded event loop and
	// neither component nor reallocate reenters itself.
	resources []*Resource
	states    []resState
	prevRates []float64
	compFlows []*Flow
	compStack []*Resource
	heap      []shareEntry
}

// shareEntry is one lazy min-heap entry of the waterfill: a resource (by
// working-set index, which is name order) keyed by the fair share it offered
// when pushed. Max-min shares are monotone non-decreasing as flows fix, so a
// popped entry whose share went stale is simply re-pushed with its current
// share — the heap never has to delete.
type shareEntry struct {
	share float64
	idx   int32
}

// NewFabric returns a fabric driven by the given simulation clock.
func NewFabric(sim *Sim) *Fabric {
	return &Fabric{sim: sim}
}

// StartFlow begins transferring size bytes across path. onDone runs at the
// virtual time the last byte arrives. A zero-size flow completes after one
// event-loop tick.
func (f *Fabric) StartFlow(size float64, path []*Resource, onDone func()) *Flow {
	if len(path) == 0 {
		panic("simnet: flow path must contain at least one resource")
	}
	fl := &Flow{
		id:         f.nextID,
		remaining:  size,
		path:       path,
		lastUpdate: f.sim.Now(),
		onDone:     onDone,
	}
	f.nextID++
	f.allFlows = append(f.allFlows, fl)
	comp := f.component(fl.path)
	f.settle(comp)
	for _, r := range fl.path {
		if r.fab != f {
			r.fab = f
			f.registerResource(r)
		}
		r.addFlow(fl)
	}
	comp = append(comp, fl)
	f.reallocate(comp)
	return fl
}

// Cancel aborts a flow in progress (used for link/node failure injection).
// Its onDone callback never runs.
func (f *Fabric) Cancel(fl *Flow) {
	if fl.finished {
		return
	}
	if fl.doneEv != nil {
		fl.doneEv.Cancel()
	}
	comp := f.component(fl.path)
	f.settle(comp)
	// Retire only after component() has filtered the registry: compaction
	// must not drop the flow from its own component.
	f.retireFlow(fl)
	for _, r := range fl.path {
		r.removeFlow(fl)
	}
	f.reallocate(remove(comp, fl))
}

func (f *Fabric) finish(fl *Flow) {
	if fl.finished {
		return
	}
	comp := f.component(fl.path)
	f.settle(comp)
	if !f.finishable(fl) {
		// A later reallocation slowed this flow down; reschedule.
		f.reallocate(comp)
		return
	}
	f.retireFlow(fl)
	for _, r := range fl.path {
		r.removeFlow(fl)
	}
	f.reallocate(remove(comp, fl))
	fl.onDone()
}

// retireFlow marks a flow finished and compacts the id-ordered registry once
// it is mostly dead, keeping StartFlow's append-only invariant (compaction
// preserves order) and bounding registry growth over long runs.
func (f *Fabric) retireFlow(fl *Flow) {
	fl.finished = true
	f.finishedDead++
	if f.finishedDead*2 > len(f.allFlows) && len(f.allFlows) > 1024 {
		live := f.allFlows[:0]
		for _, g := range f.allFlows {
			if !g.finished {
				live = append(live, g)
			}
		}
		clear(f.allFlows[len(live):])
		f.allFlows = live
		f.finishedDead = 0
	}
}

// registerResource inserts a newly routed resource into the name-ordered
// registry. Runs once per resource lifetime, so the linear insert is fine.
func (f *Fabric) registerResource(r *Resource) {
	i, _ := slices.BinarySearchFunc(f.allResources, r, func(a, b *Resource) int {
		return strings.Compare(a.name, b.name)
	})
	f.allResources = slices.Insert(f.allResources, i, r)
}

// component gathers every flow that transitively shares a resource with the
// given path.
func (f *Fabric) component(path []*Resource) []*Flow {
	f.gen++
	gen := f.gen
	flows := f.compFlows[:0]
	stack := f.compStack[:0]
	for _, r := range path {
		if r.visitGen != gen {
			r.visitGen = gen
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fl := range r.flows {
			if fl.visitGen == gen {
				continue
			}
			fl.visitGen = gen
			flows = append(flows, fl)
			for _, rr := range fl.path {
				if rr.visitGen != gen {
					rr.visitGen = gen
					stack = append(stack, rr)
				}
			}
		}
	}
	// Recover deterministic id order by filtering the id-sorted registry
	// for the marked flows instead of sorting the discovery-ordered set —
	// O(total live flows) beats O(component · log component) once the
	// component spans most of the fabric.
	n := len(flows)
	flows = flows[:0]
	for _, fl := range f.allFlows {
		if fl.visitGen == gen {
			flows = append(flows, fl)
			if len(flows) == n {
				break
			}
		}
	}
	f.compFlows = flows
	f.compStack = stack[:0]
	return flows
}

// settle charges each flow for progress made at its current rate since its
// last settlement.
func (f *Fabric) settle(flows []*Flow) {
	now := f.sim.Now()
	for _, fl := range flows {
		if dt := now - fl.lastUpdate; dt > 0 {
			fl.remaining -= fl.rate * dt
			if fl.remaining < 0 {
				fl.remaining = 0
			}
		}
		fl.lastUpdate = now
	}
}

// reallocate runs max-min waterfilling over the component and reschedules
// each member flow's completion event. Its working set (resource index,
// per-resource residual state, previous rates) lives on the Fabric and is
// reused across calls, so a steady stream of flow events allocates nothing
// here once the scratch has grown to the component size.
func (f *Fabric) reallocate(flows []*Flow) {
	if len(flows) == 0 {
		return
	}
	f.gen++
	gen := f.gen
	f.prevRates = f.prevRates[:0]
	need := 0
	for _, fl := range flows {
		f.prevRates = append(f.prevRates, fl.rate)
		fl.fixed = false
		for _, r := range fl.path {
			if r.scratchGen != gen {
				r.scratchGen = gen
				need++
			}
		}
	}
	// Deterministic bottleneck order: ties in fair share resolve by resource
	// name, independent of discovery order. The name order comes free from
	// filtering the sorted registry for the marked resources — no per-event
	// sort.
	f.resources = f.resources[:0]
	f.states = f.states[:0]
	for _, r := range f.allResources {
		if r.scratchGen != gen {
			continue
		}
		r.scratchIdx = int32(len(f.resources))
		f.resources = append(f.resources, r)
		f.states = append(f.states, resState{cap: r.capacity})
		if len(f.resources) == need {
			break
		}
	}
	for _, fl := range flows {
		for _, r := range fl.path {
			f.states[r.scratchIdx].count++
		}
	}

	// Waterfill with a lazy min-heap over fair shares. Every working-set
	// resource starts with one entry; fixing a bottleneck's flows only ever
	// RAISES other resources' shares (max-min monotonicity: handing share s
	// to k of count flows leaves (cap-ks)/(count-k) ≥ s when s ≤ cap/count),
	// so a popped entry whose stored share no longer matches is stale — its
	// real share grew — and is re-pushed at the current value. A popped entry
	// that validates is the true minimum, and the (share, index) key order
	// reproduces the linear scan's first-smallest-name tie-break exactly.
	f.heap = f.heap[:0]
	for i := range f.states {
		f.heapPush(shareEntry{f.states[i].cap / float64(f.states[i].count), int32(i)})
	}
	unfixed := len(flows)
	for unfixed > 0 && len(f.heap) > 0 {
		e := f.heapPop()
		st := &f.states[e.idx]
		if st.count == 0 {
			continue
		}
		if cur := st.cap / float64(st.count); cur != e.share {
			f.heapPush(shareEntry{cur, e.idx})
			continue
		}
		share := e.share
		for _, fl := range f.resources[e.idx].flows {
			if fl.fixed {
				continue
			}
			fl.fixed = true
			fl.rate = share
			unfixed--
			for _, r := range fl.path {
				st := &f.states[r.scratchIdx]
				st.cap -= share
				if st.cap < 0 {
					st.cap = 0
				}
				st.count--
			}
		}
	}

	for i, fl := range flows {
		// A flow whose rate is unchanged keeps its completion event: the
		// settle charged it up to now at the same rate, so the absolute
		// completion time is identical. Skipping the reschedule keeps the
		// event heap free of cancelled-event churn in large simulations.
		if fl.doneEv != nil && !fl.doneEv.cancelled && sameRate(fl.rate, f.prevRates[i]) {
			continue
		}
		f.scheduleCompletion(fl)
	}
}

// sameRate compares rates with a relative tolerance tight enough that any
// completion-time error is absorbed by the finishable slack.
func sameRate(a, b float64) bool {
	if a == b {
		return true
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return diff <= 1e-12*a
}

func (f *Fabric) scheduleCompletion(fl *Flow) {
	if fl.doneEv != nil {
		fl.doneEv.Cancel()
		fl.doneEv = nil
	}
	if fl.finished {
		return
	}
	var eta float64
	if !f.finishable(fl) {
		eta = fl.remaining / fl.rate
	}
	target := fl
	fl.doneEv = f.sim.After(eta, func() { f.finish(target) })
}

// finishable reports whether a flow's residual bytes are beyond the clock's
// ability to resolve: either inside the byte slack, or smaller than what a
// few representable virtual-time ticks can transfer at the flow's rate.
// Without the tick guard, accumulated float64 rounding can leave a residue
// that reschedules a completion for "now + less than one ULP", which never
// advances the clock and livelocks the simulation.
func (f *Fabric) finishable(fl *Flow) bool {
	if fl.remaining <= completionSlack {
		return true
	}
	tick := math.Nextafter(f.sim.now, math.Inf(1)) - f.sim.now
	return fl.remaining <= fl.rate*tick*4
}

type resState struct {
	cap   float64
	count int
}

func shareLess(a, b shareEntry) bool {
	return a.share < b.share || (a.share == b.share && a.idx < b.idx)
}

func (f *Fabric) heapPush(e shareEntry) {
	f.heap = append(f.heap, e)
	i := len(f.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !shareLess(f.heap[i], f.heap[p]) {
			break
		}
		f.heap[i], f.heap[p] = f.heap[p], f.heap[i]
		i = p
	}
}

func (f *Fabric) heapPop() shareEntry {
	top := f.heap[0]
	n := len(f.heap) - 1
	f.heap[0] = f.heap[n]
	f.heap = f.heap[:n]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && shareLess(f.heap[l], f.heap[m]) {
			m = l
		}
		if r < n && shareLess(f.heap[r], f.heap[m]) {
			m = r
		}
		if m == i {
			break
		}
		f.heap[i], f.heap[m] = f.heap[m], f.heap[i]
		i = m
	}
	return top
}

func remove(flows []*Flow, fl *Flow) []*Flow {
	for i, g := range flows {
		if g == fl {
			return append(flows[:i:i], flows[i+1:]...)
		}
	}
	return flows
}
