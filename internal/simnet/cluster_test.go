package simnet

import (
	"strings"
	"testing"
)

func testConfig(n int) ClusterConfig {
	return ClusterConfig{
		Nodes:         n,
		LinkBandwidth: 100, // 100 B/s for easy arithmetic
		Latency:       0.001,
		CPU:           DefaultCPUConfig(),
	}
}

func TestClusterTransferTiming(t *testing.T) {
	s := NewSim(1)
	c, err := NewCluster(s, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var done float64 = -1
	c.Transfer(0, 1, 100, func(broken bool) {
		if broken {
			t.Error("unexpected broken transfer")
		}
		done = s.Now()
	})
	s.Run()
	approx(t, done, 0.001+1.0, 1e-9, "transfer completion (latency + size/bw)")
}

func TestClusterSequentialSendSharesSenderNIC(t *testing.T) {
	// One sender pushing to two receivers concurrently: the sender's tx port
	// is the bottleneck, so each transfer gets half the bandwidth.
	s := NewSim(1)
	c, err := NewCluster(s, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	var t1, t2 float64
	c.Transfer(0, 1, 100, func(bool) { t1 = s.Now() })
	c.Transfer(0, 2, 100, func(bool) { t2 = s.Now() })
	s.Run()
	approx(t, t1, 0.001+2.0, 1e-9, "receiver 1")
	approx(t, t2, 0.001+2.0, 1e-9, "receiver 2")
}

func TestClusterRelayUsesFullDuplex(t *testing.T) {
	// 0→1 and 1→2 concurrently: node 1 receives and sends at full rate
	// (full-duplex NIC), so both finish in 1s.
	s := NewSim(1)
	c, err := NewCluster(s, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	var t1, t2 float64
	c.Transfer(0, 1, 100, func(bool) { t1 = s.Now() })
	c.Transfer(1, 2, 100, func(bool) { t2 = s.Now() })
	s.Run()
	approx(t, t1, 1.001, 1e-9, "inbound to relay")
	approx(t, t2, 1.001, 1e-9, "outbound from relay")
}

func TestClusterOversubscribedTrunkLimitsCrossRack(t *testing.T) {
	// Two racks of 2 nodes; trunk capacity 50 (< 100 NIC). A cross-rack
	// transfer is trunk-limited; an in-rack transfer is NIC-limited.
	cfg := testConfig(4)
	cfg.RackSize = 2
	cfg.TrunkBandwidth = 50
	s := NewSim(1)
	c, err := NewCluster(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var cross, local float64
	c.Transfer(0, 2, 100, func(bool) { cross = s.Now() }) // rack 0 → rack 1
	c.Transfer(0, 1, 100, func(bool) { local = s.Now() }) // within rack 0
	s.Run()
	// Both leave node 0's tx (100 B/s shared). Cross-rack then crosses the
	// 50 B/s trunk. Max-min: cross gets 50, local gets 50 on tx; both 2s.
	approx(t, cross, 2.001, 1e-6, "cross-rack transfer")
	approx(t, local, 2.001, 1e-6, "in-rack transfer")

	// Cross-rack alone is trunk-limited to 50 B/s.
	s2 := NewSim(1)
	c2, err := NewCluster(s2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var crossAlone float64
	c2.Transfer(0, 2, 100, func(bool) { crossAlone = s2.Now() })
	s2.Run()
	approx(t, crossAlone, 2.001, 1e-9, "trunk-limited transfer")
}

func TestClusterRackAssignment(t *testing.T) {
	cfg := testConfig(5)
	cfg.RackSize = 2
	cfg.TrunkBandwidth = 100
	c, err := NewCluster(NewSim(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRacks := []int{0, 0, 1, 1, 2}
	for i, want := range wantRacks {
		if got := c.Rack(NodeID(i)); got != want {
			t.Errorf("Rack(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestClusterSlowLinkOverride(t *testing.T) {
	s := NewSim(1)
	c, err := NewCluster(s, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	c.SetLinkBandwidth(0, 1, 25)
	var done float64
	c.Transfer(0, 1, 100, func(bool) { done = s.Now() })
	s.Run()
	approx(t, done, 0.001+4.0, 1e-9, "slow-link transfer")

	// The reverse direction is unaffected.
	s2 := NewSim(1)
	c2, _ := NewCluster(s2, testConfig(2))
	c2.SetLinkBandwidth(0, 1, 25)
	var rev float64
	c2.Transfer(1, 0, 100, func(bool) { rev = s2.Now() })
	s2.Run()
	approx(t, rev, 1.001, 1e-9, "reverse direction at full rate")
}

func TestClusterBreakLinkMidTransfer(t *testing.T) {
	s := NewSim(1)
	cfg := testConfig(2)
	cfg.RetryTimeout = 0.01
	c, err := NewCluster(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var (
		brokenAt float64 = -1
		wasOK            = false
	)
	c.Transfer(0, 1, 100, func(broken bool) {
		if broken {
			brokenAt = s.Now()
		} else {
			wasOK = true
		}
	})
	s.At(0.5, func() { c.BreakLink(0, 1) })
	s.Run()
	if wasOK {
		t.Fatal("transfer across broken link reported success")
	}
	approx(t, brokenAt, 0.5+0.01, 1e-9, "break completion after retry timeout")
}

func TestClusterNewTransferOnBrokenLinkFails(t *testing.T) {
	s := NewSim(1)
	cfg := testConfig(2)
	cfg.RetryTimeout = 0.01
	c, _ := NewCluster(s, cfg)
	c.BreakLink(0, 1)
	broken := false
	c.Transfer(0, 1, 100, func(b bool) { broken = b })
	s.Run()
	if !broken {
		t.Error("transfer on pre-broken link did not report failure")
	}
}

func TestClusterFailNodeBreaksBothDirections(t *testing.T) {
	s := NewSim(1)
	cfg := testConfig(3)
	cfg.RetryTimeout = 0.01
	c, _ := NewCluster(s, cfg)
	var results []bool
	c.Transfer(0, 1, 1000, func(b bool) { results = append(results, b) })
	c.Transfer(1, 2, 1000, func(b bool) { results = append(results, b) })
	c.Transfer(0, 2, 100, func(b bool) { results = append(results, b) })
	s.At(0.1, func() { c.FailNode(1) })
	s.Run()
	if !c.NodeFailed(1) {
		t.Error("NodeFailed(1) = false after FailNode")
	}
	nBroken := 0
	for _, b := range results {
		if b {
			nBroken++
		}
	}
	if nBroken != 2 {
		t.Errorf("broken transfers = %d, want 2 (both touching node 1)", nBroken)
	}
}

func TestClusterRestoreLinkReadmitsNewTransfers(t *testing.T) {
	s := NewSim(1)
	cfg := testConfig(2)
	cfg.RetryTimeout = 0.01
	c, _ := NewCluster(s, cfg)

	// Break at 0.1 with a transfer in flight, heal at 0.3, start a fresh
	// transfer at 0.4: the first breaks, the second completes normally.
	var firstBroken, secondBroken bool
	var secondDone float64 = -1
	c.Transfer(0, 1, 100, func(b bool) { firstBroken = b })
	s.At(0.1, func() { c.BreakLink(0, 1) })
	s.At(0.3, func() { c.RestoreLink(0, 1) })
	s.At(0.4, func() {
		c.Transfer(0, 1, 50, func(b bool) {
			secondBroken = b
			secondDone = s.Now()
		})
	})
	s.Run()
	if !firstBroken {
		t.Error("in-flight transfer survived the partition")
	}
	if secondBroken {
		t.Error("transfer after RestoreLink still broken")
	}
	approx(t, secondDone, 0.4+0.001+0.5, 1e-9, "post-heal transfer timing")
}

func TestClusterRestoreLinkIsDirectional(t *testing.T) {
	s := NewSim(1)
	cfg := testConfig(2)
	cfg.RetryTimeout = 0.01
	c, _ := NewCluster(s, cfg)
	c.BreakLink(0, 1)
	c.BreakLink(1, 0)
	c.RestoreLink(0, 1)
	var fwd, rev bool
	c.Transfer(0, 1, 10, func(b bool) { fwd = b })
	c.Transfer(1, 0, 10, func(b bool) { rev = b })
	s.Run()
	if fwd {
		t.Error("restored direction 0→1 still broken")
	}
	if !rev {
		t.Error("direction 1→0 healed without RestoreLink")
	}
}

func TestClusterRestoreNodeReadmitsTraffic(t *testing.T) {
	s := NewSim(1)
	cfg := testConfig(3)
	cfg.RetryTimeout = 0.01
	c, _ := NewCluster(s, cfg)
	c.FailNode(1)
	var whileDown bool
	c.Transfer(0, 1, 10, func(b bool) { whileDown = b })
	s.At(0.2, func() { c.RestoreNode(1) })
	var afterUp, ctrlSeen bool
	var afterDone float64 = -1
	s.At(0.3, func() {
		c.Transfer(1, 2, 10, func(b bool) {
			afterUp = b
			afterDone = s.Now()
		})
		c.Ctrl(0, 1, func() { ctrlSeen = true })
	})
	s.Run()
	if !whileDown {
		t.Error("transfer to a failed node did not break")
	}
	if c.NodeFailed(1) {
		t.Error("NodeFailed(1) = true after RestoreNode")
	}
	if afterUp {
		t.Error("transfer from restored node broke")
	}
	if !ctrlSeen {
		t.Error("ctrl message to restored node was dropped")
	}
	approx(t, afterDone, 0.3+0.001+0.1, 1e-9, "post-restore transfer timing")
}

func TestClusterRestoreNodeKeepsBrokenLinksBroken(t *testing.T) {
	s := NewSim(1)
	cfg := testConfig(2)
	cfg.RetryTimeout = 0.01
	c, _ := NewCluster(s, cfg)
	c.BreakLink(0, 1)
	c.FailNode(1)
	c.RestoreNode(1)
	var broken bool
	c.Transfer(0, 1, 10, func(b bool) { broken = b })
	s.Run()
	if !broken {
		t.Error("RestoreNode healed a link broken with BreakLink")
	}
}

func TestClusterCtrlDeliveryAndDropOnBrokenPath(t *testing.T) {
	s := NewSim(1)
	c, _ := NewCluster(s, testConfig(2))
	var at float64 = -1
	c.Ctrl(0, 1, func() { at = s.Now() })
	s.Run()
	approx(t, at, 0.001, 1e-12, "ctrl delivery")

	c.BreakLink(0, 1)
	delivered := false
	c.Ctrl(0, 1, func() { delivered = true })
	s.Run()
	if delivered {
		t.Error("ctrl message crossed a broken link")
	}
}

func TestClusterSelfTransfer(t *testing.T) {
	s := NewSim(1)
	c, _ := NewCluster(s, testConfig(1))
	var done float64 = -1
	c.Transfer(0, 0, 1e12, func(broken bool) {
		if broken {
			t.Error("self transfer broke")
		}
		done = s.Now()
	})
	s.Run()
	approx(t, done, 0.001, 1e-12, "self transfer is latency-only")
}

func TestClusterConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  ClusterConfig
		want string
	}{
		{"no nodes", ClusterConfig{LinkBandwidth: 1}, "at least 1 node"},
		{"no bandwidth", ClusterConfig{Nodes: 2}, "bandwidth must be positive"},
		{"negative latency", ClusterConfig{Nodes: 2, LinkBandwidth: 1, Latency: -1}, "latency"},
		{"negative rack", ClusterConfig{Nodes: 2, LinkBandwidth: 1, RackSize: -1}, "rack size"},
		{"rack without trunk", ClusterConfig{Nodes: 2, LinkBandwidth: 1, RackSize: 2}, "trunk"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewCluster(NewSim(1), tt.cfg)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error = %v, want substring %q", err, tt.want)
			}
		})
	}
}
