package simnet

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestSingleFlowFinishesAtSizeOverCapacity(t *testing.T) {
	s := NewSim(1)
	f := NewFabric(s)
	r := NewResource("r", 100) // 100 B/s
	var done float64 = -1
	f.StartFlow(250, []*Resource{r}, func() { done = s.Now() })
	s.Run()
	approx(t, done, 2.5, 1e-9, "single flow completion")
}

func TestTwoFlowsShareBottleneckFairly(t *testing.T) {
	s := NewSim(1)
	f := NewFabric(s)
	r := NewResource("r", 100)
	var t1, t2 float64
	f.StartFlow(100, []*Resource{r}, func() { t1 = s.Now() })
	f.StartFlow(100, []*Resource{r}, func() { t2 = s.Now() })
	s.Run()
	// Both run at 50 B/s until the first finishes... they're equal, so both
	// finish at t=2.
	approx(t, t1, 2.0, 1e-9, "flow1")
	approx(t, t2, 2.0, 1e-9, "flow2")
}

func TestShorterFlowFinishesThenLongerSpeedsUp(t *testing.T) {
	s := NewSim(1)
	f := NewFabric(s)
	r := NewResource("r", 100)
	var t1, t2 float64
	f.StartFlow(50, []*Resource{r}, func() { t1 = s.Now() })
	f.StartFlow(150, []*Resource{r}, func() { t2 = s.Now() })
	s.Run()
	// Phase 1: both at 50 B/s; flow1 done at t=1 (50B). Flow2 has 100B left,
	// now alone at 100 B/s: done at t=2.
	approx(t, t1, 1.0, 1e-9, "short flow")
	approx(t, t2, 2.0, 1e-9, "long flow")
}

func TestFlowJoiningMidTransferSlowsExisting(t *testing.T) {
	s := NewSim(1)
	f := NewFabric(s)
	r := NewResource("r", 100)
	var t1 float64
	f.StartFlow(100, []*Resource{r}, func() { t1 = s.Now() })
	s.At(0.5, func() {
		f.StartFlow(1000, []*Resource{r}, func() {})
	})
	s.Run()
	// Flow1: 50B in first 0.5s at 100 B/s, then 50B at 50 B/s = 1s more.
	approx(t, t1, 1.5, 1e-9, "slowed flow")
}

func TestMaxMinAllocationWithUnevenPaths(t *testing.T) {
	// Classic max-min example: flows A and B share link X (cap 100); flow B
	// also crosses link Y (cap 30). B is bottlenecked at 30 by Y, so A gets
	// the leftover 70 on X.
	s := NewSim(1)
	f := NewFabric(s)
	x := NewResource("x", 100)
	y := NewResource("y", 30)
	a := f.StartFlow(1e9, []*Resource{x}, func() {})
	b := f.StartFlow(1e9, []*Resource{x, y}, func() {})
	approx(t, a.Rate(), 70, 1e-9, "rate A")
	approx(t, b.Rate(), 30, 1e-9, "rate B")
	// Stop the sim without running the huge flows to completion.
	f.Cancel(a)
	f.Cancel(b)
	s.Run()
}

func TestDisjointFlowsDoNotInteract(t *testing.T) {
	s := NewSim(1)
	f := NewFabric(s)
	r1 := NewResource("r1", 100)
	r2 := NewResource("r2", 200)
	f1 := f.StartFlow(1e6, []*Resource{r1}, func() {})
	f2 := f.StartFlow(1e6, []*Resource{r2}, func() {})
	approx(t, f1.Rate(), 100, 1e-9, "disjoint rate 1")
	approx(t, f2.Rate(), 200, 1e-9, "disjoint rate 2")
	f.Cancel(f1)
	f.Cancel(f2)
}

func TestCancelledFlowNeverCompletes(t *testing.T) {
	s := NewSim(1)
	f := NewFabric(s)
	r := NewResource("r", 100)
	done := false
	fl := f.StartFlow(100, []*Resource{r}, func() { done = true })
	s.At(0.5, func() { f.Cancel(fl) })
	s.Run()
	if done {
		t.Error("cancelled flow completed")
	}
	if r.ActiveFlows() != 0 {
		t.Errorf("resource still has %d flows after cancel", r.ActiveFlows())
	}
}

func TestCancelReleasesBandwidthToSurvivors(t *testing.T) {
	s := NewSim(1)
	f := NewFabric(s)
	r := NewResource("r", 100)
	var t1 float64
	fl1 := f.StartFlow(100, []*Resource{r}, func() { t1 = s.Now() })
	fl2 := f.StartFlow(1000, []*Resource{r}, func() {})
	_ = fl1
	s.At(0.5, func() { f.Cancel(fl2) })
	s.Run()
	// Flow1: 25B in first 0.5s (sharing), then 75B alone at 100 B/s.
	approx(t, t1, 1.25, 1e-9, "survivor completion")
}

func TestZeroSizeFlowCompletesImmediately(t *testing.T) {
	s := NewSim(1)
	f := NewFabric(s)
	r := NewResource("r", 100)
	var done float64 = -1
	f.StartFlow(0, []*Resource{r}, func() { done = s.Now() })
	s.Run()
	approx(t, done, 0, 1e-12, "zero-size flow")
}

func TestManySequentialFlowsConserveWork(t *testing.T) {
	// 100 flows of 10B each through a 100 B/s pipe, all started at t=0,
	// must finish at exactly t=10 (work conservation).
	s := NewSim(1)
	f := NewFabric(s)
	r := NewResource("r", 100)
	var last float64
	for i := 0; i < 100; i++ {
		f.StartFlow(10, []*Resource{r}, func() { last = s.Now() })
	}
	s.Run()
	approx(t, last, 10.0, 1e-6, "work conservation")
}

func TestSetCapacityMidFlowSlowsCompletion(t *testing.T) {
	// A capacity cut must settle the flow's progress and retime its
	// completion immediately — not wait for an unrelated flow event.
	s := NewSim(1)
	f := NewFabric(s)
	r := NewResource("r", 100)
	var done float64 = -1
	f.StartFlow(100, []*Resource{r}, func() { done = s.Now() })
	s.At(0.5, func() { r.SetCapacity(50) })
	s.Run()
	// 50 B in the first 0.5 s at 100 B/s, then 50 B at 50 B/s: 1.5 s total.
	approx(t, done, 1.5, 1e-9, "completion after capacity cut")
}

func TestSetCapacityMidFlowSpeedsCompletion(t *testing.T) {
	s := NewSim(1)
	f := NewFabric(s)
	r := NewResource("r", 50)
	var done float64 = -1
	fl := f.StartFlow(100, []*Resource{r}, func() { done = s.Now() })
	s.At(1.0, func() {
		r.SetCapacity(200)
		approx(t, fl.Rate(), 200, 1e-9, "rate after capacity raise")
	})
	s.Run()
	// 50 B in the first second at 50 B/s, then 50 B at 200 B/s: 1.25 s.
	approx(t, done, 1.25, 1e-9, "completion after capacity raise")
}

func TestSetCapacityReallocatesWholeComponent(t *testing.T) {
	// Shrinking link Y must also hand X's freed share back to flow A:
	// the whole component reallocates, not just flows crossing Y.
	s := NewSim(1)
	f := NewFabric(s)
	x := NewResource("x", 100)
	y := NewResource("y", 30)
	a := f.StartFlow(1e9, []*Resource{x}, func() {})
	b := f.StartFlow(1e9, []*Resource{x, y}, func() {})
	approx(t, a.Rate(), 70, 1e-9, "rate A before")
	s.At(1.0, func() {
		y.SetCapacity(10)
		approx(t, a.Rate(), 90, 1e-9, "rate A after shrinking y")
		approx(t, b.Rate(), 10, 1e-9, "rate B after shrinking y")
		f.Cancel(a)
		f.Cancel(b)
	})
	s.Run()
}

func TestSetCapacityIdleResource(t *testing.T) {
	s := NewSim(1)
	f := NewFabric(s)
	r := NewResource("r", 100)
	r.SetCapacity(25) // no flows yet: just records the value
	approx(t, r.Capacity(), 25, 0, "idle capacity update")
	var done float64 = -1
	f.StartFlow(50, []*Resource{r}, func() { done = s.Now() })
	s.Run()
	approx(t, done, 2.0, 1e-9, "flow at updated capacity")
}

func TestSetCapacityRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive capacity")
		}
	}()
	NewResource("r", 100).SetCapacity(0)
}

func TestNewResourceRejectsNonPositiveCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive capacity")
		}
	}()
	NewResource("bad", 0)
}

func TestStartFlowRejectsEmptyPath(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty path")
		}
	}()
	NewFabric(NewSim(1)).StartFlow(1, nil, func() {})
}

// TestQuickWorkConservation is a property test of the fluid fabric: for any
// set of flows pushed through one shared bottleneck, total completion time
// equals total bytes over capacity (max-min sharing never wastes capacity),
// and flows finish in size order.
func TestQuickWorkConservation(t *testing.T) {
	f := func(sizesRaw []uint16) bool {
		if len(sizesRaw) == 0 || len(sizesRaw) > 40 {
			return true
		}
		s := NewSim(1)
		fab := NewFabric(s)
		r := NewResource("shared", 1000)
		var total float64
		var last float64
		for _, raw := range sizesRaw {
			size := float64(raw%5000) + 1
			total += size
			fab.StartFlow(size, []*Resource{r}, func() { last = s.Now() })
		}
		s.Run()
		want := total / 1000
		return math.Abs(last-want) < 1e-6*want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickDisjointPairsRunAtFullRate checks that any number of disjoint
// sender→receiver pairs all progress at wire speed simultaneously — the
// property the binomial pipeline's performance rests on.
func TestQuickDisjointPairsRunAtFullRate(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)%30 + 1
		s := NewSim(1)
		fab := NewFabric(s)
		done := 0
		for i := 0; i < n; i++ {
			tx := NewResource("tx", 100)
			rx := NewResource("rx", 100)
			fab.StartFlow(100, []*Resource{tx, rx}, func() { done++ })
		}
		end := s.Run()
		return done == n && math.Abs(end-1.0) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
